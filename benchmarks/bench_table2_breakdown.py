"""Table 2: stage breakdown of one production timestep.

The paper's row set (Mustang, 12288 processors, 4096^3 particles,
704 s total at 56.8 Tflop/s):

    Domain Decomposition   12 s
    Tree Build             24 s
    Tree Traversal        212 s
    Data Communication     26 s
    Force Evaluation      350 s
    Load Imbalance         80 s

This bench measures the same stage *fractions* from a real (small)
timestep of this library — wall-clock split between decomposition,
tree build, traversal, force evaluation, plus simulated-machine
communication and imbalance from the parallel traversal — and then
scales the model to the paper's configuration for the side-by-side.
"""

from pathlib import Path

import numpy as np
import pytest

from _simlib import BENCH_N, emit_bench, once, print_table
from repro.cosmology import PLANCK2013, code_particle_mass
from repro.gravity import TreecodeConfig, TreecodeGravity
from repro.instrument import Tracer
from repro.parallel import JAGUAR_LIKE, decompose, parallel_traversal
from repro.perfmodel import table2_breakdown
from repro.simulation import ICConfig, generate_ic
from repro.tree import build_tree, compute_moments, traverse
from repro.gravity.treeforce import evaluate_forces
from repro.gravity.smoothing import make_softening

PAPER_ROWS = {
    "domain_decomposition": 12.0,
    "tree_build": 24.0,
    "tree_traversal": 212.0,
    "data_communication": 26.0,
    "force_evaluation": 350.0,
    "load_imbalance": 80.0,
}

OUT_PATH = Path(__file__).parent / "BENCH_table2.json"


def _measure_stages():
    n = max(BENCH_N, 12)
    ic = ICConfig(n_per_dim=n, box_mpc_h=100.0, a_init=0.25, seed=5)
    ps = generate_ic(PLANCK2013, ic)
    tracer = Tracer()
    with tracer.span("domain_decomposition"):
        decomp = decompose(ps.pos, 64)
    with tracer.span("tree_build"):
        tree = build_tree(ps.pos, ps.mass, nleaf=16, with_ghosts=True)
        moms = compute_moments(
            tree, p=4, tol=1e-5, background=True, mean_density=ps.mass.sum()
        )
    with tracer.span("tree_traversal"):
        inter = traverse(tree, moms, periodic=True, ws=1)
    with tracer.span("force_evaluation"):
        res = evaluate_forces(
            tree, moms, inter, softening=make_softening("dehnen_k1", 0.05 / n),
            dtype=np.float32, want_potential=False,
        )
    stages = tracer.stage_times()
    # communication & imbalance from the simulated parallel machine
    # rank count scaled to keep >= a few hundred particles per domain,
    # like production granularity
    n_ranks = max(4, min(64, tree.n_particles // 256))
    pstats = parallel_traversal(tree, moms, n_ranks=n_ranks, machine=JAGUAR_LIKE)
    stages["data_communication"] = pstats.abm_time_s
    stages["load_imbalance"] = stages["force_evaluation"] * pstats.load_imbalance
    counts = {
        "interactions_per_particle": inter.interactions_per_particle(tree),
        "cell_per_particle": inter.n_cell_interactions(tree) / tree.n_particles,
        "pp_per_particle": inter.n_pp_interactions(tree) / tree.n_particles,
        "prism_per_particle": inter.n_prism_interactions(tree) / tree.n_particles,
    }
    return stages, counts


def test_table2_stage_fractions(benchmark):
    stages, counts = once(benchmark, _measure_stages)
    total = sum(stages.values())
    paper_total = sum(PAPER_ROWS.values())
    # the shared receipt envelope registers this run in the observatory
    # registry (keyed by the identity fields), so Table-2 stage
    # fractions are trend-gateable like the other benches
    n = max(BENCH_N, 12)
    emit_bench("table2_breakdown", {
        "type": "bench_table2_breakdown",
        "mode": "smoke" if BENCH_N <= 16 else "full",
        "n_particles": n**3,
        "stages": {k: round(v, 6) for k, v in stages.items()},
        "fractions": {k: round(v / total, 4) for k, v in stages.items()},
        "counts": {k: round(v, 2) for k, v in counts.items()},
        "paper_seconds": PAPER_ROWS,
    }, OUT_PATH)
    rows = [
        (name, round(PAPER_ROWS[name], 1), round(PAPER_ROWS[name] / paper_total, 3),
         round(stages[name], 3), round(stages[name] / total, 3))
        for name in PAPER_ROWS
    ]
    print_table(
        "Table 2: timestep stage breakdown (paper seconds/fraction vs measured)",
        ["stage", "paper s", "paper frac", "ours s", "ours frac"],
        rows,
    )
    print(
        f"interaction mix per particle: cell {counts['cell_per_particle']:.0f}, "
        f"pp {counts['pp_per_particle']:.0f}, prism {counts['prism_per_particle']:.0f} "
        f"(paper §7: ~2000 mostly-hexadecapole at errtol 1e-5)"
    )
    # shape assertions: force evaluation dominates; decomposition and tree
    # build are both small compared to traversal + force
    assert stages["force_evaluation"] == max(
        stages[k] for k in ("force_evaluation", "domain_decomposition", "tree_build")
    )
    assert stages["domain_decomposition"] < 0.25 * total
    assert stages["tree_build"] < 0.3 * total
    # paper's efficiency metric: interactions/particle in the right decade
    assert 300 < counts["interactions_per_particle"] < 20000


def test_table2_scaled_to_paper_configuration(benchmark):
    def run():
        frac = {k: v / sum(PAPER_ROWS.values()) for k, v in PAPER_ROWS.items()}
        return table2_breakdown(
            frac, n_particles=4096**3, flops_per_particle=582000.0,
            n_ranks=12288, machine=JAGUAR_LIKE,
        )

    bd = once(benchmark, run)
    print_table(
        "Table 2 scaled: model at 4096^3 on 12288 procs",
        ["stage", "paper s", "model s"],
        [
            (label, PAPER_ROWS[key], round(seconds, 1))
            for (label, seconds), key in zip(bd.rows(), PAPER_ROWS)
        ],
    )
    # the model's total should land within a small factor of 704 s
    assert 150 < bd.total < 3000
    print(f"model total {bd.total:.0f} s vs paper 704 s")
