"""Figure 5: strong scaling on Jaguar, 16k -> 256k cores.

Paper measurements (128G particles, June 2012):

    cores   Tflop/s   efficiency
    16k       111       1.00
    32k       222       1.00
    64k       442       1.00
    128k      852       0.96
    256k     1518       0.86

The model's communication/imbalance constants are calibrated from the
*simulated parallel traversal* of a small box, then evaluated at the
paper's configuration.  The reproduction target is the shape: perfect
scaling through ~64k, mid-90s% at 128k, mid-80s% at 256k.
"""

import numpy as np
import pytest

from _simlib import BENCH_N, once, print_table
from repro.cosmology import PLANCK2013
from repro.parallel import JAGUAR_LIKE, parallel_traversal
from repro.perfmodel import ScalingInputs, StrongScalingModel
from repro.simulation import ICConfig, generate_ic
from repro.tree import build_tree, compute_moments

PAPER = [
    (16384, 111.0, 1.00),
    (32768, 222.0, 1.00),
    (65536, 442.0, 1.00),
    (131072, 852.0, 0.96),
    (262144, 1518.0, 0.86),
]


def _calibrate():
    """Measure imbalance + remote-cell volume from a simulated traversal."""
    n = max(BENCH_N, 12)
    ps = generate_ic(PLANCK2013, ICConfig(n_per_dim=n, a_init=0.33, seed=6))
    tree = build_tree(ps.pos, ps.mass, nleaf=16)
    moms = compute_moments(tree, p=2, tol=1e-4)
    n_ranks = max(8, tree.n_particles // 256)
    stats = parallel_traversal(tree, moms, n_ranks=n_ranks, machine=JAGUAR_LIKE)
    return stats, n_ranks


def test_fig5_strong_scaling(benchmark):
    def run():
        stats, n_ranks = _calibrate()
        inputs = ScalingInputs(
            n_particles=128e9,
            flops_per_particle=582000.0,
            imbalance_ref=min(stats.load_imbalance, 0.10),
            imbalance_ref_ranks=16384,
            remote_cells_ref=float(stats.remote_cells_requested.mean())
            * (128e9 / 16384) ** (2 / 3)
            / max((stats.work_per_rank.mean()) ** (2 / 3), 1.0),
        )
        model = StrongScalingModel(inputs, JAGUAR_LIKE)
        rows = []
        for cores, tf_paper, eff_paper in PAPER:
            rows.append(
                (
                    cores,
                    tf_paper,
                    round(model.tflops(cores), 1),
                    eff_paper,
                    round(model.efficiency(cores, 16384), 3),
                )
            )
        return rows, stats

    rows, stats = once(benchmark, run)
    print_table(
        "Fig. 5: strong scaling on Jaguar (paper vs model)",
        ["cores", "paper Tflop/s", "model Tflop/s", "paper eff", "model eff"],
        rows,
    )
    print(
        f"calibration: measured load imbalance {stats.load_imbalance:.3f}, "
        f"remote cells/rank {stats.remote_cells_requested.mean():.0f}"
    )
    # shape: near-perfect to 64k, visibly degraded at 256k but above 70%
    eff = {r[0]: r[4] for r in rows}
    assert eff[65536] > 0.93
    assert 0.70 < eff[262144] < 1.0
    assert eff[262144] < eff[131072] <= eff[65536]
    # throughput still grows to 256k (the paper's 1518 Tflop/s point)
    tf = [r[2] for r in rows]
    assert all(a < b for a, b in zip(tf, tf[1:]))


def test_fig5_efficiency_definition(benchmark):
    """Efficiency at the reference point is exactly 1 by construction."""

    def run():
        inputs = ScalingInputs(
            n_particles=128e9, flops_per_particle=582000.0,
            imbalance_ref=0.05, imbalance_ref_ranks=16384, remote_cells_ref=1e5,
        )
        return StrongScalingModel(inputs, JAGUAR_LIKE).efficiency(16384, 16384)

    assert once(benchmark, run) == pytest.approx(1.0)
