"""§3.1-3.2: communication-algorithm scaling surprises.

Regenerated claims:

* **memory surprise** — buffered Alltoall per-node memory grows
  linearly in P (quadratically machine-wide), crossing a node's RAM
  near the paper's observed 256-node OpenMPI ceiling; the hierarchical
  relay keeps it flat,
* **performance surprise** — for the sparse particle-exchange pattern,
  the trivial pairwise loop sends only the non-empty pairs and beats a
  dense exchange as P grows,
* **branch aggregation** — hierarchical pairwise aggregation moves far
  less data per rank than WS93's global concatenation as P grows.
"""

import numpy as np
import pytest

from _simlib import once, print_table
from repro.keys import KEY_BITS, keys_from_positions
from repro.parallel import (
    MachineModel,
    SimComm,
    alltoall_pairwise,
    branch_nodes,
    estimate_buffered_memory_per_node,
    exchange_global_concat,
    exchange_hierarchical,
    sparse_exchange_pattern,
)


def test_memory_surprise(benchmark):
    def run():
        rows = []
        for nodes in (16, 64, 256, 1024):
            p = nodes * 24
            mem = estimate_buffered_memory_per_node(p, 24)
            rows.append((nodes, p, mem / 1e9))
        return rows

    rows = once(benchmark, run)
    print_table(
        "§3.1 memory surprise: buffered Alltoall per-node footprint",
        ["nodes", "ranks", "GB/node (32 GB nodes)"],
        [(n, p, round(g, 2)) for n, p, g in rows],
    )
    by_nodes = {n: g for n, p, g in rows}
    # the paper's ceiling: "could not run on more than 256 24-core nodes"
    assert by_nodes[256] > 32 * 0.25  # within reach of node RAM
    assert by_nodes[1024] > 32  # clearly impossible
    assert by_nodes[16] < 4  # and fine at small scale


def test_performance_surprise_sparse_pairwise(benchmark):
    """The trivial pairwise loop's cost tracks the number of *non-empty*
    partners; a dense implementation pays all P^2 lanes."""

    def run():
        rows = []
        for p in (8, 32, 128):
            send = sparse_exchange_pattern(p, 20000)
            comm = SimComm(p, MachineModel())
            alltoall_pairwise(comm, send)
            dense_msgs = p * (p - 1)
            rows.append(
                (p, comm.ledger.total_messages(), dense_msgs,
                 comm.ledger.time_s)
            )
        return rows

    rows = once(benchmark, run)
    print_table(
        "§3.1 performance surprise: sparse exchange, pairwise loop",
        ["ranks", "messages sent", "dense P(P-1)", "modeled time (s)"],
        [(p, m, d, round(t, 6)) for p, m, d, t in rows],
    )
    # the sparse fraction of the dense lane count falls with P
    fracs = [msgs / dense for _p, msgs, dense, _t in rows]
    assert all(a > b for a, b in zip(fracs, fracs[1:]))
    assert fracs[-1] < 0.05
    # message count grows linearly (4 neighbors each), not quadratically
    assert rows[-1][1] / rows[0][1] == pytest.approx(
        rows[-1][0] / rows[0][0], rel=0.2
    )


def test_branch_aggregation_scaling(benchmark):
    """Bytes per rank: global concatenation grows ~linearly with P;
    hierarchical aggregation grows ~log P."""
    rng = np.random.default_rng(7)
    c = rng.random((20, 3))
    pos = (c[rng.integers(0, 20, 20000)] + 0.04 * rng.standard_normal((20000, 3))) % 1.0
    keys = np.sort(keys_from_positions(pos))
    n = len(keys)

    def run():
        rows = []
        for p in (8, 32, 128):
            bounds = (np.arange(p + 1) * n) // p
            branches = [branch_nodes(keys, bounds[i], bounds[i + 1]) for i in range(p)]
            placeholder = np.uint64(1) << np.uint64(3 * KEY_BITS)
            intervals = [
                (int(keys[bounds[i]] - placeholder),
                 int(keys[bounds[i + 1] - 1] - placeholder))
                for i in range(p)
            ]
            c1 = SimComm(p)
            exchange_global_concat(c1, branches)
            c2 = SimComm(p)
            exchange_hierarchical(c2, branches, intervals)
            rows.append(
                (p,
                 c1.ledger.total_bytes() / p,
                 c2.ledger.total_bytes() / p,
                 float(np.mean([len(b) for b in branches])))
            )
        return rows

    rows = once(benchmark, run)
    print_table(
        "§3.2 branch exchange: bytes per rank",
        ["ranks", "global concat B/rank", "hierarchical B/rank", "mean branches"],
        [(p, round(a), round(b), round(m, 1)) for p, a, b, m in rows],
    )
    # hierarchical wins at every scale tested and the gap widens
    gaps = [a / b for _p, a, b, _m in rows]
    assert all(g > 1.0 for g in gaps[1:])
    assert gaps[-1] > gaps[0]
