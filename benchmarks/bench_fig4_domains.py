"""Figure 4: space-filling-curve domain decomposition.

The paper shows 3072 processor domains of a highly evolved 1 Gpc/h
box.  This bench decomposes a clustered particle distribution into
thousands of SFC domains and reports the figure's implicit
quantitative content: near-perfect work balance, spatially compact
domains (small surface fraction), and curve contiguity, for Morton vs
Hilbert orderings.
"""

import numpy as np
import pytest

from _simlib import once, print_table
from repro.parallel import decompose, domain_surface_stats


def _clustered(n=60000, seed=0):
    """A crude highly-evolved density field: halos + filaments + field."""
    rng = np.random.default_rng(seed)
    halos = rng.random((40, 3))
    sizes = rng.pareto(2.0, 40) + 1.0
    sizes = (sizes / sizes.sum() * n * 0.6).astype(int)
    parts = [rng.random((n - sizes.sum(), 3))]
    for c, s in zip(halos, sizes):
        parts.append((c + 0.02 * rng.standard_normal((s, 3))) % 1.0)
    return np.concatenate(parts)


@pytest.mark.parametrize("curve", ["morton", "hilbert"])
def test_fig4_decomposition(benchmark, curve):
    pos = _clustered()
    n_domains = 3072 if len(pos) >= 30000 else 256

    def run():
        d = decompose(pos, n_domains, curve=curve)
        stats = domain_surface_stats(pos, d, probe=0.01)
        return d, stats

    d, stats = once(benchmark, run)
    print_table(
        f"Fig. 4: {n_domains} {curve} domains of a clustered box",
        ["metric", "value"],
        [
            ("particles", len(pos)),
            ("count imbalance (max/mean - 1)", round(d.load_imbalance(), 4)),
            ("boundary fraction @0.01", round(stats["boundary_fraction"], 4)),
            ("mean domain extent", round(stats["mean_extent"], 4)),
            ("max domain extent", round(stats["max_extent"], 4)),
        ],
    )
    # work balance is the decomposition's contract
    assert d.load_imbalance() < 0.3
    # domains are small compared to the box (compactness)
    ideal = (1.0 / n_domains) ** (1 / 3)
    assert stats["mean_extent"] < 8 * ideal
    # every domain is a contiguous interval of the curve
    order = np.argsort(d.keys)
    assert np.all(np.diff(d.rank_of[order]) >= 0)


def test_fig4_weighted_balance(benchmark):
    """Production decomposition balances *work* (interaction counts),
    not particle counts — clustered particles cost more."""
    pos = _clustered(seed=3)
    rng = np.random.default_rng(1)
    # synthetic work: particles in dense regions cost ~3x
    from scipy.spatial import cKDTree

    t = cKDTree(pos % 1.0, boxsize=1.0)
    density = np.array(t.query_ball_point(pos % 1.0, 0.01, return_length=True))
    weights = 1.0 + 2.0 * density / max(density.max(), 1)

    def run():
        d = decompose(pos, 512, weights=weights)
        return d.load_imbalance(weights), d.load_imbalance()

    w_imb, c_imb = once(benchmark, run)
    print(
        f"\nweighted decomposition: work imbalance {w_imb:.3f}, "
        f"(count imbalance {c_imb:.3f} is allowed to be worse)"
    )
    assert w_imb < 0.25
