"""Shared helpers for the table/figure benchmarks.

Simulation-backed benchmarks (Figs. 7 and 8) are expensive, so results
are cached on disk keyed by the configuration; re-running the bench
suite reuses them.  Sizes default to laptop scale and grow with::

    REPRO_BENCH_N      particles per dimension (default 12)
    REPRO_BENCH_FULL   set to 1 for the larger, slower configuration

Every benchmark prints the rows/series it regenerates so the tee'd
bench log doubles as the measured side of EXPERIMENTS.md.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.instrument import Tracer
from repro.instrument.report import force_stage_totals
from repro.simulation import Simulation, SimulationConfig

CACHE_DIR = Path(__file__).parent / "_cache"

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "12"))
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: version of the shared receipt envelope written by :func:`emit_bench`
BENCH_SCHEMA_VERSION = 1

#: receipt fields that identify a bench configuration (the registry key)
_BENCH_IDENT_FIELDS = ("bench", "type", "mode", "n_particles", "n_max", "errtol")


def emit_bench(name: str, doc: dict, path) -> dict:
    """Stamp and write one benchmark receipt; register the emission.

    The single exit point for ``BENCH_*.json``: adds the shared
    provenance envelope (schema version, host info, cpu count, git
    commit, timestamp) to ``doc``, writes it to ``path``, and — when a
    run observer is active (``REPRO_OBS_DIR``) — appends the emission
    to the run registry keyed by a hash of the receipt's identifying
    fields, so overwritten snapshots still accumulate a trajectory.
    Returns the stamped document.
    """
    import platform
    import socket
    import time

    from repro.diagnose.manifest import config_hash
    from repro.observe import get_observer
    from repro.observe.registry import git_commit

    now = time.time()
    doc = dict(doc)
    doc.setdefault("bench", name)
    doc["bench_schema"] = BENCH_SCHEMA_VERSION
    doc["host"] = {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }
    doc["cpu_count"] = os.cpu_count()
    doc["git_commit"] = git_commit()
    doc["created_unix"] = now
    doc["created"] = time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(now))
    path = Path(path)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True, default=str) + "\n")
    ident = {k: doc[k] for k in _BENCH_IDENT_FIELDS if k in doc}
    get_observer().record_bench(doc, key=config_hash(ident))
    return doc


def config_key(cfg: SimulationConfig) -> str:
    payload = {
        k: (v.name if hasattr(v, "name") and k == "cosmology" else v)
        for k, v in cfg.__dict__.items()
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def run_cached(cfg: SimulationConfig) -> dict:
    """Run (or load) a simulation; returns dict with pos, history summary.

    Fresh runs execute under the shared :class:`repro.instrument.Tracer`,
    so the cache carries the per-stage force breakdown (``stage_seconds``)
    and run totals alongside the particle data.
    """
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"sim_{config_key(cfg)}.npz"
    if path.exists():
        data = np.load(path, allow_pickle=False)
        out = {
            "pos": data["pos"],
            "mass": data["mass"],
            "a_final": float(data["a_final"]),
            "steps": int(data["steps"]),
            "interactions_per_particle": float(data["ipp"]),
        }
        if "metrics_json" in data.files:
            meta = json.loads(str(data["metrics_json"]))
            out.update(meta)
        return out
    tracer = Tracer()
    sim = Simulation(cfg, tracer=tracer)
    ps = sim.run()
    ipp = float(
        np.mean([r.interactions_per_particle for r in sim.history])
        if sim.history
        else 0.0
    )
    stage = force_stage_totals(tracer.stage_times())
    meta = {
        "stage_seconds": stage,
        "run_totals": sim.run_totals,
        "counters": tracer.counters,
    }
    np.savez_compressed(
        path,
        pos=ps.pos,
        mass=ps.mass,
        a_final=ps.a,
        steps=len(sim.history),
        ipp=ipp,
        metrics_json=json.dumps(meta),
    )
    return {
        "pos": ps.pos,
        "mass": ps.mass,
        "a_final": ps.a,
        "steps": len(sim.history),
        "interactions_per_particle": ipp,
        **meta,
    }


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(r, widths)))


def _fmt(v) -> str:
    if isinstance(v, float):
        if v != 0 and (abs(v) < 1e-3 or abs(v) >= 1e5):
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)
