"""End-to-end force benchmark: leaf vs hierarchical vs fmm-hybrid.

Times one full periodic background-subtracted treecode force solve at
each size for the dual-tree walks — the original per-sink-leaf walk
(``traversal="leaf"``), the sink-hierarchical mutual walk with CSR
interaction lists and segment-reduce evaluation, and the fmm-hybrid
walk (mutual cell-cell accepts into sink-side local expansions, run at
its production nleaf=8 operating point) — and writes the receipt to
``BENCH_force.json`` next to this file:

* force wall and its traverse/evaluate split (steady-state: second
  solve, so moment/autotune caches are warm),
* MAC tests (geometric acceptance evaluations), interactions per
  particle and the per-family breakdown (cell/pp/ghost/m2l) for each
  walk,
* fmm-hybrid promotion gates: >= 3x fewer interactions per particle
  and (full mode) >= 2x lower force wall than hierarchical on the same
  numpy backend, probe error inside the errtol budget, and bitwise
  serial-vs-sharded agreement,
* a force-error probe against the Ewald direct reference, graded
  against the errtol budget,
* a ``segment_sum`` micro-receipt (np.add.reduceat vs bincount),
* a backend A/B on the hierarchical walk — numpy vs the compiled
  m x n-blocked CSR kernel, single-thread and with
  ``REPRO_BENCH_WORKERS`` (default 2) pool workers — with
  wall/ipp-normalized throughput columns; the compiled columns only
  run where numba is installed (``summary.numba_available`` records
  which), and the embedded gate requires compiled >= numpy,
* embedded ``gates`` so ``repro-diag gate BENCH_force.json`` judges
  the run self-contained (the CI perf-smoke tripwire).

Sizes::

    REPRO_BENCH_N       particles per dimension — sets smoke mode with
                        one size N^3 and relaxed gates (CI uses 12)
    (default)           full mode: 16384 and 32768 particles, gates
                        require >= 3x fewer MAC tests and a traverse
                        speedup at the largest size

Run directly (``PYTHONPATH=src python benchmarks/bench_force_e2e.py``)
or via pytest.
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.diagnose.probe import reference_accelerations
from repro.gravity import TreecodeConfig, TreecodeGravity, make_softening
from repro.gravity.treeforce import segment_sum, segment_sum_bincount
from repro.instrument import Tracer

OUT_PATH = Path(__file__).parent / "BENCH_force.json"

SMOKE_N = os.environ.get("REPRO_BENCH_N")
ERRTOL = float(os.environ.get("REPRO_BENCH_FORCE_ERRTOL", "1e-4"))
SIZES = [int(SMOKE_N) ** 3] if SMOKE_N else [16384, 32768]
MODE = "smoke" if SMOKE_N else "full"


def _particles(n: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    return rng.random((n, 3)), np.full(n, 1.0 / n)


def _solve(traversal: str, pos, mass, backend: str = "numpy",
           workers: int = 0, nleaf: int = 16) -> dict:
    cfg = TreecodeConfig(
        p=4, errtol=ERRTOL, nleaf=nleaf, periodic=True, background=True,
        traversal=traversal, want_potential=False,
        backend=backend, workers=workers,
    )
    tr = Tracer()
    with TreecodeGravity(cfg) as solver:
        # warm the N-independent caches (lattice expansion, chunk
        # autotune, kernel JIT) on a small subset so the timed solve is
        # steady-state without paying a second full-size solve
        nw = min(len(pos), 4096)
        solver.compute(pos[:nw], mass[:nw], box=1.0)
        t0 = time.perf_counter()
        res = solver.compute(pos, mass, box=1.0, tracer=tr)
        wall = time.perf_counter() - t0
    stage = res.stats.get("stage_seconds", {})
    ipp = float(res.stats["interactions_per_particle"])
    return {
        "force_wall_s": wall,
        "traverse_s": stage.get("traverse", 0.0),
        "evaluate_s": stage.get("evaluate", stage.get("execute", 0.0)),
        "mac_tests": int(res.stats["mac_tests"]),
        "frontier_peak": int(res.stats["frontier_peak"]),
        "interactions_per_particle": ipp,
        # ipp-normalized throughput: traversal-level interactions per
        # second of force wall, comparable across walks and backends
        "interactions_per_second": ipp * len(pos) / max(wall, 1e-12),
        "backend": res.stats.get("backend", "numpy"),
        "backend_fallback": res.stats.get("backend_fallback"),
        # per-family interaction breakdown (cell/pp/ghost/m2l): the
        # hybrid column's win is the cell family collapsing into m2l
        "interactions_by_family": res.stats.get("interactions_by_family"),
        "nleaf": nleaf,
        # in-kernel roofline counters: interactions/s, effective
        # GFLOP/s, m x n tile shape, thread utilization (ISSUE 8)
        "kernel": res.stats.get("kernel"),
        "workers": workers,
        "acc": res.acc,  # stripped before serialization
        "eps": cfg.eps,
        "softening": cfg.softening,
    }


def _probe_error(pos, mass, rec, n_samples: int = 8) -> dict:
    rng = np.random.default_rng(0)
    idx = rng.choice(len(pos), size=n_samples, replace=False)
    kern = make_softening(rec["softening"], rec["eps"])
    ref = reference_accelerations(
        pos, mass, idx, softening=kern, periodic=True
    )
    err = np.linalg.norm(rec["acc"][idx] - ref, axis=1)
    return {
        "n_samples": int(n_samples),
        "max_abs_err": float(err.max()),
        "rms_abs_err": float(np.sqrt((err**2).mean())),
        "budget": ERRTOL,
        "err_over_budget": float(err.max() / ERRTOL),
    }


def _segment_sum_receipt(rows: int = 200_000, segs: int = 20_000) -> dict:
    """Micro A/B of the two segment-reduction kernels on a CSR-like
    workload (many short segments, 4 columns like the pp family)."""
    rng = np.random.default_rng(1)
    contrib = rng.standard_normal((rows, 4))
    cuts = np.sort(rng.choice(rows, size=segs - 1, replace=False))
    starts = np.concatenate([[0], cuts])
    out = {}
    for name, fn in (("reduceat", segment_sum), ("bincount", segment_sum_bincount)):
        fn(contrib, starts)  # warm
        t0 = time.perf_counter()
        for _ in range(3):
            r = fn(contrib, starts)
        out[f"{name}_s"] = (time.perf_counter() - t0) / 3
        out[f"{name}_sum"] = float(np.abs(r).sum())
    assert np.isclose(out["reduceat_sum"], out["bincount_sum"])
    out["chosen"] = "reduceat" if out["reduceat_s"] <= out["bincount_s"] else "bincount"
    return out


def run() -> dict:
    from repro.gravity import kernel_available

    compiled_real = kernel_available() and not os.environ.get(
        "REPRO_FORCE_PYKERNEL"
    )
    workers_mt = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))
    sizes = []
    for n in SIZES:
        pos, mass = _particles(n)
        leaf = _solve("leaf", pos, mass)
        hier = _solve("hierarchical", pos, mass)  # numpy single-thread
        # backend A/B on the hierarchical walk: numpy vs compiled,
        # single-thread and sharded (the interpreted-kernel testing
        # hook is far slower than numpy, so the compiled columns only
        # run where a real kernel exists — the receipt records why)
        backends = {"numpy_1t": hier}
        if compiled_real:
            backends["compiled_1t"] = _solve(
                "hierarchical", pos, mass, backend="compiled"
            )
            backends["numpy_mt"] = _solve(
                "hierarchical", pos, mass, workers=workers_mt
            )
            backends["compiled_mt"] = _solve(
                "hierarchical", pos, mass, backend="compiled",
                workers=workers_mt,
            )
        probe = _probe_error(pos, mass, hier)
        # fmm-hybrid column at its production configuration (nleaf=8:
        # smaller leaves push work from the pp floor into m2l pairs);
        # the A/B against `hier` is honest end-to-end — each mode at
        # its own best operating point, same backend
        hybrid = _solve("fmm-hybrid", pos, mass, nleaf=8)
        hybrid_mt = _solve("fmm-hybrid", pos, mass, nleaf=8,
                           workers=workers_mt)
        hybrid_bitident = bool(
            np.array_equal(hybrid["acc"], hybrid_mt["acc"])
        )
        hybrid_probe = _probe_error(pos, mass, hybrid)
        row = {
            "n": n,
            "leaf": {k: v for k, v in leaf.items() if k != "acc"},
            "hierarchical": {k: v for k, v in hier.items() if k != "acc"},
            "fmm_hybrid": {k: v for k, v in hybrid.items() if k != "acc"},
            "fmm_hybrid_mt": {
                k: v for k, v in hybrid_mt.items() if k != "acc"
            },
            "backends": {
                name: {k: v for k, v in rec.items() if k != "acc"}
                for name, rec in backends.items()
            },
            "probe": probe,
            "hybrid_probe": hybrid_probe,
            "mac_test_ratio": leaf["mac_tests"] / max(hier["mac_tests"], 1),
            "traverse_speedup": leaf["traverse_s"] / max(hier["traverse_s"], 1e-12),
            "force_speedup": leaf["force_wall_s"] / max(hier["force_wall_s"], 1e-12),
            # the fmm-hybrid promotion gates: interaction-count ratio,
            # end-to-end wall ratio (same numpy backend), serial-vs-
            # sharded bitwise reproducibility
            "hybrid_ipp_ratio": (
                hier["interactions_per_particle"]
                / max(hybrid["interactions_per_particle"], 1e-12)
            ),
            "hybrid_force_speedup": (
                hier["force_wall_s"] / max(hybrid["force_wall_s"], 1e-12)
            ),
            "hybrid_workers_bitident": 1.0 if hybrid_bitident else 0.0,
        }
        if "compiled_1t" in backends:
            row["backend_speedup_1t"] = (
                hier["force_wall_s"]
                / max(backends["compiled_1t"]["force_wall_s"], 1e-12)
            )
            row["backend_speedup_mt"] = (
                backends["numpy_mt"]["force_wall_s"]
                / max(backends["compiled_mt"]["force_wall_s"], 1e-12)
            )
        sizes.append(row)
        print(
            f"n={n}: mac {leaf['mac_tests']} -> {hier['mac_tests']} "
            f"({row['mac_test_ratio']:.2f}x fewer), traverse "
            f"{leaf['traverse_s']:.3f}s -> {hier['traverse_s']:.3f}s "
            f"({row['traverse_speedup']:.2f}x), force "
            f"{leaf['force_wall_s']:.3f}s -> {hier['force_wall_s']:.3f}s, "
            f"ipp {leaf['interactions_per_particle']:.0f} -> "
            f"{hier['interactions_per_particle']:.0f}, probe err/budget "
            f"{probe['err_over_budget']:.3f}"
        )
        fam = hybrid["interactions_by_family"]
        print(
            f"      fmm-hybrid: ipp "
            f"{hybrid['interactions_per_particle']:.0f} "
            f"({row['hybrid_ipp_ratio']:.2f}x fewer), force "
            f"{hybrid['force_wall_s']:.3f}s "
            f"({row['hybrid_force_speedup']:.2f}x), err/budget "
            f"{hybrid_probe['err_over_budget']:.3f}, families "
            f"cell={fam['cell']} pp={fam['pp']} ghost={fam['ghost']} "
            f"m2l={fam['m2l']}, workers bit-identical: {hybrid_bitident}"
        )
        if "backend_speedup_1t" in row:
            print(
                f"      backend A/B: compiled {row['backend_speedup_1t']:.2f}x "
                f"(1t), {row['backend_speedup_mt']:.2f}x ({workers_mt} workers)"
            )
        for name, rec in backends.items():
            kern = rec.get("kernel")
            if kern:
                print(
                    f"      kernel[{name}]: "
                    f"{kern['interactions_per_s']:.3g} inter/s, "
                    f"{kern['gflops']:.3f} GFLOP/s "
                    f"({kern['model_fraction']:.1%} of model), "
                    f"tile m {kern['m_mean']:.1f}/{kern['m_max']}, "
                    f"occupancy {kern['tile_occupancy']:.2f}"
                )
    last = sizes[-1]
    summary = {
        "n_max": last["n"],
        "mac_test_ratio": last["mac_test_ratio"],
        "traverse_speedup": last["traverse_speedup"],
        "force_speedup": last["force_speedup"],
        "probe_err_over_budget": last["probe"]["err_over_budget"],
        "hybrid_ipp_ratio": last["hybrid_ipp_ratio"],
        "hybrid_force_speedup": last["hybrid_force_speedup"],
        "hybrid_err_over_budget": last["hybrid_probe"]["err_over_budget"],
        "hybrid_workers_bitident": min(
            r["hybrid_workers_bitident"] for r in sizes
        ),
        "hybrid_interactions_per_particle": last["fmm_hybrid"][
            "interactions_per_particle"
        ],
        "numba_available": compiled_real,
    }
    # trend-gateable kernel throughput per backend column
    for name, rec in last["backends"].items():
        kern = rec.get("kernel")
        if kern:
            summary[f"kernel_gflops_{name}"] = kern["gflops"]
    # smoke mode (tiny N) only checks direction + error budget; the
    # full-size acceptance bounds are the ISSUE's 3x MAC / faster-walk
    gates = {
        "mac_test_ratio": {"min": 1.0 if MODE == "smoke" else 3.0},
        "probe_err_over_budget": {"max": 1.0},
        # fmm-hybrid promotion acceptance: >= 3x fewer interactions per
        # particle than hierarchical at full size, error still inside
        # the MAC budget, serial == sharded to the last bit
        "hybrid_ipp_ratio": {"min": 1.0 if MODE == "smoke" else 3.0},
        "hybrid_err_over_budget": {"max": 1.0},
        "hybrid_workers_bitident": {"min": 1.0},
    }
    if MODE == "full":
        gates["traverse_speedup"] = {"min": 1.0}
        # >= 2x lower end-to-end force wall on the same numpy backend
        gates["hybrid_force_speedup"] = {"min": 2.0}
        # absolute interaction-count tripwire: measured ~950/particle at
        # 32k (4x under hierarchical's ~3800) + regression headroom
        gates["hybrid_interactions_per_particle"] = {"max": 1300.0}
    if "backend_speedup_1t" in last:
        summary["backend_speedup_1t"] = last["backend_speedup_1t"]
        summary["backend_speedup_mt"] = last["backend_speedup_mt"]
        # ISSUE 7 acceptance: compiled no slower than numpy everywhere,
        # and >= 4x single-thread at full size on real hardware
        gates["backend_speedup_1t"] = {
            "min": 1.0 if MODE == "smoke" else 4.0
        }
        gates["backend_speedup_mt"] = {"min": 1.0}
    return {
        "type": "bench_force_e2e",
        "mode": MODE,
        "errtol": ERRTOL,
        "sizes": sizes,
        "segment_sum": _segment_sum_receipt(),
        "summary": summary,
        "gates": gates,
    }


def test_force_e2e_receipt():
    from _simlib import emit_bench

    doc = emit_bench("force_e2e", run(), OUT_PATH)
    print(f"wrote {OUT_PATH}")
    s = doc["summary"]
    assert s["mac_test_ratio"] >= doc["gates"]["mac_test_ratio"]["min"]
    assert s["probe_err_over_budget"] <= 1.0
    assert s["hybrid_ipp_ratio"] >= doc["gates"]["hybrid_ipp_ratio"]["min"]
    assert s["hybrid_err_over_budget"] <= 1.0
    assert s["hybrid_workers_bitident"] >= 1.0


if __name__ == "__main__":
    test_force_e2e_receipt()
