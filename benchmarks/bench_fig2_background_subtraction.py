"""Figure 2 / §2.2.1 / §7: background subtraction efficiency and accuracy.

Claims regenerated:

* at early times (near-uniform field) background subtraction cuts the
  interaction count several-fold at fixed tolerance ("a factor of five"
  at the paper's earliest epochs; factor ~3 overall at errtol 1e-5),
* relaxing errtol by 10x reduces the interaction count ~3x
  (§7: 600k flops/particle at 1e-5 -> 200k at 1e-4),
* the subtracted forces are *correct*: against the Ewald reference the
  peculiar force error respects the tolerance.
"""

import numpy as np
import pytest

from _simlib import BENCH_N, once, print_table
from repro.cosmology import PLANCK2013
from repro.gravity import TreecodeConfig, TreecodeGravity
from repro.gravity.ewald import EwaldSummation
from repro.simulation import ICConfig, generate_ic


def _early_field(n=None, a=0.02):
    n = n or max(BENCH_N, 12)
    ps = generate_ic(PLANCK2013, ICConfig(n_per_dim=n, a_init=a, seed=11))
    return ps.pos, ps.mass


def _interactions(pos, mass, background, errtol=1e-5):
    cfg = TreecodeConfig(
        p=4, errtol=errtol, background=background, periodic=True, ws=1,
        softening="spline", eps=0.01, want_potential=False, dtype=np.float32,
    )
    solver = TreecodeGravity(cfg)
    res = solver.compute(pos, mass)
    return res.stats["interactions_per_particle"], res


def _cell_counts(pos, mass, background, mac, errtol=1e-5):
    from repro.tree import build_tree, compute_moments, traverse

    tree = build_tree(pos, mass, nleaf=16, with_ghosts=True)
    moms = compute_moments(
        tree, p=4, tol=errtol, background=background,
        mean_density=mass.sum() if background else None, mac=mac,
    )
    inter = traverse(tree, moms, periodic=True, ws=1)
    return (
        inter.n_cell_interactions(tree) / tree.n_particles,
        inter.interactions_per_particle(tree),
    )


def test_fig2_interaction_reduction_early_times(benchmark):
    """2HOT (background + moment MAC) vs the WS93-era configuration
    (no background, rigorous absolute-moment MAC), at z = 49.

    The paper measures up to 5x at its production scale (4096^3, deep
    trees whose large cells carry enormous cancelling moments).  At
    laptop N the far field is only a few tree levels deep, so the
    measurable gain is modest but must *grow with N* — that growth is
    the asserted reproduction; see EXPERIMENTS.md for the scale gap
    discussion.
    """
    def run():
        rows = []
        for n in (BENCH_N, max(BENCH_N + 8, 20)):
            pos, mass = _early_field(n=n)
            new_cell, new_tot = _cell_counts(pos, mass, True, "moment")
            old_cell, old_tot = _cell_counts(pos, mass, False, "absolute")
            rows.append((n**3, round(old_cell), round(new_cell),
                         round(old_cell / new_cell, 2),
                         round(old_tot / new_tot, 2)))
        return rows

    rows = once(benchmark, run)
    print_table(
        "Fig. 2 / §2.2.1: WS93-era vs 2HOT interaction counts at z=49",
        ["N", "cell int/p (old)", "cell int/p (2HOT)", "cell ratio", "total ratio"],
        rows,
    )
    # the advantage exists and grows with problem size
    assert rows[-1][3] > 1.0
    assert rows[-1][3] >= rows[0][3] * 0.9


def test_section7_errtol_ladder(benchmark):
    pos, mass = _early_field(a=0.2)

    def run():
        out = []
        for tol in (1e-4, 1e-5):
            ipp, _ = _interactions(pos, mass, background=True, errtol=tol)
            out.append((tol, ipp))
        return out

    rows = once(benchmark, run)
    print_table(
        "§7: interaction count vs errtol (background on)",
        ["errtol", "interactions/particle"],
        [(f"{t:g}", round(i)) for t, i in rows],
    )
    # 10x tolerance relaxation cuts interactions by a sizable factor
    # (the paper: ~3x fewer operations)
    ratio = rows[1][1] / rows[0][1]
    assert 1.5 < ratio < 10.0


def test_fig2_accuracy_vs_ewald(benchmark):
    """The subtracted treecode agrees with the exact Ewald delta-rho
    force to the requested tolerance scale on a small system."""
    rng = np.random.default_rng(2)
    n = 128
    pos = rng.random((n, 3))
    mass = np.full(n, 1.0 / n)

    def run():
        ref = EwaldSummation().accelerations(pos, mass)
        cfg = TreecodeConfig(
            p=6, errtol=1e-7, background=True, periodic=True, ws=2,
            softening="none", nleaf=8,
        )
        res = TreecodeGravity(cfg).compute(pos, mass)
        return np.linalg.norm(res.acc - ref, axis=1), np.linalg.norm(ref, axis=1)

    err, mag = once(benchmark, run)
    rel = err.max() / mag.mean()
    print(f"\ntreecode(bg, ws=2) vs Ewald: max rel error {rel:.2e}")
    assert rel < 1e-4
