"""Figure 6: multipole error vs distance and error histogram at r = 4.

Paper setup: 512 particles randomly distributed in a unit cube;
relative acceleration error of a single multipole of order p = 0, 2,
4, 6, 8 evaluated at distance r in [0.5, 4], plus a histogram of
log10(error) at r = 4 including float32 direct summation.  Headline
claims reproduced quantitatively:

* error curves drop as (b/d)^(p+1) with clean ordering by p,
* "a single p = 8 multipole is more accurate than direct summation in
  single precision at r = 4".
"""

import numpy as np
import pytest

from _simlib import once, print_table
from repro.gravity import direct_accelerations
from repro.multipoles import m2p, p2m

N_PART = 512
ORDERS = [0, 2, 4, 6, 8]


def _setup(seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.random((N_PART, 3)) - 0.5
    mass = rng.random(N_PART)
    mass /= mass.sum()
    return pos, mass


def _targets(r, n=64, seed=1):
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((n, 3))
    u /= np.linalg.norm(u, axis=1)[:, None]
    return r * u


def _relative_errors(pos, mass, targets, p):
    moments = p2m(pos, mass, np.zeros(3), p)
    _, acc = m2p(moments, np.zeros(3), targets, p)
    ref = direct_accelerations(pos, mass, targets=targets, dtype=np.float64)
    return np.linalg.norm(acc - ref, axis=1) / np.linalg.norm(ref, axis=1)


def test_fig6_error_vs_distance(benchmark):
    pos, mass = _setup()

    def run():
        radii = np.linspace(0.75, 4.0, 12)
        table = {}
        for p in ORDERS:
            errs = []
            for r in radii:
                e = _relative_errors(pos, mass, _targets(r), p)
                errs.append(float(np.median(e)))
            table[p] = errs
        return radii, table

    radii, table = once(benchmark, run)
    rows = [
        tuple([f"{r:.2f}"] + [table[p][i] for p in ORDERS])
        for i, r in enumerate(radii)
    ]
    print_table(
        "Fig. 6 (upper): median relative acceleration error vs r",
        ["r"] + [f"p={p}" for p in ORDERS],
        rows,
    )
    # ordering: higher order more accurate at every r >= 1
    for i, r in enumerate(radii):
        if r < 1.0:
            continue
        vals = [table[p][i] for p in ORDERS]
        assert all(a > b for a, b in zip(vals, vals[1:])), f"ordering broken at r={r}"
    # scaling: p=8 error falls ~ (1/r)^9 between r=2 and r=4
    i2 = np.argmin(np.abs(radii - 2.0))
    i4 = np.argmin(np.abs(radii - 4.0))
    slope = np.log(table[8][i2] / table[8][i4]) / np.log(radii[i4] / radii[i2])
    assert slope > 6.0


def test_fig6_histogram_at_r4(benchmark):
    pos, mass = _setup()

    def run():
        t = _targets(4.0, n=256)
        out = {}
        for p in ORDERS:
            out[f"p={p}"] = _relative_errors(pos, mass, t, p)
        # float32 direct summation error vs float64 reference
        ref = direct_accelerations(pos, mass, targets=t, dtype=np.float64)
        a32 = direct_accelerations(
            pos.astype(np.float32), mass.astype(np.float32), targets=t,
            dtype=np.float32,
        )
        out["float32 direct"] = np.linalg.norm(
            a32.astype(np.float64) - ref, axis=1
        ) / np.linalg.norm(ref, axis=1)
        return out

    errors = once(benchmark, run)
    rows = [
        (name, float(np.median(np.log10(e))), float(np.log10(e).min()),
         float(np.log10(e).max()))
        for name, e in errors.items()
    ]
    print_table(
        "Fig. 6 (lower): log10 relative error at r = 4",
        ["curve", "median", "min", "max"],
        rows,
    )
    # the paper's headline: p=8 beats float32 direct summation at r=4
    assert np.median(errors["p=8"]) < np.median(errors["float32 direct"])


def test_fig6_float32_floor(benchmark):
    """The float32 direct error sits at the single-precision floor
    (~1e-7 relative), independent of geometry."""
    pos, mass = _setup(seed=3)

    def run():
        t = _targets(4.0, n=128, seed=4)
        ref = direct_accelerations(pos, mass, targets=t, dtype=np.float64)
        a32 = direct_accelerations(
            pos.astype(np.float32), mass.astype(np.float32), targets=t,
            dtype=np.float32,
        )
        e = np.linalg.norm(a32.astype(np.float64) - ref, axis=1)
        return e / np.linalg.norm(ref, axis=1)

    err = once(benchmark, run)
    assert 1e-8 < np.median(err) < 1e-5
