"""Figure 8: the halo mass function against theory fits.

The paper's suite: 4096^3 particles in boxes of 1-8 Gpc/h (particle
mass changing 8x per step), SO masses, plotted as N(M)/Tinker08 for
Planck 2013 vs WMAP1 cosmologies.  At bench scale (default 16^3) the
mass function is dominated by exactly the systematic §6 diagnoses —
"improper growth of modes near the Nyquist frequency, due to the
discrete representation of the continuous Fourier modes" — plus
Poisson noise, so the asserted reproduction targets are the paper's
*structural* claims:

* halos form and their abundance tracks the theory fits within the
  (large) small-N window; the table reports N(M) against Warren et
  al. (2006) — the FOF-calibrated fit authored by the paper's author —
  and against Tinker08, with sigma(M) computed both from the full
  power spectrum and truncated to the modes the box actually contains,
* different box sizes are *internally consistent* where their mass
  ranges overlap (the paper's open-symbol check),
* the WMAP1 cosmology (sigma8 = 0.9) puts more mass into halos than
  Planck 2013 at shared phases.
"""

import dataclasses

import numpy as np
import pytest

from _simlib import BENCH_N, FULL, once, print_table, run_cached
from repro.analysis import (
    TinkerMassFunction,
    WarrenMassFunction,
    binned_mass_function,
    fof_halos,
    so_masses,
)
from repro.cosmology import PLANCK2013, WMAP1, LinearPower
from repro.simulation import SimulationConfig

N = max(BENCH_N, 18) if FULL else max(BENCH_N, 16)
BOXES = [30.0 * N / 16, 60.0 * N / 16] + ([120.0 * N / 16] if FULL else [])
MIN_MEMBERS = 16

BASE = SimulationConfig(
    n_per_dim=N,
    a_init=0.02,
    a_final=1.0,
    errtol=1e-4,
    p=4,
    nleaf=24,
    dlna_max=0.125,
    max_refine=2,
    track_energy=False,
    seed=1234,
)


def _fof_masses(cfg: SimulationConfig):
    """Run (cached); FOF(0.2) masses in Msun/h plus the particle mass."""
    out = run_cached(cfg)
    pos, mass = out["pos"], out["mass"]
    fof = fof_halos(pos, mass, linking_length=0.2, min_members=MIN_MEMBERS)
    m_part_msun = cfg.cosmology.particle_mass(cfg.box_mpc_h, cfg.n_particles)
    if fof.n_groups == 0:
        return np.empty(0), m_part_msun, fof
    return fof.masses / mass[0] * m_part_msun, m_part_msun, fof


@pytest.fixture(scope="module")
def suite():
    out = {}
    for box in BOXES:
        cfg = dataclasses.replace(BASE, box_mpc_h=box)
        out[box] = _fof_masses(cfg)
    return out


def test_fig8_ratio_to_fits(benchmark, suite):
    def run():
        warren = WarrenMassFunction()
        tinker = TinkerMassFunction(200.0)
        rows = []
        for box, (masses, m_part, _fof) in suite.items():
            if len(masses) < 3 or masses.max() < 1.3 * MIN_MEMBERS * m_part:
                continue
            lp_full = LinearPower(PLANCK2013)
            lp_trunc = LinearPower(
                PLANCK2013, kmin=2 * np.pi / box, kmax=np.pi * N / box
            )
            res = binned_mass_function(
                masses, box, n_bins=3,
                m_range=(MIN_MEMBERS * m_part, masses.max() * 1.2),
            )
            for m, dn, cnt in zip(res.m_center, res.dn_dlnm, res.counts):
                if cnt < 2:
                    continue
                w_full = warren.dn_dlnm(PLANCK2013, m, power=lp_full)[0]
                w_tr = warren.dn_dlnm(PLANCK2013, m, power=lp_trunc)[0]
                t_full = tinker.dn_dlnm(PLANCK2013, m, power=lp_full)[0]
                rows.append(
                    (round(box, 1), f"{m:.2e}", int(cnt),
                     round(dn / w_full, 2), round(dn / w_tr, 2),
                     round(dn / t_full, 2))
                )
        return rows

    rows = once(benchmark, run)
    print_table(
        "Fig. 8: N(M) / fits (FOF b=0.2, >=16 particles)",
        ["box Mpc/h", "M [Msun/h]", "halos", "/Warren06", "/Warren06(trunc)",
         "/Tinker08"],
        rows,
    )
    print(
        "NOTE: bench-N abundances sit low — the §6 near-Nyquist growth "
        "suppression (see EXPERIMENTS.md); the paper needed 4096^3 to "
        "control this to 1%."
    )
    assert len(rows) >= 2
    ratios = np.array([r[3] for r in rows])
    # halos exist and track the fit within the small-N window
    assert np.all((ratios > 0.05) & (ratios < 10.0))
    assert 0.1 < np.median(ratios) < 4.0


def test_fig8_internal_consistency_across_boxes(benchmark, suite):
    """Paper: 'the simulations are internally consistent' — two boxes
    (8x particle mass apart) agree on the mass function where their
    ranges overlap, within Poisson errors."""

    def run():
        boxes = sorted(suite)
        small, m_small, _ = suite[boxes[0]]
        large, m_large, _ = suite[boxes[1]]
        if len(small) == 0 or len(large) == 0:
            return None
        lo = max(MIN_MEMBERS * m_small, MIN_MEMBERS * m_large)
        hi = min(small.max(), large.max()) * 1.01
        if hi <= lo * 1.1:
            return None
        r_s = binned_mass_function(small, boxes[0], n_bins=2, m_range=(lo, hi))
        r_l = binned_mass_function(large, boxes[1], n_bins=2, m_range=(lo, hi))
        return r_s, r_l

    out = once(benchmark, run)
    if out is None:
        pytest.skip("no overlapping mass range at this bench scale")
    r_s, r_l = out
    rows, ok, total = [], 0, 0
    for m, a, ca, b, cb in zip(
        r_s.m_center, r_s.dn_dlnm, r_s.counts, r_l.dn_dlnm, r_l.counts
    ):
        if ca >= 1 and cb >= 1:
            total += 1
            sigma = np.sqrt(1 / ca + 1 / cb)
            dev = abs(np.log(max(a, 1e-30) / max(b, 1e-30)))
            rows.append((f"{m:.2e}", int(ca), int(cb), round(dev / sigma, 2)))
            if dev < 3 * sigma:
                ok += 1
    print_table(
        "Fig. 8: cross-box consistency (overlapping masses)",
        ["M [Msun/h]", "halos (small box)", "halos (big box)", "deviation/sigma"],
        rows,
    )
    if total == 0:
        pytest.skip("overlap too thin at this scale")
    assert ok >= max(1, total - 1)


def test_fig8_wmap1_puts_more_mass_in_halos(benchmark):
    """sigma8 = 0.9 (WMAP1) vs 0.834 (Planck): with shared phases the
    same protohalos collapse earlier and heavier — total FOF-grouped
    mass and the largest halo both grow."""

    def run():
        box = BOXES[0]
        p_m, _, p_fof = _fof_masses(dataclasses.replace(BASE, box_mpc_h=box))
        w_m, _, w_fof = _fof_masses(
            dataclasses.replace(BASE, box_mpc_h=box, cosmology=WMAP1)
        )
        return p_fof, w_fof

    p_fof, w_fof = once(benchmark, run)
    grouped_p = int(p_fof.sizes.sum()) if p_fof.n_groups else 0
    grouped_w = int(w_fof.sizes.sum()) if w_fof.n_groups else 0
    top_p = int(p_fof.sizes[0]) if p_fof.n_groups else 0
    top_w = int(w_fof.sizes[0]) if w_fof.n_groups else 0
    print(
        f"\ngrouped particles: Planck {grouped_p} (largest halo {top_p}), "
        f"WMAP1 {grouped_w} (largest halo {top_w})"
    )
    assert grouped_w > grouped_p
    assert top_w >= top_p


def test_fig8_so_vs_fof_definitions(benchmark, suite):
    """The SO(200m) and FOF(0.2) mass definitions agree at the tens-of-
    percent level on the same halos — the definition systematics §6 and
    Tinker08 discuss."""

    def run():
        box = BOXES[0]
        out = run_cached(dataclasses.replace(BASE, box_mpc_h=box))
        pos, mass = out["pos"], out["mass"]
        fof = fof_halos(pos, mass, linking_length=0.2, min_members=30)
        if fof.n_groups == 0:
            return None
        cat = so_masses(pos, mass, fof.centers, delta=200.0)
        return fof, cat

    out = once(benchmark, run)
    if out is None or len(out[1].m_delta) == 0:
        pytest.skip("no halos big enough at this bench scale")
    fof, cat = out
    # compare total mass in the two definitions over matched objects
    total_fof = fof.masses[: len(cat.m_delta)].sum()
    total_so = cat.m_delta.sum()
    ratio = total_so / total_fof
    print(f"\nSO(200m)/FOF(0.2) total-mass ratio: {ratio:.2f}")
    # at bench N halos are puffy: rho_enc > 200 rho_mean holds only in
    # cores, so SO sits well below FOF (well-resolved halos converge to
    # ratios near 1; see EXPERIMENTS.md)
    assert 0.05 < ratio < 3.0
