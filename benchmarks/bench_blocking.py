"""§3.3: m x n interaction blocking.

"we can bundle a set of m source cells which have interactions in
common with a set of n sink particles (contained within a sink cell),
and perform the full m x n interactions on this block" — in this
library the block size is the leaf occupancy (``nleaf``): larger sink
blocks amortize the per-batch overhead (NumPy dispatch here; cache
misses and PCIe latency in the paper) at the price of more near-field
pair work.  This bench measures the full trade-off curve and the
per-interaction evaluation rate, the quantity the paper's GPU/SIMD
arguments are about.
"""

import time

import numpy as np
import pytest

from _simlib import BENCH_N, once, print_table
from repro.cosmology import PLANCK2013
from repro.gravity import TreecodeConfig, TreecodeGravity
from repro.simulation import ICConfig, generate_ic


def test_blocking_tradeoff(benchmark):
    n = max(BENCH_N, 12)
    ps = generate_ic(PLANCK2013, ICConfig(n_per_dim=n, a_init=0.33, seed=21))

    def run():
        rows = []
        for nleaf in (4, 16, 64):
            cfg = TreecodeConfig(
                p=4, errtol=1e-4, nleaf=nleaf, background=True, periodic=True,
                ws=1, softening="spline", eps=0.05 / n, want_potential=False,
                dtype=np.float32,
            )
            solver = TreecodeGravity(cfg)
            t0 = time.perf_counter()
            res = solver.compute(ps.pos, ps.mass)
            dt = time.perf_counter() - t0
            st = res.stats
            total = (
                st["cell_interactions"] + st["pp_interactions"]
                + st["prism_interactions"]
            )
            rows.append(
                (nleaf, round(st["cell_interactions"] / len(ps.pos)),
                 round(st["pp_interactions"] / len(ps.pos)),
                 round(dt, 2), round(total / dt / 1e6, 2))
            )
        return rows

    rows = once(benchmark, run)
    print_table(
        "§3.3 m x n blocking: block size vs work mix and evaluation rate",
        ["nleaf (block)", "cell int/p", "pp int/p", "wall s",
         "Minteractions/s"],
        rows,
    )
    by = {r[0]: r for r in rows}
    # bigger blocks shift work from expensive cell interactions to cheap
    # pair interactions...
    assert by[64][1] < by[4][1]
    assert by[64][2] > by[4][2]
    # ...and raise the raw evaluation rate (the amortization §3.3 is after)
    assert by[64][4] > by[4][4]


def test_force_accuracy_independent_of_blocking(benchmark):
    """Blocking is a performance knob, not a physics knob: results at
    different nleaf agree to the MAC tolerance scale."""
    n = max(BENCH_N, 10)
    ps = generate_ic(PLANCK2013, ICConfig(n_per_dim=n, a_init=0.33, seed=22))

    def run():
        out = {}
        for nleaf in (8, 48):
            cfg = TreecodeConfig(
                p=4, errtol=1e-5, nleaf=nleaf, background=True, periodic=True,
                ws=1, softening="spline", eps=0.05 / n, want_potential=False,
            )
            out[nleaf] = TreecodeGravity(cfg).compute(ps.pos, ps.mass).acc
        return out

    accs = once(benchmark, run)
    a, b = accs[8], accs[48]
    scale = np.linalg.norm(b, axis=1).mean()
    diff = np.linalg.norm(a - b, axis=1).max() / scale
    print(f"\nmax relative force difference nleaf 8 vs 48: {diff:.2e}")
    assert diff < 5e-3
