"""§2.4: periodic boundary accuracy and cost split.

Claims regenerated:

* the lattice local-expansion method with p = 8, ws = 2 reaches ~1e-7
  of the force against Ewald summation,
* the local expansion costs ~1% and the boundary images 5-10% of the
  force calculation.
"""

import time

import numpy as np
import pytest

from _simlib import once, print_table
from repro.gravity import TreecodeConfig, TreecodeGravity
from repro.gravity.ewald import EwaldSummation
from repro.gravity.periodic import PeriodicLocalExpansion
from repro.multipoles import p2m, subtract_background
from repro.multipoles.prism import prism_acceleration


def test_periodic_accuracy_ladder(benchmark):
    rng = np.random.default_rng(4)
    n = 48
    pos = rng.random((n, 3))
    mass = rng.random(n) / n
    rho = mass.sum()

    def run():
        ref = EwaldSummation().accelerations(pos, mass)
        rows = []
        for ws, p_loc in ((1, 4), (1, 8), (2, 4), (2, 8)):
            acc = np.zeros_like(pos)
            offs = [
                np.array([i, j, k], dtype=float)
                for i in range(-ws, ws + 1)
                for j in range(-ws, ws + 1)
                for k in range(-ws, ws + 1)
            ]
            for off in offs:
                d = pos[:, None, :] - (pos[None, :, :] + off)
                r2 = np.einsum("ijk,ijk->ij", d, d)
                if np.all(off == 0):
                    np.fill_diagonal(r2, np.inf)
                acc -= np.einsum("j,ijk->ik", mass, d / r2[:, :, None] ** 1.5)
                acc += prism_acceleration(pos, off, off + 1.0, -rho)
            m = subtract_background(p2m(pos, mass, np.full(3, 0.5), 8), 1.0, rho, 8)
            ple = PeriodicLocalExpansion(p_source=8, p_local=p_loc, ws=ws)
            _, far = ple.field(m, pos)
            err = np.linalg.norm(acc + far - ref, axis=1)
            rows.append((ws, p_loc, float(err.max() / np.linalg.norm(ref, axis=1).mean())))
        return rows

    rows = once(benchmark, run)
    print_table(
        "§2.4: periodic force error vs Ewald (exact near field + lattice tail)",
        ["ws", "p_local", "max relative error"],
        rows,
    )
    best = {(ws, p): e for ws, p, e in rows}
    # the paper's configuration reaches ~1e-7
    assert best[(2, 8)] < 5e-7
    # both knobs matter
    assert best[(2, 8)] < best[(1, 8)]
    assert best[(2, 8)] < best[(2, 4)]


def test_periodic_cost_split(benchmark):
    """Cost of the §2.4 machinery inside a real force call: the local
    expansion ~1%, the extra boundary images a 5-10% class effect."""
    rng = np.random.default_rng(5)
    n = 4096
    pos = rng.random((n, 3))
    mass = np.full(n, 1.0 / n)

    def run():
        cfg = dict(p=4, errtol=1e-4, background=True, softening="spline",
                   eps=0.01, want_potential=False, dtype=np.float32)
        t0 = time.perf_counter()
        solver = TreecodeGravity(TreecodeConfig(periodic=True, ws=1, **cfg))
        solver.compute(pos, mass)
        t_ws1 = time.perf_counter() - t0
        t0 = time.perf_counter()
        solver2 = TreecodeGravity(
            TreecodeConfig(periodic=True, ws=1, lattice_correction=False, **cfg)
        )
        solver2.compute(pos, mass)
        t_nolattice = time.perf_counter() - t0
        t0 = time.perf_counter()
        solver3 = TreecodeGravity(TreecodeConfig(periodic=True, ws=2, **cfg))
        solver3.compute(pos, mass)
        t_ws2 = time.perf_counter() - t0
        return t_ws1, t_nolattice, t_ws2

    t_ws1, t_nolattice, t_ws2 = once(benchmark, run)
    lattice_frac = max(t_ws1 - t_nolattice, 0.0) / t_ws1
    boundary_frac = max(t_ws2 - t_ws1, 0.0) / t_ws2
    print(
        f"\n§2.4 cost split: local expansion {100 * lattice_frac:.1f}% "
        f"(paper ~1%), ws=1->2 boundary images {100 * boundary_frac:.1f}% "
        f"(paper 5-10% for the 124 boundary cubes)"
    )
    # shape: the local expansion is a small fraction; extra images cost more
    assert lattice_frac < 0.15
    assert boundary_frac < 0.7
