"""§3.4.2: checkpoint scheduling economics.

"Writing a 69 billion particle file takes about 6 minutes, so
checkpointing every 4 hours with an expected failure every 80 hours
costs 2 hours in I/O [per 80 h] and saves 4-8 hours of re-computation."
Regenerated: the analytic optimum lands at 4 hours, and the failing-run
simulation confirms the trade-off.  The full analysis is written as a
``BENCH_checkpoint.json`` receipt through the shared
:func:`_simlib.emit_bench` envelope so the run observatory can trend it
like every other bench.
"""

from pathlib import Path

import numpy as np
import pytest

from _simlib import emit_bench, once, print_table
from repro.perfmodel import expected_overhead, optimal_interval, simulate_run

WRITE_H = 0.1  # 6 minutes
MTBF_H = 80.0

OUT_PATH = Path(__file__).parent / "BENCH_checkpoint.json"


def overhead_curve() -> list[tuple[float, float]]:
    taus = [1.0, 2.0, 4.0, 8.0, 16.0, 40.0]
    return [(t, expected_overhead(t, WRITE_H, MTBF_H)) for t in taus]


def simulated_overheads() -> list[tuple[float, float]]:
    rng = np.random.default_rng(3)
    work = 320.0  # the paper's ~4-job production run scale
    rows = []
    for tau in (1.0, 4.0, 20.0):
        walls = [
            simulate_run(work, tau, WRITE_H, MTBF_H, rng=rng) for _ in range(20)
        ]
        rows.append((tau, float(np.mean(walls)) / work - 1.0))
    return rows


def test_checkpoint_optimum(benchmark):
    rows = once(benchmark, overhead_curve)
    print_table(
        "§3.4.2: checkpoint overhead vs interval (6 min write, 80 h MTBF)",
        ["interval (h)", "overhead fraction"],
        [(t, round(o, 4)) for t, o in rows],
    )
    tau_star = optimal_interval(WRITE_H, MTBF_H)
    print(f"analytic optimum: {tau_star:.2f} h (the paper checkpoints every 4 h)")
    assert tau_star == pytest.approx(4.0, rel=1e-9)
    best = min(rows, key=lambda r: r[1])[0]
    assert best == 4.0


def test_checkpoint_simulation_confirms(benchmark):
    rows = once(benchmark, simulated_overheads)
    print_table(
        "§3.4.2: simulated overhead of a failing 320 h run",
        ["interval (h)", "measured overhead"],
        [(t, round(o, 4)) for t, o in rows],
    )
    by_tau = dict(rows)
    assert by_tau[4.0] < by_tau[20.0]
    assert by_tau[4.0] < by_tau[1.0] + 0.02


def test_io_cost_accounting(benchmark):
    """The paper's arithmetic: every 4 h checkpointing over 80 h costs
    20 writes x 6 min = 2 h; expected loss without saves is half the
    MTBF tail — re-derived from the model."""

    def run():
        io_cost = (MTBF_H / 4.0) * WRITE_H
        expected_loss_per_failure = 4.0 / 2 + WRITE_H
        return io_cost, expected_loss_per_failure

    io_cost, loss = once(benchmark, run)
    print(
        f"\nIO cost per MTBF window: {io_cost:.1f} h (paper: 2 h); "
        f"expected loss per failure: {loss:.1f} h (paper: saves 4-8 h vs "
        f"snapshot-only restart)"
    )
    assert io_cost == pytest.approx(2.0)
    assert loss < 4.0


def test_checkpoint_receipt():
    """Write the §3.4.2 analysis as a trend-gateable bench receipt."""
    tau_star = optimal_interval(WRITE_H, MTBF_H)
    doc = emit_bench("checkpoint", {
        "type": "bench_checkpoint",
        "mode": "analytic",
        "write_h": WRITE_H,
        "mtbf_h": MTBF_H,
        "optimal_interval_h": round(tau_star, 6),
        "overhead_vs_interval": [
            {"interval_h": t, "overhead": round(o, 6)} for t, o in overhead_curve()
        ],
        "simulated_overhead": [
            {"interval_h": t, "overhead": round(o, 6)}
            for t, o in simulated_overheads()
        ],
        "io_cost_per_mtbf_h": round((MTBF_H / 4.0) * WRITE_H, 6),
    }, OUT_PATH)
    print(f"wrote {OUT_PATH}")
    assert doc["optimal_interval_h"] == pytest.approx(4.0, rel=1e-9)
    assert doc["bench_schema"] >= 1


if __name__ == "__main__":
    test_checkpoint_receipt()
