"""Speedup curve of the shared-memory force executor (ISSUE acceptance).

Times one full periodic treecode force solve (build + moments are
shared serial work; traverse + evaluate run on the pool) on a uniform
random box, serial and at 1/2/4/8 workers, and writes the curve to
``BENCH_parallel.json`` next to this file.

The pool is persistent, so each worker count is timed on a *second*
call — steady-state per-step cost, not process spin-up.  The emitted
JSON records ``cpu_count`` because the speedup ceiling is the host's:
on a single-core container every worker count measures ~1x (plus IPC
overhead) no matter what the executor does; ≥2x at 4 workers needs
≥4 physical cores.

Sizes::

    REPRO_BENCH_PAR_N        particles per dimension (default 40 -> 64000,
                             the acceptance configuration; use 12-16 for
                             a quick smoke run)
    REPRO_BENCH_PAR_WORKERS  comma-separated worker counts (default 1,2,4,8)
    REPRO_BENCH_PAR_ERRTOL   MAC tolerance (default 1e-4)

Run directly (``PYTHONPATH=src python benchmarks/bench_parallel_speedup.py``)
or via pytest.
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.gravity import TreecodeConfig, TreecodeGravity

OUT_PATH = Path(__file__).parent / "BENCH_parallel.json"

PAR_N = int(os.environ.get("REPRO_BENCH_PAR_N", "40"))
WORKER_COUNTS = [
    int(w)
    for w in os.environ.get("REPRO_BENCH_PAR_WORKERS", "1,2,4,8").split(",")
]
ERRTOL = float(os.environ.get("REPRO_BENCH_PAR_ERRTOL", "1e-4"))


def _particles(n_per_dim: int, seed: int = 2013):
    rng = np.random.default_rng(seed)
    n = n_per_dim**3
    pos = rng.random((n, 3))
    mass = np.full(n, 1.0 / n)
    return pos, mass


def _config(workers: int) -> TreecodeConfig:
    return TreecodeConfig(
        p=2,
        errtol=ERRTOL,
        periodic=True,
        background=True,
        want_potential=False,
        workers=workers,
    )


def _time_solve(workers: int, pos, mass):
    """Wall time of one steady-state force solve at ``workers``."""
    with TreecodeGravity(_config(workers)) as solver:
        res = solver.compute(pos, mass, box=1.0)  # warm pool + caches
        t0 = time.perf_counter()
        res = solver.compute(pos, mass, box=1.0)
        wall = time.perf_counter() - t0
    ex = res.stats.get("executor", {})
    return wall, res.acc, ex.get("load_imbalance", 0.0)


def run_curve() -> dict:
    pos, mass = _particles(PAR_N)
    serial_wall, serial_acc, _ = _time_solve(0, pos, mass)
    curve = []
    for w in WORKER_COUNTS:
        wall, acc, imbalance = _time_solve(w, pos, mass)
        scale = float(np.abs(serial_acc).max())
        err = float(np.abs(acc - serial_acc).max()) / scale
        curve.append(
            {
                "workers": w,
                "wall_s": round(wall, 6),
                "speedup": round(serial_wall / wall, 4),
                "load_imbalance": round(imbalance, 4),
                "max_rel_err_vs_serial": err,
            }
        )
    result = {
        "bench": "parallel_speedup",
        "n_particles": PAR_N**3,
        "errtol": ERRTOL,
        "cpu_count": os.cpu_count(),
        "start_method": os.environ.get("REPRO_START_METHOD") or "default",
        "serial_wall_s": round(serial_wall, 6),
        "curve": curve,
    }
    return result


def _report(result: dict) -> None:
    from _simlib import emit_bench

    result = emit_bench("parallel_speedup", result, OUT_PATH)
    print(
        f"\n=== Parallel speedup ({result['n_particles']} particles, "
        f"errtol {result['errtol']:g}, {result['cpu_count']} cpu) ==="
    )
    print(f"serial: {result['serial_wall_s']:.3f}s")
    for row in result["curve"]:
        print(
            f"workers={row['workers']}: {row['wall_s']:.3f}s  "
            f"speedup={row['speedup']:.2f}x  "
            f"imbalance={row['load_imbalance']:.3f}  "
            f"err={row['max_rel_err_vs_serial']:.2e}"
        )
    print(f"wrote {OUT_PATH}")


def test_parallel_speedup(benchmark):
    from _simlib import once

    result = once(benchmark, run_curve)
    _report(result)
    for row in result["curve"]:
        assert row["max_rel_err_vs_serial"] < 1e-10


if __name__ == "__main__":
    _report(run_curve())
