"""Job-service throughput and recovery-overhead bench (ISSUE 9).

Runs the same 4-job evolve sweep through the crash-safe service twice:

* **clean** — no faults; measures steady-state throughput (jobs/hour)
  and queue latency (p50/p99 of submitted -> started).
* **faulted** — one job is SIGKILLed mid-run by the deterministic
  service fault plan and must recover through backoff + checkpoint
  resume; the extra wall-clock over the clean sweep is the *recovery
  overhead* the §3.4.2 economics say a checkpointed restart should
  keep small.

The receipt (``BENCH_service.json``) goes through the shared
:func:`_simlib.emit_bench` envelope so the observatory trends it.
"""

import json
import tempfile
from pathlib import Path

from _simlib import emit_bench
from repro.pipeline.run_stage import run_stage
from repro.service import JobService, ServiceConfig

OUT_PATH = Path(__file__).parent / "BENCH_service.json"

N_JOBS = 4
N_PER_DIM = 6

IC_CFG = {
    "stage": "ic", "n_per_dim": N_PER_DIM, "box_mpc_h": 100.0, "a_init": 0.02,
    "seed": 11, "omega_m": 0.3, "omega_b": 0.05, "h": 0.7, "sigma8": 0.8,
    "n_s": 0.96, "output": "ic.sdf",
}


def _evolve_cfg(ic_sdf: Path, i: int) -> dict:
    return {
        "stage": "evolve", "input": str(ic_sdf), "a_final": 0.05,
        "errtol": 0.1, "snapshot_base": "snap", "snapshots_a": [0.05],
        "sweep_id": i,  # distinct dedup keys for an otherwise identical sweep
    }


def _sweep(root: Path, ic_sdf: Path, faults: str | None) -> dict:
    svc = JobService(
        root, ServiceConfig(max_concurrent=2, backoff_base_s=0.1),
        faults=faults,
    )
    for i in range(N_JOBS):
        svc.submit(_evolve_cfg(ic_sdf, i), name=f"sweep{i}",
                   heartbeat_timeout_s=120.0)
    metrics = svc.serve_forever()
    assert metrics["failed"] == 0, metrics
    assert metrics["done"] == N_JOBS, metrics
    return metrics


def run() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench_service_") as td:
        td = Path(td)
        icdir = td / "ic"
        icdir.mkdir()
        cfg_path = icdir / "ic.json"
        cfg_path.write_text(json.dumps(IC_CFG))
        run_stage(cfg_path, workdir=icdir)
        ic_sdf = icdir / "ic.sdf"

        clean = _sweep(td / "clean", ic_sdf, faults=None)
        faulted = _sweep(
            td / "faulted", ic_sdf,
            faults="kill:job=sweep0,events=3",
        )
    assert faulted["kills"] == 1 and faulted["retries"] == 1, faulted
    recovery_s = max(faulted["serve_wall_s"] - clean["serve_wall_s"], 0.0)
    return {
        "type": "bench_service",
        "mode": "smoke",
        "n_jobs": N_JOBS,
        "n_particles": N_PER_DIM**3,
        "max_concurrent": 2,
        "clean": clean,
        "faulted": faulted,
        "jobs_per_hour": clean["jobs_per_hour"],
        "queue_wait_p50_s": clean["queue_wait_p50_s"],
        "queue_wait_p99_s": clean["queue_wait_p99_s"],
        "recovery_overhead_s": round(recovery_s, 6),
        "recovery_overhead_frac": round(
            recovery_s / clean["serve_wall_s"], 4
        ) if clean["serve_wall_s"] else None,
    }


def test_service_receipt():
    doc = emit_bench("service", run(), OUT_PATH)
    print(f"wrote {OUT_PATH}")
    print(
        f"\n=== Job service ({doc['n_jobs']} jobs, 2 concurrent) ===\n"
        f"clean: {doc['clean']['serve_wall_s']:.2f}s wall  "
        f"{doc['jobs_per_hour']:.0f} jobs/h  "
        f"p50 wait {doc['queue_wait_p50_s']:.2f}s  "
        f"p99 {doc['queue_wait_p99_s']:.2f}s\n"
        f"faulted (1 kill): {doc['faulted']['serve_wall_s']:.2f}s wall  "
        f"recovery overhead {doc['recovery_overhead_s']:.2f}s "
        f"({doc['recovery_overhead_frac']:.0%} of clean)"
    )
    assert doc["faulted"]["resumed_jobs"] >= 1
    assert doc["jobs_per_hour"] > 0


if __name__ == "__main__":
    test_service_receipt()
