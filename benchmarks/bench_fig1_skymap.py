"""Figure 1: light-cone sky projection statistics.

The paper compares a HEALPix Mollweide map of projected simulation
density with the Planck CMB/lensing maps, noting that "the statistical
measurements of the smaller details match".  This bench projects an
evolved box onto the sphere and verifies the statistical content: an
evolved (clustered) shell has far larger angular density variance than
its initial conditions, the projection machinery conserves mass, and
the Mollweide coordinates are well-formed for plotting.
"""

import dataclasses

import numpy as np
import pytest

from _simlib import once, print_table, run_cached
from repro.analysis import EqualAreaSphere, mollweide_xy, project_to_sky
from repro.simulation import ICConfig, SimulationConfig, generate_ic
from repro.cosmology import PLANCK2013

CFG = SimulationConfig(
    n_per_dim=12, box_mpc_h=72.0, a_init=0.02, a_final=1.0,
    errtol=1e-4, p=4, nleaf=24, max_refine=2, track_energy=False, seed=42,
)


def test_fig1_skymap_contrast(benchmark):
    def run():
        out = run_cached(CFG)
        sphere = EqualAreaSphere(6)  # coarse pixels: >> 1 particle each
        obs = [0.5, 0.5, 0.5]
        sky_final = project_to_sky(
            out["pos"], out["mass"], obs, sphere, r_min=0.1, r_max=0.45
        )
        ic = generate_ic(
            PLANCK2013,
            ICConfig(n_per_dim=12, box_mpc_h=72.0, a_init=0.02, seed=42),
        )
        sky_init = project_to_sky(ic.pos, ic.mass, obs, sphere, r_min=0.1, r_max=0.45)
        # particles per pixel sets the shot-noise floor to subtract
        n_shell = ((np.linalg.norm((out["pos"] - 0.5 + 0.5) % 1.0 - 0.5, axis=1)
                    <= 0.45)).sum()
        shot = sphere.n_pixels / max(n_shell, 1)
        return sky_init, sky_final, shot

    sky_init, sky_final, shot = once(benchmark, run)

    def excess(sky):
        return float(np.sqrt(max(sky.var() - shot, 0.0)))

    print_table(
        "Fig. 1: angular density-contrast statistics of a projected shell",
        ["epoch", "rms contrast (shot-subtracted)", "max contrast"],
        [
            ("initial (z=49)", round(excess(sky_init), 4),
             round(float(sky_init.max()), 3)),
            ("final (z=0)", round(excess(sky_final), 4),
             round(float(sky_final.max()), 3)),
        ],
    )
    # structure growth is the figure's content: the evolved sky is far
    # lumpier than the initial one once shot noise is removed
    assert excess(sky_final) > 2 * excess(sky_init)
    assert abs(sky_final.mean()) < 1e-10  # contrast maps are mean-free


def test_fig1_mollweide_plotting_coordinates(benchmark):
    def run():
        sphere = EqualAreaSphere(16)
        centers = sphere.pixel_centers()
        return mollweide_xy(centers)

    xy = once(benchmark, run)
    assert np.all(np.isfinite(xy))
    assert np.abs(xy[:, 0]).max() <= 2 * np.sqrt(2) + 1e-9
    print(f"\nMollweide plot grid: {len(xy)} pixels, extents "
          f"x ±{np.abs(xy[:, 0]).max():.3f}, y ±{np.abs(xy[:, 1]).max():.3f}")
