"""Figure 7: power-spectrum sensitivity to code parameters.

The paper evolves the same realization under parameter variations and
plots P(k)/P_ref(k) at z = 0.  Variations reproduced (all sharing the
random phases, so sample variance cancels in the ratios):

* reference: tighter errtol + dt/2,
* standard errtol, 10x relaxed errtol,
* no 2LPT initial conditions   (paper: >2% power deficit at k ~ 1),
* DEC (discreteness/CIC-deconvolution correction) on,
* SphereMode on,
* higher starting redshift (z_i = 99 vs 49),
* 1.4x smoothing length and Plummer-vs-K1 kernel,
* TreePM engine               (the GADGET-2 transition-region analogue).

Scale note (EXPERIMENTS.md): the paper uses 1024^3/512^3 particles and
0.1-1% effects; at bench scale (default 12^3) the same switches
produce the same *signs and orderings* with larger amplitudes.
"""

import dataclasses

import numpy as np
import pytest

from _simlib import BENCH_N, FULL, once, print_table, run_cached
from repro.analysis.power import measure_power
from repro.simulation import SimulationConfig

N = max(BENCH_N, 12) if not FULL else max(BENCH_N, 16)
BOX = 72.0 * N / 12  # keeps the k range fixed as N grows

BASE = SimulationConfig(
    n_per_dim=N,
    box_mpc_h=BOX,
    a_init=0.02,
    a_final=1.0,
    errtol=1e-4,
    p=4,
    nleaf=24,
    dlna_max=0.125,
    max_refine=2,
    track_energy=False,
    softening="dehnen_k1",
    seed=42,
)

VARIANTS = {
    "reference (errtol/4, dt/2)": dataclasses.replace(
        BASE, errtol=2.5e-5, dt_divider=2
    ),
    "standard (errtol 1e-4)": BASE,
    "relaxed (errtol 1e-3)": dataclasses.replace(BASE, errtol=1e-3),
    "no 2LPT": dataclasses.replace(BASE, use_2lpt=False),
    "DEC": dataclasses.replace(BASE, dec=True),
    "SphereMode": dataclasses.replace(BASE, sphere_mode=True),
    "z_i = 99": dataclasses.replace(BASE, a_init=0.01),
    # the paper varies smoothing by 1.4x at 512^3 resolution, where the
    # suppression scale sits inside its measured k range; at bench scale
    # the same *experiment* needs a bigger kernel to put the suppression
    # scale inside our band (see EXPERIMENTS.md)
    "6x smoothing": dataclasses.replace(BASE, eps_frac=0.30),
    "Plummer smoothing": dataclasses.replace(BASE, softening="plummer"),
    "TreePM (GADGET2-like)": dataclasses.replace(BASE, engine="treepm"),
}


def _power_of(cfg):
    out = run_cached(cfg)
    return measure_power(
        out["pos"], cfg.box_mpc_h, ngrid=2 * cfg.n_per_dim,
        subtract_shot_noise=False,
    )


@pytest.fixture(scope="module")
def fig7_ratios():
    ref = _power_of(VARIANTS["reference (errtol/4, dt/2)"])
    out = {}
    for name, cfg in VARIANTS.items():
        res = _power_of(cfg)
        out[name] = res.ratio_to(ref)
    return ref.k, out


def _band(k, lo, hi):
    return (k >= lo) & (k <= hi)


def test_fig7_ratio_table(benchmark, fig7_ratios):
    k, ratios = once(benchmark, lambda: fig7_ratios)
    knyq = np.pi * N / BOX
    bands = [
        ("large scales", 1.2 * 2 * np.pi / BOX, 0.45 * knyq),
        ("small scales", 0.45 * knyq, 0.95 * knyq),
    ]
    rows = []
    for name, r in ratios.items():
        vals = []
        for _label, lo, hi in bands:
            sel = _band(k, lo, hi)
            vals.append(float(np.mean(r[sel])))
        rows.append((name, round(vals[0], 4), round(vals[1], 4)))
    print_table(
        "Fig. 7: P(k)/P_ref at z=0 (band means)",
        ["variant", "large-scale mean", "small-scale mean"],
        rows,
    )
    by = dict((r[0], (r[1], r[2])) for r in rows)
    # the standard setting tracks the reference closely at large scales
    assert abs(by["standard (errtol 1e-4)"][0] - 1.0) < 0.05
    # relaxing errtol by 10x moves P(k) further from the reference
    assert abs(by["relaxed (errtol 1e-3)"][1] - 1.0) >= 0.5 * abs(
        by["standard (errtol 1e-4)"][1] - 1.0
    )


def test_fig7_no2lpt_power_deficit(benchmark, fig7_ratios):
    """Fig. 7's blue curve: ZA (no 2LPT) initial conditions lose power
    at small scales (the paper: >2% at k = 1 h/Mpc)."""
    k, ratios = fig7_ratios

    def run():
        knyq = np.pi * N / BOX
        sel = _band(k, 0.45 * knyq, 0.95 * knyq)
        return float(np.mean(ratios["no 2LPT"][sel])), float(
            np.mean(ratios["standard (errtol 1e-4)"][sel])
        )

    za, std = once(benchmark, run)
    print(f"\nno-2LPT / reference small-scale power: {za:.4f} (standard: {std:.4f})")
    assert za < std  # ZA is low where the standard run is not


def test_fig7_smoothing_effects(benchmark, fig7_ratios):
    """Larger smoothing suppresses small-scale power; the kernel choice
    (K1 vs Plummer) is a smaller effect of the same kind (the green and
    blue curves of the lower panel)."""
    k, ratios = fig7_ratios

    def run():
        knyq = np.pi * N / BOX
        sel = _band(k, 0.45 * knyq, 0.95 * knyq)
        lo = _band(k, 1.2 * 2 * np.pi / BOX, 0.45 * knyq)
        return (
            float(np.mean(ratios["6x smoothing"][sel])),
            float(np.mean(ratios["Plummer smoothing"][sel])),
            float(np.mean(ratios["standard (errtol 1e-4)"][sel])),
            float(np.mean(ratios["Plummer smoothing"][lo])),
        )

    smooth6, plummer, std, plummer_lo = once(benchmark, run)
    print(
        f"\nsmall-scale P ratios: 6x smoothing {smooth6:.4f}, "
        f"Plummer {plummer:.4f}, standard {std:.4f}"
    )
    # the paper's conclusion, verbatim: "parameters such as the smoothing
    # length ... dominating over the force errors at small scales" — the
    # smoothing variants move small-scale power far more than the errtol
    # difference between standard and reference does.  (At bench N the
    # *sign* of the kernel effects is set by few-body dynamics rather
    # than the paper's sub-percent suppression; see EXPERIMENTS.md.)
    assert abs(smooth6 - 1.0) > 2 * abs(std - 1.0)
    assert abs(plummer - 1.0) > 2 * abs(std - 1.0)


def test_fig7_ic_switches(benchmark, fig7_ratios):
    """DEC boosts near-Nyquist IC power (visible at z=0 as extra
    small-scale power); SphereMode removes corner modes (slightly less
    power); higher z_i changes the discreteness systematics (§6)."""
    k, ratios = fig7_ratios

    def run():
        knyq = np.pi * N / BOX
        sel = _band(k, 0.45 * knyq, 0.95 * knyq)
        lo = _band(k, 1.2 * 2 * np.pi / BOX, 0.45 * knyq)
        return {
            name: (float(np.mean(ratios[name][lo])), float(np.mean(ratios[name][sel])))
            for name in ("DEC", "SphereMode", "z_i = 99", "standard (errtol 1e-4)")
        }

    vals = once(benchmark, run)
    for name, (lo, hi) in vals.items():
        print(f"{name:28s} large {lo:.4f}  small {hi:.4f}")
    # again the paper's own statement: the IC switches (starting redshift,
    # discreteness handling) dominate over the force errors at small
    # scales — each moves P(k) at least as much as the standard-vs-
    # reference force/time accuracy difference does
    std_dev = abs(vals["standard (errtol 1e-4)"][1] - 1.0)
    assert abs(vals["DEC"][1] - 1.0) > std_dev
    assert abs(vals["z_i = 99"][1] - 1.0) > std_dev


def test_fig7_treepm_transition(benchmark, fig7_ratios):
    """The TreePM comparator deviates from the pure-tree reference in
    the tree<->mesh transition region — the paper's explanation of the
    GADGET-2 offset at k ~ 1."""
    k, ratios = fig7_ratios

    def run():
        r = ratios["TreePM (GADGET2-like)"]
        s = ratios["standard (errtol 1e-4)"]
        dev_tp = float(np.max(np.abs(r - 1.0)))
        dev_std = float(np.max(np.abs(s - 1.0)))
        return dev_tp, dev_std

    dev_tp, dev_std = once(benchmark, run)
    print(f"\nmax |P/P_ref - 1|: TreePM {dev_tp:.4f} vs pure tree {dev_std:.4f}")
    assert dev_tp > 0.0
