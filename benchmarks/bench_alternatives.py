"""§2.2.2 design-choice ablations: cell-cell O(N) and pseudo-particles.

The paper investigated, and rejected, two alternatives to its coded
Cartesian cell-body kernels:

* **cell-cell (O(N)) interactions** — rejected because "the behavior
  of the errors near the outer regions of local expansions are highly
  correlated", forcing extra local order / smaller scales "to the
  point where the benefit of the O(N) method is questionable";
* **pseudo-particle / kernel-independent kernels** — "not as
  efficient as a well-coded multipole interaction routine ... at
  least up to order p = 8".

Regenerated here: the scaling exponents of both traversals, the
edge-of-expansion error growth, and the flop comparison of pseudo vs
Cartesian kernels order by order.
"""

import numpy as np
import pytest

from _simlib import once, print_table
from repro.gravity import direct_accelerations, make_softening
from repro.gravity.fmm import FMMConfig, FMMGravity, traverse_cell_cell
from repro.perfmodel import FLOPS_PER_MONOPOLE_PP, flops_per_cell_interaction
from repro.tree import build_tree, compute_moments, traverse


def test_scaling_on_vs_onlogn(benchmark):
    """Interaction-count growth: cell-cell pair counts grow ~linearly in
    N, the cell-body counts grow ~N log N (per-particle counts grow
    ~log N)."""

    def run():
        rows = []
        rng = np.random.default_rng(0)
        for n in (2048, 8192, 32768):
            pos = rng.random((n, 3))
            mass = np.full(n, 1.0 / n)
            tree = build_tree(pos, mass, nleaf=16)
            moms = compute_moments(tree, p=2, tol=1e30)
            cc = traverse_cell_cell(tree, moms, theta=0.5)
            moms2 = compute_moments(tree, p=2, tol=1e-4)
            cb = traverse(tree, moms2)
            rows.append(
                (n, cc.n_m2l(), cb.n_cell_interactions(tree))
            )
        return rows

    rows = once(benchmark, run)
    print_table(
        "§2.2.2 scaling: M2L pairs (O(N)) vs cell-body interactions (O(N log N))",
        ["N", "M2L pairs", "cell-body interactions"],
        rows,
    )
    n_ratio = rows[-1][0] / rows[0][0]
    m2l_exp = np.log(rows[-1][1] / rows[0][1]) / np.log(n_ratio)
    cb_exp = np.log(rows[-1][2] / rows[0][2]) / np.log(n_ratio)
    print(f"growth exponents: M2L {m2l_exp:.2f} (O(N): 1.0), "
          f"cell-body {cb_exp:.2f} (O(N log N): ~1.1)")
    assert m2l_exp < 1.25
    assert cb_exp > m2l_exp - 0.15


def test_local_expansion_edge_errors(benchmark):
    """Error vs position inside the local-expansion cell: the paper's
    correlated outer-region errors."""

    def run():
        rng = np.random.default_rng(4)
        pos = rng.random((4096, 3))
        mass = np.full(4096, 1.0 / 4096)
        ref = direct_accelerations(pos, mass, softening=make_softening("plummer", 1e-3))
        solver = FMMGravity(FMMConfig(p=3, p_local=3, theta=0.6, eps=1e-3))
        res = solver.compute(pos, mass)
        err = np.linalg.norm(res.acc - ref, axis=1)
        from repro.keys import ancestor_key, cell_geometry, keys_from_positions

        k = keys_from_positions(pos)
        anc = ancestor_key(k, 3)
        c, s = cell_geometry(anc)
        u = np.abs(pos - c).max(axis=1) / (s / 2)
        bins = np.linspace(0, 1, 6)
        med = [
            float(np.median(err[(u >= a) & (u < b)]))
            for a, b in zip(bins[:-1], bins[1:])
        ]
        return bins, med

    bins, med = once(benchmark, run)
    print_table(
        "§2.2.2: FMM error vs normalized distance from local-expansion center",
        ["cell-center distance", "median |err|"],
        [(f"{a:.1f}-{b:.1f}", m) for a, b, m in zip(bins[:-1], bins[1:], med)],
    )
    assert med[-1] > 1.2 * med[0]


def test_pseudo_particle_cost(benchmark):
    """Flops per far-field evaluation: K monopoles vs one Cartesian
    multipole interaction (the paper's efficiency verdict)."""

    def run():
        rows = []
        for p in (2, 4, 6, 8):
            k = 2 * (p + 1) ** 2
            rows.append(
                (p, k, FLOPS_PER_MONOPOLE_PP * k, flops_per_cell_interaction(p))
            )
        return rows

    rows = once(benchmark, run)
    print_table(
        "§2.2.2: pseudo-particle vs Cartesian kernel cost",
        ["order p", "pseudo K", "pseudo flops", "Cartesian flops"],
        rows,
    )
    for p, k, pf, cf in rows:
        assert pf > cf  # "not as efficient ... at least up to order p = 8"
    # the gap does not close with order
    gaps = [pf / cf for _p, _k, pf, cf in rows]
    assert gaps[-1] > 1.0
