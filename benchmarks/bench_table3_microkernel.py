"""Table 3: the gravitational micro-kernel benchmark.

The paper reports single-precision Gflop/s of the monopole inner loop
(28 flops/interaction) across ten processors.  Here the same
micro-kernel — softened pairwise monopole interactions in float32 —
is *actually executed and timed* on the host CPU via the library's
blocked evaluator, reported in the paper's Gflop/s currency, alongside
the catalog model that regenerates the published rows for the historic
hardware.
"""

import numpy as np
import pytest

from _simlib import print_table
from repro.gravity import direct_accelerations, make_softening
from repro.perfmodel import FLOPS_PER_MONOPOLE_PP, TABLE3_PROCESSORS


def test_table3_catalog_rows(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            (p.name, round(p.measured_gflops, 2), round(p.modeled_gflops, 2))
            for p in TABLE3_PROCESSORS
        ],
        iterations=1,
        rounds=1,
    )
    print_table(
        "Table 3: monopole micro-kernel Gflop/s (paper vs catalog model)",
        ["Processor", "paper", "model"],
        rows,
    )
    for p in TABLE3_PROCESSORS:
        assert p.modeled_gflops == pytest.approx(p.measured_gflops, rel=0.05)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_table3_measured_host_kernel(benchmark, dtype):
    """Time the actual pairwise monopole kernel on this host.

    The number of interactions is fixed; pytest-benchmark provides the
    wall time, converted at 28 flops/interaction.  A NumPy kernel won't
    reach hand-tuned SSE rates, but the measurement methodology is the
    paper's.
    """
    rng = np.random.default_rng(0)
    n_src = 4096
    n_tgt = 2048
    pos = rng.random((n_src, 3)).astype(dtype)
    mass = rng.random(n_src).astype(dtype)
    targets = rng.random((n_tgt, 3)).astype(dtype)
    soft = make_softening("plummer", 1e-3)

    def kernel():
        return direct_accelerations(
            pos, mass, softening=soft, targets=targets, dtype=dtype,
            want_potential=False,
        )

    benchmark(kernel)
    n_inter = n_src * n_tgt
    gflops = FLOPS_PER_MONOPOLE_PP * n_inter / benchmark.stats["mean"] / 1e9
    print(
        f"\nHost monopole kernel ({np.dtype(dtype).name}): "
        f"{n_inter} interactions, {gflops:.2f} Gflop/s at 28 flops/interaction"
    )
    assert gflops > 0.05  # sanity: the kernel actually ran at speed


@pytest.mark.parametrize("variant", ["per_axis", "fused"])
def test_scatter_add_fusion(benchmark, variant):
    """Per-axis scatter-add (production) vs the fused single-bincount one.

    The evaluator reduces per-interaction 3-vectors onto per-particle
    accumulators.  Fusing the three bincount passes into one over an
    interleaved (idx*3 + axis) index looks like it should win, but the
    3x-longer index array costs more than the saved passes — this bench
    is the receipt for keeping the per-axis kernel in evaluate_forces.
    Both variants accumulate per bin in the same order, so results are
    bit-identical (asserted).
    """
    from repro.gravity.treeforce import _scatter_add_vec, _scatter_add_vec_fused

    rng = np.random.default_rng(3)
    n = 1 << 15
    m = 1 << 20
    idx = rng.integers(0, n, m)
    contrib = rng.random((m, 3))
    fn = _scatter_add_vec_fused if variant == "fused" else _scatter_add_vec

    ref = np.zeros((n, 3))
    _scatter_add_vec(ref, idx, contrib)
    got = np.zeros((n, 3))
    _scatter_add_vec_fused(got, idx, contrib)
    assert np.array_equal(ref, got)

    benchmark(lambda: fn(np.zeros((n, 3)), idx, contrib))
    rate = m / benchmark.stats["mean"] / 1e6
    print(
        f"\nscatter-add ({variant}): {m} contributions -> "
        f"{rate:.1f} M/s"
    )
