"""Table 1: HOT performance across two decades of supercomputers.

Regenerates the table rows from the machine catalog's performance
model (clock x concurrency x kernel efficiency) and checks them
against the published Tflop/s, plus the §7 concurrency accounting
(Delta -> Jaguar = 55x clock, 4096x concurrency, ~20% efficiency loss).
"""

import pytest

from _simlib import once, print_table
from repro.perfmodel import TABLE1_MACHINES


def test_table1_rows(benchmark):
    def run():
        return [
            (
                m.year,
                m.site,
                m.name,
                m.procs,
                round(m.measured_tflops, 3),
                round(m.modeled_tflops, 3),
            )
            for m in TABLE1_MACHINES
        ]

    rows = once(benchmark, run)
    print_table(
        "Table 1: HOT performance (paper Tflop/s vs catalog model)",
        ["Year", "Site", "Machine", "Procs", "paper", "model"],
        rows,
    )
    for m in TABLE1_MACHINES:
        assert m.modeled_tflops == pytest.approx(m.measured_tflops, rel=0.08)


def test_table1_five_decades_of_performance(benchmark):
    def run():
        perfs = [m.measured_tflops for m in TABLE1_MACHINES]
        return max(perfs) / min(perfs)

    span = once(benchmark, run)
    print(f"\nTable 1 dynamic range: {span:.0f}x (paper: 'five decades')")
    assert span > 1e5


def test_section7_extrapolation(benchmark):
    """§7: the Delta -> Jaguar speedup decomposes into clock x
    concurrency x efficiency; an exaflop machine needs ~2000x more
    concurrency, log2-distance smaller than Delta -> Jaguar."""

    def run():
        delta = next(m for m in TABLE1_MACHINES if "Delta" in m.name)
        jaguar = next(m for m in TABLE1_MACHINES if "Jaguar" in m.name)
        clock = jaguar.clock_ghz / delta.clock_ghz
        conc = jaguar.concurrency / delta.concurrency
        perf = jaguar.measured_tflops / delta.measured_tflops
        eff_loss = perf / (clock * conc)
        return clock, conc, perf, eff_loss

    clock, conc, perf, eff = once(benchmark, run)
    print(
        f"\n§7 accounting: clock x{clock:.0f}, concurrency x{conc:.0f}, "
        f"delivered x{perf:.0f}, residual efficiency {eff:.2f} "
        f"(paper: 55 x 4096 with ~20% loss => ~0.8)"
    )
    assert clock == pytest.approx(55, rel=0.02)
    assert 0.5 < eff < 1.1
