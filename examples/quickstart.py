"""Quickstart: a small cosmological N-body simulation with repro (2HOT).

Generates 2LPT initial conditions for a Planck 2013 cosmology, evolves
them with the background-subtracted periodic treecode and symplectic
comoving leapfrog, and measures the matter power spectrum against
linear theory.

Run:  python examples/quickstart.py          (~2 minutes)
      REPRO_QUICK_N=16 python examples/quickstart.py   (bigger)
"""

import os
import time

import numpy as np

from repro.analysis import measure_power
from repro.cosmology import PLANCK2013, GrowthCalculator, LinearPower
from repro.simulation import Simulation, SimulationConfig


def main():
    n = int(os.environ.get("REPRO_QUICK_N", "10"))
    box = 60.0 * n / 10
    cfg = SimulationConfig(
        cosmology=PLANCK2013,
        n_per_dim=n,
        box_mpc_h=box,
        a_init=0.05,  # z = 19
        a_final=1.0,
        errtol=1e-4,
        p=4,
        max_refine=2,
        track_energy=True,
        seed=7,
    )
    print(f"Evolving {n}^3 particles in a {box:.0f} Mpc/h box, z=19 -> 0")
    print(f"  particle mass: {cfg.cosmology.particle_mass(box, n**3):.3e} Msun/h")

    sim = Simulation(cfg)
    t0 = time.time()

    def progress(s, rec):
        if len(s.history) % 10 == 0:
            print(
                f"  step {len(s.history):3d}  a={rec.a:.3f}  "
                f"dln(a)={rec.dlna:.4f}  "
                f"{rec.interactions_per_particle:.0f} interactions/particle"
            )

    ps = sim.run(callback=progress)
    print(f"done: {len(sim.history)} steps, {time.time() - t0:.0f} s wall")

    # energy bookkeeping (Layzer-Irvine cosmic energy equation)
    li = [r.layzer_irvine for r in sim.history]
    w = abs(sim.history[-1].potential)
    print(f"Layzer-Irvine drift: {abs(li[-1] - li[0]):.2e} (|W| = {w:.2e})")

    # power spectrum vs linear theory
    res = measure_power(ps.pos, box, ngrid=2 * n, subtract_shot_noise=False)
    lp = LinearPower(PLANCK2013)
    print("\n k [h/Mpc]   P_sim [(Mpc/h)^3]   P_linear    ratio")
    for k, p in zip(res.k, res.power):
        lin = float(lp.power(k))
        print(f"  {k:7.3f}   {p:12.1f}     {lin:12.1f}  {p / lin:6.2f}")
    print(
        "\n(ratios > 1 at high k are nonlinear growth; the lowest bins are"
        "\n sample-variance limited at this N)"
    )


if __name__ == "__main__":
    main()
