"""Halo mass function of a small box vs the Tinker08 fit (paper §6, Fig. 8).

Evolves a box to z = 0, finds halos (FOF seeds + spherical-overdensity
M200 masses), and prints N(M)/Tinker08 — the paper's Fig. 8 y-axis —
plus the WMAP1-vs-Planck comparison that drives its cosmology
conclusions.

Run:  python examples/cluster_mass_function.py   (~5 minutes)
"""

import time

import numpy as np

from repro.analysis import (
    TinkerMassFunction,
    binned_mass_function,
    fof_halos,
    so_masses,
)
from repro.cosmology import PLANCK2013
from repro.simulation import Simulation, SimulationConfig


def main():
    n = 14
    box = 26.0
    cfg = SimulationConfig(
        cosmology=PLANCK2013,
        n_per_dim=n,
        box_mpc_h=box,
        a_init=0.02,
        a_final=1.0,
        errtol=1e-4,
        max_refine=2,
        track_energy=False,
        seed=1234,
    )
    m_part = PLANCK2013.particle_mass(box, n**3)
    print(
        f"Evolving {n}^3 particles, {box} Mpc/h box "
        f"(particle mass {m_part:.2e} Msun/h) to z=0..."
    )
    t0 = time.time()
    sim = Simulation(cfg)
    ps = sim.run()
    print(f"  {len(sim.history)} steps, {time.time() - t0:.0f} s\n")

    fof = fof_halos(ps.pos, ps.mass, linking_length=0.2, min_members=16)
    print(f"FOF(b=0.2): {fof.n_groups} groups with >= 16 particles")
    if fof.n_groups == 0:
        print("No halos at this tiny N/realization — rerun with a larger n.")
        return
    masses = fof.masses / ps.mass[0] * m_part
    cat = so_masses(ps.pos, ps.mass, fof.centers, delta=200.0)
    print(f"SO(200 rho_mean) recovered {len(cat.m_delta)} of them; "
          f"largest FOF halo {masses.max():.2e} Msun/h\n")

    res = binned_mass_function(
        masses, box, n_bins=3, m_range=(16 * m_part, masses.max() * 1.2)
    )
    tinker = TinkerMassFunction(200.0)
    theory = tinker.dn_dlnm(PLANCK2013, res.m_center)
    print(f"{'M [Msun/h]':>12s} {'halos':>6s} {'dn/dlnM':>10s} "
          f"{'Tinker08':>10s} {'ratio':>6s}")
    for m, dn, c, th in zip(res.m_center, res.dn_dlnm, res.counts, theory):
        if c == 0:
            continue
        print(f"{m:12.2e} {c:6d} {dn:10.2e} {th:10.2e} {dn / th:6.2f}")
    print(
        "\nAt this particle count the Poisson bars are tens of percent;"
        "\nthe paper needed twelve 4096^3 simulations to probe the 1% level."
    )


if __name__ == "__main__":
    main()
