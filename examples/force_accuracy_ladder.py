"""The verification "distance ladder" of paper §5.

"Analogous to the distance ladder in astronomy ... we must use a
variety of methods to check the results of our calculations": Ewald
summation (exact, impossibly slow at scale) validates the lattice
local-expansion periodic method, which validates the treecode at
strict tolerance, which then validates itself at production and
relaxed tolerances.

Run:  python examples/force_accuracy_ladder.py   (~1 minute)
"""

import time

import numpy as np

from repro.gravity import TreecodeConfig, TreecodeGravity
from repro.gravity.ewald import EwaldSummation

N = 192


def main():
    rng = np.random.default_rng(11)
    pos = rng.random((N, 3))
    mass = rng.random(N) / N
    print(f"{N} particles in a unit periodic box\n")

    print("rung 0: Ewald summation (the exact reference)...")
    t0 = time.time()
    ref = EwaldSummation().accelerations(pos, mass)
    t_ewald = time.time() - t0
    scale = np.linalg.norm(ref, axis=1).mean()
    print(f"  {t_ewald:.1f} s — this is the method that would need 1e14 flops")
    print("  per particle at the paper's production scale.\n")

    ladder = [
        ("treecode p=6, errtol=1e-8, ws=2", TreecodeConfig(
            p=6, errtol=1e-8, background=True, periodic=True, ws=2,
            softening="none", nleaf=8)),
        ("treecode p=4, errtol=1e-5, ws=2", TreecodeConfig(
            p=4, errtol=1e-5, background=True, periodic=True, ws=2,
            softening="none", nleaf=8)),
        ("treecode p=4, errtol=1e-5, ws=1", TreecodeConfig(
            p=4, errtol=1e-5, background=True, periodic=True, ws=1,
            softening="none", nleaf=8)),
        ("treecode p=4, errtol=1e-4, ws=1", TreecodeConfig(
            p=4, errtol=1e-4, background=True, periodic=True, ws=1,
            softening="none", nleaf=8)),
    ]

    print(f"{'configuration':38s} {'max rel err':>12s} {'int/part':>9s} {'time':>7s}")
    prev = None
    for name, cfg in ladder:
        t0 = time.time()
        res = TreecodeGravity(cfg).compute(pos, mass)
        dt = time.time() - t0
        err = np.linalg.norm(res.acc - ref, axis=1).max() / scale
        ipp = res.stats["interactions_per_particle"]
        print(f"{name:38s} {err:12.2e} {ipp:9.0f} {dt:6.1f}s")
        if prev is not None:
            assert err >= prev * 0.1 or err < 1e-6, "ladder out of order?"
        prev = err
    print(
        "\nEach rung is cheap enough to verify the next: exactly the §5"
        "\nmethodology (and the ws=2 rung shows the §2.4 1e-7 claim)."
    )


if __name__ == "__main__":
    main()
