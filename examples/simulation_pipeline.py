"""Pipeline metaprogramming and task scheduling (paper §3.4).

Builds a Fig. 8-style simulation suite from one high-level spec
(generating all per-stage config files and driver scripts), then
schedules the suite plus its MapReduce-style analysis inside a fixed
allocation with the stask queue.

Run:  python examples/simulation_pipeline.py   (instant)
"""

import tempfile
from pathlib import Path

from repro.pipeline import (
    Allocation,
    PipelineSpec,
    STaskQueue,
    Task,
    expand_grid,
    map_reduce,
)


def main():
    base = PipelineSpec(
        name="ds2013",
        n_per_dim=64,
        z_init=49.0,
        errtol=1e-5,
        git_tag="v2.0-repro",
    )
    suite = expand_grid(base, box_mpc_h=[1000.0, 2000.0, 4000.0, 8000.0])
    print(f"suite of {len(suite)} runs from one spec (the paper's Fig. 8 boxes):")
    with tempfile.TemporaryDirectory() as d:
        for spec in suite:
            paths = spec.write(d)
            ok = PipelineSpec.consistent(paths)
            print(f"  {spec.name:28s} -> {len(paths)} files, consistent={ok}")
        files = sorted(Path(d).glob("*"))
        print(f"\nexample generated config ({files[0].name}):")
        print("  " + files[0].read_text().replace("\n", "\n  ")[:400])

    # --- schedule the suite in an allocation --------------------------------
    q = STaskQueue(Allocation(cores=4096, walltime_s=48 * 3600))
    for i, spec in enumerate(suite):
        q.submit(
            Task(
                name=spec.name,
                cores=1024,
                duration_s=(i + 1) * 4 * 3600,  # bigger boxes cost more
                preempt_notice_s=600,  # the paper's courtesy window
            )
        )
    # MapReduce-style analysis (power spectrum grid) after the runs
    map_reduce(q, n_map=64, map_cores=64, map_duration_s=900,
               reduce_cores=512, reduce_duration_s=600)
    stats = q.run()
    print(
        f"\nstask schedule: {stats['completed']} tasks completed, "
        f"utilization {stats['utilization']:.2f}, "
        f"makespan {stats['makespan_s'] / 3600:.1f} h, "
        f"{stats['preempted']} preempted"
    )


if __name__ == "__main__":
    main()
