"""Exercise the simulated parallel machine (paper §3, Figs. 4-5).

Decomposes a clustered box over many ranks with the space-filling-curve
sample sort, runs the request/reply parallel traversal with ABM
batching, compares the Alltoall strategies, and evaluates the strong-
scaling model calibrated from the measurements.

Run:  python examples/parallel_scaling_study.py   (~1 minute)
"""

import numpy as np

from repro.cosmology import PLANCK2013
from repro.parallel import (
    JAGUAR_LIKE,
    SimComm,
    alltoall_pairwise,
    decompose,
    domain_surface_stats,
    parallel_traversal,
    sample_sort,
    sparse_exchange_pattern,
)
from repro.perfmodel import ScalingInputs, StrongScalingModel
from repro.simulation import ICConfig, generate_ic
from repro.tree import build_tree, compute_moments


def main():
    ps = generate_ic(PLANCK2013, ICConfig(n_per_dim=14, a_init=0.25, seed=8))
    pos, mass = ps.pos, ps.mass
    print(f"{len(pos)} particles; evolving field at z=3\n")

    # --- domain decomposition (Fig. 4) ------------------------------------
    for curve in ("morton", "hilbert"):
        d = decompose(pos, 64, curve=curve)
        st = domain_surface_stats(pos, d, probe=0.02)
        print(
            f"{curve:8s}: 64 domains, imbalance {d.load_imbalance():.3f}, "
            f"boundary fraction {st['boundary_fraction']:.3f}, "
            f"max extent {st['max_extent']:.3f}"
        )

    # --- distributed sample sort -------------------------------------------
    comm = SimComm(16, JAGUAR_LIKE)
    from repro.keys import keys_from_positions

    keys = keys_from_positions(pos)
    chunks = np.array_split(keys, 16)
    sorted_chunks, splitters = sample_sort(comm, chunks)
    counts = [len(c) for c in sorted_chunks]
    print(
        f"\nsample sort over 16 ranks: counts {min(counts)}..{max(counts)}, "
        f"{comm.ledger.total_bytes()} bytes moved, "
        f"modeled {comm.ledger.time_s * 1e3:.2f} ms"
    )

    # --- sparse particle exchange (§3.1) --------------------------------------
    comm2 = SimComm(64, JAGUAR_LIKE)
    send = sparse_exchange_pattern(64, 5000)
    alltoall_pairwise(comm2, send)
    print(
        f"sparse step exchange, 64 ranks: {comm2.ledger.total_messages()} "
        f"messages (dense would use {64 * 63})"
    )

    # --- parallel traversal with ABM (§3.2) ------------------------------------
    tree = build_tree(pos, mass, nleaf=16)
    moms = compute_moments(tree, p=2, tol=1e-4)
    stats = parallel_traversal(tree, moms, n_ranks=32, machine=JAGUAR_LIKE)
    print(
        f"\nparallel traversal over 32 ranks: load imbalance "
        f"{stats.load_imbalance:.3f}, {stats.remote_cells_requested.sum()} "
        f"remote hcells via {stats.abm_wire_messages} wire messages "
        f"({stats.abm_posted_messages} posted; batching amortized "
        f"{stats.abm_posted_messages - stats.abm_wire_messages})"
    )

    # --- strong scaling model (Fig. 5) --------------------------------------------
    inputs = ScalingInputs(
        n_particles=128e9,
        flops_per_particle=582000.0,
        imbalance_ref=min(stats.load_imbalance, 0.1),
        imbalance_ref_ranks=16384,
        remote_cells_ref=float(stats.remote_cells_requested.mean()) * 50,
    )
    model = StrongScalingModel(inputs, JAGUAR_LIKE)
    print("\nstrong scaling model at the paper's Fig. 5 configuration:")
    print(f"{'cores':>8s} {'Tflop/s':>9s} {'efficiency':>10s}")
    for p in (16384, 32768, 65536, 131072, 262144):
        print(f"{p:8d} {model.tflops(p):9.0f} {model.efficiency(p, 16384):10.3f}")


if __name__ == "__main__":
    main()
