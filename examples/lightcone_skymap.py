"""Light-cone sky map — the Fig. 1 pipeline end to end.

Runs a small box while a LightConeRecorder captures particles as the
z=0 observer's backward light cone sweeps through them, then projects
the cone onto an equal-area sphere and prints the Mollweide-projected
density contrast (the paper renders the same data with HEALPix).

Run:  python examples/lightcone_skymap.py   (~1 minute)
"""

import numpy as np

from repro.analysis import EqualAreaSphere, mollweide_xy
from repro.cosmology import PLANCK2013, Background
from repro.simulation import LightConeRecorder, Simulation, SimulationConfig


def main():
    box = 3000.0  # Mpc/h: deep cone, linear structure at this resolution
    cfg = SimulationConfig(
        n_per_dim=10, box_mpc_h=box, a_init=0.4, a_final=1.0,
        errtol=1e-3, p=2, max_refine=1, track_energy=False, seed=11,
    )
    bg = Background(PLANCK2013)
    print(
        f"Recording the light cone of a z=0 observer through a {box:.0f} "
        f"Mpc/h box\n(a = {cfg.a_init} -> 1; cone depth chi(a_init) = "
        f"{bg.comoving_distance(cfg.a_init):.0f} Mpc/h)"
    )
    sim = Simulation(cfg)
    cone = LightConeRecorder(PLANCK2013, box, depth_boxes=1.0)
    sim.run(callback=cone)
    print(f"steps: {len(sim.history)}; particles on the cone: {cone.n_recorded}")
    z = cone.redshifts
    print(f"redshift range of the cone: {z.min():.2f} .. {z.max():.2f}")

    sphere = EqualAreaSphere(8)
    sky = cone.sky_map(sphere)
    print(f"\nsky pixels: {sphere.n_pixels}; "
          f"density contrast rms {sky.std():.3f}, max {sky.max():.2f}")

    # a terminal Mollweide rendering: coarse character map
    xy = mollweide_xy(sphere.pixel_centers())
    cols, rows = 64, 17
    grid = [[" "] * cols for _ in range(rows)]
    shades = " .:-=+*#%@"
    lo, hi = np.percentile(sky, [5, 95])
    for (x, y), v in zip(xy, sky):
        c = int((x + 2 * np.sqrt(2)) / (4 * np.sqrt(2)) * (cols - 1))
        r = int((np.sqrt(2) - y) / (2 * np.sqrt(2)) * (rows - 1))
        t = 0.0 if hi <= lo else np.clip((v - lo) / (hi - lo), 0, 1)
        grid[r][c] = shades[int(t * (len(shades) - 1))]
    print("\nMollweide projection of the light-cone density (ASCII):")
    for row in grid:
        print("  " + "".join(row))
    print("\n(the paper's Fig. 1 is this object at 69e9 particles, rendered")
    print(" with HEALPix and compared against the Planck satellite maps)")


if __name__ == "__main__":
    main()
