"""Legacy setup shim.

The execution environment has no network access and no `wheel`
package, so PEP 660 editable installs (which shell out to
`bdist_wheel`) cannot run.  Keeping a setup.py lets
`pip install -e . --no-build-isolation` fall back to the legacy
`setup.py develop` path, which works offline.
"""

from setuptools import setup

setup()
