"""repro — a Python reproduction of 2HOT (Warren, SC'13).

An adaptive parallel hashed oct-tree N-body library for cosmological
simulation: Cartesian multipole methods with rigorous error bounds and
background subtraction, symplectic comoving time integration, periodic
boundary conditions via lattice local expansions, a simulated parallel
machine exercising the paper's communication algorithms, and the
analysis pipeline (power spectra, halo finders, mass functions) used
for its scientific results.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"
