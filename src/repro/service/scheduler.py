"""The crash-safe job scheduler: admission, supervision, retry, recovery.

One :class:`JobService` owns a service directory::

    <dir>/journal.jsonl      durable job store (append-only transitions)
    <dir>/service.pid        liveness lock for the serving process
    <dir>/jobs/<id>/         private per-job dir: stage.json, events.jsonl,
                             stdout.log, stderr.log, checkpoints/

Scheduling is an async supervision loop over subprocesses running
``python -m repro.pipeline.run_stage``:

* **admission control** — submissions beyond ``queue_bound`` active
  jobs are rejected with the typed :class:`~repro.service.jobs.QueueFull`
  (backpressure); launch order is fair round-robin across submitters;
  concurrency is bounded by ``max_concurrent`` and an optional
  ``core_budget`` weighted by each job's declared cores.
* **supervision** — per-job wall-clock timeout, heartbeat hang
  detection on the job's JSONL event stream, and deterministic
  job-level fault injection (``REPRO_SERVICE_FAULTS``) for tests.
* **retry with resume** — a killed/crashed/hung/timed-out job is
  relaunched after exponential backoff with deterministic jitter,
  passing ``--resume`` so it restarts from its newest valid checkpoint:
  the retried run is bit-identical to an uninterrupted one (PR 4's
  guarantee), and corrupted checkpoints fall back to older ones.
* **preemption courtesy** — SIGTERM/SIGINT to the service delivers
  SIGTERM to every running job; the driver checkpoints and exits with
  status 75 (:data:`~repro.pipeline.run_stage.EXIT_PREEMPTED`), the
  job requeues with resume at zero retry cost, and the service drains.
* **dedup + result cache** — submissions are keyed by the PR 3
  provenance config sha256; an identical finished config returns the
  cached result, an identical in-flight config attaches to that job.
* **crash safety** — the service process itself dying is just another
  fault: a restarted service replays the journal and requeues (with
  resume) every job the dead one had in flight.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from .faults import ServiceFaultPlan
from .jobs import (
    Job,
    JobSpec,
    QueueFull,
    ServiceError,
    UnknownJob,
    deterministic_jitter,
)
from .journal import JobJournal

__all__ = ["ServiceConfig", "JobService"]


@dataclass
class ServiceConfig:
    """Operational envelope of one service instance."""

    #: concurrent running jobs
    max_concurrent: int = 2
    #: total cores runnable at once, weighted by ``JobSpec.cores``
    #: (0 = bounded by ``max_concurrent`` alone)
    core_budget: int = 0
    #: admission bound on *active* (non-terminal, non-attached) jobs
    queue_bound: int = 64
    #: supervision poll cadence
    poll_s: float = 0.05
    #: retry backoff: base * 2^(retries-1), capped, plus jitter fraction
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 30.0
    backoff_jitter: float = 0.25
    #: grace between SIGTERM and SIGKILL when draining/cancelling
    drain_grace_s: float = 20.0
    #: preemption round-trips before a job is failed as thrashing
    max_preempts: int = 8
    #: interpreter for job subprocesses
    python: str = sys.executable


class _Attempt:
    """Supervision state of one running subprocess."""

    def __init__(self, job: Job, proc: subprocess.Popen, jobdir: Path,
                 hang_injected: bool, kill_clause):
        self.job = job
        self.proc = proc
        self.jobdir = jobdir
        self.t_start = time.monotonic()
        self.events_path = jobdir / "events.jsonl"
        self.events_seen = 0
        self._events_offset = 0
        self.last_heartbeat = time.monotonic()
        self.hang_injected = hang_injected
        self.kill_clause = kill_clause
        self.kill_sent: str | None = None  # why we signalled it, if we did
        self.term_sent_t: float | None = None

    def poll_events(self) -> int:
        """Count newly appended event lines (the heartbeat signal)."""
        try:
            size = self.events_path.stat().st_size
        except OSError:
            return 0
        if size <= self._events_offset:
            return 0
        with open(self.events_path, "rb") as fh:
            fh.seek(self._events_offset)
            data = fh.read(size - self._events_offset)
        # only count whole lines; a line mid-write stays for next poll
        cut = data.rfind(b"\n") + 1
        fresh = data[:cut].count(b"\n")
        self._events_offset += cut
        if fresh:
            self.events_seen += fresh
            self.last_heartbeat = time.monotonic()
        return fresh


class JobService:
    """Durable multi-tenant simulation runner over one service directory."""

    def __init__(self, directory, config: ServiceConfig | None = None,
                 faults: ServiceFaultPlan | str | None = None, **config_kw):
        # absolute: job paths are handed to subprocesses whose cwd is
        # their own job dir, where a relative service dir would dangle
        self.dir = Path(directory).resolve()
        self.dir.mkdir(parents=True, exist_ok=True)
        if config is None:
            config = ServiceConfig(**config_kw)
        elif config_kw:
            raise TypeError("pass either a ServiceConfig or keyword fields")
        self.config = config
        self.journal = JobJournal(self.dir / "journal.jsonl")
        replay = self.journal.replay()
        #: job id -> Job, submission-ordered (dict preserves order)
        self.jobs: dict[str, Job] = replay.jobs
        self._pending_cancels: set[str] = set(replay.pending_cancels)
        self._replay_skipped = replay.skipped
        if faults is None:
            faults = ServiceFaultPlan.from_env()
        elif isinstance(faults, str):
            faults = ServiceFaultPlan.parse(faults)
        self.faults = faults
        self._drain = False
        self._running: dict[str, _Attempt] = {}
        self._rr_cursor = 0
        self._max_depth = 0
        #: recovery accounting for the service metrics / bench — seeded
        #: from the journal so a restarted process reports the history
        self.counts = replay.counts

    # ----- lookup ---------------------------------------------------------------
    def find(self, ref: str) -> Job:
        """Resolve a job by id prefix or exact name (newest wins)."""
        ref = str(ref).strip()
        by_id = [j for j in self.jobs.values() if j.id.startswith(ref)]
        if len(by_id) == 1:
            return by_id[0]
        by_name = [j for j in self.jobs.values() if j.name == ref]
        if by_name:
            return by_name[-1]
        if len(by_id) > 1:
            raise UnknownJob(f"job ref {ref!r} is ambiguous ({len(by_id)} ids)")
        raise UnknownJob(f"no job matches {ref!r}")

    def job_dir(self, job: Job) -> Path:
        return self.dir / "jobs" / job.id

    @property
    def queue_depth(self) -> int:
        return sum(
            1 for j in self.jobs.values()
            if j.active and j.attached_to is None
        )

    # ----- submission / admission ----------------------------------------------
    def submit(self, config_or_spec, **spec_kw) -> Job:
        """Admit one job (or serve it from cache); returns its Job.

        ``config_or_spec`` is a :class:`JobSpec`, a stage-config dict,
        or a path to a stage JSON file.  Raises :class:`QueueFull` when
        the active-job bound is reached — typed backpressure, nothing
        journaled.
        """
        spec = self._normalize_spec(config_or_spec, spec_kw)
        key = spec.key()
        if spec.cache:
            # dedup: a finished identical config is served from cache...
            done = [j for j in self.jobs.values()
                    if j.key == key and j.state == "done" and j.spec.cache
                    and j.result is not None and j.cached_from is None]
            if done:
                src = done[-1]
                job = self.journal.submit(spec)
                self.jobs[job.id] = job
                self._journal_apply(job, "done", result=src.result,
                                    cached_from=src.id)
                self.counts["cache_hits"] += 1
                return job
            # ...an identical in-flight config is attached, not re-run
            live = [j for j in self.jobs.values()
                    if j.key == key and j.active and j.spec.cache
                    and j.attached_to is None]
            if live:
                job = self.journal.submit(spec, attached_to=live[-1].id)
                self.jobs[job.id] = job
                self.counts["attached"] += 1
                return job
        depth = self.queue_depth
        if depth >= self.config.queue_bound:
            raise QueueFull(depth, self.config.queue_bound)
        job = self.journal.submit(spec)
        self.jobs[job.id] = job
        self._max_depth = max(self._max_depth, self.queue_depth)
        return job

    def sweep(self, configs, **spec_kw) -> list[Job]:
        """Submit a batch (a parameter sweep); returns the Jobs in order."""
        return [self.submit(cfg, **spec_kw) for cfg in configs]

    @staticmethod
    def _normalize_spec(config_or_spec, spec_kw) -> JobSpec:
        if isinstance(config_or_spec, JobSpec):
            if spec_kw:
                raise TypeError("keyword fields only apply to raw configs")
            return config_or_spec
        cfg = config_or_spec
        if isinstance(cfg, (str, Path)):
            cfg = json.loads(Path(cfg).read_text())
        if not isinstance(cfg, dict):
            raise TypeError(f"cannot submit {type(config_or_spec).__name__}")
        return JobSpec(config=cfg, **spec_kw)

    # ----- control --------------------------------------------------------------
    def cancel(self, ref: str) -> Job:
        """Request cancellation (journaled; applied by the serve loop,
        or immediately for jobs that are not running)."""
        job = self.find(ref)
        if job.terminal:
            return job
        self.journal.append("cancel_requested", job=job.id)
        self._pending_cancels.add(job.id)
        if job.id not in self._running:
            self._apply_cancel(job)
        return job

    def request_drain(self) -> None:
        """Journal a drain request (picked up by the serving process)
        and nudge it with SIGTERM if its pidfile names a live process."""
        self.journal.append("drain_requested")
        pid = self.server_pid()
        if pid is not None and pid != os.getpid():
            try:
                os.kill(pid, signal.SIGTERM)
            except OSError:
                pass

    def server_pid(self) -> int | None:
        """PID of a live serving process, or None."""
        try:
            pid = int((self.dir / "service.pid").read_text().strip())
        except (OSError, ValueError):
            return None
        try:
            os.kill(pid, 0)
        except OSError:
            return None
        return pid

    # ----- the serve loop -------------------------------------------------------
    def serve_forever(self, drain_when_idle: bool = True) -> dict:
        """Synchronous wrapper: run :meth:`serve` to completion."""
        return asyncio.run(self.serve(drain_when_idle=drain_when_idle))

    async def serve(self, drain_when_idle: bool = True) -> dict:
        """Supervise the queue until drained (or idle); returns metrics.

        A SIGTERM/SIGINT (or a journaled ``drain_requested``) delivers
        the §3.4.1 preemption courtesy to every running job — SIGTERM,
        final checkpoint, requeue-with-resume — then stops.
        """
        pidfile = self.dir / "service.pid"
        other = self.server_pid()
        if other is not None and other != os.getpid():
            raise ServiceError(f"service already running (pid {other})")
        pidfile.write_text(f"{os.getpid()}\n")
        self.journal.append(
            "service_started", pid=os.getpid(),
            jobs=len(self.jobs), replay_skipped=self._replay_skipped,
        )
        self._requeue_orphans()
        handled = self._install_signal_handlers()
        t_serve0 = time.monotonic()
        try:
            while True:
                self._absorb_journal()
                self._max_depth = max(self._max_depth, self.queue_depth)
                self._apply_pending_cancels()
                self._reap()
                if self._drain:
                    await self._drain_running()
                    break
                self._supervise()
                self._launch_ready()
                if drain_when_idle and not self._running and not self._launchable(
                    any_backoff=True
                ):
                    break
                await asyncio.sleep(self.config.poll_s)
            metrics = self.metrics()
            metrics["serve_wall_s"] = round(time.monotonic() - t_serve0, 6)
            self.journal.append("service_stopped", pid=os.getpid(),
                                metrics=metrics, drained=self._drain)
            self._record_observation(metrics)
            return metrics
        finally:
            self._remove_signal_handlers(handled)
            try:
                if pidfile.exists() and pidfile.read_text().strip() == str(os.getpid()):
                    pidfile.unlink()
            except OSError:
                pass

    # ----- signals --------------------------------------------------------------
    def _install_signal_handlers(self):
        def trigger(*_args):
            self._drain = True

        try:
            loop = asyncio.get_running_loop()
            loop.add_signal_handler(signal.SIGTERM, trigger)
            loop.add_signal_handler(signal.SIGINT, trigger)
            return ("loop", loop)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        try:
            prev = {
                signal.SIGTERM: signal.signal(signal.SIGTERM, trigger),
                signal.SIGINT: signal.signal(signal.SIGINT, trigger),
            }
            return ("signal", prev)
        except (ValueError, OSError):  # non-main thread
            return None

    def _remove_signal_handlers(self, handled) -> None:
        if handled is None:
            return
        kind, payload = handled
        if kind == "loop":
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    payload.remove_signal_handler(sig)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
        else:
            for sig, prev in payload.items():
                try:
                    signal.signal(sig, prev)
                except (ValueError, OSError):
                    pass

    # ----- restart recovery -----------------------------------------------------
    def _requeue_orphans(self) -> None:
        """Jobs the journal says were in flight belong to a dead service:
        requeue them with checkpoint resume (the service-crash story)."""
        for job in self.jobs.values():
            if job.state in ("admitted", "running") and job.id not in self._running:
                self._journal_apply(job, "requeued", reason="service_restart",
                                    resume=True)

    # ----- journal tailing ------------------------------------------------------
    def _absorb_journal(self) -> None:
        """Fold in records other processes appended while we serve."""
        for rec in self.journal.read_new():
            if rec.get("pid") == os.getpid():
                continue  # our own writes are already applied in memory
            event = rec.get("event")
            if event == "drain_requested":
                self._drain = True
                continue
            if event == "cancel_requested":
                jid = rec.get("job")
                if jid in self.jobs and self.jobs[jid].active:
                    self._pending_cancels.add(jid)
                continue
            if event == "submitted":
                from .journal import ReplayState

                tmp = ReplayState(jobs=self.jobs)
                JobJournal.apply_record(tmp, rec)

    # ----- cancellation ---------------------------------------------------------
    def _apply_cancel(self, job: Job) -> None:
        if job.terminal:
            self._pending_cancels.discard(job.id)
            return
        self._journal_apply(job, "cancelled", error="cancelled by request")
        self._pending_cancels.discard(job.id)
        self._resolve_attached(job)

    def _apply_pending_cancels(self) -> None:
        for jid in sorted(self._pending_cancels):
            job = self.jobs.get(jid)
            if job is None:
                self._pending_cancels.discard(jid)
                continue
            att = self._running.get(jid)
            if att is None:
                self._apply_cancel(job)
            elif att.kill_sent is None:
                # running: courtesy SIGTERM first; the reaper finishes it
                self._signal_attempt(att, "cancel")

    # ----- launch ---------------------------------------------------------------
    def _launchable(self, any_backoff: bool = False) -> list[Job]:
        """Queued, unattached, backoff-cleared jobs (FIFO per submitter)."""
        now = time.time()
        out = []
        for job in self.jobs.values():
            if job.state != "queued" or job.attached_to is not None:
                continue
            if job.id in self._pending_cancels:
                continue
            if not any_backoff and job.not_before > now:
                continue
            out.append(job)
        return out

    def _used_cores(self) -> int:
        return sum(max(1, a.job.spec.cores) for a in self._running.values())

    def _launch_ready(self) -> None:
        """Admit + start jobs under the concurrency/core budget, fair
        round-robin across submitters."""
        ready = self._launchable()
        if not ready:
            return
        by_submitter: dict[str, list[Job]] = {}
        for job in ready:
            by_submitter.setdefault(job.spec.submitter, []).append(job)
        submitters = sorted(by_submitter)
        while ready and len(self._running) < self.config.max_concurrent:
            # rotate the cursor so no submitter monopolizes the slots
            for step in range(len(submitters)):
                name = submitters[(self._rr_cursor + step) % len(submitters)]
                bucket = by_submitter.get(name)
                if bucket:
                    self._rr_cursor = (self._rr_cursor + step + 1) % len(submitters)
                    job = bucket.pop(0)
                    break
            else:
                return
            ready.remove(job)
            budget = self.config.core_budget
            if budget and self._used_cores() + max(1, job.spec.cores) > budget:
                continue  # try a narrower job from another submitter
            self._start(job)

    def _start(self, job: Job) -> None:
        jobdir = self.job_dir(job)
        jobdir.mkdir(parents=True, exist_ok=True)
        stage_path = jobdir / "stage.json"
        if not stage_path.exists():
            stage_path.write_text(
                json.dumps(job.spec.config, indent=2, sort_keys=True) + "\n"
            )
        spec = job.spec
        attempt = job.attempt  # attempts already launched
        resume = job.resume_next or attempt > 0
        hang = self.faults.hang_clause(job.name, attempt)
        kill_clause = self.faults.kill_clause(job.name, attempt)
        env = dict(os.environ)
        corrupt = self.faults.corrupt_env(job.name, attempt)
        if corrupt is not None:
            env["REPRO_FAULTS"] = corrupt
        elif "REPRO_FAULTS" in env:
            # worker-level plans are per-test machinery; a service job
            # only sees faults addressed to it through the service plan
            del env["REPRO_FAULTS"]
        env.pop(  # service plan must not cascade into children
            "REPRO_SERVICE_FAULTS", None)
        # make the library importable for the child whatever the cwd
        pkg_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (pkg_root, env.get("PYTHONPATH")) if p
        )
        if hang is not None:
            cmd = [self.config.python, "-c", "import time; time.sleep(600)"]
        else:
            cmd = [
                self.config.python, "-m", "repro.pipeline.run_stage",
                str(stage_path),
                "--workdir", str(spec.workdir or jobdir),
                "--trace", str(jobdir / "events.jsonl"),
                "--checkpoint-dir", str(jobdir / "checkpoints"),
                "--workers", str(spec.workers),
            ]
            if spec.checkpoint_every:
                cmd += ["--checkpoint-every", str(spec.checkpoint_every)]
            if resume:
                cmd += ["--resume"]
        self._journal_apply(
            job, "admitted",
        )
        with open(jobdir / "stdout.log", "ab") as out, \
                open(jobdir / "stderr.log", "ab") as err:
            proc = subprocess.Popen(
                cmd, stdout=out, stderr=err, env=env,
                cwd=str(spec.workdir or jobdir),
                start_new_session=True,  # killpg reaches the job's workers
            )
        self._journal_apply(
            job, "started", attempt=attempt + 1, resume=resume, pid=proc.pid,
            hang_injected=hang is not None, corrupt_injected=corrupt is not None,
        )
        job.resume_next = False
        self._running[job.id] = _Attempt(
            job, proc, jobdir, hang_injected=hang is not None,
            kill_clause=kill_clause,
        )

    # ----- supervision ----------------------------------------------------------
    def _supervised_kill(self, att: _Attempt, reason: str, counter: str) -> None:
        """Kill an attempt for cause, with a durable audit record —
        counters survive a service restart because replay re-counts them."""
        self.counts[counter] += 1
        self.journal.append("killed", job=att.job.id, reason=reason,
                            child_pid=att.proc.pid)
        self._signal_attempt(att, reason, hard=True)

    def _signal_attempt(self, att: _Attempt, reason: str,
                        hard: bool = False) -> None:
        att.kill_sent = reason
        att.term_sent_t = time.monotonic()
        try:
            if hard:
                try:
                    os.killpg(os.getpgid(att.proc.pid), signal.SIGKILL)
                except (OSError, ProcessLookupError):
                    att.proc.kill()
            else:
                att.proc.terminate()
        except (OSError, ProcessLookupError):
            pass

    def _supervise(self) -> None:
        """Timeouts, heartbeats, injected kills, SIGTERM escalation."""
        now = time.monotonic()
        for att in list(self._running.values()):
            if att.proc.poll() is not None:
                continue  # the reaper handles it next pass
            att.poll_events()
            spec = att.job.spec
            cl = att.kill_clause
            if (cl is not None and att.kill_sent is None
                    and cl.fired < cl.times
                    and (att.events_seen >= cl.events
                         or (cl.after_s and now - att.t_start >= cl.after_s))):
                cl.fired += 1
                self._supervised_kill(att, "fault_kill", "kills")
                continue
            if att.kill_sent is None and spec.timeout_s > 0 \
                    and now - att.t_start > spec.timeout_s:
                self._supervised_kill(att, "timeout", "timeouts")
                continue
            if att.kill_sent is None and spec.heartbeat_timeout_s > 0 \
                    and now - att.last_heartbeat > spec.heartbeat_timeout_s:
                self._supervised_kill(att, "hung", "hangs")
                continue
            if att.kill_sent in ("cancel", "drain") and att.term_sent_t is not None \
                    and now - att.term_sent_t > self.config.drain_grace_s:
                self._signal_attempt(att, att.kill_sent, hard=True)

    def _reap(self) -> None:
        """Fold exited subprocesses back into the state machine."""
        from ..pipeline.run_stage import EXIT_PREEMPTED

        for jid, att in list(self._running.items()):
            rc = att.proc.poll()
            if rc is None:
                continue
            del self._running[jid]
            job = att.job
            if jid in self._pending_cancels or att.kill_sent == "cancel":
                self._apply_cancel(job)
                continue
            if rc == 0:
                result = self._read_result(att.jobdir)
                self._journal_apply(job, "done", result=result)
                self._resolve_attached(job)
                continue
            if rc == EXIT_PREEMPTED or att.kill_sent == "drain":
                self.counts["preempts"] += 1
                if job.preempts + 1 > self.config.max_preempts:
                    self._journal_apply(
                        job, "failed",
                        error=f"preempted {job.preempts + 1}x (thrashing)",
                    )
                    self._resolve_attached(job)
                    continue
                # the courtesy worked: checkpointed, free requeue
                self._journal_apply(job, "retrying", reason="preempted",
                                    resume=True, not_before=time.time())
                self._journal_apply(job, "requeued", resume=True)
                continue
            reason = att.kill_sent or f"exit_{rc}"
            err = self._read_error_tail(att.jobdir)
            if job.retries + 1 > job.spec.max_retries:
                self._journal_apply(
                    job, "failed",
                    error=f"{reason} after {job.attempt} attempts: {err}",
                )
                self._resolve_attached(job)
                continue
            backoff = self._backoff_s(job)
            self.counts["retries"] += 1
            self._journal_apply(
                job, "retrying", reason=reason, error=err, resume=True,
                retries=job.retries + 1, backoff_s=round(backoff, 3),
                not_before=time.time() + backoff,
            )
            self._journal_apply(job, "requeued", resume=True)

    def _backoff_s(self, job: Job) -> float:
        c = self.config
        base = min(c.backoff_base_s * (2 ** job.retries), c.backoff_cap_s)
        return base * (1.0 + c.backoff_jitter
                       * deterministic_jitter(job.id, job.retries + 1))

    def _resolve_attached(self, primary: Job) -> None:
        """Duplicate submissions riding on ``primary`` share its fate."""
        for job in self.jobs.values():
            if job.attached_to != primary.id or job.terminal:
                continue
            if primary.state == "done":
                self._journal_apply(job, "done", result=primary.result,
                                    cached_from=primary.id)
            elif primary.state == "failed":
                self._journal_apply(job, "failed",
                                    error=f"primary {primary.id} failed")
            else:  # cancelled primary: the duplicate still wants the result
                job.attached_to = None
                self.journal.append("requeued", job=job.id,
                                    detached_from=primary.id)

    @staticmethod
    def _read_result(jobdir: Path) -> dict | None:
        """The stage summary: last JSON line run_stage printed."""
        try:
            lines = (jobdir / "stdout.log").read_text().strip().splitlines()
        except OSError:
            return None
        for line in reversed(lines):
            line = line.strip()
            if line.startswith("{"):
                try:
                    return json.loads(line)
                except json.JSONDecodeError:
                    continue
        return None

    @staticmethod
    def _read_error_tail(jobdir: Path, n: int = 3) -> str:
        try:
            lines = (jobdir / "stderr.log").read_text().strip().splitlines()
        except OSError:
            return ""
        return " | ".join(lines[-n:])[-500:]

    # ----- drain ----------------------------------------------------------------
    async def _drain_running(self) -> None:
        """Checkpoint-then-drain every running job (§3.4.1 courtesy)."""
        if self._running:
            self.journal.append("drained", jobs=sorted(self._running))
        for att in self._running.values():
            if att.kill_sent is None:
                self._signal_attempt(att, "drain")  # SIGTERM: checkpoint + 75
        deadline = time.monotonic() + self.config.drain_grace_s
        while self._running and time.monotonic() < deadline:
            self._reap()
            await asyncio.sleep(self.config.poll_s)
        for att in list(self._running.values()):
            self._signal_attempt(att, "drain", hard=True)
        while self._running:
            self._reap()
            if self._running:
                await asyncio.sleep(self.config.poll_s)

    # ----- metrics --------------------------------------------------------------
    def metrics(self) -> dict:
        """Service-level health/throughput metrics from live state."""
        jobs = list(self.jobs.values())
        done = [j for j in jobs if j.state == "done"]
        computed = [j for j in done if j.cached_from is None]
        waits = sorted(
            j.started_t - j.submitted_t for j in jobs
            if j.started_t is not None and j.submitted_t
        )
        finished = [j.finished_t for j in jobs if j.finished_t is not None]
        submitted = [j.submitted_t for j in jobs if j.submitted_t]
        span_s = (max(finished) - min(submitted)) if finished and submitted else 0.0
        out = {
            "jobs": len(jobs),
            "done": len(done),
            "computed": len(computed),
            "failed": sum(j.state == "failed" for j in jobs),
            "cancelled": sum(j.state == "cancelled" for j in jobs),
            "queue_depth": self.queue_depth,
            "max_queue_depth": self._max_depth,
            "queue_wait_p50_s": round(_percentile(waits, 0.50), 6),
            "queue_wait_p99_s": round(_percentile(waits, 0.99), 6),
            "span_s": round(span_s, 6),
            "jobs_per_hour": round(len(done) * 3600.0 / span_s, 3)
            if span_s > 0 else None,
            **self.counts,
        }
        recovery = [
            j for j in computed if j.retries or j.preempts
        ]
        out["recovered_jobs"] = len(recovery)
        out["resumed_jobs"] = sum(
            1 for j in computed
            if isinstance(j.result, dict) and j.result.get("resumed_from")
        )
        return out

    def _record_observation(self, metrics: dict) -> None:
        """Append the sweep's metrics to the run observatory (never raises)."""
        try:
            from ..diagnose.manifest import config_hash
            from ..observe import get_observer

            obs = get_observer()
            if not getattr(obs, "enabled", False) or obs.registry is None:
                return
            obs.registry.record(
                "service",
                {"service_dir": str(self.dir), **metrics},
                key=config_hash({"service_dir": str(self.dir)}),
            )
        except Exception:
            pass

    # ----- shared write path ----------------------------------------------------
    def _journal_apply(self, job: Job, event: str, **fields) -> None:
        """Journal first, then apply — the store never lags the state."""
        rec = self.journal.append(event, job=job.id, **fields)
        job.apply(event, t=rec["t"], **fields)


def _percentile(sorted_vals, q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(int(q * len(sorted_vals)), len(sorted_vals) - 1)
    return float(sorted_vals[idx])
