"""``python -m repro.service`` == the ``repro-serve`` CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
