"""``repro-serve`` — operate the crash-safe simulation job service.

Every subcommand works against one service directory (``--dir``,
default ``./service``).  Submission, status and cancellation talk to
the durable journal, so they work whether or not a serving process is
currently alive — a server picks up cross-process submissions by
tailing the journal.

Typical loop::

    repro-serve --dir svc sweep evolve.json --grid seed=1,2,3,4
    repro-serve --dir svc serve            # run until the queue drains
    repro-serve --dir svc status
    repro-serve --dir svc logs evolve-1a2b3c4d --stderr
    repro-serve --dir svc drain            # checkpoint + stop a server
"""

from __future__ import annotations

import argparse
import json
import sys

from .jobs import QueueFull, ServiceError
from .scheduler import JobService, ServiceConfig

__all__ = ["main"]


def _spec_kw(args) -> dict:
    kw = dict(
        name=args.name or "",
        submitter=args.submitter,
        workers=args.workers,
        cores=args.cores,
        timeout_s=args.timeout,
        heartbeat_timeout_s=args.heartbeat_timeout,
        max_retries=args.retries,
        checkpoint_every=args.checkpoint_every,
        cache=not args.no_cache,
    )
    if args.workdir:
        kw["workdir"] = args.workdir
    return kw


def _add_spec_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--name", default=None, help="display name for the job")
    p.add_argument("--submitter", default="local",
                   help="fairness bucket (round-robin across submitters)")
    p.add_argument("--workdir", default=None,
                   help="resolve stage paths here (default: the private job dir)")
    p.add_argument("--workers", type=int, default=0,
                   help="force-solve worker processes inside the job")
    p.add_argument("--cores", type=int, default=1,
                   help="admission weight against the service core budget")
    p.add_argument("--timeout", type=float, default=0.0, metavar="S",
                   help="per-attempt wall-clock cap (0 = none)")
    p.add_argument("--heartbeat-timeout", type=float, default=0.0, metavar="S",
                   help="kill an attempt whose event stream stalls this long")
    p.add_argument("--retries", type=int, default=2,
                   help="failure-driven retries before the job fails for good")
    p.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                   help="durable checkpoint cadence in steps (0 = off)")
    p.add_argument("--no-cache", action="store_true",
                   help="opt out of dedup/result caching for this submission")


def _parse_grid(items: list[str]) -> dict:
    """``key=v1,v2,...`` pairs -> {key: [parsed values]} (JSON else str)."""
    grid = {}
    for item in items:
        key, sep, vals = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"--grid wants key=v1,v2,... (got {item!r})")
        parsed = []
        for raw in vals.split(","):
            try:
                parsed.append(json.loads(raw))
            except json.JSONDecodeError:
                parsed.append(raw)
        grid[key] = parsed
    return grid


def _expand(base: dict, grid: dict) -> list[dict]:
    """Cross-product sweep over the base config (insertion-ordered)."""
    configs = [dict(base)]
    for key, values in grid.items():
        configs = [{**cfg, key: v} for cfg in configs for v in values]
    return configs


def _print_submitted(job) -> None:
    note = ""
    if job.state == "done" and job.cached_from:
        note = f"  [cache hit <- {job.cached_from}]"
    elif job.attached_to:
        note = f"  [attached -> {job.attached_to}]"
    print(f"{job.id}  {job.name}  {job.state}{note}")


_STATE_ORDER = {s: i for i, s in enumerate(
    ("running", "admitted", "retrying", "queued", "done", "failed", "cancelled")
)}


def cmd_submit(svc: JobService, args) -> int:
    try:
        job = svc.submit(args.config, **_spec_kw(args))
    except QueueFull as exc:
        print(f"rejected: {exc}", file=sys.stderr)
        return 2
    _print_submitted(job)
    return 0


def cmd_sweep(svc: JobService, args) -> int:
    base = json.loads(open(args.config).read())
    configs = _expand(base, _parse_grid(args.grid))
    kw = _spec_kw(args)
    name = kw.pop("name", "")
    rejected = 0
    for i, cfg in enumerate(configs):
        try:
            job = svc.submit(cfg, **kw, name=f"{name}{i}" if name else "")
        except QueueFull as exc:
            rejected += 1
            print(f"rejected #{i}: {exc}", file=sys.stderr)
            continue
        _print_submitted(job)
    print(f"submitted {len(configs) - rejected}/{len(configs)} jobs")
    return 2 if rejected else 0


def cmd_status(svc: JobService, args) -> int:
    if args.ref:
        job = svc.find(args.ref)
        print(json.dumps(job.row(), indent=2))
        return 0
    rows = [j.row() for j in svc.jobs.values()]
    rows.sort(key=lambda r: (_STATE_ORDER.get(r["state"], 99), r["id"]))
    if args.json:
        print(json.dumps({"jobs": rows, "metrics": svc.metrics()}, indent=2))
        return 0
    if not rows:
        print("no jobs")
        return 0
    cols = ("id", "name", "state", "attempt", "retries", "preempts",
            "queue_wait_s", "run_s", "submitter")
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in cols}
    print("  ".join(c.ljust(widths[c]) for c in cols))
    for r in rows:
        print("  ".join(str(r[c] if r[c] is not None else "-").ljust(widths[c])
                        for c in cols))
    m = svc.metrics()
    pid = svc.server_pid()
    print(f"\n{m['done']}/{m['jobs']} done  depth={m['queue_depth']}  "
          f"p50 wait={m['queue_wait_p50_s']}s  p99={m['queue_wait_p99_s']}s  "
          f"server={'pid %d' % pid if pid else 'not running'}")
    return 0


def cmd_logs(svc: JobService, args) -> int:
    job = svc.find(args.ref)
    jobdir = svc.job_dir(job)
    name = ("stderr.log" if args.stderr
            else "events.jsonl" if args.events else "stdout.log")
    path = jobdir / name
    if not path.exists():
        print(f"(no {name} yet for {job.id})", file=sys.stderr)
        return 1
    text = path.read_text()
    if args.tail > 0:
        text = "\n".join(text.splitlines()[-args.tail:]) + "\n"
    sys.stdout.write(text)
    return 0


def cmd_cancel(svc: JobService, args) -> int:
    job = svc.cancel(args.ref)
    print(f"{job.id}  {job.name}  {job.state}")
    return 0


def cmd_drain(svc: JobService, args) -> int:
    pid = svc.server_pid()
    svc.request_drain()
    if pid:
        print(f"drain requested (server pid {pid} signalled)")
    else:
        print("drain requested (no live server; it will drain on next serve)")
    return 0


def cmd_serve(svc: JobService, args) -> int:
    try:
        metrics = svc.serve_forever(drain_when_idle=not args.forever)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(metrics, indent=2))
    failed = metrics.get("failed", 0)
    return 3 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Crash-safe simulation job service: durable queue, "
                    "retry with checkpoint resume, dedup, drain.",
    )
    parser.add_argument("--dir", default="service", metavar="DIR",
                        help="service directory (journal + per-job dirs)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("submit", help="submit one stage config as a job")
    p.add_argument("config", help="stage JSON file (repro.pipeline.config)")
    _add_spec_options(p)
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("sweep", help="submit a parameter sweep over a base config")
    p.add_argument("config", help="base stage JSON file")
    p.add_argument("--grid", action="append", default=[], metavar="KEY=V1,V2",
                   help="sweep values (repeatable; cross product)")
    _add_spec_options(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("status", help="job table (or one job as JSON)")
    p.add_argument("ref", nargs="?", default=None, help="job id prefix or name")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("logs", help="print a job's captured output")
    p.add_argument("ref", help="job id prefix or name")
    p.add_argument("--stderr", action="store_true", help="stderr instead of stdout")
    p.add_argument("--events", action="store_true", help="the JSONL event stream")
    p.add_argument("--tail", type=int, default=0, metavar="N",
                   help="only the last N lines")
    p.set_defaults(fn=cmd_logs)

    p = sub.add_parser("cancel", help="cancel a job (running jobs get SIGTERM)")
    p.add_argument("ref", help="job id prefix or name")
    p.set_defaults(fn=cmd_cancel)

    p = sub.add_parser("drain", help="checkpoint-then-stop a running server")
    p.set_defaults(fn=cmd_drain)

    p = sub.add_parser("serve", help="run the scheduler in the foreground")
    p.add_argument("--max-concurrent", type=int, default=2, metavar="N")
    p.add_argument("--core-budget", type=int, default=0, metavar="N",
                   help="cap total running cores (0 = max-concurrent only)")
    p.add_argument("--queue-bound", type=int, default=64, metavar="N",
                   help="admission bound on active jobs")
    p.add_argument("--forever", action="store_true",
                   help="keep serving when idle (stop via drain/SIGTERM)")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="deterministic fault plan (default: REPRO_SERVICE_FAULTS)")
    p.set_defaults(fn=cmd_serve)

    args = parser.parse_args(argv)
    if args.command == "serve":
        svc = JobService(
            args.dir,
            ServiceConfig(
                max_concurrent=args.max_concurrent,
                core_budget=args.core_budget,
                queue_bound=args.queue_bound,
            ),
            faults=args.faults,
        )
    else:
        svc = JobService(args.dir)
    try:
        return args.fn(svc, args)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
