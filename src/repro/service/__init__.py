"""Crash-safe simulation job service (ISSUE 9).

Durable queue + retry/backoff + timeouts + admission control +
checkpoint-aware auto-resume over the pipeline's stage runner.  The
journal (:mod:`~repro.service.journal`) is the single source of truth;
the scheduler (:mod:`~repro.service.scheduler`) supervises the
subprocesses; ``repro-serve`` (:mod:`~repro.service.cli`) operates it.
"""

from .faults import SERVICE_FAULTS_ENV, ServiceFaultClause, ServiceFaultPlan
from .jobs import (
    STATES,
    TERMINAL_STATES,
    TRANSITIONS,
    InvalidTransition,
    Job,
    JobSpec,
    QueueFull,
    ServiceError,
    UnknownJob,
    deterministic_jitter,
)
from .journal import SERVICE_SCHEMA_VERSION, JobJournal, ReplayState
from .scheduler import JobService, ServiceConfig

__all__ = [
    "SERVICE_FAULTS_ENV",
    "SERVICE_SCHEMA_VERSION",
    "STATES",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "InvalidTransition",
    "Job",
    "JobJournal",
    "JobService",
    "JobSpec",
    "QueueFull",
    "ReplayState",
    "ServiceConfig",
    "ServiceError",
    "ServiceFaultClause",
    "ServiceFaultPlan",
    "UnknownJob",
    "deterministic_jitter",
]
