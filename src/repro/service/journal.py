"""Durable job store: an append-only JSONL journal of state transitions.

The single source of truth for the job service.  Every submission,
admission, launch, retry, completion and control request is one
envelope-stamped line appended with a single ``write()`` on an
``O_APPEND`` handle (whole lines interleave across concurrent
processes — the same contract as :mod:`repro.observe.registry`, whose
pattern this inherits).  A writer that died mid-line leaves a torn
tail; the next append terminates it and reads skip it, so one crash
can never poison the store.

Restart safety is pure replay: :meth:`JobJournal.replay` folds the
event stream through the :class:`~repro.service.jobs.Job` state
machine and hands back every job exactly where the dead service left
it — jobs caught in ``admitted``/``running`` are the ones a restarted
scheduler must requeue with checkpoint resume.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from .jobs import Job, JobSpec, new_job_id

__all__ = ["SERVICE_SCHEMA_VERSION", "JobJournal", "ReplayState"]

SERVICE_SCHEMA_VERSION = 1

#: journal events that drive the job state machine (see Job.apply)
JOB_EVENTS = frozenset(
    {"admitted", "started", "done", "failed", "retrying", "requeued", "cancelled"}
)
#: control / lifecycle records that carry no per-job transition
#: ("killed" is the supervisor's audit record of a kill it delivered —
#: the job's own transition follows when the subprocess is reaped)
CONTROL_EVENTS = frozenset(
    {"submitted", "cancel_requested", "drain_requested",
     "service_started", "service_stopped", "drained", "killed"}
)

#: supervisor kill reasons -> the counter they durably increment
_KILL_COUNTERS = {"fault_kill": "kills", "timeout": "timeouts", "hung": "hangs"}


def _jsonable(obj):
    import numpy as np

    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, Path):
        return str(obj)
    return repr(obj)


@dataclass
class ReplayState:
    """What a journal replay reconstructs."""

    #: job id -> Job, in submission order
    jobs: dict = field(default_factory=dict)
    #: cancel requests targeting jobs that are still active
    pending_cancels: set = field(default_factory=set)
    #: records whose transition the state machine rejected (corruption
    #: or version skew — counted, never fatal)
    skipped: int = 0
    #: total parsed records
    records: int = 0
    #: durable service counters folded from the event stream, so a
    #: restarted process reports the same metrics the dead one would
    counts: dict = field(default_factory=lambda: {
        "kills": 0, "hangs": 0, "timeouts": 0, "preempts": 0,
        "retries": 0, "cache_hits": 0, "attached": 0,
    })


class JobJournal:
    """Append-only journal under ``path`` with replay + incremental tail."""

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: read offset for :meth:`read_new` (set by replay/append)
        self._offset = 0

    # ----- writing -------------------------------------------------------------
    def append(self, event: str, job: str | None = None, **fields) -> dict:
        """Append one stamped record; returns what was written.

        One atomic ``O_APPEND`` write; a torn tail left by a crashed
        writer is newline-terminated first so it cannot swallow this
        record.
        """
        rec = {
            "svc_schema": SERVICE_SCHEMA_VERSION,
            "t": time.time(),
            "pid": os.getpid(),
            "event": str(event),
        }
        if job is not None:
            rec["job"] = job
        rec.update(fields)
        line = json.dumps(rec, default=_jsonable) + "\n"
        with open(self.path, "ab") as fh:
            prefix = b""
            if fh.tell() > 0:
                try:
                    with open(self.path, "rb") as rd:
                        rd.seek(-1, os.SEEK_END)
                        if rd.read(1) != b"\n":
                            prefix = b"\n"
                except OSError:
                    pass
            fh.write(prefix + line.encode("utf-8"))
        return rec

    # ----- reading -------------------------------------------------------------
    def records(self) -> list[dict]:
        """All parseable records, oldest first (torn lines skipped)."""
        recs, _ = self._read_from(0)
        return recs

    def _read_from(self, offset: int) -> tuple[list[dict], int]:
        if not self.path.exists():
            return [], 0
        out = []
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            data = fh.read()
            end = offset + len(data)
        # a trailing fragment with no newline may still be mid-write:
        # leave it for the next read instead of consuming it torn
        if data and not data.endswith(b"\n"):
            cut = data.rfind(b"\n") + 1
            end = offset + cut
            data = data[:cut]
        for raw in data.split(b"\n"):
            raw = raw.strip()
            if not raw:
                continue
            try:
                out.append(json.loads(raw.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue  # torn line terminated by a later append
        return out, end

    def read_new(self) -> list[dict]:
        """Records appended since the last replay/read_new call.

        The scheduler tails its own journal with this to pick up
        ``submitted`` / ``cancel_requested`` / ``drain_requested``
        records written by other processes while it runs.
        """
        recs, self._offset = self._read_from(self._offset)
        return recs

    # ----- reconstruction -------------------------------------------------------
    def replay(self) -> ReplayState:
        """Fold the full event stream into live job state.

        Every job-bearing record goes through :meth:`Job.apply`; a
        record the state machine rejects (a partial write that parsed
        as JSON, version skew) is counted and skipped rather than
        poisoning the reconstruction.  Sets the :meth:`read_new` offset
        to the journal tail.
        """
        state = ReplayState()
        recs, self._offset = self._read_from(0)
        for rec in recs:
            state.records += 1
            if not self.apply_record(state, rec):
                state.skipped += 1
        return state

    @staticmethod
    def apply_record(state: ReplayState, rec: dict) -> bool:
        """Fold one record into ``state``; False if it had to be skipped."""
        event = rec.get("event")
        jid = rec.get("job")
        if event == "submitted":
            spec_payload = rec.get("spec")
            if not jid or not isinstance(spec_payload, dict):
                return False
            job = Job(
                id=jid,
                spec=JobSpec.from_payload(spec_payload),
                key=rec.get("key", ""),
                submitted_t=float(rec.get("t", 0.0)),
            )
            job.attached_to = rec.get("attached_to")
            if job.attached_to:
                state.counts["attached"] += 1
            state.jobs[jid] = job
            return True
        if event == "killed":
            counter = _KILL_COUNTERS.get(rec.get("reason"))
            if counter:
                state.counts[counter] += 1
            return True
        if event in JOB_EVENTS:
            job = state.jobs.get(jid)
            if job is None:
                return False
            try:
                job.apply(event, t=rec.get("t"), **{
                    k: v for k, v in rec.items()
                    if k not in ("svc_schema", "t", "pid", "event", "job")
                })
            except Exception:
                return False
            if event == "retrying":
                key = "preempts" if rec.get("reason") == "preempted" else "retries"
                state.counts[key] += 1
            elif (event == "done" and rec.get("cached_from")
                    and job.attempt == 0 and job.attached_to is None):
                state.counts["cache_hits"] += 1
            if job.terminal:
                state.pending_cancels.discard(jid)
            return True
        if event == "cancel_requested":
            job = state.jobs.get(jid)
            if job is not None and job.active:
                state.pending_cancels.add(jid)
            return True
        if event in CONTROL_EVENTS:
            return True
        return False

    def submit(self, spec: JobSpec, attached_to: str | None = None,
               job_id: str | None = None) -> Job:
        """Journal a submission and return the constructed Job."""
        now = time.time()
        jid = job_id or new_job_id(now)
        self.append(
            "submitted", job=jid, key=spec.key(),
            spec=spec.to_payload(),
            **({"attached_to": attached_to} if attached_to else {}),
        )
        job = Job(id=jid, spec=spec, submitted_t=now)
        job.attached_to = attached_to
        return job
