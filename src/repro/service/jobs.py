"""Job model: specs, the job state machine, and typed service errors.

One :class:`Job` is a single supervised execution of a pipeline stage
(:mod:`repro.pipeline.run_stage`) inside the crash-safe job service.
Its lifecycle is the §3.4.1 ``stask`` contract grown into a durable
state machine::

    queued -> admitted -> running -> done
                  |           |---> failed      (retry budget exhausted)
                  |           |---> retrying -> queued   (backoff, resume)
                  |           '---> cancelled
                  '---------------> cancelled

Every transition is validated by :meth:`Job.apply` — the journal replay
and the live scheduler go through the same method, so a reconstructed
service can never hold a state the running one could not have reached.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

__all__ = [
    "STATES",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "ServiceError",
    "QueueFull",
    "UnknownJob",
    "InvalidTransition",
    "JobSpec",
    "Job",
]

#: the canonical state set (ISSUE 9 / DESIGN.md job state machine)
STATES = ("queued", "admitted", "running", "done", "failed", "retrying", "cancelled")

TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: legal state -> successor states.  ``queued -> done`` is the dedup
#: cache-hit edge (a resubmitted identical config never runs);
#: ``running -> queued`` only appears on journal replay of a service
#: that died with the job in flight (requeue-on-restart).
TRANSITIONS = {
    "queued": {"admitted", "cancelled", "done", "failed"},
    "admitted": {"running", "queued", "cancelled"},
    "running": {"done", "failed", "retrying", "cancelled", "queued"},
    "retrying": {"queued", "failed", "cancelled"},
    "done": set(),
    "failed": set(),
    "cancelled": set(),
}


class ServiceError(RuntimeError):
    """Base class for job-service errors."""


class QueueFull(ServiceError):
    """Typed admission rejection: the submission queue is at its bound.

    Backpressure, not data loss — the submitter sees the rejection
    synchronously and can retry later; nothing is journaled.
    """

    def __init__(self, depth: int, bound: int):
        super().__init__(
            f"queue bound reached ({depth}/{bound} active jobs); resubmit later"
        )
        self.depth = depth
        self.bound = bound


class UnknownJob(ServiceError, LookupError):
    """No job matches the given id/name reference."""


class InvalidTransition(ServiceError):
    """An event would move a job along an edge the state machine lacks."""

    def __init__(self, job_id: str, state: str, target: str, event: str):
        super().__init__(
            f"job {job_id}: illegal transition {state!r} -> {target!r} "
            f"(event {event!r})"
        )


@dataclass
class JobSpec:
    """What to run and under which safety envelope.

    The stage ``config`` payload is stored *inline* (not as a path):
    the journal record of a submission is self-contained, so a service
    restarted on a clean process can relaunch every job without any
    file the crashed service had open.
    """

    #: the pipeline stage config payload (``repro.pipeline.run_stage``)
    config: dict = field(default_factory=dict)
    #: display name; defaults to ``<stage>-<key prefix>``
    name: str = ""
    #: fairness bucket: admission round-robins across submitters
    submitter: str = "local"
    #: directory stage paths resolve against (None = the private job dir)
    workdir: str | None = None
    #: force-solve worker processes inside the job (0 = serial)
    workers: int = 0
    #: admission weight against the service core budget
    cores: int = 1
    #: per-attempt wall-clock cap in seconds (0 = none)
    timeout_s: float = 0.0
    #: kill the attempt when its event stream stalls this long (0 = off)
    heartbeat_timeout_s: float = 0.0
    #: failure-driven retries allowed before the job fails for good
    max_retries: int = 2
    #: durable checkpoint cadence in steps (0 = no checkpoints)
    checkpoint_every: int = 1
    #: participate in dedup/result caching (keyed by the config hash)
    cache: bool = True

    def key(self) -> str:
        """Provenance dedup key: the PR 3 sha256 of the stage config.

        Only the physics payload enters the key — operational knobs
        (workers, timeouts, retry budgets) cannot change the result
        (bit-identical execution is the repo's core invariant), so two
        submissions differing only in those dedup together.
        """
        from ..diagnose.manifest import config_hash

        return config_hash(self.config)

    def display_name(self) -> str:
        if self.name:
            return self.name
        stage = str(self.config.get("stage", "job"))
        return f"{stage}-{self.key()[:8]}"

    def to_payload(self) -> dict:
        """JSON-ready form for the journal's ``submitted`` record."""
        return {
            "config": self.config,
            "name": self.name,
            "submitter": self.submitter,
            "workdir": self.workdir,
            "workers": self.workers,
            "cores": self.cores,
            "timeout_s": self.timeout_s,
            "heartbeat_timeout_s": self.heartbeat_timeout_s,
            "max_retries": self.max_retries,
            "checkpoint_every": self.checkpoint_every,
            "cache": self.cache,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        kw = {f: payload[f] for f in cls.__dataclass_fields__ if f in payload}
        return cls(**kw)


def new_job_id(now: float | None = None) -> str:
    """Time-sortable unique job id (same shape as registry record ids)."""
    import secrets

    now = time.time() if now is None else now
    return f"{int(now * 1000):013d}-{secrets.token_hex(3)}"


@dataclass
class Job:
    """One tracked job: spec + live state + timing/attempt bookkeeping."""

    id: str
    spec: JobSpec
    key: str = ""
    state: str = "queued"
    #: attempts launched so far (1 after the first ``started``)
    attempt: int = 0
    #: failure-driven retries consumed (preemptions are free)
    retries: int = 0
    #: preemption round-trips survived (SIGTERM drain / exit 75)
    preempts: int = 0
    submitted_t: float = 0.0
    started_t: float | None = None  # first attempt start
    finished_t: float | None = None
    #: wall-clock gate the next launch must wait for (retry backoff)
    not_before: float = 0.0
    #: relaunch with ``--resume`` (newest valid checkpoint)
    resume_next: bool = False
    result: dict | None = None
    error: str | None = None
    #: id of the finished job whose cached result satisfied this one
    cached_from: str | None = None
    #: id of the in-flight job this duplicate submission rides on
    attached_to: str | None = None

    def __post_init__(self):
        if not self.key:
            self.key = self.spec.key()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def active(self) -> bool:
        return not self.terminal

    @property
    def name(self) -> str:
        return self.spec.display_name()

    # ----- the state machine ---------------------------------------------------
    _EVENT_TARGET = {
        "admitted": "admitted",
        "started": "running",
        "done": "done",
        "failed": "failed",
        "retrying": "retrying",
        "requeued": "queued",
        "cancelled": "cancelled",
    }

    def apply(self, event: str, t: float | None = None, **fields) -> None:
        """Apply one journaled event; raises :class:`InvalidTransition`.

        The same method serves the live scheduler and journal replay —
        whatever the journal says happened must be a walk of
        :data:`TRANSITIONS`.
        """
        t = time.time() if t is None else float(t)
        target = self._EVENT_TARGET.get(event)
        if target is None:
            raise InvalidTransition(self.id, self.state, "?", event)
        if target not in TRANSITIONS[self.state]:
            raise InvalidTransition(self.id, self.state, target, event)
        if event == "started":
            self.attempt = int(fields.get("attempt", self.attempt + 1))
            if self.started_t is None:
                self.started_t = t
        elif event == "done":
            self.result = fields.get("result")
            self.cached_from = fields.get("cached_from")
            self.finished_t = t
        elif event == "failed":
            self.error = fields.get("error")
            self.finished_t = t
        elif event == "retrying":
            reason = fields.get("reason", "")
            self.error = fields.get("error")
            if reason == "preempted":
                self.preempts += 1
            else:
                self.retries = int(fields.get("retries", self.retries + 1))
            self.not_before = float(fields.get("not_before", t))
            self.resume_next = bool(fields.get("resume", True))
        elif event == "requeued":
            if fields.get("resume"):
                self.resume_next = True
            if "not_before" in fields:
                self.not_before = float(fields["not_before"])
        elif event == "cancelled":
            self.error = fields.get("error", self.error)
            self.finished_t = t
        self.state = target

    # ----- presentation ---------------------------------------------------------
    def row(self, now: float | None = None) -> dict:
        """Flat status row for CLI tables and the journal's stop record."""
        now = time.time() if now is None else now
        if not self.submitted_t or (self.started_t is None and self.terminal):
            waited = 0.0  # never ran (cache hit / cancelled while queued)
        else:
            waited = (self.started_t or now) - self.submitted_t
        ran = None
        if self.started_t is not None:
            ran = (self.finished_t or now) - self.started_t
        return {
            "id": self.id,
            "name": self.name,
            "submitter": self.spec.submitter,
            "state": self.state,
            "attempt": self.attempt,
            "retries": self.retries,
            "preempts": self.preempts,
            "queue_wait_s": round(max(waited, 0.0), 3),
            "run_s": round(ran, 3) if ran is not None else None,
            "key": self.key[:12],
            "cached_from": self.cached_from,
            "attached_to": self.attached_to,
            "error": self.error,
        }


def deterministic_jitter(job_id: str, attempt: int) -> float:
    """A stable value in [0, 1) derived from (job, attempt).

    Retry backoff needs jitter so a burst of jobs killed together does
    not relaunch in lockstep — but the service must stay deterministic
    under test, so the jitter comes from a hash, not a clock or RNG.
    """
    h = hashlib.sha256(f"{job_id}:{attempt}".encode()).digest()
    return int.from_bytes(h[:4], "big") / 2**32
