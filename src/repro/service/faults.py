"""Deterministic job-level fault injection for the service test harness.

The resilience layer's ``REPRO_FAULTS`` (:mod:`repro.resilience.faults`)
injects faults *inside* one run — worker kills, checkpoint corruption.
The service needs one level up: kill a whole job mid-run, make a job
hang, corrupt a specific job's checkpoints — each exactly once, so a
test (or the CI ``service-smoke`` job) can assert the recovery path
converges to bit-identical results.

``REPRO_SERVICE_FAULTS`` is a semicolon-separated clause list,
``action:key=value,...``, matched against a job's *name* and only on
its first attempt — a recovery relaunch is never re-faulted, mirroring
the attempt-0 rule of the worker-level plan.

Supported actions
-----------------
``kill``
    SIGKILL the job's subprocess once ``events=`` step events have
    appeared on its JSONL stream (``job=`` name selector; the crash is
    indistinguishable from a real one, which is the point).
``hang``
    Replace attempt 0's command with a sleeper that emits no events —
    exercises heartbeat hang detection end to end.
``corrupt``
    Pass ``REPRO_FAULTS="corrupt:index=...,byte=...,xor=..."`` into
    attempt 0's environment, corrupting that job's ``index``-th
    checkpoint write — exercises newest-valid fallback under resume.

Example::

    REPRO_SERVICE_FAULTS="kill:job=sweep0,events=2;corrupt:job=sweep0,index=1"
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["ServiceFaultClause", "ServiceFaultPlan", "SERVICE_FAULTS_ENV"]

SERVICE_FAULTS_ENV = "REPRO_SERVICE_FAULTS"

_ACTIONS = {"kill", "hang", "corrupt"}
_INT_KEYS = {"events", "index", "byte", "xor", "times"}
_FLOAT_KEYS = {"after_s"}
_STR_KEYS = {"job"}


@dataclass
class ServiceFaultClause:
    """One parsed clause: an action plus its job selector."""

    action: str  # kill | hang | corrupt
    job: str | None = None  # job *name* match (None = any job)
    events: int = 1  # kill: fire after this many stream events
    after_s: float = 0.0  # kill: alternatively fire after S run seconds
    index: int = 0  # corrupt: which checkpoint write of the job
    byte: int = 0  # corrupt: byte offset
    xor: int = 0xFF  # corrupt: flip mask
    times: int = 1
    fired: int = field(default=0, compare=False)

    def matches(self, name: str, attempt: int) -> bool:
        if self.fired >= self.times or attempt != 0:
            return False
        return self.job is None or self.job == name


class ServiceFaultPlan:
    """A deterministic set of job-level faults (possibly empty)."""

    def __init__(self, clauses: list[ServiceFaultClause] | None = None,
                 spec: str = ""):
        self.clauses = clauses or []
        self.spec = spec

    def __bool__(self) -> bool:
        return bool(self.clauses)

    @classmethod
    def parse(cls, spec: str | None) -> "ServiceFaultPlan":
        spec = (spec or "").strip()
        clauses = []
        for chunk in filter(None, (c.strip() for c in spec.split(";"))):
            action, _, rest = chunk.partition(":")
            action = action.strip()
            if action not in _ACTIONS:
                raise ValueError(
                    f"unknown service fault action {action!r} in {chunk!r}"
                )
            kw = {}
            for pair in filter(None, (p.strip() for p in rest.split(","))):
                key, _, val = pair.partition("=")
                key = key.strip()
                if key in _INT_KEYS:
                    kw[key] = int(val, 0)
                elif key in _FLOAT_KEYS:
                    kw[key] = float(val)
                elif key in _STR_KEYS:
                    kw[key] = val.strip()
                else:
                    raise ValueError(
                        f"unknown service fault key {key!r} in {chunk!r}"
                    )
            clauses.append(ServiceFaultClause(action=action, **kw))
        return cls(clauses, spec=spec)

    @classmethod
    def from_env(cls, environ=None) -> "ServiceFaultPlan":
        return cls.parse((environ or os.environ).get(SERVICE_FAULTS_ENV))

    # ----- scheduler-side hooks -------------------------------------------------
    def hang_clause(self, name: str, attempt: int) -> ServiceFaultClause | None:
        """The hang clause to apply at launch, if any (marks it fired)."""
        for cl in self.clauses:
            if cl.action == "hang" and cl.matches(name, attempt):
                cl.fired += 1
                return cl
        return None

    def corrupt_env(self, name: str, attempt: int) -> str | None:
        """The child ``REPRO_FAULTS`` value for a matching corrupt clause."""
        for cl in self.clauses:
            if cl.action == "corrupt" and cl.matches(name, attempt):
                cl.fired += 1
                return f"corrupt:index={cl.index},byte={cl.byte},xor={cl.xor}"
        return None

    def kill_clause(self, name: str, attempt: int) -> ServiceFaultClause | None:
        """The armed kill clause for this attempt (NOT marked fired —
        the supervisor fires it when the event/time threshold passes)."""
        for cl in self.clauses:
            if cl.action == "kill" and cl.matches(name, attempt):
                return cl
        return None
