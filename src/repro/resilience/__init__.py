"""Fault tolerance: durable checkpoints, scheduling, fault injection.

The layer that lets a run survive the paper's "hardware failure about
every million CPU hours" (§3.4.2): checkpoints are written atomically
with per-column checksums and full restart metadata
(:class:`CheckpointStore`), on a schedule derived from the Young/Daly
optimum or fixed policies (:class:`CheckpointScheduler`), and every
recovery path is provable under deterministic fault injection
(:class:`FaultPlan`, ``REPRO_FAULTS``).  The self-healing worker-pool
counterpart lives in :class:`repro.parallel.executor.ForceExecutor`;
`Simulation.resume` (:mod:`repro.simulation.driver`) restarts
bit-identically from what this package writes.
"""

from .checkpoint import CheckpointStore, NoValidCheckpoint
from .faults import FaultClause, FaultInjected, FaultPlan
from .scheduler import CheckpointScheduler

__all__ = [
    "CheckpointScheduler",
    "CheckpointStore",
    "FaultClause",
    "FaultInjected",
    "FaultPlan",
    "NoValidCheckpoint",
]
