"""Deterministic fault injection — the test harness for the resilience layer.

A :class:`FaultPlan` is a parsed ``REPRO_FAULTS`` specification: a
semicolon-separated list of clauses, each ``action:key=value,...``.
The plan is *deterministic* — a clause fires when its selectors match
the (worker, shard, epoch) coordinates of an execution, at most
``times`` times — so a test can kill exactly worker 1 at shard 2 of
force call 3 and assert the recovery path byte for byte.

Supported actions
-----------------
``kill``
    ``os._exit`` the worker process that picks up the matching shard
    (selectors: ``worker=``, ``shard=``, ``epoch=``, ``times=``).
``raise``
    Raise a transient :class:`FaultInjected` inside the worker for the
    matching shard (same selectors) — exercises the bounded-retry path.
``delay``
    Sleep ``seconds=`` before running the matching shard — exercises
    the shard-timeout / pool-restart path.
``corrupt``
    Flip one byte (``byte=`` offset, ``xor=`` mask, default 0xFF) of
    the ``index=``-th checkpoint written by a
    :class:`~repro.resilience.checkpoint.CheckpointStore` — exercises
    checksum detection and newest-valid restore.

Faults only fire on a shard's *first* dispatch (``attempt == 0``), so
a recovery re-dispatch of the same shard is never re-killed — exactly
one injected failure per clause occurrence, whatever the retry path.

Example::

    REPRO_FAULTS="kill:worker=0,shard=1;corrupt:index=2,byte=100"
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

__all__ = ["FaultInjected", "FaultClause", "FaultPlan"]

FAULTS_ENV = "REPRO_FAULTS"


class FaultInjected(RuntimeError):
    """The transient exception raised by a ``raise`` clause."""


@dataclass
class FaultClause:
    """One parsed clause: an action plus its match selectors."""

    action: str  # kill | raise | delay | corrupt
    worker: int | None = None
    shard: int | None = None
    epoch: int | None = None
    index: int | None = None  # corrupt: which checkpoint write
    byte: int = 0  # corrupt: byte offset
    xor: int = 0xFF  # corrupt: flip mask
    seconds: float = 0.0  # delay
    times: int = 1
    fired: int = field(default=0, compare=False)

    def matches(self, worker=None, shard=None, epoch=None, index=None) -> bool:
        if self.fired >= self.times:
            return False
        for want, got in (
            (self.worker, worker),
            (self.shard, shard),
            (self.epoch, epoch),
            (self.index, index),
        ):
            if want is not None and want != got:
                return False
        return True


_INT_KEYS = {"worker", "shard", "epoch", "index", "byte", "xor", "times"}
_FLOAT_KEYS = {"seconds"}
_ACTIONS = {"kill", "raise", "delay", "corrupt"}


class FaultPlan:
    """A deterministic set of injected faults (possibly empty)."""

    def __init__(self, clauses: list[FaultClause] | None = None, spec: str = ""):
        self.clauses = clauses or []
        self.spec = spec
        self._checkpoint_writes = 0

    def __bool__(self) -> bool:
        return bool(self.clauses)

    @classmethod
    def parse(cls, spec: str | None) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` string; empty/None -> empty plan."""
        spec = (spec or "").strip()
        clauses = []
        for chunk in filter(None, (c.strip() for c in spec.split(";"))):
            action, _, rest = chunk.partition(":")
            action = action.strip()
            if action not in _ACTIONS:
                raise ValueError(f"unknown fault action {action!r} in {chunk!r}")
            kw = {}
            for pair in filter(None, (p.strip() for p in rest.split(","))):
                key, _, val = pair.partition("=")
                key = key.strip()
                if key in _INT_KEYS:
                    kw[key] = int(val, 0)
                elif key in _FLOAT_KEYS:
                    kw[key] = float(val)
                else:
                    raise ValueError(f"unknown fault key {key!r} in {chunk!r}")
            clauses.append(FaultClause(action=action, **kw))
        return cls(clauses, spec=spec)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        return cls.parse((environ or os.environ).get(FAULTS_ENV))

    # ----- worker-side hooks ----------------------------------------------------
    def apply_worker(self, worker: int, shard: int, epoch: int, attempt: int = 0):
        """Fire any matching kill/raise/delay clause for this execution.

        Called by the executor's worker loop before running a shard;
        re-dispatches (``attempt > 0``) never re-fire.
        """
        if attempt > 0:
            return
        for cl in self.clauses:
            if not cl.matches(worker=worker, shard=shard, epoch=epoch):
                continue
            if cl.action == "delay":
                cl.fired += 1
                time.sleep(cl.seconds)
            elif cl.action == "raise":
                cl.fired += 1
                raise FaultInjected(
                    f"injected transient fault (worker {worker}, shard {shard})"
                )
            elif cl.action == "kill":
                cl.fired += 1
                os._exit(17)

    # ----- checkpoint-side hook -------------------------------------------------
    def corrupt_checkpoint(self, path) -> bool:
        """Flip the configured byte of this checkpoint write, if matched.

        Counts writes internally so ``index=n`` selects the n-th (0-based)
        checkpoint written through this plan.  Returns True if the file
        was corrupted.
        """
        index = self._checkpoint_writes
        self._checkpoint_writes += 1
        hit = False
        for cl in self.clauses:
            if cl.action != "corrupt" or not cl.matches(index=index):
                continue
            cl.fired += 1
            with open(path, "r+b") as f:
                f.seek(0, os.SEEK_END)
                size = f.tell()
                off = min(cl.byte, max(size - 1, 0))
                f.seek(off)
                b = f.read(1)
                f.seek(off)
                f.write(bytes([b[0] ^ (cl.xor & 0xFF)]))
            hit = True
        return hit
