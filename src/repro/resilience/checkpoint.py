"""Durable checkpoint store: rotation, newest-valid restore, restart state.

One directory holds a rotating window of checkpoints
(``ckpt_<step>.sdf``), each written atomically with per-column
checksums and full restart metadata (see :mod:`repro.io.checkpoint`).
Restore walks newest -> oldest and returns the first file that loads
cleanly — a checkpoint corrupted by the failure that killed the run
(or by a :class:`~repro.resilience.faults.FaultPlan` in tests) is
skipped, not fatal, exactly the degradation a production run wants.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

from ..io.checkpoint import load_checkpoint, save_checkpoint
from .faults import FaultPlan

__all__ = ["CheckpointStore", "NoValidCheckpoint"]


class NoValidCheckpoint(RuntimeError):
    """No checkpoint in the store survived validation."""


class CheckpointStore:
    """Keep-last-N rotating checkpoint directory with validated restore.

    Parameters
    ----------
    directory:
        Where checkpoints live; created on first save.
    keep:
        Rotation width — after each save, only the newest ``keep``
        checkpoints remain (the paper checkpoints every ~4 h of an
        80 h-MTBF run; keeping a short window bounds disk while still
        surviving a corrupted newest file).
    prefix:
        Filename prefix (``<prefix>_<step>.sdf``).
    faults:
        Optional :class:`FaultPlan` whose ``corrupt`` clauses are
        applied to matching writes (deterministic test injection);
        defaults to the ``REPRO_FAULTS`` environment.
    """

    def __init__(self, directory, keep: int = 3, prefix: str = "ckpt",
                 faults: FaultPlan | str | None = None):
        self.directory = Path(directory)
        self.keep = int(keep)
        self.prefix = prefix
        if faults is None:
            faults = FaultPlan.from_env()
        elif isinstance(faults, str):
            faults = FaultPlan.parse(faults)
        self.faults = faults
        self._pattern = re.compile(rf"^{re.escape(prefix)}_(\d+)\.sdf$")

    def path_for(self, step: int) -> Path:
        return self.directory / f"{self.prefix}_{int(step):06d}.sdf"

    def list(self) -> list[Path]:
        """All checkpoints in the store, oldest first (by step number)."""
        if not self.directory.is_dir():
            return []
        found = []
        for name in os.listdir(self.directory):
            m = self._pattern.match(name)
            if m:
                found.append((int(m.group(1)), self.directory / name))
        return [p for _, p in sorted(found)]

    # ----- writing ----------------------------------------------------------------
    def save(self, step: int, particles, **save_kw) -> Path:
        """Write checkpoint ``step`` durably, inject faults, rotate."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(step)
        save_checkpoint(path, particles, durable=True, **save_kw)
        if self.faults:
            self.faults.corrupt_checkpoint(path)
        self.prune()
        return path

    def prune(self) -> list[Path]:
        """Drop all but the newest ``keep`` checkpoints; returns removed."""
        existing = self.list()
        removed = []
        if self.keep > 0 and len(existing) > self.keep:
            for path in existing[:-self.keep]:
                try:
                    path.unlink()
                    removed.append(path)
                except OSError:
                    pass
        return removed

    # ----- restoring --------------------------------------------------------------
    def latest_valid(self, expect_config=None):
        """Newest checkpoint that loads cleanly: ``(path, particles, md)``.

        Checksum failures, truncation and parse errors skip to the next
        older file (recorded in ``self.skipped``); a config mismatch
        against ``expect_config`` is *not* skipped — that is a caller
        error, not file corruption — and propagates.

        Raises :class:`NoValidCheckpoint` if nothing survives.
        """
        from ..io.checkpoint import CheckpointConfigMismatch

        self.skipped: list[tuple[Path, str]] = []
        for path in reversed(self.list()):
            try:
                ps, md = load_checkpoint(path, expect_config=expect_config)
            except CheckpointConfigMismatch:
                raise
            except Exception as exc:
                self.skipped.append((path, f"{type(exc).__name__}: {exc}"))
                continue
            return path, ps, md
        raise NoValidCheckpoint(
            f"no valid checkpoint under {self.directory} "
            f"(skipped {len(self.skipped)}: "
            f"{[str(p.name) for p, _ in self.skipped]})"
        )
