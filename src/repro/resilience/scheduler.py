"""When to checkpoint: fixed step/wall policies and the Young/Daly optimum.

The paper's §3.4.2 arithmetic — one failure per ~80 wallclock hours,
~6 minutes per write, checkpoint every ~4 hours — is the Young/Daly
first-order optimum implemented analytically in
:func:`repro.perfmodel.checkpoint.optimal_interval`.  This scheduler
turns that model into a live policy: configure the MTBF, *measure* the
write cost from the first checkpoint actually written, and space the
rest ``sqrt(2 * write * MTBF)`` apart.  Fixed-interval policies
(every N steps / every S seconds) are available for tests and short
runs where the optimum degenerates.
"""

from __future__ import annotations

import math

from ..perfmodel.checkpoint import optimal_interval

__all__ = ["CheckpointScheduler"]


class CheckpointScheduler:
    """Decides, step by step, whether a checkpoint is due.

    Policies compose with OR — a checkpoint is written when *any*
    enabled criterion fires:

    * ``every_steps > 0`` — every N completed steps;
    * ``interval_s > 0`` — when that much wall clock has elapsed since
      the last write;
    * ``mtbf_h > 0`` — Young/Daly: the first checkpoint is written
      immediately (it doubles as the write-cost measurement), then the
      wall interval is re-derived from the measured cost via
      ``optimal_interval``.

    The driver calls :meth:`start` once, :meth:`due` after each step,
    and :meth:`wrote` after each write (with the measured seconds).
    """

    def __init__(
        self,
        every_steps: int = 0,
        interval_s: float = 0.0,
        mtbf_h: float = 0.0,
        min_interval_s: float = 1.0,
    ):
        self.every_steps = int(every_steps)
        self.interval_s = float(interval_s)
        self.mtbf_h = float(mtbf_h)
        self.min_interval_s = float(min_interval_s)
        self.write_s: float | None = None
        self.daly_interval_s: float | None = None
        self.n_written = 0
        self._t_start: float | None = None
        self._t_last_write: float | None = None
        self._last_write_step = 0

    @property
    def enabled(self) -> bool:
        return self.every_steps > 0 or self.interval_s > 0 or self.mtbf_h > 0

    def start(self, now: float) -> None:
        """Anchor the wall clock at the start of the run (or resume)."""
        self._t_start = now
        self._t_last_write = now

    def due(self, step: int, now: float) -> bool:
        """Should a checkpoint be written after completed step ``step``?"""
        if not self.enabled:
            return False
        if self._t_last_write is None:
            self.start(now)
        if self.every_steps > 0 and (step - self._last_write_step) >= self.every_steps:
            return True
        elapsed = now - self._t_last_write
        if self.interval_s > 0 and elapsed >= self.interval_s:
            return True
        if self.mtbf_h > 0:
            if self.write_s is None:
                # bootstrap: first write measures the cost the optimum needs
                return True
            if elapsed >= self.daly_interval_s:
                return True
        return False

    def wrote(self, step: int, now: float, write_s: float) -> None:
        """Record a completed write; re-derives the Young/Daly spacing."""
        self.n_written += 1
        self._last_write_step = step
        self._t_last_write = now
        # running average keeps the interval honest as file size grows
        if self.write_s is None:
            self.write_s = float(write_s)
        else:
            self.write_s += (float(write_s) - self.write_s) / self.n_written
        if self.mtbf_h > 0:
            tau_h = optimal_interval(self.write_s / 3600.0, self.mtbf_h)
            self.daly_interval_s = max(tau_h * 3600.0, self.min_interval_s)

    def describe(self) -> dict:
        """JSON-ready policy summary (lands in checkpoint events)."""
        d = {
            "every_steps": self.every_steps,
            "interval_s": self.interval_s,
            "mtbf_h": self.mtbf_h,
            "n_written": self.n_written,
        }
        if self.write_s is not None:
            d["write_s"] = self.write_s
        if self.daly_interval_s is not None and math.isfinite(self.daly_interval_s):
            d["daly_interval_s"] = self.daly_interval_s
        return d
