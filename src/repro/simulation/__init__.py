"""Cosmological simulation: ICs, symplectic integration, driver."""

from .driver import Preempted, Simulation, SimulationConfig
from .ic import ICConfig, gaussian_field, generate_ic
from .integrator import LeapfrogIntegrator, StepController
from .lightcone import LightConeRecorder
from .particles import ParticleSet

__all__ = [
    "ICConfig",
    "LeapfrogIntegrator",
    "LightConeRecorder",
    "ParticleSet",
    "Preempted",
    "Simulation",
    "SimulationConfig",
    "StepController",
    "gaussian_field",
    "generate_ic",
]
