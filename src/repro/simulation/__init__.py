"""Cosmological simulation: ICs, symplectic integration, driver."""

from .driver import Simulation, SimulationConfig
from .ic import ICConfig, gaussian_field, generate_ic
from .integrator import LeapfrogIntegrator, StepController
from .lightcone import LightConeRecorder
from .particles import ParticleSet

__all__ = [
    "ICConfig",
    "LeapfrogIntegrator",
    "LightConeRecorder",
    "ParticleSet",
    "Simulation",
    "SimulationConfig",
    "StepController",
    "gaussian_field",
    "generate_ic",
]
