"""Initial conditions: Zel'dovich and 2LPT realisations (paper §3.4.4).

Replaces the modified 2LPTIC (Crocce, Pueblas & Scoccimarro 2006) the
paper uses.  A Gaussian random realisation of the linear power
spectrum is built on the particle grid, converted to first-order
(Zel'dovich) and optionally second-order displacement fields with
FFTs, and applied to a uniform Lagrangian lattice with the growth
factors and rates of the target cosmology.

Every switch Figure 7 ablates is implemented:

* ``use_2lpt``      — 2LPT vs plain Zel'dovich ("no 2LPTIC" curve: the
  paper finds >2% less power at k = 1 h/Mpc without 2LPT),
* ``dec``           — discreteness-error correction, "of the same form
  as a cloud-in-cell deconvolution": divides the mode amplitudes by
  the aliased particle-lattice window,
* ``sphere_mode``   — zero modes outside the Nyquist sphere (2LPTIC's
  SphereMode), instead of keeping the full Fourier cube,
* the §6 systematic: "improper growth of modes near the Nyquist
  frequency, due to the discrete representation of the continuous
  Fourier modes" — the thing DEC corrects and convergence tests must
  control for.

Conventions: box is mapped to [0,1)^3 code units; P(k) is evaluated in
(Mpc/h)^3 at z=0 and scaled back with the ODE growth factor, momenta
are canonical (a^2 dx/dt, t in 1/H0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cosmology import (
    CosmologyParams,
    GrowthCalculator,
    LinearPower,
    code_particle_mass,
)
from .particles import ParticleSet

__all__ = ["ICConfig", "generate_ic", "gaussian_field"]


@dataclass
class ICConfig:
    """Initial-condition generation parameters."""

    n_per_dim: int = 32
    box_mpc_h: float = 100.0
    a_init: float = 0.02  # z = 49, the paper's fiducial start
    seed: int = 1234
    use_2lpt: bool = True
    dec: bool = False
    sphere_mode: bool = False
    transfer: str = "eh"


def _kgrids(n: int, box: float):
    kx = np.fft.fftfreq(n, d=box / n) * 2.0 * np.pi
    kz = np.fft.rfftfreq(n, d=box / n) * 2.0 * np.pi
    KX = kx[:, None, None]
    KY = kx[None, :, None]
    KZ = kz[None, None, :]
    K2 = KX**2 + KY**2 + KZ**2
    return KX, KY, KZ, K2


def gaussian_field(power: LinearPower, cfg: ICConfig, rng: np.random.Generator):
    """Hermitian Fourier modes delta(k) of a Gaussian realisation.

    Built by transforming white noise, which enforces the reality
    condition automatically and makes the *phases* independent of every
    ablation switch — so Fig. 7-style ratio comparisons between runs
    sharing a seed cancel the sample variance.
    """
    n = cfg.n_per_dim
    box = cfg.box_mpc_h
    white = rng.standard_normal((n, n, n))
    wk = np.fft.rfftn(white)
    KX, KY, KZ, K2 = _kgrids(n, box)
    k = np.sqrt(K2)
    k[0, 0, 0] = 1.0
    pk = power.power(k.ravel()).reshape(k.shape)
    pk[0, 0, 0] = 0.0
    # white noise has <|w_k|^2> = n^3; delta_k needs <|d_k|^2> = P(k) n^6/V
    amp = np.sqrt(pk * n**3 / box**3)
    dk = wk * amp
    if cfg.dec:
        # deconvolve the particle-lattice (CIC-form) assignment window so
        # near-Nyquist modes start with the right amplitude
        def sinc(kk):
            return np.sinc(kk * box / (2.0 * np.pi * n))

        w = (sinc(KX) * sinc(KY) * sinc(KZ)) ** 2
        dk = dk / w
    if cfg.sphere_mode:
        knyq = np.pi * n / box
        dk = np.where(K2 <= knyq**2, dk, 0.0)
    return dk


def generate_ic(
    params: CosmologyParams,
    cfg: ICConfig,
) -> ParticleSet:
    """Generate a particle realisation at ``cfg.a_init``.

    Returns a :class:`ParticleSet` in code units on the unit box with
    synchronised positions and momenta (a = a_mom; the integrator
    introduces the leapfrog offset itself).
    """
    n = cfg.n_per_dim
    box = cfg.box_mpc_h
    power = LinearPower(params, kind=cfg.transfer)
    growth = GrowthCalculator(params)
    rng = np.random.default_rng(cfg.seed)
    dk = gaussian_field(power, cfg, rng)

    KX, KY, KZ, K2 = _kgrids(n, box)
    K2s = K2.copy()
    K2s[0, 0, 0] = 1.0

    # first-order displacement field psi = -grad(phi1), phi1_k = -d_k/k^2
    psi = np.empty((n, n, n, 3))
    for ax, K in enumerate((KX, KY, KZ)):
        psik = 1j * K / K2s * dk
        psik[0, 0, 0] = 0.0
        psi[..., ax] = np.fft.irfftn(psik, s=(n, n, n), axes=(0, 1, 2))

    psi2 = None
    if cfg.use_2lpt:
        # second-order source: sum_{i<j} [phi,ii phi,jj - phi,ij^2]
        phik = -dk / K2s
        phik[0, 0, 0] = 0.0
        ks = (KX, KY, KZ)
        d2 = {}
        for i in range(3):
            for j in range(i, 3):
                fij = np.fft.irfftn(
                    -ks[i] * ks[j] * phik, s=(n, n, n), axes=(0, 1, 2)
                )
                d2[(i, j)] = fij
        src = (
            d2[(0, 0)] * d2[(1, 1)]
            - d2[(0, 1)] ** 2
            + d2[(0, 0)] * d2[(2, 2)]
            - d2[(0, 2)] ** 2
            + d2[(1, 1)] * d2[(2, 2)]
            - d2[(1, 2)] ** 2
        )
        srck = np.fft.rfftn(src)
        psi2 = np.empty((n, n, n, 3))
        for ax, K in enumerate(ks):
            p2k = 1j * K / K2s * srck
            p2k[0, 0, 0] = 0.0
            psi2[..., ax] = np.fft.irfftn(p2k, s=(n, n, n), axes=(0, 1, 2))

    # growth factors at the starting epoch (P(k) is normalised at z=0)
    a = cfg.a_init
    d1 = float(growth.growth_ode(a))  # normalised D(a=1)=1
    f1 = float(growth.growth_rate(a))
    from ..cosmology import Background

    e_a = float(Background(params).efunc(a))

    # 2LPT factors (Bouchet et al. 1995 conventions)
    d2fac = float(growth.growth_2lpt(a) / growth.growth_ode(a, normalize=False) ** 2)
    # growth_2lpt returns -3/7 D1_raw^2 Om^-1/143; express relative to the
    # normalised D1: D2_norm = d2fac * d1^2 (dimensionless, ~ -3/7 d1^2)
    d2_norm = d2fac * d1 * d1
    om_a = float(Background(params).omega_m_a(a))
    f2 = 2.0 * om_a ** (6.0 / 11.0)

    # Lagrangian lattice
    q = (np.arange(n) + 0.5) / n
    qx, qy, qz = np.meshgrid(q, q, q, indexing="ij")
    lattice = np.stack([qx.ravel(), qy.ravel(), qz.ravel()], axis=1)

    psi_flat = psi.reshape(-1, 3) / box  # displacements in box units
    pos = lattice + d1 * psi_flat
    vel = d1 * f1 * psi_flat  # dx/dlna
    if psi2 is not None:
        psi2_flat = psi2.reshape(-1, 3) / box
        pos = pos + d2_norm * psi2_flat
        vel = vel + d2_norm * f2 * psi2_flat
    pos = np.mod(pos, 1.0)
    # canonical momentum p = a^2 dx/dt = a^2 * (dx/dlna) * H = a E(a) * a * ...
    # dx/dt = (dx/dlna) * dlna/dt = vel * H(a) = vel * E(a) (1/H0 units)
    mom = vel * e_a * a * a

    npart = n**3
    mass = np.full(npart, code_particle_mass(params, npart))
    return ParticleSet(
        pos=pos,
        mom=mom,
        mass=mass,
        ids=np.arange(npart, dtype=np.int64),
        a=a,
        a_mom=a,
    )
