"""Symplectic comoving leapfrog (paper §2.3).

Implements the Quinn et al. (1997) kick-drift-kick scheme that 2HOT
"fully adopted" after the logarithmic-timestep leapfrog of Efstathiou
et al. (1985) proved inadequate:

* drift:  x += p * ∫ da / (a^3 E)     (exact free motion in canonical vars)
* kick:   p += g(x) * ∫ da / (a^2 E)  (g: background-subtracted comoving acc)

Two of the paper's specific refinements are reproduced:

* **Timestep changes restricted to exact factors of two** — every step
  uses d(ln a) = dlna_max / 2^k; "occasional larger adjustments rather
  than continuous small adjustment ... appears to provide slightly
  better convergence" than GADGET-2's incremental changes.  A change
  of timestep breaks symplecticity, so the factor-of-two ladder
  changes it as rarely as possible.
* **Checkpoint-preserving leapfrog offset** — the stepper operates on
  a :class:`~repro.simulation.particles.ParticleSet` whose positions
  and momenta carry separate epochs (a, a_mom); restarting from a
  half-stepped state keeps 2nd-order accuracy instead of re-priming
  with a 1st-order initial half kick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..cosmology import CosmologyParams, DriftKickIntegrals
from .particles import ParticleSet

__all__ = ["StepController", "LeapfrogIntegrator"]


@dataclass
class StepController:
    """Chooses d(ln a) from accuracy criteria, quantized to 2^-k.

    The base step is ``dlna_max``; it is divided by the smallest power
    of two such that both criteria pass:

    * acceleration criterion: dt^2 * max|dp/dt|/a_typ <= eta_acc * eps
      (a displacement-per-step limit against the softening length),
    * velocity criterion:     dt * max|v| <= eta_vel * box fraction.
    """

    dlna_max: float = 0.125
    eta_acc: float = 0.5
    eta_vel: float = 0.05
    eps: float = 0.01
    #: cap on factor-of-two refinements; with global timesteps an
    #: unbounded criterion would let a single collapsed halo core drive
    #: the whole box to micro-steps (production codes use per-particle
    #: step hierarchies for this; see DESIGN.md)
    max_refine: int = 4

    def choose(
        self,
        params: CosmologyParams,
        ps: ParticleSet,
        acc: np.ndarray,
        a: float,
    ) -> float:
        dk = DriftKickIntegrals(params)
        for k in range(self.max_refine + 1):
            dlna = self.dlna_max / (1 << k)
            a1 = a * np.exp(dlna)
            drift = dk.drift_factor(a, a1)
            kick = dk.kick_factor(a, a1)
            vmax = float(np.sqrt((ps.mom**2).sum(axis=1)).max())
            amax = float(np.sqrt((acc**2).sum(axis=1)).max())
            dx_vel = vmax * drift
            dx_acc = kick * drift * amax
            if dx_vel <= self.eta_vel and dx_acc <= self.eta_acc * self.eps:
                return dlna
        return self.dlna_max / (1 << self.max_refine)


@dataclass
class LeapfrogIntegrator:
    """KDK stepper over ln(a) with pluggable force callback.

    ``force`` maps a ParticleSet to comoving accelerations g with
    dp/dt = -g/a... (sign handled internally: the callback returns the
    attractive acceleration in comoving coordinates, i.e. exactly what
    :class:`repro.gravity.TreecodeGravity` produces in code units).
    """

    params: CosmologyParams
    force: Callable[[ParticleSet], np.ndarray]
    n_force_calls: int = 0

    def __post_init__(self):
        self._dk = DriftKickIntegrals(self.params)

    def kick(self, ps: ParticleSet, acc: np.ndarray, a0: float, a1: float) -> None:
        ps.mom += acc * self._dk.kick_factor(a0, a1)
        ps.a_mom = a1

    def drift(self, ps: ParticleSet, a0: float, a1: float) -> None:
        ps.pos += ps.mom * self._dk.drift_factor(a0, a1)
        ps.wrap()
        ps.a = a1

    def step_kdk(self, ps: ParticleSet, a_next: float, acc0: np.ndarray | None = None):
        """One synchronized KDK step from ps.a to a_next.

        Requires ps.a == ps.a_mom (synchronized state).  Returns the
        acceleration at the end of the step (reusable as the next
        step's acc0 — one force evaluation per step).
        """
        if abs(ps.a - ps.a_mom) > 1e-14:
            raise ValueError("step_kdk requires synchronized positions/momenta")
        a0, a1 = ps.a, a_next
        am = np.sqrt(a0 * a1)  # geometric midpoint in ln a
        if acc0 is None:
            acc0 = self.force(ps)
            self.n_force_calls += 1
        self.kick(ps, acc0, a0, am)
        self.drift(ps, a0, a1)
        acc1 = self.force(ps)
        self.n_force_calls += 1
        self.kick(ps, acc1, am, a1)
        return acc1

    def half_kick_state(self, ps: ParticleSet, a_half: float, acc: np.ndarray):
        """Advance only momenta to a_half — produces the offset state a
        checkpoint must preserve (§2.3)."""
        self.kick(ps, acc, ps.a_mom, a_half)
