"""Light-cone output (paper Fig. 1).

The paper's Fig. 1 maps come from "light-cone output from 2HOT": as
the simulation runs, particles are recorded at the moment the
(backward) light cone of a z=0 observer sweeps past them, i.e. when
their comoving distance from the observer equals chi(a) of the current
epoch.  This module implements that as a step callback: between
consecutive steps the cone shrinks from chi(a_prev) to chi(a), and
every particle in that comoving shell is appended to the cone with its
epoch — replicating the box periodically to fill the cone out to a
chosen depth.

The accumulated cone feeds :mod:`repro.analysis.skymap` for the
Mollweide density maps the figure shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cosmology import Background, CosmologyParams

__all__ = ["LightConeRecorder"]


@dataclass
class LightConeRecorder:
    """Accumulates light-cone crossings during a simulation run.

    Parameters
    ----------
    params, box_mpc_h:
        Cosmology and physical box size (to convert chi(a) to box units).
    observer:
        Observer position in box units.
    depth_boxes:
        Record out to this many box lengths (periodic replication).

    Use as ``sim.run(callback=recorder)``; afterwards ``positions``,
    ``redshifts`` and ``distances`` hold the cone.
    """

    params: CosmologyParams
    box_mpc_h: float
    observer: np.ndarray = field(default_factory=lambda: np.full(3, 0.5))
    depth_boxes: float = 1.0
    # accumulated cone
    chunks: list = field(default_factory=list)
    z_chunks: list = field(default_factory=list)
    r_chunks: list = field(default_factory=list)
    _last_a: float | None = None

    def __post_init__(self):
        self.bg = Background(self.params)
        self.observer = np.asarray(self.observer, dtype=np.float64)
        r = int(np.ceil(self.depth_boxes))
        g = np.arange(-r, r + 1)
        gx, gy, gz = np.meshgrid(g, g, g, indexing="ij")
        self._reps = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1).astype(
            np.float64
        )

    def chi_box(self, a: float) -> float:
        """Comoving distance to epoch ``a`` in box units."""
        return self.bg.comoving_distance(a) / self.box_mpc_h

    def __call__(self, sim, rec) -> None:
        a = rec.a
        if self._last_a is None:
            self._last_a = a
            return
        chi_hi = min(self.chi_box(self._last_a), self.depth_boxes)
        chi_lo = self.chi_box(a)
        self._last_a = a
        if chi_hi <= chi_lo:
            return
        pos = sim.particles.pos
        for rep in self._reps:
            d = pos + rep - self.observer
            r = np.sqrt(np.einsum("ij,ij->i", d, d))
            sel = (r > chi_lo) & (r <= chi_hi)
            if not np.any(sel):
                continue
            self.chunks.append(pos[sel] + rep)
            self.r_chunks.append(r[sel])
            self.z_chunks.append(np.full(int(sel.sum()), 1.0 / a - 1.0))

    @property
    def positions(self) -> np.ndarray:
        if not self.chunks:
            return np.empty((0, 3))
        return np.concatenate(self.chunks)

    @property
    def distances(self) -> np.ndarray:
        if not self.r_chunks:
            return np.empty(0)
        return np.concatenate(self.r_chunks)

    @property
    def redshifts(self) -> np.ndarray:
        if not self.z_chunks:
            return np.empty(0)
        return np.concatenate(self.z_chunks)

    @property
    def n_recorded(self) -> int:
        return sum(len(c) for c in self.chunks)

    def sky_map(self, sphere, r_min: float = 0.0, r_max: float | None = None):
        """Project the accumulated cone onto sky pixels (contrast map)."""
        from ..analysis.skymap import project_to_sky

        pos = self.positions
        if len(pos) == 0:
            return np.zeros(sphere.n_pixels)
        r = self.distances
        r_max = r_max or float(r.max())
        sel = (r >= r_min) & (r <= r_max)
        d = pos[sel] - self.observer
        u = d / np.maximum(np.linalg.norm(d, axis=1), 1e-12)[:, None]
        pix = sphere.pixel_of(u)
        sky = np.bincount(pix, minlength=sphere.n_pixels).astype(float)
        mean = sky.sum() / sphere.n_pixels
        return sky / max(mean, 1e-300) - 1.0
