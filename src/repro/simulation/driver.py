"""Simulation driver: the 2HOT evolution loop in library form.

Couples the IC generator, the symplectic comoving integrator and a
force engine (pure treecode with background subtraction and lattice
periodicity — the 2HOT configuration — or TreePM as the GADGET-2-style
comparator) and advances a cosmological box from a_init to a_final
with factor-of-two quantized global timesteps.

Diagnostics recorded every step:

* the Layzer-Irvine (cosmic energy) integral, whose drift measures the
  combined force + integration error,
* interaction counts per particle (the paper's efficiency metric:
  ~2000 interactions/particle at errtol 1e-5, §7),
* wall-clock per stage (domain/tree/traversal/force split as Table 2).

On top of those records sits optional in-situ health monitoring
(:mod:`repro.diagnose`): pass ``health=`` (a
:class:`~repro.diagnose.HealthConfig` or monitor) or set
``SimulationConfig.health`` to watch energy/momentum budgets, probe
the realized force error, and fail fast on non-finite state.  The
default is a no-op that costs one attribute test per step.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..cosmology import Background, CosmologyParams, PLANCK2013
from ..gravity import TreecodeConfig, TreecodeGravity
from ..gravity.pm import TreePMConfig, TreePMGravity
from ..instrument import JsonlSink, get_tracer
from .ic import ICConfig, generate_ic
from .integrator import LeapfrogIntegrator, StepController
from .particles import ParticleSet

__all__ = ["SimulationConfig", "Simulation"]


@dataclass
class SimulationConfig:
    """Everything needed to reproduce a run (the paper's §3.4 point:
    one high-level description generates all component configs)."""

    cosmology: CosmologyParams = PLANCK2013
    n_per_dim: int = 16
    box_mpc_h: float = 100.0
    a_init: float = 0.02
    a_final: float = 1.0
    seed: int = 1234
    # IC switches (Fig. 7 ablations)
    use_2lpt: bool = True
    dec: bool = False
    sphere_mode: bool = False
    # force engine
    engine: str = "tree"  # "tree" (2HOT) or "treepm" (comparator)
    errtol: float = 1e-5
    p: int = 4
    nleaf: int = 16
    softening: str = "dehnen_k1"
    #: softening length as a fraction of the mean interparticle spacing
    eps_frac: float = 0.05
    ws: int = 1
    pm_grid: int = 0  # 0 -> 2 * n_per_dim for treepm
    #: worker processes for the force traverse+evaluate stages
    #: (0 = serial; see :class:`repro.parallel.executor.ForceExecutor`)
    workers: int = 0
    # stepping
    dlna_max: float = 0.125
    dt_divider: int = 1  # 4 for the Fig. 7 dt/4 reference run
    adaptive: bool = True
    #: factor-of-two refinement cap (global steps; see StepController)
    max_refine: int = 4
    #: compute potentials / Layzer-Irvine energies (adds ~20% force cost)
    track_energy: bool = True
    #: in-situ health monitoring: a :class:`repro.diagnose.HealthConfig`
    #: (or True for defaults); None = disabled, zero per-step cost
    health: object = None

    @property
    def eps(self) -> float:
        return self.eps_frac / self.n_per_dim

    @property
    def n_particles(self) -> int:
        return self.n_per_dim**3


@dataclass
class StepRecord:
    a: float
    dlna: float
    wall: float
    interactions_per_particle: float
    layzer_irvine: float
    kinetic: float
    potential: float
    #: per-stage wall times of this step's force call (tracing only)
    stage_seconds: dict = field(default_factory=dict)

    def to_record(self, step: int) -> dict:
        """The structured per-step event streamed to JSONL."""
        return {
            "type": "step",
            "step": step,
            "a": self.a,
            "dlna": self.dlna,
            "wall": self.wall,
            "interactions_per_particle": self.interactions_per_particle,
            "layzer_irvine": self.layzer_irvine,
            "kinetic": self.kinetic,
            "potential": self.potential,
            "stage_seconds": self.stage_seconds,
        }


class Simulation:
    """Run a cosmological box and expose its state for analysis.

    Pass ``tracer=`` (or install one with
    :func:`repro.instrument.set_tracer`) to collect per-stage force
    timings and counters; the default no-op tracer costs nothing.
    """

    def __init__(
        self,
        config: SimulationConfig,
        particles: ParticleSet | None = None,
        tracer=None,
        health=None,
    ):
        from ..diagnose import make_health

        self.config = config
        self.tracer = tracer
        self.health = make_health(health if health is not None else config.health)
        c = config
        if particles is None:
            ic = ICConfig(
                n_per_dim=c.n_per_dim,
                box_mpc_h=c.box_mpc_h,
                a_init=c.a_init,
                seed=c.seed,
                use_2lpt=c.use_2lpt,
                dec=c.dec,
                sphere_mode=c.sphere_mode,
            )
            particles = generate_ic(c.cosmology, ic)
        self.particles = particles
        self._setup_engine()
        self.integrator = LeapfrogIntegrator(c.cosmology, self._force)
        self.controller = StepController(
            dlna_max=c.dlna_max / c.dt_divider, eps=c.eps, max_refine=c.max_refine
        )
        self.history: list[StepRecord] = []
        self.run_totals: dict = {}
        self._last_pot: np.ndarray | None = None
        self._li_accum = 0.0
        self._li_last: tuple[float, float, float] | None = None
        self.bg = Background(c.cosmology)

    # ----- forces ---------------------------------------------------------------
    def _setup_engine(self) -> None:
        c = self.config
        # solver-level fail-fast guard rides with the health guard, so
        # sharded runs attribute non-finite output to the worker shard
        check_finite = bool(
            self.health.enabled
            and getattr(getattr(self.health, "config", None), "guard", False)
        )
        if c.engine == "tree":
            self._solver = TreecodeGravity(
                TreecodeConfig(
                    p=c.p,
                    errtol=c.errtol,
                    nleaf=c.nleaf,
                    background=True,
                    periodic=True,
                    ws=c.ws,
                    softening=c.softening,
                    eps=c.eps,
                    want_potential=c.track_energy,
                    dtype=np.float32,
                    workers=c.workers,
                    check_finite=check_finite,
                )
            )
        elif c.engine == "treepm":
            self._solver = TreePMGravity(
                TreePMConfig(
                    ngrid=c.pm_grid or 2 * c.n_per_dim,
                    p=c.p,
                    errtol=c.errtol,
                    nleaf=c.nleaf,
                    softening=c.softening if c.softening != "dehnen_k1" else "spline",
                    eps=c.eps,
                    workers=c.workers,
                    check_finite=check_finite,
                )
            )
        else:
            raise ValueError(f"unknown engine {c.engine!r}")
        self.last_stats: dict = {}

    def _force(self, ps: ParticleSet) -> np.ndarray:
        tr = self.tracer if self.tracer is not None else get_tracer()
        res = self._solver.compute(ps.pos, ps.mass, tracer=tr)
        self.last_stats = res.stats
        self._last_pot = res.pot
        return res.acc

    def close(self) -> None:
        """Release the force engine's worker pool (serial runs: no-op).

        The pool is *persistent* across steps — that is the point — so
        it outlives :meth:`run`; call this (or use the simulation as a
        context manager) when finished with the object.
        """
        closer = getattr(self._solver, "close", None)
        if closer is not None:
            closer()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ----- energy diagnostics -----------------------------------------------------
    def _energies(self, ps: ParticleSet, a: float):
        t = ps.kinetic_energy()  # T = sum m v_pec^2/2, v_pec = p/a_mom
        if self._last_pot is None or not self.config.track_energy:
            return t, 0.0
        # comoving potential from the delta-rho problem; physical W ~ 1/a
        w = -0.5 * float((ps.mass * self._last_pot).sum()) / a
        return t, w

    def _update_layzer_irvine(self, a: float, t: float, w: float):
        """Accumulate ∫ (da/a)(2T + W): the Layzer-Irvine integral.

        LI: d(T+W)/da = -(2T + W)/a, so T + W + accum is conserved.
        """
        if self._li_last is not None:
            a_prev, t_prev, w_prev = self._li_last
            dlna = np.log(a / a_prev)
            self._li_accum += 0.5 * (
                (2 * t_prev + w_prev) + (2 * t + w)
            ) * dlna
        self._li_last = (a, t, w)
        return t + w + self._li_accum

    # ----- main loop ----------------------------------------------------------------
    def run(self, callback=None, max_steps: int = 10000, jsonl=None) -> ParticleSet:
        """Advance to a_final; ``callback(sim, record)`` fires per step.

        One structured record per step (plus one for the pre-loop force
        evaluation) goes to the tracer's sink and, if ``jsonl`` names a
        path or stream, to that JSONL file as well.  ``run_totals``
        afterwards holds run-level wall/interaction totals *including*
        the initial force call, which per-step history alone misses.
        """
        c = self.config
        ps = self.particles
        tr = self.tracer if self.tracer is not None else get_tracer()
        sink = None
        own_sink = False
        if jsonl is not None:
            if isinstance(jsonl, JsonlSink):
                sink = jsonl
            else:
                sink = JsonlSink(jsonl)
                own_sink = True

        def emit(record: dict) -> None:
            tr.emit(record)
            if sink is not None:
                sink.emit(record)

        def health_check(events) -> None:
            """Stream health events, then honor a fail-fast verdict."""
            for ev in events:
                emit(ev.to_record())
            fatal = self.health.fatal
            if fatal is not None:
                emit({"type": "health_fatal", "message": str(fatal),
                      "snapshot": fatal.snapshot})
                raise fatal

        try:
            t_run0 = time.perf_counter()
            with tr.span("init_force"):
                acc = self._force(ps)
            init_wall = time.perf_counter() - t_run0
            init_ipp = self.last_stats.get("interactions_per_particle", 0.0)
            self.integrator.n_force_calls += 1
            emit(
                {
                    "type": "init_force",
                    "a": ps.a,
                    "wall": init_wall,
                    "interactions_per_particle": init_ipp,
                    "stage_seconds": self.last_stats.get("stage_seconds", {}),
                }
            )
            if self.health.enabled:
                health_check(self.health.on_init(self, acc))
            steps = 0
            first_step = len(self.history)
            while ps.a < c.a_final * (1 - 1e-12) and steps < max_steps:
                t0 = time.perf_counter()
                with tr.span("step"):
                    if c.adaptive:
                        dlna = self.controller.choose(c.cosmology, ps, acc, ps.a)
                    else:
                        dlna = self.controller.dlna_max
                    a_next = min(ps.a * np.exp(dlna), c.a_final)
                    acc = self.integrator.step_kdk(ps, a_next, acc0=acc)
                    t, w = self._energies(ps, ps.a)
                    li = self._update_layzer_irvine(ps.a, t, w)
                rec = StepRecord(
                    a=ps.a,
                    dlna=dlna,
                    wall=time.perf_counter() - t0,
                    interactions_per_particle=self.last_stats.get(
                        "interactions_per_particle", 0.0
                    ),
                    layzer_irvine=li,
                    kinetic=t,
                    potential=w,
                    stage_seconds=self.last_stats.get("stage_seconds", {}),
                )
                self.history.append(rec)
                emit(rec.to_record(len(self.history)))
                if callback is not None:
                    callback(self, rec)
                # after the callback: monitors see the state that will
                # enter the next step, callback mutations included
                if self.health.enabled:
                    health_check(self.health.on_step(self, rec, acc))
                steps += 1
            new = self.history[first_step:]
            self.run_totals = {
                "wall_s": time.perf_counter() - t_run0,
                "steps": steps,
                "init_force_wall_s": init_wall,
                "init_interactions_per_particle": init_ipp,
                "step_wall_s": float(sum(r.wall for r in new)),
                "interactions_per_particle": init_ipp
                + float(sum(r.interactions_per_particle for r in new)),
            }
            if self.health.enabled:
                self.run_totals["health"] = self.health.summary()
            emit({"type": "run_totals", **self.run_totals})
        finally:
            if sink is not None:
                sink.close() if own_sink else sink.flush()
        return ps
