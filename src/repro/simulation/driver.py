"""Simulation driver: the 2HOT evolution loop in library form.

Couples the IC generator, the symplectic comoving integrator and a
force engine (pure treecode with background subtraction and lattice
periodicity — the 2HOT configuration — or TreePM as the GADGET-2-style
comparator) and advances a cosmological box from a_init to a_final
with factor-of-two quantized global timesteps.

Diagnostics recorded every step:

* the Layzer-Irvine (cosmic energy) integral, whose drift measures the
  combined force + integration error,
* interaction counts per particle (the paper's efficiency metric:
  ~2000 interactions/particle at errtol 1e-5, §7),
* wall-clock per stage (domain/tree/traversal/force split as Table 2).

On top of those records sits optional in-situ health monitoring
(:mod:`repro.diagnose`): pass ``health=`` (a
:class:`~repro.diagnose.HealthConfig` or monitor) or set
``SimulationConfig.health`` to watch energy/momentum budgets, probe
the realized force error, and fail fast on non-finite state.  The
default is a no-op that costs one attribute test per step.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..cosmology import Background, CosmologyParams, PLANCK2013
from ..gravity import TreecodeConfig, TreecodeGravity
from ..gravity.pm import TreePMConfig, TreePMGravity
from ..instrument import JsonlSink, get_tracer
from ..observe import get_observer
from .ic import ICConfig, generate_ic
from .integrator import LeapfrogIntegrator, StepController
from .particles import ParticleSet

__all__ = ["SimulationConfig", "Simulation", "Preempted"]


class Preempted(RuntimeError):
    """The run stopped at a step boundary after a preemption signal.

    Raised by :meth:`Simulation.run` once it has honoured the paper's
    §3.4.1 preemption-notice contract: on SIGTERM/SIGINT the loop
    finishes the step in flight, writes a final checkpoint (when a
    checkpoint store is active) and partial ``run_totals``, then raises
    this.  A subsequent :meth:`Simulation.resume` continues
    bit-identically, so preemption costs no recomputation.
    """

    def __init__(self, message: str, checkpoint=None):
        super().__init__(message)
        #: path of the final checkpoint written before exiting (or None)
        self.checkpoint = checkpoint


class _SignalGuard:
    """Convert SIGTERM/SIGINT into a step-boundary stop request.

    Installed only in the main thread (signal handlers cannot be set
    elsewhere); everywhere else it degrades to an inert flag that never
    fires.  The previous handlers are restored on :meth:`restore`, and a
    *second* signal falls through to the previous handler — a stuck
    checkpoint write can still be interrupted the hard way.
    """

    SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(self):
        self.signum: int | None = None
        self._previous: dict = {}

    def install(self) -> "_SignalGuard":
        if threading.current_thread() is not threading.main_thread():
            return self
        for sig in self.SIGNALS:
            try:
                self._previous[sig] = signal.signal(sig, self._handle)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
        return self

    def _handle(self, signum, frame):
        if self.signum is not None:
            # second signal: defer to whatever was installed before us
            prev = self._previous.get(signum)
            if callable(prev):
                prev(signum, frame)
            elif prev == signal.default_int_handler or signum == signal.SIGINT:
                raise KeyboardInterrupt
            return
        self.signum = signum

    @property
    def signaled(self) -> bool:
        return self.signum is not None

    def restore(self) -> None:
        for sig, prev in self._previous.items():
            try:
                signal.signal(sig, prev)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous.clear()


@dataclass
class SimulationConfig:
    """Everything needed to reproduce a run (the paper's §3.4 point:
    one high-level description generates all component configs)."""

    cosmology: CosmologyParams = PLANCK2013
    n_per_dim: int = 16
    box_mpc_h: float = 100.0
    a_init: float = 0.02
    a_final: float = 1.0
    seed: int = 1234
    # IC switches (Fig. 7 ablations)
    use_2lpt: bool = True
    dec: bool = False
    sphere_mode: bool = False
    # force engine
    engine: str = "tree"  # "tree" (2HOT) or "treepm" (comparator)
    errtol: float = 1e-5
    p: int = 4
    nleaf: int = 16
    softening: str = "dehnen_k1"
    #: dual-tree walk flavour ("hierarchical" or the legacy "leaf";
    #: see :class:`repro.gravity.TreecodeConfig`)
    traversal: str = "hierarchical"
    #: force-evaluation backend ("numpy" | "compiled" | "auto"; see
    #: :class:`repro.gravity.TreecodeConfig`)
    backend: str = "auto"
    #: softening length as a fraction of the mean interparticle spacing
    eps_frac: float = 0.05
    ws: int = 1
    pm_grid: int = 0  # 0 -> 2 * n_per_dim for treepm
    #: worker processes for the force traverse+evaluate stages
    #: (0 = serial; see :class:`repro.parallel.executor.ForceExecutor`)
    workers: int = 0
    # stepping
    dlna_max: float = 0.125
    dt_divider: int = 1  # 4 for the Fig. 7 dt/4 reference run
    adaptive: bool = True
    #: factor-of-two refinement cap (global steps; see StepController)
    max_refine: int = 4
    #: compute potentials / Layzer-Irvine energies (adds ~20% force cost)
    track_energy: bool = True
    #: in-situ health monitoring: a :class:`repro.diagnose.HealthConfig`
    #: (or True for defaults); None = disabled, zero per-step cost
    health: object = None
    # fault tolerance (paper §3.4.2; see :mod:`repro.resilience`)
    #: directory for scheduled restart checkpoints (None = no checkpointing)
    checkpoint_dir: str | None = None
    #: write a checkpoint every N completed steps (0 = off)
    checkpoint_every_steps: int = 0
    #: write a checkpoint every S seconds of wall clock (0 = off)
    checkpoint_interval_s: float = 0.0
    #: Young/Daly scheduling: the configured MTBF in hours (0 = off);
    #: the write cost is measured from the first checkpoint actually
    #: written, then spacing follows sqrt(2 * write * MTBF).  When
    #: ``checkpoint_dir`` is set with no policy at all, this defaults
    #: to the paper's 80 h failure interval.
    checkpoint_mtbf_h: float = 0.0
    #: rotation width: keep only the newest N checkpoints
    checkpoint_keep: int = 3

    @property
    def eps(self) -> float:
        return self.eps_frac / self.n_per_dim

    @property
    def n_particles(self) -> int:
        return self.n_per_dim**3


@dataclass
class StepRecord:
    a: float
    dlna: float
    wall: float
    interactions_per_particle: float
    layzer_irvine: float
    kinetic: float
    potential: float
    #: per-stage wall times of this step's force call (tracing only)
    stage_seconds: dict = field(default_factory=dict)

    def to_record(self, step: int) -> dict:
        """The structured per-step event streamed to JSONL."""
        return {
            "type": "step",
            "step": step,
            "a": self.a,
            "dlna": self.dlna,
            "wall": self.wall,
            "interactions_per_particle": self.interactions_per_particle,
            "layzer_irvine": self.layzer_irvine,
            "kinetic": self.kinetic,
            "potential": self.potential,
            "stage_seconds": self.stage_seconds,
        }


class Simulation:
    """Run a cosmological box and expose its state for analysis.

    Pass ``tracer=`` (or install one with
    :func:`repro.instrument.set_tracer`) to collect per-stage force
    timings and counters; the default no-op tracer costs nothing.
    """

    def __init__(
        self,
        config: SimulationConfig,
        particles: ParticleSet | None = None,
        tracer=None,
        health=None,
    ):
        from ..diagnose import make_health

        self.config = config
        self.tracer = tracer
        self.health = make_health(health if health is not None else config.health)
        c = config
        if particles is None:
            ic = ICConfig(
                n_per_dim=c.n_per_dim,
                box_mpc_h=c.box_mpc_h,
                a_init=c.a_init,
                seed=c.seed,
                use_2lpt=c.use_2lpt,
                dec=c.dec,
                sphere_mode=c.sphere_mode,
            )
            particles = generate_ic(c.cosmology, ic)
        self.particles = particles
        self._setup_engine()
        self.integrator = LeapfrogIntegrator(c.cosmology, self._force)
        self.controller = StepController(
            dlna_max=c.dlna_max / c.dt_divider, eps=c.eps, max_refine=c.max_refine
        )
        self.history: list[StepRecord] = []
        self.run_totals: dict = {}
        #: per-force-call shard timeline groups from sharded runs
        #: (capped; feeds the observe worker-timeline analyzer)
        self.shard_timeline: list[dict] = []
        self._force_calls = 0
        #: total completed steps across resumes (checkpoint numbering)
        self.steps_completed = 0
        #: path this simulation was resumed from, if any
        self.resumed_from: str | None = None
        self._last_pot: np.ndarray | None = None
        self._li_accum = 0.0
        self._li_last: tuple[float, float, float] | None = None
        self.bg = Background(c.cosmology)

    # ----- forces ---------------------------------------------------------------
    def _setup_engine(self) -> None:
        c = self.config
        # solver-level fail-fast guard rides with the health guard, so
        # sharded runs attribute non-finite output to the worker shard
        check_finite = bool(
            self.health.enabled
            and getattr(getattr(self.health, "config", None), "guard", False)
        )
        if c.engine == "tree":
            self._solver = TreecodeGravity(
                TreecodeConfig(
                    p=c.p,
                    errtol=c.errtol,
                    nleaf=c.nleaf,
                    background=True,
                    periodic=True,
                    ws=c.ws,
                    softening=c.softening,
                    traversal=c.traversal,
                    backend=c.backend,
                    eps=c.eps,
                    want_potential=c.track_energy,
                    dtype=np.float32,
                    workers=c.workers,
                    check_finite=check_finite,
                )
            )
        elif c.engine == "treepm":
            self._solver = TreePMGravity(
                TreePMConfig(
                    ngrid=c.pm_grid or 2 * c.n_per_dim,
                    p=c.p,
                    errtol=c.errtol,
                    nleaf=c.nleaf,
                    softening=c.softening if c.softening != "dehnen_k1" else "spline",
                    traversal=c.traversal,
                    backend=c.backend,
                    eps=c.eps,
                    workers=c.workers,
                    check_finite=check_finite,
                )
            )
        else:
            raise ValueError(f"unknown engine {c.engine!r}")
        self.last_stats: dict = {}

    _TIMELINE_CAP = 512

    def _force(self, ps: ParticleSet) -> np.ndarray:
        tr = self.tracer if self.tracer is not None else get_tracer()
        res = self._solver.compute(ps.pos, ps.mass, tracer=tr)
        self.last_stats = res.stats
        self._last_pot = res.pot
        self._force_calls += 1
        ex = res.stats.get("executor")
        if ex is not None and ex.get("shard_events"):
            if len(self.shard_timeline) >= self._TIMELINE_CAP:
                del self.shard_timeline[0]
            self.shard_timeline.append(
                {"call": self._force_calls, "events": ex["shard_events"]}
            )
        return res.acc

    def close(self) -> None:
        """Release the force engine's worker pool (serial runs: no-op).

        The pool is *persistent* across steps — that is the point — so
        it outlives :meth:`run`; call this (or use the simulation as a
        context manager) when finished with the object.
        """
        closer = getattr(self._solver, "close", None)
        if closer is not None:
            closer()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ----- checkpoint / restart ---------------------------------------------------
    def save_checkpoint(self, path=None, store=None):
        """Write a durable restart checkpoint; returns its path.

        The file carries everything a bit-identical restart needs: the
        particle arrays with the leapfrog (a, a_mom) epochs, the full
        :class:`SimulationConfig` (verified on load — a resume cannot
        silently change physics), the Layzer-Irvine accumulator, the
        completed-step count, and the provenance config hash.
        """
        from ..diagnose.manifest import config_hash
        from ..io.checkpoint import save_checkpoint as write_checkpoint

        c = self.config
        extra = {
            "restart_steps": self.steps_completed,
            "restart_li_accum": self._li_accum,
            "config_sha256": config_hash(c),
        }
        if self._li_last is not None:
            extra["restart_li_a"], extra["restart_li_t"], extra["restart_li_w"] = (
                self._li_last
            )
        kw = dict(
            params=c.cosmology, box_mpc_h=c.box_mpc_h,
            sim_config=c, extra_metadata=extra,
        )
        if store is not None:
            return store.save(self.steps_completed, self.particles, **kw)
        if path is None:
            raise ValueError("save_checkpoint needs a path or a store")
        write_checkpoint(path, self.particles, durable=True, **kw)
        return path

    @staticmethod
    def _config_from_metadata(md: dict) -> SimulationConfig:
        """Rebuild the full SimulationConfig a checkpoint recorded."""
        import dataclasses

        cosmo = CosmologyParams(
            omega_m=md["omega_m"], omega_b=md["omega_b"],
            omega_de=md["omega_de"], h=md["h"],
            sigma8=md.get("sigma8", 0.8), n_s=md.get("n_s", 0.96),
            t_cmb=md.get("t_cmb", PLANCK2013.t_cmb),
            n_eff=md.get("n_eff", PLANCK2013.n_eff),
            w0=md.get("w0", -1.0), wa=md.get("wa", 0.0),
            include_radiation=bool(md.get("include_radiation", True)),
            name=str(md.get("cosmology_name", "checkpoint")),
        )
        kw = {}
        for f in dataclasses.fields(SimulationConfig):
            key = f"simcfg_{f.name}"
            if f.name in ("cosmology", "health") or key not in md:
                continue
            v = md[key]
            default = f.default
            if isinstance(default, bool):
                v = (v == "True") if isinstance(v, str) else bool(int(v))
            elif default is not None and default is not dataclasses.MISSING:
                v = type(default)(v)
            kw[f.name] = v
        return SimulationConfig(cosmology=cosmo, **kw)

    @classmethod
    def resume(cls, path, overrides: dict | None = None, expect_config=None,
               tracer=None, health=None) -> "Simulation":
        """Reconstruct a simulation from a checkpoint and continue.

        The checkpoint's column checksums are verified, its recorded
        configuration is restored (and checked against ``expect_config``
        if given — mismatch raises
        :class:`~repro.io.checkpoint.CheckpointConfigMismatch`), the
        Layzer-Irvine accumulator and step count carry over, and the
        leapfrog offset is reconstructed exactly: a synchronized
        checkpoint continues bit-identically to an uninterrupted run; a
        mid-step (offset) checkpoint gets its closing half-kick from the
        force at the stored positions — the same kick the uninterrupted
        run applied.  ``overrides`` applies *deliberate* config changes
        (e.g. ``{"workers": 4}``) after verification.
        """
        import dataclasses

        from ..io.checkpoint import load_checkpoint

        ps, md = load_checkpoint(path, expect_config=expect_config)
        config = cls._config_from_metadata(md)
        if overrides:
            config = dataclasses.replace(config, **overrides)
        sim = cls(config, particles=ps, tracer=tracer, health=health)
        sim.resumed_from = str(path)
        sim.steps_completed = int(md.get("restart_steps", 0))
        sim._li_accum = float(md.get("restart_li_accum", 0.0))
        if "restart_li_a" in md:
            sim._li_last = (
                float(md["restart_li_a"]),
                float(md["restart_li_t"]),
                float(md["restart_li_w"]),
            )
        if abs(ps.a - ps.a_mom) > 1e-14:
            # leapfrog offset: momenta lag positions — complete the
            # closing half-kick (force at the stored positions) so the
            # KDK stepper resumes from a synchronized, 2nd-order state
            acc = sim._force(ps)
            sim.integrator.n_force_calls += 1
            sim.integrator.kick(ps, acc, ps.a_mom, ps.a)
        return sim

    def _make_checkpointer(self, checkpointer):
        """Normalize run()'s checkpoint spec to (scheduler, store)."""
        if checkpointer is False:
            return None, None
        if isinstance(checkpointer, tuple):
            return checkpointer
        c = self.config
        if checkpointer is None and not c.checkpoint_dir:
            return None, None
        from ..resilience import CheckpointScheduler, CheckpointStore

        sched = CheckpointScheduler(
            every_steps=c.checkpoint_every_steps,
            interval_s=c.checkpoint_interval_s,
            mtbf_h=c.checkpoint_mtbf_h,
        )
        if not sched.enabled:
            # a checkpoint dir with no policy: Young/Daly at the paper's
            # observed failure interval (§3.4.2)
            sched = CheckpointScheduler(mtbf_h=80.0)
        store = CheckpointStore(c.checkpoint_dir, keep=c.checkpoint_keep)
        return sched, store

    # ----- run observatory ----------------------------------------------------------
    def _record_observation(self, obs, prof=None, tracer=None) -> None:
        """Append this run to the observatory registry (never raises).

        One record per :meth:`run`, keyed by the provenance config hash
        (the same sha256 the PR 3 manifests pin), carrying run totals,
        summed per-stage force timings, health event counts, the
        capped per-call shard timeline with its worker attribution,
        and — when deep profiling is on — the hot-function extract.
        """
        try:
            from ..diagnose.manifest import config_hash

            c = self.config
            totals = dict(self.run_totals)
            steps = int(totals.get("steps") or 0)
            stage_totals: dict[str, float] = {}
            for rec in self.history:
                for name, sec in (rec.stage_seconds or {}).items():
                    stage_totals[name] = stage_totals.get(name, 0.0) + float(sec)
            payload: dict = {
                "config_sha256": config_hash(c),
                "engine": c.engine,
                "n_particles": c.n_particles,
                "workers": c.workers,
                "backend": self.last_stats.get("backend", c.backend),
                "errtol": c.errtol,
                "a_final": float(self.particles.a),
                "steps": steps,
                "wall_s": totals.get("wall_s"),
                "interactions_per_particle": totals.get(
                    "interactions_per_particle"
                ),
                "run_totals": totals,
                "stage_seconds": {
                    k: round(v, 6) for k, v in stage_totals.items()
                },
            }
            if steps:
                payload["wall_per_step_s"] = (
                    float(totals.get("step_wall_s", 0.0)) / steps
                )
            fb = self.last_stats.get("backend_fallback")
            if fb:
                # silent numpy fallbacks become registry-visible (and a
                # flag in `repro-obs list`), not only per-call stats
                payload["backend_fallback"] = fb
            kern = self.last_stats.get("kernel")
            if kern:
                payload["kernel"] = kern
            if self.resumed_from:
                payload["resumed_from"] = self.resumed_from
            health = totals.get("health")
            if health:
                payload["health_events"] = health.get("events", {})
            if totals.get("partial"):
                payload["partial"] = True
                payload["error"] = totals.get("error")
            if self.shard_timeline:
                from ..observe import analyze_timeline

                cap = getattr(
                    getattr(obs, "config", None), "timeline_calls", 40
                )
                timeline = self.shard_timeline[-cap:]
                payload["timeline"] = timeline
                payload["worker_summary"] = analyze_timeline(timeline)
            if prof is not None:
                profile = prof.results()
                if profile:
                    payload["profile"] = profile
            if tracer is not None and getattr(tracer, "enabled", False):
                metrics = getattr(tracer, "metrics", None)
                if metrics is not None:
                    payload["top_spans"] = [
                        {"path": p, "total_s": round(s, 6), "calls": n}
                        for p, s, n in metrics.top_timers(12)
                    ]
            obs.record_run(payload, key=payload["config_sha256"])
        except Exception:
            pass

    # ----- energy diagnostics -----------------------------------------------------
    def _energies(self, ps: ParticleSet, a: float):
        t = ps.kinetic_energy()  # T = sum m v_pec^2/2, v_pec = p/a_mom
        if self._last_pot is None or not self.config.track_energy:
            return t, 0.0
        # comoving potential from the delta-rho problem; physical W ~ 1/a
        w = -0.5 * float((ps.mass * self._last_pot).sum()) / a
        return t, w

    def _update_layzer_irvine(self, a: float, t: float, w: float):
        """Accumulate ∫ (da/a)(2T + W): the Layzer-Irvine integral.

        LI: d(T+W)/da = -(2T + W)/a, so T + W + accum is conserved.
        """
        if self._li_last is not None:
            a_prev, t_prev, w_prev = self._li_last
            dlna = np.log(a / a_prev)
            self._li_accum += 0.5 * (
                (2 * t_prev + w_prev) + (2 * t + w)
            ) * dlna
        self._li_last = (a, t, w)
        return t + w + self._li_accum

    # ----- main loop ----------------------------------------------------------------
    def run(self, callback=None, max_steps: int = 10000, jsonl=None,
            checkpointer=None) -> ParticleSet:
        """Advance to a_final; ``callback(sim, record)`` fires per step.

        One structured record per step (plus one for the pre-loop force
        evaluation) goes to the tracer's sink and, if ``jsonl`` names a
        path or stream, to that JSONL file as well.  ``run_totals``
        afterwards holds run-level wall/interaction totals *including*
        the initial force call, which per-step history alone misses.
        If the run dies partway — a crash, a health fail-fast, a killed
        job — partial ``run_totals`` (steps completed, wall, last a) are
        still populated and emitted, so the JSONL tail stays usable.

        Checkpointing: pass ``checkpointer=(scheduler, store)``
        (:mod:`repro.resilience`) or set ``config.checkpoint_dir`` (+
        policy fields) and scheduled durable checkpoints are written
        after the steps the policy selects; ``checkpointer=False``
        disables even the config-driven setup.  Restart from one with
        :meth:`Simulation.resume` — the continuation is bit-identical
        to the uninterrupted run.
        """
        c = self.config
        ps = self.particles
        tr = self.tracer if self.tracer is not None else get_tracer()
        # run observatory: NULL_OBSERVER/NULL_PROFILER when off — one
        # attribute test plus a no-op context per stage, nothing else
        obs = get_observer()
        prof = obs.profiler()
        prof.start()
        sink = None
        own_sink = False
        if jsonl is not None:
            if isinstance(jsonl, JsonlSink):
                sink = jsonl
            else:
                sink = JsonlSink(jsonl)
                own_sink = True

        def emit(record: dict) -> None:
            tr.emit(record)
            if sink is not None:
                sink.emit(record)

        def health_check(events) -> None:
            """Stream health events, then honor a fail-fast verdict."""
            for ev in events:
                emit(ev.to_record())
            fatal = self.health.fatal
            if fatal is not None:
                emit({"type": "health_fatal", "message": str(fatal),
                      "snapshot": fatal.snapshot})
                raise fatal

        ckpt_sched, ckpt_store = self._make_checkpointer(checkpointer)
        # §3.4.1 preemption courtesy: SIGTERM/SIGINT stop the loop at the
        # next step boundary with a final checkpoint instead of dying
        # mid-kick (main thread only; elsewhere the guard never fires)
        preempt = _SignalGuard().install()
        steps = 0
        init_wall = 0.0
        init_ipp = 0.0
        first_step = len(self.history)
        t_run0 = time.perf_counter()
        try:
            with prof.stage("init_force"), tr.span("init_force"):
                acc = self._force(ps)
            init_wall = time.perf_counter() - t_run0
            init_ipp = self.last_stats.get("interactions_per_particle", 0.0)
            self.integrator.n_force_calls += 1
            emit(
                {
                    "type": "init_force",
                    "a": ps.a,
                    "wall": init_wall,
                    "interactions_per_particle": init_ipp,
                    "stage_seconds": self.last_stats.get("stage_seconds", {}),
                }
            )
            fb = self.last_stats.get("backend_fallback")
            if fb:
                # one structured event per run: the fallback reason on
                # the trace stream, so a silently degraded backend is
                # visible without digging into per-call stats
                emit({
                    "type": "backend_fallback",
                    "backend": self.last_stats.get("backend"),
                    "reason": fb,
                })
            if self.health.enabled:
                health_check(self.health.on_init(self, acc))
            if ckpt_sched is not None:
                ckpt_sched.start(time.perf_counter())
            while ps.a < c.a_final * (1 - 1e-12) and steps < max_steps:
                t0 = time.perf_counter()
                with prof.stage("step"), tr.span("step"):
                    if c.adaptive:
                        dlna = self.controller.choose(c.cosmology, ps, acc, ps.a)
                    else:
                        dlna = self.controller.dlna_max
                    a_next = min(ps.a * np.exp(dlna), c.a_final)
                    acc = self.integrator.step_kdk(ps, a_next, acc0=acc)
                    t, w = self._energies(ps, ps.a)
                    li = self._update_layzer_irvine(ps.a, t, w)
                rec = StepRecord(
                    a=ps.a,
                    dlna=dlna,
                    wall=time.perf_counter() - t0,
                    interactions_per_particle=self.last_stats.get(
                        "interactions_per_particle", 0.0
                    ),
                    layzer_irvine=li,
                    kinetic=t,
                    potential=w,
                    stage_seconds=self.last_stats.get("stage_seconds", {}),
                )
                self.history.append(rec)
                steps += 1
                self.steps_completed += 1
                emit(rec.to_record(len(self.history)))
                if callback is not None:
                    callback(self, rec)
                # after the callback: monitors see the state that will
                # enter the next step, callback mutations included
                if self.health.enabled:
                    health_check(self.health.on_step(self, rec, acc))
                if ckpt_sched is not None and ckpt_sched.due(
                    self.steps_completed, time.perf_counter()
                ):
                    t_ck = time.perf_counter()
                    path = self.save_checkpoint(store=ckpt_store)
                    write_s = time.perf_counter() - t_ck
                    ckpt_sched.wrote(
                        self.steps_completed, time.perf_counter(), write_s
                    )
                    emit({
                        "type": "checkpoint",
                        "path": str(path),
                        "step": self.steps_completed,
                        "a": float(ps.a),
                        "write_s": write_s,
                        "policy": ckpt_sched.describe(),
                    })
                if preempt.signaled and ps.a < c.a_final * (1 - 1e-12):
                    final_ckpt = None
                    if ckpt_store is not None:
                        final_ckpt = self.save_checkpoint(store=ckpt_store)
                        emit({
                            "type": "checkpoint",
                            "path": str(final_ckpt),
                            "step": self.steps_completed,
                            "a": float(ps.a),
                            "preempt": True,
                        })
                    emit({
                        "type": "preempt",
                        "signal": int(preempt.signum),
                        "step": self.steps_completed,
                        "a": float(ps.a),
                        "checkpoint": str(final_ckpt) if final_ckpt else None,
                    })
                    raise Preempted(
                        f"preempted by signal {preempt.signum} at step "
                        f"{self.steps_completed} (a={ps.a:.4f})",
                        checkpoint=final_ckpt,
                    )
            new = self.history[first_step:]
            self.run_totals = {
                "wall_s": time.perf_counter() - t_run0,
                "steps": steps,
                "init_force_wall_s": init_wall,
                "init_interactions_per_particle": init_ipp,
                "step_wall_s": float(sum(r.wall for r in new)),
                "interactions_per_particle": init_ipp
                + float(sum(r.interactions_per_particle for r in new)),
            }
            if ckpt_sched is not None:
                self.run_totals["checkpoints"] = ckpt_sched.describe()
            if self.health.enabled:
                self.run_totals["health"] = self.health.summary()
            emit({"type": "run_totals", **self.run_totals})
            prof.stop()
            if obs.enabled:
                self._record_observation(obs, prof, tr)
        except BaseException as exc:
            # a crashed run still leaves a usable diagnostics tail:
            # partial totals say how far it got before dying
            new = self.history[first_step:]
            self.run_totals = {
                "partial": True,
                "preempted": isinstance(exc, Preempted),
                "error": f"{type(exc).__name__}: {exc}",
                "wall_s": time.perf_counter() - t_run0,
                "steps": steps,
                "last_a": float(ps.a),
                "init_force_wall_s": init_wall,
                "init_interactions_per_particle": init_ipp,
                "step_wall_s": float(sum(r.wall for r in new)),
                "interactions_per_particle": init_ipp
                + float(sum(r.interactions_per_particle for r in new)),
            }
            if self.health.enabled:
                self.run_totals["health"] = self.health.summary()
            try:
                emit({"type": "run_totals", **self.run_totals})
            except Exception:
                pass
            # a crashed run is exactly the one the trajectory must keep
            prof.stop()
            if obs.enabled:
                self._record_observation(obs, prof, tr)
            raise
        finally:
            preempt.restore()
            if sink is not None:
                sink.close() if own_sink else sink.flush()
        return ps
