"""Particle state for cosmological N-body integration.

Code units (see :mod:`repro.cosmology.timeintegrals`): comoving
positions in the unit box, time in 1/H0, G = 1, and canonical momenta
p = a^2 dx/dt so the Quinn et al. (1997) symplectic operators apply.
Structure-of-arrays layout per the guides (and per HOT itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ParticleSet"]


@dataclass
class ParticleSet:
    """Positions, canonical momenta, masses and identities.

    Attributes
    ----------
    pos:
        (N, 3) comoving positions in [0, 1).
    mom:
        (N, 3) canonical momenta a^2 dx/dt (1/H0 time units).
    mass:
        (N,) masses in code units (sum = 3 Omega_m / 8 pi for a full box).
    ids:
        (N,) stable particle identifiers (Lagrangian grid index for
        simulation ICs).
    a:
        Scale factor at which ``pos`` is defined.
    a_mom:
        Scale factor at which ``mom`` is defined.  A half-step offset
        between the two is the natural state of a leapfrog; 2HOT's
        checkpoints preserve it (§2.3), and so does this container.
    """

    pos: np.ndarray
    mom: np.ndarray
    mass: np.ndarray
    ids: np.ndarray
    a: float
    a_mom: float

    def __post_init__(self):
        self.pos = np.ascontiguousarray(self.pos, dtype=np.float64)
        self.mom = np.ascontiguousarray(self.mom, dtype=np.float64)
        self.mass = np.ascontiguousarray(self.mass, dtype=np.float64)
        self.ids = np.ascontiguousarray(self.ids, dtype=np.int64)
        n = len(self.pos)
        if not (len(self.mom) == len(self.mass) == len(self.ids) == n):
            raise ValueError("inconsistent particle array lengths")

    def __len__(self) -> int:
        return len(self.pos)

    def wrap(self) -> None:
        """Periodic wrap of positions into [0, 1)."""
        np.mod(self.pos, 1.0, out=self.pos)

    def copy(self) -> "ParticleSet":
        return ParticleSet(
            pos=self.pos.copy(),
            mom=self.mom.copy(),
            mass=self.mass.copy(),
            ids=self.ids.copy(),
            a=self.a,
            a_mom=self.a_mom,
        )

    @property
    def total_mass(self) -> float:
        return float(self.mass.sum())

    def kinetic_energy(self) -> float:
        """Peculiar kinetic energy T = sum m v^2 / 2 with v = p/a
        (peculiar velocity a*dx/dt), evaluated at the momentum epoch."""
        v2 = np.einsum("ij,ij->i", self.mom, self.mom) / self.a_mom**2
        return 0.5 * float((self.mass * v2).sum())

    def momentum_total(self) -> np.ndarray:
        return (self.mass[:, None] * self.mom).sum(axis=0)
