"""Multipole moments of a homogeneous cube and background subtraction.

Paper §2.2.1: the near-uniform mass distribution of a large-volume
cosmological simulation makes raw treecode accelerations sums of large,
mostly-cancelling terms.  2HOT converts the mass distribution into
density *contrasts* by subtracting, from every cell's multipole
expansion, the expansion of a cube of uniform (negative) background
density.  Because the expansions are taken about geometric cell
centers, the cube moments have the simple closed form

    M_(t,u,v) = rho * s^3 * prod_k I(k, s),   I(t, s) = (s/2)^t/(t+1)  (t even)
                                               I(t, s) = 0              (t odd)

and the subtraction costs a handful of operations per cell.

A subtle point reproduced here (§2.2.1, final paragraph): in the far
field the background must only be subtracted *up to the same order as
the particle expansion* — subtracting (say) the p=6 background terms
from a p=4 particle expansion increases rather than decreases the
error.  :func:`cube_moments` therefore takes the expansion order
explicitly.
"""

from __future__ import annotations

import numpy as np

from .multiindex import multi_index_set

__all__ = ["cube_moments", "subtract_background"]


def cube_moments(p: int, side, density, dtype=np.float64) -> np.ndarray:
    """Packed moments (about the cube center) of homogeneous cubes.

    Parameters
    ----------
    p:
        Expansion order.
    side:
        Cube side length(s) — scalar or (ncells,) array.
    density:
        Uniform density (scalar or broadcastable against ``side``).

    Returns
    -------
    (ncoef,) array, or (ncells, ncoef) when ``side`` is an array.
    """
    mis = multi_index_set(p)
    side = np.asarray(side, dtype=np.float64)
    density = np.asarray(density, dtype=np.float64)
    scalar = side.ndim == 0
    s = np.atleast_1d(side)
    rho = np.broadcast_to(np.atleast_1d(density), s.shape)
    # one-dimensional even-moment integrals I(t) = integral x^t dx over
    # [-s/2, s/2] = s^{t+1} / (2^t (t+1)) for even t, 0 for odd t.
    one_d = np.zeros((mis.p + 1,) + s.shape, dtype=np.float64)
    for t in range(0, mis.p + 1):
        if t % 2 == 0:
            one_d[t] = s ** (t + 1) / (2.0**t * (t + 1))
    out = np.zeros(s.shape + (len(mis),), dtype=dtype)
    for i, (t, u, v) in enumerate(mis.alphas):
        if t % 2 or u % 2 or v % 2:
            continue
        out[..., i] = rho * one_d[t] * one_d[u] * one_d[v]
    return out[0] if scalar else out


def subtract_background(
    moments: np.ndarray,
    side,
    mean_density: float,
    p: int,
) -> np.ndarray:
    """Return delta-rho moments: particle moments minus uniform background.

    ``moments`` may be (ncoef,) for one cell or (ncells, ncoef); ``side``
    is the geometric side of each (cubic) cell.  The monopole of the
    result is the cell's mass contrast, which can be negative — the
    electrostatics analogy of §2.2.1.
    """
    bg = cube_moments(p, side, mean_density)
    return np.asarray(moments, dtype=np.float64) - bg
