"""Cartesian multipole machinery (paper §2.2).

Multi-index tables, derivative tensors of radial Green's functions,
particle/multipole/local translations, homogeneous-cube moments and
analytic prism forces for background subtraction, and the Salmon &
Warren absolute error bounds behind 2HOT's MAC.
"""

from .bounds import (
    acceleration_error_bound,
    critical_radius,
    potential_error_bound,
)
from .codegen import (
    compiled_dtensor_function,
    derivative_tensors_generated,
    generate_dtensor_source,
)
from .cube import cube_moments, subtract_background
from .dtensors import derivative_tensors, recurrence_plan
from .expansion import eval_coeffs, l2l, l2p, m2l, m2m, m2p, p2m
from .multiindex import MultiIndexSet, multi_index_set, n_coeffs, n_coeffs_order
from .prism import (
    cube_interior_acceleration,
    prism_acceleration,
    prism_potential,
)
from .radial import (
    ErfcKernel,
    ErfKernel,
    NewtonianKernel,
    PlummerKernel,
    RadialKernel,
)

__all__ = [
    "ErfKernel",
    "ErfcKernel",
    "MultiIndexSet",
    "NewtonianKernel",
    "PlummerKernel",
    "RadialKernel",
    "acceleration_error_bound",
    "compiled_dtensor_function",
    "critical_radius",
    "cube_interior_acceleration",
    "cube_moments",
    "derivative_tensors",
    "derivative_tensors_generated",
    "eval_coeffs",
    "generate_dtensor_source",
    "l2l",
    "l2p",
    "m2l",
    "m2m",
    "m2p",
    "multi_index_set",
    "n_coeffs",
    "n_coeffs_order",
    "p2m",
    "potential_error_bound",
    "prism_acceleration",
    "prism_potential",
    "recurrence_plan",
    "subtract_background",
]
