"""Multipole error bounds and the absolute-error MAC (paper §2.2.2).

2HOT's multipole acceptance criterion descends from Salmon & Warren
(1994) "Skeletons from the treecode closet": instead of a geometric
opening angle, each cell carries a rigorous bound on the acceleration
error committed by using its truncated expansion, and the traversal
opens a cell only when the bound at the sink's distance exceeds the
user's absolute tolerance.

Derivation used here (documented because the code is its proof): for a
source distribution inside radius b_max about the expansion center and
a field point at distance d > b_max, the order-n term of the expansion
of 1/|R - delta| is bounded by B_n / d^{n+1} (potential) and
(n+1) B_n / d^{n+2} (acceleration), where

    B_n = sum_j m_j |y_j - z|^n

are the absolute moments.  Using B_n <= B_{p+1} b_max^{n-p-1} for
n > p and summing the resulting geometric-polynomial series:

    err_pot(d) <= B_{p+1} / d^{p+2} * 1 / (1 - x)
    err_acc(d) <= B_{p+1} / d^{p+3} * ((p+2) - (p+1) x) / (1 - x)^2

with x = b_max / d < 1.  Both bounds are monotone decreasing in d, so
each cell has a unique *critical radius* r_crit with
err_acc(r_crit) = tol; the MAC during traversal is then the cheap test
d > r_crit, exactly as in HOT.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "acceleration_error_bound",
    "potential_error_bound",
    "moment_error_estimate",
    "dtensor_frobenius_const",
    "critical_radius",
    "critical_radius_moment",
]


def acceleration_error_bound(d, p: int, bmax, b_p1):
    """Rigorous bound on |acc_exact - acc_multipole| at distance d.

    Parameters
    ----------
    d:
        Distance(s) from the expansion center to the field point.
    p:
        Expansion order actually used.
    bmax:
        Radius of the smallest center-ball containing all sources.
    b_p1:
        Absolute moment B_{p+1} of the sources.

    Returns +inf where d <= bmax (the expansion may diverge there).
    """
    d = np.asarray(d, dtype=np.float64)
    bmax = np.asarray(bmax, dtype=np.float64)
    b_p1 = np.asarray(b_p1, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        x = bmax / d
        bound = (
            b_p1
            / d ** (p + 3)
            * ((p + 2) - (p + 1) * x)
            / (1.0 - x) ** 2
        )
    return np.where(d > bmax, bound, np.inf)


def potential_error_bound(d, p: int, bmax, b_p1):
    """Rigorous bound on the potential error at distance d (see module doc)."""
    d = np.asarray(d, dtype=np.float64)
    bmax = np.asarray(bmax, dtype=np.float64)
    b_p1 = np.asarray(b_p1, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        x = bmax / d
        bound = b_p1 / d ** (p + 2) / (1.0 - x)
    return np.where(d > bmax, bound, np.inf)


import functools as _functools


@_functools.lru_cache(maxsize=32)
def dtensor_frobenius_const(n: int) -> float:
    """Frobenius norm of the rank-n derivative tensor of 1/r at r = 1.

    By spherical symmetry the norm is direction-independent, so one
    evaluation suffices; at distance d it scales as C_n / d^{n+1}.
    """
    from .dtensors import derivative_tensors
    from .multiindex import multi_index_set
    from .radial import NewtonianKernel

    mis = multi_index_set(n)
    d = derivative_tensors(np.array([[1.0, 0.0, 0.0]]), NewtonianKernel(), n)[0]
    sl = mis.slice_of_order(n)
    return float(np.sqrt((mis.multinomial[sl] * d[sl] ** 2).sum()))


def moment_error_estimate(d, p: int, bmax, mnorm_p1, mnorm_p2=None):
    """Neglected-term estimate of the acceleration error.

    Uses the *actual* (possibly background-subtracted, hence signed and
    cancelling) moments of orders p+1 and p+2: by Cauchy-Schwarz in the
    tensor inner product each neglected order n contributes at most
    ||M^{(n)}||_F / n! * C_{n+1} / d^{n+2}, with C_n the (direction-
    independent) Frobenius norm of d^n(1/r) at unit distance.  Two
    consecutive orders are combined — one alone is parity-blind for
    near-symmetric cells — and a (1-x)^-2 factor allows for the
    geometric tail beyond p+2.  Unlike the rigorous absolute-moment
    bound this estimate *sees the cancellation* produced by background
    subtraction (§2.2.1: "the MAC based on an absolute error also
    becomes much better behaved").
    """
    import math

    d = np.asarray(d, dtype=np.float64)
    bmax = np.asarray(bmax, dtype=np.float64)
    mnorm_p1 = np.asarray(mnorm_p1, dtype=np.float64)
    c1 = dtensor_frobenius_const(p + 2) / math.factorial(p + 1)
    with np.errstate(divide="ignore", invalid="ignore"):
        x = bmax / d
        est = c1 * mnorm_p1 / d ** (p + 3)
        if mnorm_p2 is not None:
            c2 = dtensor_frobenius_const(p + 3) / math.factorial(p + 2)
            est = est + c2 * np.asarray(mnorm_p2, dtype=np.float64) / d ** (p + 4)
        est = est / (1.0 - x) ** 2
    return np.where(d > bmax, est, np.inf)


def _critical_radius_generic(err_fn, bmax, amplitude, tol: float, iters: int = 64):
    bmax = np.atleast_1d(np.asarray(bmax, dtype=np.float64))
    amplitude = np.atleast_1d(np.asarray(amplitude, dtype=np.float64))
    if tol <= 0.0:
        raise ValueError("tolerance must be positive")
    lo = np.maximum(bmax * (1.0 + 1e-9), 1e-12)
    hi = np.maximum(lo * 2.0, 1e-6)
    for _ in range(200):
        need = err_fn(hi) > tol
        if not np.any(need):
            break
        hi = np.where(need, hi * 2.0, hi)
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        too_big = err_fn(mid) > tol
        lo = np.where(too_big, mid, lo)
        hi = np.where(too_big, hi, mid)
    return np.where(amplitude <= 0.0, bmax, hi)


def critical_radius_moment(
    p: int, bmax, mnorm_p1, tol: float, mnorm_p2=None, iters: int = 64
):
    """Critical MAC radius from the moment-norm error estimate."""
    bmax_a = np.atleast_1d(np.asarray(bmax, dtype=np.float64))
    mn = np.atleast_1d(np.asarray(mnorm_p1, dtype=np.float64))
    mn2 = (
        None
        if mnorm_p2 is None
        else np.atleast_1d(np.asarray(mnorm_p2, dtype=np.float64))
    )
    amp = mn if mn2 is None else mn + mn2
    return _critical_radius_generic(
        lambda d: moment_error_estimate(d, p, bmax_a, mn, mn2), bmax_a, amp, tol, iters
    )


def critical_radius(p: int, bmax, b_p1, tol: float, iters: int = 64):
    """Distance at which the acceleration error bound equals ``tol``.

    Vectorized bisection over cells: beyond the returned radius a cell
    of order-p expansion is guaranteed accurate to ``tol`` in absolute
    acceleration.  Cells with zero moments (e.g. fully-cancelled
    background-subtracted cells) get r_crit = bmax, i.e. always
    acceptable outside their own bounding ball.
    """
    bmax = np.atleast_1d(np.asarray(bmax, dtype=np.float64))
    b_p1 = np.atleast_1d(np.asarray(b_p1, dtype=np.float64))
    if tol <= 0.0:
        raise ValueError("tolerance must be positive")
    lo = np.maximum(bmax * (1.0 + 1e-9), 1e-12)
    # expand hi until the bound is below tol everywhere
    hi = np.maximum(lo * 2.0, 1e-6)
    for _ in range(200):
        vals = acceleration_error_bound(hi, p, bmax, b_p1)
        need = vals > tol
        if not np.any(need):
            break
        hi = np.where(need, hi * 2.0, hi)
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        vals = acceleration_error_bound(mid, p, bmax, b_p1)
        too_big = vals > tol
        lo = np.where(too_big, mid, lo)
        hi = np.where(too_big, hi, mid)
    out = hi
    zero = b_p1 <= 0.0
    out = np.where(zero, bmax, out)
    return out
