"""Metaprogrammed interaction routines.

Paper §2.2.2: "the expression for the force with p = 8 in three
dimensions begins with 3^8 = 6561 terms. We resort to metaprogramming,
translating the intermediate representation of the computer algebra
system directly into C code."  The same pipeline exists here in pure
Python: :func:`generate_dtensor_source` walks the derivative-tensor
recurrence symbolically and emits fully unrolled NumPy source (one
fused multiply-add statement per surviving coefficient), which
:func:`compiled_dtensor_function` ``exec``s into a callable.

The generated routines are bit-identical to the interpreted recurrence
in :mod:`repro.multipoles.dtensors` (tested), but avoid the plan
interpretation overhead in the hot loop, and double as a readable
artifact of what the paper's code generator produces.
"""

from __future__ import annotations

import functools

import numpy as np

from .dtensors import recurrence_plan
from .multiindex import n_coeffs

__all__ = ["generate_dtensor_source", "compiled_dtensor_function"]


def generate_dtensor_source(p: int, func_name: str | None = None) -> str:
    """Emit unrolled source for the derivative tensors up to order ``p``.

    The generated function has signature ``f(x, y, z, g, out)`` where
    x, y, z are the displacement components, ``g`` is the (p+1, N)
    radial derivative chain and ``out`` is a preallocated
    (N, n_coeffs(p)) output array.
    """
    mis, plan = recurrence_plan(p)
    name = func_name or f"dtensors_p{p}"
    lines = [
        f"def {name}(x, y, z, g, out):",
        f'    """Unrolled derivative tensors, order <= {p} (generated)."""',
    ]
    axis_var = {0: "x", 1: "y", 2: "z"}
    # seed: R^m_(000) = g[m]
    for m in range(p + 1):
        lines.append(f"    r{m}_0 = g[{m}]")
    orders = mis.order
    for tgt, i, idx1, idx2, fac in plan:
        o = int(orders[tgt])
        for m in range(p - o, -1, -1):
            rhs = f"{axis_var[i]} * r{m + 1}_{idx1}"
            if idx2 >= 0 and fac != 0.0:
                rhs += f" + {fac!r} * r{m + 1}_{idx2}"
            lines.append(f"    r{m}_{tgt} = {rhs}")
    for j in range(len(mis)):
        lines.append(f"    out[:, {j}] = r0_{j}")
    lines.append("    return out")
    return "\n".join(lines) + "\n"


@functools.lru_cache(maxsize=16)
def compiled_dtensor_function(p: int):
    """Compile (exec) the generated source for order ``p`` and return it."""
    src = generate_dtensor_source(p)
    namespace: dict = {}
    code = compile(src, f"<generated dtensors p={p}>", "exec")
    exec(code, namespace)  # noqa: S102 - trusted, self-generated source
    return namespace[f"dtensors_p{p}"]


def derivative_tensors_generated(dx, kernel, p: int, dtype=np.float64):
    """Drop-in replacement for :func:`repro.multipoles.dtensors.derivative_tensors`
    backed by the generated unrolled kernel."""
    dx = np.asarray(dx, dtype=np.float64)
    r = np.sqrt(np.einsum("ij,ij->i", dx, dx))
    g = kernel.radial_derivs(r, p)
    out = np.empty((dx.shape[0], n_coeffs(p)), dtype=np.float64)
    fn = compiled_dtensor_function(p)
    fn(dx[:, 0], dx[:, 1], dx[:, 2], g, out)
    if dtype is not np.float64:
        out = out.astype(dtype)
    return out
