"""Multi-index bookkeeping for Cartesian multipole expansions.

2HOT's Cartesian expansions (paper §2.2.2) work with symmetric rank-n
tensors.  A symmetric tensor of rank n in three dimensions has
C(n+2, 2) independent components, one per multi-index
alpha = (t, u, v) with t+u+v = n; an expansion through order p packs
all of them into a flat coefficient vector of length C(p+3, 3)
(165 for the paper's p = 8).

This module owns the enumeration order (by total order, then
lexicographic), the factorials/binomials over multi-indices, and the
precomputed index tables used by the moment translation (M2M) and
evaluation (M2P/M2L) routines.  Everything is cached per order because
the tables are pure functions of p.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "n_coeffs",
    "n_coeffs_order",
    "MultiIndexSet",
    "multi_index_set",
]


def n_coeffs(p: int) -> int:
    """Number of multi-indices with |alpha| <= p (packed expansion length)."""
    return (p + 1) * (p + 2) * (p + 3) // 6


def n_coeffs_order(n: int) -> int:
    """Number of multi-indices with |alpha| == n (rank-n symmetric tensor)."""
    return (n + 1) * (n + 2) // 2


@dataclass(frozen=True)
class MultiIndexSet:
    """Precomputed tables for all multi-indices with |alpha| <= p.

    Attributes
    ----------
    p:
        Maximum expansion order.
    alphas:
        (ncoef, 3) int array; row i is the multi-index (t, u, v).
    order:
        (ncoef,) total order |alpha| of each row.
    factorial:
        (ncoef,) alpha! = t! u! v! as float.
    index:
        dict mapping (t, u, v) -> row position.
    multinomial:
        (ncoef,) n!/alpha! — the symmetric-tensor contraction weight.
    """

    p: int
    alphas: np.ndarray
    order: np.ndarray
    factorial: np.ndarray
    index: dict
    multinomial: np.ndarray

    def __len__(self) -> int:
        return len(self.alphas)

    def slice_of_order(self, n: int) -> slice:
        """Contiguous slice of the packed vector holding the rank-n terms."""
        if not 0 <= n <= self.p:
            raise ValueError(f"order {n} outside [0, {self.p}]")
        start = n_coeffs(n - 1) if n > 0 else 0
        return slice(start, n_coeffs(n))

    @functools.cached_property
    def translation_table(self):
        """Index triples for the M2M / L2L translation.

        M2M: translating moments from center z to z' with d = z - z',

            M'_alpha = sum_{beta <= alpha} C(alpha, beta) d^(alpha-beta) M_beta

        Returns (target, source, shift, binom): int arrays plus float
        weights, one entry per (alpha, beta) pair with beta <= alpha
        componentwise; ``shift`` indexes the packed powers d^(alpha-beta).
        """
        targets, sources, shifts, binoms = [], [], [], []
        for i, a in enumerate(self.alphas):
            t, u, v = (int(x) for x in a)
            for bt in range(t + 1):
                for bu in range(u + 1):
                    for bv in range(v + 1):
                        j = self.index[(bt, bu, bv)]
                        k = self.index[(t - bt, u - bu, v - bv)]
                        w = (
                            math.comb(t, bt)
                            * math.comb(u, bu)
                            * math.comb(v, bv)
                        )
                        targets.append(i)
                        sources.append(j)
                        shifts.append(k)
                        binoms.append(float(w))
        return (
            np.asarray(targets, dtype=np.intp),
            np.asarray(sources, dtype=np.intp),
            np.asarray(shifts, dtype=np.intp),
            np.asarray(binoms, dtype=np.float64),
        )

    def powers(self, d: np.ndarray) -> np.ndarray:
        """Packed monomials d^alpha for displacement vectors.

        Parameters
        ----------
        d:
            (..., 3) array of displacement vectors.

        Returns
        -------
        (..., ncoef) array with column i equal to
        d_x^t d_y^u d_z^v for alpha_i = (t, u, v).
        """
        d = np.asarray(d, dtype=np.float64)
        base = d.shape[:-1]
        out = np.empty(base + (len(self),), dtype=np.float64)
        # build monomials incrementally: x^t y^u z^v from lower powers
        px = [np.ones(base)]
        py = [np.ones(base)]
        pz = [np.ones(base)]
        for k in range(1, self.p + 1):
            px.append(px[-1] * d[..., 0])
            py.append(py[-1] * d[..., 1])
            pz.append(pz[-1] * d[..., 2])
        for i, (t, u, v) in enumerate(self.alphas):
            out[..., i] = px[t] * py[u] * pz[v]
        return out


@functools.lru_cache(maxsize=32)
def multi_index_set(p: int) -> MultiIndexSet:
    """Build (and cache) the :class:`MultiIndexSet` for order ``p``."""
    if p < 0:
        raise ValueError("expansion order must be >= 0")
    alphas = []
    for n in range(p + 1):
        for t in range(n, -1, -1):
            for u in range(n - t, -1, -1):
                alphas.append((t, u, n - t - u))
    alphas_arr = np.asarray(alphas, dtype=np.int64)
    order = alphas_arr.sum(axis=1)
    fact = np.array(
        [math.factorial(t) * math.factorial(u) * math.factorial(v) for t, u, v in alphas],
        dtype=np.float64,
    )
    index = {tuple(int(x) for x in a): i for i, a in enumerate(alphas)}
    multinom = np.array(
        [math.factorial(int(n)) for n in order], dtype=np.float64
    ) / fact
    return MultiIndexSet(
        p=p,
        alphas=alphas_arr,
        order=order,
        factorial=fact,
        index=index,
        multinomial=multinom,
    )
