"""Pseudo-particle multipole method (Kawai & Makino 2001) — §2.2.2.

The paper: "the pseudo-particle method allows one to represent the far
field of many particles as a set of pseudo-particle monopole
interactions.  We have found that such approaches are not as efficient
as a well-coded multipole interaction routine ... at least up to order
p = 8."

Implementation: a cell's sources are replaced by K fixed monopoles on
a sphere of radius ``a`` around the cell center whose *masses* are
fitted so the pseudo set reproduces the cell's Cartesian multipole
moments through order p.  Following Kawai & Makino, the fit uses the
spherical-harmonic quadrature property of (near-)uniform sphere
designs: with K >= (p+1)^2 well-distributed nodes the mass solve is a
least-squares problem on the packed moment vector, solved once per
cell (vectorized over cells).

Evaluating a pseudo-cell costs K monopole interactions (28 flops
each), versus one order-p Cartesian multipole interaction — the
efficiency comparison the paper reports is regenerated in
``benchmarks/bench_alternatives.py``.
"""

from __future__ import annotations

import numpy as np

from .multiindex import multi_index_set

__all__ = ["sphere_nodes", "PseudoParticleCell", "fit_pseudo_masses"]


def sphere_nodes(k: int, seed: int = 0) -> np.ndarray:
    """K well-distributed unit vectors (Fibonacci spiral sphere)."""
    if k < 1:
        raise ValueError("need at least one node")
    i = np.arange(k) + 0.5
    phi = np.pi * (1.0 + 5.0**0.5) * i
    z = 1.0 - 2.0 * i / k
    r = np.sqrt(np.maximum(1.0 - z * z, 0.0))
    return np.stack([r * np.cos(phi), r * np.sin(phi), z], axis=1)


def fit_pseudo_masses(
    moments: np.ndarray,
    p: int,
    radius: float,
    k: int | None = None,
    fit_radii: tuple = (3.0, 6.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Fit pseudo-particle masses reproducing the order-p far field.

    Monopoles constrained to a sphere cannot reproduce arbitrary
    Cartesian moments — the sphere constraint x^2+y^2+z^2 = a^2 ties
    the trace components together — but they *can* reproduce any
    harmonic (trace-free) far field through degree p, which is all that
    matters for a 1/r kernel.  Following the spirit of Kawai & Makino,
    the masses are therefore fitted in field space: least squares on
    the expansion's potential sampled over spheres of radius
    ``fit_radii`` x a (two radii separate the multipole degrees by
    their radial decay).

    Parameters
    ----------
    moments:
        Packed Cartesian moments about the cell center (length >=
        n_coeffs(p); extra entries ignored).
    radius:
        Pseudo-particle sphere radius a.
    k:
        Number of pseudo-particles (default 2 (p+1)^2).

    Returns (positions (K, 3) relative to the center, masses (K,)).
    """
    from .expansion import m2p

    mis = multi_index_set(p)
    k = k or 2 * (p + 1) ** 2
    nodes = sphere_nodes(k) * radius
    target_m = np.asarray(moments, dtype=np.float64)[: len(mis)]
    eval_pts = np.concatenate(
        [sphere_nodes(2 * k) * (f * radius) for f in fit_radii]
    )
    target_pot, _ = m2p(target_m, np.zeros(3), eval_pts, p)
    d = eval_pts[:, None, :] - nodes[None, :, :]
    design = 1.0 / np.sqrt(np.einsum("ijk,ijk->ij", d, d))
    masses, *_ = np.linalg.lstsq(design, target_pot, rcond=None)
    return nodes, masses


class PseudoParticleCell:
    """A cell's far field as K monopoles (the §2.2.2 alternative)."""

    def __init__(self, moments: np.ndarray, center: np.ndarray, p: int, radius: float,
                 k: int | None = None):
        self.center = np.asarray(center, dtype=np.float64)
        self.p = p
        nodes, masses = fit_pseudo_masses(moments, p, radius, k)
        self.positions = self.center + nodes
        self.masses = masses

    @property
    def k(self) -> int:
        return len(self.masses)

    def field(self, targets: np.ndarray):
        """(potential, acceleration) of the pseudo set at target points."""
        t = np.atleast_2d(np.asarray(targets, dtype=np.float64))
        d = t[:, None, :] - self.positions[None, :, :]
        r = np.sqrt(np.einsum("ijk,ijk->ij", d, d))
        pot = (self.masses / r).sum(axis=1)
        acc = -np.einsum("j,ijk->ik", self.masses, d / r[:, :, None] ** 3)
        return pot, acc

    def flops_per_target(self) -> int:
        """Monopole cost of one evaluation (paper's 28 flops/interaction)."""
        return 28 * self.k
