"""Analytic gravity of a homogeneous rectangular prism.

2HOT's background subtraction needs the force *inside* a uniform cube
(§2.2.1, Fig. 2): near the inter-particle separation the treecode
defines a cube surrounding the sink's local region and removes the
background contribution of that region analytically, citing Waldvogel
(1976) and Seidov & Skvirsky (2000).  The closed forms implemented
here are the classic MacMillan/Nagy prism expressions, valid for field
points inside or outside the body:

    U(P)  = G rho ||| xi eta ln(zeta + r) + eta zeta ln(xi + r)
                   + zeta xi ln(eta + r)
                   - xi^2/2  atan(eta zeta / (xi r))
                   - eta^2/2 atan(zeta xi / (eta r))
                   - zeta^2/2 atan(xi eta / (zeta r)) |||
    g_x(P) = G rho ||| eta ln(zeta + r) + zeta ln(eta + r)
                   - xi atan(eta zeta / (xi r)) |||

where (xi, eta, zeta) = corner - P, r = |(xi, eta, zeta)|, and
||| . ||| alternates sign over the eight corners (+ when an even
number of lower corners is involved).  Sign conventions follow the
rest of :mod:`repro.multipoles`: potential is positive and the
acceleration is its gradient, so a point displaced from the cube
center is pulled back toward it.

Degenerate logs/arctangents on corner axes are guarded; their
coefficients vanish in the same limit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["prism_potential", "prism_acceleration", "cube_interior_acceleration"]

_TINY = 1e-300


def _safe_log(x):
    return np.log(np.maximum(x, _TINY))


def _safe_atan(num, den):
    # atan(num/den) with 0 where den == 0 (the prefactor vanishes there
    # too); branchless form keeps this on the fast ufunc path
    nz = den != 0.0
    return np.arctan(num / np.where(nz, den, 1.0)) * nz


def _corner_sum(points, lo, hi, f):
    """Apply the alternating eight-corner sum of corner-relative coords.

    ``lo``/``hi`` may be single (3,) corners or per-point (N, 3) arrays
    (one box per evaluation point — used by the tree near-field where
    every interaction row has its own background cube).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    total = np.zeros(points.shape[0])
    for i in range(2):
        cx = (lo[..., 0] if i == 0 else hi[..., 0]) - points[:, 0]
        for j in range(2):
            cy = (lo[..., 1] if j == 0 else hi[..., 1]) - points[:, 1]
            for k in range(2):
                cz = (lo[..., 2] if k == 0 else hi[..., 2]) - points[:, 2]
                sign = -1.0 if (i + j + k) % 2 == 0 else 1.0
                total += sign * f(cx, cy, cz)
    return total


def prism_potential(points, lo, hi, density: float = 1.0) -> np.ndarray:
    """Potential U = rho * integral dV/|P-Q| of the box [lo, hi] at ``points``."""

    def f(x, y, z):
        r = np.sqrt(x * x + y * y + z * z)
        return (
            x * y * _safe_log(z + r)
            + y * z * _safe_log(x + r)
            + z * x * _safe_log(y + r)
            - 0.5 * x * x * _safe_atan(y * z, x * r)
            - 0.5 * y * y * _safe_atan(z * x, y * r)
            - 0.5 * z * z * _safe_atan(x * y, z * r)
        )

    return density * _corner_sum(points, lo, hi, f)


def prism_acceleration(points, lo, hi, density: float = 1.0) -> np.ndarray:
    """Acceleration grad(U) of the homogeneous box [lo, hi] at ``points``.

    Returns an (N, 3) array; with positive density the field points
    toward the interior of the box (attractive).
    """

    def make_axis(ax):
        def f(x, y, z):
            # cyclic permutation so that `x` is the differentiated axis
            if ax == 1:
                x, y, z = y, z, x
            elif ax == 2:
                x, y, z = z, x, y
            r = np.sqrt(x * x + y * y + z * z)
            return (
                y * _safe_log(z + r)
                + z * _safe_log(y + r)
                - x * _safe_atan(y * z, x * r)
            )

        return f

    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    out = np.empty((points.shape[0], 3), dtype=np.float64)
    # The corner sum of the Nagy integrand gives -dU/dP (the corner
    # coordinates are corner - P); negate to return grad U, which points
    # toward the attracting mass.
    for ax in range(3):
        out[:, ax] = -density * _corner_sum(points, lo, hi, make_axis(ax))
    return out


def cube_interior_acceleration(points, center, side: float, density: float) -> np.ndarray:
    """Acceleration of a homogeneous cube — the §2.2.1 near-field term.

    Convenience wrapper used by the background-subtraction near field:
    the cube of uniform density ``density`` (the mean background) with
    side ``side`` centered at ``center``, evaluated at ``points`` which
    are typically interior.
    """
    center = np.asarray(center, dtype=np.float64)
    half = 0.5 * side
    return prism_acceleration(points, center - half, center + half, density)
