"""Derivative tensors of radial Green's functions.

The Cartesian multipole expansion (paper eq. 5) needs the rank-n
tensors D_alpha = d^alpha G evaluated at separation vectors R.  For a
radial kernel G(x) = g(|x|) with scaled derivative chain
g_{m+1} = (1/r) g_m', the tensors obey the Hermite/McMurchie-Davidson
recurrence

    R^m_{000}        = g_m(r)
    R^m_{alpha+e_i}  = alpha_i * R^{m+1}_{alpha-e_i} + x_i * R^{m+1}_{alpha}

and R^0_alpha is the desired D_alpha.  The paper generates its p=8
interaction routines (6561 raw terms) with a computer algebra system;
here the same role is played by a precomputed recurrence *plan* (one
fused-multiply-add per packed coefficient) executed with vectorized
NumPy over the interaction batch — see also
:mod:`repro.multipoles.codegen`, which emits the fully unrolled
source just as the paper's metaprogramming pipeline does.
"""

from __future__ import annotations

import functools

import numpy as np

from .multiindex import MultiIndexSet, multi_index_set, n_coeffs
from .radial import RadialKernel

__all__ = ["recurrence_plan", "derivative_tensors"]


@functools.lru_cache(maxsize=32)
def recurrence_plan(p: int):
    """Build the evaluation plan for derivative tensors up to order p.

    For every packed multi-index alpha with 1 <= |alpha| <= p we choose
    the first direction i with alpha_i > 0 and record

        (target, i, idx(alpha - e_i), idx(alpha - 2 e_i) or -1, alpha_i - 1)

    so the recurrence can be applied order by order.
    """
    mis = multi_index_set(p)
    plan = []
    for tgt in range(1, len(mis)):
        a = mis.alphas[tgt]
        i = int(np.argmax(a > 0))
        e = [0, 0, 0]
        e[i] = 1
        lower1 = tuple(int(x) for x in (a - e))
        idx1 = mis.index[lower1]
        ai = int(a[i])
        if ai >= 2:
            e2 = [0, 0, 0]
            e2[i] = 2
            lower2 = tuple(int(x) for x in (a - e2))
            idx2 = mis.index[lower2]
        else:
            idx2 = -1
        plan.append((tgt, i, idx1, idx2, float(ai - 1)))
    return mis, plan


def derivative_tensors(
    dx: np.ndarray,
    kernel: RadialKernel,
    p: int,
    dtype=np.float64,
) -> np.ndarray:
    """Evaluate D_alpha = d^alpha G at displacement vectors ``dx``.

    Parameters
    ----------
    dx:
        (N, 3) displacement vectors (field point minus source center).
    kernel:
        The radial kernel supplying g_m.
    p:
        Maximum derivative order (use p_expansion + 1 when forces are
        needed).

    Returns
    -------
    (N, n_coeffs(p)) array; column j holds D_alpha for the packed
    multi-index alpha_j.
    """
    dx = np.asarray(dx, dtype=np.float64)
    if dx.ndim != 2 or dx.shape[1] != 3:
        raise ValueError("dx must be (N, 3)")
    n = dx.shape[0]
    mis, plan = recurrence_plan(p)
    r = np.sqrt(np.einsum("ij,ij->i", dx, dx))
    g = kernel.radial_derivs(r, p)  # (p+1, N)

    # work[m] holds R^m for all orders computed so far; we fill orders
    # incrementally so R^{m+1} entries of order n are ready before R^m
    # entries of order n+1 are formed.
    ncoef = len(mis)
    work = [np.zeros((n, n_coeffs(p - m)), dtype=np.float64) for m in range(p + 1)]
    for m in range(p + 1):
        work[m][:, 0] = g[m]
    x = [dx[:, 0], dx[:, 1], dx[:, 2]]
    # process plan entries in order of |alpha| (plan is already ordered
    # because packed indices are ordered by total order)
    orders = mis.order
    for tgt, i, idx1, idx2, fac in plan:
        o = int(orders[tgt])
        # R^m_alpha exists for m <= p - |alpha|
        for m in range(p - o, -1, -1):
            val = x[i] * work[m + 1][:, idx1]
            if idx2 >= 0 and fac != 0.0:
                val += fac * work[m + 1][:, idx2]
            work[m][:, tgt] = val
    out = work[0]
    if dtype is not np.float64:
        out = out.astype(dtype)
    return out
