"""Radial kernels and their scaled derivative chains.

Every interaction in the Cartesian multipole machinery reduces to
derivative tensors of a radially symmetric Green's function
G(x) = g(|x|).  The McMurchie-Davidson-style recurrence used by
:mod:`repro.multipoles.dtensors` needs the scaled radial derivatives

    g_0(r) = g(r),      g_{m+1}(r) = (1/r) dg_m/dr

up to m = p + 1.  This module provides them for:

* :class:`NewtonianKernel` — g = 1/r (the gravitational kernel),
* :class:`PlummerKernel` — g = (r^2 + eps^2)^{-1/2} (smoothed),
* :class:`ErfcKernel` — g = erfc(a r)/r, the real-space Ewald term and
  equally the short-range part of a TreePM force split (§2.4, Fig. 7),
* :class:`ErfKernel` — g = erf(a r)/r, the complementary long-range
  (mesh) part of the split.

The erfc/erf chains are generated symbolically at construction: each
g_m is a small sum of terms c * r^p * erfc(a r) and d * r^q *
exp(-a^2 r^2), and the differentiation rules for those two families
close under (1/r) d/dr.  This keeps every order exact to machine
precision without hand-derived closed forms.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

__all__ = [
    "RadialKernel",
    "NewtonianKernel",
    "PlummerKernel",
    "ErfcKernel",
    "ErfKernel",
]


class RadialKernel:
    """Interface: scaled radial derivative chain of a radial Green's function."""

    def radial_derivs(self, r: np.ndarray, mmax: int) -> np.ndarray:
        """Return array of shape (mmax+1,) + r.shape with g_m(r)."""
        raise NotImplementedError


class NewtonianKernel(RadialKernel):
    """g(r) = 1/r.  g_m = (-1)^m (2m-1)!! r^{-(2m+1)}."""

    def radial_derivs(self, r, mmax):
        r = np.asarray(r, dtype=np.float64)
        out = np.empty((mmax + 1,) + r.shape, dtype=np.float64)
        inv_r2 = 1.0 / (r * r)
        g = 1.0 / r
        out[0] = g
        for m in range(1, mmax + 1):
            g = g * (-(2 * m - 1)) * inv_r2
            out[m] = g
        return out


class PlummerKernel(RadialKernel):
    """Plummer-smoothed kernel g(r) = (r^2 + eps^2)^{-1/2}.

    (1/r) d/dr (r^2+eps^2)^{-k/2} = -k (r^2+eps^2)^{-(k+2)/2}, so the
    chain is the Newtonian one with r^2 -> r^2 + eps^2.
    """

    def __init__(self, eps: float):
        self.eps = float(eps)

    def radial_derivs(self, r, mmax):
        r = np.asarray(r, dtype=np.float64)
        s2 = r * r + self.eps * self.eps
        out = np.empty((mmax + 1,) + r.shape, dtype=np.float64)
        inv_s2 = 1.0 / s2
        g = np.sqrt(inv_s2)
        out[0] = g
        for m in range(1, mmax + 1):
            g = g * (-(2 * m - 1)) * inv_s2
            out[m] = g
        return out


class _ErfFamilyKernel(RadialKernel):
    """Common machinery for erf/erfc-over-r kernels.

    Terms are kept as two dictionaries per derivative level m:

    * ``e[p]``  — coefficient of r^p * F(a r)   (F = erfc or erf)
    * ``gse[q]`` — coefficient of r^q * exp(-a^2 r^2)

    with the derivative rules (sign = -1 for erfc, +1 for erf):

        d/dr [r^p F(ar)]        = p r^{p-1} F(ar) + sign*(2a/sqrt(pi)) r^p e^{-a^2 r^2}
        d/dr [r^q e^{-a^2 r^2}] = q r^{q-1} e^{..} - 2 a^2 r^{q+1} e^{..}

    followed by multiplication with 1/r (a shift of every power by -1).
    """

    _sign: int = -1  # erfc

    def __init__(self, alpha: float):
        self.alpha = float(alpha)
        self._chains: list[tuple[dict, dict]] = [({-1: 1.0}, {})]

    def _extend(self, mmax: int) -> None:
        a = self.alpha
        pref = self._sign * 2.0 * a / math.sqrt(math.pi)
        while len(self._chains) <= mmax:
            e, g = self._chains[-1]
            ne: dict = {}
            ng: dict = {}

            def add(d, k, v):
                if v != 0.0:
                    d[k] = d.get(k, 0.0) + v

            for p, c in e.items():
                # (1/r) * d/dr of c * r^p * F(ar)
                if p != 0:
                    add(ne, p - 2, c * p)
                add(ng, p - 1, c * pref)
            for q, c in g.items():
                if q != 0:
                    add(ng, q - 2, c * q)
                add(ng, q, -2.0 * a * a * c)
            self._chains.append((ne, ng))

    def _special(self, x):
        raise NotImplementedError

    def radial_derivs(self, r, mmax):
        self._extend(mmax)
        r = np.asarray(r, dtype=np.float64)
        a = self.alpha
        f = self._special(a * r)
        gauss = np.exp(-(a * a) * r * r)
        # precompute needed powers of r lazily
        powers: dict[int, np.ndarray] = {}

        def rpow(k: int) -> np.ndarray:
            if k not in powers:
                powers[k] = r**k
            return powers[k]

        out = np.zeros((mmax + 1,) + r.shape, dtype=np.float64)
        for m in range(mmax + 1):
            e, g = self._chains[m]
            acc = np.zeros_like(r)
            for p, c in e.items():
                acc += c * rpow(p) * f
            for q, c in g.items():
                acc += c * rpow(q) * gauss
            out[m] = acc
        return out


class ErfcKernel(_ErfFamilyKernel):
    """g(r) = erfc(alpha r) / r — Ewald real-space / TreePM short-range."""

    _sign = -1

    def _special(self, x):
        return special.erfc(x)


class ErfKernel(_ErfFamilyKernel):
    """g(r) = erf(alpha r) / r — the long-range (mesh) part of a force split.

    Note erf(ar)/r is smooth at r=0 (limit 2a/sqrt(pi)); the derivative
    chain is evaluated away from r=0 as used in cell interactions.
    """

    _sign = +1

    def _special(self, x):
        return special.erf(x)
