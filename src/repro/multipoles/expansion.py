"""Cartesian multipole and local expansions (paper eqs. 4-6).

Conventions (packed multi-index layout from
:mod:`repro.multipoles.multiindex`):

* moments about a center z:    M_alpha = sum_j m_j (y_j - z)^alpha
* potential (G = 1 kernel):    phi(x) = sum_alpha ((-1)^{|a|}/a!) M_a D_a(x - z)
* acceleration:                acc_i(x) = sum_alpha ((-1)^{|a|}/a!) M_a D_{a+e_i}
* local expansion about c:     phi(x) = sum_beta ((x-c)^b / b!) L_b
  with M2L:                    L_b = sum_a ((-1)^{|a|}/a!) M_a D_{a+b}(c - z)

The sign convention is "potential = sum m/r > 0, acceleration =
gradient of potential", which gives the physically attractive
gravitational acceleration directly.

All routines are vectorized over batches (cells or evaluation points)
and accept a ``dtype`` so that the float32 behaviour of Figure 6 can
be reproduced.
"""

from __future__ import annotations

import numpy as np

from .dtensors import derivative_tensors
from .multiindex import MultiIndexSet, multi_index_set, n_coeffs
from .radial import NewtonianKernel, RadialKernel

__all__ = [
    "p2m",
    "m2m",
    "m2p",
    "m2l",
    "l2l",
    "l2p",
    "eval_coeffs",
]

_NEWTON = NewtonianKernel()


def eval_coeffs(mis: MultiIndexSet) -> np.ndarray:
    """The (-1)^{|alpha|} / alpha! weights used by M2P and M2L."""
    return ((-1.0) ** mis.order) / mis.factorial


def p2m(
    positions: np.ndarray,
    masses: np.ndarray,
    center: np.ndarray,
    p: int,
) -> np.ndarray:
    """Particle-to-multipole: packed moments of order <= p about ``center``.

    2HOT takes moments about geometric cell centers (not centers of
    mass) so the uniform-background expansion can be subtracted with a
    few operations (§2.2.1); dipole terms are therefore generally
    non-zero.
    """
    mis = multi_index_set(p)
    d = np.asarray(positions, dtype=np.float64) - np.asarray(center, dtype=np.float64)
    mono = mis.powers(d)  # (N, ncoef)
    return np.asarray(masses, dtype=np.float64) @ mono


def m2m(moments: np.ndarray, d: np.ndarray, p: int) -> np.ndarray:
    """Translate moments from center z to z' where ``d = z - z'``.

    Exact (no truncation error): moments of order n about the new
    center depend only on moments of order <= n about the old one.
    Vectorized over leading dimensions of ``moments`` and ``d``.
    """
    mis = multi_index_set(p)
    moments = np.asarray(moments, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    tgt, src, shift, binom = mis.translation_table
    mono = mis.powers(d)  # (..., ncoef)
    out = np.zeros_like(moments)
    contrib = binom * moments[..., src] * mono[..., shift]
    # scatter-add into targets
    np.add.at(out.reshape(-1, out.shape[-1]).T, tgt, contrib.reshape(-1, contrib.shape[-1]).T)
    return out


def m2p(
    moments: np.ndarray,
    center: np.ndarray,
    targets: np.ndarray,
    p: int,
    kernel: RadialKernel | None = None,
    dtype=np.float64,
    want_potential: bool = True,
):
    """Multipole-to-particle: evaluate field of one expansion at many points.

    Returns (potential, acceleration) with shapes (N,) and (N, 3);
    potential is None when ``want_potential`` is False.
    """
    kernel = kernel or _NEWTON
    mis = multi_index_set(p)
    targets = np.asarray(targets, dtype=np.float64)
    dx = targets - np.asarray(center, dtype=np.float64)
    dtens = derivative_tensors(dx, kernel, p + 1, dtype=dtype)
    w = eval_coeffs(mis).astype(dtype)
    m = np.asarray(moments, dtype=np.float64).astype(dtype)
    ncoef = len(mis)
    wm = w * m
    pot = dtens[:, :ncoef] @ wm if want_potential else None
    acc = np.empty((targets.shape[0], 3), dtype=dtype)
    mis_hi = multi_index_set(p + 1)
    for i in range(3):
        e = [0, 0, 0]
        e[i] = 1
        cols = np.array(
            [
                mis_hi.index[(int(a[0]) + e[0], int(a[1]) + e[1], int(a[2]) + e[2])]
                for a in mis.alphas
            ],
            dtype=np.intp,
        )
        acc[:, i] = dtens[:, cols] @ wm
    return pot, acc


def m2l(
    moments: np.ndarray,
    r0: np.ndarray,
    p_src: int,
    p_loc: int,
    kernel: RadialKernel | None = None,
) -> np.ndarray:
    """Multipole-to-local: convert an expansion into a local one.

    Parameters
    ----------
    moments:
        packed source moments (order <= p_src) about z.
    r0:
        (3,) vector c - z from the source center to the local center.
    p_loc:
        order of the local expansion produced.

    Returns packed local coefficients L_beta, |beta| <= p_loc.
    """
    kernel = kernel or _NEWTON
    mis_s = multi_index_set(p_src)
    mis_l = multi_index_set(p_loc)
    mis_hi = multi_index_set(p_src + p_loc)
    r0 = np.asarray(r0, dtype=np.float64).reshape(1, 3)
    dtens = derivative_tensors(r0, kernel, p_src + p_loc)[0]
    w = eval_coeffs(mis_s)
    m = np.asarray(moments, dtype=np.float64)
    out = np.zeros(len(mis_l), dtype=np.float64)
    for bi, b in enumerate(mis_l.alphas):
        cols = np.array(
            [
                mis_hi.index[(int(a[0] + b[0]), int(a[1] + b[1]), int(a[2] + b[2]))]
                for a in mis_s.alphas
            ],
            dtype=np.intp,
        )
        out[bi] = np.dot(w * m, dtens[cols])
    return out


def l2l(local: np.ndarray, d: np.ndarray, p: int) -> np.ndarray:
    """Translate a local expansion from center c to c' with ``d = c' - c``.

    L'_gamma = sum_{beta >= gamma} L_beta d^{beta-gamma} / (beta-gamma)!
    (exact for beta within the truncation order).
    """
    mis = multi_index_set(p)
    local = np.asarray(local, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    mono = mis.powers(d)
    out = np.zeros_like(local)
    for gi, gam in enumerate(mis.alphas):
        total = 0.0
        for bi, bet in enumerate(mis.alphas):
            diff = bet - gam
            if np.any(diff < 0):
                continue
            k = mis.index[tuple(int(x) for x in diff)]
            total += local[bi] * mono[k] / mis.factorial[k]
        out[gi] = total
    return out


def l2p(
    local: np.ndarray,
    center: np.ndarray,
    targets: np.ndarray,
    p: int,
    dtype=np.float64,
):
    """Local-to-particle: evaluate a local expansion at points.

    Returns (potential, acceleration).  The acceleration uses the
    coefficients L_{beta+e_i}, so its effective order is p-1.
    """
    mis = multi_index_set(p)
    targets = np.asarray(targets, dtype=np.float64)
    s = (targets - np.asarray(center, dtype=np.float64)).astype(dtype)
    mono = mis.powers(s).astype(dtype)
    w = (1.0 / mis.factorial).astype(dtype)
    lw = np.asarray(local, dtype=np.float64).astype(dtype) * w
    pot = mono @ lw
    acc = np.zeros((targets.shape[0], 3), dtype=dtype)
    for i in range(3):
        for bi, b in enumerate(mis.alphas):
            up = (int(b[0]) + (i == 0), int(b[1]) + (i == 1), int(b[2]) + (i == 2))
            j = mis.index.get(up)
            if j is None:
                continue
            acc[:, i] += mono[:, bi] * (1.0 / mis.factorial[bi]) * local[j]
    return pot, acc
