"""``repro-diag``: health timelines and baseline regression gates.

Reads the JSONL trace a monitored run streamed (driver step records,
``health`` events, ``run_totals``) and renders/judges it:

* ``repro-diag report trace.jsonl`` — per-step health timeline plus
  the run summary and stage totals;
* ``repro-diag baseline trace.jsonl -o baseline.json`` — freeze the
  run's health/perf summary into a gated baseline (each gate is the
  measured value times a safety margin);
* ``repro-diag check trace.jsonl --baseline baseline.json`` — compare
  a new run against the stored gates, exit 2 on regression.  Raw
  benchmark receipts (e.g. ``BENCH_parallel.json``) also work: any
  numeric key matching a summary metric becomes a max-gate;
* ``repro-diag gate trace.jsonl`` — exit 1 if the trace contains any
  health event at (or above) the given severity; the CI tripwire.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..instrument.events import read_jsonl
from ..instrument.report import _table, stage_breakdown_table
from .monitors import SEVERITIES

__all__ = ["summary_from_trace", "health_timeline", "compare_to_baseline", "main"]

#: summary metrics worth gating, and the direction that is "worse"
GATED_METRICS = (
    "wall_s", "wall_per_step_s", "interactions_per_particle",
    "li_drift_rel", "warn_events", "error_events",
)
#: raw-benchmark key -> summary metric (lets BENCH_*.json act as a baseline)
BASELINE_ALIASES = {"serial_wall_s": "wall_s"}


def summary_from_trace(records: list[dict]) -> dict:
    """Health/perf summary of one run's JSONL trace."""
    steps = [r for r in records if r.get("type") == "step"]
    health = [r for r in records if r.get("type") == "health"]
    totals = next((r for r in records if r.get("type") == "run_totals"), {})
    summary: dict = {
        "steps": len(steps),
        "wall_s": float(totals.get("wall_s", sum(r.get("wall", 0.0) for r in steps))),
        "interactions_per_particle": float(totals.get(
            "interactions_per_particle",
            sum(r.get("interactions_per_particle", 0.0) for r in steps),
        )),
    }
    if steps:
        walls = [float(r.get("wall", 0.0)) for r in steps]
        summary["wall_per_step_s"] = sum(walls) / len(walls)
        summary["wall_step_max_s"] = max(walls)
        li = [float(r.get("layzer_irvine", 0.0)) for r in steps]
        scale = max(
            max(abs(float(r.get("kinetic", 0.0))) for r in steps),
            max(abs(float(r.get("potential", 0.0))) for r in steps),
            1e-30,
        )
        summary["li_drift_rel"] = max(abs(x - li[0]) for x in li) / scale
    for sev in SEVERITIES:
        summary[f"{sev}_events"] = sum(1 for r in health if r.get("severity") == sev)
    by_monitor: dict[str, float] = {}
    for r in health:
        v = r.get("value")
        if isinstance(v, (int, float)):
            name = r.get("monitor", "?")
            by_monitor[name] = max(by_monitor.get(name, 0.0), float(v))
    for name, v in sorted(by_monitor.items()):
        summary[f"health_{name}_max"] = v
    return summary


def stage_totals_from_trace(records: list[dict]) -> dict[str, float]:
    """Sum per-stage force seconds over every step (and the init force)."""
    totals: dict[str, float] = {}
    for r in records:
        if r.get("type") in ("step", "init_force"):
            for name, sec in (r.get("stage_seconds") or {}).items():
                totals[name] = totals.get(name, 0.0) + float(sec)
    return totals


def health_timeline(records: list[dict]) -> str:
    """One row per streamed health event, in trace order."""
    rows = []
    for r in records:
        if r.get("type") != "health":
            continue
        rows.append((
            r.get("step", "-"),
            round(float(r.get("a", 0.0)), 4),
            r.get("monitor", "?"),
            r.get("severity", "?").upper(),
            "-" if r.get("value") is None else f"{float(r['value']):.3e}",
            r.get("message", "")[:72],
        ))
    if not rows:
        return "=== Health timeline ===\n(no health events in trace)"
    return _table(
        "Health timeline",
        ["step", "a", "monitor", "severity", "value", "message"],
        rows,
    )


def _load_gates(baseline: dict, margin: float) -> dict[str, dict]:
    """Gates from a baseline file (native format or raw benchmark JSON)."""
    if "gates" in baseline:
        return {k: dict(v) for k, v in baseline["gates"].items()}
    gates = {}
    for key, value in baseline.items():
        metric = BASELINE_ALIASES.get(key, key)
        if metric in GATED_METRICS and isinstance(value, (int, float)):
            gates[metric] = {"max": float(value) * margin}
    return gates


def compare_to_baseline(summary: dict, baseline: dict, margin: float = 1.0):
    """Judge a summary against baseline gates.

    Returns ``(failures, rows)`` where rows tabulate every gate and
    failures lists the metrics that regressed past their bound.
    """
    gates = _load_gates(baseline, margin)
    rows, failures = [], []
    for metric, rule in sorted(gates.items()):
        measured = summary.get(metric)
        if measured is None:
            rows.append((metric, "-", _bound_str(rule), "SKIP (not measured)"))
            continue
        ok = True
        if "max" in rule and float(measured) > float(rule["max"]):
            ok = False
        if "min" in rule and float(measured) < float(rule["min"]):
            ok = False
        rows.append((metric, f"{float(measured):.6g}", _bound_str(rule),
                     "ok" if ok else "FAIL"))
        if not ok:
            failures.append(metric)
    return failures, rows


def _bound_str(rule: dict) -> str:
    parts = []
    if "min" in rule:
        parts.append(f">= {float(rule['min']):.6g}")
    if "max" in rule:
        parts.append(f"<= {float(rule['max']):.6g}")
    return ", ".join(parts) or "(no bound)"


def make_baseline(summary: dict, margin: float = 1.5) -> dict:
    """Freeze a summary into a gated baseline with a safety margin."""
    gates: dict[str, dict] = {}
    for metric in GATED_METRICS:
        v = summary.get(metric)
        if not isinstance(v, (int, float)):
            continue
        if metric == "error_events":
            gates[metric] = {"max": 0.0}
        elif metric == "warn_events":
            gates[metric] = {"max": max(float(v) * margin, 2.0)}
        else:
            # floor keeps near-zero measurements from gating on noise
            gates[metric] = {"max": max(float(v) * margin, 1e-12)}
    return {
        "type": "health_baseline",
        "margin": margin,
        "summary": {k: v for k, v in summary.items()
                    if isinstance(v, (int, float))},
        "gates": gates,
    }


# ----- subcommands -----------------------------------------------------------------
def _cmd_report(args) -> int:
    records = read_jsonl(args.trace)
    summary = summary_from_trace(records)
    print(health_timeline(records))
    print()
    rows = [(k, f"{v:.6g}" if isinstance(v, float) else v)
            for k, v in summary.items()]
    print(_table("Run health/perf summary", ["metric", "value"], rows))
    stages = stage_totals_from_trace(records)
    if stages:
        print()
        print(stage_breakdown_table(stages, title="Force stage totals"))
    return 0


def _cmd_baseline(args) -> int:
    summary = summary_from_trace(read_jsonl(args.trace))
    baseline = make_baseline(summary, margin=args.margin)
    Path(args.output).write_text(json.dumps(baseline, indent=1, sort_keys=True))
    print(f"wrote {len(baseline['gates'])} gates to {args.output}")
    return 0


def _cmd_check(args) -> int:
    summary = summary_from_trace(read_jsonl(args.trace))
    baseline = json.loads(Path(args.baseline).read_text())
    failures, rows = compare_to_baseline(summary, baseline, margin=args.margin)
    print(_table(f"Baseline check vs {args.baseline}",
                 ["metric", "measured", "bound", "status"], rows))
    if failures:
        print(f"\nREGRESSION: {', '.join(failures)}", file=sys.stderr)
        return 2
    print("\nall gates passed")
    return 0


def _gate_trend(args) -> int:
    """Judge the newest registry record for a metric against the
    trajectory of its predecessors (``gate --trend wall_per_step_s``)."""
    import os

    from ..observe import RunRegistry, trend_report

    obs_dir = args.obs_dir or os.environ.get("REPRO_OBS_DIR") or ".repro_obs"
    registry = RunRegistry(obs_dir)
    report = trend_report(
        registry, args.trend, kind=args.trend_kind,
        window=args.trend_window,
    )
    verdict = report["verdict"]
    rows = [
        ((p["id"] or "?")[:13], p.get("git_commit") or "-", f"{p['value']:.6g}")
        for p in report["series"][-(args.trend_window + 1):]
    ]
    if rows:
        print(_table(f"Trend: {args.trend}", ["record", "commit", "value"], rows))
    status = verdict.get("status", "?")
    if verdict.get("regression"):
        print(
            f"\nGATE FAILED: {args.trend} = {verdict['value']:.6g} vs "
            f"baseline {verdict['center']:.6g} "
            f"(threshold {verdict['threshold']:.6g}, "
            f"n={verdict['n_history']})",
            file=sys.stderr,
        )
        _print_trend_attribution(registry, report, args.trend_window)
        return 1
    print(f"\ntrend gate passed: {args.trend} {status}")
    return 0


def _print_trend_attribution(registry, report, window: int) -> None:
    """Name what moved: diff the regressed record against the window
    predecessor closest to the baseline center (never raises — the
    gate verdict stands on its own)."""
    try:
        from ..observe import attribute, format_attribution

        points = report["series"]
        if len(points) < 2:
            return
        center = report["verdict"].get("center")
        baseline_pts = points[:-1][-window:]
        ref = min(
            baseline_pts,
            key=lambda p: abs(p["value"] - center) if center is not None else 0,
        )
        rec_a = registry.get(ref["id"])
        rec_b = registry.get(points[-1]["id"])
        print("\nattribution (baseline record -> regressed record):",
              file=sys.stderr)
        print(format_attribution(attribute(rec_a, rec_b)), file=sys.stderr)
    except Exception:
        pass


def _cmd_gate(args) -> int:
    if args.trace is None:
        if not args.trend:
            print("gate: need a trace/receipt path or --trend METRIC",
                  file=sys.stderr)
            return 2
        return _gate_trend(args)
    rc = _gate_trace(args)
    if rc == 0 and args.trend:
        rc = _gate_trend(args)
    return rc


def _gate_trace(args) -> int:
    # benchmark receipts with embedded gates (e.g. BENCH_force.json)
    # are judged self-contained: summary vs. the receipt's own bounds
    try:
        doc = json.loads(Path(args.trace).read_text())
    except (json.JSONDecodeError, UnicodeDecodeError):
        doc = None
    if isinstance(doc, dict) and "gates" in doc:
        summary = doc.get("summary", doc)
        failures, rows = compare_to_baseline(summary, doc)
        print(_table(f"Receipt gate {args.trace}",
                     ["metric", "measured", "bound", "status"], rows))
        if failures:
            print(f"\nGATE FAILED: {', '.join(failures)}", file=sys.stderr)
            return 1
        print("\ngate passed: all receipt bounds hold")
        return 0
    records = read_jsonl(args.trace)
    threshold = SEVERITIES.index(args.severity)
    tripped = [
        r for r in records
        if r.get("type") == "health"
        and r.get("severity") in SEVERITIES
        and SEVERITIES.index(r["severity"]) >= threshold
    ]
    print(health_timeline(records))
    if tripped:
        print(
            f"\nGATE FAILED: {len(tripped)} event(s) at severity"
            f" >= {args.severity}",
            file=sys.stderr,
        )
        return 1
    print(f"\ngate passed: no events at severity >= {args.severity}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro-diag",
        description="Render and gate health traces from monitored runs.",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="health timeline + run summary")
    p.add_argument("trace", help="JSONL trace from a monitored run")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("baseline", help="freeze a run summary into gates")
    p.add_argument("trace")
    p.add_argument("-o", "--output", required=True, help="baseline JSON path")
    p.add_argument("--margin", type=float, default=1.5,
                   help="gate = measured x margin (default 1.5)")
    p.set_defaults(func=_cmd_baseline)

    p = sub.add_parser("check", help="compare a run against stored gates")
    p.add_argument("trace")
    p.add_argument("--baseline", required=True, help="baseline (or BENCH_*.json)")
    p.add_argument("--margin", type=float, default=1.0,
                   help="extra factor applied to raw-benchmark baselines")
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser(
        "gate",
        help="fail on health events at a severity, judge a benchmark "
             "receipt (JSON with embedded 'gates') against its own bounds, "
             "or judge a run-registry metric trend (--trend)",
    )
    p.add_argument("trace", nargs="?", default=None,
                   help="trace/receipt path (optional with --trend)")
    p.add_argument("--severity", choices=SEVERITIES, default="error")
    p.add_argument("--trend", metavar="METRIC", default=None,
                   help="also gate this run-registry metric against its "
                        "last-N trajectory (e.g. wall_per_step_s)")
    p.add_argument("--obs-dir", default=None,
                   help="observe registry dir (default: REPRO_OBS_DIR "
                        "or .repro_obs)")
    p.add_argument("--trend-kind", default=None,
                   help="restrict the trend series to one record kind "
                        "(simulation_run / pipeline_stage / bench)")
    p.add_argument("--trend-window", type=int, default=5,
                   help="baseline window: last N records before the "
                        "newest (default 5)")
    p.set_defaults(func=_cmd_gate)
    return ap


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
