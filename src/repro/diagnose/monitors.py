"""Health events and the physics monitors that emit them.

The paper buys correctness with machinery whose failure is *quiet*:
the absolute-error MAC (§2.2.2) bounds each interaction, symplectic
integration (§2.3) conserves the Layzer-Irvine integral, and mutual
gravity conserves total momentum exactly (Dehnen 2000) — but nothing
in a running simulation says so unless something watches.  Each
monitor here observes one conserved quantity (or invariant) per step,
classifies the drift against configurable warn/error thresholds, and
reports structured :class:`HealthEvent` records that stream through
the same JSONL sink as the per-step records.

Monitors follow one protocol: ``start(ctx)`` once after the pre-loop
force evaluation, ``check(ctx)`` per step returning a list of events,
``summary()`` at the end.  A :class:`HealthContext` carries the live
simulation object; monitors read state, never mutate it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "SEVERITIES",
    "HealthError",
    "HealthEvent",
    "HealthContext",
    "Monitor",
    "LayzerIrvineMonitor",
    "MomentumMonitor",
    "StateGuard",
]

#: severity order: events escalate left to right
SEVERITIES = ("info", "warn", "error")


class HealthError(RuntimeError):
    """Fail-fast health failure (non-finite state, guard tripped).

    Carries the snapshot path written before raising so the corrupted
    state can be inspected instead of silently reaching a checkpoint.
    """

    def __init__(self, message: str, snapshot: str | None = None):
        super().__init__(message)
        self.snapshot = snapshot


@dataclass
class HealthEvent:
    """One classified observation from one monitor."""

    monitor: str
    severity: str  # one of SEVERITIES
    message: str
    value: float | None = None
    threshold: float | None = None
    step: int | None = None
    a: float | None = None

    def to_record(self) -> dict:
        """The structured JSONL record (``type: "health"``)."""
        rec = {"type": "health", "monitor": self.monitor, "severity": self.severity,
               "message": self.message}
        for key in ("value", "threshold", "step", "a"):
            v = getattr(self, key)
            if v is not None:
                rec[key] = v
        return rec


@dataclass
class HealthContext:
    """What monitors see each step: the live simulation and step state."""

    sim: object
    step: int
    acc: np.ndarray | None = None
    record: object | None = None

    @property
    def a(self) -> float:
        return float(self.sim.particles.a)


def classify(value: float, warn: float, error: float) -> str:
    """Severity of ``value`` against warn/error thresholds (info if below).

    A non-finite value is always ``"error"`` — NaN compares False
    against any threshold and must not slip through as healthy.
    """
    if not np.isfinite(value):
        return "error"
    if error > 0 and value > error:
        return "error"
    if warn > 0 and value > warn:
        return "warn"
    return "info"


class Monitor:
    """Base monitor: subclasses set ``name`` and implement ``check``."""

    name = "monitor"

    def start(self, ctx: HealthContext) -> list[HealthEvent]:
        return []

    def check(self, ctx: HealthContext) -> list[HealthEvent]:
        return []

    def summary(self) -> dict:
        return {}

    def _event(self, ctx, severity, message, value=None, threshold=None) -> HealthEvent:
        return HealthEvent(
            monitor=self.name, severity=severity, message=message,
            value=None if value is None else float(value),
            threshold=None if threshold is None else float(threshold),
            step=ctx.step, a=ctx.a,
        )


class LayzerIrvineMonitor(Monitor):
    """Per-step budget on the Layzer-Irvine (cosmic energy) drift.

    The driver accumulates ``T + W + ∫(da/a)(2T + W)``, which exact
    forces and exact integration keep constant; its drift measures the
    combined force + integration error (§2.3).  The drift is normalized
    by ``max(|T|, |W|)`` so the budget is scale-free.
    """

    name = "layzer_irvine"

    def __init__(self, warn: float = 0.05, error: float = 0.5):
        self.warn = float(warn)
        self.error = float(error)
        self._li0: float | None = None
        self.max_drift = 0.0

    def check(self, ctx: HealthContext) -> list[HealthEvent]:
        rec = ctx.record
        if rec is None or not getattr(ctx.sim.config, "track_energy", False):
            return []
        li = float(rec.layzer_irvine)
        if self._li0 is None:
            self._li0 = li
            return []
        scale = max(abs(float(rec.kinetic)), abs(float(rec.potential)), 1e-30)
        drift = abs(li - self._li0) / scale
        self.max_drift = max(self.max_drift, drift)
        sev = classify(drift, self.warn, self.error)
        return [self._event(
            ctx, sev,
            f"Layzer-Irvine drift {drift:.3e} of max(|T|,|W|)",
            value=drift, threshold=self.warn,
        )]

    def summary(self) -> dict:
        return {"max_drift": self.max_drift, "warn": self.warn, "error": self.error}


class MomentumMonitor(Monitor):
    """Total-momentum and center-of-mass drift.

    Mutual pairwise interactions conserve total canonical momentum
    *exactly* (Dehnen 2000); a one-sided tree approximation does not,
    so the drift is a direct, cheap proxy for force error.  The
    center-of-mass track accumulates mass-weighted minimum-image
    displacements (robust against periodic wrapping) and should stay
    put when total momentum stays zero.
    """

    name = "momentum"

    def __init__(self, warn: float = 1e-3, error: float = 5e-2,
                 com_warn: float = 1e-3, com_error: float = 5e-2):
        self.warn = float(warn)
        self.error = float(error)
        self.com_warn = float(com_warn)
        self.com_error = float(com_error)
        self._p0: np.ndarray | None = None
        self._prev_pos: np.ndarray | None = None
        self._com_shift = np.zeros(3)
        self.max_drift = 0.0
        self.max_com_drift = 0.0

    def start(self, ctx: HealthContext) -> list[HealthEvent]:
        ps = ctx.sim.particles
        self._p0 = ps.momentum_total().copy()
        self._prev_pos = ps.pos.copy()
        return []

    def check(self, ctx: HealthContext) -> list[HealthEvent]:
        ps = ctx.sim.particles
        if self._p0 is None:
            return self.start(ctx)
        p = ps.momentum_total()
        scale = max(float(np.abs(ps.mass[:, None] * ps.mom).sum()), 1e-30)
        drift = float(np.abs(p - self._p0).max()) / scale
        self.max_drift = max(self.max_drift, drift)
        events = [self._event(
            ctx, classify(drift, self.warn, self.error),
            f"total momentum drift {drift:.3e} (relative)",
            value=drift, threshold=self.warn,
        )]
        # center of mass via minimum-image displacements since last step
        d = ps.pos - self._prev_pos
        d -= np.round(d)
        w = ps.mass / max(ps.total_mass, 1e-300)
        self._com_shift += w @ d
        self._prev_pos = ps.pos.copy()
        com = float(np.abs(self._com_shift).max())  # box units
        self.max_com_drift = max(self.max_com_drift, com)
        events.append(self._event(
            ctx, classify(com, self.com_warn, self.com_error),
            f"center-of-mass drift {com:.3e} box lengths",
            value=com, threshold=self.com_warn,
        ))
        return events

    def summary(self) -> dict:
        return {"max_drift": self.max_drift, "max_com_drift": self.max_com_drift,
                "warn": self.warn, "error": self.error}


class StateGuard(Monitor):
    """NaN/overflow guard on positions, momenta and accelerations.

    A non-finite value anywhere is unrecoverable — integrating it
    forward corrupts every subsequent state and, worse, the next
    checkpoint.  The guard writes a diagnostic snapshot (``.npz`` with
    the full particle state and acceleration) and arms a
    :class:`HealthError` that the driver raises *after* streaming the
    event, so the trace records why the run died.
    """

    name = "state_guard"

    def __init__(self, snapshot_dir: str | Path = "."):
        self.snapshot_dir = Path(snapshot_dir)
        self.fatal: HealthError | None = None
        self.checks = 0

    def _scan(self, ctx: HealthContext) -> list[str]:
        ps = ctx.sim.particles
        bad = []
        for label, arr in (("pos", ps.pos), ("mom", ps.mom), ("acc", ctx.acc)):
            if arr is None:
                continue
            if not np.isfinite(arr).all():
                n = int(np.count_nonzero(~np.isfinite(arr)))
                bad.append(f"{label}: {n} non-finite")
        return bad

    def _snapshot(self, ctx: HealthContext) -> str:
        ps = ctx.sim.particles
        self.snapshot_dir.mkdir(parents=True, exist_ok=True)
        path = self.snapshot_dir / f"health_snapshot_step{ctx.step:05d}.npz"
        np.savez_compressed(
            path, pos=ps.pos, mom=ps.mom, mass=ps.mass, ids=ps.ids,
            acc=ctx.acc if ctx.acc is not None else np.empty((0, 3)),
            a=ps.a, a_mom=ps.a_mom, step=ctx.step,
        )
        return str(path)

    def _check(self, ctx: HealthContext) -> list[HealthEvent]:
        self.checks += 1
        bad = self._scan(ctx)
        if not bad:
            return []
        snap = self._snapshot(ctx)
        msg = f"non-finite state ({'; '.join(bad)}); snapshot: {snap}"
        self.fatal = HealthError(msg, snapshot=snap)
        return [self._event(ctx, "error", msg, value=1.0)]

    start = _check
    check = _check

    def summary(self) -> dict:
        return {"checks": self.checks, "tripped": self.fatal is not None}
