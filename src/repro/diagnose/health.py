"""Health orchestration: configuration, the monitor set, the no-op default.

Mirrors the tracer contract of :mod:`repro.instrument`: the default is
:data:`NULL_HEALTH`, whose hooks return an empty tuple — a disabled
run pays one attribute test per step and nothing else (no monitor
objects, no array copies).  A :class:`HealthMonitor` built from a
:class:`HealthConfig` runs every enabled monitor per step, collects
their events, and arms a fail-fast :class:`~.monitors.HealthError`
when the state guard trips (the driver raises it *after* streaming the
event so the trace records the cause of death).
"""

from __future__ import annotations

from dataclasses import dataclass

from .monitors import (
    HealthContext,
    HealthError,
    HealthEvent,
    LayzerIrvineMonitor,
    MomentumMonitor,
    StateGuard,
)
from .probe import ForceErrorProbe
from .structural import (
    ExecutorBalanceMonitor,
    InteractionDriftMonitor,
    RecoveryMonitor,
    TreeShapeMonitor,
)

__all__ = ["HealthConfig", "NullHealth", "NULL_HEALTH", "HealthMonitor", "make_health"]


@dataclass
class HealthConfig:
    """Thresholds and switches for the in-situ health monitors.

    All drift thresholds are relative (see the individual monitors for
    the normalization); probe thresholds are multiples of the MAC
    budget (the solver's ``errtol``).
    """

    enabled: bool = True
    # Layzer-Irvine energy budget (fraction of max(|T|, |W|))
    li_warn: float = 0.05
    li_error: float = 0.5
    # momentum / center-of-mass drift
    momentum_warn: float = 1e-3
    momentum_error: float = 5e-2
    com_warn: float = 1e-3
    com_error: float = 5e-2
    # NaN/overflow fail-fast guard
    guard: bool = True
    snapshot_dir: str = "."
    # sampled force-error probe (0 = off: it costs O(samples x N))
    probe_interval: int = 0
    probe_samples: int = 8
    probe_warn: float = 1.0
    probe_error: float = 10.0
    probe_seed: int = 20131117
    # structural monitors
    structure: bool = True
    occupancy_factor_warn: float = 4.0
    depth_warn: int = 21
    imbalance_warn: float = 0.5
    imbalance_error: float = 2.0
    interaction_jump_warn: float = 3.0
    #: also stream info-severity events (warn/error always stream)
    emit_info: bool = False


class NullHealth:
    """The zero-cost default: no monitors, no events, never fatal."""

    enabled = False
    fatal = None

    def on_init(self, sim, acc):
        return ()

    def on_step(self, sim, record, acc):
        return ()

    def summary(self) -> dict:
        return {}


NULL_HEALTH = NullHealth()


class HealthMonitor:
    """The enabled path: run every configured monitor per step."""

    enabled = True

    def __init__(self, config: HealthConfig | None = None):
        self.config = c = config or HealthConfig()
        self.monitors = []
        if c.guard:
            self.monitors.append(StateGuard(snapshot_dir=c.snapshot_dir))
        self.monitors.append(LayzerIrvineMonitor(warn=c.li_warn, error=c.li_error))
        self.monitors.append(MomentumMonitor(
            warn=c.momentum_warn, error=c.momentum_error,
            com_warn=c.com_warn, com_error=c.com_error,
        ))
        if c.probe_interval > 0:
            self.monitors.append(ForceErrorProbe(
                interval=c.probe_interval, n_samples=c.probe_samples,
                warn_factor=c.probe_warn, error_factor=c.probe_error,
                seed=c.probe_seed,
            ))
        if c.structure:
            self.monitors.append(TreeShapeMonitor(
                occupancy_factor=c.occupancy_factor_warn, depth_warn=c.depth_warn,
            ))
            self.monitors.append(ExecutorBalanceMonitor(
                warn=c.imbalance_warn, error=c.imbalance_error,
            ))
            self.monitors.append(InteractionDriftMonitor(
                jump_factor=c.interaction_jump_warn,
            ))
            self.monitors.append(RecoveryMonitor())
        self.events_seen = {"info": 0, "warn": 0, "error": 0}
        self.fatal: HealthError | None = None
        self._steps = 0

    # ----- driver hooks ---------------------------------------------------------
    def _run(self, hook: str, ctx: HealthContext) -> list[HealthEvent]:
        out = []
        for mon in self.monitors:
            for ev in getattr(mon, hook)(ctx):
                self.events_seen[ev.severity] = self.events_seen.get(ev.severity, 0) + 1
                if ev.severity != "info" or self.config.emit_info:
                    out.append(ev)
            tripped = getattr(mon, "fatal", None)
            if tripped is not None and self.fatal is None:
                self.fatal = tripped
        return out

    def on_init(self, sim, acc) -> list[HealthEvent]:
        """After the pre-loop force evaluation (step 0 baselines)."""
        return self._run("start", HealthContext(sim=sim, step=0, acc=acc))

    def on_step(self, sim, record, acc) -> list[HealthEvent]:
        self._steps += 1
        return self._run(
            "check", HealthContext(sim=sim, step=self._steps, acc=acc, record=record)
        )

    # ----- reading --------------------------------------------------------------
    def summary(self) -> dict:
        """Run-level health rollup (JSON-ready; lands in ``run_totals``)."""
        return {
            "steps": self._steps,
            "events": dict(self.events_seen),
            "fatal": str(self.fatal) if self.fatal is not None else None,
            "monitors": {m.name: m.summary() for m in self.monitors},
        }


def make_health(spec) -> "HealthMonitor | NullHealth":
    """Normalize a health spec: None/False -> the no-op singleton,
    a :class:`HealthConfig` -> a fresh monitor, a monitor -> itself."""
    if spec is None or spec is False:
        return NULL_HEALTH
    if isinstance(spec, (HealthMonitor, NullHealth)):
        return spec
    if spec is True:
        return HealthMonitor(HealthConfig())
    if isinstance(spec, HealthConfig):
        return HealthMonitor(spec) if spec.enabled else NULL_HEALTH
    raise TypeError(f"cannot build a health monitor from {type(spec).__name__}")
