"""Structural monitors: tree shape, executor balance, interaction drift.

Valdarnini 2003 makes the case that treecode pathologies — degenerate
tree shapes, load imbalance, interaction-count blowups — have to be
measured continuously, not discovered post-mortem.  These monitors
watch the *mechanism* rather than the physics: the tree the solver
just built, the worker-pool balance of the last force call, and the
step-over-step interaction count the MAC produced.
"""

from __future__ import annotations

import numpy as np

from .monitors import HealthContext, HealthEvent, Monitor, classify

__all__ = [
    "tree_shape_stats",
    "TreeShapeMonitor",
    "ExecutorBalanceMonitor",
    "InteractionDriftMonitor",
    "RecoveryMonitor",
]


def tree_shape_stats(tree) -> dict:
    """Leaf occupancy and depth distribution of one built tree.

    Cheap (a few NumPy passes over the cell arrays); the returned dict
    is JSON-ready and doubles as the monitor's raw observation.
    """
    leaves = tree.leaf_indices
    counts = tree.cell_count[leaves]
    levels = tree.cell_level[leaves]
    ghosts = int(np.count_nonzero(tree.cell_is_ghost))
    lvl, nlvl = np.unique(tree.cell_level, return_counts=True)
    return {
        "n_cells": int(tree.n_cells),
        "n_leaves": int(len(leaves)),
        "n_ghosts": ghosts,
        "max_level": int(tree.cell_level.max()),
        "leaf_occupancy_mean": float(counts.mean()) if len(counts) else 0.0,
        "leaf_occupancy_max": int(counts.max()) if len(counts) else 0,
        "leaf_level_mean": float(levels.mean()) if len(levels) else 0.0,
        "cells_per_level": {int(k): int(v) for k, v in zip(lvl, nlvl)},
    }


class TreeShapeMonitor(Monitor):
    """Warn on degenerate trees: overfull leaves or runaway depth.

    A real leaf holding more than ``occupancy_factor * nleaf`` bodies
    means the build hit its depth cap on coincident/clustered points
    (the split rule otherwise guarantees <= nleaf), and depth past
    ``depth_warn`` makes traversals pathological.
    """

    name = "tree_shape"

    def __init__(self, occupancy_factor: float = 4.0, depth_warn: int = 21):
        self.occupancy_factor = float(occupancy_factor)
        self.depth_warn = int(depth_warn)
        self.last: dict = {}

    def check(self, ctx: HealthContext) -> list[HealthEvent]:
        tree = getattr(getattr(ctx.sim, "_solver", None), "last_tree", None)
        if tree is None:
            return []
        stats = tree_shape_stats(tree)
        self.last = stats
        events = []
        cap = self.occupancy_factor * tree.nleaf
        if stats["leaf_occupancy_max"] > cap:
            events.append(self._event(
                ctx, "warn",
                f"leaf holds {stats['leaf_occupancy_max']} bodies "
                f"(> {self.occupancy_factor:g} x nleaf={tree.nleaf}: depth-capped split)",
                value=stats["leaf_occupancy_max"], threshold=cap,
            ))
        if stats["max_level"] > self.depth_warn:
            events.append(self._event(
                ctx, "warn",
                f"tree depth {stats['max_level']} exceeds {self.depth_warn}",
                value=stats["max_level"], threshold=self.depth_warn,
            ))
        return events

    def summary(self) -> dict:
        return dict(self.last)


class ExecutorBalanceMonitor(Monitor):
    """Shard load imbalance of the worker pool (``stats["executor"]``).

    The executor reports ``max(busy)/mean(busy) - 1`` per force call;
    sustained imbalance means the particle-count-balanced shards no
    longer track traversal cost (deep clustering) and the shard
    granularity should rise.
    """

    name = "executor_balance"

    def __init__(self, warn: float = 0.5, error: float = 2.0):
        self.warn = float(warn)
        self.error = float(error)
        self.max_imbalance = 0.0

    def check(self, ctx: HealthContext) -> list[HealthEvent]:
        ex = getattr(ctx.sim, "last_stats", {}).get("executor")
        if not ex:
            return []
        imb = float(ex.get("load_imbalance", 0.0))
        self.max_imbalance = max(self.max_imbalance, imb)
        sev = classify(imb, self.warn, self.error)
        if sev == "info":
            return [self._event(
                ctx, "info", f"executor load imbalance {imb:.3f}",
                value=imb, threshold=self.warn,
            )]
        return [self._event(
            ctx, sev,
            f"executor load imbalance {imb:.3f} across "
            f"{ex.get('workers', '?')} workers",
            value=imb, threshold=self.warn,
        )]

    def summary(self) -> dict:
        return {"max_imbalance": self.max_imbalance, "warn": self.warn}


class RecoveryMonitor(Monitor):
    """Worker-pool self-healing activity (``stats["executor"]``).

    The executor recovers from worker deaths, shard errors and pool
    hangs transparently — the force result is unchanged — but each
    recovery costs wall clock and signals trouble (a flaky node, an
    OOM-prone worker).  Surface every recovery as a warn event, and
    escalate to error when the pool gives up and degrades to serial.
    """

    name = "executor_recovery"

    def __init__(self):
        self.total = 0
        self.by_kind: dict[str, int] = {}
        self.degraded = False

    def start(self, ctx: HealthContext) -> list[HealthEvent]:
        # the init force call can already need a recovery
        return self.check(ctx)

    def check(self, ctx: HealthContext) -> list[HealthEvent]:
        # read the executor's cumulative log, not the per-call stats: a
        # solver may run the pool several times per force evaluation
        ex = getattr(getattr(ctx.sim, "_solver", None), "_executor", None)
        if ex is None:
            return []
        events = []
        recoveries = list(getattr(ex, "recoveries", ()))
        for r in recoveries[self.total:]:
            kind = r.get("kind", "unknown")
            self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
            detail = {k: v for k, v in r.items() if k != "kind"}
            events.append(self._event(
                ctx, "warn",
                f"executor recovery: {kind} {detail}" if detail
                else f"executor recovery: {kind}",
                value=len(events) + self.total + 1,
            ))
        self.total = len(recoveries)
        if getattr(ex, "degraded", False) and not self.degraded:
            self.degraded = True
            events.append(self._event(
                ctx, "error",
                "worker pool unrecoverable: degraded to serial execution",
                value=self.total,
            ))
        return events

    def summary(self) -> dict:
        return {
            "recoveries": self.total,
            "by_kind": dict(self.by_kind),
            "degraded": self.degraded,
        }


class InteractionDriftMonitor(Monitor):
    """Step-over-step drift of the interactions-per-particle count.

    The MAC keeps this near-constant for a smoothly evolving box
    (~2000 at errtol 1e-5, §7); a sudden jump means the tree or the
    acceptance criterion went pathological (collapsed cells, broken
    bounds), usually steps before anything shows in the energies.
    """

    name = "interaction_drift"

    def __init__(self, jump_factor: float = 3.0):
        self.jump_factor = float(jump_factor)
        self._prev: float | None = None
        self.max_ratio = 1.0

    def check(self, ctx: HealthContext) -> list[HealthEvent]:
        rec = ctx.record
        ipp = float(getattr(rec, "interactions_per_particle", 0.0) or 0.0) if rec else 0.0
        if ipp <= 0.0:
            return []
        events = []
        if self._prev is not None and self._prev > 0:
            ratio = max(ipp / self._prev, self._prev / ipp)
            self.max_ratio = max(self.max_ratio, ratio)
            if ratio > self.jump_factor:
                events.append(self._event(
                    ctx, "warn",
                    f"interactions/particle jumped x{ratio:.2f} "
                    f"({self._prev:.0f} -> {ipp:.0f})",
                    value=ratio, threshold=self.jump_factor,
                ))
        self._prev = ipp
        return events

    def summary(self) -> dict:
        return {"max_ratio": self.max_ratio, "jump_factor": self.jump_factor}
