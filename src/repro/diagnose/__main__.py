"""``python -m repro.diagnose`` == the ``repro-diag`` CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
