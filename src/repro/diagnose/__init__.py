"""In-situ health monitoring: physics diagnostics, anomaly detection,
run provenance and baseline regression gates.

The correctness counterpart of :mod:`repro.instrument` (which watches
*performance*): monitors observe conserved quantities (Layzer-Irvine
energy, total momentum), audit the MAC's absolute-error budget with a
sampled direct/Ewald force probe, watch the machinery (tree shape,
executor balance, interaction drift), guard against non-finite state
(fail fast with a diagnostic snapshot), and stream classified
``health`` events through the same JSONL sinks.  The default is
:data:`NULL_HEALTH` — disabled monitoring costs nothing, mirroring the
no-op tracer contract.  ``repro-diag`` (:mod:`repro.diagnose.cli`)
renders trace timelines and gates runs against stored baselines;
:mod:`repro.diagnose.manifest` pins run provenance.
"""

from .health import NULL_HEALTH, HealthConfig, HealthMonitor, NullHealth, make_health
from .manifest import build_manifest, config_hash, load_manifest, write_manifest
from .monitors import (
    SEVERITIES,
    HealthContext,
    HealthError,
    HealthEvent,
    LayzerIrvineMonitor,
    Monitor,
    MomentumMonitor,
    StateGuard,
    classify,
)
from .probe import ForceErrorProbe, probe_force_error, reference_accelerations
from .structural import (
    ExecutorBalanceMonitor,
    InteractionDriftMonitor,
    RecoveryMonitor,
    TreeShapeMonitor,
    tree_shape_stats,
)

__all__ = [
    "SEVERITIES",
    "NULL_HEALTH",
    "ExecutorBalanceMonitor",
    "ForceErrorProbe",
    "HealthConfig",
    "HealthContext",
    "HealthError",
    "HealthEvent",
    "HealthMonitor",
    "InteractionDriftMonitor",
    "LayzerIrvineMonitor",
    "Monitor",
    "MomentumMonitor",
    "NullHealth",
    "RecoveryMonitor",
    "StateGuard",
    "TreeShapeMonitor",
    "build_manifest",
    "classify",
    "config_hash",
    "load_manifest",
    "make_health",
    "probe_force_error",
    "reference_accelerations",
    "tree_shape_stats",
    "write_manifest",
]
