"""Sampled in-situ force-error probe (the paper's §5 ladder, in flight).

The treecode promises an *absolute* acceleration error per particle
bounded by ``errtol`` (§2.2.2).  The probe audits that promise while
the run is alive: every few steps it draws a small random particle
subset, recomputes their accelerations with the verification rungs of
:mod:`repro.gravity.direct` / :mod:`repro.gravity.ewald`, and compares
the realized error of the solver's last force call against the MAC
budget.

Reference construction
----------------------
* Open boundaries: direct summation with the solver's softening kernel
  is exact — one :func:`~repro.gravity.direct.direct_accelerations`
  call per sample.
* Periodic boundaries: the background-subtracted treecode solves the
  delta-rho (Ewald) problem, so the reference is the Ewald sum of the
  *unsoftened* kernel plus a softening correction evaluated by two
  minimum-image direct sums::

      a_ref = a_ewald + (a_direct^softened - a_direct^newtonian)

  The correction cancels exactly outside the kernel's near field
  (where minimum image and the full lattice sum agree), so the
  composite is exact to Ewald truncation (~1e-9 with the probe's
  image/mode counts) — far below any useful errtol.

Cost is O(samples x N) per probe, a vanishing fraction of a force
solve for the default 8 samples, and zero when the probe is off.
"""

from __future__ import annotations

import numpy as np

from .monitors import HealthContext, HealthEvent, Monitor, classify

__all__ = [
    "reference_accelerations",
    "force_balance",
    "probe_force_error",
    "ForceErrorProbe",
]


def force_balance(mass: np.ndarray, acc: np.ndarray) -> float:
    """Normalized net-force residual ``|sum m_i a_i| / sum m_i |a_i|``.

    An isolated self-gravitating system must have zero total force
    (Newton's third law), so this ratio sits at the floating-point
    floor (~1e-15 .. 1e-12) when every interaction is evaluated
    mutually — the fmm-hybrid traversal's cell-cell accepts are
    momentum-conserving by construction.  One-sided cell accepts break
    the pairwise symmetry and push the ratio up to the MAC error level.
    Periodic runs add non-mutual lattice/prism corrections, so the
    floor argument only holds for open boundaries without background
    subtraction.
    """
    mass = np.asarray(mass, dtype=np.float64)
    acc = np.asarray(acc, dtype=np.float64)
    net = np.linalg.norm((mass[:, None] * acc).sum(axis=0))
    scale = float((mass * np.linalg.norm(acc, axis=1)).sum())
    return float(net / max(scale, 1e-300))


def _ewald_acc_at(ew, pos, mass, i, block: int = 2048) -> np.ndarray:
    """Ewald acceleration at particle ``i``, blocked over sources."""
    keep = np.arange(len(pos)) != i
    dx = pos[i] - pos[keep]
    m = mass[keep]
    out = np.zeros(3)
    for s in range(0, len(dx), block):
        e = min(s + block, len(dx))
        out += (ew.acceleration_pair(dx[s:e]) * m[s:e, None]).sum(axis=0)
    return out


def reference_accelerations(
    pos: np.ndarray,
    mass: np.ndarray,
    indices: np.ndarray,
    softening=None,
    periodic: bool = False,
    box: float = 1.0,
    G: float = 1.0,
    ewald=None,
) -> np.ndarray:
    """Exact-reference accelerations at ``pos[indices]`` (see module doc)."""
    from ..gravity.direct import direct_accelerations

    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    indices = np.asarray(indices, dtype=np.int64)
    if periodic and ewald is None:
        from ..gravity.ewald import EwaldSummation

        # rmax=2/kmax=4 at alpha*L=2 truncates below ~1e-9 absolute —
        # plenty under any errtol worth probing, and 6x cheaper than
        # the reference-grade defaults
        ewald = EwaldSummation(box=box, rmax=2, kmax=4)
    out = np.empty((len(indices), 3), dtype=np.float64)
    n = len(pos)
    for j, i in enumerate(indices):
        keep = np.arange(n) != i
        src, m = pos[keep], mass[keep]
        tgt = pos[i: i + 1]
        if not periodic:
            out[j] = direct_accelerations(src, m, softening=softening, targets=tgt)[0]
            continue
        a = _ewald_acc_at(ewald, pos, mass, int(i))
        if softening is not None:
            a_soft = direct_accelerations(src, m, softening=softening, box=box, targets=tgt)[0]
            a_newt = direct_accelerations(src, m, softening=None, box=box, targets=tgt)[0]
            a = a + (a_soft - a_newt)
        out[j] = a
    if G != 1.0:
        out *= G
    return out


def _solver_force_setup(solver) -> tuple:
    """(periodic, softening kernel, MAC budget, G) of a force engine."""
    cfg = solver.config
    softener = getattr(solver, "_softening", None)
    if softener is not None:
        kernel = softener()
    else:
        from ..gravity.smoothing import make_softening

        kernel = make_softening(cfg.softening, cfg.eps)
    # TreePM has no `periodic` knob — its PM half is intrinsically periodic
    periodic = bool(getattr(cfg, "periodic", True))
    return periodic, kernel, float(cfg.errtol), float(getattr(cfg, "G", 1.0))


def probe_force_error(
    sim, acc: np.ndarray, n_samples: int = 8, rng=None, ewald=None
) -> dict:
    """Compare ``acc`` (the solver's last field) against the reference
    at a random particle subset; returns the realized-error summary."""
    rng = np.random.default_rng(rng)
    ps = sim.particles
    n = len(ps)
    idx = rng.choice(n, size=min(n_samples, n), replace=False)
    periodic, kernel, budget, G = _solver_force_setup(sim._solver)
    ref = reference_accelerations(
        ps.pos, ps.mass, idx, softening=kernel, periodic=periodic, G=G, ewald=ewald
    )
    err = np.linalg.norm(np.asarray(acc, dtype=np.float64)[idx] - ref, axis=1)
    ref_mag = np.linalg.norm(ref, axis=1)
    return {
        "n_samples": int(len(idx)),
        "max_abs_err": float(err.max()),
        "rms_abs_err": float(np.sqrt((err**2).mean())),
        "max_rel_err": float((err / np.maximum(ref_mag, 1e-300)).max()),
        "mac_budget": budget,
        "periodic": periodic,
        # whole-field momentum-conservation diagnostic (free: no extra
        # reference sums) — see :func:`force_balance`
        "momentum_balance": force_balance(ps.mass, acc),
    }


class ForceErrorProbe(Monitor):
    """Run the probe every ``interval`` steps and grade the realized
    absolute error against the MAC budget (warn/error are multiples of
    ``errtol``; Ewald state is cached across probes)."""

    name = "force_error"

    def __init__(self, interval: int = 4, n_samples: int = 8,
                 warn_factor: float = 1.0, error_factor: float = 10.0,
                 seed: int = 20131117, budget: float | None = None):
        self.interval = max(int(interval), 1)
        self.n_samples = int(n_samples)
        self.warn_factor = float(warn_factor)
        self.error_factor = float(error_factor)
        self.seed = int(seed)
        self.budget = budget
        self._ewald = None
        self.last: dict = {}
        self.max_abs_err = 0.0
        self.max_momentum_balance = 0.0
        self.probes = 0

    def _probe(self, ctx: HealthContext) -> list[HealthEvent]:
        if ctx.acc is None:
            return []
        if self._ewald is None and bool(
            getattr(ctx.sim._solver.config, "periodic", True)
        ):
            from ..gravity.ewald import EwaldSummation

            self._ewald = EwaldSummation(box=1.0, rmax=2, kmax=4)
        res = probe_force_error(
            ctx.sim, ctx.acc, n_samples=self.n_samples,
            rng=np.random.default_rng(self.seed + ctx.step), ewald=self._ewald,
        )
        self.probes += 1
        self.last = res
        self.max_abs_err = max(self.max_abs_err, res["max_abs_err"])
        self.max_momentum_balance = max(
            self.max_momentum_balance, res["momentum_balance"]
        )
        budget = self.budget if self.budget is not None else res["mac_budget"]
        ratio = res["max_abs_err"] / max(budget, 1e-300)
        sev = classify(ratio, self.warn_factor, self.error_factor)
        return [self._event(
            ctx, sev,
            f"sampled force error {res['max_abs_err']:.3e} "
            f"({ratio:.2f} x MAC budget {budget:.1e}, "
            f"{res['n_samples']} samples, "
            f"momentum balance {res['momentum_balance']:.1e})",
            value=res["max_abs_err"], threshold=budget * self.warn_factor,
        )]

    def start(self, ctx: HealthContext) -> list[HealthEvent]:
        return self._probe(ctx)

    def check(self, ctx: HealthContext) -> list[HealthEvent]:
        if ctx.step % self.interval:
            return []
        return self._probe(ctx)

    def summary(self) -> dict:
        return {"probes": self.probes, "max_abs_err": self.max_abs_err,
                "max_momentum_balance": self.max_momentum_balance,
                "last": dict(self.last)}
