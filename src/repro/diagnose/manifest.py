"""Run provenance: a manifest that pins what produced a trace.

§3.4.3 of the paper propagates the code version into every data
product's SDF header; a health-monitored run wants the same discipline
for the whole environment — the exact configuration (hashed, so two
manifests compare in O(1)), package versions, host, RNG seeds — written
alongside the trace so a regression found by ``repro-diag`` can always
be tied back to *what ran*.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import socket
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

__all__ = ["config_hash", "build_manifest", "write_manifest", "load_manifest"]

MANIFEST_VERSION = 1


def _jsonable(obj):
    """Canonical JSON-ready form of configs (dataclasses, numpy, paths)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, Path):
        return str(obj)
    if isinstance(obj, type):
        return obj.__name__
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def config_hash(config) -> str:
    """SHA-256 of the canonical (sorted-key) JSON form of a config."""
    payload = json.dumps(_jsonable(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        return out.stdout.strip() or None if out.returncode == 0 else None
    except Exception:
        return None


def build_manifest(config=None, seeds=None, extra=None) -> dict:
    """Assemble the provenance record (JSON-serializable)."""
    import scipy

    manifest = {
        "type": "manifest",
        "manifest_version": MANIFEST_VERSION,
        "created_unix": time.time(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": _jsonable(config) if config is not None else None,
        "config_sha256": config_hash(config) if config is not None else None,
        "seeds": _jsonable(seeds) if seeds is not None else None,
        "python": sys.version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count(),
        "packages": {"numpy": np.__version__, "scipy": scipy.__version__},
        "env": {k: v for k, v in sorted(os.environ.items()) if k.startswith("REPRO_")},
        "git_commit": _git_commit(),
        "argv": list(sys.argv),
    }
    if extra:
        manifest.update(_jsonable(extra))
    return manifest


def write_manifest(path, config=None, seeds=None, extra=None) -> dict:
    """Build and write the manifest; returns what was written."""
    manifest = build_manifest(config=config, seeds=seeds, extra=extra)
    Path(path).write_text(json.dumps(manifest, indent=1, sort_keys=True))
    return manifest


def load_manifest(path) -> dict:
    return json.loads(Path(path).read_text())
