"""Adaptive hashed oct-tree construction (paper §3.2).

The build is the WS93 recipe, fully vectorized: particles are mapped
to space-filling-curve keys, sorted (so that every cell of the tree is
a *contiguous slice* of the particle arrays), and cells are
materialized level by level by detecting runs of equal key prefixes.
A cell with more than ``nleaf`` bodies is split; its children are the
non-empty octants.

For background subtraction (§2.2.1) the tree can also materialize
*ghost cells* for the empty octants of every split cell: a direct
summation would simply skip empty space, but once the uniform
background is subtracted an empty cube carries (negative) moments that
must be included.  Ghosts are always leaves.

Cells are stored structure-of-arrays; a :class:`~repro.keys.HashTable`
maps keys to cell indices, preserving the "any cell is addressable by
its key" property that gives HOT its name (and that the parallel
request/reply traversal of §3.2 relies on).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..keys import HashTable, KEY_BITS, cell_geometry, keys_from_positions

__all__ = ["Tree", "build_tree"]


@dataclass
class Tree:
    """An adaptive oct-tree over a particle set in [0, box)^3.

    Particle arrays are stored in key-sorted order; ``order`` maps
    sorted index -> original index so results can be unsorted.
    """

    box: float
    nleaf: int
    # particles (sorted by key)
    pos: np.ndarray  # (N, 3)
    mass: np.ndarray  # (N,)
    keys: np.ndarray  # (N,) uint64
    order: np.ndarray  # (N,) original indices
    # cells (SoA)
    cell_key: np.ndarray  # (C,) uint64
    cell_level: np.ndarray  # (C,)
    cell_parent: np.ndarray  # (C,)
    cell_first_child: np.ndarray  # (C,) -1 for leaves
    cell_nchildren: np.ndarray  # (C,)
    cell_start: np.ndarray  # (C,) first particle index
    cell_count: np.ndarray  # (C,) number of particles
    cell_is_ghost: np.ndarray  # (C,) bool
    cell_center: np.ndarray  # (C, 3)
    cell_side: np.ndarray  # (C,)
    hash: HashTable = field(repr=False)

    @property
    def n_particles(self) -> int:
        return len(self.pos)

    @property
    def n_cells(self) -> int:
        return len(self.cell_key)

    @property
    def is_leaf(self) -> np.ndarray:
        return self.cell_first_child < 0

    @property
    def leaf_indices(self) -> np.ndarray:
        """Indices of real (non-ghost) leaf cells, each owning particles."""
        return np.flatnonzero(self.is_leaf & ~self.cell_is_ghost)

    @property
    def max_level(self) -> int:
        return int(self.cell_level.max())

    def cells_at_level(self, level: int) -> np.ndarray:
        return np.flatnonzero(self.cell_level == level)

    def leaf_of_particle(self) -> np.ndarray:
        """Map (sorted) particle index -> owning leaf cell index."""
        leaves = self.leaf_indices
        starts = self.cell_start[leaves]
        order = np.argsort(starts)
        leaves = leaves[order]
        starts = starts[order]
        idx = np.searchsorted(starts, np.arange(self.n_particles), side="right") - 1
        return leaves[idx]

    def validate(self) -> None:
        """Structural invariant checks (used by tests and debugging)."""
        leaves = self.leaf_indices
        counts = self.cell_count[leaves]
        if counts.sum() != self.n_particles:
            raise AssertionError("leaves do not partition the particles")
        # contiguity: sorted leaf ranges tile [0, N)
        leaves_sorted = leaves[np.argsort(self.cell_start[leaves])]
        s = self.cell_start[leaves_sorted]
        c = self.cell_count[leaves_sorted]
        if s[0] != 0 or np.any(s[1:] != (s[:-1] + c[:-1])) or s[-1] + c[-1] != self.n_particles:
            raise AssertionError("leaf ranges are not a partition")
        # children consistency
        internal = np.flatnonzero(~self.is_leaf)
        for i in internal[: min(len(internal), 2048)]:
            fc = self.cell_first_child[i]
            nc = self.cell_nchildren[i]
            kids = np.arange(fc, fc + nc)
            if not np.all(self.cell_parent[kids] == i):
                raise AssertionError("child parent pointers broken")
            real = ~self.cell_is_ghost[kids]
            if self.cell_count[kids][real].sum() != self.cell_count[i]:
                raise AssertionError("child counts do not sum to parent count")


def build_tree(
    pos: np.ndarray,
    mass: np.ndarray,
    box: float = 1.0,
    nleaf: int = 16,
    with_ghosts: bool = False,
) -> Tree:
    """Build the adaptive oct-tree.

    Parameters
    ----------
    pos, mass:
        Particle positions in [0, box)^3 and masses.
    nleaf:
        Maximum bodies per leaf before a cell splits.
    with_ghosts:
        Materialize empty-octant ghost cells (needed for background
        subtraction).
    """
    pos = np.ascontiguousarray(pos, dtype=np.float64)
    mass = np.ascontiguousarray(mass, dtype=np.float64)
    n = len(pos)
    if n == 0:
        raise ValueError("cannot build a tree with no particles")
    if not np.all(np.isfinite(pos)):
        raise ValueError("positions must be finite")
    if np.any(pos < 0.0) or np.any(pos >= box * (1 + 1e-12)):
        raise ValueError("positions must lie in [0, box)^3")
    keys = keys_from_positions(pos, box)
    order = np.argsort(keys, kind="stable")
    skeys = keys[order]
    spos = pos[order]
    smass = mass[order]

    key_l = [np.array([1], dtype=np.uint64)]
    level_l = [np.array([0], dtype=np.int32)]
    parent_l = [np.array([-1], dtype=np.int64)]
    start_l = [np.array([0], dtype=np.int64)]
    count_l = [np.array([n], dtype=np.int64)]
    ghost_l = [np.array([False])]
    first_child = [np.array([-1], dtype=np.int64)]
    nchildren = [np.array([0], dtype=np.int64)]

    n_cells = 1
    if n > nleaf:
        act_start = np.array([0], dtype=np.int64)
        act_end = np.array([n], dtype=np.int64)
        act_id = np.array([0], dtype=np.int64)
    else:
        act_start = np.empty(0, dtype=np.int64)
        act_end = act_start
        act_id = act_start

    for level in range(1, KEY_BITS + 1):
        if len(act_id) == 0:
            break
        shift = np.uint64(3 * (KEY_BITS - level))
        pref = skeys >> shift
        change = np.flatnonzero(pref[1:] != pref[:-1]) + 1
        starts_all = np.concatenate([[0], change]).astype(np.int64)
        ends_all = np.concatenate([change, [n]]).astype(np.int64)
        # keep runs starting inside an active (splitting) parent range
        j = np.searchsorted(act_start, starts_all, side="right") - 1
        valid = j >= 0
        valid[valid] &= starts_all[valid] < act_end[j[valid]]
        starts = starts_all[valid]
        ends = ends_all[valid]
        parents = act_id[j[valid]]

        base = n_cells
        new_keys = pref[starts]
        new_count = ends - starts
        m = len(starts)
        key_l.append(new_keys)
        level_l.append(np.full(m, level, dtype=np.int32))
        parent_l.append(parents)
        start_l.append(starts)
        count_l.append(new_count)
        ghost_l.append(np.zeros(m, dtype=bool))
        first_child.append(np.full(m, -1, dtype=np.int64))
        nchildren.append(np.zeros(m, dtype=np.int64))
        n_cells += m

        # ghosts for missing octants of each split parent
        if with_ghosts:
            upar, inv = np.unique(parents, return_inverse=True)
            present = np.zeros((len(upar), 8), dtype=bool)
            digits = (new_keys & np.uint64(7)).astype(np.int64)
            present[inv, digits] = True
            gp, gd = np.nonzero(~present)
            if len(gp):
                # parent key = (any real child's key) >> 3
                first_of = np.full(len(upar), m, dtype=np.int64)
                np.minimum.at(first_of, inv, np.arange(m))
                parent_keys = new_keys[first_of[gp]] >> np.uint64(3)
                gkeys = (parent_keys << np.uint64(3)) | gd.astype(np.uint64)
                gm = len(gkeys)
                key_l.append(gkeys)
                level_l.append(np.full(gm, level, dtype=np.int32))
                parent_l.append(upar[gp])
                start_l.append(np.zeros(gm, dtype=np.int64))
                count_l.append(np.zeros(gm, dtype=np.int64))
                ghost_l.append(np.ones(gm, dtype=bool))
                first_child.append(np.full(gm, -1, dtype=np.int64))
                nchildren.append(np.zeros(gm, dtype=np.int64))
                n_cells += gm

        split = (new_count > nleaf) & (level < KEY_BITS)
        act_start = starts[split]
        act_end = ends[split]
        act_id = base + np.flatnonzero(split)

    ckey = np.concatenate(key_l)
    clevel = np.concatenate(level_l)
    cparent = np.concatenate(parent_l)
    cstart = np.concatenate(start_l)
    ccount = np.concatenate(count_l)
    cghost = np.concatenate(ghost_l)
    cfirst = np.concatenate(first_child)
    cnchild = np.concatenate(nchildren)

    # children of a given parent are NOT contiguous when ghosts are
    # interleaved; reorder cells so that all children of one parent sit
    # together: sort by (level, key) — same-parent children share a key
    # prefix so (level, key) groups them contiguously and in octant order.
    sort_idx = np.lexsort((ckey, clevel))
    remap = np.empty(len(sort_idx), dtype=np.int64)
    remap[sort_idx] = np.arange(len(sort_idx))
    ckey = ckey[sort_idx]
    clevel = clevel[sort_idx]
    cstart = cstart[sort_idx]
    ccount = ccount[sort_idx]
    cghost = cghost[sort_idx]
    cparent = cparent[sort_idx]
    cparent = np.where(cparent >= 0, remap[cparent], -1)

    # rebuild child pointers from parents
    cfirst = np.full(n_cells, -1, dtype=np.int64)
    cnchild = np.zeros(n_cells, dtype=np.int64)
    has_parent = cparent >= 0
    if np.any(has_parent):
        kids = np.flatnonzero(has_parent)
        pk = cparent[kids]
        # kids are sorted by (level, key): children of one parent are a
        # contiguous run of kids
        firsts = np.ones(len(kids), dtype=bool)
        firsts[1:] = pk[1:] != pk[:-1]
        runs = np.flatnonzero(firsts)
        run_parent = pk[runs]
        run_len = np.diff(np.concatenate([runs, [len(kids)]]))
        cfirst[run_parent] = kids[runs]
        cnchild[run_parent] = run_len

    center, side = cell_geometry(ckey, box)
    ht = HashTable(2 * n_cells)
    ht.insert(ckey, np.arange(n_cells, dtype=np.int64))

    return Tree(
        box=box,
        nleaf=nleaf,
        pos=spos,
        mass=smass,
        keys=skeys,
        order=order,
        cell_key=ckey,
        cell_level=clevel,
        cell_parent=cparent,
        cell_first_child=cfirst,
        cell_nchildren=cnchild,
        cell_start=cstart,
        cell_count=ccount,
        cell_is_ghost=cghost,
        cell_center=center,
        cell_side=side,
        hash=ht,
    )
