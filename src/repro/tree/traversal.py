"""Batched dual-tree traversal with the absolute-error MAC (paper §3.2-3.3).

Two walks produce interaction lists for the same MAC:

* :func:`traverse` — the original *per-sink-leaf* walk: every sink
  leaf (block of up to ``nleaf`` particles, the m x n blocking of
  §3.3) runs its own root-to-leaf source descent.  Simple, but MAC
  tests scale like O(n_leaves · log N) because nearby sink leaves make
  nearly identical accept/split decisions.

* :func:`traverse_hierarchical` — the sink-hierarchical *dual* walk
  (Dehnen's O(N) amortization, astro-ph/0202512, applied to the 2HOT
  MAC): the frontier holds (sink *cell*, source cell, image offset)
  triples starting from (root, root).  The MAC is tested against the
  whole sink cell with d_eff = |x_sink - x_src| - b_max(sink cell),
  which lower-bounds the distance from *every* particle under the sink
  cell to the source, so an accept at an interior sink cell is
  conservative for all descendants and the §2.2.2 error bound holds
  unchanged.  Accepted interactions are recorded at the interior sink
  cell and pushed down to the sink leaves by a vectorized inheritance
  pass; undecided pairs refine on the sink or source side (the side
  with the larger b_max splits).  Distant periodic images resolve in
  O(1) pairs at the root instead of O(n_leaves) — with background
  subtraction the root monopole vanishes and all 26 ws=1 images are
  accepted in the first rounds.

The frontier is processed breadth-first with vectorized accept /
direct / split decisions; seeding with the 3^3 or 5^3 periodic image
offsets of the root reproduces the paper's ws = 1 / ws = 2 near-image
handling (§2.4).

Outputs are :class:`InteractionLists` consumed by
:mod:`repro.gravity.treeforce`:

* ``cell_pairs``   — (sink leaf, source cell, offset) multipole interactions,
* ``leaf_pairs``   — (sink leaf, source leaf, offset) particle-particle blocks,
* ``ghost_pairs``  — (sink leaf, ghost cell, offset) near-field analytic
  background cubes (only in background-subtraction mode),
* ``m2l_pairs``    — (sink *cell*, source cell, offset) mutual cell–cell
  accepts feeding sink-side Taylor local expansions (``m2l=True``, the
  ``traversal="fmm-hybrid"`` mode; Dehnen astro-ph/0202512).  Keyed by
  sink cell — interior or leaf — and translated down to particles by
  the L2L/L2P machinery in :mod:`repro.gravity.localexp`.

The hierarchical walk additionally emits the lists in **CSR form**:
each family is sorted by sink leaf (rows follow ``sink_leaves``, which
is in SFC/particle order) with ``*_indptr`` arrays delimiting each
leaf's segment, so the evaluator can replace scatter-adds with
contiguous per-sink segment reductions.

Restricted traversals (the ``sink_leaves`` parameter, used by the
shard executor and the simulated ranks) run the *same* walk from the
global root with sink descent masked to cells containing selected
leaves.  Decisions are pure functions of (sink cell, source cell,
offset), so every decision a restricted walk makes is identical to the
decision the full walk makes for that pair — per-leaf CSR segments
(contents *and* order) are independent of the sharding, which is what
keeps the executor's disjoint-slice merge bit-identical at any worker
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..util import expand_ranges
from .moments import TreeMoments
from .structure import Tree

__all__ = [
    "InteractionLists",
    "traverse",
    "traverse_hierarchical",
    "traverse_lists",
    "filter_csr_indptr",
]


@dataclass
class InteractionLists:
    """Flat interaction lists plus bookkeeping counters.

    When produced by :func:`traverse_hierarchical` the three families
    are sorted by sink leaf (row order = ``sink_leaves``) and the
    ``*_indptr`` arrays hold the CSR row ranges; the per-leaf walk
    leaves them ``None``.
    """

    sink_leaves: np.ndarray  # all sink leaf cell indices traversed
    offsets: np.ndarray  # (n_off, 3) image offsets used
    cell_sink: np.ndarray
    cell_src: np.ndarray
    cell_off: np.ndarray
    leaf_sink: np.ndarray
    leaf_src: np.ndarray
    leaf_off: np.ndarray
    ghost_sink: np.ndarray
    ghost_src: np.ndarray
    ghost_off: np.ndarray
    rounds: int = 0
    # CSR row ranges over sink_leaves (hierarchical walk only)
    cell_indptr: np.ndarray | None = None
    leaf_indptr: np.ndarray | None = None
    ghost_indptr: np.ndarray | None = None
    # mutual cell-cell accepts (fmm-hybrid walk only): CSR keyed by sink
    # *cell* (interior or leaf), rows follow m2l_cells in ascending cell
    # index; each row's segment lists (source cell, image offset) pairs
    # absorbed into that sink cell's local expansion
    m2l_cells: np.ndarray | None = None
    m2l_src: np.ndarray | None = None
    m2l_off: np.ndarray | None = None
    m2l_indptr: np.ndarray | None = None
    # traversal-cost counters
    mac_tests: int = 0
    frontier_peak: int = 0
    inherited_accepts: int = 0  # accepts recorded at interior sink cells
    leaf_accepts: int = 0  # accepts recorded at sink leaves
    m2l_accepts: int = 0  # mutual cell-cell accepts (per direction)

    def n_cell_interactions(self, tree: Tree) -> int:
        """Total (particle, cell-multipole) interaction count."""
        return int(tree.cell_count[self.cell_sink].sum())

    def n_pp_interactions(self, tree: Tree) -> int:
        """Total particle-particle interaction count."""
        return int(
            (tree.cell_count[self.leaf_sink] * tree.cell_count[self.leaf_src]).sum()
        )

    def n_prism_interactions(self, tree: Tree) -> int:
        """Total (particle, analytic background cube) interaction count."""
        return int(tree.cell_count[self.ghost_sink].sum())

    def n_m2l_interactions(self, tree: Tree) -> int:
        """M2L pair translations plus one L2P per sink particle.

        Counts each cell-to-local translation once and adds one
        local-to-particle evaluation per particle under a sink leaf —
        the actual work units of the far-field path, comparable to the
        per-particle counts of the other families.
        """
        if self.m2l_src is None or len(self.m2l_src) == 0:
            return 0
        return int(len(self.m2l_src)) + int(
            tree.cell_count[self.sink_leaves].sum()
        )

    def interactions_per_particle(self, tree: Tree) -> float:
        n = max(tree.n_particles, 1)
        return (
            self.n_cell_interactions(tree)
            + self.n_pp_interactions(tree)
            + self.n_prism_interactions(tree)
            + self.n_m2l_interactions(tree)
        ) / n


def _image_offsets(box: float, ws: int) -> np.ndarray:
    r = np.arange(-ws, ws + 1)
    gx, gy, gz = np.meshgrid(r, r, r, indexing="ij")
    off = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1).astype(np.float64)
    # put the home image first (cosmetic, helps debugging)
    order = np.argsort(np.einsum("ij,ij->i", off, off), kind="stable")
    return off[order] * box


def filter_csr_indptr(indptr: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Row pointer of a CSR list after masking entries with ``keep``."""
    seg = np.repeat(np.arange(len(indptr) - 1), np.diff(indptr))
    counts = np.bincount(seg[keep], minlength=len(indptr) - 1)
    out = np.zeros(len(indptr), dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


def traverse(
    tree: Tree,
    moms: TreeMoments,
    periodic: bool = False,
    ws: int = 1,
    sink_leaves: np.ndarray | None = None,
    xmax: float = 0.6,
) -> InteractionLists:
    """Compute interaction lists for all (or selected) sink leaves.

    Parameters
    ----------
    periodic:
        Include the (2 ws + 1)^3 periodic images of the source tree.
    sink_leaves:
        Restrict to these sink leaf cell indices (default: all real
        leaves) — used by the parallel traversal to walk one domain.
    xmax:
        Cap on the expansion parameter x = b_max/d: a cell is never
        accepted by the MAC when x would exceed this, whatever the
        error estimate says.  Moment-norm estimates are blind to
        pathologically cancelling cells at close range (the §2.2.1
        near-field breakdown), so interactions with slowly-converging
        expansions always go to the split/direct path; the series tail
        is then geometrically controlled by xmax.
    """
    if sink_leaves is None:
        sink_leaves = tree.leaf_indices
    sinks = np.asarray(sink_leaves, dtype=np.int64)
    offsets = (
        _image_offsets(tree.box, ws) if periodic else np.zeros((1, 3), dtype=np.float64)
    )

    n_off = len(offsets)
    f_sink = np.repeat(sinks, n_off)
    f_src = np.zeros(len(f_sink), dtype=np.int64)  # root cell index is 0
    root = int(np.flatnonzero(tree.cell_level == 0)[0])
    f_src[:] = root
    f_off = np.tile(np.arange(n_off, dtype=np.int64), len(sinks))

    acc_sink, acc_src, acc_off = [], [], []
    leaf_sink, leaf_src, leaf_off = [], [], []
    ghost_sink, ghost_src, ghost_off = [], [], []

    cell_center = tree.cell_center
    sink_bmax = moms.bmax
    is_leaf = tree.is_leaf
    is_ghost = tree.cell_is_ghost
    rounds = 0
    mac_tests = 0
    frontier_peak = 0
    while len(f_sink):
        rounds += 1
        mac_tests += len(f_sink)
        frontier_peak = max(frontier_peak, len(f_sink))
        src_bmax = moms.bmax[f_src]
        src_rcrit = moms.r_crit[f_src]
        d = cell_center[f_sink] - (cell_center[f_src] + offsets[f_off])
        dist = np.sqrt(np.einsum("ij,ij->i", d, d))
        d_eff = dist - sink_bmax[f_sink]
        accept = (d_eff > src_rcrit) & (src_bmax < xmax * d_eff)
        # never "accept" a sink's own home-image self cell via MAC with a
        # degenerate zero distance; d_eff <= 0 there so accept is False.
        src_leaf = is_leaf[f_src]
        direct = ~accept & src_leaf

        if np.any(accept):
            sel = accept
            acc_sink.append(f_sink[sel])
            acc_src.append(f_src[sel])
            acc_off.append(f_off[sel])
        if np.any(direct):
            sel = direct
            ghosts = is_ghost[f_src[sel]]
            if np.any(ghosts):
                ghost_sink.append(f_sink[sel][ghosts])
                ghost_src.append(f_src[sel][ghosts])
                ghost_off.append(f_off[sel][ghosts])
            real = ~ghosts
            if np.any(real):
                leaf_sink.append(f_sink[sel][real])
                leaf_src.append(f_src[sel][real])
                leaf_off.append(f_off[sel][real])

        split = ~accept & ~src_leaf
        if not np.any(split):
            break
        parents_src = f_src[split]
        nch = tree.cell_nchildren[parents_src]
        f_sink = np.repeat(f_sink[split], nch)
        f_off = np.repeat(f_off[split], nch)
        first = tree.cell_first_child[parents_src]
        f_src = expand_ranges(first, nch)

    def cat(parts):
        return (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )

    n_leaf_accepts = sum(len(a) for a in acc_sink)
    return InteractionLists(
        sink_leaves=sinks,
        offsets=offsets,
        cell_sink=cat(acc_sink),
        cell_src=cat(acc_src),
        cell_off=cat(acc_off),
        leaf_sink=cat(leaf_sink),
        leaf_src=cat(leaf_src),
        leaf_off=cat(leaf_off),
        ghost_sink=cat(ghost_sink),
        ghost_src=cat(ghost_src),
        ghost_off=cat(ghost_off),
        rounds=rounds,
        mac_tests=mac_tests,
        frontier_peak=frontier_peak,
        inherited_accepts=0,
        leaf_accepts=n_leaf_accepts,
    )


def _sink_relevance(tree: Tree, sinks: np.ndarray | None) -> np.ndarray:
    """Boolean mask over cells: subtree contains >= 1 selected sink leaf.

    With no restriction every real (particle-bearing) cell qualifies;
    ghost cells never do (they are empty and only ever sources).
    """
    if sinks is None:
        return tree.cell_count > 0
    # len(cell_level), not tree.n_cells: worker-side trees drop cell_key
    relevant = np.zeros(len(tree.cell_level), dtype=bool)
    relevant[sinks] = True
    for level in range(tree.max_level - 1, -1, -1):
        cells = tree.cells_at_level(level)
        internal = cells[tree.cell_first_child[cells] >= 0]
        if len(internal) == 0:
            continue
        nch = tree.cell_nchildren[internal]
        kids = expand_ranges(tree.cell_first_child[internal], nch)
        kid_parent = np.repeat(internal, nch)
        np.logical_or.at(relevant, kid_parent, relevant[kids])
    return relevant


def traverse_hierarchical(
    tree: Tree,
    moms: TreeMoments,
    periodic: bool = False,
    ws: int = 1,
    sink_leaves: np.ndarray | None = None,
    xmax: float = 0.6,
    m2l: bool = False,
    cc_xmax: float = 0.5,
) -> InteractionLists:
    """Sink-hierarchical mutual dual traversal emitting CSR lists.

    Same MAC, same parameters and same per-sink-particle error budget
    as :func:`traverse`; see the module docstring for the scheme.  The
    frontier holds *unordered* cell pairs (a, b, image offset) with a
    two-bit direction mask — bit 1 for "a sinks b", bit 2 for "b sinks
    a" — so one geometric test (``mac_tests`` counts these) serves both
    directions of a mirrored pair; a direction retires independently
    when it is accepted or recorded as direct.  The effective distance
    for a sink cell is the tighter of two conservative lower bounds on
    the sink-particle-to-source distance: ``dist - b_max(sink)`` (the
    leaf walk's bound) and the per-axis gap to the sink cell's cube.

    With ``m2l=True`` (the ``traversal="fmm-hybrid"`` mode) one-sided
    cell accepts are replaced by *mutual* cell-cell accepts: a pair is
    absorbed — both directions at once — into sink-side local
    expansions when it passes the dual MAC, the combined-size
    separation criterion ``b_max(a) + b_max(b) < cc_xmax * dist``
    (Dehnen astro-ph/0202512, which bounds the error-correlation the
    paper worries about in §2.2.2 via a knob separate from ``xmax``)
    AND each non-ghost side's one-sided MAC against the other as
    source.  Accepted pairs land in the ``m2l_*`` family; everything
    the mutual accept does not retire refines exactly as before and
    ends in the pp family, so the cell family stays empty and every
    far-field pair is applied symmetrically (exact momentum
    conservation, astro-ph/0003209).  The decision remains a pure
    function of (a, b, offset), never of which directions are live, so
    restricted shard walks replay identical accepts.

    The returned lists are sorted by sink leaf (``sink_leaves`` comes
    back in SFC/particle order) with ``cell_indptr`` / ``leaf_indptr``
    / ``ghost_indptr`` delimiting each leaf's segment; the m2l family
    is keyed by sink *cell* (``m2l_cells`` ascending, ``m2l_indptr``
    delimiting each cell's (source, offset) segment in a
    shard-independent order).
    """
    restricted = sink_leaves is not None
    if restricted:
        sinks = np.asarray(sink_leaves, dtype=np.int64)
    else:
        sinks = tree.leaf_indices
    # row universe in SFC (particle) order: evaluation output slices are
    # then contiguous and ascending for SFC-contiguous shards
    sinks = sinks[np.argsort(tree.cell_start[sinks], kind="stable")]
    offsets = (
        _image_offsets(tree.box, ws) if periodic else np.zeros((1, 3), dtype=np.float64)
    )
    n_off = len(offsets)
    # index of each offset's mirror image (-off); home maps to itself
    if n_off > 1:
        key = {tuple(o): i for i, o in enumerate(np.round(offsets, 9).tolist())}
        mirror = np.array(
            [key[tuple(o)] for o in np.round(-offsets, 9).tolist()], dtype=np.int64
        )
    else:
        mirror = np.zeros(1, dtype=np.int64)
    home = 0  # _image_offsets puts the home image first
    relevant = _sink_relevance(tree, sinks if restricted else None)

    root = int(np.flatnonzero(tree.cell_level == 0)[0])
    # seed one canonical entry per unordered (root, root image) pair:
    # the home self-pair carries a single direction, each +/- image
    # pair carries both
    canon = np.flatnonzero(np.arange(n_off) <= mirror)
    f_a = np.full(len(canon), root, dtype=np.int64)
    f_b = np.full(len(canon), root, dtype=np.int64)
    f_off = canon.astype(np.int64)
    f_fl = np.where(mirror[canon] == canon, 1, 3).astype(np.int8)

    # interior-sink accepts (need descendant expansion) and leaf-sink
    # accepts (already at their row) are kept apart so CSR assembly
    # only expands the minority interior stream
    acc_sink, acc_src, acc_off = [], [], []
    lacc_sink, lacc_src, lacc_off = [], [], []
    dir_sink, dir_src, dir_off = [], [], []
    m2l_sink_p, m2l_src_p, m2l_off_p = [], [], []

    cell_center = tree.cell_center
    bmax = moms.bmax
    r_crit = moms.r_crit
    is_leaf = tree.is_leaf
    is_ghost = tree.cell_is_ghost
    first_child = tree.cell_first_child
    nchildren = tree.cell_nchildren
    half = tree.box / np.exp2(tree.cell_level + 1)  # cell half-side
    rounds = 0
    mac_tests = 0
    frontier_peak = 0
    inherited = 0
    leaf_accepts = 0
    m2l_accepts = 0

    def cube_gap(absd, cells):
        g = np.maximum(absd - half[cells][:, None], 0.0)
        return np.sqrt(np.einsum("ij,ij->i", g, g))

    while len(f_a):
        rounds += 1
        mac_tests += len(f_a)
        frontier_peak = max(frontier_peak, len(f_a))
        bmax_a = bmax[f_a]
        bmax_b = bmax[f_b]
        d = cell_center[f_a] - (cell_center[f_b] + offsets[f_off])
        dist = np.sqrt(np.einsum("ij,ij->i", d, d))
        absd = np.abs(d)
        bit1 = (f_fl & 1).astype(bool)
        bit2 = (f_fl & 2).astype(bool)
        # direction a<-b: d_eff lower-bounds the distance from any
        # particle under sink a to source b's expansion center
        d_eff1 = np.maximum(dist - bmax_a, cube_gap(absd, f_a))
        # direction b<-a: same separation, mirrored image offset
        d_eff2 = np.maximum(dist - bmax_b, cube_gap(absd, f_b))
        if m2l:
            # mutual cell-cell accept: both directions retire into
            # local expansions at once; one-sided accepts are disabled
            # so the far field stays exactly momentum-symmetric.  The
            # waiver for ghost sides is on sink quality only — ghosts
            # are empty and never sink, but still pass their r_crit
            # as sources.
            ok1 = (d_eff1 > r_crit[f_b]) & (bmax_b < xmax * d_eff1)
            ok2 = (d_eff2 > r_crit[f_a]) & (bmax_a < xmax * d_eff2)
            sep = bmax_a + bmax_b < cc_xmax * dist
            mutual = sep & (ok1 | is_ghost[f_a]) & (ok2 | is_ghost[f_b])
            acc1 = acc2 = np.zeros(len(f_a), dtype=bool)
            if np.any(mutual):
                mm1 = mutual & bit1
                mm2 = mutual & bit2
                if np.any(mm1):
                    m2l_sink_p.append(f_a[mm1])
                    m2l_src_p.append(f_b[mm1])
                    m2l_off_p.append(f_off[mm1])
                if np.any(mm2):
                    m2l_sink_p.append(f_b[mm2])
                    m2l_src_p.append(f_a[mm2])
                    m2l_off_p.append(mirror[f_off[mm2]])
                m2l_accepts += int(np.count_nonzero(mm1)) + int(
                    np.count_nonzero(mm2)
                )
        else:
            mutual = np.zeros(len(f_a), dtype=bool)
            acc1 = bit1 & (d_eff1 > r_crit[f_b]) & (bmax_b < xmax * d_eff1)
            acc2 = bit2 & (d_eff2 > r_crit[f_a]) & (bmax_a < xmax * d_eff2)
        ret1 = acc1 | mutual  # direction a<-b retired this round
        ret2 = acc2 | mutual
        leaf_a = is_leaf[f_a]
        leaf_b = is_leaf[f_b]
        both_leaf = leaf_a & leaf_b
        dir1 = bit1 & ~ret1 & both_leaf
        dir2 = bit2 & ~ret2 & both_leaf

        if np.any(acc1):
            int1 = acc1 & ~leaf_a
            lf1 = acc1 & leaf_a
            if np.any(int1):
                acc_sink.append(f_a[int1])
                acc_src.append(f_b[int1])
                acc_off.append(f_off[int1])
            if np.any(lf1):
                lacc_sink.append(f_a[lf1])
                lacc_src.append(f_b[lf1])
                lacc_off.append(f_off[lf1])
            inherited += int(np.count_nonzero(int1))
            leaf_accepts += int(np.count_nonzero(lf1))
        if np.any(acc2):
            int2 = acc2 & ~leaf_b
            lf2 = acc2 & leaf_b
            if np.any(int2):
                acc_sink.append(f_b[int2])
                acc_src.append(f_a[int2])
                acc_off.append(mirror[f_off[int2]])
            if np.any(lf2):
                lacc_sink.append(f_b[lf2])
                lacc_src.append(f_a[lf2])
                lacc_off.append(mirror[f_off[lf2]])
            inherited += int(np.count_nonzero(int2))
            leaf_accepts += int(np.count_nonzero(lf2))
        if np.any(dir1):
            dir_sink.append(f_a[dir1])
            dir_src.append(f_b[dir1])
            dir_off.append(f_off[dir1])
        if np.any(dir2):
            dir_sink.append(f_b[dir2])
            dir_src.append(f_a[dir2])
            dir_off.append(mirror[f_off[dir2]])

        live1 = bit1 & ~ret1 & ~both_leaf
        live2 = bit2 & ~ret2 & ~both_leaf
        undecided = live1 | live2
        if not np.any(undecided):
            break
        fl_live = (live1.astype(np.int8) + 2 * live2.astype(np.int8))[undecided]
        ua = f_a[undecided]
        ub = f_b[undecided]
        uo = f_off[undecided]
        u_leaf_a = leaf_a[undecided]
        # the home self-pair splits into the unordered triangle of its
        # children; every other pair splits its larger (internal) side
        selfp = (ua == ub) & (uo == home)
        split_b = ~selfp & (
            u_leaf_a | (~leaf_b[undecided] & (bmax_b[undecided] >= bmax_a[undecided]))
        )
        split_a = ~selfp & ~split_b
        parts_a, parts_b, parts_o, parts_f = [], [], [], []
        if np.any(split_b):
            pb = ub[split_b]
            nch = nchildren[pb]
            kids = expand_ranges(first_child[pb], nch)
            ka = np.repeat(ua[split_b], nch)
            ko = np.repeat(uo[split_b], nch)
            kf = np.repeat(fl_live[split_b], nch)
            # the split side's sink direction survives only into kids
            # holding selected sink leaves
            kf = (kf & 1) | np.where(relevant[kids], kf & 2, 0).astype(np.int8)
            keep = kf != 0
            parts_a.append(ka[keep])
            parts_b.append(kids[keep])
            parts_o.append(ko[keep])
            parts_f.append(kf[keep])
        if np.any(split_a):
            pa = ua[split_a]
            nch = nchildren[pa]
            kids = expand_ranges(first_child[pa], nch)
            kb = np.repeat(ub[split_a], nch)
            ko = np.repeat(uo[split_a], nch)
            kf = np.repeat(fl_live[split_a], nch)
            kf = np.where(relevant[kids], kf & 1, 0).astype(np.int8) | (kf & 2)
            keep = kf != 0
            parts_a.append(kids[keep])
            parts_b.append(kb[keep])
            parts_o.append(ko[keep])
            parts_f.append(kf[keep])
        if np.any(selfp):
            # unordered children pairs {k_i, k_j}, i <= j, of each
            # self-pair cell; diagonals are new single-direction
            # self-pairs, off-diagonals carry both directions
            sa = ua[selfp]
            nch_s = nchildren[sa]
            for n in np.unique(nch_s):
                grp = sa[nch_s == n]
                iu, ju = np.triu_indices(int(n))
                first = first_child[grp]
                ka = (first[:, None] + iu[None, :]).ravel()
                kb = (first[:, None] + ju[None, :]).ravel()
                kf = (
                    np.where(relevant[ka], 1, 0) | np.where(relevant[kb], 2, 0)
                ).astype(np.int8)
                kf = np.where(ka == kb, kf & 1, kf).astype(np.int8)
                keep = kf != 0
                parts_a.append(ka[keep])
                parts_b.append(kb[keep])
                parts_o.append(np.full(int(keep.sum()), home, dtype=np.int64))
                parts_f.append(kf[keep])
        if not parts_a:
            break
        f_a = np.concatenate(parts_a)
        f_b = np.concatenate(parts_b)
        f_off = np.concatenate(parts_o)
        f_fl = np.concatenate(parts_f)

    def cat(parts):
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    a_sink, a_src, a_off = cat(acc_sink), cat(acc_src), cat(acc_off)
    la_sink, la_src, la_off = cat(lacc_sink), cat(lacc_src), cat(lacc_off)
    d_sink, d_src, d_off = cat(dir_sink), cat(dir_src), cat(dir_off)

    # ----- inheritance pass: push interior-sink accepts to sink leaves --------
    # A cell's particle range is contiguous and tiles exactly over its
    # descendant leaves, so the selected leaves under an accepted sink
    # cell are one searchsorted slice of the (SFC-ordered) row universe.
    leaf_starts = tree.cell_start[sinks]
    n_rows = len(sinks)

    # narrow row keys unlock numpy's radix path for the stable sort
    # (~5x over int64 merge sort); int32 covers any realistic leaf count
    row_dtype = np.int16 if n_rows < np.iinfo(np.int16).max else np.int32

    def rows_of_leaves(s):
        return np.searchsorted(
            leaf_starts, tree.cell_start[s], side="left"
        ).astype(row_dtype)

    def finalize(row, src, off):
        order = np.argsort(row, kind="stable")
        counts = np.bincount(row, minlength=n_rows)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return np.repeat(sinks, counts), src[order], off[order], indptr

    # cell family: expanded interior accepts first, then leaf accepts —
    # a fixed rule, so restricted walks reproduce identical segments.
    # Narrow dtypes before the big expansion: the inherited stream
    # fans out ~10-20x, so src/off bytes dominate the assembly cost.
    start_a = tree.cell_start[a_sink]
    lo = np.searchsorted(leaf_starts, start_a, side="left")
    hi = np.searchsorted(
        leaf_starts, start_a + tree.cell_count[a_sink], side="left"
    )
    nd = hi - lo
    row = np.concatenate(
        [expand_ranges(lo, nd).astype(row_dtype), rows_of_leaves(la_sink)]
    )
    src = np.concatenate(
        [np.repeat(a_src.astype(np.int32), nd), la_src.astype(np.int32)]
    )
    off = np.concatenate(
        [np.repeat(a_off.astype(np.int16), nd), la_off.astype(np.int16)]
    )
    cs, cc, co, c_indptr = finalize(row, src, off)

    ghosts = tree.cell_is_ghost[d_src] if len(d_src) else np.zeros(0, dtype=bool)
    ls, lc, lo_, l_indptr = finalize(
        rows_of_leaves(d_sink[~ghosts]), d_src[~ghosts], d_off[~ghosts]
    )
    gs, gc, go, g_indptr = finalize(
        rows_of_leaves(d_sink[ghosts]), d_src[ghosts], d_off[ghosts]
    )

    # m2l family: keyed by sink cell (interior or leaf), rows ascending
    # by cell index; the stable sort keeps each cell's segment in the
    # BFS emission order, which a restricted walk reproduces exactly.
    m2l_fields = {}
    if m2l:
        m_sink = cat(m2l_sink_p)
        m_src = cat(m2l_src_p)
        m_off = cat(m2l_off_p)
        order = np.argsort(m_sink, kind="stable")
        m_sink = m_sink[order]
        m2l_cells_u, m2l_counts = np.unique(m_sink, return_counts=True)
        m2l_indptr = np.zeros(len(m2l_cells_u) + 1, dtype=np.int64)
        np.cumsum(m2l_counts, out=m2l_indptr[1:])
        m2l_fields = dict(
            m2l_cells=m2l_cells_u.astype(np.int64),
            m2l_src=m_src[order],
            m2l_off=m_off[order],
            m2l_indptr=m2l_indptr,
        )

    return InteractionLists(
        sink_leaves=sinks,
        offsets=offsets,
        cell_sink=cs,
        cell_src=cc,
        cell_off=co,
        leaf_sink=ls,
        leaf_src=lc,
        leaf_off=lo_,
        ghost_sink=gs,
        ghost_src=gc,
        ghost_off=go,
        rounds=rounds,
        cell_indptr=c_indptr,
        leaf_indptr=l_indptr,
        ghost_indptr=g_indptr,
        mac_tests=mac_tests,
        frontier_peak=frontier_peak,
        inherited_accepts=inherited,
        leaf_accepts=leaf_accepts,
        m2l_accepts=m2l_accepts,
        **m2l_fields,
    )


def traverse_lists(
    tree: Tree,
    moms: TreeMoments,
    traversal: str = "hierarchical",
    **kwargs,
) -> InteractionLists:
    """Dispatch to the requested walk.

    ``"hierarchical"`` — sink-hierarchical mutual dual walk (default);
    ``"fmm-hybrid"`` — the same walk with mutual cell-cell accepts into
    sink-side local expansions (``cc_xmax`` tunes the dual MAC);
    ``"leaf"`` — the original per-sink-leaf walk.
    """
    if traversal == "hierarchical":
        kwargs.pop("cc_xmax", None)
        return traverse_hierarchical(tree, moms, **kwargs)
    if traversal == "fmm-hybrid":
        return traverse_hierarchical(tree, moms, m2l=True, **kwargs)
    if traversal == "leaf":
        kwargs.pop("cc_xmax", None)
        return traverse(tree, moms, **kwargs)
    raise ValueError(f"unknown traversal kind {traversal!r}")
