"""Batched dual-tree traversal with the absolute-error MAC (paper §3.2-3.3).

The traversal walks source cells against *sink leaves* (blocks of up
to ``nleaf`` particles) rather than individual particles — the m x n
interaction blocking of §3.3 that amortizes data movement and enables
vector evaluation.  Correctness for every particle in the block is
preserved by testing the MAC against the nearest possible particle,
d_eff = |x_sink - x_src| - b_max(sink).

The frontier of (sink leaf, source cell, image offset) triples is
processed breadth-first with vectorized accept / direct / split
decisions; seeding the frontier with the 3^3 or 5^3 periodic image
offsets of the root reproduces the paper's ws = 1 / ws = 2 near-image
handling for periodic boundaries (§2.4) — with background subtraction
the root's monopole vanishes, so distant images are accepted
immediately and cost almost nothing.

Outputs are flat interaction lists consumed by
:mod:`repro.gravity.treeforce`:

* ``cell_pairs``   — (sink leaf, source cell, offset) multipole interactions,
* ``leaf_pairs``   — (sink leaf, source leaf, offset) particle-particle blocks,
* ``ghost_pairs``  — (sink leaf, ghost cell, offset) near-field analytic
  background cubes (only in background-subtraction mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .moments import TreeMoments
from .structure import Tree

__all__ = ["InteractionLists", "traverse"]


@dataclass
class InteractionLists:
    """Flat interaction lists plus bookkeeping counters."""

    sink_leaves: np.ndarray  # all sink leaf cell indices traversed
    offsets: np.ndarray  # (n_off, 3) image offsets used
    cell_sink: np.ndarray
    cell_src: np.ndarray
    cell_off: np.ndarray
    leaf_sink: np.ndarray
    leaf_src: np.ndarray
    leaf_off: np.ndarray
    ghost_sink: np.ndarray
    ghost_src: np.ndarray
    ghost_off: np.ndarray
    rounds: int = 0

    def n_cell_interactions(self, tree: Tree) -> int:
        """Total (particle, cell-multipole) interaction count."""
        return int(tree.cell_count[self.cell_sink].sum())

    def n_pp_interactions(self, tree: Tree) -> int:
        """Total particle-particle interaction count."""
        return int(
            (tree.cell_count[self.leaf_sink] * tree.cell_count[self.leaf_src]).sum()
        )

    def n_prism_interactions(self, tree: Tree) -> int:
        """Total (particle, analytic background cube) interaction count."""
        return int(tree.cell_count[self.ghost_sink].sum())

    def interactions_per_particle(self, tree: Tree) -> float:
        n = max(tree.n_particles, 1)
        return (
            self.n_cell_interactions(tree)
            + self.n_pp_interactions(tree)
            + self.n_prism_interactions(tree)
        ) / n


def _image_offsets(box: float, ws: int) -> np.ndarray:
    r = np.arange(-ws, ws + 1)
    gx, gy, gz = np.meshgrid(r, r, r, indexing="ij")
    off = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1).astype(np.float64)
    # put the home image first (cosmetic, helps debugging)
    order = np.argsort(np.einsum("ij,ij->i", off, off), kind="stable")
    return off[order] * box


def traverse(
    tree: Tree,
    moms: TreeMoments,
    periodic: bool = False,
    ws: int = 1,
    sink_leaves: np.ndarray | None = None,
    xmax: float = 0.6,
) -> InteractionLists:
    """Compute interaction lists for all (or selected) sink leaves.

    Parameters
    ----------
    periodic:
        Include the (2 ws + 1)^3 periodic images of the source tree.
    sink_leaves:
        Restrict to these sink leaf cell indices (default: all real
        leaves) — used by the parallel traversal to walk one domain.
    xmax:
        Cap on the expansion parameter x = b_max/d: a cell is never
        accepted by the MAC when x would exceed this, whatever the
        error estimate says.  Moment-norm estimates are blind to
        pathologically cancelling cells at close range (the §2.2.1
        near-field breakdown), so interactions with slowly-converging
        expansions always go to the split/direct path; the series tail
        is then geometrically controlled by xmax.
    """
    if sink_leaves is None:
        sink_leaves = tree.leaf_indices
    sinks = np.asarray(sink_leaves, dtype=np.int64)
    offsets = (
        _image_offsets(tree.box, ws) if periodic else np.zeros((1, 3), dtype=np.float64)
    )

    n_off = len(offsets)
    f_sink = np.repeat(sinks, n_off)
    f_src = np.zeros(len(f_sink), dtype=np.int64)  # root cell index is 0
    root = int(np.flatnonzero(tree.cell_level == 0)[0])
    f_src[:] = root
    f_off = np.tile(np.arange(n_off, dtype=np.int64), len(sinks))

    acc_sink, acc_src, acc_off = [], [], []
    leaf_sink, leaf_src, leaf_off = [], [], []
    ghost_sink, ghost_src, ghost_off = [], [], []

    sink_center = tree.cell_center
    sink_bmax = moms.bmax
    is_leaf = tree.is_leaf
    is_ghost = tree.cell_is_ghost
    rounds = 0
    while len(f_sink):
        rounds += 1
        d = sink_center[f_sink] - (tree.cell_center[f_src] + offsets[f_off])
        dist = np.sqrt(np.einsum("ij,ij->i", d, d))
        d_eff = dist - sink_bmax[f_sink]
        accept = (d_eff > moms.r_crit[f_src]) & (
            moms.bmax[f_src] < xmax * d_eff
        )
        # never "accept" a sink's own home-image self cell via MAC with a
        # degenerate zero distance; d_eff <= 0 there so accept is False.
        src_leaf = is_leaf[f_src]
        direct = ~accept & src_leaf

        if np.any(accept):
            sel = accept
            acc_sink.append(f_sink[sel])
            acc_src.append(f_src[sel])
            acc_off.append(f_off[sel])
        if np.any(direct):
            sel = direct
            ghosts = is_ghost[f_src[sel]]
            if np.any(ghosts):
                ghost_sink.append(f_sink[sel][ghosts])
                ghost_src.append(f_src[sel][ghosts])
                ghost_off.append(f_off[sel][ghosts])
            real = ~ghosts
            if np.any(real):
                leaf_sink.append(f_sink[sel][real])
                leaf_src.append(f_src[sel][real])
                leaf_off.append(f_off[sel][real])

        split = ~accept & ~src_leaf
        if not np.any(split):
            break
        parents_src = f_src[split]
        nch = tree.cell_nchildren[parents_src]
        f_sink = np.repeat(f_sink[split], nch)
        f_off = np.repeat(f_off[split], nch)
        first = tree.cell_first_child[parents_src]
        total = int(nch.sum())
        block_first = np.repeat(np.cumsum(nch) - nch, nch)
        within = np.arange(total, dtype=np.int64) - block_first
        f_src = np.repeat(first, nch) + within

    def cat(parts):
        return (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )

    return InteractionLists(
        sink_leaves=sinks,
        offsets=offsets,
        cell_sink=cat(acc_sink),
        cell_src=cat(acc_src),
        cell_off=cat(acc_off),
        leaf_sink=cat(leaf_sink),
        leaf_src=cat(leaf_src),
        leaf_off=cat(leaf_off),
        ghost_sink=cat(ghost_sink),
        ghost_src=cat(ghost_src),
        ghost_off=cat(ghost_off),
        rounds=rounds,
    )
