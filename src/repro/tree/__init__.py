"""Hashed oct-tree: build, moments, MAC and traversal (paper §3.2-3.3)."""

from .moments import TreeMoments, compute_moments, unit_cube_abs_moment
from .structure import Tree, build_tree
from .traversal import (
    InteractionLists,
    traverse,
    traverse_hierarchical,
    traverse_lists,
)

__all__ = [
    "InteractionLists",
    "Tree",
    "TreeMoments",
    "build_tree",
    "compute_moments",
    "traverse",
    "traverse_hierarchical",
    "traverse_lists",
    "unit_cube_abs_moment",
]
