"""Upward pass: cell moments, absolute moments, and MAC radii.

Computes, for every cell of a :class:`~repro.tree.structure.Tree`:

* packed Cartesian moments about the *geometric* cell center (paper
  §2.2.1 — geometric centers make the uniform-background subtraction a
  few operations, at the cost of carrying dipoles),
* the absolute moments B_0..B_{p+1} and the bounding radius b_max that
  feed the Salmon-Warren error bound,
* the critical MAC radius r_crit at the requested force tolerance.

Background subtraction is applied at the leaf level only (real leaves:
particle moments minus the mean-density cube; ghost leaves: minus the
cube alone); because the eight child cubes tile the parent cube
exactly, the ordinary M2M upward pass then produces
background-subtracted moments at *every* level automatically.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np
from scipy import integrate

from ..multipoles import critical_radius, cube_moments, m2m, multi_index_set
from ..multipoles.bounds import critical_radius_moment
from ..multipoles.multiindex import n_coeffs
from ..util import expand_ranges
from .structure import Tree

__all__ = ["TreeMoments", "compute_moments", "unit_cube_abs_moment"]


@functools.lru_cache(maxsize=64)
def unit_cube_abs_moment(n: int) -> float:
    """I_n = integral over the unit cube (about its center) of |x|^n.

    Used to bound the absolute moments contributed by the subtracted
    uniform background: B_n(background) = rho * s^{3+n} * I_n for a
    cube of side s.  Evaluated once by adaptive quadrature and cached.
    """
    val, _ = integrate.tplquad(
        lambda z, y, x: (x * x + y * y + z * z) ** (n / 2.0),
        -0.5,
        0.5,
        -0.5,
        0.5,
        -0.5,
        0.5,
        epsabs=1e-12,
        epsrel=1e-10,
    )
    return float(val)


@dataclass
class TreeMoments:
    """Per-cell expansion data produced by :func:`compute_moments`.

    ``moments`` is stored through order p+2 (packed prefix layout):
    the interaction routines consume the first n_coeffs(p) columns,
    while the order-(p+1) and (p+2) blocks feed the moment-norm MAC,
    which — unlike the rigorous absolute-moment bound — sees the
    cancellation created by background subtraction.
    """

    p: int
    tol: float
    background: bool
    mean_density: float
    mac: str
    moments: np.ndarray  # (C, n_coeffs(p+2))
    babs: np.ndarray  # (C, p+2) absolute moments B_0..B_{p+1}
    bmax: np.ndarray  # (C,)
    mnorm: np.ndarray  # (C,) Frobenius norm of the order-(p+1) block
    mnorm2: np.ndarray  # (C,) Frobenius norm of the order-(p+2) block
    r_crit: np.ndarray  # (C,)

    @property
    def ncoef(self) -> int:
        """Number of coefficients used by interactions (order <= p)."""
        return n_coeffs(self.p)


def compute_moments(
    tree: Tree,
    p: int,
    tol: float,
    background: bool = False,
    mean_density: float | None = None,
    mac: str = "moment",
) -> TreeMoments:
    """Run the upward pass over ``tree``.

    Parameters
    ----------
    p:
        Expansion order used by the interactions (moments are carried
        one order higher for the MAC).
    tol:
        Absolute acceleration tolerance for the MAC (the paper's
        "errtol"; its scientific runs use 1e-5 in code units).
    background:
        Subtract the uniform background (requires the tree to have
        been built ``with_ghosts=True`` and a ``mean_density``).
    mac:
        "moment" — first-neglected-term estimate from the order-(p+1)
        moment norm (default; benefits from background subtraction), or
        "absolute" — rigorous Salmon-Warren absolute-moment bound.
    """
    if mac not in ("moment", "absolute"):
        raise ValueError(f"unknown MAC kind {mac!r}")
    if background:
        if mean_density is None:
            raise ValueError("background subtraction requires mean_density")
        internal = tree.cell_first_child >= 0
        if np.any(tree.cell_nchildren[internal] != 8):
            raise ValueError(
                "background subtraction requires a tree built with_ghosts=True "
                "(every split cell must have all 8 octants materialized)"
            )
    p_store = p + 2
    mis = multi_index_set(p_store)
    ncoef = len(mis)
    n_cells = tree.n_cells
    moments = np.zeros((n_cells, ncoef), dtype=np.float64)
    babs = np.zeros((n_cells, p + 2), dtype=np.float64)
    bmax = np.zeros(n_cells, dtype=np.float64)

    # ----- leaves: particle moments ------------------------------------------
    leaves = tree.leaf_indices
    lorder = np.argsort(tree.cell_start[leaves])
    leaves = leaves[lorder]
    starts = tree.cell_start[leaves]
    counts = tree.cell_count[leaves]
    centers = np.repeat(tree.cell_center[leaves], counts, axis=0)
    dd = tree.pos - centers
    mono = mis.powers(dd) * tree.mass[:, None]
    moments[leaves] = np.add.reduceat(mono, starts, axis=0)
    r = np.sqrt(np.einsum("ij,ij->i", dd, dd))
    rp = r[None, :] ** np.arange(p + 2)[:, None] * tree.mass[None, :]
    babs[leaves] = np.add.reduceat(rp, starts, axis=1).T
    bmax[leaves] = np.maximum.reduceat(r, starts)

    # ----- background at the leaf level ---------------------------------------
    if background:
        rho = float(mean_density)
        all_leaf = np.flatnonzero(tree.is_leaf)
        side = tree.cell_side[all_leaf]
        moments[all_leaf] -= cube_moments(p_store, side, rho)
        icoef = np.array([unit_cube_abs_moment(k) for k in range(p + 2)])
        babs[all_leaf] += rho * side[:, None] ** (3 + np.arange(p + 2))[None, :] * icoef
        # a leaf's background fills its whole cube, so bmax is the corner
        # distance (which also bounds any particle radius inside the cube)
        bmax[all_leaf] = side * np.sqrt(3.0) / 2.0

    # ----- upward M2M by level --------------------------------------------------
    binom = np.array(
        [[_comb(nn, kk) for kk in range(p + 2)] for nn in range(p + 2)],
        dtype=np.float64,
    )
    for level in range(tree.max_level - 1, -1, -1):
        cells = tree.cells_at_level(level)
        internal = cells[tree.cell_first_child[cells] >= 0]
        if len(internal) == 0:
            continue
        kids = expand_ranges(
            tree.cell_first_child[internal], tree.cell_nchildren[internal]
        )
        kid_parent = np.repeat(internal, tree.cell_nchildren[internal])
        d = tree.cell_center[kids] - tree.cell_center[kid_parent]
        translated = m2m(moments[kids], d, p_store)
        np.add.at(moments, kid_parent, translated)
        # absolute moments: B_n(parent) <= sum_child sum_k C(n,k) |d|^{n-k} B_k
        dn = np.linalg.norm(d, axis=1)
        dpow = dn[:, None] ** np.arange(p + 2)[None, :]
        bk = babs[kids]
        bup = np.zeros_like(bk)
        for nn in range(p + 2):
            # sum_k C(nn,k) dpow[:, nn-k] * bk[:, k]
            ks = np.arange(nn + 1)
            bup[:, nn] = (binom[nn, ks] * dpow[:, nn - ks] * bk[:, ks]).sum(axis=1)
        np.add.at(babs, kid_parent, bup)
        reach = dn + bmax[kids]
        np.maximum.at(bmax, kid_parent, reach)
        corner = tree.cell_side[internal] * np.sqrt(3.0) / 2.0
        bmax[internal] = np.minimum(bmax[internal], corner)

    # Frobenius norms (with multinomial weights) of the two top blocks
    sl1 = mis.slice_of_order(p + 1)
    sl2 = mis.slice_of_order(p + 2)
    mnorm = np.sqrt(
        (mis.multinomial[sl1][None, :] * moments[:, sl1] ** 2).sum(axis=1)
    )
    mnorm2 = np.sqrt(
        (mis.multinomial[sl2][None, :] * moments[:, sl2] ** 2).sum(axis=1)
    )
    if mac == "moment":
        r_crit = critical_radius_moment(p, bmax, mnorm, tol, mnorm_p2=mnorm2)
    else:
        r_crit = critical_radius(p, bmax, babs[:, p + 1], tol)
    return TreeMoments(
        p=p,
        tol=tol,
        background=background,
        mean_density=float(mean_density or 0.0),
        mac=mac,
        moments=moments,
        babs=babs,
        bmax=bmax,
        mnorm=mnorm,
        mnorm2=mnorm2,
        r_crit=r_crit,
    )


def _comb(n: int, k: int) -> float:
    import math

    return float(math.comb(n, k)) if 0 <= k <= n else 0.0
