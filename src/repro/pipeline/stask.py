"""stask — the in-allocation task queue (paper §3.4.1).

"We have developed an additional Python tool called stask.  It allows
us to maintain a queue inside a larger PBS or Moab allocation which
can perform multiple smaller simulations or data analysis tasks ...
tens of thousands of independent tasks for MapReduce style jobs."

This is a functioning simulation-time scheduler: tasks declare core
counts and durations, the allocation has a fixed width and walltime,
tasks are packed greedily (largest-first by default) with optional
dependencies, and preemption honours the paper's requested courtesy —
a signal at least ``preempt_notice_s`` before eviction so the task can
checkpoint.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

__all__ = ["Task", "Allocation", "STaskQueue", "map_reduce"]


@dataclass
class Task:
    """One unit of work inside the allocation."""

    name: str
    cores: int
    duration_s: float
    depends_on: tuple = ()
    #: wall seconds of warning required before preemption (§3.4.1: "at
    #: least 600 seconds in advance")
    preempt_notice_s: float = 0.0
    # filled by the scheduler
    start_s: float | None = None
    end_s: float | None = None
    preempted: bool = False

    @property
    def done(self) -> bool:
        return self.end_s is not None and not self.preempted


@dataclass
class Allocation:
    """A PBS/Moab-style reservation: fixed cores for a fixed walltime."""

    cores: int
    walltime_s: float


class STaskQueue:
    """Greedy backfilling scheduler over one allocation."""

    def __init__(self, allocation: Allocation):
        self.allocation = allocation
        self.tasks: list[Task] = []
        self.events: list[tuple[float, str, str]] = []  # (time, kind, task)

    def submit(self, task: Task) -> None:
        if task.cores > self.allocation.cores:
            raise ValueError(
                f"task {task.name!r} needs {task.cores} cores, allocation has "
                f"{self.allocation.cores}"
            )
        self.tasks.append(task)

    def run(self) -> dict:
        """Schedule everything; returns utilization statistics.

        Event-driven simulation: at each completion, start every
        pending task whose dependencies are met and whose cores fit,
        largest-core first (reduces fragmentation).  Tasks that cannot
        finish before the walltime are started only if they can absorb
        a preemption signal (their notice window fits); they end
        preempted at walltime.
        """
        alloc = self.allocation
        free = alloc.cores
        now = 0.0
        running: list[tuple[float, int, Task]] = []  # (end, seq, task)
        seq = itertools.count()
        done_names: set[str] = set()
        pending = list(self.tasks)

        def try_start():
            nonlocal free
            started = True
            while started:
                started = False
                ready = [
                    t
                    for t in pending
                    if all(d in done_names for d in t.depends_on) and t.cores <= free
                ]
                ready.sort(key=lambda t: (-t.cores, t.duration_s))
                for t in ready:
                    end = now + t.duration_s
                    if end > alloc.walltime_s:
                        # would be preempted: only run if the notice window
                        # fits before the walltime
                        if now + t.preempt_notice_s >= alloc.walltime_s:
                            continue
                        t.preempted = True
                        end = alloc.walltime_s
                    t.start_s = now
                    t.end_s = end
                    free -= t.cores
                    heapq.heappush(running, (end, next(seq), t))
                    pending.remove(t)
                    self.events.append((now, "start", t.name))
                    started = True
                    break

        try_start()
        while running:
            end, _, t = heapq.heappop(running)
            now = end
            free += t.cores
            if not t.preempted:
                done_names.add(t.name)
            self.events.append((now, "end", t.name))
            try_start()

        # tasks that never started split into two very different stories:
        # *unstarted* (resources/walltime ran out — rerunnable as-is) vs
        # *blocked* (a dependency was preempted or itself never ran, so
        # no amount of walltime would have helped).  Folding both into
        # one count hid dependency deadlocks; report them separately and
        # emit a "blocked" event per task so the timeline shows why.
        blocked: set[str] = set()
        changed = True
        while changed:
            changed = False
            for t in self.tasks:
                if t.start_s is not None or t.name in blocked:
                    continue
                for d in t.depends_on:
                    dep = next((x for x in self.tasks if x.name == d), None)
                    if (
                        dep is None
                        or dep.preempted
                        or dep.start_s is None
                        or d in blocked
                    ):
                        blocked.add(t.name)
                        changed = True
                        break
        for name in sorted(blocked):
            self.events.append((now, "blocked", name))

        used_core_s = sum(
            (t.end_s - t.start_s) * t.cores for t in self.tasks if t.start_s is not None
        )
        span = max((t.end_s for t in self.tasks if t.end_s is not None), default=0.0)
        return {
            "utilization": used_core_s / (alloc.cores * max(span, 1e-12)),
            "makespan_s": span,
            "completed": sum(t.done for t in self.tasks),
            "preempted": sum(t.preempted for t in self.tasks),
            "blocked": len(blocked),
            "unstarted": sum(
                t.start_s is None and t.name not in blocked for t in self.tasks
            ),
        }


def map_reduce(
    queue: STaskQueue,
    n_map: int,
    map_cores: int,
    map_duration_s: float,
    reduce_cores: int,
    reduce_duration_s: float,
) -> list[Task]:
    """Submit a MapReduce-style fan-out/fan-in (the paper's power-spectrum
    grids and MCMC analyses): n_map independent maps, one reduce
    depending on all of them."""
    maps = [
        Task(name=f"map{i}", cores=map_cores, duration_s=map_duration_s)
        for i in range(n_map)
    ]
    for t in maps:
        queue.submit(t)
    red = Task(
        name="reduce",
        cores=reduce_cores,
        duration_s=reduce_duration_s,
        depends_on=tuple(t.name for t in maps),
    )
    queue.submit(red)
    return maps + [red]
