"""Execute one generated pipeline stage: ``python -m repro.pipeline.run_stage cfg.json``.

The counterpart of :mod:`repro.pipeline.config`: each JSON file written
by :class:`PipelineSpec` is a complete, self-contained description of
one stage (ic / evolve / analysis); this module dispatches on the
``stage`` key and runs it, reading/writing SDF files, so the generated
shell scripts actually work end to end.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

import numpy as np

from ..instrument import Tracer, get_tracer, use_tracer
from ..observe import get_observer

__all__ = ["run_stage", "main"]

_STAGES = {}


def _default_workers() -> int:
    """Force-solve worker count from the environment (0 = serial)."""
    try:
        return int(os.environ.get("REPRO_WORKERS", "0"))
    except ValueError:
        return 0


def _default_health() -> bool:
    """Health monitoring from the environment (off unless REPRO_HEALTH)."""
    return os.environ.get("REPRO_HEALTH", "").strip().lower() in ("1", "true", "on", "yes")


class _ProgressLine:
    """Live one-line progress for the evolve stage.

    Repaints one carriage-returned status line per completed step:
    step number, scale factor, the step-wall EWMA, an ETA extrapolated
    from it (remaining ln-a over the current dlna), and the worst
    health severity seen so far.  Only constructed for a TTY (or when
    ``REPRO_PROGRESS=1`` forces it), so batch logs stay clean.
    """

    #: EWMA weight of the newest step wall time
    ALPHA = 0.3

    def __init__(self, stream, a_final: float):
        self.stream = stream
        self.a_final = float(a_final)
        self.ewma: float | None = None
        self._wrote = False

    def __call__(self, sim, rec) -> None:
        w = float(rec.wall)
        self.ewma = w if self.ewma is None else (
            self.ALPHA * w + (1.0 - self.ALPHA) * self.ewma
        )
        steps_left = 0.0
        if rec.dlna > 0 and rec.a < self.a_final:
            steps_left = math.log(self.a_final / rec.a) / rec.dlna
        severity = "-"
        if getattr(sim.health, "enabled", False):
            seen = getattr(sim.health, "events_seen", {})
            severity = ("error" if seen.get("error") else
                        "warn" if seen.get("warn") else "ok")
        self.stream.write(
            f"\r[evolve] step {sim.steps_completed}  a={rec.a:.4f}  "
            f"{w:.2f}s/step (ewma {self.ewma:.2f})  "
            f"eta ~{steps_left * self.ewma:.0f}s  health={severity}\x1b[K"
        )
        self.stream.flush()
        self._wrote = True

    def close(self) -> None:
        if self._wrote:
            self.stream.write("\n")
            self.stream.flush()


def _make_progress(a_final: float) -> _ProgressLine | None:
    """A progress line when stderr is a TTY; ``REPRO_PROGRESS`` (1/0)
    overrides the detection either way."""
    env = os.environ.get("REPRO_PROGRESS", "").strip().lower()
    if env in ("0", "off", "false", "no"):
        return None
    stream = sys.stderr
    forced = env in ("1", "on", "true", "yes")
    if forced or (hasattr(stream, "isatty") and stream.isatty()):
        return _ProgressLine(stream, a_final)
    return None


#: exit status of a preempted stage (BSD EX_TEMPFAIL): the run honoured
#: the §3.4.1 courtesy — final checkpoint written, safe to resume — so
#: supervisors (the job service) retry with ``--resume`` at no cost to
#: the retry budget
EXIT_PREEMPTED = 75


def run_stage(config_path, workdir=None, tracer=None, workers=None, health=None,
              checkpoint_every=None, resume=None, checkpoint_dir=None) -> dict:
    """Run the stage described by a generated JSON config.

    Returns a small result summary dict (also printed).  Paths inside
    the config are resolved relative to ``workdir`` (default: the
    config file's directory).  Under an enabled tracer (passed here or
    installed process-wide) the stage runs inside a
    ``pipeline.<stage>`` span and the summary gains its wall time.
    ``workers`` overrides the config's force-solve worker count
    (``--workers`` on the CLI; the ``REPRO_WORKERS`` environment
    variable is the default for configs that don't set one).
    ``health`` turns on in-situ health monitoring for the evolve stage
    (``--health`` / ``REPRO_HEALTH``): classified health events stream
    to the tracer's sink, a run-provenance manifest is written next to
    the stage config, and the summary gains the event counts.
    ``checkpoint_every`` makes the evolve stage write a durable
    checkpoint every N steps under ``<workdir>/checkpoints``
    (``checkpoint_dir`` overrides the directory — the job service gives
    every job a private store so sweeps sharing a workdir cannot
    collide); ``resume`` restarts the evolve stage from the newest
    valid checkpoint there (corrupted files are skipped, already-written
    snapshots are not recomputed).
    """
    config_path = Path(config_path)
    cfg = json.loads(config_path.read_text())
    workdir = Path(workdir) if workdir else config_path.parent
    if workers is not None:
        cfg["workers"] = int(workers)
    elif not cfg.get("workers"):
        cfg["workers"] = _default_workers()
    if health is None:
        health = bool(cfg.get("health")) or _default_health()
    cfg["health"] = bool(health)
    if checkpoint_every is not None:
        cfg["checkpoint_every"] = int(checkpoint_every)
    if resume is not None:
        cfg["resume"] = bool(resume)
    if checkpoint_dir is not None:
        cfg["checkpoint_dir"] = str(checkpoint_dir)
    stage = cfg.get("stage")
    fn = _STAGES.get(stage)
    if fn is None:
        raise ValueError(f"unknown stage {stage!r} in {config_path}")
    tr = tracer if tracer is not None else get_tracer()
    # install for the duration so the driver/solver underneath see it too
    t_start = time.perf_counter()
    with use_tracer(tr), tr.span(f"pipeline.{stage}") as sp:
        if cfg["health"]:
            from ..diagnose import write_manifest

            manifest_path = workdir / f"{config_path.stem}.manifest.json"
            write_manifest(
                manifest_path, config=cfg,
                seeds={"seed": cfg.get("seed")},
                extra={"stage_config": str(config_path)},
            )
        summary = fn(cfg, workdir)
        if cfg["health"]:
            summary["manifest"] = str(manifest_path)
    wall = time.perf_counter() - t_start
    if tr.enabled:
        summary["wall_s"] = round(sp.seconds, 6)
        tr.count(f"pipeline.{stage}.runs")
        tr.emit({"type": "pipeline_stage", **summary})
    obs = get_observer()
    if obs.enabled:
        from ..diagnose.manifest import config_hash

        key = config_hash(cfg)
        obs.record_stage(
            {"stage": stage, "config": str(config_path),
             "config_sha256": key, "wall_s": round(wall, 6),
             "workers": int(cfg.get("workers") or 0),
             "summary": summary},
            key=key,
        )
    print(json.dumps(summary))
    return summary


def _stage_ic(cfg, workdir):
    from ..cosmology import CosmologyParams
    from ..io import save_checkpoint
    from ..simulation import ICConfig, generate_ic

    probe = CosmologyParams(
        omega_m=cfg["omega_m"], omega_b=cfg["omega_b"], omega_de=0.0,
        h=cfg["h"], sigma8=cfg["sigma8"], n_s=cfg["n_s"],
    )
    params = probe.with_(omega_de=1.0 - cfg["omega_m"] - probe.omega_r)
    ps = generate_ic(
        params,
        ICConfig(
            n_per_dim=cfg["n_per_dim"],
            box_mpc_h=cfg["box_mpc_h"],
            a_init=cfg["a_init"],
            seed=cfg["seed"],
            use_2lpt=cfg.get("use_2lpt", True),
        ),
    )
    out = workdir / cfg["output"]
    save_checkpoint(
        out, ps, params=params, box_mpc_h=cfg["box_mpc_h"],
        git_tag=cfg.get("code_version"),
    )
    return {"stage": "ic", "particles": len(ps), "output": str(out)}


_STAGES["ic"] = _stage_ic


def _stage_evolve(cfg, workdir):
    import dataclasses

    from ..cosmology import CosmologyParams
    from ..io import load_checkpoint, save_checkpoint
    from ..simulation import Simulation, SimulationConfig

    health_cfg = None
    if cfg.get("health"):
        from ..diagnose import HealthConfig

        # diagnostic snapshots belong with the run's other artifacts
        health_cfg = HealthConfig(snapshot_dir=str(workdir))

    # ----- restart / checkpoint plumbing -----------------------------------------
    ckpt_every = int(cfg.get("checkpoint_every") or 0)
    want_resume = bool(cfg.get("resume"))
    store = None
    if ckpt_every > 0 or want_resume:
        from ..resilience import CheckpointStore

        store = CheckpointStore(cfg.get("checkpoint_dir") or workdir / "checkpoints")

    sim = None
    resumed_from = None
    if want_resume and store is not None:
        from ..resilience import NoValidCheckpoint

        try:
            ckpt_path, _, _ = store.latest_valid()
        except NoValidCheckpoint:
            pass  # nothing restartable yet: fall through to a cold start
        else:
            sim = Simulation.resume(
                ckpt_path,
                overrides={"workers": int(cfg.get("workers") or 0)},
                health=health_cfg,
            )
            resumed_from = str(ckpt_path)
            probe = sim.config.cosmology
            box = sim.config.box_mpc_h

    if sim is None:
        ps, md = load_checkpoint(workdir / cfg["input"])
        probe = CosmologyParams(
            omega_m=md["omega_m"], omega_b=md["omega_b"], omega_de=md["omega_de"],
            h=md["h"], sigma8=md["sigma8"], n_s=md["n_s"],
        )
        box = md["box_mpc_h"]
        sim_cfg = SimulationConfig(
            cosmology=probe,
            n_per_dim=round(len(ps) ** (1 / 3)),
            box_mpc_h=box,
            a_init=ps.a,
            a_final=cfg["a_final"],
            errtol=cfg["errtol"],
            p=cfg.get("p_order", 4),
            softening=cfg.get("softening", "dehnen_k1"),
            max_refine=2,
            # the Layzer-Irvine monitor needs potentials; only pay for them
            # when health monitoring is on
            track_energy=bool(cfg.get("health")),
            workers=int(cfg.get("workers") or 0),
            health=health_cfg,
        )
        sim = Simulation(sim_cfg, particles=ps)

    checkpointer = False
    if ckpt_every > 0:
        from ..resilience import CheckpointScheduler

        # one scheduler/store pair spans every snapshot leg of the run
        checkpointer = (CheckpointScheduler(every_steps=ckpt_every), store)

    snapshots = sorted(cfg.get("snapshots_a", [cfg["a_final"]]))
    written = []
    skipped = []
    progress = _make_progress(snapshots[-1])
    with sim:
        try:
            for a_snap in snapshots:
                if a_snap <= sim.particles.a * (1 + 1e-12):
                    # a resumed run restarts past this snapshot; the file
                    # was written before the interruption
                    skipped.append(f"{a_snap:.4f}")
                    continue
                sim.config = dataclasses.replace(sim.config, a_final=a_snap)
                state = sim.run(callback=progress, checkpointer=checkpointer)
                out = workdir / f"{cfg['snapshot_base']}_a{a_snap:.4f}.sdf"
                save_checkpoint(
                    out, state, params=probe, box_mpc_h=box,
                    git_tag=cfg.get("code_version"),
                )
                written.append(str(out))
        finally:
            if progress is not None:
                progress.close()
    summary = {"stage": "evolve", "steps": len(sim.history), "snapshots": written}
    if resumed_from:
        summary["resumed_from"] = resumed_from
    if skipped:
        summary["snapshots_skipped"] = skipped
    if store is not None:
        summary["checkpoints"] = [str(p) for p in store.list()]
    if cfg.get("health"):
        summary["health"] = sim.run_totals.get("health", {}).get("events", {})
    return summary


_STAGES["evolve"] = _stage_evolve


def _stage_analysis(cfg, workdir):
    from ..analysis import fof_halos, measure_power
    from ..io import load_checkpoint

    results = {}
    for snap in cfg["snapshots"]:
        path = workdir / snap
        if not path.exists():
            continue
        ps, md = load_checkpoint(path)
        entry = {}
        if "power" in cfg["tasks"]:
            res = measure_power(
                ps.pos, cfg["box_mpc_h"],
                ngrid=2 * round(len(ps) ** (1 / 3)),
                subtract_shot_noise=False,
            )
            entry["power_k"] = res.k.tolist()
            entry["power"] = res.power.tolist()
        if "fof" in cfg["tasks"]:
            fof = fof_halos(ps.pos, ps.mass, min_members=20)
            entry["n_halos"] = int(fof.n_groups)
        results[snap] = entry
    out = workdir / "analysis_results.json"
    out.write_text(json.dumps(results, indent=1))
    return {"stage": "analysis", "snapshots": len(results), "output": str(out)}


_STAGES["analysis"] = _stage_analysis


def main(argv=None) -> int:
    """CLI entry point: ``python -m repro.pipeline.run_stage cfg.json``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline.run_stage",
        description="Run one generated pipeline stage config.",
    )
    parser.add_argument("config", help="stage JSON written by repro.pipeline.config")
    parser.add_argument(
        "--trace", metavar="OUT.JSONL", default=None,
        help="stream structured trace/health events to this JSONL file",
    )
    parser.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="resolve stage paths against DIR (default: the config's directory)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="evolve stage: checkpoint store directory "
             "(default: <workdir>/checkpoints)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="force-solve worker processes (default: config or REPRO_WORKERS)",
    )
    parser.add_argument(
        "--health", action="store_true", default=None,
        help="enable in-situ health monitoring (default: REPRO_HEALTH env)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="evolve stage: write a durable checkpoint every N steps "
             "under <workdir>/checkpoints",
    )
    parser.add_argument(
        "--resume", action="store_true", default=None,
        help="evolve stage: restart from the newest valid checkpoint "
             "under <workdir>/checkpoints (corrupted files are skipped)",
    )
    args = parser.parse_args(argv)
    from ..simulation import Preempted

    kw = dict(
        workdir=args.workdir, workers=args.workers, health=args.health,
        checkpoint_every=args.checkpoint_every, resume=args.resume,
        checkpoint_dir=args.checkpoint_dir,
    )
    try:
        if args.trace is not None:
            # emit_spans: per-span t0/t1 records make the trace exportable
            # as Chrome trace events (`repro-obs export --spans trace.jsonl`)
            tr = Tracer(sink=args.trace, emit_spans=True)
            try:
                run_stage(args.config, tracer=tr, **kw)
            finally:
                tr.close()
        else:
            run_stage(args.config, **kw)
    except Preempted as exc:
        # the stage checkpointed and drained cleanly; a supervisor can
        # resume it bit-identically — distinguish that from a crash
        print(json.dumps({"preempted": True, "error": str(exc),
                          "checkpoint": str(exc.checkpoint or "")}),
              file=sys.stderr)
        return EXIT_PREEMPTED
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
