"""Power-spectrum grids and MCMC analysis (paper §3.4.1).

"It has also proven useful to manage tens of thousands of independent
tasks for MapReduce style jobs on HPC hardware.  For instance, we have
used this approach to generate 6-dimensional grids of cosmological
power spectra, as well as perform Markov-Chain Monte Carlo analyses."

This module supplies those two workloads as working code:

* :class:`PowerSpectrumGrid` — tabulate P(k) over a grid of cosmology
  parameters (each grid point is one independent map task; a helper
  schedules the whole grid through the stask queue for the cost
  accounting) with multilinear interpolation between points,
* :func:`mcmc_fit` — a Metropolis-Hastings sampler fitting cosmology
  parameters to a measured P(k) using the grid as the (fast) model —
  the standard emulator pattern the paper's analyses rely on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..cosmology import CosmologyParams, LinearPower
from .stask import Allocation, STaskQueue, Task

__all__ = ["PowerSpectrumGrid", "mcmc_fit", "schedule_grid"]


@dataclass
class PowerSpectrumGrid:
    """P(k) tabulated on a rectangular grid of cosmological parameters.

    ``axes`` maps parameter names (fields of CosmologyParams) to sorted
    1-d sample arrays; the table holds log P on the Cartesian product.
    """

    axes: dict
    k: np.ndarray
    log_power: np.ndarray  # shape (*[len(v) for v in axes.values()], len(k))
    base: CosmologyParams

    @classmethod
    def build(
        cls,
        base: CosmologyParams,
        axes: dict,
        k: np.ndarray,
        a: float = 1.0,
    ) -> "PowerSpectrumGrid":
        """Evaluate the grid (the MapReduce 'map' side, run inline)."""
        names = list(axes)
        shapes = [len(axes[n]) for n in names]
        out = np.empty(shapes + [len(k)])
        for idx in itertools.product(*(range(s) for s in shapes)):
            changes = {n: float(axes[n][i]) for n, i in zip(names, idx)}
            params = _with_flat(base, changes)
            lp = LinearPower(params)
            out[idx] = np.log(lp.power(k, a=a))
        return cls(axes={n: np.asarray(v, dtype=float) for n, v in axes.items()},
                   k=np.asarray(k, dtype=float), log_power=out, base=base)

    @property
    def n_points(self) -> int:
        n = 1
        for v in self.axes.values():
            n *= len(v)
        return n

    def interpolate(self, **params) -> np.ndarray:
        """Multilinear interpolation of P(k) at arbitrary parameters."""
        names = list(self.axes)
        missing = set(names) - set(params)
        if missing:
            raise ValueError(f"missing parameters: {sorted(missing)}")
        # locate each coordinate
        los, ws = [], []
        for n in names:
            grid = self.axes[n]
            x = float(params[n])
            if x < grid[0] or x > grid[-1]:
                raise ValueError(f"{n}={x} outside grid [{grid[0]}, {grid[-1]}]")
            j = np.clip(np.searchsorted(grid, x) - 1, 0, len(grid) - 2)
            los.append(int(j))
            denom = grid[j + 1] - grid[j]
            ws.append((x - grid[j]) / denom if denom > 0 else 0.0)
        acc = np.zeros(len(self.k))
        for corner in itertools.product((0, 1), repeat=len(names)):
            w = 1.0
            idx = []
            for c, lo, t in zip(corner, los, ws):
                w *= t if c else (1.0 - t)
                idx.append(lo + c)
            if w:
                acc += w * self.log_power[tuple(idx)]
        return np.exp(acc)


def _with_flat(base: CosmologyParams, changes: dict) -> CosmologyParams:
    """Replace fields, re-closing flatness through omega_de."""
    p = base.with_(**changes)
    return p.with_(omega_de=1.0 - p.omega_m - p.omega_r)


def schedule_grid(grid_points: int, cores_per_task: int = 64,
                  task_seconds: float = 600.0,
                  allocation: Allocation | None = None) -> dict:
    """Schedule a grid build as stask map tasks; returns queue stats."""
    alloc = allocation or Allocation(cores=4096, walltime_s=7 * 24 * 3600)
    q = STaskQueue(alloc)
    for i in range(grid_points):
        q.submit(Task(name=f"pk{i}", cores=cores_per_task, duration_s=task_seconds))
    return q.run()


def mcmc_fit(
    grid: PowerSpectrumGrid,
    k_data: np.ndarray,
    p_data: np.ndarray,
    sigma_frac: float = 0.05,
    n_steps: int = 4000,
    step_frac: float = 0.04,
    seed: int = 0,
    burn: int = 500,
) -> dict:
    """Metropolis-Hastings over the grid's parameters.

    Gaussian likelihood on ln P with fractional errors ``sigma_frac``;
    flat priors over the grid extent.  Returns posterior means, stds
    and the acceptance rate.
    """
    rng = np.random.default_rng(seed)
    names = list(grid.axes)
    lo = np.array([grid.axes[n][0] for n in names])
    hi = np.array([grid.axes[n][-1] for n in names])
    theta = 0.5 * (lo + hi)
    step = step_frac * (hi - lo)
    logp_data = np.interp(grid.k, k_data, np.log(p_data))

    def loglike(t):
        model = grid.interpolate(**dict(zip(names, t)))
        resid = (np.log(model) - logp_data) / sigma_frac
        return -0.5 * float(resid @ resid)

    ll = loglike(theta)
    chain = np.empty((n_steps, len(names)))
    accepted = 0
    for i in range(n_steps):
        prop = theta + step * rng.standard_normal(len(names))
        if np.all(prop >= lo) and np.all(prop <= hi):
            llp = loglike(prop)
            if llp - ll > np.log(rng.random()):
                theta, ll = prop, llp
                accepted += 1
        chain[i] = theta
    post = chain[min(burn, n_steps // 4):]
    return {
        "names": names,
        "mean": dict(zip(names, post.mean(axis=0))),
        "std": dict(zip(names, post.std(axis=0))),
        "acceptance": accepted / n_steps,
        "chain": chain,
    }
