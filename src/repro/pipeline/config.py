"""Configuration metaprogramming (paper §3.4).

"We have developed a Python metaprogramming environment to translate
a high-level description of a simulation into the specific text
configuration files and shell scripts required to execute the entire
simulation pipeline."  One :class:`PipelineSpec` is the single source
of truth; it *generates* the per-stage config files (IC generation,
evolution, analysis) and a driver shell script, guaranteeing
consistency among components and reproducibility of earlier runs.
Grids of specs (parameter sweeps, the paper's "thousands of
simulations at once") come from :func:`expand_grid`.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..cosmology import PLANCK2013, CosmologyParams

__all__ = ["PipelineSpec", "expand_grid"]


@dataclass
class PipelineSpec:
    """High-level description of one simulation pipeline run."""

    name: str = "run"
    cosmology: CosmologyParams = PLANCK2013
    n_per_dim: int = 32
    box_mpc_h: float = 256.0
    z_init: float = 49.0
    z_final: float = 0.0
    seed: int = 1234
    use_2lpt: bool = True
    errtol: float = 1e-5
    p_order: int = 4
    softening: str = "dehnen_k1"
    snapshots_z: tuple = (2.0, 1.0, 0.5, 0.0)
    analysis: tuple = ("power", "fof", "so_massfunction")
    git_tag: str = "untagged"
    #: force-solve worker processes for the evolve stage (0 = serial)
    workers: int = 0

    # ----- generated artifacts -------------------------------------------------
    def ic_config(self) -> dict:
        c = self.cosmology
        return {
            "stage": "ic",
            "n_per_dim": self.n_per_dim,
            "box_mpc_h": self.box_mpc_h,
            "a_init": 1.0 / (1.0 + self.z_init),
            "seed": self.seed,
            "use_2lpt": self.use_2lpt,
            "omega_m": c.omega_m,
            "omega_b": c.omega_b,
            "h": c.h,
            "sigma8": c.sigma8,
            "n_s": c.n_s,
            "output": f"{self.name}_ic.sdf",
            "code_version": self.git_tag,
        }

    def evolve_config(self) -> dict:
        return {
            "stage": "evolve",
            "input": f"{self.name}_ic.sdf",
            "a_final": 1.0 / (1.0 + self.z_final),
            "errtol": self.errtol,
            "p_order": self.p_order,
            "softening": self.softening,
            "snapshots_a": [1.0 / (1.0 + z) for z in self.snapshots_z],
            "snapshot_base": f"{self.name}_snap",
            "code_version": self.git_tag,
            "workers": self.workers,
        }

    def analysis_config(self) -> dict:
        return {
            "stage": "analysis",
            "snapshots": [
                f"{self.name}_snap_a{1.0 / (1.0 + z):.4f}.sdf"
                for z in self.snapshots_z
            ],
            "tasks": list(self.analysis),
            "box_mpc_h": self.box_mpc_h,
            "code_version": self.git_tag,
        }

    def shell_script(self) -> str:
        """The driver script tying the stages together."""
        lines = [
            "#!/bin/sh",
            f"# generated from PipelineSpec {self.name!r} ({self.git_tag})",
            "set -e",
            f"python -m repro.pipeline.run_stage {self.name}_ic.json",
            f"python -m repro.pipeline.run_stage {self.name}_evolve.json",
            f"python -m repro.pipeline.run_stage {self.name}_analysis.json",
        ]
        return "\n".join(lines) + "\n"

    def write(self, directory) -> list[Path]:
        """Materialize all config files + script; returns written paths."""
        d = Path(directory)
        d.mkdir(parents=True, exist_ok=True)
        written = []
        for suffix, cfg in (
            ("ic", self.ic_config()),
            ("evolve", self.evolve_config()),
            ("analysis", self.analysis_config()),
        ):
            path = d / f"{self.name}_{suffix}.json"
            path.write_text(json.dumps(cfg, indent=2, sort_keys=True) + "\n")
            written.append(path)
        script = d / f"{self.name}.sh"
        script.write_text(self.shell_script())
        written.append(script)
        return written

    @staticmethod
    def consistent(paths: list[Path]) -> bool:
        """Check the §3.4 guarantee: all stage files agree on shared keys."""
        configs = [json.loads(Path(p).read_text()) for p in paths if str(p).endswith(".json")]
        shared: dict = {}
        for cfg in configs:
            for k, v in cfg.items():
                if k in ("stage", "output", "input", "snapshots", "snapshot_base", "tasks"):
                    continue
                if k in shared and shared[k] != v:
                    return False
                shared[k] = v
        return True


def expand_grid(base: PipelineSpec, **axes) -> list[PipelineSpec]:
    """Cartesian product of parameter axes -> list of named specs.

    Example::

        expand_grid(base, box_mpc_h=[1000, 2000, 4000], seed=[1, 2])
    """
    keys = list(axes)
    out = []
    for combo in itertools.product(*(axes[k] for k in keys)):
        changes = dict(zip(keys, combo))
        label = "_".join(f"{k}-{v}" for k, v in changes.items())
        out.append(
            dataclasses.replace(base, name=f"{base.name}_{label}", **changes)
        )
    return out
