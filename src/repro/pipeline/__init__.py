"""Simulation pipeline management: config metaprogramming and stask."""

from .config import PipelineSpec, expand_grid
from .stask import Allocation, STaskQueue, Task, map_reduce

__all__ = [
    "Allocation",
    "PipelineSpec",
    "STaskQueue",
    "Task",
    "expand_grid",
    "map_reduce",
]
