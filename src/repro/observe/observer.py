"""The observer: who records into the registry, and at what depth.

Mirrors the tracer/health contracts exactly: the process-wide default
is :data:`NULL_OBSERVER`, whose hooks are empty methods — a run without
observation pays one attribute test per hook site.  A real
:class:`Observer` bundles a :class:`~.registry.RunRegistry` with a
profiling depth (:class:`ObserveConfig`): the driver, the pipeline
stage runner and the benchmark writer all fetch the observer through
:func:`get_observer` and call ``record_run`` / ``record_stage`` /
``record_bench``; recording failures are swallowed (observation must
never kill the run it observes).

Environment activation: setting ``REPRO_OBS_DIR`` makes the first
:func:`get_observer` call build an observer over that directory, so
pipelines and CI jobs opt in without touching call sites
(``REPRO_OBS_PROFILE=1`` / ``REPRO_OBS_MEMORY=1`` add the deep hooks).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from .profiler import NULL_PROFILER, StageProfiler
from .registry import KIND_BENCH, KIND_RUN, KIND_STAGE, RunRegistry

__all__ = [
    "ObserveConfig",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "get_observer",
    "set_observer",
    "use_observer",
    "measure_disabled_overhead",
]


@dataclass
class ObserveConfig:
    """Where the registry lives and how deep the hooks go."""

    #: registry root directory (created on first record)
    dir: str | Path = ".repro_obs"
    #: per-stage cProfile capture with hot-function top-N extraction
    profile: bool = False
    #: tracemalloc + RSS high-water memory tracking
    memory: bool = False
    #: hot functions kept per stage
    top_n: int = 15
    #: per-run cap on stored force-call timeline groups
    timeline_calls: int = 40


class NullObserver:
    """The zero-cost default: every hook is a no-op."""

    enabled = False
    registry = None

    def profiler(self):
        return NULL_PROFILER

    def record_run(self, payload: dict, key: str | None = None):
        return None

    def record_stage(self, payload: dict, key: str | None = None):
        return None

    def record_bench(self, payload: dict, key: str | None = None):
        return None


NULL_OBSERVER = NullObserver()


class Observer:
    """The enabled path: a registry plus optional deep profiling."""

    enabled = True

    def __init__(self, config: ObserveConfig | str | Path | None = None):
        if config is None or isinstance(config, (str, Path)):
            config = ObserveConfig(dir=config or ".repro_obs")
        self.config = config
        self.registry = RunRegistry(config.dir)

    def profiler(self):
        """A fresh per-run profiler at the configured depth (the no-op
        singleton when neither deep hook is on)."""
        c = self.config
        if c.profile or c.memory:
            return StageProfiler(cprofile=c.profile, memory=c.memory, top_n=c.top_n)
        return NULL_PROFILER

    # ----- recording (never raises into the observed run) ----------------------
    def _safe_record(self, kind: str, payload: dict, key: str | None):
        try:
            return self.registry.record(kind, payload, key=key)
        except Exception:
            return None

    def record_run(self, payload: dict, key: str | None = None):
        return self._safe_record(KIND_RUN, payload, key)

    def record_stage(self, payload: dict, key: str | None = None):
        return self._safe_record(KIND_STAGE, payload, key)

    def record_bench(self, payload: dict, key: str | None = None):
        return self._safe_record(KIND_BENCH, payload, key)


# ----- process-wide default ----------------------------------------------------
_global_lock = threading.Lock()
_global_observer = None  # None = not yet resolved (environment check pending)


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "on", "yes")


def _from_environment():
    d = os.environ.get("REPRO_OBS_DIR", "").strip()
    if not d:
        return NULL_OBSERVER
    return Observer(ObserveConfig(
        dir=d,
        profile=_env_flag("REPRO_OBS_PROFILE"),
        memory=_env_flag("REPRO_OBS_MEMORY"),
    ))


def get_observer():
    """The process-wide observer.

    Defaults to :data:`NULL_OBSERVER`; on the first call, an observer is
    built from ``REPRO_OBS_DIR`` if that is set.
    """
    global _global_observer
    if _global_observer is None:
        with _global_lock:
            if _global_observer is None:
                _global_observer = _from_environment()
    return _global_observer


def set_observer(observer) -> None:
    """Install ``observer`` process-wide; ``None`` restores the no-op
    (the environment is *not* re-read after an explicit install)."""
    global _global_observer
    with _global_lock:
        _global_observer = observer if observer is not None else NULL_OBSERVER


@contextmanager
def use_observer(observer):
    """Temporarily install ``observer`` as the process-wide default."""
    previous = get_observer()
    set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)


def measure_disabled_overhead(iters: int = 100_000) -> float:
    """Measured seconds of disabled-observer work per driver step.

    Times exactly what a step pays when observation is off — the
    :func:`get_observer` lookup, the null profiler's ``stage`` context
    and the enabled-attribute test — and returns the per-iteration
    cost.  The CI observatory job holds this under 1% of a measured
    step from the perf-smoke bench.
    """
    obs = NULL_OBSERVER
    t0 = time.perf_counter()
    for _ in range(iters):
        o = get_observer()
        prof = obs.profiler()
        with prof.stage("step"):
            if o.enabled:  # pragma: no cover - NULL observer branch
                pass
    return (time.perf_counter() - t0) / iters
