"""Run observatory: persistent run history, deep profiling, worker
timelines and perf-trend regression detection.

The longitudinal layer over :mod:`repro.instrument` (which measures one
run) and :mod:`repro.diagnose` (which judges one run): an append-only
:class:`RunRegistry` records every ``Simulation.run``, pipeline stage
and benchmark emission keyed by the provenance-manifest hash, so the
repo accumulates a perf *trajectory* across commits instead of
overwritten snapshots.  On top of the registry sit per-stage
cProfile/memory profiling (:mod:`.profiler`), per-worker span-lane
reconstruction with compute/idle/recovery attribution
(:mod:`.timeline`), a robust last-N baseline trend engine
(:mod:`.trend`) driven by the ``repro-obs`` CLI and wired into
``repro-diag gate --trend``, standard-format export (Chrome trace
events, speedscope) plus a live JSONL watch (:mod:`.export`), and
differential regression attribution that names what moved between two
records (:mod:`.attribution`).

The default observer is :data:`NULL_OBSERVER` — disabled observation
costs an attribute test per hook, mirroring the no-op tracer/health
contracts.  Set ``REPRO_OBS_DIR`` (plus ``REPRO_OBS_PROFILE`` /
``REPRO_OBS_MEMORY``) to opt a whole process in without touching call
sites.
"""

from .observer import (
    NULL_OBSERVER,
    NullObserver,
    ObserveConfig,
    Observer,
    get_observer,
    measure_disabled_overhead,
    set_observer,
    use_observer,
)
from .attribution import attribute, format_attribution
from .export import (
    chrome_trace_from_record,
    chrome_trace_from_spans,
    speedscope_from_profiler,
    speedscope_from_record,
    watch,
)
from .profiler import NULL_PROFILER, NullProfiler, StageProfiler, top_functions
from .registry import OBS_SCHEMA_VERSION, RunRegistry, metric_value
from .timeline import analyze_timeline, lane_label, render_timeline
from .trend import compare_records, detect_regression, robust_baseline, trend_report

__all__ = [
    "NULL_OBSERVER",
    "NULL_PROFILER",
    "OBS_SCHEMA_VERSION",
    "NullObserver",
    "NullProfiler",
    "ObserveConfig",
    "Observer",
    "RunRegistry",
    "StageProfiler",
    "analyze_timeline",
    "attribute",
    "chrome_trace_from_record",
    "chrome_trace_from_spans",
    "compare_records",
    "detect_regression",
    "format_attribution",
    "get_observer",
    "lane_label",
    "measure_disabled_overhead",
    "metric_value",
    "render_timeline",
    "robust_baseline",
    "set_observer",
    "speedscope_from_profiler",
    "speedscope_from_record",
    "top_functions",
    "trend_report",
    "use_observer",
    "watch",
]
