"""Worker timelines: per-worker span lanes, compute/idle/recovery, critical path.

The executor measures load imbalance as one scalar; this module shows
*where it lives*.  Each sharded force call reports per-shard events
(worker id, start/end offsets from the call's first shard, the
traverse/evaluate split, the dispatch attempt, whether the parent ran
it serially as a recovery) — see
``stats["executor"]["shard_events"]``.  From a list of such calls
(what the driver accumulates into ``Simulation.shard_timeline`` and
the registry stores per run):

* :func:`analyze_timeline` attributes wall time per lane to **compute**
  (first-attempt shard work), **recovery** (re-dispatched shards and
  parent serial fallbacks) and **idle** (lane present but not running
  while the call was still open), and identifies the **critical path**
  — the lane whose last shard ends each call, i.e. the lane every other
  worker waited for;
* :func:`render_timeline` draws one call's lanes as ASCII rows
  (``#`` compute, ``R`` recovery, ``.`` idle) so a terminal shows at a
  glance which worker stretched the step.
"""

from __future__ import annotations

__all__ = ["lane_label", "analyze_timeline", "render_timeline"]


def lane_label(event: dict) -> str:
    """Lane name for one shard event: ``w<id>``, or ``parent`` for a
    serial-fallback shard computed in the parent process."""
    if event.get("local"):
        return "parent"
    return f"w{event.get('worker', '?')}"


def _call_events(call) -> list[dict]:
    """Accept either a ``{"call":..., "events": [...]}`` group or a bare
    event list."""
    if isinstance(call, dict):
        return list(call.get("events") or [])
    return list(call or [])


def analyze_timeline(calls) -> dict:
    """Aggregate lane attribution over a run's force-call timeline.

    Returns a JSON-ready summary::

        {"calls": n, "wall_s": sum of per-call windows,
         "lanes": {label: {"compute_s", "recovery_s", "idle_s",
                           "traverse_s", "evaluate_s", "shards"}},
         "critical": {label: seconds of call windows this lane closed},
         "imbalance": max_lane_busy / mean_lane_busy - 1}

    Per call, the window is the latest shard end (offsets are already
    relative to the call's first shard start); a lane's idle time is
    the window minus its busy time, so lanes that finished early and
    waited on the critical lane show the wait explicitly.
    """
    lanes: dict[str, dict] = {}
    critical: dict[str, float] = {}
    total_window = 0.0
    n_calls = 0
    for call in calls or ():
        events = _call_events(call)
        if not events:
            continue
        n_calls += 1
        window = max(float(e.get("t1", 0.0)) for e in events)
        total_window += window
        busy_here: dict[str, float] = {}
        last_end = -1.0
        crit_lane = None
        for e in events:
            lab = lane_label(e)
            lane = lanes.setdefault(lab, {
                "compute_s": 0.0, "recovery_s": 0.0, "idle_s": 0.0,
                "traverse_s": 0.0, "evaluate_s": 0.0, "shards": 0,
            })
            dur = max(float(e.get("t1", 0.0)) - float(e.get("t0", 0.0)), 0.0)
            recovered = bool(e.get("local")) or int(e.get("attempt", 0)) > 0
            lane["recovery_s" if recovered else "compute_s"] += dur
            lane["traverse_s"] += float(e.get("traverse_s", 0.0))
            lane["evaluate_s"] += float(e.get("evaluate_s", 0.0))
            lane["shards"] += 1
            busy_here[lab] = busy_here.get(lab, 0.0) + dur
            if float(e.get("t1", 0.0)) > last_end:
                last_end = float(e.get("t1", 0.0))
                crit_lane = lab
        for lab, busy in busy_here.items():
            lanes[lab]["idle_s"] += max(window - busy, 0.0)
        if crit_lane is not None:
            critical[crit_lane] = critical.get(crit_lane, 0.0) + window
    busy_totals = [
        lane["compute_s"] + lane["recovery_s"]
        for lab, lane in lanes.items() if lab != "parent"
    ]
    mean_busy = sum(busy_totals) / len(busy_totals) if busy_totals else 0.0
    for lane in lanes.values():
        for k in ("compute_s", "recovery_s", "idle_s", "traverse_s", "evaluate_s"):
            lane[k] = round(lane[k], 6)
    return {
        "calls": n_calls,
        "wall_s": round(total_window, 6),
        "lanes": lanes,
        "critical": {k: round(v, 6) for k, v in sorted(critical.items())},
        "imbalance": round(max(busy_totals) / mean_busy - 1.0, 4)
        if mean_busy > 0 else 0.0,
    }


def render_timeline(call, width: int = 64) -> str:
    """ASCII lanes for one force call: one row per worker, ``#`` while a
    first-attempt shard runs, ``R`` for recovery work (re-dispatched or
    parent-serial shards), ``.`` idle; shard boundaries show as ``|``."""
    events = _call_events(call)
    if not events:
        return "(no shard events)"
    window = max(float(e.get("t1", 0.0)) for e in events)
    if window <= 0:
        return "(zero-length call)"
    scale = (width - 1) / window
    by_lane: dict[str, list[dict]] = {}
    for e in events:
        by_lane.setdefault(lane_label(e), []).append(e)
    labels = sorted(by_lane, key=lambda s: (s == "parent", s))
    pad = max(len(s) for s in labels)
    lines = []
    call_no = call.get("call") if isinstance(call, dict) else None
    header = f"force call {call_no}, " if call_no is not None else ""
    lines.append(f"{header}window {window * 1e3:.1f} ms, {len(events)} shard(s)")
    for lab in labels:
        row = ["."] * width
        busy = 0.0
        for e in sorted(by_lane[lab], key=lambda e: float(e.get("t0", 0.0))):
            c0 = int(float(e.get("t0", 0.0)) * scale)
            c1 = max(int(float(e.get("t1", 0.0)) * scale), c0 + 1)
            mark = "R" if (e.get("local") or int(e.get("attempt", 0)) > 0) else "#"
            for c in range(c0, min(c1, width)):
                row[c] = mark
            if c0 < width and row[c0] != ".":
                row[c0] = "|" if row[c0] == "#" and c0 > 0 and row[c0 - 1] == "#" else row[c0]
            busy += max(float(e.get("t1", 0.0)) - float(e.get("t0", 0.0)), 0.0)
        lines.append(
            f"{lab.rjust(pad)} [{''.join(row)}] busy {busy * 1e3:.1f} ms"
            f" ({busy / window:.0%})"
        )
    return "\n".join(lines)
