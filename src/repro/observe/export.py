"""Standard-format export of observatory data + live stream watch.

Three consumers, three formats:

* **Chrome trace events** (``chrome://tracing`` / Perfetto): the
  per-call shard timelines a sharded run records become per-worker
  lanes — one complete ("X") event per shard, named ``compute`` or
  ``recovery`` with exactly the attribution rule of
  :mod:`repro.observe.timeline` (``attempt > 0`` or parent-local), and
  a flow arrow ("s"/"f") from the call start to every re-dispatched
  shard.  Tracer span streams (``{"type": "span", ...}`` JSONL
  records) export the same way, one lane per emitting thread.
* **speedscope** (https://www.speedscope.app): the per-stage cProfile
  data of :class:`~repro.observe.profiler.StageProfiler` becomes one
  sampled profile per stage, frames weighted by self time — either
  from a live profiler (full pstats) or from the hot-function extract
  a registry record carries.
* **watch**: an incremental JSONL tail that renders the run's step /
  health / checkpoint / recovery / stage records as human lines, for
  following a job that is still writing.

Everything here is read-only over already-recorded data; nothing in
this module runs during a simulation.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .timeline import lane_label

__all__ = [
    "chrome_trace_from_record",
    "chrome_trace_from_spans",
    "speedscope_from_record",
    "speedscope_from_profiler",
    "render_event",
    "watch",
]

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

#: fixed tid of the per-call summary lane; worker lanes follow
_CALLS_TID = 0


def _recovered(event: dict) -> bool:
    """The timeline.py attribution rule, verbatim."""
    return bool(event.get("local")) or int(event.get("attempt", 0) or 0) > 0


def _call_groups(timeline) -> list[tuple[int, list]]:
    """Normalize ``[{"call": n, "events": [...]}, ...]`` or bare lists."""
    groups = []
    for i, group in enumerate(timeline or []):
        if isinstance(group, dict):
            groups.append((int(group.get("call", i + 1)), group.get("events") or []))
        else:
            groups.append((i + 1, list(group)))
    return groups


def chrome_trace_from_record(record: dict) -> dict:
    """Chrome trace-event JSON from a registry record's shard timeline.

    pid is the recorded process, tids are the worker lanes of
    :func:`repro.observe.timeline.analyze_timeline` (plus a per-call
    summary lane at tid 0).  Successive force calls are laid out
    back-to-back on one time axis; within a call the shard offsets are
    the recorded monotonic-clock offsets.  Timestamps are microseconds,
    as the format requires.
    """
    data = record.get("data") or {}
    timeline = data.get("timeline")
    if not timeline:
        raise LookupError(
            "record carries no shard timeline (serial run? workers=0)"
        )
    pid = int(record.get("pid") or 1)
    groups = _call_groups(timeline)
    # stable lane order: parent first, then workers by index
    labels = sorted(
        {lane_label(e) for _, events in groups for e in events},
        key=lambda s: (-1 if s == "parent" else int(s[1:]) if s[1:].isdigit() else 1 << 20, s),
    )
    tid_of = {label: i + 1 for i, label in enumerate(labels)}
    events = [
        {"ph": "M", "pid": pid, "name": "process_name",
         "args": {"name": f"repro run {record.get('id', '?')[:20]}"}},
        {"ph": "M", "pid": pid, "tid": _CALLS_TID, "name": "thread_name",
         "args": {"name": "force calls"}},
    ]
    for label, tid in tid_of.items():
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name", "args": {"name": label}})
    origin = 0.0
    for call, shard_events in groups:
        window = max((float(e.get("t1", 0.0)) for e in shard_events), default=0.0)
        call_ts = origin * 1e6
        events.append({
            "name": f"force call {call}", "ph": "X", "cat": "call",
            "pid": pid, "tid": _CALLS_TID,
            "ts": call_ts, "dur": window * 1e6,
            "args": {"call": call, "shards": len(shard_events)},
        })
        for e in shard_events:
            t0 = float(e.get("t0", 0.0))
            t1 = float(e.get("t1", t0))
            recovered = _recovered(e)
            ts = (origin + t0) * 1e6
            events.append({
                "name": "recovery" if recovered else "compute",
                "ph": "X", "cat": "shard",
                "pid": pid, "tid": tid_of[lane_label(e)],
                "ts": ts, "dur": (t1 - t0) * 1e6,
                "args": {
                    "call": call,
                    "shard": int(e.get("shard", -1)),
                    "worker": e.get("worker"),
                    "attempt": int(e.get("attempt", 0) or 0),
                    "local": bool(e.get("local")),
                    "traverse_s": e.get("traverse_s"),
                    "evaluate_s": e.get("evaluate_s"),
                },
            })
            if recovered:
                flow_id = f"{call}:{int(e.get('shard', -1))}"
                events.append({
                    "name": "redispatch", "ph": "s", "cat": "recovery",
                    "id": flow_id, "pid": pid, "tid": _CALLS_TID,
                    "ts": call_ts,
                })
                events.append({
                    "name": "redispatch", "ph": "f", "bp": "e",
                    "cat": "recovery", "id": flow_id, "pid": pid,
                    "tid": tid_of[lane_label(e)], "ts": ts,
                })
        origin += window
    events.sort(key=lambda e: e.get("ts", 0.0))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "record_id": record.get("id"),
            "kind": record.get("kind"),
            "key": record.get("key"),
            "git_commit": record.get("git_commit"),
            "exporter": "repro-obs export",
        },
    }


def chrome_trace_from_spans(records) -> dict:
    """Chrome trace-event JSON from a tracer span stream.

    ``records`` is an iterable of JSONL records (see
    :func:`repro.instrument.events.read_jsonl`); ``span`` records carry
    ``t0/t1`` perf-counter stamps and an optional emitting-thread
    ``tid``.  One lane per thread; nesting renders from ts/dur overlap.
    """
    spans = [r for r in records
             if r.get("type") == "span" and "t0" in r and "t1" in r]
    if not spans:
        raise LookupError("stream carries no span records "
                          "(tracer ran without emit_spans?)")
    t_origin = min(float(s["t0"]) for s in spans)
    threads = sorted({s.get("tid", 0) for s in spans}, key=str)
    tid_of = {t: i for i, t in enumerate(threads)}
    events = [
        {"ph": "M", "pid": 1, "name": "process_name",
         "args": {"name": "repro trace"}},
    ]
    for t, tid in tid_of.items():
        events.append({"ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
                       "args": {"name": f"thread {t}"}})
    for s in spans:
        t0 = float(s["t0"]) - t_origin
        events.append({
            "name": s.get("path", "?"), "ph": "X", "cat": "span",
            "pid": 1, "tid": tid_of[s.get("tid", 0)],
            "ts": t0 * 1e6,
            "dur": max(float(s["t1"]) - float(s["t0"]), 0.0) * 1e6,
            "args": {"seconds": s.get("seconds")},
        })
    events.sort(key=lambda e: e.get("ts", 0.0))
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"exporter": "repro-obs export"}}


# ---------------------------------------------------------------------------
# speedscope
# ---------------------------------------------------------------------------


def _speedscope(stage_rows: list[tuple[str, list[tuple[str, str, float]]]],
                name: str) -> dict:
    """Build a speedscope file from per-stage ``(function, where, self_s)``
    rows: one sampled profile per stage, one single-frame sample per
    function weighted by its self time (a self-time flamegraph)."""
    frames: list[dict] = []
    index: dict[tuple[str, str], int] = {}
    profiles = []
    for stage, rows in stage_rows:
        samples, weights = [], []
        for func, where, self_s in rows:
            if self_s <= 0.0:
                continue
            key = (func, where)
            if key not in index:
                index[key] = len(frames)
                file, _, line = where.rpartition(":")
                frames.append({
                    "name": func,
                    "file": file or where,
                    "line": int(line) if line.isdigit() else 0,
                })
            samples.append([index[key]])
            weights.append(float(self_s))
        profiles.append({
            "type": "sampled",
            "name": stage,
            "unit": "seconds",
            "startValue": 0,
            "endValue": float(sum(weights)),
            "samples": samples,
            "weights": weights,
        })
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro-obs export",
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def speedscope_from_record(record: dict) -> dict:
    """speedscope profile from the hot-function extract of a profiled
    registry record (``REPRO_OBS_PROFILE=1`` runs)."""
    stages = ((record.get("data") or {}).get("profile") or {}).get("stages")
    if not stages:
        raise LookupError("record carries no profile data "
                          "(run with REPRO_OBS_PROFILE=1)")
    stage_rows = [
        (stage, [(h.get("function", "?"), h.get("where", "?"),
                  float(h.get("self_s", 0.0)))
                 for h in (info.get("hot") or [])])
        for stage, info in stages.items()
    ]
    return _speedscope(stage_rows, f"run {record.get('id', '?')[:20]}")


def speedscope_from_profiler(prof) -> dict:
    """speedscope profile from a live :class:`StageProfiler` — the full
    pstats tables, not just the recorded top-N."""
    import pstats

    from .profiler import _trim_path

    raw = getattr(prof, "_profiles", None) or {}
    if not raw:
        raise LookupError("profiler holds no per-stage cProfile data")
    stage_rows = []
    for stage, profile in raw.items():
        st = pstats.Stats(profile)
        rows = [
            (func, f"{_trim_path(file)}:{line}", float(tt))
            for (file, line, func), (cc, nc, tt, ct, callers) in st.stats.items()
        ]
        rows.sort(key=lambda r: r[2], reverse=True)
        stage_rows.append((stage, rows))
    return _speedscope(stage_rows, "stage profiler")


# ---------------------------------------------------------------------------
# live watch
# ---------------------------------------------------------------------------


def render_event(rec: dict) -> str | None:
    """One human line per stream record; None = skip (spans, metrics)."""
    t = rec.get("type")
    if t == "step":
        return (f"step {rec.get('step', '?'):>4}  a={rec.get('a', 0.0):.4f}  "
                f"dlna={rec.get('dlna', 0.0):.4f}  "
                f"wall {rec.get('wall', 0.0):.2f}s  "
                f"ipp {rec.get('interactions_per_particle', 0.0):.0f}")
    if t == "init_force":
        return (f"init force  a={rec.get('a', 0.0):.4f}  "
                f"wall {rec.get('wall', 0.0):.2f}s")
    if t == "health":
        return (f"health [{rec.get('severity', '?')}] "
                f"{rec.get('monitor', '?')}: {rec.get('message', '')}")
    if t == "health_fatal":
        return f"health FATAL: {rec.get('message', '')}"
    if t == "backend_fallback":
        return (f"backend fallback -> {rec.get('backend', '?')}: "
                f"{rec.get('reason', '')}")
    if t == "executor_recovery":
        return (f"recovery {rec.get('kind', '?')} "
                f"shard={rec.get('shard', '?')} worker={rec.get('worker', '?')}")
    if t == "checkpoint":
        return f"checkpoint step {rec.get('step', '?')} -> {rec.get('path', '?')}"
    if t == "run_totals":
        return (f"run totals: {rec.get('steps', '?')} steps, "
                f"wall {rec.get('wall_s', 0.0):.1f}s"
                + ("  [PARTIAL]" if rec.get("partial") else ""))
    if t == "pipeline_stage":
        return (f"stage {rec.get('stage', '?')} done  "
                f"wall {rec.get('wall_s', 0.0):.1f}s")
    return None


def watch(path, out, follow: bool = True, poll_s: float = 0.5) -> int:
    """Tail a JSONL event stream, rendering records as they land.

    Existing content renders immediately; with ``follow`` the file is
    then polled for appended lines until interrupted (partial trailing
    lines — a writer mid-record — are left pending, never mangled).
    Returns the number of lines rendered.
    """
    path = Path(path)
    rendered = 0
    buf = b""
    pos = 0
    try:
        while True:
            if path.exists():
                with open(path, "rb") as fh:
                    fh.seek(pos)
                    chunk = fh.read()
                    pos = fh.tell()
                buf += chunk
                while b"\n" in buf:
                    raw, buf = buf.split(b"\n", 1)
                    if not raw.strip():
                        continue
                    try:
                        rec = json.loads(raw)
                    except ValueError:
                        continue
                    line = render_event(rec)
                    if line is not None:
                        print(line, file=out, flush=True)
                        rendered += 1
            if not follow:
                return rendered
            time.sleep(poll_s)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return rendered
