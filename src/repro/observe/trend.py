"""Perf-trend fitting and regression detection over the run registry.

The judgment layer: given the metric series a registry accumulates
(wall per step, force wall, interactions per particle, ...), fit the
last-N baseline as a **median with a MAD noise band** and flag the
newest value when it leaves the band by more than the relative floor.
Robust statistics matter here — one flaky CI run must not poison the
baseline the way it would poison a mean, and the relative floor keeps
a near-noiseless history (MAD ~ 0) from flagging 2% jitter.

``repro-obs trend`` renders the verdict; ``repro-diag gate --trend``
wires it into CI so perf gating judges against the *trajectory*
instead of a single frozen baseline file.
"""

from __future__ import annotations

from .registry import RunRegistry, metric_value

__all__ = [
    "robust_baseline",
    "detect_regression",
    "trend_report",
    "compare_records",
]

#: default baseline window (last N runs before the judged one)
DEFAULT_WINDOW = 5
#: band half-width in robust sigmas
DEFAULT_SIGMAS = 4.0
#: relative floor on the band (2% jitter never flags at 10%)
DEFAULT_MIN_REL = 0.10


def _median(values) -> float:
    vs = sorted(values)
    n = len(vs)
    mid = n // 2
    return float(vs[mid]) if n % 2 else float(vs[mid - 1] + vs[mid]) / 2.0


def robust_baseline(values) -> tuple[float, float]:
    """``(center, scale)``: median and MAD-derived robust sigma."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("no values to fit a baseline from")
    center = _median(values)
    mad = _median(abs(v - center) for v in values)
    return center, 1.4826 * mad


def detect_regression(
    history,
    current: float,
    sigmas: float = DEFAULT_SIGMAS,
    min_rel: float = DEFAULT_MIN_REL,
    direction: str = "max",
) -> dict:
    """Judge ``current`` against a fitted ``history`` baseline.

    ``direction="max"`` treats larger as worse (wall time); ``"min"``
    treats smaller as worse (throughput).  The flag bound is
    ``center ± max(sigmas * scale, min_rel * |center|)`` — the noise
    band of the history, floored at a relative change small jitter
    cannot cross.  With under two history points there is no noise
    estimate, so the verdict is "insufficient history" and nothing
    flags.
    """
    history = [float(v) for v in history]
    if len(history) < 2:
        return {
            "regression": False,
            "status": "insufficient-history",
            "n_history": len(history),
            "value": float(current),
        }
    center, scale = robust_baseline(history)
    band = max(sigmas * scale, min_rel * abs(center))
    if direction == "min":
        threshold = center - band
        regression = float(current) < threshold
    else:
        threshold = center + band
        regression = float(current) > threshold
    return {
        "regression": bool(regression),
        "status": "regression" if regression else "ok",
        "value": float(current),
        "center": center,
        "scale": scale,
        "band": band,
        "threshold": threshold,
        "ratio": float(current) / center if center else float("inf"),
        "n_history": len(history),
    }


def trend_report(
    registry: RunRegistry,
    metric: str,
    kind: str | None = None,
    key: str | None = None,
    window: int = DEFAULT_WINDOW,
    sigmas: float = DEFAULT_SIGMAS,
    min_rel: float = DEFAULT_MIN_REL,
    direction: str = "max",
) -> dict:
    """Fit the last-``window`` baseline and judge the newest record.

    Returns ``{"metric", "series": [(id, t, value), ...], "verdict"}``;
    ``verdict["status"]`` is ``"no-data"`` / ``"insufficient-history"``
    / ``"ok"`` / ``"regression"``.
    """
    series = registry.series(metric, kind=kind, key=key)
    points = [
        {"id": rec.get("id"), "t": rec.get("t"), "value": v,
         "git_commit": (rec.get("git_commit") or "")[:12] or None}
        for rec, v in series
    ]
    if not points:
        verdict = {"regression": False, "status": "no-data", "n_history": 0}
    else:
        history = [p["value"] for p in points[:-1]][-window:]
        verdict = detect_regression(
            history, points[-1]["value"],
            sigmas=sigmas, min_rel=min_rel, direction=direction,
        )
    return {"metric": metric, "kind": kind, "key": key,
            "series": points, "verdict": verdict}


def compare_records(a: dict, b: dict) -> list[tuple]:
    """Numeric metric diff between two registry records.

    Flattens each record's payload to dotted numeric leaves and returns
    ``(metric, value_a, value_b, ratio)`` rows for metrics present in
    both (ratio is b/a; None when a is 0).  Long list-valued fields
    (timelines, per-shard arrays) are skipped — this compares scalars.
    """
    fa = _flatten(a.get("data") or {})
    fb = _flatten(b.get("data") or {})
    rows = []
    for name in sorted(set(fa) & set(fb)):
        va, vb = fa[name], fb[name]
        rows.append((name, va, vb, (vb / va) if va else None))
    return rows


def _flatten(node, prefix: str = "", out: dict | None = None, depth: int = 0) -> dict:
    if out is None:
        out = {}
    if depth > 6 or not isinstance(node, dict):
        return out
    for k, v in node.items():
        name = f"{prefix}.{k}" if prefix else str(k)
        if isinstance(v, bool):
            continue
        if isinstance(v, (int, float)):
            out[name] = float(v)
        elif isinstance(v, dict):
            _flatten(v, name, out, depth + 1)
    return out
