"""Persistent run registry: an append-only JSONL store of run history.

Every ``BENCH_*.json`` the repo wrote before this module was an
overwritten snapshot — the registry is what turns those snapshots into
a *trajectory*.  One :class:`RunRegistry` owns a directory holding
``registry.jsonl``; each :meth:`record` appends one envelope-stamped
line (schema version, id, kind, key, timestamp, git commit, host,
cpu_count) wrapping the caller's payload.  Records are keyed by the
PR 3 provenance-manifest hash (``config_sha256``) so runs of the same
configuration form a comparable series across commits.

Appends are single ``write()`` calls on an ``O_APPEND`` handle, so
concurrent stages interleave whole lines; a truncated final line (a
crashed writer) is skipped on read rather than poisoning the store.
"""

from __future__ import annotations

import json
import os
import secrets
import time
from pathlib import Path

__all__ = ["OBS_SCHEMA_VERSION", "RunRegistry", "metric_value"]

OBS_SCHEMA_VERSION = 1

#: record kinds the stack emits (callers may add their own)
KIND_RUN = "simulation_run"
KIND_STAGE = "pipeline_stage"
KIND_BENCH = "bench"


def _jsonable(obj):
    """json.dumps default hook: numpy scalars/arrays, paths, repr-fallback."""
    import numpy as np

    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, Path):
        return str(obj)
    return repr(obj)


def metric_value(record: dict, metric: str):
    """Resolve a (possibly dotted) metric name against a registry record.

    Looks in the payload (``record["data"]``) first, then the envelope:
    ``"wall_s"`` finds ``data["wall_s"]``, ``"run_totals.wall_s"``
    descends into nested dicts.  Returns ``None`` when absent or not a
    number (bools are not numbers here).
    """
    for root in (record.get("data") or {}, record):
        node = root
        for part in metric.split("."):
            if not isinstance(node, dict) or part not in node:
                node = None
                break
            node = node[part]
        if isinstance(node, (int, float)) and not isinstance(node, bool):
            return float(node)
    return None


class RunRegistry:
    """Append-only JSONL store under ``root`` with a small query API."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / "registry.jsonl"

    # ----- writing -------------------------------------------------------------
    def record(self, kind: str, payload: dict, key: str | None = None) -> dict:
        """Append one envelope-stamped record; returns what was written."""
        now = time.time()
        rec = {
            "obs_schema": OBS_SCHEMA_VERSION,
            "id": f"{int(now * 1000):013d}-{secrets.token_hex(3)}",
            "kind": str(kind),
            "key": key,
            "t_unix": now,
            "t": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(now)),
            "git_commit": git_commit(),
            "hostname": _hostname(),
            "cpu_count": os.cpu_count(),
            "pid": os.getpid(),
            "data": payload,
        }
        line = json.dumps(rec, default=_jsonable) + "\n"
        with open(self.path, "ab") as fh:
            # a crashed writer can leave a torn tail with no newline;
            # terminating it here keeps that failure from also
            # swallowing this record (still one atomic O_APPEND write)
            prefix = b""
            if fh.tell() > 0:
                try:
                    with open(self.path, "rb") as rd:
                        rd.seek(-1, os.SEEK_END)
                        if rd.read(1) != b"\n":
                            prefix = b"\n"
                except OSError:
                    pass
            fh.write(prefix + line.encode("utf-8"))
        return rec

    # ----- reading -------------------------------------------------------------
    def records(self, kind: str | None = None, key: str | None = None,
                limit: int | None = None) -> list[dict]:
        """All records oldest-first, optionally filtered; ``limit`` keeps
        only the newest N *after* filtering."""
        out = []
        if self.path.exists():
            with open(self.path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail line from a crashed writer
                    if kind is not None and rec.get("kind") != kind:
                        continue
                    if key is not None and rec.get("key") != key:
                        continue
                    out.append(rec)
        if limit is not None and limit >= 0:
            out = out[len(out) - min(limit, len(out)):]
        return out

    def last(self, kind: str | None = None, key: str | None = None) -> dict | None:
        recs = self.records(kind=kind, key=key, limit=1)
        return recs[-1] if recs else None

    def get(self, ref) -> dict:
        """Resolve a record reference: an id prefix, or an integer index
        into the full oldest-first listing (1-based; negative counts
        from the end, so ``-1`` is the newest record)."""
        recs = self.records()
        if not recs:
            raise LookupError("registry is empty")
        sref = str(ref).strip()
        try:
            idx = int(sref)
        except ValueError:
            matches = [r for r in recs if str(r.get("id", "")).startswith(sref)]
            if len(matches) == 1:
                return matches[0]
            if not matches:
                raise LookupError(f"no record with id prefix {sref!r}") from None
            raise LookupError(
                f"id prefix {sref!r} is ambiguous ({len(matches)} matches)"
            ) from None
        if idx == 0:
            raise LookupError("record indices are 1-based (negative from the end)")
        pos = idx - 1 if idx > 0 else len(recs) + idx
        if not 0 <= pos < len(recs):
            raise LookupError(f"record index {idx} out of range (1..{len(recs)})")
        return recs[pos]

    def series(self, metric: str, kind: str | None = None,
               key: str | None = None, limit: int | None = None):
        """``(record, value)`` pairs, oldest-first, for records where
        ``metric`` resolves to a number."""
        out = []
        for rec in self.records(kind=kind, key=key):
            v = metric_value(rec, metric)
            if v is not None:
                out.append((rec, v))
        if limit is not None:
            out = out[len(out) - min(limit, len(out)):]
        return out


# ----- environment stamps ------------------------------------------------------
_GIT_COMMIT_CACHE: list = []


def git_commit() -> str | None:
    """The repo's HEAD commit (cached; None outside a git checkout)."""
    if not _GIT_COMMIT_CACHE:
        from ..diagnose.manifest import _git_commit

        _GIT_COMMIT_CACHE.append(_git_commit())
    return _GIT_COMMIT_CACHE[0]


def _hostname() -> str:
    import socket

    try:
        return socket.gethostname()
    except Exception:
        return "unknown"
