"""Differential regression attribution between two registry records.

``repro-obs diff A B`` and the ``repro-diag gate --trend`` failure
path both want the same thing: not *that* run B is slower than run A,
but *what moved*.  This module compares two records span-by-span and
counter-by-counter (every dotted numeric leaf of the payloads — stage
seconds, top spans, kernel roofline counters, interaction counts) and
ranks the movers so the headline names the culprit:

    wall_per_step_s              1.02 -> 2.31   (+2.3x)
    stage_seconds.evaluate       0.48 -> 1.61   (+3.4x)
    kernel.gflops                1.92 -> 0.41   (-4.7x)
    backend fell back to numpy: compiled backend requested but numba
    is not installed

Ranking: time-like metrics (``*_s``, ``wall*``, ``*seconds*``) score
by seconds moved — a 0.5 s swing outranks a 10x blowup of a 2 µs
span — and pure counters score by log-ratio; time movers are listed
first.  Backend identity is not numeric, so backend / fallback-reason
changes are reported as explicit notes, not buried.
"""

from __future__ import annotations

import math

from .trend import _flatten

__all__ = ["attribute", "format_attribution"]

#: below this ratio a metric is noise, not a mover
DEFAULT_MIN_RATIO = 1.05

#: string-valued payload fields worth calling out when they change
_STRING_FIELDS = ("backend", "backend_fallback", "engine", "kernel.backend")


def _is_time(name: str) -> bool:
    if name.endswith("_per_s"):  # a rate, not a duration
        return False
    return (name.endswith("_s") or "wall" in name or "seconds" in name
            or name.endswith(".total_s"))


def _string_leaf(data: dict, dotted: str):
    node = data
    for part in dotted.split("."):
        if not isinstance(node, dict):
            return None
        node = node.get(part)
    return node if isinstance(node, str) else None


def attribute(rec_a: dict, rec_b: dict, top: int = 8,
              min_ratio: float = DEFAULT_MIN_RATIO) -> dict:
    """Compare two registry records and rank what moved.

    Returns ``{"a", "b", "movers", "notes"}`` where each mover is
    ``{"metric", "a", "b", "ratio", "delta", "kind"}`` (ratio is b/a,
    None when a is 0) sorted worst-first, and ``notes`` are string
    observations (backend changes, appeared/vanished metrics).
    """
    da = rec_a.get("data") or {}
    db = rec_b.get("data") or {}
    fa = _flatten(da)
    fb = _flatten(db)
    movers = []
    for name in sorted(set(fa) & set(fb)):
        va, vb = fa[name], fb[name]
        ratio = (vb / va) if va else None
        if ratio is not None and ratio > 0:
            if max(ratio, 1.0 / ratio) < min_ratio:
                continue
            log_r = abs(math.log2(ratio))
        else:
            if va == vb:
                continue
            log_r = float("inf") if (va == 0.0) != (vb == 0.0) else 0.0
        kind = "time" if _is_time(name) else "counter"
        score = abs(vb - va) if kind == "time" else min(log_r, 64.0)
        movers.append({
            "metric": name, "a": va, "b": vb, "ratio": ratio,
            "delta": vb - va, "kind": kind, "score": score,
        })
    movers.sort(key=lambda m: (m["kind"] != "time", -m["score"]))
    notes = []
    for field in _STRING_FIELDS:
        sa, sb = _string_leaf(da, field), _string_leaf(db, field)
        if sa == sb:
            continue
        if field == "backend_fallback" and sb:
            notes.append(
                f"backend fell back to {db.get('backend', '?')}: {sb}"
            )
        elif field == "backend_fallback":
            notes.append(f"backend fallback cleared (was: {sa})")
        else:
            notes.append(f"{field} changed: {sa!r} -> {sb!r}")
    only_a = sorted(set(fa) - set(fb))
    only_b = sorted(set(fb) - set(fa))
    if only_b:
        notes.append("metrics new in B: " + ", ".join(only_b[:6])
                     + (" ..." if len(only_b) > 6 else ""))
    if only_a:
        notes.append("metrics gone in B: " + ", ".join(only_a[:6])
                     + (" ..." if len(only_a) > 6 else ""))
    return {
        "a": {"id": rec_a.get("id"), "t": rec_a.get("t"),
              "git_commit": (rec_a.get("git_commit") or "")[:12] or None},
        "b": {"id": rec_b.get("id"), "t": rec_b.get("t"),
              "git_commit": (rec_b.get("git_commit") or "")[:12] or None},
        "movers": movers[:top],
        "notes": notes,
    }


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e5 or abs(v) < 1e-3:
        return f"{v:.3g}"
    return f"{v:.4g}"


def _fmt_ratio(m: dict) -> str:
    r = m["ratio"]
    if r is None or r <= 0:
        return "appeared" if m["a"] == 0 else "vanished"
    if r >= 1:
        return f"+{r:.2f}x"
    return f"-{1.0 / r:.2f}x"


def format_attribution(report: dict) -> str:
    """Render an attribution report as aligned text lines."""
    lines = [
        f"A: {report['a'].get('id', '?')}  ({report['a'].get('t', '?')}"
        f"{', ' + report['a']['git_commit'] if report['a'].get('git_commit') else ''})",
        f"B: {report['b'].get('id', '?')}  ({report['b'].get('t', '?')}"
        f"{', ' + report['b']['git_commit'] if report['b'].get('git_commit') else ''})",
    ]
    if not report["movers"]:
        lines.append("no metric moved beyond the noise floor")
    else:
        lines.append("top movers (B vs A):")
        width = max(len(m["metric"]) for m in report["movers"])
        for m in report["movers"]:
            lines.append(
                f"  {m['metric']:<{width}}  "
                f"{_fmt(m['a']):>10} -> {_fmt(m['b']):>10}   {_fmt_ratio(m)}"
            )
    for note in report["notes"]:
        lines.append(f"note: {note}")
    return "\n".join(lines)
