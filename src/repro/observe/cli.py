"""``repro-obs``: query and judge the persistent run registry.

* ``repro-obs list`` — the run/bench history, newest last;
* ``repro-obs show <ref>`` — one record in full (ref = id prefix or
  1-based index, negative from the end);
* ``repro-obs timeline <ref>`` — ASCII worker lanes for a recorded
  run's force calls plus the compute/idle/recovery attribution and
  critical-path split;
* ``repro-obs top <ref>`` — per-stage hot functions from a profiled
  run;
* ``repro-obs trend <metric>`` — fit the last-N baseline with a noise
  band and judge the newest record (exit 2 on regression);
* ``repro-obs compare <ref> <ref>`` — numeric metric diff between two
  records;
* ``repro-obs export <ref>`` — Chrome trace-event JSON (worker lanes)
  and a speedscope flamegraph from a recorded run, or a span-stream
  trace via ``--spans trace.jsonl``;
* ``repro-obs diff <ref> <ref>`` — ranked regression attribution: the
  top moved spans/counters plus backend-change notes;
* ``repro-obs watch <path>`` — tail a running job's JSONL event stream.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..instrument.report import _table
from .attribution import attribute, format_attribution
from .export import (
    chrome_trace_from_record,
    chrome_trace_from_spans,
    speedscope_from_record,
    watch,
)
from .registry import RunRegistry, metric_value
from .timeline import analyze_timeline, render_timeline
from .trend import (
    DEFAULT_MIN_REL,
    DEFAULT_SIGMAS,
    DEFAULT_WINDOW,
    compare_records,
    trend_report,
)

__all__ = ["build_parser", "main"]


def _registry(args) -> RunRegistry:
    root = args.dir or os.environ.get("REPRO_OBS_DIR", "").strip() or ".repro_obs"
    return RunRegistry(root)


def _fmt_num(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v != 0 and (abs(v) < 1e-3 or abs(v) >= 1e5):
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


# ----- subcommands -------------------------------------------------------------
def _cmd_list(args) -> int:
    reg = _registry(args)
    recs = reg.records(kind=args.kind, key=args.key)
    if not recs:
        print(f"(registry {reg.path} is empty)")
        return 0
    all_ids = {r.get("id"): i + 1 for i, r in enumerate(reg.records())}
    if args.n:
        recs = recs[-args.n:]
    rows = []
    for r in recs:
        d = r.get("data") or {}
        state = "partial" if d.get("partial") else "ok"
        if d.get("backend_fallback"):
            # a silently degraded backend is a state worth a glance
            state += "+fb"
        rows.append((
            all_ids.get(r.get("id"), "-"),
            str(r.get("id", ""))[:20],
            r.get("kind", "?"),
            (r.get("t") or "")[:19],
            (r.get("key") or "")[:10],
            (r.get("git_commit") or "")[:8],
            _fmt_num(metric_value(r, "wall_s")),
            _fmt_num(d.get("steps")),
            state,
        ))
    print(_table(
        f"Registry {reg.path}",
        ["#", "id", "kind", "t", "key", "commit", "wall_s", "steps", "state"],
        rows,
    ))
    fallbacks = [r for r in recs
                 if (r.get("data") or {}).get("backend_fallback")]
    if fallbacks:
        last = fallbacks[-1]
        print(f"\n{len(fallbacks)} record(s) ran on a fallback backend; "
              f"latest reason: {(last['data'] or {}).get('backend_fallback')}")
    return 0


def _cmd_show(args) -> int:
    reg = _registry(args)
    rec = dict(reg.get(args.ref))
    data = dict(rec.get("data") or {})
    tl = data.get("timeline")
    if isinstance(tl, list) and tl and not args.full:
        data["timeline"] = f"({len(tl)} force-call event groups; " \
                           f"see `repro-obs timeline {rec.get('id')}`)"
    rec["data"] = data
    print(json.dumps(rec, indent=1, sort_keys=True, default=str))
    return 0


def _cmd_timeline(args) -> int:
    reg = _registry(args)
    rec = reg.get(args.ref)
    calls = (rec.get("data") or {}).get("timeline") or []
    if not calls:
        print("record carries no shard timeline (serial run, or workers=0)",
              file=sys.stderr)
        return 1
    idx = args.call if args.call is not None else len(calls)
    if not 1 <= idx <= len(calls):
        print(f"--call must be in 1..{len(calls)}", file=sys.stderr)
        return 1
    print(render_timeline(calls[idx - 1], width=args.width))
    summary = analyze_timeline(calls)
    rows = [
        (lab, lane["shards"], lane["compute_s"], lane["recovery_s"],
         lane["idle_s"], lane["traverse_s"], lane["evaluate_s"])
        for lab, lane in sorted(summary["lanes"].items())
    ]
    print()
    print(_table(
        f"Lane attribution over {summary['calls']} force call(s), "
        f"window {summary['wall_s']:.3f}s, imbalance {summary['imbalance']:.1%}",
        ["lane", "shards", "compute_s", "recovery_s", "idle_s",
         "traverse_s", "evaluate_s"],
        rows,
    ))
    crit = summary["critical"]
    if crit:
        total = sum(crit.values()) or 1.0
        parts = ", ".join(
            f"{lab} {sec / total:.0%}" for lab, sec in
            sorted(crit.items(), key=lambda kv: -kv[1])
        )
        print(f"\ncritical path (lane closing each call): {parts}")
    return 0


def _cmd_top(args) -> int:
    reg = _registry(args)
    rec = reg.get(args.ref)
    profile = (rec.get("data") or {}).get("profile") or {}
    stages = profile.get("stages") or {}
    if not stages:
        print("record carries no profile (run with REPRO_OBS_PROFILE=1 or "
              "ObserveConfig(profile=True))", file=sys.stderr)
        return 1
    for name, st in stages.items():
        rows = [
            (h["function"], h["where"], h["calls"],
             _fmt_num(h["self_s"]), _fmt_num(h["cum_s"]))
            for h in (st.get("hot") or [])[:args.n]
        ]
        print(_table(
            f"Hot functions: stage {name} "
            f"({st.get('seconds', 0.0):.3f}s over {st.get('calls', 0)} entries)",
            ["function", "where", "calls", "self_s", "cum_s"],
            rows,
        ))
        print()
    mem = profile.get("memory")
    if mem:
        print(_table("Memory high-water", ["metric", "value"],
                     sorted(mem.items())))
    return 0


def _cmd_trend(args) -> int:
    reg = _registry(args)
    rep = trend_report(
        reg, args.metric, kind=args.kind, key=args.key,
        window=args.window, sigmas=args.sigmas, min_rel=args.min_rel,
        direction=args.direction,
    )
    rows = [
        (p["id"][:20] if p["id"] else "-", (p["t"] or "")[:19],
         p["git_commit"] or "-", _fmt_num(p["value"]))
        for p in rep["series"][-(args.window + 1):]
    ]
    print(_table(f"Trend: {args.metric}" + (f" [{args.kind}]" if args.kind else ""),
                 ["id", "t", "commit", "value"], rows))
    v = rep["verdict"]
    if v["status"] in ("no-data", "insufficient-history"):
        print(f"\n{v['status']}: {v.get('n_history', 0)} comparable run(s); "
              "nothing to judge")
        return 0
    print(
        f"\nbaseline (last {v['n_history']}): center {_fmt_num(v['center'])}, "
        f"noise band ±{_fmt_num(v['band'])} -> threshold {_fmt_num(v['threshold'])}"
    )
    if v["regression"]:
        print(
            f"REGRESSION: {args.metric} = {_fmt_num(v['value'])} "
            f"({v['ratio']:.2f}x baseline)", file=sys.stderr,
        )
        return 2
    print(f"ok: {args.metric} = {_fmt_num(v['value'])} "
          f"({v['ratio']:.2f}x baseline)")
    return 0


def _cmd_compare(args) -> int:
    reg = _registry(args)
    a, b = reg.get(args.ref_a), reg.get(args.ref_b)
    rows = []
    for name, va, vb, ratio in compare_records(a, b):
        if args.filter and args.filter not in name:
            continue
        rows.append((name, _fmt_num(va), _fmt_num(vb),
                     "-" if ratio is None else f"{ratio:.3f}x"))
    if not rows:
        print("(no shared numeric metrics)")
        return 0
    print(_table(
        f"Compare {a.get('id')} ({(a.get('t') or '')[:19]}) -> "
        f"{b.get('id')} ({(b.get('t') or '')[:19]})",
        ["metric", "a", "b", "b/a"], rows,
    ))
    return 0


def _cmd_export(args) -> int:
    if args.spans:
        from ..instrument.events import read_jsonl

        trace = chrome_trace_from_spans(read_jsonl(args.spans))
    else:
        reg = _registry(args)
        rec = reg.get(args.ref)
        trace = chrome_trace_from_record(rec)
    with open(args.out, "w") as fh:
        json.dump(trace, fh)
    n = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    print(f"wrote {args.out}: {n} events "
          f"({len(trace['traceEvents'])} total incl. metadata/flows)")
    if args.speedscope:
        if args.spans:
            print("--speedscope needs a registry record, not --spans",
                  file=sys.stderr)
            return 1
        prof = speedscope_from_record(rec)
        with open(args.speedscope, "w") as fh:
            json.dump(prof, fh)
        print(f"wrote {args.speedscope}: {len(prof['profiles'])} stage "
              f"profile(s), {len(prof['shared']['frames'])} frames")
    return 0


def _cmd_diff(args) -> int:
    reg = _registry(args)
    a, b = reg.get(args.ref_a), reg.get(args.ref_b)
    report = attribute(a, b, top=args.top)
    print(format_attribution(report))
    return 0


def _cmd_watch(args) -> int:
    n = watch(args.path, sys.stdout, follow=not args.once, poll_s=args.poll)
    if args.once and n == 0:
        print(f"(no renderable events in {args.path})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro-obs",
        description="Query and judge the persistent run/bench registry.",
    )
    ap.add_argument("--dir", default=None,
                    help="registry root (default: $REPRO_OBS_DIR or .repro_obs)")
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="run/bench history, newest last")
    p.add_argument("--kind", default=None,
                   help="filter: simulation_run / pipeline_stage / bench")
    p.add_argument("--key", default=None, help="filter by config hash")
    p.add_argument("-n", type=int, default=None, help="newest N only")
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser("show", help="one record in full")
    p.add_argument("ref", help="record id prefix or 1-based index (-1 = newest)")
    p.add_argument("--full", action="store_true",
                   help="include the raw per-shard timeline events")
    p.set_defaults(func=_cmd_show)

    p = sub.add_parser("timeline", help="worker lanes + critical path for a run")
    p.add_argument("ref")
    p.add_argument("--call", type=int, default=None,
                   help="which force call to draw (default: the last)")
    p.add_argument("--width", type=int, default=64)
    p.set_defaults(func=_cmd_timeline)

    p = sub.add_parser("top", help="hot functions from a profiled run")
    p.add_argument("ref")
    p.add_argument("-n", type=int, default=15)
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser("trend", help="fit last-N baseline, judge newest record")
    p.add_argument("metric", help="e.g. wall_s, wall_per_step_s, "
                                  "run_totals.interactions_per_particle")
    p.add_argument("--kind", default=None)
    p.add_argument("--key", default=None)
    p.add_argument("--window", type=int, default=DEFAULT_WINDOW)
    p.add_argument("--sigmas", type=float, default=DEFAULT_SIGMAS)
    p.add_argument("--min-rel", type=float, default=DEFAULT_MIN_REL)
    p.add_argument("--direction", choices=("max", "min"), default="max",
                   help="max: larger is worse (wall); min: smaller is worse")
    p.set_defaults(func=_cmd_trend)

    p = sub.add_parser("compare", help="numeric diff between two records")
    p.add_argument("ref_a")
    p.add_argument("ref_b")
    p.add_argument("--filter", default=None, help="substring metric filter")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "export",
        help="Chrome trace (+ speedscope) from a run record or span stream",
    )
    p.add_argument("ref", nargs="?", default="-1",
                   help="record id prefix or index (ignored with --spans)")
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace-event JSON output path")
    p.add_argument("--speedscope", default=None,
                   help="also write a speedscope profile here "
                        "(needs a profiled record)")
    p.add_argument("--spans", default=None,
                   help="export a tracer JSONL span stream instead of a record")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("diff", help="ranked regression attribution A -> B")
    p.add_argument("ref_a")
    p.add_argument("ref_b")
    p.add_argument("--top", type=int, default=8, help="movers to show")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("watch", help="tail a running job's JSONL event stream")
    p.add_argument("path")
    p.add_argument("--poll", type=float, default=0.5, help="poll interval (s)")
    p.add_argument("--once", action="store_true",
                   help="render existing content and exit (no follow)")
    p.set_defaults(func=_cmd_watch)
    return ap


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (LookupError, FileNotFoundError) as exc:
        print(f"repro-obs: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away; exit quietly
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
