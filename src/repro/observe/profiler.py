"""Deep profiling hooks: per-stage cProfile, memory high-water, hot top-N.

The layer below the tracer's stage timings: when the Table-2-style
breakdown says *evaluation dominates*, this module says *which
functions* — per-stage ``cProfile`` capture with top-N hot-function
extraction, plus ``tracemalloc`` and RSS high-water memory tracking.

Follows the instrument/diagnose zero-cost-off contract:
:data:`NULL_PROFILER` is the default, its :meth:`stage` returns one
preallocated no-op context manager, and every other method is empty —
a disabled run pays an attribute call and a context enter per stage,
nothing else.  The enabled profiler never raises into the simulation:
every capture step is wrapped so a profiling failure degrades to a
missing result, not a dead run.
"""

from __future__ import annotations

import time

__all__ = ["NullProfiler", "NULL_PROFILER", "StageProfiler", "top_functions"]


class _NullStage:
    """Shared do-nothing stage context."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_STAGE = _NullStage()


class NullProfiler:
    """The zero-cost default: every operation is a no-op."""

    enabled = False

    def start(self) -> None:
        pass

    def stage(self, name: str):
        return _NULL_STAGE

    def stop(self) -> None:
        pass

    def results(self) -> dict | None:
        return None


NULL_PROFILER = NullProfiler()


class _StageCtx:
    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "StageProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self):
        self._t0 = time.perf_counter()
        self._profiler._enable(self._name)
        return self

    def __exit__(self, *exc):
        self._profiler._disable(self._name, time.perf_counter() - self._t0)
        return False


class StageProfiler:
    """Attribute wall time below the stage level, per stage name.

    One ``cProfile.Profile`` accumulates per stage name across every
    entry (so all ``"step"`` stages of a run profile into one pot),
    and :meth:`results` extracts the top-N hot functions by self time.
    With ``memory=True``, ``tracemalloc`` runs from :meth:`start` to
    :meth:`stop` and the results carry the traced-python peak plus the
    process RSS high-water mark.
    """

    enabled = True

    def __init__(self, cprofile: bool = True, memory: bool = False, top_n: int = 15):
        self.cprofile = bool(cprofile)
        self.memory = bool(memory)
        self.top_n = int(top_n)
        self._profiles: dict = {}
        self._stage_seconds: dict[str, float] = {}
        self._stage_calls: dict[str, int] = {}
        self._active: str | None = None
        self._mem: dict | None = None
        self._started_tracemalloc = False

    # ----- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if not self.memory:
            return
        try:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
        except Exception:
            self._started_tracemalloc = False

    def stop(self) -> None:
        if not self.memory:
            return
        mem: dict = {}
        try:
            import tracemalloc

            if tracemalloc.is_tracing():
                cur, peak = tracemalloc.get_traced_memory()
                mem["tracemalloc_current_kb"] = round(cur / 1024.0, 1)
                mem["tracemalloc_peak_kb"] = round(peak / 1024.0, 1)
                if self._started_tracemalloc:
                    tracemalloc.stop()
        except Exception:
            pass
        try:
            import resource

            # ru_maxrss is KiB on Linux, bytes on macOS
            rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            import sys

            if sys.platform == "darwin":
                rss //= 1024
            mem["rss_max_kb"] = int(rss)
        except Exception:
            pass
        self._mem = mem or None

    # ----- per-stage capture ----------------------------------------------------
    def stage(self, name: str):
        return _StageCtx(self, name)

    def _enable(self, name: str) -> None:
        if not self.cprofile or self._active is not None:
            # nested stages: the outer profile already captures the inner
            return
        try:
            import cProfile

            prof = self._profiles.get(name)
            if prof is None:
                prof = self._profiles[name] = cProfile.Profile()
            prof.enable()
            self._active = name
        except Exception:
            self._active = None

    def _disable(self, name: str, seconds: float) -> None:
        self._stage_seconds[name] = self._stage_seconds.get(name, 0.0) + seconds
        self._stage_calls[name] = self._stage_calls.get(name, 0) + 1
        if self._active != name:
            return
        try:
            self._profiles[name].disable()
        except Exception:
            pass
        self._active = None

    # ----- extraction -----------------------------------------------------------
    def results(self) -> dict | None:
        """JSON-ready profile payload (None when nothing was captured)."""
        out: dict = {}
        if self._profiles:
            stages = {}
            for name, prof in self._profiles.items():
                try:
                    hot = top_functions(prof, self.top_n)
                except Exception:
                    hot = []
                stages[name] = {
                    "seconds": round(self._stage_seconds.get(name, 0.0), 6),
                    "calls": self._stage_calls.get(name, 0),
                    "hot": hot,
                }
            out["stages"] = stages
        if self._mem:
            out["memory"] = self._mem
        return out or None


def top_functions(prof, n: int = 15) -> list[dict]:
    """Top-N hot functions of a ``cProfile.Profile`` by self time.

    Each entry carries function, trimmed file:line, call count, self
    seconds and cumulative seconds — the attribution the registry keeps
    so ``repro-obs top`` can answer "what was hot" long after the run.
    """
    import pstats

    st = pstats.Stats(prof)
    rows = []
    for (file, line, func), (cc, nc, tt, ct, callers) in st.stats.items():
        rows.append({
            "function": func,
            "where": f"{_trim_path(file)}:{line}",
            "calls": int(nc),
            "self_s": round(tt, 6),
            "cum_s": round(ct, 6),
        })
    rows.sort(key=lambda r: r["self_s"], reverse=True)
    return rows[:n]


def _trim_path(path: str) -> str:
    if not path or path.startswith("<"):
        return path or "<unknown>"
    parts = path.replace("\\", "/").split("/")
    return "/".join(parts[-2:])
