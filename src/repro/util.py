"""Small shared vectorization helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["expand_ranges", "repeat_blocks"]


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for each (s, c) pair, vectorized.

    The workhorse of turning per-cell particle ranges into flat index
    arrays without Python loops.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # offsets within each block: global arange minus block-start positions
    block_first = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - block_first
    return np.repeat(starts, counts) + within


def repeat_blocks(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """np.repeat with int64 counts (alias kept for symmetry/readability)."""
    return np.repeat(values, counts)
