"""Vectorized force evaluation from interaction lists (paper §3.3).

Consumes the flat interaction lists produced by the traversal and
evaluates them in large blocked batches — the Python/NumPy analogue of
2HOT's m x n interaction blocking with structure-of-arrays swizzling:
every chunk is one contiguous fused pass over thousands of
interactions, so the per-interaction interpreter overhead is amortized
exactly the way the paper amortizes data-movement cost.

Three interaction families:

* **cell**  — particle x multipole, via the (metaprogrammed) derivative
  tensor kernels at the expansion order of the tree moments;
* **pp**    — particle x particle within directly-interacting leaf
  pairs, with any softening kernel (the 28-flop monopole inner loop of
  Table 3);
* **prism** — particle x analytic uniform cube, the near-field
  background subtraction of §2.2.1 (ghost cells and, in background
  mode, the background of every directly-interacting real leaf).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field

import numpy as np

from ..instrument import get_tracer
from ..multipoles import multi_index_set
from ..multipoles.codegen import compiled_dtensor_function
from ..multipoles.multiindex import n_coeffs
from ..multipoles.prism import prism_acceleration, prism_potential
from ..multipoles.radial import NewtonianKernel, RadialKernel
from ..tree.moments import TreeMoments
from ..tree.structure import Tree
from ..tree.traversal import InteractionLists
from ..util import expand_ranges
from . import kernels
from .smoothing import NoSoftening, SofteningKernel

__all__ = ["ForceResult", "evaluate_forces", "autotune_chunks", "segment_sum"]

_AXES3 = np.arange(3, dtype=np.int64)


def segment_sum(contrib: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Sum ``contrib`` over the contiguous segments beginning at ``starts``.

    ``starts`` must be strictly increasing (zero-length segments
    filtered out by the caller) with an implicit final boundary at
    ``len(contrib)``.  ``np.add.reduceat`` touches each contribution
    once; the ``bincount`` alternative below has to materialize a
    per-contribution segment-id array first, which loses at every size
    the evaluator produces (see BENCH_force.json's ``segment_reduce``
    receipt) — reduceat is the production kernel.
    """
    return np.add.reduceat(contrib, starts, axis=0)


def segment_sum_bincount(contrib: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """``segment_sum`` via bincount over expanded segment ids.

    Kept as the benchmarked alternative; bit-identical ordering is not
    guaranteed against reduceat (both sum left-to-right within a
    segment, so in practice they agree exactly for float64 adds).
    """
    n = len(contrib)
    seg = np.zeros(n, dtype=np.int64)
    seg[starts[1:]] = 1
    seg = np.cumsum(seg)
    if contrib.ndim == 1:
        return np.bincount(seg, weights=contrib, minlength=len(starts))
    out = np.empty((len(starts), contrib.shape[1]), dtype=contrib.dtype)
    for i in range(contrib.shape[1]):
        out[:, i] = np.bincount(seg, weights=contrib[:, i], minlength=len(starts))
    return out


def _scatter_add_vec(acc, idx, contrib):
    """acc[idx] += contrib, one bincount pass per axis.

    Measured faster than the fused single-pass variant below at every
    chunk size the evaluator produces (bench_table3_microkernel.py:
    the 3x-longer interleaved index array costs more than the two
    extra passes save).
    """
    n = len(acc)
    for i in range(3):
        acc[:, i] += np.bincount(idx, weights=contrib[:, i], minlength=n)


def _scatter_add_vec_fused(acc, idx, contrib):
    """acc[idx] += contrib via one fused bincount pass.

    Interleaving the axis into the bin index ((idx, axis) -> idx*3+axis)
    folds the three per-axis bincount passes into a single traversal of
    the contribution array; per-bin accumulation order is unchanged, so
    the sums are bit-identical to the per-axis version.  Kept as the
    benchmarked alternative — see ``_scatter_add_vec`` for why it is
    not the production kernel.
    """
    n = len(acc)
    flat = np.bincount(
        (idx[:, None] * 3 + _AXES3).ravel(),
        weights=contrib.ravel(),
        minlength=3 * n,
    )
    acc += flat.reshape(n, 3)


def _scatter_add(pot, idx, contrib):
    pot += np.bincount(idx, weights=contrib, minlength=len(pot))


@dataclass
class ForceResult:
    """Accelerations/potentials (original particle order) plus counters."""

    acc: np.ndarray
    pot: np.ndarray | None
    stats: dict = field(default_factory=dict)


#: reusable per-process chunk buffers, keyed by (tag, columns, dtype)
_BUF_POOL: dict[tuple, np.ndarray] = {}


def _chunk_buffer(tag: str, rows: int, cols: int, dtype) -> np.ndarray:
    """A preallocated (rows, cols) scratch view, reused across calls."""
    key = (tag, cols, np.dtype(dtype).str)
    buf = _BUF_POOL.get(key)
    if buf is None or buf.shape[0] < rows:
        buf = np.empty((max(rows, 1), cols), dtype=dtype)
        _BUF_POOL[key] = buf
    return buf[:rows]


#: fallback pp/prism chunk when calibration is skipped (compiled backend)
_DEFAULT_PP_CHUNK = 262144


def _time_once(fn) -> float:
    import time

    fn()  # warm up / JIT numpy internals out of the measurement
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@functools.lru_cache(maxsize=16)
def _autotune_cell(p: int, dtype_str: str) -> int:
    """Calibrate the cell-family chunk (order-dependent recurrence cost)."""
    dtype = np.dtype(dtype_str)
    rng = np.random.default_rng(0)
    nhi = n_coeffs(p + 1)
    dt_fn = compiled_dtensor_function(p + 1)
    best_cell, best_cost = 16384, np.inf
    for c in (8192, 16384, 32768, 65536):
        dx = rng.standard_normal((c, 3)).astype(dtype) + 2.0
        g = rng.standard_normal((p + 2, c)).astype(dtype)
        out = np.empty((c, nhi), dtype=dtype)
        cost = _time_once(lambda: dt_fn(dx[:, 0], dx[:, 1], dx[:, 2], g, out)) / c
        if cost < best_cost:
            best_cell, best_cost = c, cost
    return best_cell


@functools.lru_cache(maxsize=8)
def _autotune_pp(dtype_str: str) -> int:
    """Calibrate the pp/prism chunk — order-independent, cached per dtype."""
    dtype = np.dtype(dtype_str)
    rng = np.random.default_rng(0)
    best_pp, best_cost = _DEFAULT_PP_CHUNK, np.inf
    for c in (65536, 131072, 262144, 524288):
        dx = rng.standard_normal((c, 3)).astype(dtype) + 1.0

        def pp_kernel(dx=dx):
            r = np.sqrt(np.einsum("ij,ij->i", dx, dx))
            f = 1.0 / (r * r * r)
            return f[:, None] * dx

        cost = _time_once(pp_kernel) / c
        if cost < best_cost:
            best_pp, best_cost = c, cost
    return best_pp


def autotune_chunks(p: int, dtype_str: str) -> tuple[int, int]:
    """One-shot calibration of (cell_chunk, pp_chunk) for this process.

    Times the dominant inner kernels — the order-(p+1) derivative
    tensor recurrence for cell interactions and the softened inverse-r
    pass for particle-particle blocks — over candidate chunk sizes on
    synthetic data, and returns the fastest per-row choice of each.
    Chunk size only affects speed, never results (the CSR evaluator
    aligns chunks to whole sink particles), so a noisy pick is safe.
    The pp half is order-independent and cached per dtype, so a run
    mixing expansion orders (e.g. tree + TreePM) calibrates it once;
    the compiled backend skips calibration entirely (it allocates no
    contribution buffers).
    """
    return _autotune_cell(p, dtype_str), _autotune_pp(dtype_str)


@functools.lru_cache(maxsize=32)
def _acc_columns(p: int):
    """Packed column indices of D_{alpha+e_i} for each axis i (cached)."""
    mis = multi_index_set(p)
    mis_hi = multi_index_set(p + 1)
    cols = np.empty((3, len(mis)), dtype=np.intp)
    for i in range(3):
        e = np.zeros(3, dtype=np.int64)
        e[i] = 1
        for j, a in enumerate(mis.alphas):
            cols[i, j] = mis_hi.index[tuple(int(x) for x in (a + e))]
    return cols


def evaluate_forces(
    tree: Tree,
    moms: TreeMoments,
    inter: InteractionLists,
    softening: SofteningKernel | None = None,
    G: float = 1.0,
    dtype=np.float64,
    want_potential: bool = True,
    kernel: RadialKernel | None = None,
    cell_chunk: int | None = None,
    pp_chunk: int | None = None,
    particle_range: tuple[int, int] | None = None,
    backend: str | None = None,
) -> ForceResult:
    """Evaluate all interactions; returns fields in original particle order.

    Parameters
    ----------
    kernel:
        Radial Green's function for the *cell* interactions (default
        Newtonian 1/r; a short-range ErfcKernel turns this into the
        tree half of a TreePM split).
    backend:
        ``"numpy"`` (vectorized reference), ``"compiled"`` (the numba
        m x n-blocked CSR kernel of :mod:`repro.gravity.kernels`) or
        ``"auto"``/None (``REPRO_FORCE_BACKEND`` env, defaulting to
        compiled-when-available).  The compiled backend consumes only
        CSR lists; flat per-leaf lists and unsupported kernel types
        fall back to numpy with the reason in
        ``stats["backend_fallback"]``.  The compiled kernel always
        accumulates in float64 (it is the *more* accurate path when
        ``dtype=float32``).
    dtype:
        Accumulation precision (float32 reproduces the single-precision
        behaviour of Fig. 6 / Table 3).
    cell_chunk, pp_chunk:
        Interaction-rows per evaluation chunk for the cell and the
        pp/prism families.  ``None`` means: CSR lists autotune both
        from the one-shot :func:`autotune_chunks` calibration, the flat
        per-leaf lists fall back to the historical fixed defaults.
    particle_range:
        Half-open (start, end) range of *key-sorted* particle indices
        covering every sink in ``inter`` (a shard of SFC-contiguous
        sink leaves).  Output arrays then have length ``end - start``,
        stay in key-sorted order and skip the final unsort/astype — the
        caller (the shared-memory executor) merges disjoint shard
        slices and unsorts once.

    CSR lists from :func:`~repro.tree.traversal.traverse_hierarchical`
    take the segment-reduce path: contributions are generated
    sink-particle-major in chunks aligned to whole particles, summed
    per particle with one :func:`segment_sum` pass, and added at unique
    output rows — no giant up-front ``np.repeat`` expansion and no
    bincount scatter, and results are bit-identical at any chunk size.
    """
    softening = softening or NoSoftening()
    kernel = kernel or NewtonianKernel()
    if inter.cell_indptr is not None:
        return _evaluate_forces_csr(
            tree, moms, inter, softening, G, dtype, want_potential,
            kernel, cell_chunk, pp_chunk, particle_range, backend,
        )
    if pp_chunk is None:
        pp_chunk = _DEFAULT_PP_CHUNK
    p = moms.p
    s0, s1 = particle_range if particle_range is not None else (0, tree.n_particles)
    n = s1 - s0
    acc = np.zeros((n, 3), dtype=np.float64)
    pot = np.zeros(n, dtype=np.float64) if want_potential else None

    def loc(idx):
        """Global sorted particle index -> local output row."""
        return idx - s0 if s0 else idx
    stats = {
        "cell_interactions": 0,
        "pp_interactions": 0,
        "prism_interactions": 0,
        "order": p,
        "backend": "numpy",
    }
    if kernels.resolve_backend(backend) == "compiled":
        stats["backend_fallback"] = (
            "compiled backend consumes CSR lists only (legacy leaf walk)"
        )

    mis = multi_index_set(p)
    w = ((-1.0) ** mis.order) / mis.factorial
    cols = _acc_columns(p)
    ncoef = len(mis)
    nhi = n_coeffs(p + 1)
    dt_fn = compiled_dtensor_function(p + 1)
    if cell_chunk is None:
        cell_chunk = max(4096, int(6e6 / max(nhi, 1)))

    # ----- cell (multipole) interactions --------------------------------------
    if len(inter.cell_sink):
        counts = tree.cell_count[inter.cell_sink]
        pidx = expand_ranges(tree.cell_start[inter.cell_sink], counts)
        src = np.repeat(inter.cell_src, counts)
        off = np.repeat(inter.cell_off, counts)
        stats["cell_interactions"] = len(pidx)
        # Single-precision interactions with double-precision accumulation
        # mirror the paper's production kernels (Table 3 is all float32);
        # running the whole recurrence in float32 halves memory traffic.
        buf = np.empty((min(cell_chunk, len(pidx)), nhi), dtype=dtype)
        for s in range(0, len(pidx), cell_chunk):
            e = min(s + cell_chunk, len(pidx))
            rows = slice(s, e)
            dx = tree.pos[pidx[rows]] - (
                tree.cell_center[src[rows]] + inter.offsets[off[rows]]
            )
            r = np.sqrt(np.einsum("ij,ij->i", dx, dx))
            g = kernel.radial_derivs(r, p + 1)
            if dtype is not np.float64:
                dx = dx.astype(dtype)
                g = g.astype(dtype)
            out = buf[: e - s]
            dt_fn(dx[:, 0], dx[:, 1], dx[:, 2], g, out)
            m = moms.moments[src[rows], :ncoef].astype(dtype, copy=False)
            wm = m * w.astype(dtype)
            a_contrib = np.empty((e - s, 3), dtype=dtype)
            for i in range(3):
                a_contrib[:, i] = np.einsum(
                    "ij,ij->i", out[:, cols[i]], wm
                )
            _scatter_add_vec(acc, loc(pidx[rows]), a_contrib.astype(np.float64))
            if want_potential:
                p_contrib = np.einsum("ij,ij->i", out[:, :ncoef], wm)
                _scatter_add(pot, loc(pidx[rows]), p_contrib.astype(np.float64))

    # ----- particle-particle interactions --------------------------------------
    if len(inter.leaf_sink):
        pos_w = tree.pos if dtype is np.float64 else tree.pos.astype(dtype)
        mass_w = tree.mass if dtype is np.float64 else tree.mass.astype(dtype)
        offsets_w = inter.offsets.astype(dtype, copy=False)
        home_off = int(np.flatnonzero(np.all(inter.offsets == 0.0, axis=1))[0])
        cs = tree.cell_count[inter.leaf_sink]
        ct = tree.cell_count[inter.leaf_src]
        stats["pp_interactions"] = int((cs * ct).sum())
        # expand pair -> (sink particle) rows first
        sp = expand_ranges(tree.cell_start[inter.leaf_sink], cs)
        pair_of_sp = np.repeat(np.arange(len(cs)), cs)
        # then each sink-particle row fans out over the source particles
        ct_of_sp = ct[pair_of_sp]
        # chunk over sink-particle rows (cumulative expanded size)
        csum = np.cumsum(ct_of_sp)
        row_start = 0
        while row_start < len(sp):
            base = csum[row_start - 1] if row_start else 0
            take = int(np.searchsorted(csum, base + pp_chunk) + 1) - row_start
            row_end = min(row_start + max(take, 1), len(sp))
            rows = slice(row_start, row_end)
            reps = ct_of_sp[rows]
            sink_part = np.repeat(sp[rows], reps)
            pr = pair_of_sp[rows]
            src_part = expand_ranges(
                tree.cell_start[inter.leaf_src][pr], ct[pr]
            )
            off_row = np.repeat(inter.leaf_off[pair_of_sp[rows]], reps)
            dx = pos_w[sink_part] - (pos_w[src_part] + offsets_w[off_row])
            r = np.sqrt(np.einsum("ij,ij->i", dx, dx))
            self_pair = (sink_part == src_part) & (off_row == home_off)
            f = softening.force_factor(r).astype(dtype, copy=False)
            f[self_pair] = 0.0
            fm = mass_w[src_part] * f
            _scatter_add_vec(
                acc, loc(sink_part), (-(fm[:, None] * dx)).astype(np.float64)
            )
            if want_potential:
                psi = softening.potential(r).astype(dtype, copy=False)
                psi[self_pair] = 0.0
                _scatter_add(
                    pot,
                    loc(sink_part),
                    (mass_w[src_part] * psi).astype(np.float64),
                )
            row_start = row_end

    # ----- analytic background cubes -------------------------------------------
    prism_sink = [inter.ghost_sink]
    prism_src = [inter.ghost_src]
    prism_off = [inter.ghost_off]
    if moms.background and len(inter.leaf_sink):
        # in background mode every direct leaf pair also needs its source
        # cube's background removed
        prism_sink.append(inter.leaf_sink)
        prism_src.append(inter.leaf_src)
        prism_off.append(inter.leaf_off)
    psink = np.concatenate(prism_sink)
    psrc = np.concatenate(prism_src)
    poff = np.concatenate(prism_off)
    if len(psink) and moms.background:
        counts = tree.cell_count[psink]
        pidx = expand_ranges(tree.cell_start[psink], counts)
        src = np.repeat(psrc, counts)
        off = np.repeat(poff, counts)
        stats["prism_interactions"] = len(pidx)
        rho = -moms.mean_density  # subtract the background
        for s in range(0, len(pidx), pp_chunk):
            e = min(s + pp_chunk, len(pidx))
            rows = slice(s, e)
            pts = tree.pos[pidx[rows]]
            ctr = tree.cell_center[src[rows]] + inter.offsets[off[rows]]
            half = 0.5 * tree.cell_side[src[rows]][:, None]
            a = prism_acceleration(pts, ctr - half, ctr + half, rho)
            _scatter_add_vec(acc, loc(pidx[rows]), a)
            if want_potential:
                u = prism_potential(pts, ctr - half, ctr + half, rho)
                _scatter_add(pot, loc(pidx[rows]), u)

    if G != 1.0:
        acc *= G
        if want_potential:
            pot *= G

    if particle_range is not None:
        # shard mode: float64 key-sorted slice; the executor merges,
        # unsorts and casts once so the result matches the serial path
        return ForceResult(acc=acc, pot=pot, stats=stats)

    # unsort to original particle order
    acc_out = np.empty_like(acc)
    acc_out[tree.order] = acc
    if want_potential:
        pot_out = np.empty_like(pot)
        pot_out[tree.order] = pot
    else:
        pot_out = None
    if dtype is not np.float64:
        acc_out = acc_out.astype(dtype)
        if pot_out is not None:
            pot_out = pot_out.astype(dtype)
    return ForceResult(acc=acc_out, pot=pot_out, stats=stats)


def _evaluate_forces_csr(
    tree: Tree,
    moms: TreeMoments,
    inter: InteractionLists,
    softening: SofteningKernel,
    G: float,
    dtype,
    want_potential: bool,
    kernel: RadialKernel,
    cell_chunk: int | None,
    pp_chunk: int | None,
    particle_range: tuple[int, int] | None,
    backend: str | None = None,
) -> ForceResult:
    """Segment-reduce evaluation of CSR-grouped interaction lists.

    Rows follow ``inter.sink_leaves`` (SFC order), so generating
    contributions row by row is automatically *sink-particle-major*:
    each sink particle's contributions form one contiguous run, closed
    by a single reduceat over the run boundaries, and each particle
    lands in exactly one chunk (chunks split only between particles),
    making the result independent of the chunk sizes.

    ``backend="compiled"`` replaces the cell and pp families with the
    m x n-blocked kernel of :mod:`repro.gravity.kernels` (same CSR
    arrays, no contrib buffers, float64 accumulation); the analytic
    background (prism) family always runs through the shared numpy
    pass below so both backends agree term by term.
    """
    p = moms.p
    resolved, fb_reason = kernels.resolve_backend_ex(backend)
    spec = None
    if resolved == "compiled":
        spec = kernels.kernel_specs(kernel, softening, p)
        if spec is None:
            resolved = "numpy"
            fb_reason = (
                "compiled kernel does not implement "
                f"{type(kernel).__name__}/{type(softening).__name__}"
            )
    tr = get_tracer()
    s0, s1 = particle_range if particle_range is not None else (0, tree.n_particles)
    n = s1 - s0
    acc = np.zeros((n, 3), dtype=np.float64)
    pot = np.zeros(n, dtype=np.float64) if want_potential else None
    if resolved == "compiled":
        # the blocked kernel allocates no contrib buffers, so chunk
        # calibration is skipped entirely; pp_chunk only paces the
        # shared prism pass
        if pp_chunk is None:
            pp_chunk = _DEFAULT_PP_CHUNK
    elif cell_chunk is None or pp_chunk is None:
        tuned_cell, tuned_pp = autotune_chunks(p, np.dtype(dtype).str)
        cell_chunk = cell_chunk if cell_chunk is not None else tuned_cell
        pp_chunk = pp_chunk if pp_chunk is not None else tuned_pp

    def loc(idx):
        return idx - s0 if s0 else idx

    stats = {
        "cell_interactions": 0,
        "pp_interactions": 0,
        "prism_interactions": 0,
        "m2l_pairs": 0,
        "m2l_interactions": 0,
        "order": p,
        "evaluator": "csr",
        "backend": resolved,
    }
    if fb_reason:
        stats["backend_fallback"] = fb_reason

    sinks = inter.sink_leaves
    # per sink particle: global key-sorted index and owning CSR row
    leaf_np = tree.cell_count[sinks]
    pid = expand_ranges(tree.cell_start[sinks], leaf_np)
    row_of_p = np.repeat(np.arange(len(sinks), dtype=np.int64), leaf_np)

    def particle_chunks(m_p, budget):
        """Yield (a, b) particle ranges of <= budget contributions."""
        csum = np.cumsum(m_p)
        a = 0
        while a < len(m_p):
            base = csum[a - 1] if a else 0
            b = int(np.searchsorted(csum, base + budget, side="left") + 1)
            b = min(max(b, a + 1), len(m_p))
            yield a, b
            a = b

    def reduce_into(contrib, pcontrib, a, b, lens):
        starts = np.zeros(len(lens), dtype=np.int64)
        np.cumsum(lens[:-1], out=starts[1:])
        nz = lens > 0
        if not np.any(nz):
            return
        rows = loc(pid[a:b][nz])
        acc[rows] += segment_sum(contrib, starts[nz])
        if want_potential:
            pot[rows] += segment_sum(pcontrib, starts[nz])

    # kernel seconds: the cell + pp family evaluation only (the part
    # the compiled backend replaces), excluding traversal and the
    # shared prism pass — the denominator of the roofline counters
    t_kernel = 0.0

    # ----- cell (multipole) interactions --------------------------------------
    if len(inter.cell_sink):
        nent = np.diff(inter.cell_indptr)
        stats["cell_interactions"] = int((nent * leaf_np).sum())
    if len(inter.cell_sink) and resolved == "numpy":
        _tk0 = time.perf_counter()
        mis = multi_index_set(p)
        w = ((-1.0) ** mis.order) / mis.factorial
        cols = _acc_columns(p)
        ncoef = len(mis)
        nhi = n_coeffs(p + 1)
        dt_fn = compiled_dtensor_function(p + 1)
        m_p = nent[row_of_p]
        w_t = w.astype(dtype)
        for a, b in particle_chunks(m_p, cell_chunk):
            lf = row_of_p[a:b]
            ent = expand_ranges(inter.cell_indptr[lf], nent[lf])
            src = inter.cell_src[ent]
            off = inter.cell_off[ent]
            pidx = np.repeat(pid[a:b], m_p[a:b])
            dx = tree.pos[pidx] - (tree.cell_center[src] + inter.offsets[off])
            r = np.sqrt(np.einsum("ij,ij->i", dx, dx))
            g = kernel.radial_derivs(r, p + 1)
            if dtype is not np.float64:
                dx = dx.astype(dtype)
                g = g.astype(dtype)
            out = _chunk_buffer("dtensor", len(ent), nhi, dtype)
            dt_fn(dx[:, 0], dx[:, 1], dx[:, 2], g, out)
            m = moms.moments[src, :ncoef].astype(dtype, copy=False)
            wm = m * w_t
            a_contrib = _chunk_buffer("cell_acc", len(ent), 3, dtype)
            for i in range(3):
                a_contrib[:, i] = np.einsum("ij,ij->i", out[:, cols[i]], wm)
            p_contrib = None
            if want_potential:
                p_contrib = np.einsum("ij,ij->i", out[:, :ncoef], wm).astype(
                    np.float64
                )
            reduce_into(a_contrib.astype(np.float64), p_contrib, a, b, m_p[a:b])
        t_kernel += time.perf_counter() - _tk0

    # ----- particle-particle interactions --------------------------------------
    if len(inter.leaf_sink):
        nent = np.diff(inter.leaf_indptr)
        ct_ent = tree.cell_count[inter.leaf_src]
        # per-row source-particle total -> per-sink-particle fan-out
        row_ct = np.zeros(len(sinks), dtype=np.int64)
        nz_rows = nent > 0
        if np.any(nz_rows):
            starts = inter.leaf_indptr[:-1][nz_rows]
            row_ct[nz_rows] = np.add.reduceat(ct_ent, starts)
        stats["pp_interactions"] = int((row_ct * leaf_np).sum())
    if len(inter.leaf_sink) and resolved == "numpy":
        _tk0 = time.perf_counter()
        pos_w = tree.pos if dtype is np.float64 else tree.pos.astype(dtype)
        mass_w = tree.mass if dtype is np.float64 else tree.mass.astype(dtype)
        offsets_w = inter.offsets.astype(dtype, copy=False)
        home_off = int(np.flatnonzero(np.all(inter.offsets == 0.0, axis=1))[0])
        m_p = row_ct[row_of_p]
        for a, b in particle_chunks(m_p, pp_chunk):
            lf = row_of_p[a:b]
            ent = expand_ranges(inter.leaf_indptr[lf], nent[lf])
            reps = ct_ent[ent]
            src_part = expand_ranges(tree.cell_start[inter.leaf_src[ent]], reps)
            sink_part = np.repeat(pid[a:b], m_p[a:b])
            off_row = np.repeat(inter.leaf_off[ent], reps)
            dx = pos_w[sink_part] - (pos_w[src_part] + offsets_w[off_row])
            r = np.sqrt(np.einsum("ij,ij->i", dx, dx))
            self_pair = (sink_part == src_part) & (off_row == home_off)
            f = softening.force_factor(r).astype(dtype, copy=False)
            f[self_pair] = 0.0
            fm = mass_w[src_part] * f
            p_contrib = None
            if want_potential:
                psi = softening.potential(r).astype(dtype, copy=False)
                psi[self_pair] = 0.0
                p_contrib = (mass_w[src_part] * psi).astype(np.float64)
            reduce_into(
                (-(fm[:, None] * dx)).astype(np.float64), p_contrib, a, b, m_p[a:b]
            )
        t_kernel += time.perf_counter() - _tk0

    # ----- compiled m x n-blocked kernel (cell + pp families) ------------------
    if resolved == "compiled" and (len(inter.cell_sink) or len(inter.leaf_sink)):
        _tk0 = time.perf_counter()
        with tr.span("kernel"):
            kernels.run_csr_kernel(
                tree, moms, inter, spec, want_potential, s0, acc, pot
            )
        t_kernel += time.perf_counter() - _tk0

    # ----- m2l local expansions + L2P (fmm-hybrid far field) -------------------
    if inter.m2l_cells is not None and inter.m2l_src is not None and len(
        inter.m2l_src
    ):
        from . import localexp

        _tk0 = time.perf_counter()
        stats["m2l_pairs"] = int(len(inter.m2l_src))
        stats["m2l_interactions"] = stats["m2l_pairs"] + int(leaf_np.sum())
        with tr.span("m2l"):
            loc_all = localexp.local_expansions(
                tree, moms, inter, kernel, backend=resolved
            )
            localexp.l2p_accumulate(
                tree, inter, loc_all, p,
                want_potential=want_potential,
                pid=pid, row_of_p=row_of_p, s0=s0,
                acc=acc, pot=pot,
                backend=resolved,
            )
        t_kernel += time.perf_counter() - _tk0

    # ----- analytic background cubes -------------------------------------------
    if moms.background:
        rho = -moms.mean_density  # subtract the background
        prism_passes = [(inter.ghost_src, inter.ghost_off, inter.ghost_indptr)]
        if len(inter.leaf_sink):
            # in background mode every direct leaf pair also needs its
            # source cube's background removed
            prism_passes.append(
                (inter.leaf_src, inter.leaf_off, inter.leaf_indptr)
            )
        for fam_src, fam_off, fam_indptr in prism_passes:
            if not len(fam_src):
                continue
            nent = np.diff(fam_indptr)
            m_p = nent[row_of_p]
            stats["prism_interactions"] += int(m_p.sum())
            for a, b in particle_chunks(m_p, pp_chunk):
                lf = row_of_p[a:b]
                ent = expand_ranges(fam_indptr[lf], nent[lf])
                src = fam_src[ent]
                off = fam_off[ent]
                pidx = np.repeat(pid[a:b], m_p[a:b])
                pts = tree.pos[pidx]
                ctr = tree.cell_center[src] + inter.offsets[off]
                half = 0.5 * tree.cell_side[src][:, None]
                a_contrib = prism_acceleration(pts, ctr - half, ctr + half, rho)
                p_contrib = None
                if want_potential:
                    p_contrib = prism_potential(pts, ctr - half, ctr + half, rho)
                reduce_into(a_contrib, p_contrib, a, b, m_p[a:b])

    if G != 1.0:
        acc *= G
        if want_potential:
            pot *= G

    if (
        stats["cell_interactions"]
        or stats["pp_interactions"]
        or stats["m2l_pairs"]
    ):
        stats["kernel"] = kernels.kernel_counters(
            tree,
            inter,
            p=p,
            want_potential=want_potential,
            seconds=t_kernel,
            backend=resolved,
            threads=(
                kernels.active_kernel_threads() if resolved == "compiled" else 1
            ),
            prism_interactions=stats["prism_interactions"],
        )

    if particle_range is not None:
        return ForceResult(acc=acc, pot=pot, stats=stats)

    acc_out = np.empty_like(acc)
    acc_out[tree.order] = acc
    if want_potential:
        pot_out = np.empty_like(pot)
        pot_out[tree.order] = pot
    else:
        pot_out = None
    if dtype is not np.float64:
        acc_out = acc_out.astype(dtype)
        if pot_out is not None:
            pot_out = pot_out.astype(dtype)
    return ForceResult(acc=acc_out, pot=pot_out, stats=stats)
