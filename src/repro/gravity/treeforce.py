"""Vectorized force evaluation from interaction lists (paper §3.3).

Consumes the flat interaction lists produced by the traversal and
evaluates them in large blocked batches — the Python/NumPy analogue of
2HOT's m x n interaction blocking with structure-of-arrays swizzling:
every chunk is one contiguous fused pass over thousands of
interactions, so the per-interaction interpreter overhead is amortized
exactly the way the paper amortizes data-movement cost.

Three interaction families:

* **cell**  — particle x multipole, via the (metaprogrammed) derivative
  tensor kernels at the expansion order of the tree moments;
* **pp**    — particle x particle within directly-interacting leaf
  pairs, with any softening kernel (the 28-flop monopole inner loop of
  Table 3);
* **prism** — particle x analytic uniform cube, the near-field
  background subtraction of §2.2.1 (ghost cells and, in background
  mode, the background of every directly-interacting real leaf).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

import numpy as np

from ..multipoles import multi_index_set
from ..multipoles.codegen import compiled_dtensor_function
from ..multipoles.multiindex import n_coeffs
from ..multipoles.prism import prism_acceleration, prism_potential
from ..multipoles.radial import NewtonianKernel, RadialKernel
from ..tree.moments import TreeMoments
from ..tree.structure import Tree
from ..tree.traversal import InteractionLists
from ..util import expand_ranges
from .smoothing import NoSoftening, SofteningKernel

__all__ = ["ForceResult", "evaluate_forces"]

_AXES3 = np.arange(3, dtype=np.int64)


def _scatter_add_vec(acc, idx, contrib):
    """acc[idx] += contrib, one bincount pass per axis.

    Measured faster than the fused single-pass variant below at every
    chunk size the evaluator produces (bench_table3_microkernel.py:
    the 3x-longer interleaved index array costs more than the two
    extra passes save).
    """
    n = len(acc)
    for i in range(3):
        acc[:, i] += np.bincount(idx, weights=contrib[:, i], minlength=n)


def _scatter_add_vec_fused(acc, idx, contrib):
    """acc[idx] += contrib via one fused bincount pass.

    Interleaving the axis into the bin index ((idx, axis) -> idx*3+axis)
    folds the three per-axis bincount passes into a single traversal of
    the contribution array; per-bin accumulation order is unchanged, so
    the sums are bit-identical to the per-axis version.  Kept as the
    benchmarked alternative — see ``_scatter_add_vec`` for why it is
    not the production kernel.
    """
    n = len(acc)
    flat = np.bincount(
        (idx[:, None] * 3 + _AXES3).ravel(),
        weights=contrib.ravel(),
        minlength=3 * n,
    )
    acc += flat.reshape(n, 3)


def _scatter_add(pot, idx, contrib):
    pot += np.bincount(idx, weights=contrib, minlength=len(pot))


@dataclass
class ForceResult:
    """Accelerations/potentials (original particle order) plus counters."""

    acc: np.ndarray
    pot: np.ndarray | None
    stats: dict = field(default_factory=dict)


@functools.lru_cache(maxsize=32)
def _acc_columns(p: int):
    """Packed column indices of D_{alpha+e_i} for each axis i (cached)."""
    mis = multi_index_set(p)
    mis_hi = multi_index_set(p + 1)
    cols = np.empty((3, len(mis)), dtype=np.intp)
    for i in range(3):
        e = np.zeros(3, dtype=np.int64)
        e[i] = 1
        for j, a in enumerate(mis.alphas):
            cols[i, j] = mis_hi.index[tuple(int(x) for x in (a + e))]
    return cols


def evaluate_forces(
    tree: Tree,
    moms: TreeMoments,
    inter: InteractionLists,
    softening: SofteningKernel | None = None,
    G: float = 1.0,
    dtype=np.float64,
    want_potential: bool = True,
    kernel: RadialKernel | None = None,
    cell_chunk: int | None = None,
    pp_chunk: int = 262144,
    particle_range: tuple[int, int] | None = None,
) -> ForceResult:
    """Evaluate all interactions; returns fields in original particle order.

    Parameters
    ----------
    kernel:
        Radial Green's function for the *cell* interactions (default
        Newtonian 1/r; a short-range ErfcKernel turns this into the
        tree half of a TreePM split).
    dtype:
        Accumulation precision (float32 reproduces the single-precision
        behaviour of Fig. 6 / Table 3).
    particle_range:
        Half-open (start, end) range of *key-sorted* particle indices
        covering every sink in ``inter`` (a shard of SFC-contiguous
        sink leaves).  Output arrays then have length ``end - start``,
        stay in key-sorted order and skip the final unsort/astype — the
        caller (the shared-memory executor) merges disjoint shard
        slices and unsorts once.
    """
    softening = softening or NoSoftening()
    kernel = kernel or NewtonianKernel()
    p = moms.p
    s0, s1 = particle_range if particle_range is not None else (0, tree.n_particles)
    n = s1 - s0
    acc = np.zeros((n, 3), dtype=np.float64)
    pot = np.zeros(n, dtype=np.float64) if want_potential else None

    def loc(idx):
        """Global sorted particle index -> local output row."""
        return idx - s0 if s0 else idx
    stats = {
        "cell_interactions": 0,
        "pp_interactions": 0,
        "prism_interactions": 0,
        "order": p,
    }

    mis = multi_index_set(p)
    w = ((-1.0) ** mis.order) / mis.factorial
    cols = _acc_columns(p)
    ncoef = len(mis)
    nhi = n_coeffs(p + 1)
    dt_fn = compiled_dtensor_function(p + 1)
    if cell_chunk is None:
        cell_chunk = max(4096, int(6e6 / max(nhi, 1)))

    # ----- cell (multipole) interactions --------------------------------------
    if len(inter.cell_sink):
        counts = tree.cell_count[inter.cell_sink]
        pidx = expand_ranges(tree.cell_start[inter.cell_sink], counts)
        src = np.repeat(inter.cell_src, counts)
        off = np.repeat(inter.cell_off, counts)
        stats["cell_interactions"] = len(pidx)
        # Single-precision interactions with double-precision accumulation
        # mirror the paper's production kernels (Table 3 is all float32);
        # running the whole recurrence in float32 halves memory traffic.
        buf = np.empty((min(cell_chunk, len(pidx)), nhi), dtype=dtype)
        for s in range(0, len(pidx), cell_chunk):
            e = min(s + cell_chunk, len(pidx))
            rows = slice(s, e)
            dx = tree.pos[pidx[rows]] - (
                tree.cell_center[src[rows]] + inter.offsets[off[rows]]
            )
            r = np.sqrt(np.einsum("ij,ij->i", dx, dx))
            g = kernel.radial_derivs(r, p + 1)
            if dtype is not np.float64:
                dx = dx.astype(dtype)
                g = g.astype(dtype)
            out = buf[: e - s]
            dt_fn(dx[:, 0], dx[:, 1], dx[:, 2], g, out)
            m = moms.moments[src[rows], :ncoef].astype(dtype, copy=False)
            wm = m * w.astype(dtype)
            a_contrib = np.empty((e - s, 3), dtype=dtype)
            for i in range(3):
                a_contrib[:, i] = np.einsum(
                    "ij,ij->i", out[:, cols[i]], wm
                )
            _scatter_add_vec(acc, loc(pidx[rows]), a_contrib.astype(np.float64))
            if want_potential:
                p_contrib = np.einsum("ij,ij->i", out[:, :ncoef], wm)
                _scatter_add(pot, loc(pidx[rows]), p_contrib.astype(np.float64))

    # ----- particle-particle interactions --------------------------------------
    if len(inter.leaf_sink):
        pos_w = tree.pos if dtype is np.float64 else tree.pos.astype(dtype)
        mass_w = tree.mass if dtype is np.float64 else tree.mass.astype(dtype)
        offsets_w = inter.offsets.astype(dtype, copy=False)
        home_off = int(np.flatnonzero(np.all(inter.offsets == 0.0, axis=1))[0])
        cs = tree.cell_count[inter.leaf_sink]
        ct = tree.cell_count[inter.leaf_src]
        stats["pp_interactions"] = int((cs * ct).sum())
        # expand pair -> (sink particle) rows first
        sp = expand_ranges(tree.cell_start[inter.leaf_sink], cs)
        pair_of_sp = np.repeat(np.arange(len(cs)), cs)
        # then each sink-particle row fans out over the source particles
        ct_of_sp = ct[pair_of_sp]
        # chunk over sink-particle rows (cumulative expanded size)
        csum = np.cumsum(ct_of_sp)
        row_start = 0
        while row_start < len(sp):
            base = csum[row_start - 1] if row_start else 0
            take = int(np.searchsorted(csum, base + pp_chunk) + 1) - row_start
            row_end = min(row_start + max(take, 1), len(sp))
            rows = slice(row_start, row_end)
            reps = ct_of_sp[rows]
            sink_part = np.repeat(sp[rows], reps)
            pr = pair_of_sp[rows]
            src_part = expand_ranges(
                tree.cell_start[inter.leaf_src][pr], ct[pr]
            )
            off_row = np.repeat(inter.leaf_off[pair_of_sp[rows]], reps)
            dx = pos_w[sink_part] - (pos_w[src_part] + offsets_w[off_row])
            r = np.sqrt(np.einsum("ij,ij->i", dx, dx))
            self_pair = (sink_part == src_part) & (off_row == home_off)
            f = softening.force_factor(r).astype(dtype, copy=False)
            f[self_pair] = 0.0
            fm = mass_w[src_part] * f
            _scatter_add_vec(
                acc, loc(sink_part), (-(fm[:, None] * dx)).astype(np.float64)
            )
            if want_potential:
                psi = softening.potential(r).astype(dtype, copy=False)
                psi[self_pair] = 0.0
                _scatter_add(
                    pot,
                    loc(sink_part),
                    (mass_w[src_part] * psi).astype(np.float64),
                )
            row_start = row_end

    # ----- analytic background cubes -------------------------------------------
    prism_sink = [inter.ghost_sink]
    prism_src = [inter.ghost_src]
    prism_off = [inter.ghost_off]
    if moms.background and len(inter.leaf_sink):
        # in background mode every direct leaf pair also needs its source
        # cube's background removed
        prism_sink.append(inter.leaf_sink)
        prism_src.append(inter.leaf_src)
        prism_off.append(inter.leaf_off)
    psink = np.concatenate(prism_sink)
    psrc = np.concatenate(prism_src)
    poff = np.concatenate(prism_off)
    if len(psink) and moms.background:
        counts = tree.cell_count[psink]
        pidx = expand_ranges(tree.cell_start[psink], counts)
        src = np.repeat(psrc, counts)
        off = np.repeat(poff, counts)
        stats["prism_interactions"] = len(pidx)
        rho = -moms.mean_density  # subtract the background
        for s in range(0, len(pidx), pp_chunk):
            e = min(s + pp_chunk, len(pidx))
            rows = slice(s, e)
            pts = tree.pos[pidx[rows]]
            ctr = tree.cell_center[src[rows]] + inter.offsets[off[rows]]
            half = 0.5 * tree.cell_side[src[rows]][:, None]
            a = prism_acceleration(pts, ctr - half, ctr + half, rho)
            _scatter_add_vec(acc, loc(pidx[rows]), a)
            if want_potential:
                u = prism_potential(pts, ctr - half, ctr + half, rho)
                _scatter_add(pot, loc(pidx[rows]), u)

    if G != 1.0:
        acc *= G
        if want_potential:
            pot *= G

    if particle_range is not None:
        # shard mode: float64 key-sorted slice; the executor merges,
        # unsorts and casts once so the result matches the serial path
        return ForceResult(acc=acc, pot=pot, stats=stats)

    # unsort to original particle order
    acc_out = np.empty_like(acc)
    acc_out[tree.order] = acc
    if want_potential:
        pot_out = np.empty_like(pot)
        pot_out[tree.order] = pot
    else:
        pot_out = None
    if dtype is not np.float64:
        acc_out = acc_out.astype(dtype)
        if pot_out is not None:
            pot_out = pot_out.astype(dtype)
    return ForceResult(acc=acc_out, pot=pot_out, stats=stats)
