"""Ewald summation — the exact periodic reference force (paper §2.4, §5).

The classic Ewald (1921) split of the periodic 1/r sum into a
short-range erfc part (summed over near lattice images in real space)
and a smooth long-range part (summed in Fourier space), with the
neutralizing uniform background included — which makes it the exact
solution of the same delta-rho problem the background-subtracted
treecode solves.

The paper uses Ewald summation as the top rung of its verification
"distance ladder" (§5): too slow for production (1e14 flops for a
single particle of a 4096^3 run), but exact, so it validates the
lattice local-expansion method, which validates the treecode.

Conventions match :mod:`repro.gravity`: psi is the positive potential
kernel (periodic analogue of 1/r), acc = grad psi (attractive).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

__all__ = ["EwaldSummation"]


class EwaldSummation:
    """Pairwise periodic kernel by Ewald summation in a cubic box.

    Parameters
    ----------
    box:
        Box side L.
    alpha:
        Splitting parameter (default 2/L, a standard balance).
    rmax:
        Real-space images summed over |n|_inf <= rmax.
    kmax:
        Fourier modes summed over |k_i| <= kmax (in units 2 pi / L).

    Defaults give ~1e-12 absolute kernel accuracy for alpha*L = 2.
    """

    def __init__(self, box: float = 1.0, alpha: float | None = None, rmax: int = 4, kmax: int = 6):
        self.box = float(box)
        self.alpha = 2.0 / box if alpha is None else float(alpha)
        self.rmax = int(rmax)
        self.kmax = int(kmax)
        r = np.arange(-rmax, rmax + 1)
        gx, gy, gz = np.meshgrid(r, r, r, indexing="ij")
        self._nvec = (
            np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1).astype(np.float64)
            * self.box
        )
        k = np.arange(-kmax, kmax + 1)
        gx, gy, gz = np.meshgrid(k, k, k, indexing="ij")
        kvec = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1).astype(np.float64)
        kvec = kvec[np.any(kvec != 0, axis=1)] * (2.0 * np.pi / self.box)
        k2 = np.einsum("ij,ij->i", kvec, kvec)
        self._kvec = kvec
        self._kcoef = (
            4.0 * np.pi / self.box**3 * np.exp(-k2 / (4.0 * self.alpha**2)) / k2
        )

    # ----- pair kernel -----------------------------------------------------------
    def potential_pair(self, dx: np.ndarray) -> np.ndarray:
        """psi_E(dx): periodic potential kernel for displacements (N, 3).

        Valid for dx != 0 (self-images of a particle are handled by
        :meth:`self_potential`).
        """
        dx = np.atleast_2d(np.asarray(dx, dtype=np.float64))
        a = self.alpha
        # real-space sum over images
        r = np.linalg.norm(dx[:, None, :] + self._nvec[None, :, :], axis=2)
        real = (special.erfc(a * r) / r).sum(axis=1)
        # k-space sum
        phase = dx @ self._kvec.T
        four = (self._kcoef[None, :] * np.cos(phase)).sum(axis=1)
        return real + four - np.pi / (a * a * self.box**3)

    def acceleration_pair(self, dx: np.ndarray) -> np.ndarray:
        """grad psi_E at displacements (N, 3) (force per unit source mass)."""
        dx = np.atleast_2d(np.asarray(dx, dtype=np.float64))
        a = self.alpha
        rvec = dx[:, None, :] + self._nvec[None, :, :]
        r = np.linalg.norm(rvec, axis=2)
        fac = -(
            special.erfc(a * r) / r
            + 2.0 * a / math.sqrt(math.pi) * np.exp(-(a * r) ** 2)
        ) / (r * r)
        real = (fac[:, :, None] * rvec).sum(axis=1)
        phase = dx @ self._kvec.T
        four = -(self._kcoef[None, :] * np.sin(phase)) @ self._kvec
        return real + four

    def self_potential(self) -> float:
        """Interaction of a particle with its own periodic images.

        psi_self = lim_{x->0} [psi_E(x) - 1/|x|]; multiply by m_i for
        the energy contribution (and by 1/2 in the total energy sum).
        """
        a = self.alpha
        real = 0.0
        n = self._nvec[np.any(self._nvec != 0, axis=1)]
        r = np.linalg.norm(n, axis=1)
        real = (special.erfc(a * r) / r).sum()
        four = self._kcoef.sum()
        return float(
            real + four - np.pi / (a * a * self.box**3) - 2.0 * a / math.sqrt(math.pi)
        )

    # ----- N-body fields ------------------------------------------------------------
    def accelerations(
        self, pos: np.ndarray, mass: np.ndarray, targets: np.ndarray | None = None,
        block: int = 16,
    ) -> np.ndarray:
        """Exact periodic accelerations (O(N^2 * images), use small N)."""
        pos = np.asarray(pos, dtype=np.float64)
        mass = np.asarray(mass, dtype=np.float64)
        self_field = targets is None
        tgt = pos if self_field else np.atleast_2d(np.asarray(targets, dtype=np.float64))
        out = np.zeros((len(tgt), 3), dtype=np.float64)
        for i0 in range(0, len(tgt), block):
            i1 = min(i0 + block, len(tgt))
            for i in range(i0, i1):
                dx = tgt[i][None, :] - pos
                keep = np.ones(len(pos), dtype=bool)
                if self_field:
                    keep[i] = False  # its own images still counted below
                acc = self.acceleration_pair(dx[keep]) * mass[keep][:, None]
                out[i] = acc.sum(axis=0)
                if self_field:
                    # own periodic images: antisymmetric -> zero net force
                    pass
        return out

    def potential_energy(self, pos: np.ndarray, mass: np.ndarray) -> float:
        """Total periodic potential energy W = -1/2 sum_ij m_i m_j psi_E."""
        pos = np.asarray(pos, dtype=np.float64)
        mass = np.asarray(mass, dtype=np.float64)
        n = len(pos)
        total = 0.0
        for i in range(n):
            dx = pos[i][None, :] - pos
            keep = np.arange(n) != i
            psi = self.potential_pair(dx[keep])
            total += mass[i] * float((mass[keep] * psi).sum())
        total += self.self_potential() * float((mass * mass).sum())
        return -0.5 * total
