"""Periodic boundary conditions by lattice-summed local expansions (§2.4).

2HOT adopts the method of Challacombe, White & Head-Gordon (1997),
rooted in Nijboer & De Wette (1957) and first used cosmologically by
Metchnik (2009): the force from all periodic images beyond the
explicitly-traversed near images (|n|_inf <= ws) is expressed as a
local (Taylor) expansion about the box center whose coefficients are
*lattice sums* — precomputed once per geometry, independent of the
particle distribution:

    L_beta = sum_alpha ((-1)^{|a|}/a!) M_alpha T_{alpha+beta}
    T_gamma = sum_{|n|_inf > ws} d^gamma (1/|x - n L|) |_{x=0}

The conditionally/slowly convergent T_gamma are evaluated by Ewald
decomposition: an absolutely convergent erfc-kernel real-space sum
over all n != 0, plus a Gaussian-damped k-space sum, plus the analytic
x -> 0 self term, minus the explicitly-traversed near images with the
bare Newtonian kernel.  By cubic symmetry only even orders with
further index symmetries survive; the paper uses p = 8 and ws = 2 and
reaches ~1e-7 of the force, with the local expansion costing ~1% and
the 124 boundary images 5-10% of the force calculation — ratios the
benchmarks reproduce.

The box's own moments must be background-subtracted (zero monopole);
the surviving fluctuation moments feed M2L against the lattice sums.
"""

from __future__ import annotations

import functools
import math

import numpy as np

from ..multipoles import l2p, multi_index_set
from ..multipoles.dtensors import derivative_tensors
from ..multipoles.radial import ErfcKernel, NewtonianKernel

__all__ = ["lattice_sums", "PeriodicLocalExpansion"]


@functools.lru_cache(maxsize=8)
def _lattice_sums_cached(order: int, ws: int, box: float, alpha: float,
                         rmax: int, kmax: int) -> np.ndarray:
    mis = multi_index_set(order)
    ncoef = len(mis)

    # --- real-space erfc sum over all n != 0 --------------------------------
    r = np.arange(-rmax, rmax + 1)
    gx, gy, gz = np.meshgrid(r, r, r, indexing="ij")
    nvec = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1).astype(np.float64)
    nvec = nvec[np.any(nvec != 0, axis=1)] * box
    # T evaluated at x=0: displacement from image center (-nL) to 0 is +nL;
    # D_gamma(0 - (-nL)) = D_gamma(nL), and summing over the symmetric
    # lattice makes the sign convention immaterial for even terms.
    real = derivative_tensors(nvec, ErfcKernel(alpha), order).sum(axis=0)

    # --- k-space sum ----------------------------------------------------------
    k = np.arange(-kmax, kmax + 1)
    gx, gy, gz = np.meshgrid(k, k, k, indexing="ij")
    kvec = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1).astype(np.float64)
    kvec = kvec[np.any(kvec != 0, axis=1)] * (2.0 * np.pi / box)
    k2 = np.einsum("ij,ij->i", kvec, kvec)
    kcoef = 4.0 * np.pi / box**3 * np.exp(-k2 / (4.0 * alpha * alpha)) / k2
    kpart = np.zeros(ncoef)
    # d^gamma cos(k.x)|_0 = Re[(ik)^gamma]: nonzero for even |gamma| with
    # sign (-1)^{|gamma|/2}
    mono = mis.powers(kvec)  # k^gamma
    for i, g in enumerate(mis.alphas):
        n = int(g.sum())
        if n % 2:
            continue
        sign = (-1.0) ** (n // 2)
        kpart[i] = sign * float((kcoef * mono[:, i]).sum())

    # --- self term: -d^gamma [erf(alpha r)/r] at 0 ------------------------------
    self_part = np.zeros(ncoef)
    for i, g in enumerate(mis.alphas):
        t, u, v = (int(x) for x in g)
        if t % 2 or u % 2 or v % 2:
            continue
        dt, du, dv = t // 2, u // 2, v // 2
        j = dt + du + dv
        cj = (
            2.0
            * alpha
            / math.sqrt(math.pi)
            * (-1.0) ** j
            * alpha ** (2 * j)
            / (math.factorial(j) * (2 * j + 1))
        )
        gamma_fact = (
            math.factorial(t) * math.factorial(u) * math.factorial(v)
        )
        multi = math.factorial(j) / (
            math.factorial(dt) * math.factorial(du) * math.factorial(dv)
        )
        self_part[i] = cj * multi * gamma_fact

    total = real + kpart - self_part
    # gamma = 0 background term of the Ewald potential
    total[0] -= math.pi / (alpha * alpha * box**3)

    # --- subtract the explicitly-traversed near images (bare kernel) ---------
    r = np.arange(-ws, ws + 1)
    gx, gy, gz = np.meshgrid(r, r, r, indexing="ij")
    near = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1).astype(np.float64)
    near = near[np.any(near != 0, axis=1)] * box
    total -= derivative_tensors(near, NewtonianKernel(), order).sum(axis=0)
    return total


def lattice_sums(
    order: int,
    ws: int = 2,
    box: float = 1.0,
    alpha: float | None = None,
    rmax: int = 6,
    kmax: int = 8,
) -> np.ndarray:
    """Packed far-lattice derivative sums T_gamma, |gamma| <= order.

    ``order`` should be p_source + p_local (+1 if forces are evaluated
    from the local expansion).  Results are cached per geometry.
    """
    a = 2.0 / box if alpha is None else float(alpha)
    return _lattice_sums_cached(order, ws, float(box), a, rmax, kmax)


class PeriodicLocalExpansion:
    """Far-image correction: box multipoles -> local expansion -> particles.

    Parameters
    ----------
    p_source:
        Order of the box moments supplied (the tree's expansion order).
    p_local:
        Order of the local expansion about the box center (the paper
        uses 8).
    ws:
        Near-image window explicitly handled by the traversal.
    """

    def __init__(self, p_source: int, p_local: int = 8, ws: int = 2, box: float = 1.0):
        self.p_source = p_source
        self.p_local = p_local
        self.ws = ws
        self.box = float(box)
        self._tsum = lattice_sums(p_source + p_local + 1, ws=ws, box=box)
        self._mis_hi = multi_index_set(p_source + p_local + 1)
        self._mis_src = multi_index_set(p_source)
        self._mis_loc = multi_index_set(p_local + 1)
        # precolumns for the L_beta contraction
        cols = np.empty((len(self._mis_loc), len(self._mis_src)), dtype=np.intp)
        for bi, b in enumerate(self._mis_loc.alphas):
            for ai, a in enumerate(self._mis_src.alphas):
                cols[bi, ai] = self._mis_hi.index[tuple(int(x) for x in (a + b))]
        self._cols = cols
        self._w = ((-1.0) ** self._mis_src.order) / self._mis_src.factorial

    def local_coefficients(self, box_moments: np.ndarray) -> np.ndarray:
        """L_beta (packed, order p_local + 1) from packed box moments.

        ``box_moments`` must be about the box center and background-
        subtracted (vanishing monopole) — the delta-rho convention of
        the rest of the library.
        """
        m = np.asarray(box_moments, dtype=np.float64)[: len(self._mis_src)]
        wm = self._w * m
        return self._tsum[self._cols] @ wm

    def field(self, box_moments: np.ndarray, pos: np.ndarray):
        """(potential, acceleration) of the far images at positions.

        Positions are in [0, box)^3; the expansion center is the box
        center.
        """
        loc = self.local_coefficients(box_moments)
        center = np.full(3, self.box / 2.0)
        return l2p(loc, center, np.asarray(pos, dtype=np.float64), self.p_local + 1)
