"""Compiled m x n-blocked CSR force kernel (paper §3.2) with backend dispatch.

The paper's production force rate comes from an m-sinks x n-sources
blocked inner kernel: load a block of sink coordinates into registers,
stream source tiles (cell multipoles, leaf particles, periodic images)
through the fused inner loops, and accumulate per-sink acc/pot without
ever materializing per-interaction intermediates.  This module is that
kernel for the CSR interaction lists emitted by
:func:`repro.tree.traversal.traverse_hierarchical`:

* the outer loop runs over sink leaves (CSR rows) in ``prange`` — rows
  own disjoint particle ranges, so parallel writes are race-free;
* per row, the m sink coordinates and accumulators live in small local
  arrays (the paper's register block);
* each CSR entry is one source tile: a cell-multipole entry walks the
  derivative-tensor recurrence per sink, a leaf entry streams its
  source particles (shifted by the entry's periodic-image offset)
  through the softened particle-particle loop.

The kernel body (:func:`_csr_force_kernel`) is plain nopython-subset
Python: with numba installed it is compiled via
``@njit(parallel=True, fastmath=False, cache=True)``; without numba
the same function runs interpreted, which keeps the kernel logic
testable on numba-free installs (the production fallback there is the
vectorized numpy evaluator in :mod:`repro.gravity.treeforce`, not the
interpreted loop).

``fastmath`` stays **off**: the backend-agreement contract is a
<= 1e-12 relative acc difference against the numpy reference, and the
kernel performs the same arithmetic in the same per-sink order — only
reduction internals (einsum/reduceat partial sums) differ.

Backend selection (``resolve_backend``): an explicit ``"numpy"`` or
``"compiled"`` wins; ``"auto"`` (the config default) consults the
``REPRO_FORCE_BACKEND`` environment variable and falls back to
compiled-when-available.  Requesting ``"compiled"`` without numba
degrades gracefully to numpy and records the reason.
"""

from __future__ import annotations

import functools
import math
import os

import numpy as np

from ..multipoles import multi_index_set
from ..multipoles.dtensors import recurrence_plan
from ..multipoles.multiindex import n_coeffs
from ..multipoles.radial import (
    ErfcKernel,
    ErfKernel,
    NewtonianKernel,
    PlummerKernel,
    _ErfFamilyKernel,
)
from .smoothing import (
    DehnenK1Softening,
    NoSoftening,
    PlummerSoftening,
    SplineSoftening,
)

__all__ = [
    "NUMBA_AVAILABLE",
    "resolve_backend",
    "kernel_available",
    "get_force_kernel",
    "set_kernel_threads",
    "active_kernel_threads",
    "kernel_specs",
    "run_csr_kernel",
    "run_m2l_kernel",
    "run_l2l_kernel",
    "run_l2p_kernel",
    "kernel_counters",
    "merge_kernel_counters",
]

try:  # import-guarded: the repo must import and pass tier-1 without numba
    import numba
    from numba import prange

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised via monkeypatched reload
    numba = None
    prange = range
    NUMBA_AVAILABLE = False

#: radial-kernel kinds understood by the kernel body
_KERN_NEWTONIAN, _KERN_PLUMMER, _KERN_ERFFAMILY = 0, 1, 2
#: softening kinds understood by the kernel body
_SOFT_NONE, _SOFT_PLUMMER, _SOFT_SPLINE, _SOFT_DEHNEN = 0, 1, 2, 3

_EMPTY_F8 = np.zeros(0, dtype=np.float64)
_EMPTY_I8 = np.zeros(1, dtype=np.int64)


def _py_kernel_forced() -> bool:
    """Testing hook: run the interpreted kernel as the 'compiled' backend.

    ``REPRO_FORCE_PYKERNEL=1`` makes the backend dispatcher treat the
    uncompiled kernel body as available — orders of magnitude slower
    than numpy, but it exercises the exact code numba would compile,
    which is how numba-free CI proves the kernel logic.
    """
    return os.environ.get("REPRO_FORCE_PYKERNEL", "").strip().lower() in (
        "1", "true", "yes",
    )


def kernel_available() -> bool:
    """Can the 'compiled' backend actually run here?"""
    return NUMBA_AVAILABLE or _py_kernel_forced()


def resolve_backend_ex(requested: str | None) -> tuple[str, str | None]:
    """Resolve a backend request to ``(backend, fallback_reason)``.

    ``None``/"auto" consult ``REPRO_FORCE_BACKEND`` and default to
    compiled-when-available; an explicit "compiled" without a usable
    kernel degrades to "numpy" with the reason recorded.
    """
    req = (requested or "auto").strip().lower()
    if req == "auto":
        req = os.environ.get("REPRO_FORCE_BACKEND", "").strip().lower() or "auto"
    if req not in ("auto", "numpy", "compiled"):
        raise ValueError(
            f"unknown force backend {req!r} (expected auto|numpy|compiled)"
        )
    if req == "numpy":
        return "numpy", None
    if kernel_available():
        return "compiled", None
    if req == "compiled":
        return "numpy", "compiled backend requested but numba is not installed"
    return "numpy", None


def resolve_backend(requested: str | None) -> str:
    """The backend that will run for ``requested`` (see resolve_backend_ex)."""
    return resolve_backend_ex(requested)[0]


def set_kernel_threads(n: int | None) -> None:
    """Cap numba's thread pool (worker-pool oversubscription guard).

    The executor calls this in each worker with
    ``cpu_count // workers`` so ``workers > 1`` composed with the
    threaded kernel does not oversubscribe the node.  No-op without
    numba or with ``n=None``.
    """
    if n is None or not NUMBA_AVAILABLE:
        return
    try:
        limit = int(numba.config.NUMBA_NUM_THREADS)
        numba.set_num_threads(max(1, min(int(n), limit)))
    except Exception:  # pragma: no cover - defensive: never break a solve
        pass


def active_kernel_threads() -> int:
    """Threads the jitted kernel's ``prange`` will actually use."""
    if not NUMBA_AVAILABLE:
        return 1
    try:
        return int(numba.get_num_threads())
    except Exception:  # pragma: no cover - defensive
        return 1


# ---------------------------------------------------------------------------
# roofline counters
# ---------------------------------------------------------------------------


def kernel_counters(
    tree,
    inter,
    *,
    p: int,
    want_potential: bool,
    seconds: float,
    backend: str,
    threads: int = 1,
    prism_interactions: int = 0,
) -> dict:
    """Roofline counters of one CSR force evaluation (paper §3.2/§3.4).

    Everything is derived from the CSR interaction lists plus the
    measured kernel seconds, so the numbers are identical accounting
    for both backends: interactions by family, an honest flop count
    from :mod:`repro.perfmodel.flops`, achieved interactions/s and
    effective GFLOP/s, the m x n tile shape the blocked kernel sees
    (m = sink particles per CSR row, n = sources per entry) with its
    register-block occupancy, a static-schedule thread-utilization
    estimate, and the fraction of the machine-model prediction reached.
    """
    from ..parallel.machine import MachineModel
    from ..perfmodel.flops import FLOPS_PER_MONOPOLE_PP, flops_per_cell_interaction

    sinks = inter.sink_leaves
    rows = int(len(sinks))
    leaf_np = tree.cell_count[sinks] if rows else np.zeros(0, dtype=np.int64)
    cell_per_row = np.zeros(rows, dtype=np.int64)
    if len(inter.cell_sink):
        cell_per_row = np.diff(inter.cell_indptr)
    pp_per_row = np.zeros(rows, dtype=np.int64)
    n_pp_mean = 0.0
    if len(inter.leaf_sink):
        ct_ent = tree.cell_count[inter.leaf_src]
        nent = np.diff(inter.leaf_indptr)
        nz = nent > 0
        if np.any(nz):
            pp_per_row[nz] = np.add.reduceat(ct_ent, inter.leaf_indptr[:-1][nz])
        if len(ct_ent):
            n_pp_mean = float(ct_ent.mean())
    cell_inter = int((cell_per_row * leaf_np).sum())
    pp_inter = int((pp_per_row * leaf_np).sum())
    m2l_pairs = 0
    l2p_inter = 0
    if getattr(inter, "m2l_src", None) is not None and len(inter.m2l_src):
        from ..perfmodel.flops import flops_per_l2p, flops_per_m2l

        m2l_pairs = int(len(inter.m2l_src))
        l2p_inter = int(leaf_np.sum())
    total = cell_inter + pp_inter + m2l_pairs + l2p_inter + int(prism_interactions)
    cell_flops = flops_per_cell_interaction(p, want_potential)
    flops = float(
        cell_inter * cell_flops
        + (pp_inter + int(prism_interactions)) * FLOPS_PER_MONOPOLE_PP
    )
    if m2l_pairs:
        flops += float(
            m2l_pairs * flops_per_m2l(p)
            + l2p_inter * flops_per_l2p(p, want_potential)
        )
    m_mean = float(leaf_np.mean()) if rows else 0.0
    m_max = int(leaf_np.max()) if rows else 0
    # static-schedule balance over the prange rows: per-row flop weight,
    # split into `threads` contiguous chunks; utilization = mean/max
    util = 1.0
    if threads > 1 and rows:
        weight = (cell_per_row * leaf_np * cell_flops
                  + pp_per_row * leaf_np * FLOPS_PER_MONOPOLE_PP).astype(np.float64)
        sums = np.array([c.sum() for c in np.array_split(weight, threads)])
        util = float(sums.mean() / sums.max()) if sums.max() > 0 else 1.0
    sec = max(float(seconds), 1e-12)
    gflops = flops / sec / 1e9
    model_gflops = MachineModel().flops_per_core * max(int(threads), 1) / 1e9
    return {
        "backend": backend,
        "seconds": float(seconds),
        "interactions": total,
        "cell_interactions": cell_inter,
        "pp_interactions": pp_inter,
        "m2l_pairs": m2l_pairs,
        "l2p_interactions": l2p_inter,
        "prism_interactions": int(prism_interactions),
        "flops": flops,
        "interactions_per_s": total / sec,
        "gflops": gflops,
        "rows": rows,
        "m_mean": m_mean,
        "m_max": m_max,
        "n_pp_mean": n_pp_mean,
        "tile_occupancy": (m_mean / m_max) if m_max else 0.0,
        "threads": max(int(threads), 1),
        "thread_utilization": util,
        "model_gflops": model_gflops,
        "model_fraction": gflops / model_gflops if model_gflops else 0.0,
    }


def merge_kernel_counters(parts: list[dict]) -> dict | None:
    """Combine per-shard kernel counters into one record.

    Additive fields sum; ``seconds`` sums *busy* kernel seconds across
    shards, so the recomputed rates are per-busy-second throughput —
    comparable to a single-thread rate, not to the pool wall-clock.
    Shape/utilization fields average weighted by interactions.
    """
    parts = [k for k in parts if k]
    if not parts:
        return None
    out = {"backend": parts[-1].get("backend", "numpy")}
    for key in ("interactions", "cell_interactions", "pp_interactions",
                "m2l_pairs", "l2p_interactions", "prism_interactions", "rows"):
        out[key] = int(sum(k.get(key, 0) for k in parts))
    out["flops"] = float(sum(k.get("flops", 0.0) for k in parts))
    out["seconds"] = float(sum(k.get("seconds", 0.0) for k in parts))
    sec = max(out["seconds"], 1e-12)
    out["interactions_per_s"] = out["interactions"] / sec
    out["gflops"] = out["flops"] / sec / 1e9
    w = np.array([max(k.get("interactions", 0), 1) for k in parts], dtype=float)
    for key in ("m_mean", "n_pp_mean", "tile_occupancy", "thread_utilization"):
        out[key] = float(np.average([k.get(key, 0.0) for k in parts], weights=w))
    out["m_max"] = int(max(k.get("m_max", 0) for k in parts))
    out["threads"] = int(max(k.get("threads", 1) for k in parts))
    out["model_gflops"] = float(max(k.get("model_gflops", 0.0) for k in parts))
    out["model_fraction"] = (
        out["gflops"] / out["model_gflops"] if out["model_gflops"] else 0.0
    )
    return out


# ---------------------------------------------------------------------------
# kernel parameter marshalling
# ---------------------------------------------------------------------------


def _softening_spec(softening) -> tuple[int, float, float] | None:
    """(kind, eps-like scale, r_split) for the kernel body; None if unsupported.

    ``r_split > 0`` applies GADGET-2's short-range TreePM filter on top
    of the base softening (see :class:`repro.gravity.pm.ShortRangeSoftening`).
    """
    t = type(softening)
    if t is NoSoftening:
        return _SOFT_NONE, 0.0, 0.0
    if t is PlummerSoftening:
        return _SOFT_PLUMMER, softening.eps, 0.0
    if t is SplineSoftening:
        return _SOFT_SPLINE, softening.h, 0.0
    if t is DehnenK1Softening:
        return _SOFT_DEHNEN, softening.h, 0.0
    from .pm import ShortRangeSoftening  # local: pm imports treeforce

    if t is ShortRangeSoftening:
        base = _softening_spec(softening.base)
        if base is None or base[2] != 0.0:
            return None
        return base[0], base[1], softening.r_split
    return None


def _erf_chain_tables(kernel: _ErfFamilyKernel, mmax: int):
    """Flatten the symbolic erf/erfc derivative chain into CSR tables.

    Level m of the chain is a small sum of ``c * r^p * F(a r)`` and
    ``d * r^q * exp(-a^2 r^2)`` terms; the tables hold (power, coeff)
    runs per level, in the chain's own term order.
    """
    kernel._extend(mmax)
    e_pow, e_coef, e_ptr = [], [], [0]
    g_pow, g_coef, g_ptr = [], [], [0]
    for m in range(mmax + 1):
        e, g = kernel._chains[m]
        for p, c in e.items():
            e_pow.append(float(p))
            e_coef.append(c)
        for q, c in g.items():
            g_pow.append(float(q))
            g_coef.append(c)
        e_ptr.append(len(e_pow))
        g_ptr.append(len(g_pow))
    return (
        np.array(e_pow, dtype=np.float64),
        np.array(e_coef, dtype=np.float64),
        np.array(e_ptr, dtype=np.int64),
        np.array(g_pow, dtype=np.float64),
        np.array(g_coef, dtype=np.float64),
        np.array(g_ptr, dtype=np.int64),
    )


def _radial_spec(kernel, pmax: int):
    """Kernel-body parameters for a radial Green's function; None if unknown."""
    t = type(kernel)
    if t is NewtonianKernel:
        return (_KERN_NEWTONIAN, 0.0, 0.0, False,
                _EMPTY_F8, _EMPTY_F8, _EMPTY_I8, _EMPTY_F8, _EMPTY_F8, _EMPTY_I8)
    if t is PlummerKernel:
        return (_KERN_PLUMMER, kernel.eps, 0.0, False,
                _EMPTY_F8, _EMPTY_F8, _EMPTY_I8, _EMPTY_F8, _EMPTY_F8, _EMPTY_I8)
    if t in (ErfcKernel, ErfKernel):
        tables = _erf_chain_tables(kernel, pmax)
        return (_KERN_ERFFAMILY, 0.0, kernel.alpha, t is ErfKernel, *tables)
    return None


def kernel_specs(kernel, softening, p: int):
    """Marshal (radial kernel, softening) into kernel-body parameters.

    Returns ``(radial_spec, soft_spec)`` or ``None`` when either side is
    a type the compiled kernel does not implement — the caller then
    falls back to the numpy evaluator.  Exact-type checks on purpose:
    an unknown subclass overriding the math must not be silently
    evaluated with the base-class formulas.
    """
    rs = _radial_spec(kernel, p + 1)
    ss = _softening_spec(softening)
    if rs is None or ss is None:
        return None
    return rs, ss


@functools.lru_cache(maxsize=16)
def _plan_arrays(pmax: int):
    """Derivative-tensor recurrence plan as flat arrays (kernel input)."""
    mis_hi, plan = recurrence_plan(pmax)
    tgt = np.array([s[0] for s in plan], dtype=np.int64)
    axis = np.array([s[1] for s in plan], dtype=np.int64)
    idx1 = np.array([s[2] for s in plan], dtype=np.int64)
    idx2 = np.array([s[3] for s in plan], dtype=np.int64)
    fac = np.array([s[4] for s in plan], dtype=np.float64)
    orders = mis_hi.order.astype(np.int64)
    return tgt, axis, idx1, idx2, fac, orders


@functools.lru_cache(maxsize=16)
def _acc_cols_arr(p: int) -> np.ndarray:
    """Packed column indices of D_{alpha+e_i} per axis (kernel input)."""
    mis = multi_index_set(p)
    mis_hi = multi_index_set(p + 1)
    cols = np.empty((3, len(mis)), dtype=np.int64)
    for i in range(3):
        e = np.zeros(3, dtype=np.int64)
        e[i] = 1
        for j, a in enumerate(mis.alphas):
            cols[i, j] = mis_hi.index[tuple(int(x) for x in (a + e))]
    return cols


@functools.lru_cache(maxsize=8)
def _moment_weights(p: int) -> np.ndarray:
    mis = multi_index_set(p)
    return ((-1.0) ** mis.order) / mis.factorial


# ---------------------------------------------------------------------------
# the kernel body (numba-compilable pure-python)
# ---------------------------------------------------------------------------


def _csr_force_kernel(
    # particle / cell arrays (key-sorted SoA)
    pos, mass, cell_start, cell_count, cell_center,
    # CSR interaction lists (rows follow sink_leaves)
    sink_leaves, cell_indptr, cell_src, cell_off,
    leaf_indptr, leaf_src, leaf_off,
    # periodic images
    offsets, home_off,
    # multipole data: premultiplied moments and the recurrence plan
    wm, plan_tgt, plan_axis, plan_idx1, plan_idx2, plan_fac, orders, acc_cols,
    pmax, ncoef, nhi,
    # radial kernel spec
    kern_kind, kern_eps, kern_alpha, kern_use_erf,
    ke_pow, ke_coef, ke_ptr, kg_pow, kg_coef, kg_ptr,
    # softening spec
    soft_kind, soft_eps, soft_rsplit,
    # output layout
    want_potential, s0,
    acc, pot,
):  # pragma: no cover - covered via run_csr_kernel in the backend tests
    nrows = len(sink_leaves)
    for row in prange(nrows):
        leaf = sink_leaves[row]
        a0 = cell_start[leaf]
        m = cell_count[leaf]
        # ---- the m-sink block: local coordinates and accumulators ----
        sx = np.empty(m, dtype=np.float64)
        sy = np.empty(m, dtype=np.float64)
        sz = np.empty(m, dtype=np.float64)
        axl = np.zeros(m, dtype=np.float64)
        ayl = np.zeros(m, dtype=np.float64)
        azl = np.zeros(m, dtype=np.float64)
        phl = np.zeros(m, dtype=np.float64)
        for i in range(m):
            sx[i] = pos[a0 + i, 0]
            sy[i] = pos[a0 + i, 1]
            sz[i] = pos[a0 + i, 2]
        gch = np.empty(pmax + 1, dtype=np.float64)
        rm = np.empty((pmax + 1, nhi), dtype=np.float64)

        # ---- cell (multipole) tiles ----------------------------------
        for e in range(cell_indptr[row], cell_indptr[row + 1]):
            src = cell_src[e]
            off = cell_off[e]
            cx = cell_center[src, 0] + offsets[off, 0]
            cy = cell_center[src, 1] + offsets[off, 1]
            cz = cell_center[src, 2] + offsets[off, 2]
            for i in range(m):
                dx = sx[i] - cx
                dy = sy[i] - cy
                dz = sz[i] - cz
                r2 = dx * dx + dy * dy + dz * dz
                r = math.sqrt(r2)
                # radial derivative chain g_0..g_pmax
                if kern_kind == 0:  # Newtonian 1/r
                    inv_r2 = 1.0 / r2
                    g = 1.0 / r
                    gch[0] = g
                    for mm in range(1, pmax + 1):
                        g = g * (-(2.0 * mm - 1.0)) * inv_r2
                        gch[mm] = g
                elif kern_kind == 1:  # Plummer-smoothed
                    s2 = r2 + kern_eps * kern_eps
                    inv_s2 = 1.0 / s2
                    g = math.sqrt(inv_s2)
                    gch[0] = g
                    for mm in range(1, pmax + 1):
                        g = g * (-(2.0 * mm - 1.0)) * inv_s2
                        gch[mm] = g
                else:  # erfc/erf over r (Ewald / TreePM split)
                    if kern_use_erf:
                        fval = math.erf(kern_alpha * r)
                    else:
                        fval = math.erfc(kern_alpha * r)
                    gauss = math.exp(-(kern_alpha * kern_alpha) * r2)
                    for mm in range(pmax + 1):
                        s = 0.0
                        for t in range(ke_ptr[mm], ke_ptr[mm + 1]):
                            s += ke_coef[t] * r ** ke_pow[t] * fval
                        for t in range(kg_ptr[mm], kg_ptr[mm + 1]):
                            s += kg_coef[t] * r ** kg_pow[t] * gauss
                        gch[mm] = s
                # derivative-tensor recurrence (plan-driven, any order)
                for mm in range(pmax + 1):
                    rm[mm, 0] = gch[mm]
                for t in range(len(plan_tgt)):
                    tgt = plan_tgt[t]
                    o = orders[tgt]
                    i1 = plan_idx1[t]
                    i2 = plan_idx2[t]
                    fac = plan_fac[t]
                    axn = plan_axis[t]
                    if axn == 0:
                        xv = dx
                    elif axn == 1:
                        xv = dy
                    else:
                        xv = dz
                    for mm in range(pmax - o, -1, -1):
                        v = xv * rm[mm + 1, i1]
                        if i2 >= 0 and fac != 0.0:
                            v = v + fac * rm[mm + 1, i2]
                        rm[mm, tgt] = v
                # contract with the source cell's weighted moments
                aix = 0.0
                aiy = 0.0
                aiz = 0.0
                ph = 0.0
                for j in range(ncoef):
                    wj = wm[src, j]
                    aix += rm[0, acc_cols[0, j]] * wj
                    aiy += rm[0, acc_cols[1, j]] * wj
                    aiz += rm[0, acc_cols[2, j]] * wj
                    if want_potential:
                        ph += rm[0, j] * wj
                axl[i] += aix
                ayl[i] += aiy
                azl[i] += aiz
                if want_potential:
                    phl[i] += ph

        # ---- leaf (particle-particle) tiles --------------------------
        for e in range(leaf_indptr[row], leaf_indptr[row + 1]):
            srcc = leaf_src[e]
            off = leaf_off[e]
            ox = offsets[off, 0]
            oy = offsets[off, 1]
            oz = offsets[off, 2]
            is_home = off == home_off
            b0 = cell_start[srcc]
            nsrc = cell_count[srcc]
            for j in range(nsrc):
                px = pos[b0 + j, 0] + ox
                py = pos[b0 + j, 1] + oy
                pz = pos[b0 + j, 2] + oz
                pmass = mass[b0 + j]
                for i in range(m):
                    if is_home and a0 + i == b0 + j:
                        continue  # self interaction
                    dx = sx[i] - px
                    dy = sy[i] - py
                    dz = sz[i] - pz
                    r = math.sqrt(dx * dx + dy * dy + dz * dz)
                    # softened force factor F and potential psi
                    psi = 0.0
                    if soft_kind == 0:  # none
                        f = 1.0 / (r * r * r)
                        if want_potential:
                            psi = 1.0 / r
                    elif soft_kind == 1:  # plummer
                        q2 = r * r + soft_eps * soft_eps
                        f = q2 ** -1.5
                        if want_potential:
                            psi = q2 ** -0.5
                    elif soft_kind == 2:  # cubic spline (h = 2.8 eps)
                        h = soft_eps
                        u = r / h
                        if u >= 1.0:
                            rs = max(r, 1e-300)
                            f = 1.0 / rs ** 3
                            if want_potential:
                                psi = 1.0 / rs
                        elif u < 0.5:
                            f = (10.666666666667 + u * u * (32.0 * u - 38.4)) / h ** 3
                            if want_potential:
                                psi = -1.0 / h * (
                                    -2.8
                                    + u ** 2 * (5.333333333333 + u ** 2 * (6.4 * u - 9.6))
                                )
                        else:
                            f = (
                                21.333333333333
                                - 48.0 * u
                                + 38.4 * u * u
                                - 10.666666666667 * u ** 3
                                - 0.066666666667 / u ** 3
                            ) / h ** 3
                            if want_potential:
                                psi = -1.0 / h * (
                                    -3.2
                                    + 0.066666666667 / u
                                    + u ** 2
                                    * (10.666666666667
                                       + u * (-16.0 + u * (9.6 - 2.133333333333 * u)))
                                )
                    else:  # Dehnen K1 (h = eps)
                        h = soft_eps
                        u = r / h
                        if u >= 1.0:
                            rs = max(r, 1e-300)
                            f = 1.0 / rs ** 3
                            if want_potential:
                                psi = 1.0 / rs
                        else:
                            ui = min(u, 1.0)
                            f = (17.5 - 31.5 * ui ** 2 + 15.0 * ui ** 4) / h ** 3
                            if want_potential:
                                psi = (
                                    4.375 - 8.75 * ui ** 2 + 7.875 * ui ** 4
                                    - 2.5 * ui ** 6
                                ) / h
                    if soft_rsplit > 0.0:
                        # GADGET-2 short-range TreePM filter (same
                        # expression order as ShortRangeSoftening)
                        u = r / (2.0 * soft_rsplit)
                        ec = math.erfc(u)
                        f = f * (
                            ec + 2.0 * u / math.sqrt(math.pi) * math.exp(-u * u)
                        )
                        if want_potential:
                            psi = psi * ec
                    fm = pmass * f
                    axl[i] -= fm * dx
                    ayl[i] -= fm * dy
                    azl[i] -= fm * dz
                    if want_potential:
                        phl[i] += pmass * psi

        # ---- write the block back (rows own disjoint particle ranges)
        for i in range(m):
            out = a0 + i - s0
            acc[out, 0] += axl[i]
            acc[out, 1] += ayl[i]
            acc[out, 2] += azl[i]
            if want_potential:
                pot[out] += phl[i]


_JITTED = None


def _jit_kernel():
    """Compile (once) the kernel body with numba."""
    global _JITTED
    if _JITTED is None:
        _JITTED = numba.njit(parallel=True, fastmath=False, cache=True)(
            _csr_force_kernel
        )
    return _JITTED


def get_force_kernel():
    """The callable the 'compiled' backend dispatches to, or None.

    numba-jitted when numba is installed; the interpreted kernel body
    when ``REPRO_FORCE_PYKERNEL`` forces it (tests); None otherwise.
    """
    if NUMBA_AVAILABLE:
        return _jit_kernel()
    if _py_kernel_forced():
        return _csr_force_kernel
    return None


def _i8(a) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


def _f8(a) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.float64)


def run_csr_kernel(
    tree,
    moms,
    inter,
    spec,
    want_potential: bool,
    s0: int,
    acc: np.ndarray,
    pot: np.ndarray | None,
    kernel_fn=None,
) -> None:
    """Evaluate the cell + pp families of CSR lists through the kernel.

    Accumulates into ``acc`` (and ``pot``) in key-sorted order offset
    by ``s0``; the analytic background (prism) family is evaluated by
    the shared numpy pass in :mod:`repro.gravity.treeforce`, identically
    for both backends.
    """
    fn = kernel_fn if kernel_fn is not None else get_force_kernel()
    if fn is None:
        raise RuntimeError("no compiled force kernel available")
    radial, soft = spec
    (kern_kind, kern_eps, kern_alpha, kern_use_erf,
     ke_pow, ke_coef, ke_ptr, kg_pow, kg_coef, kg_ptr) = radial
    soft_kind, soft_eps, soft_rsplit = soft
    p = moms.p
    pmax = p + 1
    ncoef = n_coeffs(p)
    nhi = n_coeffs(pmax)
    plan_tgt, plan_axis, plan_idx1, plan_idx2, plan_fac, orders = _plan_arrays(pmax)
    wm = np.ascontiguousarray(moms.moments[:, :ncoef]) * _moment_weights(p)
    home_off = int(np.flatnonzero(np.all(inter.offsets == 0.0, axis=1))[0])
    pot_arr = pot if pot is not None else _EMPTY_F8
    fn(
        _f8(tree.pos), _f8(tree.mass),
        _i8(tree.cell_start), _i8(tree.cell_count), _f8(tree.cell_center),
        _i8(inter.sink_leaves), _i8(inter.cell_indptr),
        _i8(inter.cell_src), _i8(inter.cell_off),
        _i8(inter.leaf_indptr), _i8(inter.leaf_src), _i8(inter.leaf_off),
        _f8(inter.offsets), home_off,
        wm, plan_tgt, plan_axis, plan_idx1, plan_idx2, plan_fac, orders,
        _acc_cols_arr(p), pmax, ncoef, nhi,
        kern_kind, kern_eps, kern_alpha, kern_use_erf,
        ke_pow, ke_coef, ke_ptr, kg_pow, kg_coef, kg_ptr,
        soft_kind, soft_eps, soft_rsplit,
        want_potential, s0,
        acc, pot_arr,
    )


# ---------------------------------------------------------------------------
# fmm-hybrid far field: M2L / L2L / L2P kernel bodies
# ---------------------------------------------------------------------------


def _m2l_kernel(
    cell_center, offsets,
    m2l_cells, m2l_indptr, m2l_src, m2l_off,
    # premultiplied source moments and the triangular gather tables
    wm, acol, ccol, biptr,
    plan_tgt, plan_axis, plan_idx1, plan_idx2, plan_fac, orders,
    pmax, nhi, nloc,
    # radial kernel spec (same chain as the force kernel)
    kern_kind, kern_eps, kern_alpha, kern_use_erf,
    ke_pow, ke_coef, ke_ptr, kg_pow, kg_coef, kg_ptr,
    locs,
):  # pragma: no cover - covered via run_m2l_kernel in the hybrid tests
    nrows = len(m2l_cells)
    for row in prange(nrows):
        c = m2l_cells[row]
        cx0 = cell_center[c, 0]
        cy0 = cell_center[c, 1]
        cz0 = cell_center[c, 2]
        gch = np.empty(pmax + 1, dtype=np.float64)
        rm = np.empty((pmax + 1, nhi), dtype=np.float64)
        for e in range(m2l_indptr[row], m2l_indptr[row + 1]):
            src = m2l_src[e]
            off = m2l_off[e]
            dx = cx0 - (cell_center[src, 0] + offsets[off, 0])
            dy = cy0 - (cell_center[src, 1] + offsets[off, 1])
            dz = cz0 - (cell_center[src, 2] + offsets[off, 2])
            r2 = dx * dx + dy * dy + dz * dz
            r = math.sqrt(r2)
            if kern_kind == 0:  # Newtonian 1/r
                inv_r2 = 1.0 / r2
                g = 1.0 / r
                gch[0] = g
                for mm in range(1, pmax + 1):
                    g = g * (-(2.0 * mm - 1.0)) * inv_r2
                    gch[mm] = g
            elif kern_kind == 1:  # Plummer-smoothed
                s2 = r2 + kern_eps * kern_eps
                inv_s2 = 1.0 / s2
                g = math.sqrt(inv_s2)
                gch[0] = g
                for mm in range(1, pmax + 1):
                    g = g * (-(2.0 * mm - 1.0)) * inv_s2
                    gch[mm] = g
            else:  # erfc/erf over r (Ewald / TreePM split)
                if kern_use_erf:
                    fval = math.erf(kern_alpha * r)
                else:
                    fval = math.erfc(kern_alpha * r)
                gauss = math.exp(-(kern_alpha * kern_alpha) * r2)
                for mm in range(pmax + 1):
                    s = 0.0
                    for t in range(ke_ptr[mm], ke_ptr[mm + 1]):
                        s += ke_coef[t] * r ** ke_pow[t] * fval
                    for t in range(kg_ptr[mm], kg_ptr[mm + 1]):
                        s += kg_coef[t] * r ** kg_pow[t] * gauss
                    gch[mm] = s
            for mm in range(pmax + 1):
                rm[mm, 0] = gch[mm]
            for t in range(len(plan_tgt)):
                tgt = plan_tgt[t]
                o = orders[tgt]
                i1 = plan_idx1[t]
                i2 = plan_idx2[t]
                fac = plan_fac[t]
                axn = plan_axis[t]
                if axn == 0:
                    xv = dx
                elif axn == 1:
                    xv = dy
                else:
                    xv = dz
                for mm in range(pmax - o, -1, -1):
                    v = xv * rm[mm + 1, i1]
                    if i2 >= 0 and fac != 0.0:
                        v = v + fac * rm[mm + 1, i2]
                    rm[mm, tgt] = v
            # triangular contraction: local beta sums sources with
            # |alpha| + |beta| <= pmax
            for bi in range(nloc):
                sacc = 0.0
                for t in range(biptr[bi], biptr[bi + 1]):
                    sacc += wm[src, acol[t]] * rm[0, ccol[t]]
                locs[row, bi] += sacc


def _l2l_kernel(
    parent_local, d,
    tt_tgt, tt_src, tt_shift, tt_w, alphas,
    pmax, nloc,
    out,
):  # pragma: no cover - covered via run_l2l_kernel in the hybrid tests
    n = len(d)
    for k in prange(n):
        px = np.empty(pmax + 1, dtype=np.float64)
        py = np.empty(pmax + 1, dtype=np.float64)
        pz = np.empty(pmax + 1, dtype=np.float64)
        px[0] = 1.0
        py[0] = 1.0
        pz[0] = 1.0
        for q in range(1, pmax + 1):
            px[q] = px[q - 1] * d[k, 0]
            py[q] = py[q - 1] * d[k, 1]
            pz[q] = pz[q - 1] * d[k, 2]
        mono = np.empty(nloc, dtype=np.float64)
        for j in range(nloc):
            mono[j] = px[alphas[j, 0]] * py[alphas[j, 1]] * pz[alphas[j, 2]]
        # same table order and association as the numpy np.add.at path,
        # so the compiled sweep is bit-identical to the reference
        for t in range(len(tt_tgt)):
            out[k, tt_src[t]] += (
                parent_local[k, tt_tgt[t]] * mono[tt_shift[t]] * tt_w[t]
            )


def _l2p_kernel(
    pos, cell_start, cell_count, cell_center,
    sink_leaves, row_local,
    alphas, wf, grad_cols,
    pmax, ncoef, nloc,
    want_potential, s0,
    acc, pot,
):  # pragma: no cover - covered via run_l2p_kernel in the hybrid tests
    nrows = len(sink_leaves)
    for row in prange(nrows):
        leaf = sink_leaves[row]
        a0 = cell_start[leaf]
        m = cell_count[leaf]
        cx = cell_center[leaf, 0]
        cy = cell_center[leaf, 1]
        cz = cell_center[leaf, 2]
        px = np.empty(pmax + 1, dtype=np.float64)
        py = np.empty(pmax + 1, dtype=np.float64)
        pz = np.empty(pmax + 1, dtype=np.float64)
        mono = np.empty(nloc, dtype=np.float64)
        for i in range(m):
            sx = pos[a0 + i, 0] - cx
            sy = pos[a0 + i, 1] - cy
            sz = pos[a0 + i, 2] - cz
            px[0] = 1.0
            py[0] = 1.0
            pz[0] = 1.0
            for q in range(1, pmax + 1):
                px[q] = px[q - 1] * sx
                py[q] = py[q - 1] * sy
                pz[q] = pz[q - 1] * sz
            for j in range(nloc):
                mono[j] = px[alphas[j, 0]] * py[alphas[j, 1]] * pz[alphas[j, 2]]
            ax = 0.0
            ay = 0.0
            az = 0.0
            ph = 0.0
            for j in range(ncoef):
                b = mono[j] * wf[j]
                ax += b * row_local[row, grad_cols[0, j]]
                ay += b * row_local[row, grad_cols[1, j]]
                az += b * row_local[row, grad_cols[2, j]]
            if want_potential:
                for j in range(nloc):
                    ph += mono[j] * wf[j] * row_local[row, j]
            out = a0 + i - s0
            acc[out, 0] += ax
            acc[out, 1] += ay
            acc[out, 2] += az
            if want_potential:
                pot[out] += ph


_JITTED_AUX: dict[str, object] = {}
_AUX_BODIES = {"m2l": _m2l_kernel, "l2l": _l2l_kernel, "l2p": _l2p_kernel}


def _get_aux_kernel(name: str):
    """Jitted (or interpreted, under REPRO_FORCE_PYKERNEL) aux kernel."""
    if NUMBA_AVAILABLE:
        fn = _JITTED_AUX.get(name)
        if fn is None:
            fn = numba.njit(parallel=True, fastmath=False, cache=True)(
                _AUX_BODIES[name]
            )
            _JITTED_AUX[name] = fn
        return fn
    if _py_kernel_forced():
        return _AUX_BODIES[name]
    return None


def run_m2l_kernel(tree, moms, inter, kernel, tables, locs) -> bool:
    """Accumulate per-sink-cell locals through the compiled M2L kernel.

    Builds its own radial spec at the M2L order ``tables.P`` (two above
    the force kernel's chain, so it cannot share treeforce's spec).
    Returns False (leaving ``locs`` untouched) when no kernel is
    available so the caller can fall back to the numpy path.
    """
    fn = _get_aux_kernel("m2l")
    if fn is None:
        return False
    radial_spec = _radial_spec(kernel, tables.P)
    if radial_spec is None:
        return False
    (kern_kind, kern_eps, kern_alpha, kern_use_erf,
     ke_pow, ke_coef, ke_ptr, kg_pow, kg_coef, kg_ptr) = radial_spec
    pmax = tables.P
    nhi = n_coeffs(pmax)
    plan_tgt, plan_axis, plan_idx1, plan_idx2, plan_fac, orders = _plan_arrays(
        pmax
    )
    wm = np.ascontiguousarray(moms.moments[:, :nhi]) * tables.wsrc
    fn(
        _f8(tree.cell_center), _f8(inter.offsets),
        _i8(inter.m2l_cells), _i8(inter.m2l_indptr),
        _i8(inter.m2l_src), _i8(inter.m2l_off),
        wm, _i8(tables.acol), _i8(tables.ccol), _i8(tables.biptr),
        plan_tgt, plan_axis, plan_idx1, plan_idx2, plan_fac, orders,
        pmax, nhi, tables.nloc,
        kern_kind, kern_eps, kern_alpha, kern_use_erf,
        ke_pow, ke_coef, ke_ptr, kg_pow, kg_coef, kg_ptr,
        locs,
    )
    return True


@functools.lru_cache(maxsize=8)
def _l2l_table_arrays(p_loc: int):
    mis = multi_index_set(p_loc)
    tgt, srcb, shift, _binom = mis.translation_table
    return (
        _i8(tgt), _i8(srcb), _i8(shift),
        _f8(1.0 / mis.factorial[shift]),
        _i8(mis.alphas),
        len(mis),
    )


def run_l2l_kernel(parent_local, d, p_loc: int) -> np.ndarray | None:
    """One level of L2L translations; None when no kernel is available."""
    fn = _get_aux_kernel("l2l")
    if fn is None:
        return None
    tgt, srcb, shift, w, alphas, nloc = _l2l_table_arrays(p_loc)
    out = np.zeros_like(parent_local)
    fn(_f8(parent_local), _f8(d), tgt, srcb, shift, w, alphas, p_loc, nloc, out)
    return out


def run_l2p_kernel(
    tree, inter, row_local, p: int, want_potential: bool, s0: int, acc, pot
) -> bool:
    """Evaluate leaf locals at the sink particles through the kernel."""
    fn = _get_aux_kernel("l2p")
    if fn is None:
        return False
    from .localexp import l2p_gradient_columns

    mis_hi = multi_index_set(p + 2)
    fn(
        _f8(tree.pos),
        _i8(tree.cell_start), _i8(tree.cell_count), _f8(tree.cell_center),
        _i8(inter.sink_leaves), _f8(row_local),
        _i8(mis_hi.alphas), _f8(1.0 / mis_hi.factorial),
        _i8(l2p_gradient_columns(p)),
        p + 2, n_coeffs(p + 1), len(mis_hi),
        want_potential, s0,
        acc, pot if pot is not None else _EMPTY_F8,
    )
    return True
