"""Particle-mesh and TreePM gravity — the GADGET-2-style comparator.

Figure 7 of the paper compares 2HOT against GADGET-2, a hybrid TreePM
code, and attributes a ~1% power deficit at k ~ 1 h/Mpc to GADGET-2's
tree <-> particle-mesh transition region.  To regenerate that
comparison this module implements the same force split:

    1/r = erf(r / 2 r_s)/r  +  erfc(r / 2 r_s)/r
           [ mesh (PM) ]         [ short-range tree ]

* :class:`ParticleMesh` solves the long-range part on a grid: CIC
  deposit, FFT, Green's function -4 pi / k^2 damped by the Gaussian
  split exp(-k^2 r_s^2) and deconvolved for the CIC window, spectral
  gradient, CIC interpolation back to the particles.
* :class:`TreePMGravity` adds the short-range part with the treecode
  machinery using the :class:`~repro.multipoles.radial.ErfcKernel` for
  cell interactions and an erfc-filtered pairwise force (GADGET-2's
  shortrange_table) for particle-particle interactions, truncated at
  ``rcut`` times the split scale.

The transition-region force error — the artifact Fig. 7 shows — comes
out of this construction for free; tests measure it against the pure
treecode + Ewald reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import special

from ..instrument import get_tracer
from ..multipoles.radial import ErfcKernel
from ..tree import build_tree, compute_moments, traverse_lists
from .smoothing import SofteningKernel, make_softening
from .treeforce import ForceResult, evaluate_forces

__all__ = ["ParticleMesh", "TreePMConfig", "TreePMGravity", "ShortRangeSoftening"]


class ParticleMesh:
    """FFT Poisson solver on a cubic mesh with CIC deposit/interpolation."""

    def __init__(self, ngrid: int, box: float = 1.0, r_split: float | None = None):
        self.ngrid = int(ngrid)
        self.box = float(box)
        #: Gaussian split scale; None means a plain PM solver (full 1/r)
        self.r_split = r_split
        n = self.ngrid
        kx = np.fft.fftfreq(n, d=self.box / n) * 2.0 * np.pi
        kz = np.fft.rfftfreq(n, d=self.box / n) * 2.0 * np.pi
        self._k = (kx[:, None, None], kx[None, :, None], kz[None, None, :])
        self._k2 = self._k[0] ** 2 + self._k[1] ** 2 + self._k[2] ** 2
        self._k2[0, 0, 0] = 1.0  # avoid div by zero; the DC mode is zeroed
        # CIC deconvolution: the deposit and the interpolation each
        # convolve with the CIC window, so divide twice
        def sinc(kk):
            return np.sinc(kk * self.box / (2.0 * np.pi * n))

        w = sinc(self._k[0]) * sinc(self._k[1]) * sinc(self._k[2])
        self._cic_w2 = w**2

    def deposit(self, pos: np.ndarray, mass: np.ndarray) -> np.ndarray:
        """CIC mass deposit onto the mesh (periodic)."""
        n = self.ngrid
        x = np.asarray(pos, dtype=np.float64) / self.box * n
        i0 = np.floor(x - 0.5).astype(np.int64)  # cell centers at (i+0.5)
        f = x - 0.5 - i0
        rho = np.zeros((n, n, n), dtype=np.float64)
        m = np.asarray(mass, dtype=np.float64)
        for dx in (0, 1):
            wx = (1.0 - f[:, 0]) if dx == 0 else f[:, 0]
            ix = (i0[:, 0] + dx) % n
            for dy in (0, 1):
                wy = (1.0 - f[:, 1]) if dy == 0 else f[:, 1]
                iy = (i0[:, 1] + dy) % n
                for dz in (0, 1):
                    wz = (1.0 - f[:, 2]) if dz == 0 else f[:, 2]
                    iz = (i0[:, 2] + dz) % n
                    np.add.at(rho, (ix, iy, iz), m * wx * wy * wz)
        return rho

    def interpolate(self, grid: np.ndarray, pos: np.ndarray) -> np.ndarray:
        """CIC interpolation of a mesh field to particle positions."""
        n = self.ngrid
        x = np.asarray(pos, dtype=np.float64) / self.box * n
        i0 = np.floor(x - 0.5).astype(np.int64)
        f = x - 0.5 - i0
        out = np.zeros(len(x), dtype=np.float64)
        for dx in (0, 1):
            wx = (1.0 - f[:, 0]) if dx == 0 else f[:, 0]
            ix = (i0[:, 0] + dx) % n
            for dy in (0, 1):
                wy = (1.0 - f[:, 1]) if dy == 0 else f[:, 1]
                iy = (i0[:, 1] + dy) % n
                for dz in (0, 1):
                    wz = (1.0 - f[:, 2]) if dz == 0 else f[:, 2]
                    iz = (i0[:, 2] + dz) % n
                    out += grid[ix, iy, iz] * wx * wy * wz
        return out

    def accelerations(
        self, pos: np.ndarray, mass: np.ndarray, G: float = 1.0,
        want_potential: bool = False,
    ):
        """Long-range (or full, if r_split is None) PM accelerations.

        The DC (k=0) mode is removed — the mesh force is intrinsically
        background-subtracted, which is why Fourier codes get §2.2.1's
        subtraction "automatically".
        """
        # With mass deposited per cell, the continuum Fourier density is
        # simply rho(k) ~ sum_j m_j exp(-i k x_j) = FFT of the mass grid,
        # so phi(k) = -4 pi G rho(k) / k^2 with no extra volume factors;
        # real space then needs the (n^3 / V) inverse-transform scale.
        mgrid = self.deposit(pos, mass)
        mk = np.fft.rfftn(mgrid)
        phik = -4.0 * np.pi * G * mk / self._k2
        if self.r_split is not None:
            phik = phik * np.exp(-self._k2 * self.r_split**2)
        phik = phik / self._cic_w2
        phik[0, 0, 0] = 0.0  # DC mode: automatic background subtraction
        scale = self.ngrid**3 / self.box**3
        acc = np.empty((len(pos), 3), dtype=np.float64)
        for ax in range(3):
            gk = 1j * self._k[ax] * phik
            g = np.fft.irfftn(gk, s=(self.ngrid,) * 3, axes=(0, 1, 2)) * scale
            acc[:, ax] = -self.interpolate(g, pos)  # acc = -grad(phi)
        if want_potential:
            phi = np.fft.irfftn(phik, s=(self.ngrid,) * 3, axes=(0, 1, 2)) * scale
            # library convention: pot is the positive sum(m/r) kernel
            pot = -self.interpolate(phi, pos)
            return acc, pot
        return acc


class ShortRangeSoftening(SofteningKernel):
    """Softened pairwise force times GADGET-2's short-range filter.

    F(r) = F_soft(r) * [erfc(u) + (2u/sqrt(pi)) exp(-u^2)], u = r/(2 r_s)
    psi(r) = psi_soft(r) * erfc(u)
    """

    def __init__(self, base: SofteningKernel, r_split: float):
        self.base = base
        self.r_split = float(r_split)
        self.eps = base.eps

    def force_factor(self, r):
        r = np.asarray(r, dtype=np.float64)
        u = r / (2.0 * self.r_split)
        filt = special.erfc(u) + 2.0 * u / math.sqrt(math.pi) * np.exp(-u * u)
        return self.base.force_factor(r) * filt

    def potential(self, r):
        r = np.asarray(r, dtype=np.float64)
        u = r / (2.0 * self.r_split)
        return self.base.potential(r) * special.erfc(u)


@dataclass
class TreePMConfig:
    """Knobs of the TreePM force split (GADGET-2-flavoured defaults)."""

    ngrid: int = 64
    #: split scale in units of the mesh cell (GADGET-2 ASMTH = 1.25)
    asmth: float = 1.25
    #: short-range cutoff in units of r_split (GADGET-2 RCUT = 4.5)
    rcut: float = 4.5
    p: int = 4
    errtol: float = 1e-5
    nleaf: int = 16
    softening: str = "spline"
    eps: float = 0.01
    #: dual-tree walk flavour for the short-range half ("hierarchical"
    #: or "leaf"; see :class:`~repro.gravity.solver.TreecodeConfig`)
    traversal: str = "hierarchical"
    #: force-evaluation backend for the short-range tree half
    #: ("numpy" | "compiled" | "auto"; see TreecodeConfig.backend)
    backend: str = "auto"
    G: float = 1.0
    #: worker processes for the short-range tree half (0 = serial)
    workers: int = 0
    #: fail fast on non-finite accelerations/potentials (health guard)
    check_finite: bool = False


class TreePMGravity:
    """Hybrid tree + particle-mesh force, the paper's comparator class."""

    def __init__(self, config: TreePMConfig | None = None):
        self.config = config or TreePMConfig()
        self.last_stats: dict = {}
        self.last_tree = None
        self._executor = None

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial configurations)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def compute(
        self, pos: np.ndarray, mass: np.ndarray, box: float = 1.0, tracer=None
    ) -> ForceResult:
        cfg = self.config
        tr = tracer if tracer is not None else get_tracer()
        r_split = cfg.asmth * box / cfg.ngrid
        with tr.span("force") as sp_force:
            with tr.span("pm") as sp_pm:
                pm = ParticleMesh(cfg.ngrid, box, r_split=r_split)
                acc_long, pot_long = pm.accelerations(
                    pos, mass, G=cfg.G, want_potential=True
                )
            with tr.span("build") as sp_build:
                tree = build_tree(pos, mass, box=box, nleaf=cfg.nleaf)
            with tr.span("moments") as sp_moments:
                moms = compute_moments(tree, p=cfg.p, tol=cfg.errtol)
            base = make_softening(cfg.softening, cfg.eps)
            sr = ShortRangeSoftening(base, r_split)
            inter = None
            if cfg.workers:
                from ..parallel.executor import ensure_executor

                self._executor = ensure_executor(self._executor, cfg.workers)
                with tr.span("execute") as sp_execute:
                    res = self._executor.compute(
                        tree,
                        moms,
                        periodic=True,
                        ws=1,
                        softening=sr,
                        G=cfg.G,
                        kernel=ErfcKernel(1.0 / (2.0 * r_split)),
                        rcut=cfg.rcut * r_split,
                        check_finite=cfg.check_finite,
                        traversal=cfg.traversal,
                        backend=cfg.backend,
                        tracer=tr,
                    )
            else:
                with tr.span("traverse") as sp_traverse:
                    inter = traverse_lists(
                        tree, moms, traversal=cfg.traversal, periodic=True, ws=1
                    )
                    inter = _prune_far(tree, moms, inter, cfg.rcut * r_split)
                with tr.span("evaluate") as sp_evaluate:
                    res = evaluate_forces(
                        tree,
                        moms,
                        inter,
                        softening=sr,
                        G=cfg.G,
                        kernel=ErfcKernel(1.0 / (2.0 * r_split)),
                        backend=cfg.backend,
                    )
            res.acc += acc_long
            if res.pot is not None:
                res.pot += pot_long
        res.stats["r_split"] = r_split
        if inter is not None:
            res.stats["interactions_per_particle"] = (
                inter.interactions_per_particle(tree)
            )
        else:
            # sharded path: workers report the traversal-level count, the
            # same accounting as inter.interactions_per_particle above
            res.stats["interactions_per_particle"] = res.stats.get(
                "traversal_interactions", 0
            ) / max(tree.n_particles, 1)
        res.stats["errtol"] = cfg.errtol
        if cfg.check_finite:
            from .solver import raise_if_nonfinite

            raise_if_nonfinite(res, "treepm")
        self.last_tree = tree
        if tr.enabled:
            from ..instrument.crosscheck import flops_from_stats

            res.stats["stage_seconds"] = {
                "pm": sp_pm.seconds,
                "build": sp_build.seconds,
                "moments": sp_moments.seconds,
            }
            if inter is not None:
                res.stats["stage_seconds"]["traverse"] = sp_traverse.seconds
                res.stats["stage_seconds"]["evaluate"] = sp_evaluate.seconds
            else:
                res.stats["stage_seconds"]["execute"] = sp_execute.seconds
            res.stats["force_seconds"] = sp_force.seconds
            res.stats["flops"] = flops_from_stats(res.stats)
            tr.count("force.calls")
            tr.count(
                f"evaluate.backend.{res.stats.get('backend', 'numpy')}"
            )
            tr.count(
                "force.interactions",
                res.stats.get("cell_interactions", 0)
                + res.stats.get("pp_interactions", 0),
            )
            tr.count("force.flops", res.stats["flops"])
        self.last_stats = res.stats
        return res


def _prune_far(tree, moms, inter, rcut):
    """Drop interactions entirely beyond the short-range cutoff.

    CSR lists keep their grouping: the row pointers are rebuilt from
    the kept-entry mask, so the segment-reduce evaluator still sees a
    valid per-sink-leaf layout.
    """
    import dataclasses

    from ..tree.traversal import filter_csr_indptr

    def keep(sink, src, off):
        if len(sink) == 0:
            return np.zeros(0, dtype=bool)
        d = tree.cell_center[sink] - (tree.cell_center[src] + inter.offsets[off])
        dist = np.sqrt(np.einsum("ij,ij->i", d, d))
        return dist - moms.bmax[sink] - moms.bmax[src] < rcut

    kc = keep(inter.cell_sink, inter.cell_src, inter.cell_off)
    kl = keep(inter.leaf_sink, inter.leaf_src, inter.leaf_off)
    csr = {}
    if inter.cell_indptr is not None:
        csr["cell_indptr"] = filter_csr_indptr(inter.cell_indptr, kc)
        csr["leaf_indptr"] = filter_csr_indptr(inter.leaf_indptr, kl)
    if inter.m2l_cells is not None and inter.m2l_src is not None:
        m2l_sink = np.repeat(inter.m2l_cells, np.diff(inter.m2l_indptr))
        km = keep(m2l_sink, inter.m2l_src, inter.m2l_off)
        csr["m2l_src"] = inter.m2l_src[km]
        csr["m2l_off"] = inter.m2l_off[km]
        csr["m2l_indptr"] = filter_csr_indptr(inter.m2l_indptr, km)
    return dataclasses.replace(
        inter,
        cell_sink=inter.cell_sink[kc],
        cell_src=inter.cell_src[kc],
        cell_off=inter.cell_off[kc],
        leaf_sink=inter.leaf_sink[kl],
        leaf_src=inter.leaf_src[kl],
        leaf_off=inter.leaf_off[kl],
        **csr,
    )
