"""Sink-side local expansions for the fmm-hybrid far field (M2L/L2L/L2P).

The ``traversal="fmm-hybrid"`` walk emits mutual (sink cell, source
cell, image offset) accepts as a CSR family keyed by sink cell
(:class:`repro.tree.traversal.InteractionLists` ``m2l_*``).  This
module turns those pairs into per-particle accelerations in three
deterministic stages:

* **M2L** — each accepted source multipole is translated into a Taylor
  local expansion about the sink cell's center.  The expansion is
  *triangular* at total order ``P = p + 2`` (the moment pass stores
  source moments through exactly that order): a local coefficient
  L_beta sums source moments M_alpha with ``|alpha| + |beta| <= P``,
  i.e. the source order shrinks as the local order grows.  The force
  only reads ``L_{gamma+e_i}`` with ``|gamma| <= P - 1``, so the
  force-relevant domain ``|alpha| + |gamma| <= P - 1`` is symmetric
  under swapping the roles of the two cells — with the mutual accept
  emitting both directions of every pair (and the derivative tensors
  obeying D(-d) = (-1)^|d| D(d) exactly in floating point), the
  pairwise forces cancel analytically and total momentum is conserved
  to the rounding floor (Dehnen astro-ph/0003209).  Running two orders
  above the one-sided cell family also absorbs the sink-side Taylor
  truncation the cell family does not have, keeping the realized error
  inside the same errtol budget.

* **L2L** — locals are swept down the tree to the leaves by exact
  polynomial recentering (no additional truncation, so the momentum
  property survives the sweep); cells outside any accepted subtree are
  skipped.

* **L2P** — at each sink leaf the local polynomial and its gradient
  are evaluated at the particle positions.

The numpy M2L batches pairs by *displacement class*: tree cubes are
dyadic subdivisions of the box, so sink-center - source-center - image
offsets repeat massively (hundreds of pairs share one exact vector),
and each class needs one derivative tensor and one dense
(n_local x n_source) translation matrix driven through BLAS.

All three stages are bit-deterministic: each sink cell's local sums
accumulate in an order intrinsic to its own interaction segment
(ascending displacement-class key — never batch or shard layout), and
a shard-restricted walk reproduces exactly the per-cell M2L segments
and ancestor chains of the full walk, so workers > 1 stays
bit-identical to serial.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from ..multipoles import multi_index_set
from ..multipoles.codegen import compiled_dtensor_function
from ..multipoles.multiindex import n_coeffs
from ..util import expand_ranges

__all__ = [
    "accumulate_m2l",
    "sweep_l2l",
    "local_expansions",
    "l2p_accumulate",
]


@dataclass(frozen=True)
class M2LTables:
    """Flat triangular M2L gather tables at force order ``p``.

    Local coefficients live on the order-``P = p + 2`` multi-index set
    (``nloc`` of them) — the full stored moment order.  For local index
    ``bi`` the admissible source moments are exactly the first
    ``n_coeffs(P - |beta_bi|)`` packed coefficients (the packing is by
    total order), so the flat table is a list of contiguous prefix
    segments: entry ``t`` multiplies weighted source moment ``acol[t]``
    with derivative tensor coefficient ``ccol[t] = index(alpha +
    beta)``, and ``biptr`` delimits each ``bi``'s segment.
    """

    p: int
    P: int
    nloc: int
    acol: np.ndarray  # (T,) source moment column (packed, order <= P)
    ccol: np.ndarray  # (T,) derivative tensor column (order <= P)
    biptr: np.ndarray  # (nloc + 1,)
    wsrc: np.ndarray  # (n_coeffs(P),) (-1)^|alpha| / alpha!
    wloc: np.ndarray  # (nloc,) 1 / beta!


@functools.lru_cache(maxsize=8)
def m2l_tables(p: int) -> M2LTables:
    P = p + 2
    mis = multi_index_set(P)
    nloc = len(mis)
    acol, ccol, biptr = [], [], [0]
    for bi, beta in enumerate(mis.alphas):
        na = n_coeffs(P - int(mis.order[bi]))
        for ai in range(na):
            acol.append(ai)
            s = mis.alphas[ai] + beta
            ccol.append(mis.index[tuple(int(x) for x in s)])
        biptr.append(len(acol))
    return M2LTables(
        p=p,
        P=P,
        nloc=nloc,
        acol=np.array(acol, dtype=np.int64),
        ccol=np.array(ccol, dtype=np.int64),
        biptr=np.array(biptr, dtype=np.int64),
        wsrc=((-1.0) ** mis.order) / mis.factorial,
        wloc=1.0 / mis.factorial,
    )


@functools.lru_cache(maxsize=8)
def m2l_matrix_scatter(p: int) -> np.ndarray:
    """Flat indices placing table entries into the dense (nloc, nhi)
    per-class translation matrix ``T[bi, acol] = D[ccol]``."""
    t = m2l_tables(p)
    nhi = n_coeffs(t.P)
    bi_of_t = np.repeat(np.arange(t.nloc), np.diff(t.biptr))
    return bi_of_t * nhi + t.acol


@functools.lru_cache(maxsize=8)
def l2p_gradient_columns(p: int) -> np.ndarray:
    """(3, n_coeffs(P-1)) indices of beta + e_axis inside mis(P)."""
    P = p + 2
    mis_lo = multi_index_set(P - 1)
    mis_hi = multi_index_set(P)
    cols = np.empty((3, len(mis_lo)), dtype=np.int64)
    for bi, b in enumerate(mis_lo.alphas):
        for ax in range(3):
            up = (
                int(b[0]) + (ax == 0),
                int(b[1]) + (ax == 1),
                int(b[2]) + (ax == 2),
            )
            cols[ax, bi] = mis_hi.index[up]
    return cols


def _displacement_keys(dx: np.ndarray, box: float, max_level: int) -> np.ndarray:
    """Pack displacement vectors into exact integer class keys.

    Cell centers are odd multiples of ``box * 2^-(level+1)`` and image
    offsets are integer multiples of ``box``, so every sink-source
    displacement is an exact integer multiple of the finest half-cell
    ``box * 2^-(max_level+1)``.  Rounding to that grid and packing the
    three signed integers into one int64 gives a key whose ascending
    order is the lexicographic order of the displacement — the
    canonical class order the deterministic accumulation relies on.
    """
    scale = np.exp2(max_level + 1) / box
    q = np.round(dx * scale).astype(np.int64)
    span = np.int64(2) << np.int64(max_level + 3)  # |q| < span/2 with ws images
    return (q[:, 0] * span + q[:, 1]) * span + q[:, 2]


def accumulate_m2l(
    tree,
    moms,
    inter,
    kernel,
    backend: str = "numpy",
) -> np.ndarray:
    """Per-sink-cell local expansions from the accepted M2L pairs.

    Returns an ``(len(inter.m2l_cells), nloc)`` array of local
    coefficients.  Two entries of one sink segment can never share a
    displacement class (same sink + same displacement would be the
    same source cell), so the per-class BLAS products scatter-add into
    distinct rows and each row accumulates exactly once per class, in
    ascending class-key order — a property of the segment's content
    alone, so shard restriction cannot change a single bit.
    """
    p = moms.p
    t = m2l_tables(p)
    cells = inter.m2l_cells
    locs = np.zeros((len(cells), t.nloc))
    if inter.m2l_src is None or len(inter.m2l_src) == 0:
        return locs
    if backend == "compiled":
        from . import kernels

        if kernels.run_m2l_kernel(tree, moms, inter, kernel, t, locs):
            return locs
    nhi = n_coeffs(t.P)
    # fold the (-1)^|alpha|/alpha! weights into the moments once
    wm_all = moms.moments[:, :nhi] * t.wsrc
    dt_fn = compiled_dtensor_function(t.P)
    scatter = m2l_matrix_scatter(p)
    src = inter.m2l_src
    offs = inter.offsets[inter.m2l_off]
    centers = tree.cell_center
    rows = np.repeat(
        np.arange(len(cells)), np.diff(inter.m2l_indptr)
    )
    dx = centers[cells][rows] - (centers[src] + offs)
    keys = _displacement_keys(dx, tree.box, tree.max_level)
    order = np.argsort(keys, kind="stable")
    ks = keys[order]
    starts = np.flatnonzero(np.r_[True, ks[1:] != ks[:-1]])
    bounds = np.append(starts, len(ks))
    dxu = dx[order[starts]]
    r = np.sqrt(np.einsum("ij,ij->i", dxu, dxu))
    g = kernel.radial_derivs(r, t.P)
    D = np.empty((len(starts), nhi))
    dt_fn(dxu[:, 0], dxu[:, 1], dxu[:, 2], g, D)
    # the triangular table splits into two dense BLAS blocks: low local
    # orders (|beta| <= 2) read the full moment width, the rest only the
    # order-<=3 prefix — 3x fewer flops than one dense (nloc, nhi)
    # product.  Every product runs through a fixed-shape zero-padded
    # (TILE, nhi) buffer: BLAS accumulation order depends on the matrix
    # shape, so fixed tiles make each entry's contribution bitwise a
    # function of its own moment row and the class matrix alone —
    # independent of how many other entries share the class (the
    # serial-vs-sharded bit-identity contract).
    n_low = n_coeffs(2)
    n_cut = n_coeffs(t.P - 3)
    tmat = np.zeros((t.nloc, nhi))
    tflat = tmat.reshape(-1)
    TILE = 256
    buf = np.zeros((TILE, nhi))
    for c in range(len(starts)):
        sl = order[starts[c]: bounds[c + 1]]
        tflat[scatter] = D[c, t.ccol]
        for s in range(0, len(sl), TILE):
            se = sl[s: s + TILE]
            m = len(se)
            buf[:m] = wm_all[src[se]]
            buf[m:] = 0.0
            rc = rows[se]
            locs[rc, :n_low] += (buf @ tmat[:n_low].T)[:m]
            locs[rc, n_low:] += (
                buf[:, :n_cut] @ tmat[n_low:, :n_cut].T
            )[:m]
        tflat[scatter] = 0.0
    return locs


def sweep_l2l(tree, cells, locs, backend: str = "numpy") -> np.ndarray:
    """Translate locals down the tree (dense over all cells).

    Scatters the per-cell M2L sums into a dense ``(n_cells, nloc)``
    array and pushes each touched cell's expansion onto its non-ghost
    children level by level; untouched subtrees are skipped.  Each cell
    receives its own M2L scatter first and exactly one parent
    translation, so the result is independent of sharding for every
    cell on a shard's ancestor chains.
    """
    nloc = locs.shape[1]
    n_all = len(tree.cell_level)  # worker trees drop cell_key
    loc_all = np.zeros((n_all, nloc))
    if len(locs) == 0:
        return loc_all
    loc_all[cells] = locs
    has = np.zeros(n_all, dtype=bool)
    has[cells] = True
    p_loc = None
    for p_try in range(1, 16):
        if n_coeffs(p_try) == nloc:
            p_loc = p_try
            break
    mis = multi_index_set(p_loc)
    tgt, srcb, shift, _binom = mis.translation_table
    weights = 1.0 / mis.factorial[shift]
    run_l2l = None
    if backend == "compiled":
        from . import kernels

        run_l2l = kernels.run_l2l_kernel
    for level in range(0, tree.max_level):
        cl = tree.cells_at_level(level)
        act = cl[(tree.cell_first_child[cl] >= 0) & has[cl]]
        if len(act) == 0:
            continue
        nch = tree.cell_nchildren[act]
        kids = expand_ranges(tree.cell_first_child[act], nch)
        par = np.repeat(act, nch)
        real = ~tree.cell_is_ghost[kids]
        kids = kids[real]
        par = par[real]
        if len(kids) == 0:
            continue
        d = tree.cell_center[kids] - tree.cell_center[par]
        parent_local = loc_all[par]
        out = None
        if run_l2l is not None:
            out = run_l2l(parent_local, d, p_loc)
        if out is None:
            mono = mis.powers(d)
            out = np.zeros_like(parent_local)
            contrib = parent_local[:, tgt] * mono[:, shift] * weights
            np.add.at(out.T, srcb, contrib.T)
        loc_all[kids] += out
        has[kids] = True
    return loc_all


def local_expansions(
    tree,
    moms,
    inter,
    kernel,
    backend: str = "numpy",
) -> np.ndarray:
    """M2L accumulation + L2L sweep: dense per-cell local expansions."""
    locs = accumulate_m2l(tree, moms, inter, kernel, backend=backend)
    return sweep_l2l(tree, inter.m2l_cells, locs, backend=backend)


def l2p_accumulate(
    tree,
    inter,
    loc_all,
    p: int,
    *,
    want_potential: bool,
    pid,
    row_of_p,
    s0: int,
    acc,
    pot,
    backend: str = "numpy",
    chunk: int = 65536,
) -> None:
    """Evaluate the leaf local expansions at the sink particles.

    Adds ``acc_i += sum_beta (x - z)^beta / beta! * L_{beta+e_i}`` (and
    the matching potential) into the evaluator's output arrays; ``pid``
    / ``row_of_p`` / ``s0`` are the evaluator's particle bookkeeping.
    Per-particle sums are closed-form reductions, so chunking cannot
    change the result.
    """
    sinks = inter.sink_leaves
    P = p + 2
    mis_hi = multi_index_set(P)
    row_local = loc_all[sinks]
    if backend == "compiled":
        from . import kernels

        if kernels.run_l2p_kernel(
            tree, inter, row_local, p, want_potential, s0, acc, pot
        ):
            return
    cols = l2p_gradient_columns(p)
    wf = 1.0 / mis_hi.factorial
    ncoef = n_coeffs(P - 1)
    centers = tree.cell_center[sinks]
    for a in range(0, len(pid), chunk):
        b = min(a + chunk, len(pid))
        rw = row_of_p[a:b]
        s = tree.pos[pid[a:b]] - centers[rw]
        mono = mis_hi.powers(s)
        lp = row_local[rw]
        base = mono[:, :ncoef] * wf[:ncoef]
        out = pid[a:b] - s0
        for ax in range(3):
            acc[out, ax] += np.einsum("ij,ij->i", base, lp[:, cols[ax]])
        if want_potential:
            pot[out] += np.einsum("ij,ij->i", mono * wf, lp)
