"""High-level treecode gravity solver — the 2HOT force engine.

Ties the pieces together: tree build (+ghosts), upward moment pass
(+background subtraction), MAC traversal (+periodic images) and
blocked force evaluation.  This is the object the simulation driver
and the benchmarks talk to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..instrument import get_tracer
from ..tree import (
    InteractionLists,
    Tree,
    TreeMoments,
    build_tree,
    compute_moments,
    traverse_lists,
)
from .periodic import PeriodicLocalExpansion
from .smoothing import SofteningKernel, make_softening
from .treeforce import ForceResult, evaluate_forces

__all__ = ["TreecodeConfig", "TreecodeGravity", "raise_if_nonfinite"]


def raise_if_nonfinite(result: ForceResult, label: str) -> None:
    """Fail fast on non-finite solver output (the solver-level guard).

    Raises :class:`FloatingPointError` naming the arrays (and, for
    sharded runs, the worker shards via ``stats["health"]``) so the
    corruption is attributed at the source instead of surfacing steps
    later as an exploded integration.
    """
    bad = []
    if not np.isfinite(result.acc).all():
        bad.append(f"acc: {int(np.count_nonzero(~np.isfinite(result.acc)))} non-finite")
    if result.pot is not None and not np.isfinite(result.pot).all():
        bad.append(f"pot: {int(np.count_nonzero(~np.isfinite(result.pot)))} non-finite")
    shards = result.stats.get("health", {}).get("bad_shards")
    if shards:
        bad.append(f"worker shards: {shards}")
    if bad:
        raise FloatingPointError(f"{label}: non-finite force output ({'; '.join(bad)})")


@dataclass
class TreecodeConfig:
    """Knobs of the treecode force calculation.

    Defaults mirror the paper's production settings scaled to library
    use: order-4 (hexadecapole) expansions, absolute error tolerance
    ("errtol") 1e-5, background subtraction on, Dehnen K1 smoothing.
    """

    p: int = 4
    errtol: float = 1e-5
    nleaf: int = 16
    background: bool = True
    periodic: bool = False
    ws: int = 1
    #: include the |n| > ws lattice local-expansion correction (§2.4);
    #: requires background subtraction (the lattice sums assume the
    #: neutralized delta-rho problem, i.e. Ewald boundary conditions)
    lattice_correction: bool = True
    p_lattice: int = 8
    #: multipole acceptance criterion: "moment" (estimate; sees the
    #: background-subtraction cancellation) or "absolute" (rigorous bound)
    mac: str = "moment"
    #: dual-tree walk flavour: "hierarchical" (sink-cell frontier with
    #: inherited accepts and CSR segment-reduce evaluation),
    #: "fmm-hybrid" (the same walk with mutual cell-cell accepts into
    #: sink-side local expansions — Dehnen-style O(N) far field with
    #: exact momentum conservation) or "leaf" (the original
    #: per-sink-leaf walk, kept for A/B receipts)
    traversal: str = "hierarchical"
    #: fmm-hybrid dual-MAC knob: a cell pair is mutually accepted when
    #: b_max(a) + b_max(b) < cc_xmax * dist AND both sides pass the
    #: one-sided MAC.  Separate from ``xmax`` so the §2.2.2
    #: error-correlation tradeoff is measurable: smaller = tighter
    #: local expansions (less correlated error, more pp work)
    cc_xmax: float = 0.5
    #: force-evaluation backend: "numpy" (vectorized reference),
    #: "compiled" (numba m x n-blocked CSR kernel) or "auto"
    #: (``REPRO_FORCE_BACKEND`` env, else compiled-when-available)
    backend: str = "auto"
    softening: str = "dehnen_k1"
    eps: float = 0.01
    G: float = 1.0
    dtype: type = np.float64
    want_potential: bool = True
    #: worker processes for the traverse+evaluate stages; 0 = in-process
    #: serial.  ``workers=1`` runs one pool worker over a single shard
    #: and is bit-identical to serial; ``workers>1`` shards the sink
    #: leaves (see :class:`repro.parallel.executor.ForceExecutor`).
    workers: int = 0
    #: fail fast on non-finite accelerations/potentials (health guard);
    #: sharded runs report which worker shard produced them
    check_finite: bool = False


class TreecodeGravity:
    """One-shot or reusable treecode force evaluations.

    Example
    -------
    >>> solver = TreecodeGravity(TreecodeConfig(errtol=1e-6))
    >>> result = solver.compute(pos, mass, box=1.0)
    >>> result.acc.shape
    (N, 3)
    """

    def __init__(self, config: TreecodeConfig | None = None):
        self.config = config or TreecodeConfig()
        self.last_tree: Tree | None = None
        self.last_moments: TreeMoments | None = None
        self.last_interactions: InteractionLists | None = None
        self._executor = None
        #: lattice sums depend only on geometry/order, not on the
        #: particles — cache the expansion across compute() calls
        self._ple_cache: dict[tuple, PeriodicLocalExpansion] = {}

    def _softening(self) -> SofteningKernel:
        return make_softening(self.config.softening, self.config.eps)

    def _lattice_expansion(self, box: float) -> PeriodicLocalExpansion:
        cfg = self.config
        key = (cfg.p + 2, cfg.p_lattice, cfg.ws, box)
        ple = self._ple_cache.get(key)
        if ple is None:
            ple = self._ple_cache[key] = PeriodicLocalExpansion(
                p_source=key[0], p_local=key[1], ws=key[2], box=key[3]
            )
        return ple

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial configurations)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def compute(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        box: float = 1.0,
        mean_density: float | None = None,
        tracer=None,
    ) -> ForceResult:
        """Build the tree and evaluate accelerations (and potentials).

        ``mean_density`` defaults to total mass / box^3, which is the
        right background for a periodic cosmological volume.  With a
        real tracer (passed here or installed via ``set_tracer``) the
        per-stage wall times — build / moments / traverse / evaluate /
        lattice, Table 2's rows — land in ``result.stats`` under
        ``stage_seconds`` alongside a ``flops`` count from the honest
        per-interaction accounting.
        """
        cfg = self.config
        tr = tracer if tracer is not None else get_tracer()
        if mean_density is None:
            mean_density = float(np.sum(mass)) / box**3
        with tr.span("force") as sp_force:
            with tr.span("build") as sp_build:
                tree = build_tree(
                    pos, mass, box=box, nleaf=cfg.nleaf, with_ghosts=cfg.background
                )
            with tr.span("moments") as sp_moments:
                moms = compute_moments(
                    tree,
                    p=cfg.p,
                    tol=cfg.errtol,
                    background=cfg.background,
                    mean_density=mean_density if cfg.background else None,
                    mac=cfg.mac,
                )
            inter = None
            if cfg.workers:
                from ..parallel.executor import ensure_executor

                self._executor = ensure_executor(self._executor, cfg.workers)
                with tr.span("execute") as sp_execute:
                    result = self._executor.compute(
                        tree,
                        moms,
                        periodic=cfg.periodic,
                        ws=cfg.ws,
                        softening=self._softening(),
                        G=cfg.G,
                        dtype=cfg.dtype,
                        want_potential=cfg.want_potential,
                        check_finite=cfg.check_finite,
                        traversal=cfg.traversal,
                        cc_xmax=cfg.cc_xmax,
                        backend=cfg.backend,
                        tracer=tr,
                    )
            else:
                with tr.span("traverse") as sp_traverse:
                    inter = traverse_lists(
                        tree,
                        moms,
                        traversal=cfg.traversal,
                        periodic=cfg.periodic,
                        ws=cfg.ws,
                        cc_xmax=cfg.cc_xmax,
                    )
                with tr.span("evaluate") as sp_evaluate:
                    result = evaluate_forces(
                        tree,
                        moms,
                        inter,
                        softening=self._softening(),
                        G=cfg.G,
                        dtype=cfg.dtype,
                        want_potential=cfg.want_potential,
                        backend=cfg.backend,
                    )
            lattice_s = 0.0
            if cfg.periodic and cfg.lattice_correction and cfg.background:
                with tr.span("lattice") as sp_lattice:
                    root = int(np.flatnonzero(tree.cell_level == 0)[0])
                    ple = self._lattice_expansion(box)
                    pot_far, acc_far = ple.field(moms.moments[root], pos)
                    result.acc += cfg.G * acc_far.astype(result.acc.dtype)
                    if result.pot is not None:
                        result.pot += cfg.G * pot_far.astype(result.pot.dtype)
                lattice_s = sp_lattice.seconds
        if inter is not None:
            result.stats["interactions_per_particle"] = (
                inter.interactions_per_particle(tree)
            )
            result.stats["traversal_rounds"] = inter.rounds
            result.stats["mac_tests"] = inter.mac_tests
            result.stats["frontier_peak"] = inter.frontier_peak
            result.stats["interactions_by_family"] = {
                "cell": inter.n_cell_interactions(tree),
                "pp": inter.n_pp_interactions(tree),
                "ghost": inter.n_prism_interactions(tree),
                "m2l": inter.n_m2l_interactions(tree),
            }
            if tr.enabled:
                tr.count("traverse.mac_tests", inter.mac_tests)
                tr.count("traverse.accepts_inherited", inter.inherited_accepts)
                tr.count("traverse.accepts_leaf", inter.leaf_accepts)
                tr.count("traverse.frontier_peak", inter.frontier_peak)
        else:
            # sharded path: workers report the traversal-level count, the
            # same accounting as inter.interactions_per_particle above
            result.stats["interactions_per_particle"] = result.stats.get(
                "traversal_interactions", 0
            ) / max(tree.n_particles, 1)
        result.stats["n_cells"] = tree.n_cells
        result.stats["errtol"] = cfg.errtol
        result.stats["mac"] = cfg.mac
        result.stats["traversal"] = cfg.traversal
        if cfg.check_finite:
            raise_if_nonfinite(result, "treecode")
        if tr.enabled:
            from ..instrument.crosscheck import flops_from_stats

            stage = {
                "build": sp_build.seconds,
                "moments": sp_moments.seconds,
                "lattice": lattice_s,
            }
            if inter is not None:
                stage["traverse"] = sp_traverse.seconds
                stage["evaluate"] = sp_evaluate.seconds
            else:
                # sharded path: 'execute' is the pool wall-clock; the
                # summed per-worker traverse/evaluate seconds live in
                # stats["executor"] and the merged Metrics registry
                stage["execute"] = sp_execute.seconds
            flops = flops_from_stats(result.stats, cfg.want_potential)
            result.stats["stage_seconds"] = stage
            result.stats["force_seconds"] = sp_force.seconds
            result.stats["flops"] = flops
            n_inter = (
                result.stats.get("cell_interactions", 0)
                + result.stats.get("pp_interactions", 0)
                + result.stats.get("prism_interactions", 0)
            )
            tr.count("force.calls")
            tr.count(
                f"evaluate.backend.{result.stats.get('backend', 'numpy')}"
            )
            tr.count("force.interactions", n_inter)
            tr.count("force.cells", tree.n_cells)
            tr.count("force.flops", flops)
        self.last_tree = tree
        self.last_moments = moms
        self.last_interactions = inter
        return result
