"""Direct O(N^2) summation — the verification baseline.

Paper §5 describes a "distance ladder" of cross-checks: Ewald
summation validates direct summation, which validates the treecode,
which (at high accuracy settings) validates itself at lower accuracy.
This module is the middle rung: blocked, vectorized pairwise
summation in float64 or float32 (Figure 6 compares a p=8 multipole
against *float32* direct summation), with optional periodic
minimum-image displacement and any softening kernel.
"""

from __future__ import annotations

import numpy as np

from .smoothing import NoSoftening, SofteningKernel

__all__ = ["direct_accelerations", "direct_potential_energy"]


def direct_accelerations(
    pos: np.ndarray,
    mass: np.ndarray,
    softening: SofteningKernel | None = None,
    G: float = 1.0,
    box: float | None = None,
    dtype=np.float64,
    targets: np.ndarray | None = None,
    block: int = 1024,
    want_potential: bool = False,
):
    """All-pairs accelerations (and optionally potentials).

    Parameters
    ----------
    box:
        If given, displacements use the periodic minimum image in a
        cube of this side (note: minimum image is *not* the full Ewald
        sum; see :mod:`repro.gravity.ewald` for that).
    targets:
        Evaluate the field only at these positions (self-interactions
        are then not excluded — the targets are treated as massless
        test points).  Default: at the particles themselves, with
        self-interaction excluded.
    dtype:
        float32 or float64 accumulation (float32 reproduces the
        "direct sum (float32)" curve of Fig. 6).

    Returns
    -------
    acc (N, 3), or (acc, pot) when ``want_potential``.
    """
    softening = softening or NoSoftening()
    pos = np.ascontiguousarray(pos, dtype=dtype)
    mass = np.ascontiguousarray(mass, dtype=dtype)
    self_field = targets is None
    tgt = pos if self_field else np.ascontiguousarray(targets, dtype=dtype)
    n_t = len(tgt)
    acc = np.zeros((n_t, 3), dtype=dtype)
    pot = np.zeros(n_t, dtype=dtype) if want_potential else None
    for s in range(0, n_t, block):
        e = min(s + block, n_t)
        d = tgt[s:e, None, :] - pos[None, :, :]
        if box is not None:
            d -= (np.round(d / dtype(box)) * dtype(box)).astype(dtype)
        r2 = np.einsum("ijk,ijk->ij", d, d)
        r = np.sqrt(r2)
        f = softening.force_factor(r).astype(dtype)
        if self_field:
            idx = np.arange(s, e)
            f[np.arange(e - s), idx] = 0.0
        acc[s:e] = -np.einsum("ij,ijk->ik", mass[None, :] * f, d)
        if want_potential:
            psi = softening.potential(r).astype(dtype)
            if self_field:
                psi[np.arange(e - s), np.arange(s, e)] = 0.0
            pot[s:e] = psi @ mass
    if G != 1.0:
        acc *= dtype(G)
        if want_potential:
            pot *= dtype(G)
    return (acc, pot) if want_potential else acc


def direct_potential_energy(
    pos: np.ndarray,
    mass: np.ndarray,
    softening: SofteningKernel | None = None,
    G: float = 1.0,
    box: float | None = None,
) -> float:
    """Total gravitational potential energy W = -G/2 sum_ij m_i m_j psi(r_ij)."""
    _, pot = direct_accelerations(
        pos, mass, softening=softening, G=G, box=box, want_potential=True
    )
    return float(-0.5 * np.dot(pot, mass))
