"""Force smoothing kernels (paper §2.5).

The standard practice in cosmological N-body work is to soften the
force below a smoothing scale.  2HOT implements the Plummer and spline
kernels plus the additional kernels of Dehnen (2001), and adopts
Dehnen's *compensating* K1 kernel for production because its force —
slightly super-Newtonian near the outer edge of the kernel —
compensates the interior suppression and removes the leading force
bias.

Every kernel provides, for the pairwise interaction of a unit-mass
source at separation r,

* ``force_factor(r)``: F(r) with acc = -m * dx * F(r)   (F -> 1/r^3),
* ``potential(r)``:    psi(r) with pot = +m * psi(r)    (psi -> 1/r).

The K1 kernel here is derived from its defining property — enclosed
mass M(x) with zero mean force bias, i.e. ∫ 4π y^3 rho(y) dy = 0 over
the kernel, achieved with the density rho(x) ∝ (1-x^2)(1-2x^2) which
is negative in an outer shell — and verified in the tests to produce
edge forces above Newtonian (the property the paper cites).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SofteningKernel",
    "NoSoftening",
    "PlummerSoftening",
    "SplineSoftening",
    "DehnenK1Softening",
    "make_softening",
]


class SofteningKernel:
    """Interface for pairwise force smoothing."""

    #: nominal smoothing length (meaning depends on the kernel family)
    eps: float = 0.0

    def force_factor(self, r: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def potential(self, r: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class NoSoftening(SofteningKernel):
    """Pure Newtonian 1/r^2 (diverges at r=0; callers guard self-pairs)."""

    def __init__(self):
        self.eps = 0.0

    def force_factor(self, r):
        r = np.asarray(r, dtype=np.float64)
        with np.errstate(divide="ignore"):
            return 1.0 / (r * r * r)

    def potential(self, r):
        r = np.asarray(r, dtype=np.float64)
        with np.errstate(divide="ignore"):
            return 1.0 / r


class PlummerSoftening(SofteningKernel):
    """F = (r^2 + eps^2)^{-3/2}: globally biased low, but simple."""

    def __init__(self, eps: float):
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = float(eps)

    def force_factor(self, r):
        r = np.asarray(r, dtype=np.float64)
        return (r * r + self.eps * self.eps) ** -1.5

    def potential(self, r):
        r = np.asarray(r, dtype=np.float64)
        return (r * r + self.eps * self.eps) ** -0.5


class SplineSoftening(SofteningKernel):
    """Monaghan-Lattanzio cubic spline, GADGET-2 convention h = 2.8 eps.

    Exactly Newtonian for r >= h; matches the Plummer eps at small r in
    the sense used by GADGET-2 (phi(0) = -1/eps).
    """

    def __init__(self, eps: float):
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = float(eps)
        self.h = 2.8 * float(eps)

    def force_factor(self, r):
        # piecewise forms exactly as in GADGET-2's forcetree.c
        r = np.asarray(r, dtype=np.float64)
        h = self.h
        u = r / h
        out = np.empty_like(r)
        far = u >= 1.0
        out[far] = 1.0 / np.maximum(r[far], 1e-300) ** 3
        near = u < 0.5
        un = u[near]
        out[near] = (10.666666666667 + un * un * (32.0 * un - 38.4)) / h**3
        mid = ~far & ~near
        um = u[mid]
        out[mid] = (
            21.333333333333
            - 48.0 * um
            + 38.4 * um * um
            - 10.666666666667 * um**3
            - 0.066666666667 / um**3
        ) / h**3
        return out

    def potential(self, r):
        r = np.asarray(r, dtype=np.float64)
        h = self.h
        u = r / h
        out = np.empty_like(r)
        far = u >= 1.0
        out[far] = 1.0 / np.maximum(r[far], 1e-300)
        near = u < 0.5
        un = u[near]
        out[near] = -1.0 / h * (-2.8 + un**2 * (5.333333333333 + un**2 * (6.4 * un - 9.6)))
        mid = ~far & ~near
        um = u[mid]
        out[mid] = -1.0 / h * (
            -3.2
            + 0.066666666667 / um
            + um**2
            * (10.666666666667 + um * (-16.0 + um * (9.6 - 2.133333333333 * um)))
        )
        return out


class DehnenK1Softening(SofteningKernel):
    """Dehnen (2001) compensating K1 kernel.

    Density rho(x) = (105 / 8 pi h^3) (1 - x^2)(1 - 2 x^2) for x = r/h < 1
    (negative in the outer shell), zero outside.  Enclosed mass

        M(x) = 35/2 x^3 - 63/2 x^5 + 15 x^7

    reaches M > 1 inside the kernel, so the edge force exceeds
    Newtonian — the compensation the paper relies on.  The mean force
    bias ∫ 4π y^3 rho dy vanishes identically.
    """

    def __init__(self, eps: float):
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = float(eps)
        self.h = float(eps)

    def enclosed_mass(self, x):
        x = np.asarray(x, dtype=np.float64)
        m = 17.5 * x**3 - 31.5 * x**5 + 15.0 * x**7
        return np.where(x >= 1.0, 1.0, m)

    def force_factor(self, r):
        r = np.asarray(r, dtype=np.float64)
        h = self.h
        u = np.minimum(r / h, 1.0)
        inside = r < h
        out = np.empty_like(r)
        rsafe = np.maximum(r, 1e-300)
        out[~inside] = 1.0 / rsafe[~inside] ** 3
        ui = u[inside]
        # F = M(u)/r^3 = (17.5 u^3 - 31.5 u^5 + 15 u^7) / (u h)^3
        out[inside] = (17.5 - 31.5 * ui**2 + 15.0 * ui**4) / h**3
        return out

    def potential(self, r):
        r = np.asarray(r, dtype=np.float64)
        h = self.h
        u = r / h
        out = np.empty_like(r)
        far = u >= 1.0
        out[far] = 1.0 / np.maximum(r[far], 1e-300)
        ui = u[~far]
        # psi(u) = (1/h) (35/8 - 35/4 u^2 + 63/8 u^4 - 5/2 u^6)
        out[~far] = (4.375 - 8.75 * ui**2 + 7.875 * ui**4 - 2.5 * ui**6) / h
        return out


def make_softening(kind: str, eps: float) -> SofteningKernel:
    """Factory: 'none', 'plummer', 'spline', or 'dehnen_k1'."""
    kind = kind.lower()
    if kind == "none":
        return NoSoftening()
    if kind == "plummer":
        return PlummerSoftening(eps)
    if kind == "spline":
        return SplineSoftening(eps)
    if kind in ("dehnen_k1", "k1"):
        return DehnenK1Softening(eps)
    raise ValueError(f"unknown softening kind {kind!r}")
