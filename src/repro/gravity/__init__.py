"""Gravity solvers: treecode, direct, Ewald, periodic, PM/TreePM."""

from .direct import direct_accelerations, direct_potential_energy
from .kernels import NUMBA_AVAILABLE, kernel_available, resolve_backend
from .smoothing import (
    DehnenK1Softening,
    NoSoftening,
    PlummerSoftening,
    SofteningKernel,
    SplineSoftening,
    make_softening,
)
from .solver import TreecodeConfig, TreecodeGravity
from .treeforce import ForceResult, evaluate_forces

__all__ = [
    "DehnenK1Softening",
    "ForceResult",
    "NUMBA_AVAILABLE",
    "NoSoftening",
    "PlummerSoftening",
    "SofteningKernel",
    "SplineSoftening",
    "TreecodeConfig",
    "TreecodeGravity",
    "direct_accelerations",
    "direct_potential_energy",
    "evaluate_forces",
    "kernel_available",
    "make_softening",
    "resolve_backend",
]
