"""Cell-cell (O(N), FMM-style) evaluation — the road not taken (§2.2.2).

The paper: "The expressions we derived in [68] support methods which
use both multipole and local expansions (cell-cell interactions) ...
generally methods which support cell-cell interactions scale as O(N)
... Our experience has been that using O(N)-type algorithms for
cosmological simulation exposes some undesirable behaviors.  In
particular, the behavior of the errors near the outer regions of local
expansions are highly correlated.  To suppress the accumulation of
these errors, the accuracy of the local expansion must be increased,
or their spatial scale reduced to the point where the benefit of the
O(N) method is questionable ... For this reason, we have focused on
... an O(N log N) method."

To make that design decision reproducible rather than folklore, this
module implements the rejected alternative: a symmetric dual-tree
traversal producing cell-cell (M2L) interactions accumulated into
per-cell local expansions, swept down with L2L and evaluated with L2P,
plus the usual leaf-leaf near field.  The benchmark measures both the
O(N)-like scaling of the interaction counts *and* the spatially
correlated error structure the paper describes.

Open (non-periodic) boundaries only — sufficient for the baseline
comparison; the production path stays cell-body.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..multipoles import multi_index_set
from ..multipoles.codegen import compiled_dtensor_function
from ..multipoles.multiindex import n_coeffs
from ..multipoles.radial import NewtonianKernel
from ..tree import Tree, TreeMoments, build_tree, compute_moments
from ..tree.traversal import InteractionLists
from ..util import expand_ranges
from .smoothing import make_softening
from .treeforce import ForceResult, evaluate_forces

__all__ = ["FMMConfig", "FMMGravity", "CellCellLists", "traverse_cell_cell"]


@dataclass
class CellCellLists:
    """Interaction lists of the symmetric dual-tree traversal."""

    m2l_sink: np.ndarray  # cell receiving a local-expansion contribution
    m2l_src: np.ndarray  # cell whose multipole is translated
    leaf_a: np.ndarray  # near-field leaf pairs (each ordered pair once)
    leaf_b: np.ndarray
    rounds: int = 0

    def n_m2l(self) -> int:
        return len(self.m2l_sink)


def traverse_cell_cell(
    tree: Tree,
    moms: TreeMoments,
    theta: float = 0.5,
) -> CellCellLists:
    """Symmetric dual-tree traversal with the classic FMM MAC.

    A pair (A, B) is *well separated* when
    (bmax_A + bmax_B) < theta * |center_A - center_B|; then B's
    multipole feeds A's local expansion and vice versa.  Otherwise the
    larger cell is split.  Leaf-leaf pairs fall to direct summation.
    """
    root = int(np.flatnonzero(tree.cell_level == 0)[0])
    pa = np.array([root], dtype=np.int64)
    pb = np.array([root], dtype=np.int64)
    m2l_sink, m2l_src = [], []
    leaf_a, leaf_b = [], []
    is_leaf = tree.is_leaf
    rounds = 0
    while len(pa):
        rounds += 1
        d = tree.cell_center[pa] - tree.cell_center[pb]
        dist = np.sqrt(np.einsum("ij,ij->i", d, d))
        size = moms.bmax[pa] + moms.bmax[pb]
        ok = (size < theta * dist) & (pa != pb)
        if np.any(ok):
            # the ordered frontier contains both (A, B) and (B, A) — the
            # split rule is mirror-complete — so emit ONE direction per
            # ordered pair
            m2l_sink.append(pa[ok])
            m2l_src.append(pb[ok])
        rest_a = pa[~ok]
        rest_b = pb[~ok]
        both_leaf = is_leaf[rest_a] & is_leaf[rest_b]
        if np.any(both_leaf):
            leaf_a.append(rest_a[both_leaf])
            leaf_b.append(rest_b[both_leaf])
        ra = rest_a[~both_leaf]
        rb = rest_b[~both_leaf]
        if len(ra) == 0:
            break
        # split the larger cell (ties: split A); a leaf is never split
        split_a = (~is_leaf[ra]) & (
            is_leaf[rb] | (tree.cell_side[ra] >= tree.cell_side[rb])
        )
        na, nb = [], []
        # split A
        sa = ra[split_a]
        sb = rb[split_a]
        if len(sa):
            nch = tree.cell_nchildren[sa]
            kids = expand_ranges(tree.cell_first_child[sa], nch)
            na.append(kids)
            nb.append(np.repeat(sb, nch))
        # split B
        sa2 = ra[~split_a]
        sb2 = rb[~split_a]
        if len(sa2):
            nch = tree.cell_nchildren[sb2]
            kids = expand_ranges(tree.cell_first_child[sb2], nch)
            nb.append(kids)
            na.append(np.repeat(sa2, nch))
        pa = np.concatenate(na) if na else np.empty(0, dtype=np.int64)
        pb = np.concatenate(nb) if nb else np.empty(0, dtype=np.int64)

    def cat(parts):
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    return CellCellLists(
        m2l_sink=cat(m2l_sink),
        m2l_src=cat(m2l_src),
        leaf_a=cat(leaf_a),
        leaf_b=cat(leaf_b),
        rounds=rounds,
    )


@dataclass
class FMMConfig:
    """Knobs of the rejected O(N) method."""

    p: int = 4  # source expansion order
    p_local: int = 4  # local expansion order
    theta: float = 0.5
    nleaf: int = 16
    softening: str = "plummer"
    eps: float = 1e-3
    G: float = 1.0


class FMMGravity:
    """Open-boundary cell-cell solver (the §2.2.2 baseline)."""

    def __init__(self, config: FMMConfig | None = None):
        self.config = config or FMMConfig()
        self.last_lists: CellCellLists | None = None
        self.last_tree: Tree | None = None

    def compute(self, pos: np.ndarray, mass: np.ndarray, box: float = 1.0) -> ForceResult:
        cfg = self.config
        tree = build_tree(pos, mass, box=box, nleaf=cfg.nleaf)
        moms = compute_moments(tree, p=cfg.p, tol=1e30)  # MAC unused here
        lists = traverse_cell_cell(tree, moms, theta=cfg.theta)
        self.last_lists = lists
        self.last_tree = tree

        p_loc = cfg.p_local
        mis_loc = multi_index_set(p_loc + 1)
        nloc = len(mis_loc)
        local = np.zeros((tree.n_cells, nloc))

        # ----- batched M2L ------------------------------------------------------
        if lists.n_m2l():
            _m2l_batch(
                tree, moms, lists.m2l_sink, lists.m2l_src, cfg.p, p_loc, local
            )

        # ----- downward L2L ------------------------------------------------------
        for level in range(1, tree.max_level + 1):
            cells = tree.cells_at_level(level)
            cells = cells[tree.cell_parent[cells] >= 0]
            if len(cells) == 0:
                continue
            parents = tree.cell_parent[cells]
            d = tree.cell_center[cells] - tree.cell_center[parents]
            local[cells] += _l2l_batch(local[parents], d, p_loc + 1)

        # ----- L2P at leaves -------------------------------------------------------
        n = tree.n_particles
        acc = np.zeros((n, 3))
        pot = np.zeros(n)
        leaves = tree.leaf_indices
        counts = tree.cell_count[leaves]
        pidx = expand_ranges(tree.cell_start[leaves], counts)
        centers = np.repeat(tree.cell_center[leaves], counts, axis=0)
        locs = np.repeat(local[leaves], counts, axis=0)
        s = tree.pos[pidx] - centers
        mono = mis_loc.powers(s)
        wf = 1.0 / mis_loc.factorial
        pot[pidx] += np.einsum("ij,ij->i", mono, locs * wf)
        for ax in range(3):
            cols = np.full(nloc, -1, dtype=np.int64)
            for bi, b in enumerate(mis_loc.alphas):
                up = (int(b[0]) + (ax == 0), int(b[1]) + (ax == 1), int(b[2]) + (ax == 2))
                j = mis_loc.index.get(up)
                if j is not None:
                    cols[bi] = j
            valid = cols >= 0
            acc[pidx, ax] += np.einsum(
                "ij,ij->i", mono[:, valid] * wf[valid], locs[:, cols[valid]]
            )

        # ----- near field: reuse the blocked P-P evaluator -----------------------
        # the frontier already contains each ordered leaf pair exactly once
        # (self pairs once), which is exactly what the evaluator wants
        sink, src = lists.leaf_a, lists.leaf_b
        off = np.zeros(len(sink), dtype=np.int64)
        pseudo = InteractionLists(
            sink_leaves=leaves,
            offsets=np.zeros((1, 3)),
            cell_sink=np.empty(0, dtype=np.int64),
            cell_src=np.empty(0, dtype=np.int64),
            cell_off=np.empty(0, dtype=np.int64),
            leaf_sink=sink,
            leaf_src=src,
            leaf_off=off,
            ghost_sink=np.empty(0, dtype=np.int64),
            ghost_src=np.empty(0, dtype=np.int64),
            ghost_off=np.empty(0, dtype=np.int64),
        )
        near = evaluate_forces(
            tree, moms, pseudo,
            softening=make_softening(cfg.softening, cfg.eps),
            G=1.0, want_potential=True,
        )
        # near-field comes back in original order; far field is in sorted
        # order — unsort it to match
        acc_out = np.empty_like(acc)
        acc_out[tree.order] = acc
        pot_out = np.empty_like(pot)
        pot_out[tree.order] = pot
        acc_total = (acc_out + near.acc) * cfg.G
        pot_total = (pot_out + near.pot) * cfg.G
        stats = {
            "m2l_pairs": lists.n_m2l(),
            "pp_interactions": near.stats["pp_interactions"],
            "n_cells": tree.n_cells,
        }
        return ForceResult(acc=acc_total, pot=pot_total, stats=stats)


def _m2l_batch(tree, moms, sink, src, p_src, p_loc, local_out):
    """Accumulate local expansions for many (sink, src) cell pairs."""
    mis_s = multi_index_set(p_src)
    mis_l = multi_index_set(p_loc + 1)
    order_hi = p_src + p_loc + 1
    mis_hi = multi_index_set(order_hi)
    ncoef_s = len(mis_s)
    # column map: cols[beta, alpha] = packed index of alpha+beta
    cols = np.empty((len(mis_l), ncoef_s), dtype=np.intp)
    for bi, b in enumerate(mis_l.alphas):
        for ai, a in enumerate(mis_s.alphas):
            cols[bi, ai] = mis_hi.index[tuple(int(x) for x in (a + b))]
    w = ((-1.0) ** mis_s.order) / mis_s.factorial
    dt_fn = compiled_dtensor_function(order_hi)
    kernel = NewtonianKernel()
    chunk = max(1024, int(4e6 / n_coeffs(order_hi)))
    buf = np.empty((chunk, n_coeffs(order_hi)))
    for s0 in range(0, len(sink), chunk):
        s1 = min(s0 + chunk, len(sink))
        rows = slice(s0, s1)
        dx = tree.cell_center[sink[rows]] - tree.cell_center[src[rows]]
        r = np.sqrt(np.einsum("ij,ij->i", dx, dx))
        g = kernel.radial_derivs(r, order_hi)
        out = buf[: s1 - s0]
        dt_fn(dx[:, 0], dx[:, 1], dx[:, 2], g, out)
        m = moms.moments[src[rows]][:, :ncoef_s] * w
        contrib = np.empty((s1 - s0, len(mis_l)))
        for bi in range(len(mis_l)):
            contrib[:, bi] = np.einsum("ka,ka->k", m, out[:, cols[bi]])
        np.add.at(local_out, sink[rows], contrib)


def _l2l_batch(parent_local: np.ndarray, d: np.ndarray, p: int) -> np.ndarray:
    """Translate local expansions to children centers (batched).

    L'_gamma = sum_{beta >= gamma} L_beta d^{beta-gamma} / (beta-gamma)!
    Reuses the M2M translation index table with roles reversed.
    """
    mis = multi_index_set(p)
    tgt, srcb, shift, _binom = mis.translation_table
    mono = mis.powers(d)
    out = np.zeros_like(parent_local)
    # table rows: (alpha=tgt, beta=srcb <= alpha, shift=alpha-beta).
    # L2L wants: out[beta] += L[alpha] * d^(alpha-beta) / (alpha-beta)!
    weights = 1.0 / mis.factorial[shift]
    contrib = parent_local[:, tgt] * mono[:, shift] * weights
    np.add.at(out.T, srcb, contrib.T)
    return out
