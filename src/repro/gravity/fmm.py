"""Cell-cell (O(N), FMM-style) evaluation — the road not taken (§2.2.2).

The paper: "The expressions we derived in [68] support methods which
use both multipole and local expansions (cell-cell interactions) ...
generally methods which support cell-cell interactions scale as O(N)
... Our experience has been that using O(N)-type algorithms for
cosmological simulation exposes some undesirable behaviors.  In
particular, the behavior of the errors near the outer regions of local
expansions are highly correlated.  To suppress the accumulation of
these errors, the accuracy of the local expansion must be increased,
or their spatial scale reduced to the point where the benefit of the
O(N) method is questionable ... For this reason, we have focused on
... an O(N log N) method."

To make that design decision reproducible rather than folklore, this
module implements the rejected alternative: cell-cell (M2L)
interactions accumulated into per-cell local expansions, swept down
with L2L and evaluated with L2P, plus the usual leaf-leaf near field.
The benchmark measures both the O(N)-like scaling of the interaction
counts *and* the spatially correlated error structure the paper
describes.

Since the mutual cell-cell machinery was promoted into the production
path (``TreecodeConfig(traversal="fmm-hybrid")``),
:class:`FMMGravity` is a thin open-boundary wrapper over that path: a
huge MAC tolerance collapses ``r_crit`` so the pure geometric Dehnen
criterion ``bmax_a + bmax_b < theta * dist`` (``cc_xmax = theta``)
drives the accepts, and the shared M2L/L2L/L2P pipeline — including
its momentum-conserving mutual emission and compiled kernels — does
the field evaluation.  The original standalone symmetric dual-tree
walk, :func:`traverse_cell_cell`, is kept importable (deprecated) for
the A/B interaction-count benchmark.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..tree import Tree, TreeMoments
from ..tree.traversal import InteractionLists
from ..util import expand_ranges
from .solver import TreecodeConfig, TreecodeGravity
from .treeforce import ForceResult

__all__ = ["FMMConfig", "FMMGravity", "CellCellLists", "traverse_cell_cell"]


@dataclass
class CellCellLists:
    """Interaction lists of the symmetric dual-tree traversal."""

    m2l_sink: np.ndarray  # cell receiving a local-expansion contribution
    m2l_src: np.ndarray  # cell whose multipole is translated
    leaf_a: np.ndarray  # near-field leaf pairs (each ordered pair once)
    leaf_b: np.ndarray
    rounds: int = 0

    def n_m2l(self) -> int:
        return len(self.m2l_sink)


def traverse_cell_cell(
    tree: Tree,
    moms: TreeMoments,
    theta: float = 0.5,
) -> CellCellLists:
    """Symmetric dual-tree traversal with the classic FMM MAC.

    .. deprecated:: the production walk
       (:func:`repro.tree.traversal.traverse_hierarchical` with
       ``m2l=True``) emits the same mutual accepts as a CSR family with
       periodic-image and shard support; this standalone walk remains
       only as the reference for the A/B interaction-count benchmark.

    A pair (A, B) is *well separated* when
    (bmax_A + bmax_B) < theta * |center_A - center_B|; then B's
    multipole feeds A's local expansion and vice versa.  Otherwise the
    larger cell is split.  Leaf-leaf pairs fall to direct summation.
    """
    warnings.warn(
        "traverse_cell_cell is deprecated: use "
        "TreecodeConfig(traversal='fmm-hybrid') for production cell-cell "
        "accepts (kept only for the A/B benchmark)",
        DeprecationWarning,
        stacklevel=2,
    )
    root = int(np.flatnonzero(tree.cell_level == 0)[0])
    pa = np.array([root], dtype=np.int64)
    pb = np.array([root], dtype=np.int64)
    m2l_sink, m2l_src = [], []
    leaf_a, leaf_b = [], []
    is_leaf = tree.is_leaf
    rounds = 0
    while len(pa):
        rounds += 1
        d = tree.cell_center[pa] - tree.cell_center[pb]
        dist = np.sqrt(np.einsum("ij,ij->i", d, d))
        size = moms.bmax[pa] + moms.bmax[pb]
        ok = (size < theta * dist) & (pa != pb)
        if np.any(ok):
            # the ordered frontier contains both (A, B) and (B, A) — the
            # split rule is mirror-complete — so emit ONE direction per
            # ordered pair
            m2l_sink.append(pa[ok])
            m2l_src.append(pb[ok])
        rest_a = pa[~ok]
        rest_b = pb[~ok]
        both_leaf = is_leaf[rest_a] & is_leaf[rest_b]
        if np.any(both_leaf):
            leaf_a.append(rest_a[both_leaf])
            leaf_b.append(rest_b[both_leaf])
        ra = rest_a[~both_leaf]
        rb = rest_b[~both_leaf]
        if len(ra) == 0:
            break
        # split the larger cell (ties: split A); a leaf is never split
        split_a = (~is_leaf[ra]) & (
            is_leaf[rb] | (tree.cell_side[ra] >= tree.cell_side[rb])
        )
        na, nb = [], []
        # split A
        sa = ra[split_a]
        sb = rb[split_a]
        if len(sa):
            nch = tree.cell_nchildren[sa]
            kids = expand_ranges(tree.cell_first_child[sa], nch)
            na.append(kids)
            nb.append(np.repeat(sb, nch))
        # split B
        sa2 = ra[~split_a]
        sb2 = rb[~split_a]
        if len(sa2):
            nch = tree.cell_nchildren[sb2]
            kids = expand_ranges(tree.cell_first_child[sb2], nch)
            nb.append(kids)
            na.append(np.repeat(sa2, nch))
        pa = np.concatenate(na) if na else np.empty(0, dtype=np.int64)
        pb = np.concatenate(nb) if nb else np.empty(0, dtype=np.int64)

    def cat(parts):
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    return CellCellLists(
        m2l_sink=cat(m2l_sink),
        m2l_src=cat(m2l_src),
        leaf_a=cat(leaf_a),
        leaf_b=cat(leaf_b),
        rounds=rounds,
    )


@dataclass
class FMMConfig:
    """Knobs of the open-boundary cell-cell solver.

    ``p_local`` is retained for API compatibility but ignored: the
    shared production pipeline always carries locals at the stored
    moment order ``p + 2`` (the triangular M2L order that makes the
    mutual accepts momentum-exact).
    """

    p: int = 4  # source expansion order
    p_local: int = 4  # ignored (production locals run at order p + 2)
    theta: float = 0.5
    nleaf: int = 16
    softening: str = "plummer"
    eps: float = 1e-3
    G: float = 1.0


class FMMGravity:
    """Open-boundary cell-cell solver (the §2.2.2 baseline).

    Delegates to the production ``traversal="fmm-hybrid"`` path with a
    collapsed MAC radius (``errtol = 1e30`` makes ``r_crit`` vanish) so
    the pure geometric criterion ``bmax_a + bmax_b < theta * dist``
    governs the mutual accepts, matching the classic Dehnen-style MAC
    this baseline has always measured.  Softening, ``ForceResult``
    stats conventions and backend selection are exactly the production
    ones.
    """

    def __init__(self, config: FMMConfig | None = None):
        self.config = config or FMMConfig()
        self.last_tree: Tree | None = None
        self.last_interactions: InteractionLists | None = None

    def compute(self, pos: np.ndarray, mass: np.ndarray, box: float = 1.0) -> ForceResult:
        cfg = self.config
        solver = TreecodeGravity(TreecodeConfig(
            p=cfg.p,
            errtol=1e30,  # collapse r_crit: geometric dual MAC only
            nleaf=cfg.nleaf,
            background=False,
            periodic=False,
            traversal="fmm-hybrid",
            cc_xmax=cfg.theta,
            softening=cfg.softening,
            eps=cfg.eps,
            G=cfg.G,
        ))
        result = solver.compute(pos, mass, box=box)
        self.last_tree = solver.last_tree
        self.last_interactions = solver.last_interactions
        return result
