"""SDF self-describing files and leapfrog-preserving checkpoints."""

from .checkpoint import load_checkpoint, save_checkpoint
from .sdf import SDFFile, read_sdf, write_sdf

__all__ = ["SDFFile", "load_checkpoint", "read_sdf", "save_checkpoint", "write_sdf"]
