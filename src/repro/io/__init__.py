"""SDF self-describing files and leapfrog-preserving checkpoints."""

from .checkpoint import (
    CheckpointConfigMismatch,
    load_checkpoint,
    save_checkpoint,
    sim_config_metadata,
    verify_sim_config,
)
from .sdf import SDFChecksumError, SDFFile, read_sdf, write_sdf

__all__ = [
    "CheckpointConfigMismatch",
    "SDFChecksumError",
    "SDFFile",
    "load_checkpoint",
    "read_sdf",
    "save_checkpoint",
    "sim_config_metadata",
    "verify_sim_config",
    "write_sdf",
]
