"""SDF — the self-describing file format of HOT/2HOT (paper §3.4.2).

"We use our own self-describing file format (SDF), which consists of
ASCII metadata describing raw binary particle data structures."  This
module implements that design: a header of `name = value;` assignments
plus a struct declaration, terminated by a form-feed/EOH marker,
followed by raw little-endian binary records.

Git provenance propagation (§3.4.3) is built in: writers stamp the
metadata with the code version/tag they were given so any output file
records exactly what produced it.

Durability (for checkpoints, §3.4.2) is opt-in per write:

* ``checksums=True`` records a SHA-256 per flattened column in the
  metadata (``checksum_<col>``); :func:`read_sdf` re-hashes and raises
  :class:`SDFChecksumError` on any mismatch, so a flipped bit is caught
  at restart time instead of propagating into the integration;
* ``atomic=True`` writes through a temporary sibling file with an
  fsync before an ``os.replace``, so a crash mid-write can never leave
  a truncated file under the final name.
"""

from __future__ import annotations

import hashlib
import io
import os
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SDFFile", "SDFChecksumError", "write_sdf", "read_sdf"]


class SDFChecksumError(ValueError):
    """A stored per-column checksum did not match the data read back."""

_EOH = b"# SDF-EOH\x0c\n"

_TYPE_TO_SDF = {
    np.dtype("float32"): "float",
    np.dtype("float64"): "double",
    np.dtype("int32"): "int",
    np.dtype("int64"): "int64_t",
    np.dtype("uint64"): "uint64_t",
}
_SDF_TO_TYPE = {v: k for k, v in _TYPE_TO_SDF.items()}


@dataclass
class SDFFile:
    """Parsed SDF content: metadata plus named column arrays."""

    metadata: dict = field(default_factory=dict)
    columns: dict = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        for v in self.columns.values():
            return len(v)
        return 0


def _format_value(v) -> str:
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, (int, np.integer)):
        return str(int(v))
    if isinstance(v, (float, np.floating)):
        return repr(float(v))
    return '"' + str(v).replace('"', "'") + '"'


def _parse_value(s: str):
    s = s.strip()
    if s.startswith('"') and s.endswith('"'):
        return s[1:-1]
    try:
        return int(s)
    except ValueError:
        pass
    try:
        return float(s)
    except ValueError:
        return s


def _column_checksum(arr: np.ndarray) -> str:
    """SHA-256 of a column's little-endian bytes (hex)."""
    return hashlib.sha256(np.ascontiguousarray(
        arr.astype(arr.dtype.newbyteorder("<"), copy=False)
    ).tobytes()).hexdigest()


def write_sdf(
    path,
    columns: dict,
    metadata: dict | None = None,
    git_tag: str | None = None,
    checksums: bool = False,
    atomic: bool = False,
) -> None:
    """Write named arrays with metadata as an SDF file.

    Parameters
    ----------
    columns:
        Mapping name -> 1-d or (N, k) numpy array; all with equal N.
    metadata:
        Scalar metadata written into the ASCII header.
    git_tag:
        Provenance tag recorded as ``code_version`` (§3.4.3).
    checksums:
        Record a per-column SHA-256 in the metadata, verified by
        :func:`read_sdf`.
    atomic:
        Write via a temporary sibling + fsync + ``os.replace`` so the
        final path only ever holds a complete file.
    """
    metadata = dict(metadata or {})
    if git_tag is not None:
        metadata["code_version"] = git_tag
    flat: dict[str, np.ndarray] = {}
    n_rows = None
    for name, arr in columns.items():
        arr = np.asarray(arr)
        if arr.ndim == 1:
            flat[name] = arr
        elif arr.ndim == 2:
            for i, suffix in enumerate("xyzw"[: arr.shape[1]] if arr.shape[1] <= 4
                                        else range(arr.shape[1])):
                flat[f"{name}_{suffix}"] = arr[:, i]
        else:
            raise ValueError(f"column {name!r} must be 1-d or 2-d")
        m = len(arr)
        if n_rows is None:
            n_rows = m
        elif n_rows != m:
            raise ValueError("all columns must have the same length")
    for name, arr in flat.items():
        if arr.dtype not in _TYPE_TO_SDF:
            raise ValueError(f"unsupported dtype {arr.dtype} for column {name!r}")
    if checksums:
        for name, arr in flat.items():
            metadata[f"checksum_{name}"] = _column_checksum(arr)

    dtype = np.dtype(
        [(name, arr.dtype.newbyteorder("<")) for name, arr in flat.items()]
    )
    rec = np.empty(n_rows or 0, dtype=dtype)
    for name, arr in flat.items():
        rec[name] = arr

    path = os.fspath(path)
    target = f"{path}.tmp.{os.getpid()}" if atomic else path
    with open(target, "wb") as f:
        f.write(b"# SDF 1.0\n")
        for k, v in metadata.items():
            f.write(f"{k} = {_format_value(v)};\n".encode())
        f.write(f"npart = {n_rows or 0};\n".encode())
        f.write(b"struct {\n")
        for name, arr in flat.items():
            f.write(f"    {_TYPE_TO_SDF[arr.dtype]} {name};\n".encode())
        f.write(f"}}[{n_rows or 0}];\n".encode())
        f.write(_EOH)
        f.write(rec.tobytes())
        if atomic:
            f.flush()
            os.fsync(f.fileno())
    if atomic:
        os.replace(target, path)


def read_sdf(path, verify: bool = True) -> SDFFile:
    """Read an SDF file written by :func:`write_sdf`.

    When the header carries ``checksum_<col>`` entries (``checksums=True``
    at write time) each column is re-hashed and a mismatch raises
    :class:`SDFChecksumError`; pass ``verify=False`` to skip (e.g. for
    forensic inspection of a known-corrupt file).
    """
    with open(path, "rb") as f:
        raw = f.read()
    pos = raw.find(_EOH)
    if pos < 0:
        raise ValueError("not an SDF file (missing end-of-header marker)")
    header = raw[:pos].decode()
    body = raw[pos + len(_EOH):]

    metadata: dict = {}
    fields: list[tuple[str, np.dtype]] = []
    n_rows = 0
    in_struct = False
    for line in header.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("struct"):
            in_struct = True
            continue
        if in_struct:
            if line.startswith("}"):
                in_struct = False
                n_rows = int(line.split("[")[1].split("]")[0])
                continue
            typename, colname = line.rstrip(";").split()
            fields.append((colname, _SDF_TO_TYPE[typename]))
            continue
        if "=" in line:
            k, v = line.split("=", 1)
            metadata[k.strip()] = _parse_value(v.rstrip(";"))
    dtype = np.dtype([(n, d.newbyteorder("<")) for n, d in fields])
    expected = n_rows * dtype.itemsize
    if len(body) < expected:
        raise ValueError(
            f"SDF body truncated: {len(body)} bytes < expected {expected}"
        )
    rec = np.frombuffer(body[:expected], dtype=dtype)
    columns = {n: np.ascontiguousarray(rec[n]) for n, _ in fields}
    metadata.pop("npart", None)
    if verify:
        bad = []
        for name, arr in columns.items():
            want = metadata.get(f"checksum_{name}")
            if want is not None and _column_checksum(arr) != want:
                bad.append(name)
        if bad:
            raise SDFChecksumError(
                f"{path}: checksum mismatch in column(s) {', '.join(bad)}"
            )
    return SDFFile(metadata=metadata, columns=columns)
