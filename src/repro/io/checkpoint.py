"""Checkpointing with leapfrog-offset preservation (paper §2.3, §3.4.2).

2HOT's checkpoint files "maintain the leapfrog offset between position
and velocity", so a restart keeps 2nd-order accuracy instead of
degrading to a 1st-order initial step.  A checkpoint here is one SDF
file whose metadata records both epochs (a for positions, a_mom for
momenta) plus the cosmology and box, and whose body holds the particle
arrays.

Restart safety (GADGET-2 treats restart-file correctness as a
first-class contract; Springel 2005 §5.4): ``sim_config=`` records the
*full* :class:`~repro.simulation.driver.SimulationConfig` — engine,
errtol, expansion order, seed, softening, worker count, stepping knobs
— as ``simcfg_*`` metadata, and :func:`load_checkpoint` verifies those
entries against the resuming configuration, raising
:class:`CheckpointConfigMismatch` so a restart can never silently
change the physics.  Durable writes (atomic replace + per-column
checksums) are the default; see :mod:`repro.io.sdf`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..cosmology import CosmologyParams
from ..simulation.particles import ParticleSet
from .sdf import read_sdf, write_sdf

__all__ = [
    "CheckpointConfigMismatch",
    "save_checkpoint",
    "load_checkpoint",
    "sim_config_metadata",
    "verify_sim_config",
]

#: SimulationConfig fields excluded from ``simcfg_*`` metadata: the
#: cosmology is stored through ``params=`` (flat, self-describing), and
#: live objects / operational checkpoint knobs are not restart physics.
_SIMCFG_SKIP = frozenset({"cosmology", "health"})

#: fields whose mismatch is *not* an error on load: they steer when and
#: where checkpoints are written, never what is computed.
_SIMCFG_OPERATIONAL = frozenset({
    "checkpoint_dir", "checkpoint_every_steps", "checkpoint_interval_s",
    "checkpoint_mtbf_h", "checkpoint_keep",
})


class CheckpointConfigMismatch(ValueError):
    """The resuming configuration disagrees with the checkpoint's."""


def sim_config_metadata(config) -> dict:
    """Flatten a SimulationConfig into ``simcfg_*`` metadata entries."""
    md = {}
    for f in dataclasses.fields(config):
        if f.name in _SIMCFG_SKIP:
            continue
        v = getattr(config, f.name)
        if v is None:
            continue
        md[f"simcfg_{f.name}"] = v
    return md


def _coerce(stored, reference):
    """Parse a metadata value back to the type of the config field."""
    if reference is None:
        return stored
    if isinstance(reference, bool):
        return bool(int(stored)) if not isinstance(stored, str) else stored == "True"
    return type(reference)(stored)


def verify_sim_config(metadata: dict, config, ignore=()) -> None:
    """Raise :class:`CheckpointConfigMismatch` if ``config`` disagrees
    with the ``simcfg_*`` entries stored in ``metadata``.

    Operational checkpoint-scheduling fields are always exempt; pass
    ``ignore=("workers", ...)`` to permit further deliberate overrides.
    """
    ignore = set(ignore) | _SIMCFG_OPERATIONAL
    fields = {f.name: f for f in dataclasses.fields(config)}
    mismatches = []
    for key, stored in metadata.items():
        if not key.startswith("simcfg_"):
            continue
        name = key[len("simcfg_"):]
        if name in ignore or name not in fields:
            continue
        current = getattr(config, name)
        if _coerce(stored, current) != current:
            mismatches.append(f"{name}: checkpoint={stored!r} != run={current!r}")
    if mismatches:
        raise CheckpointConfigMismatch(
            "resuming configuration would change physics vs checkpoint: "
            + "; ".join(mismatches)
        )


def save_checkpoint(
    path,
    particles: ParticleSet,
    params: CosmologyParams | None = None,
    box_mpc_h: float | None = None,
    git_tag: str | None = None,
    extra_metadata: dict | None = None,
    sim_config=None,
    durable: bool = True,
) -> None:
    """Write a restartable snapshot, preserving any leapfrog offset.

    ``sim_config`` records the full simulation configuration (verified
    on load); ``durable`` (default) writes atomically with per-column
    checksums so a torn or bit-flipped file is detected at restart.
    """
    md = {
        "a": particles.a,
        "a_mom": particles.a_mom,
    }
    if params is not None:
        md.update(
            omega_m=params.omega_m,
            omega_b=params.omega_b,
            omega_de=params.omega_de,
            h=params.h,
            sigma8=params.sigma8,
            n_s=params.n_s,
            t_cmb=params.t_cmb,
            n_eff=params.n_eff,
            w0=params.w0,
            wa=params.wa,
            include_radiation=params.include_radiation,
            cosmology_name=params.name,
        )
    if box_mpc_h is not None:
        md["box_mpc_h"] = box_mpc_h
    if sim_config is not None:
        md.update(sim_config_metadata(sim_config))
    md.update(extra_metadata or {})
    write_sdf(
        path,
        columns={
            "pos": particles.pos,
            "mom": particles.mom,
            "mass": particles.mass,
            "ident": particles.ids,
        },
        metadata=md,
        git_tag=git_tag,
        checksums=durable,
        atomic=durable,
    )


def load_checkpoint(path, expect_config=None, verify: bool = True):
    """Read a checkpoint; returns (ParticleSet, metadata dict).

    Column checksums (when recorded) are always re-verified unless
    ``verify=False``.  With ``expect_config`` the stored ``simcfg_*``
    entries are checked against it and a physics-relevant disagreement
    raises :class:`CheckpointConfigMismatch`.
    """
    sdf = read_sdf(path, verify=verify)
    cols = sdf.columns
    pos = np.stack([cols["pos_x"], cols["pos_y"], cols["pos_z"]], axis=1)
    mom = np.stack([cols["mom_x"], cols["mom_y"], cols["mom_z"]], axis=1)
    ps = ParticleSet(
        pos=pos,
        mom=mom,
        mass=cols["mass"],
        ids=cols["ident"],
        a=float(sdf.metadata["a"]),
        a_mom=float(sdf.metadata["a_mom"]),
    )
    if expect_config is not None:
        verify_sim_config(sdf.metadata, expect_config)
    return ps, sdf.metadata
