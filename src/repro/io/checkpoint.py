"""Checkpointing with leapfrog-offset preservation (paper §2.3, §3.4.2).

2HOT's checkpoint files "maintain the leapfrog offset between position
and velocity", so a restart keeps 2nd-order accuracy instead of
degrading to a 1st-order initial step.  A checkpoint here is one SDF
file whose metadata records both epochs (a for positions, a_mom for
momenta) plus the cosmology and box, and whose body holds the particle
arrays.
"""

from __future__ import annotations

import numpy as np

from ..cosmology import CosmologyParams
from ..simulation.particles import ParticleSet
from .sdf import read_sdf, write_sdf

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(
    path,
    particles: ParticleSet,
    params: CosmologyParams | None = None,
    box_mpc_h: float | None = None,
    git_tag: str | None = None,
    extra_metadata: dict | None = None,
) -> None:
    """Write a restartable snapshot, preserving any leapfrog offset."""
    md = {
        "a": particles.a,
        "a_mom": particles.a_mom,
    }
    if params is not None:
        md.update(
            omega_m=params.omega_m,
            omega_b=params.omega_b,
            omega_de=params.omega_de,
            h=params.h,
            sigma8=params.sigma8,
            n_s=params.n_s,
            w0=params.w0,
            wa=params.wa,
            include_radiation=params.include_radiation,
            cosmology_name=params.name,
        )
    if box_mpc_h is not None:
        md["box_mpc_h"] = box_mpc_h
    md.update(extra_metadata or {})
    write_sdf(
        path,
        columns={
            "pos": particles.pos,
            "mom": particles.mom,
            "mass": particles.mass,
            "ident": particles.ids,
        },
        metadata=md,
        git_tag=git_tag,
    )


def load_checkpoint(path):
    """Read a checkpoint; returns (ParticleSet, metadata dict)."""
    sdf = read_sdf(path)
    cols = sdf.columns
    pos = np.stack([cols["pos_x"], cols["pos_y"], cols["pos_z"]], axis=1)
    mom = np.stack([cols["mom_x"], cols["mom_y"], cols["mom_z"]], axis=1)
    ps = ParticleSet(
        pos=pos,
        mom=mom,
        mass=cols["mass"],
        ids=cols["ident"],
        a=float(sdf.metadata["a"]),
        a_mom=float(sdf.metadata["a_mom"]),
    )
    return ps, sdf.metadata
