"""Vectorized open-addressing hash table for hcells (WS93 §"hashed" oct-tree).

HOT's defining data structure is a hash table mapping tree keys to
cell records ("hcells"), so that any cell — local or remote — can be
addressed by its key without pointer chasing.  This is a NumPy
implementation of the same idea: open addressing with linear probing,
the WS93 and-mask hash function ``h(k) = k & (2^b - 1)``, and fully
vectorized batch insert/lookup so millions of keys are hashed per
call.

The table is append-only (cells are never deleted during a tree's
lifetime), which keeps probing correct without tombstones.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HashTable"]

_EMPTY = np.uint64(0)  # 0 is never a valid WS93 key (placeholder bit)


class HashTable:
    """uint64 -> int64 hash map with linear probing.

    Parameters
    ----------
    capacity:
        Initial number of slots (rounded up to a power of two).  The
        table grows automatically beyond 70% load.
    """

    def __init__(self, capacity: int = 1024):
        nbits = max(4, int(np.ceil(np.log2(max(capacity, 2)))))
        self._nbits = nbits
        self._keys = np.zeros(1 << nbits, dtype=np.uint64)
        self._vals = np.full(1 << nbits, -1, dtype=np.int64)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        return len(self._keys)

    @property
    def load_factor(self) -> float:
        return self._count / self.capacity

    def _mask(self) -> np.uint64:
        return np.uint64(self.capacity - 1)

    def _grow(self) -> None:
        old_keys, old_vals = self._keys, self._vals
        self._nbits += 1
        self._keys = np.zeros(1 << self._nbits, dtype=np.uint64)
        self._vals = np.full(1 << self._nbits, -1, dtype=np.int64)
        self._count = 0
        live = old_keys != _EMPTY
        if np.any(live):
            self.insert(old_keys[live], old_vals[live])

    def insert(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert key->value pairs (duplicate keys overwrite).

        Keys must be non-zero (zero is the empty-slot sentinel, and no
        valid WS93 key is zero thanks to the placeholder bit).
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64).ravel()
        values = np.ascontiguousarray(values, dtype=np.int64).ravel()
        if keys.shape != values.shape:
            raise ValueError("keys and values must have the same length")
        if np.any(keys == _EMPTY):
            raise ValueError("key 0 is reserved for empty slots")
        while (self._count + len(keys)) > 0.7 * self.capacity:
            self._grow()
        # de-duplicate within the batch (keep last occurrence)
        _, last = np.unique(keys[::-1], return_index=True)
        sel = len(keys) - 1 - last
        keys = keys[sel]
        values = values[sel]
        slots = keys & self._mask()
        pending = np.arange(len(keys))
        while len(pending):
            s = slots[pending]
            occupant = self._keys[s]
            free = occupant == _EMPTY
            match = occupant == keys[pending]
            place = free | match
            if np.any(place):
                idx = pending[place]
                tgt = slots[idx]
                # collisions *within* the batch: two distinct new keys
                # mapping to the same free slot — keep the first, retry rest
                order = np.argsort(tgt, kind="stable")
                tgt_sorted = tgt[order]
                first = np.ones(len(tgt_sorted), dtype=bool)
                first[1:] = tgt_sorted[1:] != tgt_sorted[:-1]
                winners = idx[order[first]]
                was_new = self._keys[slots[winners]] == _EMPTY
                self._keys[slots[winners]] = keys[winners]
                self._vals[slots[winners]] = values[winners]
                self._count += int(np.count_nonzero(was_new))
                placed = np.zeros(len(keys), dtype=bool)
                placed[winners] = True
                pending = pending[~placed[pending]]
                if len(pending) == 0:
                    break
            # everyone still pending saw a slot holding a different key
            # (either a pre-existing entry or an in-batch race winner):
            # probe linearly onward
            slots[pending] = (slots[pending] + np.uint64(1)) & self._mask()

    def lookup(self, keys: np.ndarray, default: int = -1) -> np.ndarray:
        """Vectorized lookup; returns ``default`` for missing keys."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64).ravel()
        out = np.full(len(keys), default, dtype=np.int64)
        slots = keys & self._mask()
        pending = np.arange(len(keys))
        for _ in range(self.capacity):
            if len(pending) == 0:
                break
            s = slots[pending]
            occupant = self._keys[s]
            hit = occupant == keys[pending]
            miss = occupant == _EMPTY
            out[pending[hit]] = self._vals[s[hit]]
            done = hit | miss
            pending = pending[~done]
            slots[pending] = (slots[pending] + np.uint64(1)) & self._mask()
        return out

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized membership test."""
        return self.lookup(keys, default=-1) >= 0
