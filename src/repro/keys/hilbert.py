"""Hilbert space-filling curve keys (Skilling's transpose algorithm).

WS93/2HOT decompose the domain along a one-dimensional ordering of the
particle keys (§3.1).  Morton order is what the hashed tree uses
internally, but a Hilbert ordering produces more compact processor
domains (better surface-to-volume, hence less traversal
communication); the domain decomposition accepts either.  This is a
vectorized implementation of John Skilling's "Programming the Hilbert
curve" (2004) transpose algorithm for 3 dimensions.
"""

from __future__ import annotations

import numpy as np

from .morton import KEY_BITS, spread_bits

__all__ = ["hilbert_keys_from_positions", "hilbert_from_coords"]


def hilbert_from_coords(coords: np.ndarray, bits: int = KEY_BITS) -> np.ndarray:
    """Hilbert index of integer lattice coordinates.

    Parameters
    ----------
    coords:
        (N, 3) integer array with entries in [0, 2^bits).

    Returns
    -------
    (N,) uint64 Hilbert indices in [0, 2^(3*bits)).
    """
    x = np.array(coords, dtype=np.uint64).T.copy()  # (3, N), working copy
    if x.shape[0] != 3:
        raise ValueError("coords must be (N, 3)")
    n = 3
    m = np.uint64(1) << np.uint64(bits - 1)

    # --- inverse undo excess work (Skilling, TransposetoAxes inverse) ---
    q = m
    while q > np.uint64(1):
        p = q - np.uint64(1)
        for i in range(n):
            has = (x[i] & q) != 0
            # invert low bits of x[0] where bit set
            x[0] = np.where(has, x[0] ^ p, x[0])
            # exchange low bits of x[i] and x[0] where bit unset
            t = (x[0] ^ x[i]) & p
            t = np.where(has, np.uint64(0), t)
            x[0] ^= t
            x[i] ^= t
        q >>= np.uint64(1)
    # --- gray encode ---
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = np.zeros_like(x[0])
    q = m
    while q > np.uint64(1):
        t = np.where((x[n - 1] & q) != 0, t ^ (q - np.uint64(1)), t)
        q >>= np.uint64(1)
    for i in range(n):
        x[i] ^= t

    # interleave the transposed bits into a single index: bit b of axis i
    # contributes to index bit (b*3 + (2 - i))
    ix = spread_bits(x[0])
    iy = spread_bits(x[1])
    iz = spread_bits(x[2])
    return (ix << np.uint64(2)) | (iy << np.uint64(1)) | iz


def hilbert_keys_from_positions(
    pos: np.ndarray, box: float = 1.0, bits: int = KEY_BITS
) -> np.ndarray:
    """Hilbert keys for positions in [0, box)^3 (for domain decomposition)."""
    pos = np.asarray(pos, dtype=np.float64)
    scale = (1 << bits) / box
    q = np.floor(pos * scale).astype(np.int64)
    np.clip(q, 0, (1 << bits) - 1, out=q)
    return hilbert_from_coords(q.astype(np.uint64), bits)
