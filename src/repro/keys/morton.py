"""WS93 hashed oct-tree keys (Morton / Z-order with a placeholder bit).

The Warren-Salmon key construction maps a position in the unit cube to
a 64-bit integer: each coordinate is quantised to ``KEY_BITS`` (21)
bits, the bits of (z, y, x) are interleaved most-significant first,
and a single *placeholder* 1-bit is prepended.  The placeholder makes
every tree level addressable: the root key is 1, the key of a cell's
parent is ``key >> 3``, its children are ``key*8 + 0..7``, and the
level of a key is (bit_length - 1) / 3.  Sorting particles by key is
simultaneously a depth-first tree order and a 1-d space-filling-curve
order — the basis of both the tree build (§3.2) and the domain
decomposition (§3.1).

All routines are vectorized bit manipulations on ``uint64`` arrays
(the magic-number spread used in HOT's C implementation).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KEY_BITS",
    "ROOT_KEY",
    "spread_bits",
    "compact_bits",
    "keys_from_positions",
    "positions_from_keys",
    "key_level",
    "parent_key",
    "ancestor_key",
    "children_keys",
    "cell_geometry",
]

#: quantisation bits per dimension (3 * 21 = 63 key bits + placeholder)
KEY_BITS = 21
ROOT_KEY = np.uint64(1)

_M = [
    np.uint64(0x1FFFFF),
    np.uint64(0x1F00000000FFFF),
    np.uint64(0x1F0000FF0000FF),
    np.uint64(0x100F00F00F00F00F),
    np.uint64(0x10C30C30C30C30C3),
    np.uint64(0x1249249249249249),
]


def spread_bits(v: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each value so they occupy every 3rd bit."""
    x = np.asarray(v, dtype=np.uint64) & _M[0]
    x = (x | (x << np.uint64(32))) & _M[1]
    x = (x | (x << np.uint64(16))) & _M[2]
    x = (x | (x << np.uint64(8))) & _M[3]
    x = (x | (x << np.uint64(4))) & _M[4]
    x = (x | (x << np.uint64(2))) & _M[5]
    return x


def compact_bits(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`spread_bits`."""
    x = np.asarray(v, dtype=np.uint64) & _M[5]
    x = (x | (x >> np.uint64(2))) & _M[4]
    x = (x | (x >> np.uint64(4))) & _M[3]
    x = (x | (x >> np.uint64(8))) & _M[2]
    x = (x | (x >> np.uint64(16))) & _M[1]
    x = (x | (x >> np.uint64(32))) & _M[0]
    return x


def keys_from_positions(pos: np.ndarray, box: float = 1.0) -> np.ndarray:
    """Full-depth keys for positions in [0, box)^3.

    Positions exactly at the upper edge are clamped into the last cell
    rather than wrapped, so callers may pass values equal to ``box``
    produced by floating-point round-off.
    """
    pos = np.asarray(pos, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("positions must be (N, 3)")
    scale = (1 << KEY_BITS) / box
    q = np.floor(pos * scale).astype(np.int64)
    np.clip(q, 0, (1 << KEY_BITS) - 1, out=q)
    ix = spread_bits(q[:, 0].astype(np.uint64))
    iy = spread_bits(q[:, 1].astype(np.uint64))
    iz = spread_bits(q[:, 2].astype(np.uint64))
    key = (iz << np.uint64(2)) | (iy << np.uint64(1)) | ix
    return key | (np.uint64(1) << np.uint64(3 * KEY_BITS))


def positions_from_keys(keys: np.ndarray, box: float = 1.0) -> np.ndarray:
    """Centers of the full-depth cells addressed by ``keys``."""
    keys = np.asarray(keys, dtype=np.uint64)
    body = keys & ~(np.uint64(1) << np.uint64(3 * KEY_BITS))
    ix = compact_bits(body)
    iy = compact_bits(body >> np.uint64(1))
    iz = compact_bits(body >> np.uint64(2))
    cell = box / (1 << KEY_BITS)
    out = np.empty(keys.shape + (3,), dtype=np.float64)
    out[..., 0] = (ix.astype(np.float64) + 0.5) * cell
    out[..., 1] = (iy.astype(np.float64) + 0.5) * cell
    out[..., 2] = (iz.astype(np.float64) + 0.5) * cell
    return out


def key_level(keys: np.ndarray) -> np.ndarray:
    """Tree level of each key (root = 0, bodies = KEY_BITS)."""
    keys = np.asarray(keys, dtype=np.uint64)
    # bit_length - 1 must be divisible by 3 for valid keys
    nbits = np.zeros(keys.shape, dtype=np.int64)
    k = keys.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        s = np.uint64(shift)
        big = k >= (np.uint64(1) << s)
        nbits += np.where(big, shift, 0)
        k = np.where(big, k >> s, k)
    return nbits // 3


def parent_key(keys: np.ndarray) -> np.ndarray:
    """Key of the parent cell (root's parent is 0, an invalid key)."""
    return np.asarray(keys, dtype=np.uint64) >> np.uint64(3)


def ancestor_key(keys: np.ndarray, level: int) -> np.ndarray:
    """Key of the level-``level`` ancestor of (deeper) keys."""
    keys = np.asarray(keys, dtype=np.uint64)
    lv = key_level(keys)
    shift = (3 * (lv - level)).astype(np.uint64)
    return keys >> shift


def children_keys(key) -> np.ndarray:
    """The 8 child keys of a cell key."""
    key = np.uint64(key)
    return (key << np.uint64(3)) | np.arange(8, dtype=np.uint64)


def cell_geometry(keys: np.ndarray, box: float = 1.0):
    """Geometric (center, side) of the cells addressed by ``keys``.

    Keys may be at any level; the level is inferred from the
    placeholder bit.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    lv = key_level(keys)
    side = box / (1 << lv).astype(np.float64)
    body = keys ^ (np.uint64(1) << (np.uint64(3) * lv.astype(np.uint64)))
    ix = compact_bits(body)
    iy = compact_bits(body >> np.uint64(1))
    iz = compact_bits(body >> np.uint64(2))
    center = np.empty(keys.shape + (3,), dtype=np.float64)
    center[..., 0] = (ix.astype(np.float64) + 0.5) * side
    center[..., 1] = (iy.astype(np.float64) + 0.5) * side
    center[..., 2] = (iz.astype(np.float64) + 0.5) * side
    return center, side
