"""Space-filling-curve keys and the hashed cell table (paper §3.1-3.2)."""

from .hashtable import HashTable
from .hilbert import hilbert_from_coords, hilbert_keys_from_positions
from .morton import (
    KEY_BITS,
    ROOT_KEY,
    ancestor_key,
    cell_geometry,
    children_keys,
    compact_bits,
    key_level,
    keys_from_positions,
    parent_key,
    positions_from_keys,
    spread_bits,
)

__all__ = [
    "KEY_BITS",
    "ROOT_KEY",
    "HashTable",
    "ancestor_key",
    "cell_geometry",
    "children_keys",
    "compact_bits",
    "hilbert_from_coords",
    "hilbert_keys_from_positions",
    "key_level",
    "keys_from_positions",
    "parent_key",
    "positions_from_keys",
    "spread_bits",
]
