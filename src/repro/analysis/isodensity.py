"""Isodensity halo finding (paper §3.4.5, the second mode of ``vfind``).

"We use vfind ... to perform both friend-of-friends (FOF) and
isodensity halo finding."  Isodensity grouping links only particles
whose local density exceeds a threshold, which cuts the linking
bridges that make FOF merge distinct halos through filaments.

Implementation: kNN density estimate (SPH-like: rho_i ~ k / V(r_k)),
keep particles above ``threshold`` x mean density, group *those* with
a FOF at the same linking length, then attach each remaining particle
to the group of its nearest dense neighbour within the linking length
(or leave it unbound).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.spatial import cKDTree

__all__ = ["knn_density", "isodensity_halos", "IsodensityResult"]


def knn_density(
    pos: np.ndarray, k: int = 16, box: float = 1.0, mass: np.ndarray | None = None
) -> np.ndarray:
    """SPH-flavoured kNN density estimate (periodic)."""
    pos = np.asarray(pos, dtype=np.float64) % box
    n = len(pos)
    if mass is None:
        mass = np.ones(n)
    k_eff = min(k + 1, n)
    tree = cKDTree(pos, boxsize=box)
    d, idx = tree.query(pos, k=k_eff)
    r = np.maximum(d[:, -1], 1e-12)
    enclosed = np.take(np.asarray(mass, dtype=np.float64), idx).sum(axis=1)
    return enclosed / (4.0 / 3.0 * np.pi * r**3)


@dataclass
class IsodensityResult:
    """Isodensity grouping output (mirrors FOFResult's core fields)."""

    labels: np.ndarray
    n_groups: int
    sizes: np.ndarray
    centers: np.ndarray
    masses: np.ndarray
    dense_fraction: float


def isodensity_halos(
    pos: np.ndarray,
    mass: np.ndarray,
    threshold: float = 80.0,
    linking_length: float = 0.2,
    box: float = 1.0,
    min_members: int = 20,
    k_density: int = 16,
) -> IsodensityResult:
    """Group particles above an isodensity threshold.

    Parameters
    ----------
    threshold:
        Density threshold in units of the mean density (80x mean is the
        classic virialized-region scale).
    linking_length:
        In mean-interparticle-separation units, applied to the dense
        subset and to the attachment step.
    """
    pos = np.asarray(pos, dtype=np.float64) % box
    m = np.asarray(mass, dtype=np.float64)
    n = len(pos)
    rho = knn_density(pos, k=k_density, box=box, mass=m)
    rho_mean = m.sum() / box**3
    dense = rho > threshold * rho_mean
    labels = np.full(n, -1, dtype=np.int64)
    if not np.any(dense):
        return IsodensityResult(
            labels=labels, n_groups=0, sizes=np.empty(0, dtype=np.int64),
            centers=np.empty((0, 3)), masses=np.empty(0), dense_fraction=0.0,
        )
    ll = linking_length * box / n ** (1.0 / 3.0)
    didx = np.flatnonzero(dense)
    dtree = cKDTree(pos[didx], boxsize=box)
    pairs = dtree.query_pairs(ll, output_type="ndarray")
    graph = sparse.coo_matrix(
        (np.ones(len(pairs)), (pairs[:, 0], pairs[:, 1])),
        shape=(len(didx), len(didx)),
    )
    n_comp, raw = sparse.csgraph.connected_components(graph, directed=False)
    counts = np.bincount(raw, minlength=n_comp)
    keep = np.flatnonzero(counts >= min_members)
    order = keep[np.argsort(counts[keep])[::-1]]
    remap = np.full(n_comp, -1, dtype=np.int64)
    remap[order] = np.arange(len(order))
    labels[didx] = remap[raw]

    # attach non-dense particles to the nearest dense neighbour's group
    loose = np.flatnonzero(~dense)
    if len(loose) and len(order):
        d, j = dtree.query(pos[loose], k=1)
        near = d <= ll
        labels[loose[near]] = labels[didx[j[near]]]

    n_groups = len(order)
    sizes = np.bincount(labels[labels >= 0], minlength=n_groups)
    centers = np.zeros((n_groups, 3))
    masses = np.zeros(n_groups)
    if n_groups:
        grouped = labels >= 0
        masses = np.bincount(labels[grouped], weights=m[grouped], minlength=n_groups)
        for ax in range(3):
            theta = pos[:, ax] / box * 2 * np.pi
            c = np.bincount(
                labels[grouped], weights=(m * np.cos(theta))[grouped],
                minlength=n_groups,
            )
            s = np.bincount(
                labels[grouped], weights=(m * np.sin(theta))[grouped],
                minlength=n_groups,
            )
            centers[:, ax] = (np.arctan2(s, c) % (2 * np.pi)) / (2 * np.pi) * box
    return IsodensityResult(
        labels=labels,
        n_groups=n_groups,
        sizes=sizes,
        centers=centers,
        masses=masses,
        dense_fraction=float(dense.mean()),
    )
