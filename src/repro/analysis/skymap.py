"""Light-cone sky projections (paper Fig. 1).

Figure 1 shows 2HOT light-cone output as HEALPix Mollweide maps of
projected dark-matter density, compared against Planck.  Without the
HEALPix library this module provides the same two ingredients:

* an equal-area spherical pixelization (latitude rings with
  longitude counts proportional to cos(latitude) — not HEALPix's
  scheme, but equal-area and sufficient for density statistics),
* projection of a particle snapshot onto the sphere around an
  observer, weighting each particle into its pixel, plus Mollweide
  (x, y) coordinates for plotting.

The quantitative check mirrors the paper's caption: "the statistical
measurements of the smaller details match" — tests compare the
variance of the projected map against expectations rather than pixel
values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EqualAreaSphere", "project_to_sky", "mollweide_xy"]


class EqualAreaSphere:
    """Equal-area ring pixelization of the unit sphere.

    ``n_rings`` latitude rings equally spaced in z = sin(latitude) —
    which makes every ring's solid angle exactly 2 pi dz — each divided
    into the same number (2 n_rings) of longitude pixels, so every
    pixel subtends *exactly* the same solid angle.  (Pixels become
    elongated near the poles, which is irrelevant for the density
    statistics Fig. 1 compares; HEALPix fixes the aspect ratio at the
    cost of a much more intricate index scheme.)
    """

    def __init__(self, n_rings: int = 32):
        self.n_rings = int(n_rings)
        z_edges = np.linspace(-1.0, 1.0, self.n_rings + 1)
        self.z_edges = z_edges
        self.ring_npix = np.full(self.n_rings, 2 * self.n_rings, dtype=int)
        self.ring_start = np.concatenate([[0], np.cumsum(self.ring_npix)[:-1]])
        self.n_pixels = int(self.ring_npix.sum())

    def pixel_of(self, unit_vec: np.ndarray) -> np.ndarray:
        """Pixel index of unit vectors (N, 3)."""
        v = np.asarray(unit_vec, dtype=np.float64)
        z = np.clip(v[:, 2], -1.0, 1.0 - 1e-15)
        ring = np.clip(
            np.searchsorted(self.z_edges, z, side="right") - 1, 0, self.n_rings - 1
        )
        phi = np.arctan2(v[:, 1], v[:, 0]) % (2 * np.pi)
        npix = self.ring_npix[ring]
        j = np.minimum((phi / (2 * np.pi) * npix).astype(int), npix - 1)
        return self.ring_start[ring] + j

    def pixel_centers(self) -> np.ndarray:
        """Unit vectors of all pixel centers, (n_pixels, 3)."""
        out = np.empty((self.n_pixels, 3))
        z_mid = 0.5 * (self.z_edges[:-1] + self.z_edges[1:])
        for i in range(self.n_rings):
            npix = self.ring_npix[i]
            s = self.ring_start[i]
            phi = (np.arange(npix) + 0.5) / npix * 2 * np.pi
            st = np.sqrt(1 - z_mid[i] ** 2)
            out[s : s + npix, 0] = st * np.cos(phi)
            out[s : s + npix, 1] = st * np.sin(phi)
            out[s : s + npix, 2] = z_mid[i]
        return out


def project_to_sky(
    pos: np.ndarray,
    mass: np.ndarray,
    observer: np.ndarray,
    sphere: EqualAreaSphere,
    box: float = 1.0,
    r_min: float = 0.05,
    r_max: float = 0.5,
) -> np.ndarray:
    """Project particles in a radial shell onto sky pixels.

    Returns the density-contrast map (mass per pixel / mean - 1).
    Periodic minimum-image geometry around the observer.
    """
    pos = np.asarray(pos, dtype=np.float64)
    d = pos - np.asarray(observer, dtype=np.float64)
    d -= np.round(d / box) * box
    r = np.linalg.norm(d, axis=1)
    sel = (r >= r_min) & (r <= r_max)
    if not np.any(sel):
        return np.zeros(sphere.n_pixels)
    u = d[sel] / r[sel][:, None]
    pix = sphere.pixel_of(u)
    m = np.asarray(mass, dtype=np.float64)[sel]
    sky = np.bincount(pix, weights=m, minlength=sphere.n_pixels)
    mean = sky.sum() / sphere.n_pixels
    return sky / mean - 1.0


def mollweide_xy(unit_vec: np.ndarray, iterations: int = 20) -> np.ndarray:
    """Mollweide projection coordinates of unit vectors (for plotting).

    Solves 2 theta + sin(2 theta) = pi sin(lat) by Newton iteration;
    returns (N, 2) with x in [-2 sqrt2, 2 sqrt2], y in [-sqrt2, sqrt2].
    """
    v = np.asarray(unit_vec, dtype=np.float64)
    lat = np.arcsin(np.clip(v[:, 2], -1, 1))
    lon = np.arctan2(v[:, 1], v[:, 0])
    theta = lat.copy()
    target = np.pi * np.sin(lat)
    for _ in range(iterations):
        f = 2 * theta + np.sin(2 * theta) - target
        fp = 2 + 2 * np.cos(2 * theta)
        step = np.where(np.abs(fp) > 1e-12, f / np.maximum(fp, 1e-12), 0.0)
        theta -= step
    x = 2 * np.sqrt(2) / np.pi * lon * np.cos(theta)
    y = np.sqrt(2) * np.sin(theta)
    return np.stack([x, y], axis=1)
