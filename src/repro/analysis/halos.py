"""Halo finding: friends-of-friends and spherical overdensity (paper §3.4.5).

The paper's pipeline identifies halos with ``vfind`` (FOF and
isodensity) and later ROCKSTAR, and reports the Fig. 8 mass function
with spherical-overdensity (SO) masses M200 (Delta = 200 x mean
density) because "a more observationally relevant spherical
overdensity mass definition" is what Tinker08 calibrates.

* :func:`fof_halos` — friends-of-friends with linking length
  b x (mean interparticle separation), periodic, built on a
  cKDTree pair query plus sparse connected components.
* :func:`so_masses` — spherical overdensity mass about each halo's
  densest region: grow a sphere until the enclosed mean density falls
  below Delta x rho_mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.spatial import cKDTree

__all__ = ["FOFResult", "fof_halos", "so_masses", "HaloCatalog"]


@dataclass
class FOFResult:
    """Friends-of-friends output.

    ``labels`` maps each particle to a group id (-1 for isolated
    particles below ``min_members``); groups are ordered by decreasing
    membership.
    """

    labels: np.ndarray
    n_groups: int
    sizes: np.ndarray  # per-group member counts
    centers: np.ndarray  # per-group center of mass (periodic-aware), (G, 3)
    masses: np.ndarray  # per-group total FOF mass


@dataclass
class HaloCatalog:
    """SO catalog: centers, M_Delta masses and radii (box units)."""

    centers: np.ndarray
    m_delta: np.ndarray
    r_delta: np.ndarray
    n_members: np.ndarray
    delta: float


def fof_halos(
    pos: np.ndarray,
    mass: np.ndarray,
    linking_length: float = 0.2,
    box: float = 1.0,
    min_members: int = 20,
) -> FOFResult:
    """Periodic friends-of-friends groups.

    Parameters
    ----------
    linking_length:
        In units of the mean interparticle separation n^{-1/3}
        (b = 0.2 is the standard choice).
    min_members:
        Groups below this size get label -1 (field particles).
    """
    pos = np.asarray(pos, dtype=np.float64) % box
    n = len(pos)
    ll = linking_length * box / n ** (1.0 / 3.0)
    tree = cKDTree(pos, boxsize=box)
    pairs = tree.query_pairs(ll, output_type="ndarray")
    graph = sparse.coo_matrix(
        (np.ones(len(pairs)), (pairs[:, 0], pairs[:, 1])), shape=(n, n)
    )
    n_comp, raw = sparse.csgraph.connected_components(graph, directed=False)
    counts = np.bincount(raw, minlength=n_comp)
    # keep groups with enough members, order by decreasing size
    keep = np.flatnonzero(counts >= min_members)
    order = keep[np.argsort(counts[keep])[::-1]]
    remap = np.full(n_comp, -1, dtype=np.int64)
    remap[order] = np.arange(len(order))
    labels = remap[raw]

    n_groups = len(order)
    sizes = counts[order]
    centers = np.zeros((n_groups, 3))
    masses = np.zeros(n_groups)
    m = np.asarray(mass, dtype=np.float64)
    if n_groups:
        masses = np.bincount(
            labels[labels >= 0], weights=m[labels >= 0], minlength=n_groups
        )
        # periodic-aware center of mass: average unit-circle phases
        for ax in range(3):
            theta = pos[:, ax] / box * 2 * np.pi
            grouped = labels >= 0
            c = np.bincount(
                labels[grouped], weights=(m * np.cos(theta))[grouped], minlength=n_groups
            )
            s = np.bincount(
                labels[grouped], weights=(m * np.sin(theta))[grouped], minlength=n_groups
            )
            centers[:, ax] = (np.arctan2(s, c) % (2 * np.pi)) / (2 * np.pi) * box
    return FOFResult(
        labels=labels, n_groups=n_groups, sizes=sizes, centers=centers, masses=masses
    )


def so_masses(
    pos: np.ndarray,
    mass: np.ndarray,
    seeds: np.ndarray,
    delta: float = 200.0,
    box: float = 1.0,
    rho_mean: float | None = None,
    r_max_frac: float = 0.25,
) -> HaloCatalog:
    """Spherical-overdensity masses about seed centers.

    For each seed, particles are sorted by (periodic) radius and the
    enclosed density profile rho(<r) = M(<r) / (4/3 pi r^3) is scanned
    outward; R_Delta is the largest radius where it still exceeds
    Delta x rho_mean, and M_Delta the mass inside.

    Seeds whose central density never reaches the threshold are
    dropped.  The center is refined once by recentering on the
    center of mass of the inner third of the initial sphere (a cheap
    stand-in for ROCKSTAR's density maximum).
    """
    pos = np.asarray(pos, dtype=np.float64) % box
    m = np.asarray(mass, dtype=np.float64)
    if rho_mean is None:
        rho_mean = m.sum() / box**3
    tree = cKDTree(pos, boxsize=box)
    thresh = delta * rho_mean

    centers, m_out, r_out, n_out = [], [], [], []
    r_max = r_max_frac * box
    for seed in np.atleast_2d(seeds):
        center = np.asarray(seed, dtype=np.float64) % box
        for _pass in range(2):
            idx = tree.query_ball_point(center, r_max)
            if not idx:
                break
            idx = np.asarray(idx)
            d = pos[idx] - center
            d -= np.round(d / box) * box
            r = np.sqrt(np.einsum("ij,ij->i", d, d))
            order = np.argsort(r)
            r_sorted = r[order]
            csum = np.cumsum(m[idx][order])
            if _pass == 0:
                # recenter on the inner particles
                inner = order[: max(8, len(order) // 10)]
                w = m[idx][inner]
                center = (center + (d[inner] * w[:, None]).sum(0) / w.sum()) % box
        else:
            pass
        if not len(idx):
            continue
        with np.errstate(divide="ignore", invalid="ignore"):
            rho_enc = csum / (4.0 / 3.0 * np.pi * np.maximum(r_sorted, 1e-12) ** 3)
        above = np.flatnonzero(rho_enc[5:] > thresh) + 5  # skip tiny-r noise
        if len(above) == 0:
            continue
        i = above[-1]
        centers.append(center)
        m_out.append(csum[i])
        r_out.append(r_sorted[i])
        n_out.append(i + 1)
    return HaloCatalog(
        centers=np.array(centers).reshape(-1, 3),
        m_delta=np.asarray(m_out),
        r_delta=np.asarray(r_out),
        n_members=np.asarray(n_out, dtype=np.int64),
        delta=delta,
    )
