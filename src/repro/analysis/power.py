"""Matter power spectrum estimation (the diagnostic of paper Fig. 7).

CIC density estimation on a mesh, FFT, window deconvolution, shot-noise
subtraction and spherical binning.  "The power spectrum is a sensitive
diagnostic of errors at all spatial scales, and can detect deficiencies
in both the time integration and force accuracy" (§5) — every Fig. 7
curve is a ratio of outputs of this estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gravity.pm import ParticleMesh

__all__ = ["PowerSpectrumResult", "measure_power"]


@dataclass
class PowerSpectrumResult:
    """Binned P(k) estimate."""

    k: np.ndarray  # bin-mean wavenumber [h/Mpc]
    power: np.ndarray  # P(k) [(Mpc/h)^3]
    n_modes: np.ndarray  # modes per bin
    shot_noise: float  # subtracted white-noise level [(Mpc/h)^3]

    def ratio_to(self, other: "PowerSpectrumResult") -> np.ndarray:
        """P/P_ref on the shared bins (Fig. 7's y-axis)."""
        if len(self.k) != len(other.k):
            raise ValueError("binning mismatch")
        with np.errstate(divide="ignore", invalid="ignore"):
            return self.power / other.power


def measure_power(
    pos: np.ndarray,
    box_mpc_h: float,
    ngrid: int = 128,
    n_bins: int | None = None,
    subtract_shot_noise: bool = True,
    mass: np.ndarray | None = None,
) -> PowerSpectrumResult:
    """Estimate P(k) of a particle distribution.

    Parameters
    ----------
    pos:
        (N, 3) positions in [0, 1)^3 (unit box; ``box_mpc_h`` supplies
        the physical scale).
    ngrid:
        FFT mesh size (Nyquist k = pi ngrid / box).
    n_bins:
        Linear k bins up to Nyquist (default ngrid // 2).
    """
    pos = np.asarray(pos, dtype=np.float64)
    n_part = len(pos)
    if mass is None:
        mass = np.ones(n_part)
    pm = ParticleMesh(ngrid, 1.0)
    grid = pm.deposit(pos % 1.0, mass / np.sum(mass))  # normalized mass
    mean = grid.mean()
    delta = grid / mean - 1.0
    dk = np.fft.rfftn(delta)

    n = ngrid
    kx = np.fft.fftfreq(n, d=1.0 / n) * 2.0 * np.pi / box_mpc_h
    kz = np.fft.rfftfreq(n, d=1.0 / n) * 2.0 * np.pi / box_mpc_h
    KX = kx[:, None, None]
    KY = kx[None, :, None]
    KZ = kz[None, None, :]
    kmag = np.sqrt(KX**2 + KY**2 + KZ**2)

    # deconvolve the CIC window (one deposit)
    def sinc(kk):
        return np.sinc(kk * box_mpc_h / (2.0 * np.pi * n))

    w = sinc(KX) * sinc(KY) * sinc(KZ)
    dk = dk / np.where(w == 0, 1.0, w) ** 2

    vol = box_mpc_h**3
    pk3d = np.abs(dk) ** 2 * vol / n**6

    # rfft stores half the modes: weight the interior kz planes twice
    weight = np.full(dk.shape, 2.0)
    weight[:, :, 0] = 1.0
    if n % 2 == 0:
        weight[:, :, -1] = 1.0

    knyq = np.pi * n / box_mpc_h
    nb = n_bins or (n // 2)
    edges = np.linspace(0.0, knyq, nb + 1)
    flat_k = kmag.ravel()
    flat_p = pk3d.ravel()
    flat_w = weight.ravel()
    keep = flat_k > 0
    idx = np.digitize(flat_k[keep], edges) - 1
    good = (idx >= 0) & (idx < nb)
    idx = idx[good]
    pk_sum = np.bincount(idx, weights=(flat_p * flat_w)[keep][good], minlength=nb)
    k_sum = np.bincount(idx, weights=(flat_k * flat_w)[keep][good], minlength=nb)
    n_modes = np.bincount(idx, weights=flat_w[keep][good], minlength=nb)
    with np.errstate(invalid="ignore", divide="ignore"):
        pk = pk_sum / n_modes
        kmean = k_sum / n_modes
    shot = vol / n_part
    if subtract_shot_noise:
        pk = pk - shot
    sel = n_modes > 0
    return PowerSpectrumResult(
        k=kmean[sel], power=pk[sel], n_modes=n_modes[sel], shot_noise=shot
    )
