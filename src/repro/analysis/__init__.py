"""Analysis pipeline: power spectra, halos, mass functions, sky maps."""

from .halos import FOFResult, HaloCatalog, fof_halos, so_masses
from .isodensity import IsodensityResult, isodensity_halos, knn_density
from .massfunction import (
    MassFunctionResult,
    TinkerMassFunction,
    WarrenMassFunction,
    binned_mass_function,
    press_schechter_f,
)
from .power import PowerSpectrumResult, measure_power
from .skymap import EqualAreaSphere, mollweide_xy, project_to_sky
from .spheres import counts_in_spheres_variance

__all__ = [
    "EqualAreaSphere",
    "FOFResult",
    "IsodensityResult",
    "HaloCatalog",
    "MassFunctionResult",
    "PowerSpectrumResult",
    "TinkerMassFunction",
    "WarrenMassFunction",
    "binned_mass_function",
    "counts_in_spheres_variance",
    "fof_halos",
    "isodensity_halos",
    "knn_density",
    "measure_power",
    "mollweide_xy",
    "press_schechter_f",
    "project_to_sky",
    "so_masses",
]
