"""Halo mass function: measurement and theory fits (paper §6, Fig. 8).

Figure 8 plots N(M)/Tinker08 for suites of simulations, finding the
Tinker08 fit ~5% low at 1e15 Msun/h for WMAP1 (its calibration
cosmology) and 10-15% low for Planck 2013 (non-universality).  This
module provides:

* :func:`binned_mass_function` — dn/dlnM from a halo catalog,
* :class:`TinkerMassFunction` — the Tinker et al. (2008) SO fit with
  its Delta-interpolated parameters and redshift evolution,
* :class:`WarrenMassFunction` — the Warren et al. (2006) FOF fit (the
  paper's own earlier 10%-level calibration, §6),
* :func:`press_schechter` — the classic baseline.

All fits are expressed as multiplicity functions f(sigma) with

    dn/dM = f(sigma) (rho_m/M) dln(1/sigma)/dM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cosmology import CosmologyParams, LinearPower

__all__ = [
    "binned_mass_function",
    "TinkerMassFunction",
    "WarrenMassFunction",
    "press_schechter_f",
    "MassFunctionResult",
]


@dataclass
class MassFunctionResult:
    """Binned dn/dlnM measurement."""

    m_center: np.ndarray  # geometric bin centers [Msun/h]
    dn_dlnm: np.ndarray  # [h^3/Mpc^3]
    counts: np.ndarray
    poisson_err: np.ndarray  # fractional


def binned_mass_function(
    masses_msun_h: np.ndarray,
    volume_mpc_h: float,
    n_bins: int = 12,
    m_range: tuple | None = None,
) -> MassFunctionResult:
    """Count halos into logarithmic mass bins."""
    m = np.asarray(masses_msun_h, dtype=np.float64)
    m = m[m > 0]
    if m_range is None:
        m_range = (m.min() * 0.99, m.max() * 1.01)
    edges = np.geomspace(m_range[0], m_range[1], n_bins + 1)
    counts, _ = np.histogram(m, bins=edges)
    dlnm = np.diff(np.log(edges))
    centers = np.sqrt(edges[:-1] * edges[1:])
    with np.errstate(divide="ignore", invalid="ignore"):
        err = 1.0 / np.sqrt(counts)
    return MassFunctionResult(
        m_center=centers,
        dn_dlnm=counts / dlnm / volume_mpc_h**3,
        counts=counts,
        poisson_err=err,
    )


def press_schechter_f(sigma):
    """Press-Schechter multiplicity f(sigma) with delta_c = 1.686."""
    nu = 1.686 / np.asarray(sigma, dtype=np.float64)
    return np.sqrt(2.0 / np.pi) * nu * np.exp(-0.5 * nu * nu)


class WarrenMassFunction:
    """Warren et al. (2006) FOF(0.2) fit:
    f = 0.7234 (sigma^-1.625 + 0.2538) exp(-1.1982 / sigma^2)."""

    def f(self, sigma):
        s = np.asarray(sigma, dtype=np.float64)
        return 0.7234 * (s**-1.625 + 0.2538) * np.exp(-1.1982 / s**2)

    def dn_dlnm(self, params: CosmologyParams, m_msun_h, a: float = 1.0,
                power: LinearPower | None = None):
        return _dn_dlnm(self, params, m_msun_h, a, power)


# Tinker et al. 2008, Table 2 parameter rows (Delta_mean, A, a, b, c)
_TINKER_TABLE = np.array(
    [
        [200, 0.186, 1.47, 2.57, 1.19],
        [300, 0.200, 1.52, 2.25, 1.27],
        [400, 0.212, 1.56, 2.05, 1.34],
        [600, 0.218, 1.61, 1.87, 1.45],
        [800, 0.248, 1.87, 1.59, 1.58],
        [1200, 0.255, 2.13, 1.51, 1.80],
        [1600, 0.260, 2.30, 1.46, 1.97],
        [2400, 0.260, 2.53, 1.44, 2.24],
        [3200, 0.260, 2.66, 1.41, 2.44],
    ]
)


class TinkerMassFunction:
    """Tinker et al. (2008) spherical-overdensity mass function.

    f(sigma) = A [ (sigma/b)^-a + 1 ] exp(-c/sigma^2), with parameters
    spline-interpolated in log(Delta) and the published redshift
    evolution: A(z) = A0 (1+z)^-0.14, a(z) = a0 (1+z)^-0.06,
    b(z) = b0 (1+z)^-alpha, log10 alpha(Delta) = -(0.75/log10(Delta/75))^1.2.
    """

    def __init__(self, delta: float = 200.0):
        self.delta = float(delta)
        logd = np.log10(_TINKER_TABLE[:, 0])
        x = np.log10(self.delta)
        self.a0 = np.interp(x, logd, _TINKER_TABLE[:, 1])
        self.aa0 = np.interp(x, logd, _TINKER_TABLE[:, 2])
        self.b0 = np.interp(x, logd, _TINKER_TABLE[:, 3])
        self.c0 = np.interp(x, logd, _TINKER_TABLE[:, 4])

    def parameters(self, z: float = 0.0):
        alpha = 10 ** (-((0.75 / np.log10(self.delta / 75.0)) ** 1.2))
        big_a = self.a0 * (1 + z) ** -0.14
        small_a = self.aa0 * (1 + z) ** -0.06
        b = self.b0 * (1 + z) ** -alpha
        return big_a, small_a, b, self.c0

    def f(self, sigma, z: float = 0.0):
        big_a, small_a, b, c = self.parameters(z)
        s = np.asarray(sigma, dtype=np.float64)
        return big_a * ((s / b) ** -small_a + 1.0) * np.exp(-c / s**2)

    def dn_dlnm(self, params: CosmologyParams, m_msun_h, a: float = 1.0,
                power: LinearPower | None = None):
        return _dn_dlnm(self, params, m_msun_h, a, power)


def _dn_dlnm(fit, params: CosmologyParams, m_msun_h, a: float, power):
    """dn/dlnM = f(sigma) (rho_m / M) |dln sigma / dln M|."""
    lp = power or LinearPower(params)
    m = np.atleast_1d(np.asarray(m_msun_h, dtype=np.float64))
    sigma = lp.sigma_m(m, a=a)
    dls = lp.dlnsigma_dlnm(m)
    z = 1.0 / a - 1.0
    try:
        f = fit.f(sigma, z)
    except TypeError:
        f = fit.f(sigma)
    rho = params.rho_mean0
    return f * rho / m * np.abs(dls)
