"""Counts-in-spheres variance (paper eq. 3 measured on particles).

The background-subtraction argument of §2.2.1 rests on the smallness
of the density variance in large spheres: sigma(100 Mpc/h) ~ 0.068
today and 50-100x less at the start of a run.  This module measures
that variance directly on a particle snapshot (for cross-checking the
linear-theory prediction of :meth:`repro.cosmology.LinearPower.sigma_r`).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["counts_in_spheres_variance"]


def counts_in_spheres_variance(
    pos: np.ndarray,
    radius: float,
    box: float = 1.0,
    n_samples: int = 256,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """RMS fractional mass fluctuation in randomly placed spheres.

    Returns (sigma, sigma_error) where sigma is the standard deviation
    of N_sphere / <N_sphere> - 1 over ``n_samples`` random centers and
    sigma_error its jackknife-ish uncertainty.  Poisson shot noise
    <N>^-1/2 is subtracted in quadrature.
    """
    rng = rng or np.random.default_rng(0)
    pos = np.asarray(pos, dtype=np.float64) % box
    tree = cKDTree(pos, boxsize=box)
    centers = rng.random((n_samples, 3)) * box
    counts = np.array(
        [len(tree.query_ball_point(c, radius)) for c in centers], dtype=np.float64
    )
    mean = counts.mean()
    if mean == 0:
        return 0.0, 0.0
    frac = counts / mean - 1.0
    var = frac.var()
    shot = 1.0 / mean
    sig2 = max(var - shot, 0.0)
    err = var / np.sqrt(n_samples / 2.0) / max(np.sqrt(sig2), 1e-12)
    return float(np.sqrt(sig2)), float(err)
