"""Sorting machinery of the domain decomposition (paper §3.1).

The SFC decomposition "converts the domain decomposition problem into
a generalized parallel sort", solved with a sample sort (Solomonik &
Kale 2010 style) whose on-node phase is an American-flag radix sort
(McIlroy, Bostic & McIlroy 1993).

* :func:`american_flag_sort` — in-place MSB-first byte-radix sort,
  vectorized per level with NumPy counting; the classic algorithm's
  bucket permutation cycle is replaced by an argsort-free counting
  scatter, which is the natural vector formulation.
* :func:`sample_sort` — distributed sort over a
  :class:`~repro.parallel.comm.SimComm`: oversampled splitter
  selection, alltoallv redistribution, local radix sort.  Supports
  warm-start splitters from a previous decomposition (§3.1's
  optimisation: samples placed near the previous splits).
"""

from __future__ import annotations

import numpy as np

from .comm import SimComm

__all__ = ["american_flag_sort", "sample_sort", "choose_splitters"]


def american_flag_sort(keys: np.ndarray, byte_start: int = 7) -> np.ndarray:
    """MSB-first radix sort of uint64 keys; returns a sorted copy.

    Processes one byte per level starting from the most significant,
    partitioning into 256 buckets by counting sort and recursing into
    buckets larger than a small threshold (smaller buckets finish with
    an insertion-scale numpy sort, as the original algorithm hands off
    to insertion sort).
    """
    keys = np.asarray(keys, dtype=np.uint64).copy()
    _afs_recurse(keys, 0, len(keys), byte_start)
    return keys


_SMALL = 64


def _afs_recurse(keys: np.ndarray, lo: int, hi: int, byte: int) -> None:
    n = hi - lo
    if n <= 1 or byte < 0:
        return
    if n <= _SMALL:
        keys[lo:hi] = np.sort(keys[lo:hi])
        return
    view = keys[lo:hi]
    digits = (view >> np.uint64(8 * byte)) & np.uint64(0xFF)
    counts = np.bincount(digits.astype(np.int64), minlength=256)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    # counting scatter (vectorized stable partition)
    order = np.argsort(digits, kind="stable")
    keys[lo:hi] = view[order]
    for d in range(256):
        c = counts[d]
        if c > 1:
            _afs_recurse(keys, lo + starts[d], lo + starts[d] + c, byte - 1)


def choose_splitters(
    comm: SimComm,
    local_keys: list[np.ndarray],
    oversample: int = 8,
    previous: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """P-1 splitter keys from an oversampled global sample.

    With ``previous`` splitters the sample is augmented by them,
    which pins the new splits close to the old ones when the
    distribution has barely changed (one timestep of drift).
    """
    rng = rng or np.random.default_rng(0)
    p = comm.n_ranks
    samples = []
    for keys in local_keys:
        k = np.asarray(keys, dtype=np.uint64)
        if len(k) == 0:
            samples.append(k)
            continue
        take = min(len(k), oversample)
        samples.append(rng.choice(k, size=take, replace=False))
    gathered = comm.allgather(samples)
    pool = np.sort(np.concatenate(gathered[0]))
    if previous is not None and len(previous):
        pool = np.sort(np.concatenate([pool, np.asarray(previous, dtype=np.uint64)]))
    if len(pool) == 0:
        return np.zeros(p - 1, dtype=np.uint64)
    idx = (np.arange(1, p) * len(pool)) // p
    return pool[np.minimum(idx, len(pool) - 1)]


def sample_sort(
    comm: SimComm,
    local_keys: list[np.ndarray],
    previous_splitters: np.ndarray | None = None,
    oversample: int = 8,
    return_permutation: bool = False,
):
    """Distributed sort: returns (per-rank sorted key arrays, splitters).

    Every output rank r holds keys in [splitter_{r-1}, splitter_r); the
    concatenation over ranks is globally sorted.  With
    ``return_permutation`` each rank also returns the destination rank
    of each of its input keys (what the particle exchange needs).
    """
    p = comm.n_ranks
    splitters = choose_splitters(
        comm, local_keys, oversample=oversample, previous=previous_splitters
    )
    send = [[None] * p for _ in range(p)]
    dests = []
    for i, keys in enumerate(local_keys):
        k = np.asarray(keys, dtype=np.uint64)
        dest = np.searchsorted(splitters, k, side="right")
        dests.append(dest)
        for j in range(p):
            send[i][j] = k[dest == j]
    recv = comm.alltoallv(send)
    out = []
    for j in range(p):
        merged = (
            np.concatenate(recv[j]) if len(recv[j]) else np.empty(0, dtype=np.uint64)
        )
        out.append(american_flag_sort(merged))
    if return_permutation:
        return out, splitters, dests
    return out, splitters
