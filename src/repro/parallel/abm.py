"""Asynchronous Batched Messages — active messages in simulation (§3.2).

2HOT hides traversal latency with its own active-message layer (ABM)
inside MPI: requests for remote hcells are *batched* per destination
and handled by event-driven callbacks, overlapping communication with
the force computation.  "We believe that such event-driven handlers
are more robust and less error-prone to implement correctly."

This module is a discrete-event simulator of that layer: handlers are
registered per message type, messages posted to a rank are delivered
after a modeled latency, and messages to the same destination posted
within a batching window coalesce into one wire message (one latency,
summed bytes).  Running the same workload with batching on and off
quantifies the latency amortization that makes request/reply traversal
viable — the benchmark regenerates that comparison.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from .machine import MachineModel

__all__ = ["Message", "ABMEngine"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    message: "Message" = field(compare=False)


@dataclass
class Message:
    """An active message: delivered to ``handler`` type on ``dst``."""

    src: int
    dst: int
    mtype: str
    payload: object
    nbytes: int = 64


class ABMEngine:
    """Event-driven active-message simulator with per-destination batching."""

    def __init__(
        self,
        n_ranks: int,
        machine: MachineModel | None = None,
        batch_window_s: float = 5e-6,
        batching: bool = True,
    ):
        self.n_ranks = int(n_ranks)
        self.machine = machine or MachineModel()
        self.batch_window_s = float(batch_window_s)
        self.batching = batching
        self._handlers: dict[str, callable] = {}
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        # statistics
        self.messages_posted = 0
        self.wire_messages = 0
        self.bytes_on_wire = 0
        self._pending_batches: dict[tuple[int, int], list] = {}
        self._batch_deadline: dict[tuple[int, int], float] = {}

    def on(self, mtype: str, handler) -> None:
        """Register ``handler(engine, message)`` for a message type."""
        self._handlers[mtype] = handler

    def post(self, src: int, dst: int, mtype: str, payload, nbytes: int = 64) -> None:
        """Send an active message (from inside or outside a handler)."""
        if not (0 <= src < self.n_ranks and 0 <= dst < self.n_ranks):
            raise ValueError("bad rank")
        msg = Message(src=src, dst=dst, mtype=mtype, payload=payload, nbytes=nbytes)
        self.messages_posted += 1
        if not self.batching or src == dst:
            self._ship([msg], self.now)
            return
        key = (src, dst)
        self._pending_batches.setdefault(key, []).append(msg)
        if key not in self._batch_deadline:
            self._batch_deadline[key] = self.now + self.batch_window_s
            heapq.heappush(
                self._queue,
                _Event(
                    self._batch_deadline[key],
                    next(self._seq),
                    Message(src, dst, "__flush__", key, 0),
                ),
            )

    def _ship(self, msgs: list[Message], t: float) -> None:
        nbytes = sum(m.nbytes for m in msgs)
        m = self.machine
        arrive = t + m.latency_s + nbytes / m.bandwidth_Bps
        self.wire_messages += 1
        self.bytes_on_wire += nbytes
        for msg in msgs:
            heapq.heappush(self._queue, _Event(arrive, next(self._seq), msg))

    def run(self, max_events: int = 10_000_000) -> float:
        """Drain the event queue; returns the simulated completion time."""
        n = 0
        while self._queue and n < max_events:
            ev = heapq.heappop(self._queue)
            self.now = max(self.now, ev.time)
            msg = ev.message
            if msg.mtype == "__flush__":
                key = msg.payload
                batch = self._pending_batches.pop(key, [])
                self._batch_deadline.pop(key, None)
                if batch:
                    self._ship(batch, self.now)
            else:
                handler = self._handlers.get(msg.mtype)
                if handler is None:
                    raise KeyError(f"no handler for message type {msg.mtype!r}")
                handler(self, msg)
            n += 1
        if self._queue:
            raise RuntimeError("event budget exhausted (livelock?)")
        return self.now
