"""Simulated parallel machine: the paper's §3 algorithms on real data.

SFC domain decomposition by parallel sample sort (American-flag radix
on-node), Alltoall strategy variants, hierarchical branch-node
aggregation, asynchronous batched messages (active messages), and the
request/reply parallel traversal — all executing against an in-process
machine with alpha-beta cost accounting.
"""

from .abm import ABMEngine, Message
from .alltoall import (
    alltoall_hierarchical,
    alltoall_pairwise,
    estimate_buffered_memory_per_node,
    sparse_exchange_pattern,
)
from .branches import (
    branch_nodes,
    coarsen_for_receiver,
    exchange_global_concat,
    exchange_hierarchical,
)
from .comm import CostLedger, SimComm
from .domain import Decomposition, decompose, domain_surface_stats
from .executor import ForceExecutor, ensure_executor
from .machine import CLUSTER_LIKE, JAGUAR_LIKE, MachineModel
from .ptraverse import ParallelTraversalStats, parallel_forces, parallel_traversal
from .sort import american_flag_sort, choose_splitters, sample_sort

__all__ = [
    "ABMEngine",
    "CLUSTER_LIKE",
    "CostLedger",
    "Decomposition",
    "ForceExecutor",
    "JAGUAR_LIKE",
    "MachineModel",
    "Message",
    "ParallelTraversalStats",
    "SimComm",
    "alltoall_hierarchical",
    "alltoall_pairwise",
    "american_flag_sort",
    "branch_nodes",
    "choose_splitters",
    "coarsen_for_receiver",
    "decompose",
    "domain_surface_stats",
    "ensure_executor",
    "estimate_buffered_memory_per_node",
    "exchange_global_concat",
    "exchange_hierarchical",
    "parallel_forces",
    "parallel_traversal",
    "sample_sort",
    "sparse_exchange_pattern",
]
