"""Simulated SPMD communicator with cost accounting.

An in-process stand-in for MPI: the "machine" owns the state of all
ranks and executes each collective for every rank at once (data
actually moves between per-rank arrays, so algorithmic bugs are real
bugs), while a :class:`CostLedger` accumulates bytes, message counts
and modeled time under a :class:`~repro.parallel.machine.MachineModel`.

The API mirrors mpi4py's buffer layer in spirit — alltoallv, allgather,
allreduce, point-to-point batches — but takes *lists over ranks*
because one Python process plays all ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..instrument import get_tracer
from .machine import MachineModel

__all__ = ["CostLedger", "SimComm"]


@dataclass
class CostLedger:
    """Accumulated communication cost of a simulated execution."""

    bytes_sent: np.ndarray  # per rank
    messages_sent: np.ndarray  # per rank
    time_s: float = 0.0
    peak_buffer_bytes_per_node: float = 0.0

    def total_bytes(self) -> int:
        return int(self.bytes_sent.sum())

    def total_messages(self) -> int:
        return int(self.messages_sent.sum())


class SimComm:
    """A P-rank simulated communicator.

    All collective methods take/return lists of length P.  Modeled time
    assumes the collective's critical path (max over ranks), bulk-
    synchronous between calls — the paper's code is bulk-synchronous at
    this granularity too (decomposition, tree build, traversal phases).
    """

    def __init__(self, n_ranks: int, machine: MachineModel | None = None, tracer=None):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = int(n_ranks)
        self.machine = machine or MachineModel()
        self.tracer = tracer
        self.ledger = CostLedger(
            bytes_sent=np.zeros(self.n_ranks),
            messages_sent=np.zeros(self.n_ranks, dtype=np.int64),
        )

    # ----- accounting helpers --------------------------------------------------
    def _account(self, per_rank_bytes, per_rank_msgs, time_s: float) -> None:
        self.ledger.bytes_sent += per_rank_bytes
        self.ledger.messages_sent += per_rank_msgs
        self.ledger.time_s += time_s
        tr = self.tracer if self.tracer is not None else get_tracer()
        if tr.enabled:
            tr.count("comm.bytes", float(np.sum(per_rank_bytes)))
            tr.count("comm.messages", float(np.sum(per_rank_msgs)))
            tr.count("comm.modeled_time_s", time_s)
            tr.count_vec("comm.bytes_per_rank", per_rank_bytes)
            tr.count_vec("comm.messages_per_rank", per_rank_msgs)

    @staticmethod
    def _nbytes(a) -> int:
        return int(np.asarray(a).nbytes)

    # ----- collectives -----------------------------------------------------------
    def alltoallv(self, send: list[list[np.ndarray]]) -> list[list[np.ndarray]]:
        """send[i][j] is the array rank i sends to rank j.

        Returns recv with recv[j][i] = send[i][j] (copies).  Time model:
        every rank sends/receives its row/column; the step time is the
        max over ranks of (messages * latency + bytes / bandwidth).
        """
        p = self.n_ranks
        if len(send) != p or any(len(row) != p for row in send):
            raise ValueError("send must be a PxP matrix of arrays")
        recv = [[np.array(send[i][j], copy=True) for i in range(p)] for j in range(p)]
        sent_bytes = np.array(
            [sum(self._nbytes(send[i][j]) for j in range(p) if j != i) for i in range(p)],
            dtype=np.float64,
        )
        msgs = np.array(
            [sum(1 for j in range(p) if j != i and self._nbytes(send[i][j]) > 0)
             for i in range(p)],
            dtype=np.int64,
        )
        m = self.machine
        times = msgs * m.latency_s + sent_bytes / m.bandwidth_Bps
        self._account(sent_bytes, msgs, float(times.max(initial=0.0)))
        return recv

    def allgather(self, values: list[np.ndarray]) -> list[list[np.ndarray]]:
        """Every rank receives every rank's array."""
        p = self.n_ranks
        if len(values) != p:
            raise ValueError("one value per rank required")
        out = [[np.array(v, copy=True) for v in values] for _ in range(p)]
        sizes = np.array([self._nbytes(v) for v in values], dtype=np.float64)
        m = self.machine
        # ring allgather: p-1 steps, each rank forwards
        t = (p - 1) * m.latency_s + sizes.sum() / m.bandwidth_Bps
        self._account(sizes * (p - 1), np.full(p, p - 1, dtype=np.int64), t)
        return out

    def allreduce(self, values: list[np.ndarray], op=np.add) -> list[np.ndarray]:
        """Elementwise reduction visible on all ranks."""
        p = self.n_ranks
        total = values[0].copy()
        for v in values[1:]:
            total = op(total, v)
        size = self._nbytes(values[0])
        m = self.machine
        import math

        rounds = max(1, math.ceil(math.log2(max(p, 2))))
        t = 2 * rounds * (m.latency_s + size / m.bandwidth_Bps)
        self._account(
            np.full(p, 2 * rounds * size, dtype=np.float64),
            np.full(p, 2 * rounds, dtype=np.int64),
            t,
        )
        return [total.copy() for _ in range(p)]

    def bcast(self, value: np.ndarray, root: int = 0) -> list[np.ndarray]:
        p = self.n_ranks
        size = self._nbytes(value)
        m = self.machine
        import math

        rounds = max(1, math.ceil(math.log2(max(p, 2))))
        t = rounds * (m.latency_s + size / m.bandwidth_Bps)
        sent = np.zeros(p)
        sent[root] = size * rounds
        msgs = np.zeros(p, dtype=np.int64)
        msgs[root] = rounds
        self._account(sent, msgs, t)
        return [np.array(value, copy=True) for _ in range(p)]

    def exchange_pairs(self, messages: list[tuple[int, int, np.ndarray]]):
        """A batch of point-to-point messages [(src, dst, payload)].

        Returns per-rank inboxes: list of (src, payload).  Time model:
        per-rank serialization of its own sends plus one latency per
        message, critical path = max over ranks.
        """
        p = self.n_ranks
        inbox: list[list] = [[] for _ in range(p)]
        sent_bytes = np.zeros(p)
        msgs = np.zeros(p, dtype=np.int64)
        for src, dst, payload in messages:
            if not (0 <= src < p and 0 <= dst < p):
                raise ValueError("bad rank in message")
            inbox[dst].append((src, np.array(payload, copy=True)))
            sent_bytes[src] += self._nbytes(payload)
            msgs[src] += 1
        m = self.machine
        times = msgs * m.latency_s + sent_bytes / m.bandwidth_Bps
        self._account(sent_bytes, msgs, float(times.max(initial=0.0)))
        return inbox

    def barrier(self) -> None:
        import math

        rounds = max(1, math.ceil(math.log2(max(self.n_ranks, 2))))
        self._account(
            np.zeros(self.n_ranks),
            np.zeros(self.n_ranks, dtype=np.int64),
            rounds * self.machine.latency_s,
        )
