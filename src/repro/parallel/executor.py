"""Shared-memory multi-worker force execution (sink-shard data parallelism).

The serial->parallel seam of the whole stack: the paper's decomposition
(§3.1-3.3) assigns each process an SFC-contiguous block of *sink*
leaves and lets it traverse them against the global tree — who computes
changes, what is computed never does.  :class:`ForceExecutor` realizes
that on one shared-memory node:

* a **persistent** pool of ``multiprocessing`` workers survives across
  force calls, so per-step cost is array publication, not process
  creation or module import;
* per force call the particle / tree / moment arrays are published
  **once** through ``multiprocessing.shared_memory`` — workers map the
  same physical pages, nothing megabyte-sized is ever pickled;
* sink leaves are split into SFC-contiguous shards (several per
  worker, balanced by particle count) that workers pull from a shared
  task queue — cheap work stealing, since per-leaf traversal cost is
  skewed by clustering;
* each worker runs :func:`~repro.tree.traversal.traverse` restricted
  to its shard (the ``sink_leaves`` parameter) followed by
  :func:`~repro.gravity.treeforce.evaluate_forces` over exactly those
  sinks, writing its ``acc``/``pot`` slice into a shared output
  segment.  Every sink particle belongs to exactly one shard, so the
  slices are disjoint and the merge is deterministic — no reduction
  race, no scheduling-dependent rounding.  At ``workers=1`` a single
  shard reproduces the serial interaction stream bit for bit.

Per-shard wall times come back through the result queue and merge into
the parent :class:`~repro.instrument.metrics.Metrics`, turning the
modeled load imbalance of :mod:`repro.parallel.ptraverse` into a
measured one.

**Self-healing** (paper §3.4.2: production runs lose a node about every
million CPU hours — the pool must degrade, not die): the collector
detects dead workers (respawned; the missing shards are re-dispatched
— writes are deterministic and slice-disjoint, so duplicate execution
is idempotent), worker-side exceptions (the failed shard alone is
retried with bounded attempts and backoff), and hung workers (no
progress for ``shard_timeout`` seconds restarts the pool).  When the
respawn/retry budget is exhausted the remaining shards are computed
serially in the parent — the force result is always produced, bit for
bit the same, and every recovery is recorded in
``stats["executor"]["recoveries"]`` and emitted through the tracer.
Deterministic fault injection for all of these paths comes from
:class:`repro.resilience.faults.FaultPlan` (``REPRO_FAULTS``).
"""

from __future__ import annotations

import atexit
import os
import queue as _queue
import secrets
import time
import traceback
import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ForceExecutor", "ensure_executor"]

_SEG_PREFIX = "reprofx"

#: tree / moment arrays each worker needs to traverse and evaluate
_TREE_ARRAYS = (
    "pos", "mass", "cell_level", "cell_first_child", "cell_nchildren",
    "cell_start", "cell_count", "cell_is_ghost", "cell_center", "cell_side",
)
_MOM_ARRAYS = ("moments", "bmax", "r_crit")


def _publish(arrays: dict[str, np.ndarray], tag: str):
    """Copy arrays into fresh shared-memory segments.

    Returns ``(meta, segments)`` where ``meta`` maps logical name ->
    (segment name, shape, dtype str) — the only thing that crosses the
    task queue.
    """
    meta = {}
    segments = []
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        shm = shared_memory.SharedMemory(
            create=True,
            size=max(arr.nbytes, 1),
            name=f"{_SEG_PREFIX}_{tag}_{name}_{secrets.token_hex(4)}",
        )
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        meta[name] = (shm.name, arr.shape, arr.dtype.str)
        segments.append(shm)
    return meta, segments


def _attach(meta: dict):
    """Map published segments; returns (arrays, segments to keep alive).

    Attaching normally registers the segment with the resource tracker
    (on < 3.13 unconditionally), but only the *parent* owns these
    segments: a worker registration would either double-unlink memory
    the parent still uses (spawn, private tracker) or race the parent's
    own unregistration (fork, shared tracker).  Registration is
    suppressed for the duration of the attach — process-local, and only
    ever executed inside worker processes.
    """
    from multiprocessing import resource_tracker

    arrays = {}
    segments = []
    orig_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        for name, (shm_name, shape, dt) in meta.items():
            shm = shared_memory.SharedMemory(name=shm_name)
            arrays[name] = np.ndarray(
                tuple(shape), dtype=np.dtype(dt), buffer=shm.buf
            )
            segments.append(shm)
    finally:
        resource_tracker.register = orig_register
    return arrays, segments


def _timer(seconds: float) -> dict:
    return {"total_s": seconds, "calls": 1, "min_s": seconds, "max_s": seconds}


class _WorkerState:
    """One epoch's attached arrays + reconstructed tree/moments views."""

    __slots__ = ("epoch", "segments", "tree", "moms", "task", "acc", "pot")

    def __init__(self):
        self.epoch = -1
        self.segments = []
        self.tree = self.moms = self.task = self.acc = self.pot = None

    def release(self) -> None:
        self.tree = self.moms = self.task = self.acc = self.pot = None
        for shm in self.segments:
            try:
                shm.close()
            except Exception:
                pass
        self.segments = []

    def load(self, epoch: int, meta: dict) -> None:
        from ..tree.moments import TreeMoments
        from ..tree.structure import Tree

        self.release()
        arrays, self.segments = _attach(meta["segments"])
        empty = np.empty(0)
        self.tree = Tree(
            box=meta["box"],
            nleaf=meta["nleaf"],
            pos=arrays["pos"],
            mass=arrays["mass"],
            keys=None,
            order=None,
            cell_key=None,
            cell_level=arrays["cell_level"],
            cell_parent=None,
            cell_first_child=arrays["cell_first_child"],
            cell_nchildren=arrays["cell_nchildren"],
            cell_start=arrays["cell_start"],
            cell_count=arrays["cell_count"],
            cell_is_ghost=arrays["cell_is_ghost"],
            cell_center=arrays["cell_center"],
            cell_side=arrays["cell_side"],
            hash=None,
        )
        m = meta["moms"]
        self.moms = TreeMoments(
            p=m["p"],
            tol=m["tol"],
            background=m["background"],
            mean_density=m["mean_density"],
            mac=m["mac"],
            moments=arrays["moments"],
            babs=empty,
            bmax=arrays["bmax"],
            mnorm=empty,
            mnorm2=empty,
            r_crit=arrays["r_crit"],
        )
        self.task = meta["task"]
        self.acc = arrays["acc_out"]
        self.pot = arrays.get("pot_out")
        self.epoch = epoch


def _run_shard(state: _WorkerState, sinks, s0: int, s1: int):
    """Traverse + evaluate one shard, writing into the shared output."""
    from ..gravity.treeforce import evaluate_forces
    from ..tree.traversal import traverse_lists

    task = state.task
    t0_mono = time.monotonic()
    t0 = time.perf_counter()
    inter = traverse_lists(
        state.tree,
        state.moms,
        traversal=task.get("traversal", "leaf"),
        periodic=task["periodic"],
        ws=task["ws"],
        sink_leaves=sinks,
        xmax=task["xmax"],
        cc_xmax=task.get("cc_xmax", 0.5),
    )
    if task["rcut"] is not None:
        from ..gravity.pm import _prune_far

        inter = _prune_far(state.tree, state.moms, inter, task["rcut"])
    t1 = time.perf_counter()
    from ..gravity import kernels

    kernels.set_kernel_threads(task.get("kernel_threads"))
    res = evaluate_forces(
        state.tree,
        state.moms,
        inter,
        softening=task["softening"],
        G=task["G"],
        dtype=np.dtype(task["dtype"]).type,
        want_potential=task["want_potential"],
        kernel=task["kernel"],
        particle_range=(s0, s1),
        backend=task.get("backend"),
    )
    t2 = time.perf_counter()
    state.acc[s0:s1] = res.acc
    if state.pot is not None and res.pot is not None:
        state.pot[s0:s1] = res.pot
    stats = dict(res.stats)
    if task.get("check_finite"):
        # per-worker health: count non-finite outputs where they were
        # produced, so the parent can attribute corruption to a shard
        stats["nonfinite_acc"] = int(np.count_nonzero(~np.isfinite(res.acc)))
        if res.pot is not None:
            stats["nonfinite_acc"] += int(np.count_nonzero(~np.isfinite(res.pot)))
    stats["traversal_rounds"] = inter.rounds
    stats["mac_tests"] = inter.mac_tests
    stats["frontier_peak"] = inter.frontier_peak
    stats["inherited_accepts"] = inter.inherited_accepts
    stats["leaf_accepts"] = inter.leaf_accepts
    # the serial solver reports interactions/particle from the traversal
    # lists (which exclude the near-field background prism corrections
    # that the evaluate counters include); keep the metric comparable
    stats["traversal_interactions"] = (
        inter.n_cell_interactions(state.tree)
        + inter.n_pp_interactions(state.tree)
        + inter.n_prism_interactions(state.tree)
        + inter.n_m2l_interactions(state.tree)
    )
    stats["interactions_by_family"] = {
        "cell": inter.n_cell_interactions(state.tree),
        "pp": inter.n_pp_interactions(state.tree),
        "ghost": inter.n_prism_interactions(state.tree),
        "m2l": inter.n_m2l_interactions(state.tree),
    }
    n_inter = (
        stats.get("cell_interactions", 0)
        + stats.get("pp_interactions", 0)
        + stats.get("prism_interactions", 0)
    )
    spans = {
        # CLOCK_MONOTONIC is system-wide on the platforms the pool runs
        # on, so worker-side stamps are comparable across processes —
        # what the observe timeline needs to draw per-worker lanes
        "t0": t0_mono,
        "t1": t0_mono + (t2 - t0),
        "timers": {
            "executor/traverse": _timer(t1 - t0),
            "executor/evaluate": _timer(t2 - t1),
            "executor/shard": _timer(t2 - t0),
        },
        "counters": {
            "executor.shards": 1,
            "executor.interactions": n_inter,
            "traverse.mac_tests": inter.mac_tests,
            "traverse.accepts_inherited": inter.inherited_accepts,
            "traverse.accepts_leaf": inter.leaf_accepts,
        },
    }
    return stats, spans


def _worker_main(worker_id: int, tasks, results) -> None:
    """Persistent worker loop: pull shards until the ``None`` sentinel.

    An injected :class:`~repro.resilience.faults.FaultPlan` (spec string
    carried in the task metadata, so it survives spawn) fires before the
    shard runs: ``kill`` exits the process, ``raise`` surfaces as an
    ``err`` result, ``delay`` stalls past the parent's timeout.  Faults
    never fire on re-dispatches (``attempt > 0``), so recovery always
    converges.
    """
    state = _WorkerState()
    plan = None
    plan_spec = None
    while True:
        msg = tasks.get()
        if msg is None:
            state.release()
            return
        epoch, meta, shard_id, sinks, s0, s1, attempt = msg
        try:
            spec = meta["task"].get("faults")
            if spec != plan_spec:
                from ..resilience.faults import FaultPlan

                plan = FaultPlan.parse(spec) if spec else None
                plan_spec = spec
            if plan is not None:
                plan.apply_worker(worker_id, shard_id, epoch, attempt=attempt)
            if epoch != state.epoch:
                state.load(epoch, meta)
            stats, spans = _run_shard(state, sinks, s0, s1)
            results.put(("ok", epoch, shard_id, worker_id, stats, spans))
        except Exception:
            results.put(
                ("err", epoch, shard_id, worker_id, traceback.format_exc(), None)
            )


class ForceExecutor:
    """Persistent shared-memory worker pool for treecode force solves.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1).  ``workers=1`` runs the
        whole sink set as a single shard in one worker and is
        bit-identical to the serial path.
    start_method:
        ``multiprocessing`` start method ("fork", "spawn",
        "forkserver"); default is the ``REPRO_START_METHOD``
        environment variable, falling back to the platform default.
    shards_per_worker:
        Queue granularity for dynamic load balancing: the sink leaves
        are cut into up to ``workers * shards_per_worker`` shards.
    shard_timeout:
        Seconds without *any* shard result before the pool is declared
        hung and restarted (default: ``REPRO_SHARD_TIMEOUT`` env, else
        disabled — dead workers are still detected immediately).
    max_retries:
        Bounded re-dispatches per shard: worker-side exceptions beyond
        this raise; death/hang re-dispatches beyond this fall back to
        computing the shard serially in the parent.
    max_respawns:
        Worker respawn budget per force call; once exhausted the pool
        is unrecoverable and the call degrades to serial execution.
    faults:
        ``REPRO_FAULTS``-style spec string for deterministic fault
        injection (default: the environment variable).
    """

    def __init__(
        self,
        workers: int,
        start_method: str | None = None,
        shards_per_worker: int = 4,
        shard_timeout: float | None = None,
        max_retries: int = 2,
        max_respawns: int = 4,
        retry_backoff_s: float = 0.05,
        faults: str | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        method = start_method or os.environ.get("REPRO_START_METHOD") or None
        self._ctx = mp.get_context(method)
        self.workers = int(workers)
        self.shards_per_worker = int(shards_per_worker)
        if shard_timeout is None:
            env = os.environ.get("REPRO_SHARD_TIMEOUT", "").strip()
            shard_timeout = float(env) if env else None
        self.shard_timeout = shard_timeout
        self.max_retries = int(max_retries)
        self.max_respawns = int(max_respawns)
        self.retry_backoff_s = float(retry_backoff_s)
        self._fault_spec = (
            faults if faults is not None else os.environ.get("REPRO_FAULTS", "")
        ) or None
        self.closed = False
        #: the pool proved unrecoverable; all further work runs serially
        self.degraded = False
        #: every recovery action taken over the executor's lifetime
        self.recoveries: list[dict] = []
        self._epoch = 0
        self._tag = f"{os.getpid():x}{secrets.token_hex(2)}"
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._procs = [self._spawn(i) for i in range(self.workers)]
        atexit.register(self.close)

    def _spawn(self, worker_id: int):
        p = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self._tasks, self._results),
            daemon=True,
            name=f"repro-force-{worker_id}",
        )
        p.start()
        return p

    # ----- sharding -----------------------------------------------------------
    def _make_shards(self, tree):
        """SFC-contiguous sink-leaf shards balanced by particle count.

        Returns ``[(shard_id, sinks, s0, s1), ...]`` where [s0, s1) are
        the key-sorted particle indices owned by the shard; the ranges
        tile [0, N) because SFC-sorted leaf ranges are contiguous.  A
        single shard is encoded as ``sinks=None`` so the worker uses
        the traversal's default sink order — the exact serial stream.
        """
        leaves = tree.leaf_indices
        nshards = min(len(leaves), self.workers * self.shards_per_worker)
        if self.workers == 1 or nshards <= 1:
            return [(0, None, 0, tree.n_particles)]
        order = np.argsort(tree.cell_start[leaves], kind="stable")
        lsfc = leaves[order]
        cum = np.cumsum(tree.cell_count[lsfc])
        n = int(cum[-1])
        targets = np.arange(1, nshards) * n / nshards
        cuts = np.searchsorted(cum, targets, side="left") + 1
        bounds = np.unique(np.concatenate([[0], cuts, [len(lsfc)]]))
        shards = []
        for sid, (b0, b1) in enumerate(zip(bounds[:-1], bounds[1:])):
            sinks = lsfc[b0:b1]
            s0 = int(tree.cell_start[sinks[0]])
            s1 = int(tree.cell_start[sinks[-1]] + tree.cell_count[sinks[-1]])
            shards.append((sid, sinks, s0, s1))
        return shards

    # ----- one force call -----------------------------------------------------
    def compute(
        self,
        tree,
        moms,
        *,
        periodic: bool = False,
        ws: int = 1,
        softening=None,
        kernel=None,
        G: float = 1.0,
        dtype=np.float64,
        want_potential: bool = True,
        rcut: float | None = None,
        xmax: float = 0.6,
        cc_xmax: float = 0.5,
        check_finite: bool = False,
        traversal: str = "leaf",
        backend: str | None = None,
        tracer=None,
    ):
        """Traverse + evaluate all sink leaves across the pool.

        ``backend`` selects the per-shard force evaluator (see
        :func:`~repro.gravity.treeforce.evaluate_forces`); with the
        compiled backend each worker caps its numba thread pool at
        ``cpu_count // workers`` so processes x threads never
        oversubscribes the node.

        The tree and moments must already be built (the upward pass is
        cheap and serial); returns a
        :class:`~repro.gravity.treeforce.ForceResult` in original
        particle order, matching what the serial traverse/evaluate pair
        would produce.
        """
        from ..gravity.treeforce import ForceResult
        from ..instrument import get_tracer

        if self.closed:
            raise RuntimeError("executor is closed")
        tr = tracer if tracer is not None else get_tracer()
        self._epoch += 1
        epoch = self._epoch
        n = tree.n_particles

        arrays = {name: getattr(tree, name) for name in _TREE_ARRAYS}
        arrays.update({name: getattr(moms, name) for name in _MOM_ARRAYS})
        arrays["acc_out"] = np.zeros((n, 3), dtype=np.float64)
        if want_potential:
            arrays["pot_out"] = np.zeros(n, dtype=np.float64)
        meta_segments, segments = _publish(arrays, f"{self._tag}{epoch:x}")
        meta = {
            "segments": meta_segments,
            "box": float(tree.box),
            "nleaf": int(tree.nleaf),
            "moms": {
                "p": moms.p,
                "tol": moms.tol,
                "background": moms.background,
                "mean_density": moms.mean_density,
                "mac": moms.mac,
            },
            "task": {
                "periodic": periodic,
                "ws": ws,
                "xmax": xmax,
                "cc_xmax": cc_xmax,
                "softening": softening,
                "kernel": kernel,
                "G": G,
                "dtype": np.dtype(dtype).str,
                "want_potential": want_potential,
                "rcut": rcut,
                "check_finite": check_finite,
                "traversal": traversal,
                "backend": backend,
                "kernel_threads": (
                    max(1, (os.cpu_count() or 1) // self.workers)
                    if self.workers > 1 else None
                ),
                "faults": self._fault_spec,
            },
        }
        try:
            shards = self._make_shards(tree)
            # parent-side views of the shared output: the merge source,
            # and the serial-fallback write target
            acc_view = np.ndarray(
                (n, 3), dtype=np.float64,
                buffer=segments_buf(segments, meta_segments, "acc_out"),
            )
            pot_view = None
            if want_potential:
                pot_view = np.ndarray(
                    (n,), dtype=np.float64,
                    buffer=segments_buf(segments, meta_segments, "pot_out"),
                )
            fallback = {
                "tree": tree, "moms": moms, "task": meta["task"],
                "acc": acc_view, "pot": pot_view,
            }
            if not self.degraded:
                for sid, sinks, s0, s1 in shards:
                    self._tasks.put((epoch, meta, sid, sinks, s0, s1, 0))
            shard_stats, shard_spans, recoveries = self._collect(
                epoch, meta, shards, fallback
            )

            # deterministic merge: disjoint [s0, s1) slices already sit in
            # the shared output; unsort + cast once, exactly like serial
            acc_sorted = np.array(acc_view)
            acc = np.empty_like(acc_sorted)
            acc[tree.order] = acc_sorted
            pot = None
            if want_potential:
                pot_sorted = np.array(pot_view)
                pot = np.empty_like(pot_sorted)
                pot[tree.order] = pot_sorted
            if np.dtype(dtype) != np.dtype(np.float64):
                acc = acc.astype(dtype)
                if pot is not None:
                    pot = pot.astype(dtype)
        finally:
            # drop our buffer exports before releasing the segments, and
            # unlink before close so /dev/shm is cleaned even if a live
            # export keeps the local mapping pinned
            acc_view = pot_view = fallback = None
            for shm in segments:
                try:
                    shm.unlink()
                except Exception:
                    pass
                try:
                    shm.close()
                except Exception:
                    pass

        stats = self._merge_stats(shard_stats, shard_spans, n, tr, recoveries)
        return ForceResult(acc=acc, pot=pot, stats=stats)

    def _run_local(self, fallback: dict, sinks, s0: int, s1: int):
        """Run one shard serially in the parent (graceful degradation)."""
        state = _WorkerState()
        state.tree = fallback["tree"]
        state.moms = fallback["moms"]
        state.task = fallback["task"]
        state.acc = fallback["acc"]
        state.pot = fallback["pot"]
        return _run_shard(state, sinks, s0, s1)

    def _collect(self, epoch: int, meta: dict, shards, fallback: dict):
        """Wait for all shard results, healing dead/hung workers.

        Recovery protocol, in escalating order:

        * worker-reported exception -> re-dispatch only that shard
          (bounded by ``max_retries``, linear backoff); beyond the
          budget the error is deterministic and raises;
        * dead worker -> respawn it and re-dispatch every unfinished
          shard (duplicate completions are deduped; the deterministic,
          slice-disjoint writes make double execution idempotent); a
          shard past its re-dispatch budget is computed serially;
        * no progress for ``shard_timeout`` seconds -> restart the
          whole pool and re-dispatch;
        * respawn budget exhausted -> the pool is unrecoverable: mark
          the executor degraded and finish every pending shard
          serially in the parent.

        Returns ``(shard_stats, shard_spans, recoveries)``.
        """
        pending = {sid: (sinks, s0, s1) for sid, sinks, s0, s1 in shards}
        attempts = dict.fromkeys(pending, 0)
        err_count = dict.fromkeys(pending, 0)
        shard_stats: dict[int, dict] = {}
        shard_spans: dict[int, tuple[int, dict, float]] = {}
        recoveries: list[dict] = []
        respawns = 0
        last_progress = time.monotonic()

        def finish_local(sid: int) -> None:
            sinks, s0, s1 = pending.pop(sid)
            st, sp = self._run_local(fallback, sinks, s0, s1)
            sp["local"] = True  # timeline: a parent-lane recovery span
            sp["attempt"] = attempts[sid]
            shard_stats[sid] = st
            shard_spans[sid] = (0, sp, sp["timers"]["executor/shard"]["total_s"])

        def redispatch_or_local(sid: int) -> None:
            if attempts[sid] >= self.max_retries:
                recoveries.append({
                    "kind": "serial_shard", "shard": sid,
                    "reason": f"re-dispatch budget ({self.max_retries}) exhausted",
                })
                finish_local(sid)
                return
            attempts[sid] += 1
            sinks, s0, s1 = pending[sid]
            self._tasks.put((epoch, meta, sid, sinks, s0, s1, attempts[sid]))

        def degrade(reason: str) -> None:
            self.degraded = True
            recoveries.append({
                "kind": "serial_fallback", "reason": reason,
                "shards": sorted(pending),
            })
            for sid in sorted(pending):
                finish_local(sid)

        if self.degraded:
            degrade("pool previously unrecoverable")

        while pending:
            try:
                msg = self._results.get(timeout=0.1)
            except _queue.Empty:
                now = time.monotonic()
                dead = [i for i, p in enumerate(self._procs) if not p.is_alive()]
                if dead:
                    if respawns + len(dead) > self.max_respawns:
                        for i in dead:
                            recoveries.append({
                                "kind": "worker_death", "worker": i,
                                "exitcode": self._procs[i].exitcode,
                                "respawned": False,
                            })
                        degrade(
                            f"respawn budget ({self.max_respawns}) exhausted"
                        )
                        continue
                    for i in dead:
                        recoveries.append({
                            "kind": "worker_death", "worker": i,
                            "exitcode": self._procs[i].exitcode,
                            "respawned": True,
                        })
                        self._procs[i] = self._spawn(i)
                        respawns += 1
                    # the dead worker's in-flight shard will never report:
                    # re-dispatch everything unfinished (dedupe below makes
                    # a queued duplicate harmless)
                    for sid in list(pending):
                        redispatch_or_local(sid)
                    last_progress = time.monotonic()
                elif (
                    self.shard_timeout
                    and now - last_progress > self.shard_timeout
                ):
                    if respawns + self.workers > self.max_respawns:
                        degrade(
                            f"pool hung > {self.shard_timeout:g}s with "
                            f"respawn budget exhausted"
                        )
                        continue
                    recoveries.append({
                        "kind": "pool_restart",
                        "reason": f"no progress in {self.shard_timeout:g}s",
                    })
                    for i, p in enumerate(self._procs):
                        p.terminate()
                        p.join(timeout=1.0)
                        if p.is_alive():
                            p.kill()
                            p.join(timeout=1.0)
                        self._procs[i] = self._spawn(i)
                        respawns += 1
                    for sid in list(pending):
                        redispatch_or_local(sid)
                    last_progress = time.monotonic()
                continue
            kind, ep, sid, wid, payload, spans = msg
            if ep != epoch or sid not in pending:
                continue  # stale epoch, or duplicate of a healed shard
            last_progress = time.monotonic()
            if kind == "ok":
                pending.pop(sid)
                spans["attempt"] = attempts[sid]
                shard_stats[sid] = payload
                shard_spans[sid] = (
                    wid, spans, spans["timers"]["executor/shard"]["total_s"]
                )
                continue
            # worker-side exception: retry only this shard, with backoff
            err_count[sid] += 1
            if err_count[sid] > self.max_retries:
                raise RuntimeError(
                    f"shard {sid} failed in worker pool after "
                    f"{err_count[sid]} attempts:\n{payload}"
                )
            recoveries.append({
                "kind": "shard_retry", "shard": sid, "worker": wid,
                "attempt": err_count[sid],
                "error": payload.strip().splitlines()[-1],
            })
            time.sleep(self.retry_backoff_s * err_count[sid])
            attempts[sid] += 1
            sinks, s0, s1 = pending[sid]
            self._tasks.put((epoch, meta, sid, sinks, s0, s1, attempts[sid]))
        return shard_stats, shard_spans, recoveries

    def _merge_stats(self, shard_stats, shard_spans, n: int, tr,
                     recoveries=None) -> dict:
        stats = {
            "cell_interactions": 0,
            "pp_interactions": 0,
            "prism_interactions": 0,
            "m2l_pairs": 0,
            "m2l_interactions": 0,
            "traversal_interactions": 0,
            "interactions_by_family": {},
            "order": 0,
            "traversal_rounds": 0,
            "mac_tests": 0,
            "frontier_peak": 0,
            "inherited_accepts": 0,
            "leaf_accepts": 0,
        }
        for s in shard_stats.values():
            stats["cell_interactions"] += s.get("cell_interactions", 0)
            stats["pp_interactions"] += s.get("pp_interactions", 0)
            stats["prism_interactions"] += s.get("prism_interactions", 0)
            stats["m2l_pairs"] += s.get("m2l_pairs", 0)
            stats["m2l_interactions"] += s.get("m2l_interactions", 0)
            stats["traversal_interactions"] += s.get("traversal_interactions", 0)
            for fam, count in s.get("interactions_by_family", {}).items():
                stats["interactions_by_family"][fam] = (
                    stats["interactions_by_family"].get(fam, 0) + count
                )
            stats["order"] = s.get("order", stats["order"])
            stats["traversal_rounds"] = max(
                stats["traversal_rounds"], s.get("traversal_rounds", 0)
            )
            stats["mac_tests"] += s.get("mac_tests", 0)
            stats["frontier_peak"] = max(
                stats["frontier_peak"], s.get("frontier_peak", 0)
            )
            stats["inherited_accepts"] += s.get("inherited_accepts", 0)
            stats["leaf_accepts"] += s.get("leaf_accepts", 0)
            for key in ("evaluator", "backend", "backend_fallback"):
                if key in s:
                    stats[key] = s[key]
        kernel_parts = [s["kernel"] for s in shard_stats.values() if s.get("kernel")]
        if kernel_parts:
            from ..gravity.kernels import merge_kernel_counters

            stats["kernel"] = merge_kernel_counters(kernel_parts)
        if any("nonfinite_acc" in s for s in shard_stats.values()):
            bad = {sid: s["nonfinite_acc"] for sid, s in shard_stats.items()
                   if s.get("nonfinite_acc")}
            stats["health"] = {
                "nonfinite_acc": sum(bad.values()),
                "bad_shards": bad,
            }
        busy = np.zeros(self.workers)
        shard_seconds = [0.0] * len(shard_spans)
        traverse_s = evaluate_s = 0.0
        metrics = getattr(tr, "metrics", None)
        events = []
        t_origin = min(
            (spans["t0"] for _, spans, _ in shard_spans.values() if "t0" in spans),
            default=0.0,
        )
        for sid, (wid, spans, shard_s) in shard_spans.items():
            busy[wid] += shard_s
            shard_seconds[sid] = shard_s
            traverse_s += spans["timers"]["executor/traverse"]["total_s"]
            evaluate_s += spans["timers"]["executor/evaluate"]["total_s"]
            if "t0" in spans:
                # one timeline event per shard, offsets relative to the
                # call's first shard start (repro-obs timeline input)
                events.append({
                    "shard": sid,
                    "worker": wid,
                    "t0": round(spans["t0"] - t_origin, 6),
                    "t1": round(spans["t1"] - t_origin, 6),
                    "traverse_s": round(
                        spans["timers"]["executor/traverse"]["total_s"], 6),
                    "evaluate_s": round(
                        spans["timers"]["executor/evaluate"]["total_s"], 6),
                    "attempt": int(spans.get("attempt", 0)),
                    "local": bool(spans.get("local", False)),
                })
            if metrics is not None:
                metrics.merge_dict(spans)
        events.sort(key=lambda e: (e["t0"], e["shard"]))
        mean_busy = float(busy.mean()) if self.workers else 0.0
        stats["executor"] = {
            "workers": self.workers,
            "n_shards": len(shard_spans),
            "shard_seconds": shard_seconds,
            "shard_events": events,
            "worker_busy_s": busy.tolist(),
            "load_imbalance": float(busy.max() / mean_busy - 1.0)
            if mean_busy > 0
            else 0.0,
            "traverse_s": traverse_s,
            "evaluate_s": evaluate_s,
        }
        if recoveries:
            self.recoveries.extend(recoveries)
            stats["executor"]["recoveries"] = recoveries
            stats["executor"]["degraded"] = self.degraded
            for r in recoveries:
                tr.emit({"type": "executor_recovery", **r})
            if getattr(tr, "enabled", False):
                tr.count("executor.recoveries", len(recoveries))
        if getattr(tr, "enabled", False):
            tr.count_vec("executor.worker_busy_s", busy)
        return stats

    # ----- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release every shared-memory segment.

        Hardened against a pool that died mid-``compute``: sentinels go
        only to live workers, stragglers are terminated then killed, the
        result queue is drained, and the queue feeder threads are
        cancelled rather than joined — a dead consumer can therefore
        never hang teardown or leak shared-memory segments.
        """
        if self.closed:
            return
        self.closed = True
        try:
            atexit.unregister(self.close)
        except Exception:
            pass
        for p in self._procs:
            if p.is_alive():
                try:
                    self._tasks.put_nowait(None)
                except Exception:
                    pass
        for p in self._procs:
            p.join(timeout=5.0)
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
            if p.is_alive():
                p.kill()
                p.join(timeout=1.0)
        # drain undelivered results so the feeder thread can flush
        try:
            while True:
                self._results.get_nowait()
        except Exception:
            pass
        for q in (self._tasks, self._results):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


def segments_buf(segments, meta_segments, name):
    """The buffer of the published segment holding logical array ``name``."""
    shm_name = meta_segments[name][0]
    for shm in segments:
        if shm.name == shm_name:
            return shm.buf
    raise KeyError(name)


def ensure_executor(current: ForceExecutor | None, workers: int) -> ForceExecutor:
    """Reuse ``current`` if it matches ``workers``, else replace it."""
    if current is not None and not current.closed and current.workers == workers:
        return current
    if current is not None:
        current.close()
    return ForceExecutor(workers)
