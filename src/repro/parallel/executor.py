"""Shared-memory multi-worker force execution (sink-shard data parallelism).

The serial->parallel seam of the whole stack: the paper's decomposition
(§3.1-3.3) assigns each process an SFC-contiguous block of *sink*
leaves and lets it traverse them against the global tree — who computes
changes, what is computed never does.  :class:`ForceExecutor` realizes
that on one shared-memory node:

* a **persistent** pool of ``multiprocessing`` workers survives across
  force calls, so per-step cost is array publication, not process
  creation or module import;
* per force call the particle / tree / moment arrays are published
  **once** through ``multiprocessing.shared_memory`` — workers map the
  same physical pages, nothing megabyte-sized is ever pickled;
* sink leaves are split into SFC-contiguous shards (several per
  worker, balanced by particle count) that workers pull from a shared
  task queue — cheap work stealing, since per-leaf traversal cost is
  skewed by clustering;
* each worker runs :func:`~repro.tree.traversal.traverse` restricted
  to its shard (the ``sink_leaves`` parameter) followed by
  :func:`~repro.gravity.treeforce.evaluate_forces` over exactly those
  sinks, writing its ``acc``/``pot`` slice into a shared output
  segment.  Every sink particle belongs to exactly one shard, so the
  slices are disjoint and the merge is deterministic — no reduction
  race, no scheduling-dependent rounding.  At ``workers=1`` a single
  shard reproduces the serial interaction stream bit for bit.

Per-shard wall times come back through the result queue and merge into
the parent :class:`~repro.instrument.metrics.Metrics`, turning the
modeled load imbalance of :mod:`repro.parallel.ptraverse` into a
measured one.
"""

from __future__ import annotations

import atexit
import os
import queue as _queue
import secrets
import time
import traceback
import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ForceExecutor", "ensure_executor"]

_SEG_PREFIX = "reprofx"

#: tree / moment arrays each worker needs to traverse and evaluate
_TREE_ARRAYS = (
    "pos", "mass", "cell_level", "cell_first_child", "cell_nchildren",
    "cell_start", "cell_count", "cell_is_ghost", "cell_center", "cell_side",
)
_MOM_ARRAYS = ("moments", "bmax", "r_crit")


def _publish(arrays: dict[str, np.ndarray], tag: str):
    """Copy arrays into fresh shared-memory segments.

    Returns ``(meta, segments)`` where ``meta`` maps logical name ->
    (segment name, shape, dtype str) — the only thing that crosses the
    task queue.
    """
    meta = {}
    segments = []
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        shm = shared_memory.SharedMemory(
            create=True,
            size=max(arr.nbytes, 1),
            name=f"{_SEG_PREFIX}_{tag}_{name}_{secrets.token_hex(4)}",
        )
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        meta[name] = (shm.name, arr.shape, arr.dtype.str)
        segments.append(shm)
    return meta, segments


def _attach(meta: dict):
    """Map published segments; returns (arrays, segments to keep alive).

    Attaching normally registers the segment with the resource tracker
    (on < 3.13 unconditionally), but only the *parent* owns these
    segments: a worker registration would either double-unlink memory
    the parent still uses (spawn, private tracker) or race the parent's
    own unregistration (fork, shared tracker).  Registration is
    suppressed for the duration of the attach — process-local, and only
    ever executed inside worker processes.
    """
    from multiprocessing import resource_tracker

    arrays = {}
    segments = []
    orig_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        for name, (shm_name, shape, dt) in meta.items():
            shm = shared_memory.SharedMemory(name=shm_name)
            arrays[name] = np.ndarray(
                tuple(shape), dtype=np.dtype(dt), buffer=shm.buf
            )
            segments.append(shm)
    finally:
        resource_tracker.register = orig_register
    return arrays, segments


def _timer(seconds: float) -> dict:
    return {"total_s": seconds, "calls": 1, "min_s": seconds, "max_s": seconds}


class _WorkerState:
    """One epoch's attached arrays + reconstructed tree/moments views."""

    __slots__ = ("epoch", "segments", "tree", "moms", "task", "acc", "pot")

    def __init__(self):
        self.epoch = -1
        self.segments = []
        self.tree = self.moms = self.task = self.acc = self.pot = None

    def release(self) -> None:
        self.tree = self.moms = self.task = self.acc = self.pot = None
        for shm in self.segments:
            try:
                shm.close()
            except Exception:
                pass
        self.segments = []

    def load(self, epoch: int, meta: dict) -> None:
        from ..tree.moments import TreeMoments
        from ..tree.structure import Tree

        self.release()
        arrays, self.segments = _attach(meta["segments"])
        empty = np.empty(0)
        self.tree = Tree(
            box=meta["box"],
            nleaf=meta["nleaf"],
            pos=arrays["pos"],
            mass=arrays["mass"],
            keys=None,
            order=None,
            cell_key=None,
            cell_level=arrays["cell_level"],
            cell_parent=None,
            cell_first_child=arrays["cell_first_child"],
            cell_nchildren=arrays["cell_nchildren"],
            cell_start=arrays["cell_start"],
            cell_count=arrays["cell_count"],
            cell_is_ghost=arrays["cell_is_ghost"],
            cell_center=arrays["cell_center"],
            cell_side=arrays["cell_side"],
            hash=None,
        )
        m = meta["moms"]
        self.moms = TreeMoments(
            p=m["p"],
            tol=m["tol"],
            background=m["background"],
            mean_density=m["mean_density"],
            mac=m["mac"],
            moments=arrays["moments"],
            babs=empty,
            bmax=arrays["bmax"],
            mnorm=empty,
            mnorm2=empty,
            r_crit=arrays["r_crit"],
        )
        self.task = meta["task"]
        self.acc = arrays["acc_out"]
        self.pot = arrays.get("pot_out")
        self.epoch = epoch


def _run_shard(state: _WorkerState, sinks, s0: int, s1: int):
    """Traverse + evaluate one shard, writing into the shared output."""
    from ..gravity.treeforce import evaluate_forces
    from ..tree.traversal import traverse

    task = state.task
    t0 = time.perf_counter()
    inter = traverse(
        state.tree,
        state.moms,
        periodic=task["periodic"],
        ws=task["ws"],
        sink_leaves=sinks,
        xmax=task["xmax"],
    )
    if task["rcut"] is not None:
        from ..gravity.pm import _prune_far

        inter = _prune_far(state.tree, state.moms, inter, task["rcut"])
    t1 = time.perf_counter()
    res = evaluate_forces(
        state.tree,
        state.moms,
        inter,
        softening=task["softening"],
        G=task["G"],
        dtype=np.dtype(task["dtype"]).type,
        want_potential=task["want_potential"],
        kernel=task["kernel"],
        particle_range=(s0, s1),
    )
    t2 = time.perf_counter()
    state.acc[s0:s1] = res.acc
    if state.pot is not None and res.pot is not None:
        state.pot[s0:s1] = res.pot
    stats = dict(res.stats)
    if task.get("check_finite"):
        # per-worker health: count non-finite outputs where they were
        # produced, so the parent can attribute corruption to a shard
        stats["nonfinite_acc"] = int(np.count_nonzero(~np.isfinite(res.acc)))
        if res.pot is not None:
            stats["nonfinite_acc"] += int(np.count_nonzero(~np.isfinite(res.pot)))
    stats["traversal_rounds"] = inter.rounds
    # the serial solver reports interactions/particle from the traversal
    # lists (which exclude the near-field background prism corrections
    # that the evaluate counters include); keep the metric comparable
    stats["traversal_interactions"] = (
        inter.n_cell_interactions(state.tree)
        + inter.n_pp_interactions(state.tree)
        + inter.n_prism_interactions(state.tree)
    )
    n_inter = (
        stats.get("cell_interactions", 0)
        + stats.get("pp_interactions", 0)
        + stats.get("prism_interactions", 0)
    )
    spans = {
        "timers": {
            "executor/traverse": _timer(t1 - t0),
            "executor/evaluate": _timer(t2 - t1),
            "executor/shard": _timer(t2 - t0),
        },
        "counters": {"executor.shards": 1, "executor.interactions": n_inter},
    }
    return stats, spans


def _worker_main(worker_id: int, tasks, results) -> None:
    """Persistent worker loop: pull shards until the ``None`` sentinel."""
    state = _WorkerState()
    while True:
        msg = tasks.get()
        if msg is None:
            state.release()
            return
        epoch, meta, shard_id, sinks, s0, s1 = msg
        try:
            if epoch != state.epoch:
                state.load(epoch, meta)
            stats, spans = _run_shard(state, sinks, s0, s1)
            results.put(("ok", epoch, shard_id, worker_id, stats, spans))
        except Exception:
            results.put(
                ("err", epoch, shard_id, worker_id, traceback.format_exc(), None)
            )


class ForceExecutor:
    """Persistent shared-memory worker pool for treecode force solves.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1).  ``workers=1`` runs the
        whole sink set as a single shard in one worker and is
        bit-identical to the serial path.
    start_method:
        ``multiprocessing`` start method ("fork", "spawn",
        "forkserver"); default is the ``REPRO_START_METHOD``
        environment variable, falling back to the platform default.
    shards_per_worker:
        Queue granularity for dynamic load balancing: the sink leaves
        are cut into up to ``workers * shards_per_worker`` shards.
    """

    def __init__(
        self,
        workers: int,
        start_method: str | None = None,
        shards_per_worker: int = 4,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        method = start_method or os.environ.get("REPRO_START_METHOD") or None
        self._ctx = mp.get_context(method)
        self.workers = int(workers)
        self.shards_per_worker = int(shards_per_worker)
        self.closed = False
        self._epoch = 0
        self._tag = f"{os.getpid():x}{secrets.token_hex(2)}"
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(i, self._tasks, self._results),
                daemon=True,
                name=f"repro-force-{i}",
            )
            for i in range(self.workers)
        ]
        for p in self._procs:
            p.start()
        atexit.register(self.close)

    # ----- sharding -----------------------------------------------------------
    def _make_shards(self, tree):
        """SFC-contiguous sink-leaf shards balanced by particle count.

        Returns ``[(shard_id, sinks, s0, s1), ...]`` where [s0, s1) are
        the key-sorted particle indices owned by the shard; the ranges
        tile [0, N) because SFC-sorted leaf ranges are contiguous.  A
        single shard is encoded as ``sinks=None`` so the worker uses
        the traversal's default sink order — the exact serial stream.
        """
        leaves = tree.leaf_indices
        nshards = min(len(leaves), self.workers * self.shards_per_worker)
        if self.workers == 1 or nshards <= 1:
            return [(0, None, 0, tree.n_particles)]
        order = np.argsort(tree.cell_start[leaves], kind="stable")
        lsfc = leaves[order]
        cum = np.cumsum(tree.cell_count[lsfc])
        n = int(cum[-1])
        targets = np.arange(1, nshards) * n / nshards
        cuts = np.searchsorted(cum, targets, side="left") + 1
        bounds = np.unique(np.concatenate([[0], cuts, [len(lsfc)]]))
        shards = []
        for sid, (b0, b1) in enumerate(zip(bounds[:-1], bounds[1:])):
            sinks = lsfc[b0:b1]
            s0 = int(tree.cell_start[sinks[0]])
            s1 = int(tree.cell_start[sinks[-1]] + tree.cell_count[sinks[-1]])
            shards.append((sid, sinks, s0, s1))
        return shards

    # ----- one force call -----------------------------------------------------
    def compute(
        self,
        tree,
        moms,
        *,
        periodic: bool = False,
        ws: int = 1,
        softening=None,
        kernel=None,
        G: float = 1.0,
        dtype=np.float64,
        want_potential: bool = True,
        rcut: float | None = None,
        xmax: float = 0.6,
        check_finite: bool = False,
        tracer=None,
    ):
        """Traverse + evaluate all sink leaves across the pool.

        The tree and moments must already be built (the upward pass is
        cheap and serial); returns a
        :class:`~repro.gravity.treeforce.ForceResult` in original
        particle order, matching what the serial traverse/evaluate pair
        would produce.
        """
        from ..gravity.treeforce import ForceResult
        from ..instrument import get_tracer

        if self.closed:
            raise RuntimeError("executor is closed")
        tr = tracer if tracer is not None else get_tracer()
        self._epoch += 1
        epoch = self._epoch
        n = tree.n_particles

        arrays = {name: getattr(tree, name) for name in _TREE_ARRAYS}
        arrays.update({name: getattr(moms, name) for name in _MOM_ARRAYS})
        arrays["acc_out"] = np.zeros((n, 3), dtype=np.float64)
        if want_potential:
            arrays["pot_out"] = np.zeros(n, dtype=np.float64)
        meta_segments, segments = _publish(arrays, f"{self._tag}{epoch:x}")
        meta = {
            "segments": meta_segments,
            "box": float(tree.box),
            "nleaf": int(tree.nleaf),
            "moms": {
                "p": moms.p,
                "tol": moms.tol,
                "background": moms.background,
                "mean_density": moms.mean_density,
                "mac": moms.mac,
            },
            "task": {
                "periodic": periodic,
                "ws": ws,
                "xmax": xmax,
                "softening": softening,
                "kernel": kernel,
                "G": G,
                "dtype": np.dtype(dtype).str,
                "want_potential": want_potential,
                "rcut": rcut,
                "check_finite": check_finite,
            },
        }
        try:
            shards = self._make_shards(tree)
            for sid, sinks, s0, s1 in shards:
                self._tasks.put((epoch, meta, sid, sinks, s0, s1))
            shard_stats, shard_spans = self._collect(epoch, len(shards))

            # deterministic merge: disjoint [s0, s1) slices already sit in
            # the shared output; unsort + cast once, exactly like serial
            acc_view = np.ndarray((n, 3), dtype=np.float64, buffer=segments_buf(segments, meta_segments, "acc_out"))
            acc_sorted = np.array(acc_view)
            acc = np.empty_like(acc_sorted)
            acc[tree.order] = acc_sorted
            pot = None
            if want_potential:
                pot_view = np.ndarray((n,), dtype=np.float64, buffer=segments_buf(segments, meta_segments, "pot_out"))
                pot_sorted = np.array(pot_view)
                pot = np.empty_like(pot_sorted)
                pot[tree.order] = pot_sorted
            if np.dtype(dtype) != np.dtype(np.float64):
                acc = acc.astype(dtype)
                if pot is not None:
                    pot = pot.astype(dtype)
        finally:
            for shm in segments:
                try:
                    shm.close()
                    shm.unlink()
                except Exception:
                    pass

        stats = self._merge_stats(shard_stats, shard_spans, n, tr)
        return ForceResult(acc=acc, pot=pot, stats=stats)

    def _collect(self, epoch: int, n_shards: int):
        """Wait for all shard results, watching for dead workers."""
        shard_stats: dict[int, dict] = {}
        shard_spans: dict[int, tuple[int, dict, float]] = {}
        errors = []
        while len(shard_stats) + len(errors) < n_shards:
            try:
                msg = self._results.get(timeout=1.0)
            except _queue.Empty:
                dead = [p.name for p in self._procs if not p.is_alive()]
                if dead:
                    raise RuntimeError(
                        f"force worker(s) died: {', '.join(dead)}"
                    ) from None
                continue
            kind, ep, sid, wid, payload, spans = msg
            if ep != epoch:
                continue  # stale result from an aborted call
            if kind == "err":
                errors.append((sid, payload))
            else:
                shard_stats[sid] = payload
                shard_spans[sid] = (wid, spans, spans["timers"]["executor/shard"]["total_s"])
        if errors:
            sid, tb = errors[0]
            raise RuntimeError(f"shard {sid} failed in worker pool:\n{tb}")
        return shard_stats, shard_spans

    def _merge_stats(self, shard_stats, shard_spans, n: int, tr) -> dict:
        stats = {
            "cell_interactions": 0,
            "pp_interactions": 0,
            "prism_interactions": 0,
            "traversal_interactions": 0,
            "order": 0,
            "traversal_rounds": 0,
        }
        for s in shard_stats.values():
            stats["cell_interactions"] += s.get("cell_interactions", 0)
            stats["pp_interactions"] += s.get("pp_interactions", 0)
            stats["prism_interactions"] += s.get("prism_interactions", 0)
            stats["traversal_interactions"] += s.get("traversal_interactions", 0)
            stats["order"] = s.get("order", stats["order"])
            stats["traversal_rounds"] = max(
                stats["traversal_rounds"], s.get("traversal_rounds", 0)
            )
        if any("nonfinite_acc" in s for s in shard_stats.values()):
            bad = {sid: s["nonfinite_acc"] for sid, s in shard_stats.items()
                   if s.get("nonfinite_acc")}
            stats["health"] = {
                "nonfinite_acc": sum(bad.values()),
                "bad_shards": bad,
            }
        busy = np.zeros(self.workers)
        shard_seconds = [0.0] * len(shard_spans)
        traverse_s = evaluate_s = 0.0
        metrics = getattr(tr, "metrics", None)
        for sid, (wid, spans, shard_s) in shard_spans.items():
            busy[wid] += shard_s
            shard_seconds[sid] = shard_s
            traverse_s += spans["timers"]["executor/traverse"]["total_s"]
            evaluate_s += spans["timers"]["executor/evaluate"]["total_s"]
            if metrics is not None:
                metrics.merge_dict(spans)
        mean_busy = float(busy.mean()) if self.workers else 0.0
        stats["executor"] = {
            "workers": self.workers,
            "n_shards": len(shard_spans),
            "shard_seconds": shard_seconds,
            "worker_busy_s": busy.tolist(),
            "load_imbalance": float(busy.max() / mean_busy - 1.0)
            if mean_busy > 0
            else 0.0,
            "traverse_s": traverse_s,
            "evaluate_s": evaluate_s,
        }
        if getattr(tr, "enabled", False):
            tr.count_vec("executor.worker_busy_s", busy)
        return stats

    # ----- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release every shared-memory segment."""
        if self.closed:
            return
        self.closed = True
        try:
            atexit.unregister(self.close)
        except Exception:
            pass
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except Exception:
                pass
        for p in self._procs:
            p.join(timeout=5.0)
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        for q in (self._tasks, self._results):
            try:
                q.close()
                q.join_thread()
            except Exception:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


def segments_buf(segments, meta_segments, name):
    """The buffer of the published segment holding logical array ``name``."""
    shm_name = meta_segments[name][0]
    for shm in segments:
        if shm.name == shm_name:
            return shm.buf
    raise KeyError(name)


def ensure_executor(current: ForceExecutor | None, workers: int) -> ForceExecutor:
    """Reuse ``current`` if it matches ``workers``, else replace it."""
    if current is not None and not current.closed and current.workers == workers:
        return current
    if current is not None:
        current.close()
    return ForceExecutor(workers)
