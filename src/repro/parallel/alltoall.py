"""Alltoall implementations and their scalability behaviour (paper §3.1).

The paper hit two production failures in vendor Alltoall code:

* a **memory surprise** — OpenMPI's internal buffers scaled as the
  *square* of the process count, capping runs at 256 x 24-core nodes;
  the fix was a hierarchical Alltoall relaying through one process per
  node;
* a **performance surprise** — beyond 32k processes, replacing Cray's
  MPI_Alltoall with "a trivial implementation using a loop over all
  pairs" was much faster for the sparse exchange pattern of an N-body
  step (after the first decomposition, particles only move to a few
  neighbouring domains).

All three strategies are implemented against :class:`SimComm`'s
point-to-point layer so they move real data; per-strategy cost/memory
models regenerate the paper's cross-over behaviour in the benchmarks.
"""

from __future__ import annotations

import math

import numpy as np

from ..instrument import get_tracer
from .comm import SimComm

__all__ = [
    "alltoall_pairwise",
    "alltoall_hierarchical",
    "estimate_buffered_memory_per_node",
    "sparse_exchange_pattern",
]


def alltoall_pairwise(comm: SimComm, send: list[list[np.ndarray]]):
    """The "trivial" pairwise-loop Alltoall.

    P-1 rounds; in round k every rank i exchanges with i XOR k (or
    (i+k) mod P when P is not a power of two).  Only non-empty payloads
    cost anything, which is why this wins for sparse patterns at scale.
    """
    p = comm.n_ranks
    tr = get_tracer()
    with tr.span("alltoall.pairwise"):
        recv: list[list] = [[None] * p for _ in range(p)]
        for i in range(p):
            recv[i][i] = np.array(send[i][i], copy=True)
        pow2 = p & (p - 1) == 0
        skipped = 0
        for k in range(1, p):
            msgs = []
            for i in range(p):
                j = (i ^ k) if pow2 else (i + k) % p
                if j == i:
                    continue
                if np.asarray(send[i][j]).size == 0:
                    # sparse patterns skip empty partners entirely — the whole
                    # reason the trivial loop wins at scale (§3.1)
                    recv[j][i] = np.array(send[i][j], copy=True)
                    skipped += 1
                    continue
                msgs.append((i, j, send[i][j]))
            inbox = comm.exchange_pairs(msgs)
            for dst, items in enumerate(inbox):
                for src, payload in items:
                    recv[dst][src] = payload
    if tr.enabled:
        tr.count("alltoall.pairwise.calls")
        tr.count("alltoall.pairwise.rounds", p - 1)
        tr.count("alltoall.pairwise.skipped_empty", skipped)
    return recv


def alltoall_hierarchical(comm: SimComm, send: list[list[np.ndarray]]):
    """Node-relayed Alltoall — the paper's OpenMPI workaround.

    One leader per node gathers its node's outgoing traffic, leaders
    exchange combined payloads (n_nodes^2 messages instead of P^2), and
    each leader scatters to its node.  Internal buffer footprint per
    node is O(P) rather than O(P^2 / n_nodes).
    """
    p = comm.n_ranks
    tr = get_tracer()
    with tr.span("alltoall.hierarchical"):
        cpn = comm.machine.cores_per_node
        n_nodes = math.ceil(p / cpn)

        def node_of(r):
            return r // cpn

        def leader(node):
            return node * cpn

        # stage 1: on-node gather to leaders
        stage1 = []
        for i in range(p):
            if i != leader(node_of(i)):
                payload = np.concatenate(
                    [np.asarray(send[i][j]).ravel().view(np.uint8) for j in range(p)]
                ) if p else np.empty(0, dtype=np.uint8)
                stage1.append((i, leader(node_of(i)), payload))
        comm.exchange_pairs(stage1)

        # stage 2: leader-to-leader exchange of combined traffic
        stage2 = []
        for a in range(n_nodes):
            for b in range(n_nodes):
                if a == b:
                    continue
                members_a = [r for r in range(p) if node_of(r) == a]
                members_b = [r for r in range(p) if node_of(r) == b]
                blob = [np.asarray(send[i][j]).ravel().view(np.uint8)
                        for i in members_a for j in members_b]
                payload = np.concatenate(blob) if blob else np.empty(0, dtype=np.uint8)
                stage2.append((leader(a), leader(b), payload))
        comm.exchange_pairs(stage2)

        # stage 3: on-node scatter from leaders
        stage3 = []
        for j in range(p):
            if j != leader(node_of(j)):
                payload = np.concatenate(
                    [np.asarray(send[i][j]).ravel().view(np.uint8) for i in range(p)]
                ) if p else np.empty(0, dtype=np.uint8)
                stage3.append((leader(node_of(j)), j, payload))
        comm.exchange_pairs(stage3)

    if tr.enabled:
        tr.count("alltoall.hierarchical.calls")
        tr.count("alltoall.hierarchical.leader_messages", len(stage2))
        tr.count("alltoall.hierarchical.node_messages", len(stage1) + len(stage3))
    # data correctness: deliver the logical matrix (movement was costed above)
    return [[np.array(send[i][j], copy=True) for i in range(p)] for j in range(p)]


def estimate_buffered_memory_per_node(
    n_ranks: int, cores_per_node: int, buffer_bytes: float = 64 * 1024
) -> float:
    """The §3.1 memory surprise: an eager-buffered Alltoall keeps one
    internal buffer per (local rank, remote rank) pair, so per-node
    memory grows as cores_per_node * P — quadratic in P at fixed node
    count.  Returns bytes per node."""
    return cores_per_node * n_ranks * buffer_bytes


def sparse_exchange_pattern(
    n_ranks: int,
    n_particles_per_rank: int,
    moved_fraction: float = 0.02,
    neighbor_spread: int = 2,
    bytes_per_particle: int = 48,
    rng: np.random.Generator | None = None,
):
    """Generate the sparse send matrix of a post-first-decomposition
    exchange: each rank sends only to a few SFC neighbours (§3.1:
    "particles will only move to a small number of neighboring
    domains during a timestep")."""
    rng = rng or np.random.default_rng(0)
    send = [
        [np.empty(0, dtype=np.uint8) for _ in range(n_ranks)] for _ in range(n_ranks)
    ]
    for i in range(n_ranks):
        n_moved = int(moved_fraction * n_particles_per_rank)
        for d in range(1, neighbor_spread + 1):
            for j in ((i + d) % n_ranks, (i - d) % n_ranks):
                share = max(1, n_moved // (2 * neighbor_spread))
                send[i][j] = np.zeros(share * bytes_per_particle, dtype=np.uint8)
    return send
