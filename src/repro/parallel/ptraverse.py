"""Parallel tree traversal with request/reply accounting (paper §3.2).

Runs the production force calculation decomposed over P simulated
ranks: the domain decomposition assigns each rank an SFC-contiguous
block of sink leaves; each rank traverses *its own* sinks against the
global tree (exactly what HOT does once remote hcells have been
fetched), and every touched source cell or leaf owned by another rank
is accounted as a request/reply pair through the ABM layer.

Because the data is the real global tree, the parallel result is
bit-identical to the serial one — the point of the exercise is the
*accounting*: per-rank interaction work (load imbalance), remote-cell
request counts and bytes (communication volume), and the modeled
overlap of communication with computation.  These numbers feed
Table 2's stage breakdown and Fig. 5's strong-scaling model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tree import Tree, TreeMoments, traverse_lists
from .abm import ABMEngine
from .machine import MachineModel

__all__ = ["ParallelTraversalStats", "parallel_traversal", "parallel_forces"]

_HCELL_BYTES = 128  # key, moments summary, bounds — the paper's hcell record
_REQUEST_BYTES = 16


@dataclass
class ParallelTraversalStats:
    """Per-rank work and communication of one parallel traversal."""

    n_ranks: int
    work_per_rank: np.ndarray  # interaction counts
    remote_cells_requested: np.ndarray  # unique remote cells per rank
    request_bytes: np.ndarray
    reply_bytes: np.ndarray
    abm_time_s: float
    abm_wire_messages: int
    abm_posted_messages: int
    interactions_total: int

    @property
    def load_imbalance(self) -> float:
        w = self.work_per_rank
        return float(w.max() / max(w.mean(), 1e-300) - 1.0)

    @property
    def remote_fraction(self) -> float:
        return float(
            self.remote_cells_requested.sum()
            / max(self.interactions_total, 1)
        )


def parallel_traversal(
    tree: Tree,
    moms: TreeMoments,
    n_ranks: int,
    machine: MachineModel | None = None,
    periodic: bool = False,
    ws: int = 1,
    batching: bool = True,
    traversal: str = "leaf",
) -> ParallelTraversalStats:
    """Decompose sink leaves over ranks and account the traversal.

    Rank boundaries follow the key-sorted particle order (the SFC
    decomposition); ownership of a source cell is the rank owning its
    first particle.  The default ``traversal="leaf"`` walk partitions
    interaction work exactly across ranks; the hierarchical walk is
    also exact (restricted walks replay the unrestricted decisions)
    but groups accepts by sink leaf through inheritance.
    """
    machine = machine or MachineModel()
    n = tree.n_particles
    # SFC-contiguous particle blocks
    bounds = (np.arange(n_ranks + 1) * n) // n_ranks
    leaf = tree.leaf_indices
    leaf_sorted = leaf[np.argsort(tree.cell_start[leaf])]
    starts = tree.cell_start[leaf_sorted]
    leaf_rank = np.searchsorted(bounds, starts, side="right") - 1
    # cell ownership by first particle (ghosts: by their parent's range)
    cell_owner = np.searchsorted(bounds, tree.cell_start, side="right") - 1
    ghost = tree.cell_is_ghost
    if np.any(ghost):
        cell_owner[ghost] = cell_owner[tree.cell_parent[ghost]]

    work = np.zeros(n_ranks, dtype=np.int64)
    remote_cells = np.zeros(n_ranks, dtype=np.int64)
    req_bytes = np.zeros(n_ranks)
    rep_bytes = np.zeros(n_ranks)

    engine = ABMEngine(n_ranks, machine, batching=batching)
    engine.on("request", _handle_request)
    engine.on("reply", _handle_reply)

    total_inter = 0
    for r in range(n_ranks):
        sinks = leaf_sorted[leaf_rank == r]
        if len(sinks) == 0:
            continue
        inter = traverse_lists(
            tree, moms, traversal=traversal,
            periodic=periodic, ws=ws, sink_leaves=sinks,
        )
        w = (
            inter.n_cell_interactions(tree)
            + inter.n_pp_interactions(tree)
            + inter.n_prism_interactions(tree)
        )
        work[r] = w
        total_inter += w
        touched = np.unique(
            np.concatenate([inter.cell_src, inter.leaf_src, inter.ghost_src])
        )
        owners = cell_owner[touched]
        remote = touched[owners != r]
        remote_cells[r] = len(remote)
        # one request per remote owner batch; replies carry hcell records
        for owner in np.unique(owners[owners != r]):
            cells = remote[cell_owner[remote] == owner]
            req_bytes[r] += _REQUEST_BYTES * len(cells)
            rep_bytes[owner] += _HCELL_BYTES * len(cells)
            engine.post(
                r, int(owner), "request",
                payload=len(cells), nbytes=_REQUEST_BYTES * len(cells),
            )
    t = engine.run()
    return ParallelTraversalStats(
        n_ranks=n_ranks,
        work_per_rank=work,
        remote_cells_requested=remote_cells,
        request_bytes=req_bytes,
        reply_bytes=rep_bytes,
        abm_time_s=t,
        abm_wire_messages=engine.wire_messages,
        abm_posted_messages=engine.messages_posted,
        interactions_total=total_inter,
    )


def parallel_forces(
    tree: Tree,
    moms: TreeMoments,
    n_ranks: int,
    softening=None,
    periodic: bool = False,
    ws: int = 1,
    traversal: str = "leaf",
):
    """Compute forces rank by rank and assemble the global answer.

    Each simulated rank traverses only its own SFC-contiguous block of
    sink leaves and evaluates only those interactions; the assembled
    result equals the serial one up to floating-point re-association
    (evaluation chunks differ) — the key correctness property of HOT's
    decomposition: parallelism changes who computes, never what is
    computed.

    Returns (acc, pot) in original particle order.
    """
    import numpy as _np

    from ..gravity.treeforce import evaluate_forces

    n = tree.n_particles
    bounds = (_np.arange(n_ranks + 1) * n) // n_ranks
    leaf = tree.leaf_indices
    leaf_sorted = leaf[_np.argsort(tree.cell_start[leaf])]
    starts = tree.cell_start[leaf_sorted]
    leaf_rank = _np.searchsorted(bounds, starts, side="right") - 1
    acc = _np.zeros((n, 3))
    pot = _np.zeros(n)
    for r in range(n_ranks):
        sinks = leaf_sorted[leaf_rank == r]
        if len(sinks) == 0:
            continue
        inter = traverse_lists(
            tree, moms, traversal=traversal,
            periodic=periodic, ws=ws, sink_leaves=sinks,
        )
        res = evaluate_forces(
            tree, moms, inter, softening=softening, want_potential=True
        )
        acc += res.acc
        pot += res.pot
    return acc, pot


def _handle_request(engine: ABMEngine, msg):
    """A rank asked for ``payload`` hcells: reply with their records."""
    engine.post(
        msg.dst, msg.src, "reply",
        payload=msg.payload, nbytes=_HCELL_BYTES * int(msg.payload),
    )


def _handle_reply(engine: ABMEngine, msg):
    """Requested hcells arrive — nothing further to do in the model."""
