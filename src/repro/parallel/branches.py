"""Branch-node exchange: building the shared top of the tree (paper §3.2).

Each rank owns a contiguous SFC interval of particles; the cells fully
inside that interval are local, and the coarsest such cells are the
rank's *branch nodes*.  Every rank must also know enough of the other
ranks' upper tree structure to start its traversal.

WS93 solved this with a **global concatenation** of all branch nodes —
O(total branches) storage and communication per rank, fine at 10^3
ranks, "unacceptable overhead" at 10^5 because most of those nodes
"will never be used directly".

2HOT replaces it with **pairwise hierarchical aggregation**: log2(P)
rounds in which rank i exchanges with rank i XOR 2^k along the 1-d SFC
order, each time merging the received branch set *coarsened to the
level of detail the receiver can actually use* (far regions keep only
ancestors).  Per-rank data becomes O(branches_local + log P * detail),
which is what scales to 256k ranks.

Both algorithms are implemented over real key sets so their outputs
can be compared; communication volumes feed the benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..keys import KEY_BITS, ancestor_key, key_level, parent_key
from .comm import SimComm

__all__ = [
    "branch_nodes",
    "exchange_global_concat",
    "exchange_hierarchical",
    "coarsen_for_receiver",
]


def branch_nodes(sorted_keys: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Coarsest cell keys exactly covering particles [lo, hi) of a
    globally key-sorted array.

    The classic segment-cover: walk from ``lo``, at each position take
    the largest cell that (a) starts there (its key is aligned) and
    (b) fits inside the remaining range *of key space owned by this
    rank* (approximated by the particle interval — sufficient for
    accounting and structure tests).
    """
    if hi <= lo:
        return np.empty(0, dtype=np.uint64)
    keys = np.asarray(sorted_keys, dtype=np.uint64)
    placeholder = 1 << (3 * KEY_BITS)
    lo_body = int(keys[lo]) - placeholder
    hi_body = int(keys[hi - 1]) - placeholder
    out = []
    # greedy SFC range cover: at each position take the largest aligned
    # octree cell fitting inside [cur, hi_body]
    cur = lo_body
    while cur <= hi_body:
        m = 0  # cell spans 8^m body keys
        while m < KEY_BITS:
            size_next = 1 << (3 * (m + 1))
            if cur % size_next != 0 or cur + size_next - 1 > hi_body:
                break
            m += 1
        level = KEY_BITS - m
        cell_key = (1 << (3 * level)) | (cur >> (3 * m))
        out.append(cell_key)
        cur += 1 << (3 * m)
    return np.array(out, dtype=np.uint64)


def coarsen_for_receiver(
    keys: np.ndarray,
    receiver_lo: np.uint64,
    receiver_hi: np.uint64,
    detail_levels: int = 3,
) -> np.ndarray:
    """Coarsen a branch set for a remote receiver.

    Nodes whose key interval is far (in SFC distance) from the
    receiver's interval are replaced by ancestors ``detail_levels``
    above their natural level; near nodes are kept.  Deduplicated.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if len(keys) == 0:
        return keys
    lv = key_level(keys)
    # strip the placeholder bit before expanding to body-key coordinates
    stripped = keys ^ (np.uint64(1) << (np.uint64(3) * lv.astype(np.uint64)))
    body_first = stripped << ((KEY_BITS - lv) * 3).astype(np.uint64)
    # distance in body-key units to the receiver interval
    lo = np.uint64(receiver_lo)
    hi = np.uint64(receiver_hi)
    below = body_first < lo
    above = body_first > hi
    dist = np.zeros(len(keys), dtype=np.float64)
    dist[below] = (lo - body_first[below]).astype(np.float64)
    dist[above] = (body_first[above] - hi).astype(np.float64)
    span_total = float(np.uint64(1) << np.uint64(3 * KEY_BITS))
    far = dist > span_total / 64.0
    out = keys.copy()
    lift = np.minimum(lv[far], detail_levels).astype(np.uint64)
    out[far] = keys[far] >> (np.uint64(3) * lift)
    return np.unique(out)


def exchange_global_concat(comm: SimComm, branches: list[np.ndarray]):
    """WS93: every rank receives every branch node.

    Returns (per-rank node sets, ledger deltas are in comm.ledger).
    """
    gathered = comm.allgather(branches)
    return [np.unique(np.concatenate(g)) for g in gathered]


def exchange_hierarchical(
    comm: SimComm,
    branches: list[np.ndarray],
    intervals: list[tuple[int, int]],
    detail_levels: int = 3,
):
    """2HOT: log2(P) pairwise aggregation rounds with coarsening.

    ``intervals`` gives each rank's (lo_key, hi_key) ownership in body
    key space, used to coarsen what is sent to distant partners.
    """
    p = comm.n_ranks
    known = [np.unique(b) for b in branches]
    rounds = max(1, math.ceil(math.log2(max(p, 2))))
    for k in range(rounds):
        step = 1 << k
        msgs = []
        for i in range(p):
            j = i ^ step
            if j >= p or j == i:
                continue
            payload = coarsen_for_receiver(
                known[i], intervals[j][0], intervals[j][1], detail_levels
            )
            msgs.append((i, j, payload))
        inbox = comm.exchange_pairs(msgs)
        for dst, items in enumerate(inbox):
            for _src, payload in items:
                if len(payload):
                    known[dst] = np.unique(np.concatenate([known[dst], payload]))
    return known
