"""Cost model of a message-passing machine.

The paper's parallel algorithms are exercised on real data by
:mod:`repro.parallel.comm`; wall-clock is *modeled* with the standard
postal (alpha-beta) abstraction plus node structure, which is what the
paper's own scalability arguments use implicitly ("number of
communication buffers scaling as the number of processes squared",
latency hiding, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "JAGUAR_LIKE", "CLUSTER_LIKE"]


@dataclass(frozen=True)
class MachineModel:
    """Alpha-beta communication model with node topology.

    Attributes
    ----------
    latency_s:
        Per-message latency alpha (seconds).
    bandwidth_Bps:
        Per-link bandwidth beta (bytes/second).
    cores_per_node:
        Ranks sharing one network endpoint.
    node_bandwidth_Bps:
        Injection bandwidth of one node (shared by its ranks).
    flops_per_core:
        Sustainable flop/s of one core for the gravity kernels (the
        ~40%-of-peak figure the paper quotes).
    memory_per_node_bytes:
        For modelling the OpenMPI buffer blow-up of §3.1.
    """

    latency_s: float = 2e-6
    bandwidth_Bps: float = 5e9
    cores_per_node: int = 16
    node_bandwidth_Bps: float = 1e10
    flops_per_core: float = 8e9
    memory_per_node_bytes: float = 32e9
    name: str = "generic"

    def ptp_time(self, nbytes: float) -> float:
        """Point-to-point message time (postal model)."""
        return self.latency_s + nbytes / self.bandwidth_Bps


#: roughly a Cray XT5 node (Jaguar, the paper's Fig. 5 machine)
JAGUAR_LIKE = MachineModel(
    latency_s=5e-6,
    bandwidth_Bps=3e9,
    cores_per_node=16,
    node_bandwidth_Bps=6e9,
    flops_per_core=7e9,
    memory_per_node_bytes=16e9,
    name="jaguar-like",
)

#: a commodity cluster (Mustang-ish)
CLUSTER_LIKE = MachineModel(
    latency_s=1.5e-6,
    bandwidth_Bps=4e9,
    cores_per_node=24,
    node_bandwidth_Bps=8e9,
    flops_per_core=9e9,
    memory_per_node_bytes=64e9,
    name="cluster-like",
)
