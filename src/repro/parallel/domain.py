"""Space-filling-curve domain decomposition (paper §3.1, Fig. 4).

Positions map to SFC keys (Morton, as the hashed tree uses, or Hilbert
for more compact domains); splitting the sorted key line into P
work-balanced segments assigns each rank a contiguous curve interval —
spatially compact, cache-friendly, and incrementally updatable because
particles move only a short distance along the curve per step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..keys import hilbert_keys_from_positions, keys_from_positions
from .comm import SimComm
from .sort import choose_splitters

__all__ = ["Decomposition", "decompose", "domain_surface_stats"]


@dataclass
class Decomposition:
    """Assignment of particles to ranks along the space-filling curve."""

    rank_of: np.ndarray  # (N,) owning rank per particle
    splitters: np.ndarray  # (P-1,) key splitters
    keys: np.ndarray  # (N,) SFC key per particle
    curve: str

    @property
    def n_ranks(self) -> int:
        return len(self.splitters) + 1

    def counts(self) -> np.ndarray:
        return np.bincount(self.rank_of, minlength=self.n_ranks)

    def load_imbalance(self, weights: np.ndarray | None = None) -> float:
        """max(work) / mean(work) - 1 over ranks."""
        if weights is None:
            work = self.counts().astype(np.float64)
        else:
            work = np.bincount(
                self.rank_of, weights=weights, minlength=self.n_ranks
            )
        return float(work.max() / work.mean() - 1.0)


def decompose(
    pos: np.ndarray,
    n_ranks: int,
    weights: np.ndarray | None = None,
    curve: str = "morton",
    box: float = 1.0,
    previous: Decomposition | None = None,
) -> Decomposition:
    """Split particles into ``n_ranks`` SFC-contiguous, work-balanced domains.

    ``weights`` are per-particle work estimates (interaction counts
    from the previous step in HOT); splits equalize cumulative weight
    along the curve.  ``previous`` warm-starts splitter placement.
    """
    pos = np.asarray(pos, dtype=np.float64)
    if curve == "morton":
        keys = keys_from_positions(pos % box, box)
    elif curve == "hilbert":
        keys = hilbert_keys_from_positions(pos % box, box)
    else:
        raise ValueError(f"unknown curve {curve!r}")
    order = np.argsort(keys, kind="stable")
    w = (
        np.ones(len(pos))
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    csum = np.cumsum(w[order])
    total = csum[-1]
    targets = np.arange(1, n_ranks) * total / n_ranks
    cut = np.searchsorted(csum, targets)
    splitters = keys[order][np.minimum(cut, len(pos) - 1)]
    rank_of = np.empty(len(pos), dtype=np.int64)
    rank_of[order] = np.searchsorted(splitters, keys[order], side="right")
    return Decomposition(rank_of=rank_of, splitters=splitters, keys=keys, curve=curve)


def domain_surface_stats(
    pos: np.ndarray, decomp: Decomposition, probe: float = 0.02, box: float = 1.0,
    rng: np.random.Generator | None = None, n_probe: int = 4000,
) -> dict:
    """Compactness diagnostics of a decomposition (Fig. 4's point).

    Estimates the fraction of particles within ``probe`` of a domain
    boundary (a proxy for the communication surface) by sampling
    particle pairs at separation ~probe and counting cross-domain
    pairs, plus the mean spatial extent of each domain.
    """
    rng = rng or np.random.default_rng(0)
    pos = np.asarray(pos, dtype=np.float64)
    n = len(pos)
    take = min(n_probe, n)
    idx = rng.choice(n, take, replace=False)
    u = rng.standard_normal((take, 3))
    u /= np.linalg.norm(u, axis=1)[:, None]
    partner = (pos[idx] + probe * u) % box
    from ..keys import keys_from_positions as kf
    from ..keys import hilbert_keys_from_positions as hf

    pk = kf(partner, box) if decomp.curve == "morton" else hf(partner, box)
    partner_rank = np.searchsorted(decomp.splitters, pk, side="right")
    cross = partner_rank != decomp.rank_of[idx]
    # domain extents
    p = decomp.n_ranks
    extent = np.zeros(p)
    for r in range(p):
        sel = decomp.rank_of == r
        if np.any(sel):
            extent[r] = (pos[sel].max(axis=0) - pos[sel].min(axis=0)).max()
    return {
        "boundary_fraction": float(cross.mean()),
        "mean_extent": float(extent.mean()),
        "max_extent": float(extent.max()),
        "counts": decomp.counts(),
    }
