"""Linear matter power spectrum (CLASS substitute).

The paper computes P(k) with the CLASS Boltzmann code (§3.4.4).  Here
the transfer function is the Eisenstein & Hu (1998) fitting formula —
both the full form with baryon acoustic oscillations and the smooth
"no-wiggle" variant — normalised to sigma8.  This reproduces every
P(k)-derived quantity the paper needs (IC realisations, sigma(M) for
the Tinker08 mass function, the top-hat variance of eq. 3) at the
percent level in shape, which is sufficient because all of the paper's
P(k) figures are *ratios* between runs sharing the same input
spectrum.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import integrate

from .growth import GrowthCalculator
from .params import CosmologyParams

__all__ = ["LinearPower", "tophat_window", "tophat_window_deriv"]


def tophat_window(x):
    """Fourier transform of a real-space spherical top hat, W(kR).

    W(x) = 3 (sin x - x cos x) / x^3, with the x->0 limit of 1 handled
    via a Taylor series to stay accurate for small arguments.
    """
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    small = np.abs(x) < 1e-3
    xs = x[small]
    out[small] = 1.0 - xs**2 / 10.0 + xs**4 / 280.0
    xl = x[~small]
    out[~small] = 3.0 * (np.sin(xl) - xl * np.cos(xl)) / xl**3
    return out


def tophat_window_deriv(x):
    """dW/dx for the top-hat window (needed by dln(sigma)/dln(M))."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    small = np.abs(x) < 1e-3
    xs = x[small]
    out[small] = -xs / 5.0 + xs**3 / 70.0
    xl = x[~small]
    out[~small] = (9.0 * xl * np.cos(xl) + 3.0 * (xl**2 - 3.0) * np.sin(xl)) / xl**4
    return out


class LinearPower:
    """Eisenstein-Hu linear power spectrum, sigma8-normalised.

    Parameters
    ----------
    params:
        The cosmology.
    kind:
        "eh" (full EH98 with BAO) or "eh_nowiggle" (smooth).

    Wavenumbers are in h/Mpc and P(k) in (Mpc/h)^3 throughout.
    """

    def __init__(self, params: CosmologyParams, kind: str = "eh",
                 kmin: float = 0.0, kmax: float = np.inf):
        if kind not in ("eh", "eh_nowiggle"):
            raise ValueError(f"unknown transfer kind {kind!r}")
        self.params = params
        self.kind = kind
        self.growth = GrowthCalculator(params)
        self._setup_eh()
        # mode-range truncation: a finite simulation box only contains
        # k in [2 pi / L, pi n / L]; sigma(M) computed with these limits
        # is what the simulation's halo statistics actually respond to
        # (the §6 near-Nyquist discreteness systematic).  Normalisation
        # to sigma8 always uses the full integral.
        self.kmin = float(kmin)
        self.kmax = float(kmax)
        self._norm = 1.0
        save = self.kmin, self.kmax
        self.kmin, self.kmax = 0.0, np.inf
        self._norm = (params.sigma8 / self.sigma_r(8.0)) ** 2
        self.kmin, self.kmax = save

    # ----- EH98 machinery ------------------------------------------------------
    def _setup_eh(self):
        p = self.params
        h = p.h
        self.om0h2 = p.omega_m * h * h
        self.ob0h2 = p.omega_b * h * h
        self.f_baryon = p.omega_b / p.omega_m
        self.theta = p.t_cmb / 2.7 if p.t_cmb > 0 else 2.7255 / 2.7

        om0h2, ob0h2, theta = self.om0h2, self.ob0h2, self.theta
        # redshift of matter-radiation equality and the sound horizon,
        # EH98 eqs. (2)-(6)
        self.z_eq = 2.50e4 * om0h2 / theta**4
        self.k_eq = 7.46e-2 * om0h2 / theta**2  # 1/Mpc (no h)
        b1 = 0.313 * om0h2**-0.419 * (1.0 + 0.607 * om0h2**0.674)
        b2 = 0.238 * om0h2**0.223
        self.z_drag = (
            1291.0
            * om0h2**0.251
            / (1.0 + 0.659 * om0h2**0.828)
            * (1.0 + b1 * ob0h2**b2)
        )
        self.r_drag = 31.5 * ob0h2 / theta**4 * (1e3 / self.z_drag)
        self.r_eq = 31.5 * ob0h2 / theta**4 * (1e3 / self.z_eq)
        self.sound_horizon = (
            2.0
            / (3.0 * self.k_eq)
            * math.sqrt(6.0 / self.r_eq)
            * math.log(
                (math.sqrt(1.0 + self.r_drag) + math.sqrt(self.r_drag + self.r_eq))
                / (1.0 + math.sqrt(self.r_eq))
            )
        )
        self.k_silk = (
            1.6 * ob0h2**0.52 * om0h2**0.73 * (1.0 + (10.4 * om0h2) ** -0.95)
        )
        # CDM suppression, EH98 eqs. (11)-(12)
        a1 = (46.9 * om0h2) ** 0.670 * (1.0 + (32.1 * om0h2) ** -0.532)
        a2 = (12.0 * om0h2) ** 0.424 * (1.0 + (45.0 * om0h2) ** -0.582)
        fb = self.f_baryon
        self.alpha_c = a1 ** (-fb) * a2 ** (-(fb**3))
        bb1 = 0.944 / (1.0 + (458.0 * om0h2) ** -0.708)
        bb2 = (0.395 * om0h2) ** -0.0266
        self.beta_c = 1.0 / (1.0 + bb1 * ((1.0 - fb) ** bb2 - 1.0))
        # baryon amplitudes, EH98 eqs. (14)-(24)
        y = (1.0 + self.z_eq) / (1.0 + self.z_drag)
        gy = y * (
            -6.0 * math.sqrt(1.0 + y)
            + (2.0 + 3.0 * y)
            * math.log((math.sqrt(1.0 + y) + 1.0) / (math.sqrt(1.0 + y) - 1.0))
        )
        self.alpha_b = 2.07 * self.k_eq * self.sound_horizon * (1.0 + self.r_drag) ** -0.75 * gy
        self.beta_b = (
            0.5
            + fb
            + (3.0 - 2.0 * fb) * math.sqrt((17.2 * om0h2) ** 2 + 1.0)
        )
        self.beta_node = 8.41 * om0h2**0.435
        # no-wiggle shape parameters, EH98 eqs. (26), (28)-(31)
        self.alpha_gamma = (
            1.0
            - 0.328 * math.log(431.0 * om0h2) * fb
            + 0.38 * math.log(22.3 * om0h2) * fb**2
        )
        self.s_approx = (
            44.5 * math.log(9.83 / om0h2) / math.sqrt(1.0 + 10.0 * ob0h2**0.75)
        )

    @staticmethod
    def _t0(q, alpha_c, beta_c):
        """EH98 eq. (19-20) pressureless transfer shape."""
        c = 14.2 / alpha_c + 386.0 / (1.0 + 69.9 * q**1.08)
        ln_arg = np.log(np.e + 1.8 * beta_c * q)
        return ln_arg / (ln_arg + c * q * q)

    def transfer(self, k):
        """Matter transfer function T(k), k in h/Mpc."""
        k = np.asarray(k, dtype=float)
        if self.kind == "eh_nowiggle":
            return self._transfer_nowiggle(k)
        kmpc = k * self.params.h  # 1/Mpc
        q = kmpc / (13.41 * self.k_eq)
        s = self.sound_horizon
        fb = self.f_baryon
        # CDM part, EH98 eq. (17-18)
        f = 1.0 / (1.0 + (kmpc * s / 5.4) ** 4)
        tc = f * self._t0(q, 1.0, self.beta_c) + (1.0 - f) * self._t0(
            q, self.alpha_c, self.beta_c
        )
        # baryon part, EH98 eq. (21-24)
        ks = kmpc * s
        s_tilde = s / (1.0 + (self.beta_node / ks) ** 3) ** (1.0 / 3.0)
        x = kmpc * s_tilde
        j0 = np.sinc(x / np.pi)  # spherical Bessel j0(x) = sin(x)/x
        tb = (
            self._t0(q, 1.0, 1.0) / (1.0 + (ks / 5.2) ** 2)
            + self.alpha_b
            / (1.0 + (self.beta_b / ks) ** 3)
            * np.exp(-((kmpc / self.k_silk) ** 1.4))
        ) * j0
        return fb * tb + (1.0 - fb) * tc

    def _transfer_nowiggle(self, k):
        """EH98 §4.2 zero-baryon-oscillation ("no-wiggle") form."""
        kmpc = k * self.params.h
        s = self.s_approx
        gamma_eff = self.om0h2 / self.params.h * (
            self.alpha_gamma
            + (1.0 - self.alpha_gamma) / (1.0 + (0.43 * kmpc * s) ** 4)
        )
        q = k * self.theta**2 / gamma_eff
        l0 = np.log(2.0 * np.e + 1.8 * q)
        c0 = 14.2 + 731.0 / (1.0 + 62.5 * q)
        return l0 / (l0 + c0 * q * q)

    # ----- spectra ----------------------------------------------------------------
    def power(self, k, a: float = 1.0):
        """Linear P(k, a) in (Mpc/h)^3.

        P ∝ k^{n_s} T^2(k) D^2(a), normalised so sigma(8 Mpc/h, a=1) =
        sigma8.
        """
        k = np.asarray(k, dtype=float)
        d = 1.0 if a == 1.0 else float(self.growth.growth_ode(a))
        t = self.transfer(k)
        return self._norm * k**self.params.n_s * t * t * d * d

    def delta2(self, k, a: float = 1.0):
        """Dimensionless power Δ²(k) = k³ P(k) / (2π²) (paper eq. 3 uses
        δ_k² with the dk/k measure, i.e. this quantity)."""
        k = np.asarray(k, dtype=float)
        return k**3 * self.power(k, a) / (2.0 * np.pi**2)

    # ----- variances -----------------------------------------------------------------
    def sigma_r(self, r_mpc_h: float, a: float = 1.0) -> float:
        """RMS linear fluctuation in top-hat spheres of radius r [Mpc/h].

        sigma^2(r) = ∫ (dk/k) Δ²(k) W(kr)^2 — the integral of paper
        eq. (3).  For r = 100 Mpc/h in the standard model the paper
        quotes sigma ≈ 0.068, driving the background-subtraction
        argument of §2.2.1.
        """

        def integrand(lnk):
            k = math.exp(lnk)
            return float(self.delta2(k, a) * tophat_window(k * r_mpc_h) ** 2)

        lo = max(1e-5, self.kmin)
        hi = min(1e3 / r_mpc_h * 50.0, self.kmax)
        if hi <= lo:
            return 0.0
        val, _ = integrate.quad(
            integrand, math.log(lo), math.log(hi), limit=400
        )
        return math.sqrt(val)

    def sigma_m(self, m_msun_h, a: float = 1.0):
        """sigma(M): RMS fluctuation in spheres enclosing mean mass M [Msun/h]."""
        m = np.asarray(m_msun_h, dtype=float)
        rho = self.params.rho_mean0
        r = (3.0 * m / (4.0 * np.pi * rho)) ** (1.0 / 3.0)
        scalar = r.ndim == 0
        out = np.array([self.sigma_r(float(rv), a) for rv in np.atleast_1d(r)])
        return float(out[0]) if scalar else out

    def dlnsigma_dlnm(self, m_msun_h, rel_step: float = 1e-3):
        """d ln sigma / d ln M by centred finite difference (mass function)."""
        m = np.asarray(m_msun_h, dtype=float)
        hi = self.sigma_m(m * (1.0 + rel_step))
        lo = self.sigma_m(m * (1.0 - rel_step))
        return (np.log(hi) - np.log(lo)) / (2.0 * np.log1p(rel_step))

    def mass_of_radius(self, r_mpc_h):
        """Mean mass within a sphere of comoving radius r [Mpc/h]."""
        r = np.asarray(r_mpc_h, dtype=float)
        return 4.0 * np.pi / 3.0 * self.params.rho_mean0 * r**3
