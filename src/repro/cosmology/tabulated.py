"""Tabulated background input — the CLASS coupling mode of §2.1.

"2HOT integrates directly with the computation of the background
quantities and growth function provided by CLASS, either in tabular
form or by linking directly with the CLASS library."  The analogue
here: a :class:`TabulatedBackground` built from arrays of
(a, E(a) = H/H0) — e.g. exported from a Boltzmann code — that is a
drop-in replacement for the analytic :class:`repro.cosmology.Background`
wherever expansion rates or drift/kick integrals are needed, plus
round-trip helpers to write/read the table as a small text file.

Interpolation is log-log cubic (the background quantities are smooth
power laws per epoch), and the drift/kick quadratures integrate the
interpolant so a simulation driven by a table reproduces one driven by
the analytic Friedmann solution to interpolation accuracy — which is
exactly how the paper cross-checks its CLASS coupling against the
analytic scale factor.
"""

from __future__ import annotations

import numpy as np
from scipy import integrate, interpolate

from .background import Background
from .params import CosmologyParams

__all__ = ["TabulatedBackground", "write_background_table", "read_background_table"]


class TabulatedBackground:
    """E(a) from a table; mirrors the Background API surface it replaces."""

    def __init__(self, a: np.ndarray, efunc: np.ndarray):
        a = np.asarray(a, dtype=np.float64)
        e = np.asarray(efunc, dtype=np.float64)
        if len(a) != len(e) or len(a) < 4:
            raise ValueError("need >= 4 matching (a, E) samples")
        if np.any(np.diff(a) <= 0):
            raise ValueError("scale factors must be strictly increasing")
        if np.any(e <= 0):
            raise ValueError("E(a) must be positive")
        self.a_min = float(a[0])
        self.a_max = float(a[-1])
        self._spline = interpolate.CubicSpline(np.log(a), np.log(e))

    @classmethod
    def from_params(
        cls, params: CosmologyParams, a_min: float = 1e-4, a_max: float = 1.0,
        n: int = 256,
    ) -> "TabulatedBackground":
        """Sample an analytic background into a table (for tests and as
        the exporter a Boltzmann code would stand behind)."""
        a = np.geomspace(a_min, a_max, n)
        return cls(a, Background(params).efunc(a))

    # ----- Background-compatible surface --------------------------------------
    def efunc(self, a):
        a = np.asarray(a, dtype=np.float64)
        if np.any(a < self.a_min * (1 - 1e-9)) or np.any(a > self.a_max * (1 + 1e-9)):
            raise ValueError(
                f"a outside tabulated range [{self.a_min}, {self.a_max}]"
            )
        return np.exp(self._spline(np.log(np.clip(a, self.a_min, self.a_max))))

    def e2(self, a):
        return self.efunc(a) ** 2

    def hubble(self, a, h: float = 0.7):
        return 100.0 * h * self.efunc(a)

    # ----- drift/kick integrals -------------------------------------------------
    def drift_factor(self, a0: float, a1: float) -> float:
        val, _ = integrate.quad(
            lambda a: 1.0 / (a**3 * float(self.efunc(a))), a0, a1, limit=200
        )
        return val

    def kick_factor(self, a0: float, a1: float) -> float:
        val, _ = integrate.quad(
            lambda a: 1.0 / (a**2 * float(self.efunc(a))), a0, a1, limit=200
        )
        return val


def write_background_table(path, params: CosmologyParams, a_min: float = 1e-4,
                           a_max: float = 1.0, n: int = 256) -> None:
    """Export a background table as two-column ASCII (a, E)."""
    a = np.geomspace(a_min, a_max, n)
    e = Background(params).efunc(a)
    header = (
        f"# background table for {params.name}\n"
        f"# omega_m={params.omega_m} omega_de={params.omega_de} "
        f"omega_r={params.omega_r:.6e}\n# a  E(a)=H/H0\n"
    )
    with open(path, "w") as f:
        f.write(header)
        for av, ev in zip(a, e):
            f.write(f"{av:.12e} {ev:.12e}\n")


def read_background_table(path) -> TabulatedBackground:
    """Read a two-column (a, E) ASCII table."""
    data = np.loadtxt(path)
    if data.ndim != 2 or data.shape[1] < 2:
        raise ValueError("expected two-column (a, E) table")
    return TabulatedBackground(data[:, 0], data[:, 1])
