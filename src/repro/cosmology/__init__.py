"""Cosmological background, growth and linear power (CLASS substitute).

Public API::

    from repro.cosmology import (
        CosmologyParams, PLANCK2013, WMAP1, WMAP7, EDS,
        Background, GrowthCalculator, LinearPower, DriftKickIntegrals,
    )
"""

from .background import Background
from .growth import GrowthCalculator
from .params import EDS, PLANCK2013, WMAP1, WMAP5, WMAP7, CosmologyParams
from .power import LinearPower, tophat_window, tophat_window_deriv
from .tabulated import (
    TabulatedBackground,
    read_background_table,
    write_background_table,
)
from .timeintegrals import (
    DriftKickIntegrals,
    code_mean_density,
    code_particle_mass,
)

__all__ = [
    "Background",
    "CosmologyParams",
    "DriftKickIntegrals",
    "EDS",
    "GrowthCalculator",
    "LinearPower",
    "PLANCK2013",
    "TabulatedBackground",
    "WMAP1",
    "WMAP5",
    "WMAP7",
    "code_mean_density",
    "code_particle_mass",
    "read_background_table",
    "tophat_window",
    "tophat_window_deriv",
    "write_background_table",
]
