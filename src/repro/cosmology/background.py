"""Friedmann background evolution (paper eq. 1).

Replaces the tabulated background quantities 2HOT obtains from CLASS
(§2.1): the Hubble rate H(a), the age of the Universe t(a), comoving
distances, and the density parameters of each species as functions of
the scale factor.  Everything here is a direct quadrature of

    (H/H0)^2 = Omega_R/a^4 + Omega_M/a^3 + Omega_k/a^2 + Omega_DE f(a)

with f(a) the CPL dark-energy density ratio.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import integrate

from .params import CosmologyParams

__all__ = ["Background"]

# Conversion: (km/s/Mpc)^-1 in Gyr.  1/H0 [Gyr] = 977.79222 / (H0 [km/s/Mpc])
_HINV_GYR = 977.79222168


class Background:
    """Evaluates background quantities for a :class:`CosmologyParams`.

    All methods accept scalars or numpy arrays of the scale factor
    ``a`` (a=1 today) and broadcast element-wise.
    """

    def __init__(self, params: CosmologyParams):
        self.params = params

    # ----- expansion rate ----------------------------------------------------
    def e2(self, a):
        """(H(a)/H0)^2 from the Friedmann equation."""
        p = self.params
        a = np.asarray(a, dtype=float)
        return (
            p.omega_r / a**4
            + p.omega_m / a**3
            + p.omega_k / a**2
            + p.omega_de * self._de_ratio(a)
        )

    def _de_ratio(self, a):
        p = self.params
        if p.w0 == -1.0 and p.wa == 0.0:
            return np.ones_like(np.asarray(a, dtype=float))
        a = np.asarray(a, dtype=float)
        return a ** (-3.0 * (1.0 + p.w0 + p.wa)) * np.exp(-3.0 * p.wa * (1.0 - a))

    def efunc(self, a):
        """H(a)/H0."""
        return np.sqrt(self.e2(a))

    def hubble(self, a):
        """H(a) in km/s/Mpc."""
        return 100.0 * self.params.h * self.efunc(a)

    # ----- densities ---------------------------------------------------------
    def omega_m_a(self, a):
        """Matter density parameter at scale factor a."""
        a = np.asarray(a, dtype=float)
        return self.params.omega_m / a**3 / self.e2(a)

    def omega_de_a(self, a):
        """Dark-energy density parameter at scale factor a."""
        a = np.asarray(a, dtype=float)
        return self.params.omega_de * self._de_ratio(a) / self.e2(a)

    def omega_r_a(self, a):
        """Radiation density parameter at scale factor a."""
        a = np.asarray(a, dtype=float)
        return self.params.omega_r / a**4 / self.e2(a)

    def rho_crit_a(self, a):
        """Critical density at a, in h^2 Msun/Mpc^3 (comoving volume uses
        rho_mean0 = omega_m * rho_crit(a=1) instead)."""
        from .params import RHO_CRIT0

        return RHO_CRIT0 * self.e2(a)

    # ----- times and distances -----------------------------------------------
    def age_gyr(self, a=1.0) -> float:
        """Age of the Universe at scale factor ``a`` in Gyr.

        t(a) = (1/H0) int_0^a da' / (a' E(a')).
        """
        a = float(a)

        def integrand(x):
            return 1.0 / (x * self.efunc(x))

        val, _ = integrate.quad(integrand, 0.0, a, limit=200)
        return val * _HINV_GYR / (100.0 * self.params.h)

    def lookback_gyr(self, a) -> float:
        """Lookback time from today to scale factor a, in Gyr."""
        return self.age_gyr(1.0) - self.age_gyr(a)

    def comoving_distance(self, a) -> float:
        """Comoving distance to scale factor ``a`` in Mpc/h.

        chi(a) = (c/H0) int_a^1 da' / (a'^2 E(a')), reported in h^-1 Mpc.
        """
        a = float(a)

        def integrand(x):
            return 1.0 / (x * x * self.efunc(x))

        val, _ = integrate.quad(integrand, a, 1.0, limit=200)
        # c/H0 in Mpc/h = 2997.92458
        return val * 2997.92458

    def conformal_time(self, a) -> float:
        """Conformal time eta(a) = int_0^a da'/(a'^2 E(a')) in (c/H0) Mpc/h."""
        a = float(a)

        def integrand(x):
            return 1.0 / (x * x * self.efunc(x))

        val, _ = integrate.quad(integrand, 1e-10, a, limit=200)
        return val * 2997.92458

    def a_of_t(self, t_gyr: float, a_bracket=(1e-6, 2.0)) -> float:
        """Invert age(a) = t via bisection."""
        from scipy import optimize

        lo, hi = a_bracket
        return float(
            optimize.brentq(lambda a: self.age_gyr(a) - t_gyr, lo, hi, xtol=1e-12)
        )

    # ----- matter-radiation equality ------------------------------------------
    @property
    def a_equality(self) -> float:
        """Scale factor at matter-radiation equality."""
        p = self.params
        if p.omega_r == 0.0:
            return 0.0
        return p.omega_r / p.omega_m

    @property
    def z_equality(self) -> float:
        a_eq = self.a_equality
        return math.inf if a_eq == 0.0 else 1.0 / a_eq - 1.0
