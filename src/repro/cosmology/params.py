"""Cosmological parameter sets.

The paper (§2.1) stresses that at the precision 2HOT targets, the
radiation content of the Universe (photons plus massless neutrinos)
must be included in the background evolution: with the Planck 2013
parameters, neglecting radiation shifts the age of the Universe by
3.7 Myr and the linear growth factor from z=99 by almost 5%
(82.8 -> 79.0).  :class:`CosmologyParams` therefore carries the photon
temperature and effective neutrino number, from which the radiation
density is derived, and an optional CPL dark-energy equation of state
(w0, wa) so that "any cosmology which can be defined in CLASS" has a
usable analogue here.

Units follow the conventions of the cosmological literature: H0 in
km/s/Mpc, densities as fractions of the critical density today.
"""

from __future__ import annotations

import dataclasses
import math

__all__ = [
    "CosmologyParams",
    "PLANCK2013",
    "WMAP7",
    "WMAP5",
    "WMAP1",
    "EDS",
]

# Physical constants (CODATA / PDG values, SI unless noted).
_C_KM_S = 299792.458  # speed of light [km/s]
# Critical density today in units of h^2 Msun / Mpc^3.
RHO_CRIT0 = 2.77536627e11
# Radiation density parameter per unit (T_cmb/2.7255 K)^4 h^-2 from
# Omega_gamma h^2 = 2.469e-5 (T/2.7255)^4.
_OMEGA_GAMMA_H2_REF = 2.469e-5
_T_CMB_REF = 2.7255


@dataclasses.dataclass(frozen=True)
class CosmologyParams:
    """A homogeneous background cosmology.

    Attributes
    ----------
    omega_m:
        Total matter density fraction today (CDM + baryons).
    omega_b:
        Baryon density fraction today (subset of ``omega_m``).
    omega_de:
        Dark energy density fraction today.  If ``flat`` construction
        helpers are used this is inferred from the closure relation.
    h:
        Dimensionless Hubble parameter, H0 = 100 h km/s/Mpc.
    sigma8:
        RMS linear density fluctuation in 8 Mpc/h spheres at z=0,
        used to normalise the power spectrum.
    n_s:
        Scalar spectral index of the primordial power spectrum.
    t_cmb:
        CMB temperature today [K]; sets the photon density.
    n_eff:
        Effective number of massless neutrino species.
    w0, wa:
        CPL dark-energy equation of state w(a) = w0 + wa (1 - a).
    include_radiation:
        If False, photons and neutrinos are dropped from the Friedmann
        equation (the paper keeps this switch so 2HOT can be compared
        with codes that ignore radiation).
    """

    omega_m: float
    omega_b: float
    omega_de: float
    h: float
    sigma8: float = 0.8
    n_s: float = 0.96
    t_cmb: float = _T_CMB_REF
    n_eff: float = 3.046
    w0: float = -1.0
    wa: float = 0.0
    include_radiation: bool = True
    name: str = "custom"

    # ----- derived densities -------------------------------------------------
    @property
    def omega_gamma(self) -> float:
        """Photon density fraction today."""
        if not self.include_radiation:
            return 0.0
        return (
            _OMEGA_GAMMA_H2_REF
            * (self.t_cmb / _T_CMB_REF) ** 4
            / self.h**2
        )

    @property
    def omega_nu(self) -> float:
        """Massless-neutrino density fraction today."""
        if not self.include_radiation:
            return 0.0
        return self.omega_gamma * self.n_eff * (7.0 / 8.0) * (4.0 / 11.0) ** (4.0 / 3.0)

    @property
    def omega_r(self) -> float:
        """Total radiation density fraction today (photons + neutrinos)."""
        return self.omega_gamma + self.omega_nu

    @property
    def omega_k(self) -> float:
        """Curvature density fraction today from the closure relation."""
        return 1.0 - self.omega_m - self.omega_de - self.omega_r

    @property
    def omega_c(self) -> float:
        """Cold-dark-matter density fraction today."""
        return self.omega_m - self.omega_b

    @property
    def is_flat(self) -> bool:
        return abs(self.omega_k) < 1e-8

    # ----- scales ------------------------------------------------------------
    @property
    def hubble_distance(self) -> float:
        """c / H0 in Mpc/h? No: in Mpc (proper); divide by h for Mpc/h."""
        return _C_KM_S / (100.0 * self.h)

    @property
    def rho_mean0(self) -> float:
        """Comoving mean matter density today [h^2 Msun / Mpc^3]."""
        return RHO_CRIT0 * self.omega_m

    def de_density_ratio(self, a: float) -> float:
        """rho_DE(a) / rho_DE(a=1) for the CPL equation of state."""
        if self.w0 == -1.0 and self.wa == 0.0:
            return 1.0
        return a ** (-3.0 * (1.0 + self.w0 + self.wa)) * math.exp(
            -3.0 * self.wa * (1.0 - a)
        )

    def particle_mass(self, box_mpc_h: float, n_particles: int) -> float:
        """Mass of one N-body particle [Msun/h] for a cube of side
        ``box_mpc_h`` Mpc/h sampled with ``n_particles`` equal-mass bodies."""
        volume = box_mpc_h**3
        return self.rho_mean0 * volume / n_particles

    def with_(self, **kw) -> "CosmologyParams":
        """Return a copy with selected fields replaced."""
        return dataclasses.replace(self, **kw)


def _flat(omega_m: float, omega_b: float, h: float, sigma8: float, n_s: float,
          name: str, include_radiation: bool = True, **kw) -> CosmologyParams:
    """Build a spatially flat cosmology (omega_de from closure)."""
    probe = CosmologyParams(
        omega_m=omega_m, omega_b=omega_b, omega_de=0.0, h=h,
        sigma8=sigma8, n_s=n_s, include_radiation=include_radiation, name=name, **kw
    )
    return probe.with_(omega_de=1.0 - omega_m - probe.omega_r)


#: Planck 2013 XVI cosmological parameters, the headline model of the paper.
PLANCK2013 = _flat(0.3175, 0.0490, 0.6711, 0.8344, 0.9624, name="Planck2013")

#: WMAP 7-year parameters (the model superseded by Planck in the paper).
WMAP7 = _flat(0.272, 0.0455, 0.704, 0.810, 0.967, name="WMAP7")

#: WMAP 5-year parameters.
WMAP5 = _flat(0.258, 0.0441, 0.719, 0.796, 0.963, name="WMAP5")

#: WMAP 1st-year parameters, against which Tinker08 was calibrated (Fig. 8).
WMAP1 = _flat(0.270, 0.0463, 0.72, 0.90, 0.99, name="WMAP1")

#: Einstein-de Sitter: pure matter, analytic growth D(a) = a.
EDS = CosmologyParams(
    omega_m=1.0, omega_b=0.05, omega_de=0.0, h=0.7, sigma8=0.8, n_s=1.0,
    include_radiation=False, name="EdS",
)
