"""Drift and kick integrals for symplectic comoving integration.

2HOT adopts the symplectic leapfrog of Quinn et al. (1997) (§2.3),
in which positions and canonical momenta are advanced with integrals
of the background expansion rather than naive dt increments.  With
comoving position x, canonical momentum p = a^2 dx/dt and time in
units of 1/H0, the equations of motion (paper eq. 2) become

    dx/dt = p / a^2            ->  drift:  x += p * ∫ dt / a^2
    dp/dt = -g(x) / a          ->  kick:   p += -g * ∫ dt / a

where g is the comoving-coordinate gravitational acceleration with the
uniform background subtracted.  Changing variables to the scale factor
(dt = da / (a E(a)) in 1/H0 units) gives the two quadratures evaluated
here.  The paper computes these with code added to CLASS; we integrate
the same expressions with adaptive Gauss-Kronrod quadrature.

Code units used by :mod:`repro.simulation`: box side = 1, time = 1/H0,
G = 1, so the comoving mean density is rho_bar = 3 Omega_m / (8 pi)
and each of N equal-mass particles has mass 3 Omega_m / (8 pi N).
"""

from __future__ import annotations

import math

from scipy import integrate

from .background import Background
from .params import CosmologyParams

__all__ = ["DriftKickIntegrals", "code_mean_density", "code_particle_mass"]


def code_mean_density(params: CosmologyParams) -> float:
    """Comoving mean matter density in code units (G=1, t=1/H0, L=box)."""
    return 3.0 * params.omega_m / (8.0 * math.pi)


def code_particle_mass(params: CosmologyParams, n_particles: int) -> float:
    """Equal particle mass in code units for a unit box."""
    return code_mean_density(params) / n_particles


class DriftKickIntegrals:
    """Evaluates the Quinn et al. (1997) drift/kick factors.

    Both factors are returned in 1/H0 time units and reduce to the
    plain interval Δt in the static (a ≡ 1) limit, which is used as a
    unit test.
    """

    def __init__(self, params: CosmologyParams):
        self.params = params
        self.bg = Background(params)

    def _quad(self, f, a0: float, a1: float) -> float:
        if a1 == a0:
            return 0.0
        val, _ = integrate.quad(f, a0, a1, limit=200, epsabs=1e-14, epsrel=1e-12)
        return val

    def drift_factor(self, a0: float, a1: float) -> float:
        """∫_{a0}^{a1} da / (a^3 E(a)) — multiplies the momentum in a drift."""
        e = self.bg.efunc
        return self._quad(lambda a: 1.0 / (a**3 * float(e(a))), a0, a1)

    def kick_factor(self, a0: float, a1: float) -> float:
        """∫_{a0}^{a1} da / (a^2 E(a)) — multiplies the acceleration in a kick."""
        e = self.bg.efunc
        return self._quad(lambda a: 1.0 / (a**2 * float(e(a))), a0, a1)

    def time_interval(self, a0: float, a1: float) -> float:
        """Cosmic time elapsed between a0 and a1, in 1/H0 units."""
        e = self.bg.efunc
        return self._quad(lambda a: 1.0 / (a * float(e(a))), a0, a1)
