"""Linear growth of matter perturbations.

2HOT (§2.1) gets the growth function either from CLASS (numerically,
including the effect of radiation) or analytically when radiation and
non-trivial dark energy are excluded.  Both paths are reproduced:

* :meth:`GrowthCalculator.growth_ode` integrates the sub-horizon growth
  ODE in ln(a) with the full Friedmann background, including the
  Meszaros suppression of growth during radiation domination.  The
  paper's headline check — the z=99 -> z=0 growth ratio moving from
  82.8 to 79.0 (almost 5%) when radiation is dropped for Planck 2013
  parameters — is a regression test of this module.
* :meth:`GrowthCalculator.growth_heath` evaluates the classic Heath
  (1977) integral, exact for matter + curvature + Lambda.

Also provided: the logarithmic growth rate f = dlnD/dlna, and the
second-order (2LPT) growth factor used by the IC generator.
"""

from __future__ import annotations

import numpy as np
from scipy import integrate

from .background import Background
from .params import CosmologyParams

__all__ = ["GrowthCalculator"]


class GrowthCalculator:
    """Computes D(a), f(a) and the 2LPT growth factor for a cosmology."""

    def __init__(self, params: CosmologyParams, a_init: float = 1e-6):
        self.params = params
        self.bg = Background(params)
        self.a_init = a_init
        self._spline = None

    # ----- ODE growth ----------------------------------------------------------
    def _rhs(self, lna, y):
        """Growth ODE in x = ln a for y = (D, dD/dlna).

        D'' + [2 + dlnH/dlnA] D' = (3/2) Omega_m(a) D, with radiation
        (and dark energy) entering only through the background.
        """
        a = np.exp(lna)
        e2 = float(self.bg.e2(a))
        # dln(H)/dln(a) = (1/2) dln(E^2)/dln(a)
        p = self.params
        de = p.omega_de * float(self.bg._de_ratio(a))
        dlne2 = (
            -4.0 * p.omega_r / a**4
            - 3.0 * p.omega_m / a**3
            - 2.0 * p.omega_k / a**2
            - 3.0 * (1.0 + p.w0 + p.wa * (1.0 - a)) * de
        ) / e2
        dlnh = 0.5 * dlne2
        om_a = p.omega_m / a**3 / e2
        d, dp = y
        return [dp, -(2.0 + dlnh) * dp + 1.5 * om_a * d]

    def _solve(self, a_eval):
        a_eval = np.atleast_1d(np.asarray(a_eval, dtype=float))
        a0 = self.a_init
        # During matter domination D ~ a; during radiation domination the
        # growing mode is the Meszaros solution D ~ 1 + 3a/(2a_eq); starting
        # deep in the radiation era with D ∝ a and letting the ODE relax
        # through equality captures the suppression automatically.
        lna0 = np.log(a0)
        lna_end = np.log(max(a_eval.max(), 1.0))
        sol = integrate.solve_ivp(
            self._rhs,
            (lna0, lna_end),
            [a0, a0],
            t_eval=np.log(np.clip(a_eval, a0, None)),
            rtol=1e-9,
            atol=1e-12,
            dense_output=True,
            method="RK45",
        )
        if not sol.success:  # pragma: no cover - defensive
            raise RuntimeError(f"growth ODE failed: {sol.message}")
        return sol

    def growth_ode(self, a, normalize: bool = True):
        """Linear growth factor D(a) from the ODE.

        With ``normalize`` (default), D(a=1) = 1; otherwise D matches the
        raw growing-mode amplitude with D ~ a deep in matter domination.
        """
        a = np.asarray(a, dtype=float)
        scalar = a.ndim == 0
        sol = self._solve(np.atleast_1d(a))
        d = sol.y[0]
        if normalize:
            sol1 = self._solve(np.array([1.0]))
            d = d / sol1.y[0][-1]
        return float(d[0]) if scalar else d

    def growth_rate(self, a):
        """f(a) = dlnD/dlna from the ODE solution."""
        a = np.asarray(a, dtype=float)
        scalar = a.ndim == 0
        sol = self._solve(np.atleast_1d(a))
        f = sol.y[1] / sol.y[0]
        return float(f[0]) if scalar else f

    # ----- analytic (Heath) growth ----------------------------------------------
    def growth_heath(self, a, normalize: bool = True):
        """Heath (1977) integral growth factor.

        D(a) ∝ H(a) ∫_0^a da' / (a' H(a'))^3.  Exact for cosmologies with
        matter, curvature and a cosmological constant but **no radiation**;
        2HOT keeps this path for comparison with codes lacking radiation.
        """
        p = self.params

        def e_norad(x):
            return np.sqrt(
                p.omega_m / x**3 + p.omega_k / x**2 + p.omega_de
            )

        def one(av):
            val, _ = integrate.quad(
                lambda x: 1.0 / (x * e_norad(x)) ** 3, 1e-12, av, limit=200
            )
            return e_norad(av) * val

        a = np.asarray(a, dtype=float)
        scalar = a.ndim == 0
        d = np.array([one(av) for av in np.atleast_1d(a)])
        if normalize:
            d = d / one(1.0)
        return float(d[0]) if scalar else d

    # ----- 2LPT ------------------------------------------------------------------
    def growth_2lpt(self, a):
        """Second-order growth factor D2(a).

        Uses the standard fit D2 ≈ -(3/7) D1^2 Omega_m(a)^{-1/143}
        (Bouchet et al. 1995), adequate for 2LPT initial conditions.
        Returned with the conventional negative sign.
        """
        a = np.asarray(a, dtype=float)
        d1 = self.growth_ode(a, normalize=False)
        om_a = self.bg.omega_m_a(a)
        return -3.0 / 7.0 * d1**2 * om_a ** (-1.0 / 143.0)

    def growth_ratio(self, a_from: float, a_to: float = 1.0) -> float:
        """D(a_to)/D(a_from) — the factor by which linear fluctuations grow."""
        d = self.growth_ode(np.array([a_from, a_to]), normalize=False)
        return float(d[1] / d[0])
