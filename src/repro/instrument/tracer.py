"""Hierarchical tracer: nestable spans, counters, structured events.

The measurement layer the paper's evaluation implies: Table 2's stage
breakdown needs per-stage wall-clock, §7's efficiency metric needs
interaction counters, and the Gflops accounting needs flop counters —
all attributable to *where in the call tree* they happened.  A
:class:`Tracer` provides

* ``with tracer.span("tree_build"):`` — nestable, per-thread spans
  whose closures accumulate into a shared :class:`Metrics` registry
  under hierarchical paths ("force/tree_build");
* ``tracer.count("interactions", n)`` / ``count_vec`` — monotonic
  scalar and per-rank vector counters;
* ``tracer.emit({...})`` — structured records streamed to a JSONL sink.

Instrumentation must cost nothing when off: the module-level default is
a :class:`NullTracer` whose ``span`` returns one preallocated no-op
context manager and whose counter methods are empty — call sites pay a
dict lookup and an attribute test, nothing else.  ``set_tracer`` /
``use_tracer`` install a real tracer process-wide.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from .events import JsonlSink
from .metrics import Metrics

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


class _NullSpan:
    """Shared do-nothing span; ``seconds`` is always 0.0."""

    __slots__ = ()
    seconds = 0.0
    path = ""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: every operation is a no-op."""

    enabled = False

    def span(self, name: str):
        return _NULL_SPAN

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def count_vec(self, name: str, values) -> None:
        pass

    def emit(self, record: dict) -> None:
        pass

    def stage_times(self) -> dict:
        return {}

    @property
    def counters(self) -> dict:
        return {}

    def flush(self) -> None:
        pass


NULL_TRACER = NullTracer()


class Span:
    """One timed region; created by :meth:`Tracer.span`, used as a
    context manager.  After exit, ``seconds`` holds the elapsed wall
    time and the closure has been recorded under ``path``."""

    __slots__ = ("name", "path", "seconds", "_tracer", "_t0")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self.name = name
        self.path = ""
        self.seconds = 0.0
        self._t0 = 0.0

    def __enter__(self):
        self.path = self._tracer._push(self.name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self._t0
        self._tracer._pop(self)
        return False


class Tracer:
    """Thread-safe hierarchical tracer backed by a :class:`Metrics`
    registry and (optionally) a JSONL event sink.

    Each thread keeps its own span stack, so concurrent traversals
    nest independently while their timings land in one registry.

    Parameters
    ----------
    sink:
        A :class:`~repro.instrument.events.JsonlSink`, a path (a sink
        is opened for it), or None for metrics-only tracing.
    emit_spans:
        Also stream one JSONL record per closed span (off by default —
        per-step records are usually the right granularity).
    """

    enabled = True

    def __init__(self, sink=None, emit_spans: bool = False, metrics: Metrics | None = None):
        if sink is not None and not isinstance(sink, JsonlSink):
            sink = JsonlSink(sink)
        self.sink = sink
        self.emit_spans = emit_spans
        self.metrics = metrics or Metrics()
        self._tls = threading.local()

    # ----- span stack (per thread) ---------------------------------------------
    def _stack(self) -> list:
        try:
            return self._tls.stack
        except AttributeError:
            self._tls.stack = []
            return self._tls.stack

    def _push(self, name: str) -> str:
        stack = self._stack()
        path = f"{stack[-1]}/{name}" if stack else name
        stack.append(path)
        return path

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] == span.path:
            stack.pop()
        elif span.path in stack:  # exception unwound through inner spans
            del stack[stack.index(span.path):]
        self.metrics.add_time(span.path, span.seconds)
        if self.emit_spans and self.sink is not None:
            # t0/t1 are perf_counter stamps (arbitrary origin, shared
            # within the process) so a trace supports lane/timeline
            # reconstruction, not just per-path totals; tid keys the
            # emitting thread to a lane in trace-event exports
            self.sink.emit(
                {"type": "span", "path": span.path, "seconds": span.seconds,
                 "t0": span._t0, "t1": span._t0 + span.seconds,
                 "tid": threading.get_ident()}
            )

    @property
    def current_path(self) -> str:
        stack = self._stack()
        return stack[-1] if stack else ""

    # ----- public API -----------------------------------------------------------
    def span(self, name: str) -> Span:
        return Span(self, name)

    def count(self, name: str, value: float = 1.0) -> None:
        self.metrics.add_count(name, value)

    def count_vec(self, name: str, values) -> None:
        self.metrics.add_vec(name, values)

    def emit(self, record: dict) -> None:
        if self.sink is not None:
            self.sink.emit(record)

    def stage_times(self) -> dict[str, float]:
        return self.metrics.stage_times()

    @property
    def counters(self) -> dict[str, float]:
        return dict(self.metrics.counters)

    def flush(self) -> None:
        """Stream a counter/timer snapshot and flush the sink."""
        if self.sink is not None:
            self.sink.emit({"type": "metrics", **self.metrics.to_dict()})
            self.sink.flush()

    def close(self) -> None:
        if self.sink is not None:
            self.flush()
            self.sink.close()


_global_lock = threading.Lock()
_global_tracer = NULL_TRACER


def get_tracer():
    """The process-wide tracer (a no-op :data:`NULL_TRACER` by default)."""
    return _global_tracer


def set_tracer(tracer) -> None:
    """Install ``tracer`` process-wide; ``None`` restores the no-op."""
    global _global_tracer
    with _global_lock:
        _global_tracer = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer):
    """Temporarily install ``tracer`` as the process-wide default."""
    previous = get_tracer()
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
