"""Per-run metrics registry: timers, scalar counters, per-rank vectors.

One :class:`Metrics` instance accumulates everything a run produces —
span wall-clock totals keyed by hierarchical path ("force/traverse"),
monotonic scalar counters (interactions, flops, bytes moved) and
per-rank vector counters (bytes/messages per simulated rank).  Updates
are lock-protected so concurrent threads (or the thread-safe
:class:`~repro.instrument.tracer.Tracer` above it) can share one
registry; registries from independent runs merge associatively.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = ["TimerStat", "Metrics"]


@dataclass
class TimerStat:
    """Aggregate of all closures of one span path."""

    total_s: float = 0.0
    calls: int = 0
    min_s: float = float("inf")
    max_s: float = 0.0

    def add(self, seconds: float) -> None:
        self.total_s += seconds
        self.calls += 1
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    def merge(self, other: "TimerStat") -> None:
        self.total_s += other.total_s
        self.calls += other.calls
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)


class Metrics:
    """Thread-safe registry of timers, counters and vector counters."""

    def __init__(self):
        self._lock = threading.Lock()
        self.timers: dict[str, TimerStat] = {}
        self.counters: dict[str, float] = {}
        self.vectors: dict[str, np.ndarray] = {}

    # ----- recording -----------------------------------------------------------
    def add_time(self, path: str, seconds: float) -> None:
        with self._lock:
            stat = self.timers.get(path)
            if stat is None:
                stat = self.timers[path] = TimerStat()
            stat.add(float(seconds))

    def add_count(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def add_vec(self, name: str, values) -> None:
        """Accumulate a per-rank (or any per-index) vector counter.

        Vectors of different lengths are aligned at index 0 and the
        accumulator grows to the longer length, so runs at different
        rank counts can still share a registry.
        """
        v = np.asarray(values, dtype=np.float64).ravel()
        with self._lock:
            cur = self.vectors.get(name)
            if cur is None:
                self.vectors[name] = v.copy()
            elif len(cur) == len(v):
                cur += v
            else:
                out = np.zeros(max(len(cur), len(v)))
                out[: len(cur)] += cur
                out[: len(v)] += v
                self.vectors[name] = out

    # ----- reading / combining ----------------------------------------------------
    def stage_times(self) -> dict[str, float]:
        """Total seconds per span path."""
        with self._lock:
            return {k: v.total_s for k, v in self.timers.items()}

    def top_timers(self, n: int = 10) -> list[tuple[str, float, int]]:
        """The ``n`` hottest span paths as ``(path, total_s, calls)``,
        largest total first — the registry keeps these per run so hot
        paths stay queryable after the process is gone."""
        with self._lock:
            items = [(k, v.total_s, v.calls) for k, v in self.timers.items()]
        items.sort(key=lambda kv: kv[1], reverse=True)
        return items[:n]

    def merge(self, other: "Metrics") -> None:
        with other._lock:
            timers = {k: TimerStat(v.total_s, v.calls, v.min_s, v.max_s)
                      for k, v in other.timers.items()}
            counters = dict(other.counters)
            vectors = {k: v.copy() for k, v in other.vectors.items()}
        with self._lock:
            for k, v in timers.items():
                if k in self.timers:
                    self.timers[k].merge(v)
                else:
                    self.timers[k] = v
        for k, v in counters.items():
            self.add_count(k, v)
        for k, v in vectors.items():
            self.add_vec(k, v)

    def merge_dict(self, snapshot: dict) -> None:
        """Merge a :meth:`to_dict` snapshot (e.g. shipped back from a
        worker process, where the live registry cannot be pickled)."""
        for k, v in snapshot.get("timers", {}).items():
            other = TimerStat(
                v.get("total_s", 0.0), v.get("calls", 0),
                v.get("min_s", float("inf")), v.get("max_s", 0.0),
            )
            with self._lock:
                if k in self.timers:
                    self.timers[k].merge(other)
                else:
                    self.timers[k] = other
        for k, v in snapshot.get("counters", {}).items():
            self.add_count(k, v)
        for k, v in snapshot.get("vectors", {}).items():
            self.add_vec(k, v)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the whole registry."""
        with self._lock:
            return {
                "timers": {
                    k: {"total_s": v.total_s, "calls": v.calls,
                        "min_s": v.min_s, "max_s": v.max_s}
                    for k, v in self.timers.items()
                },
                "counters": dict(self.counters),
                "vectors": {k: v.tolist() for k, v in self.vectors.items()},
            }
