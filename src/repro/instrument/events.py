"""Structured-event sink: newline-delimited JSON records on disk.

The tracer (and the simulation driver) emit one small dict per event —
a closed span, a per-step summary, a counter flush — and the sink
appends each as one JSON line, so a run's trace is greppable,
streamable and trivially machine-readable.  :func:`read_jsonl` is the
matching loader.
"""

from __future__ import annotations

import io
import json
import threading
from pathlib import Path

import numpy as np

__all__ = ["JsonlSink", "read_jsonl"]


def _jsonable(obj):
    """Best-effort conversion of numpy scalars/arrays for json.dumps."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


class JsonlSink:
    """Append structured records to a JSONL file (or any text stream).

    Writes are line-atomic under a lock so multiple threads sharing one
    tracer produce a valid file.  Usable as a context manager; a sink
    constructed from a path owns (and closes) its file handle, a sink
    wrapping a caller's stream leaves closing to the caller.
    """

    def __init__(self, target):
        if isinstance(target, (str, Path)):
            self._fh = open(target, "a", encoding="utf-8")
            self._owns = True
        elif isinstance(target, io.IOBase) or hasattr(target, "write"):
            self._fh = target
            self._owns = False
        else:
            raise TypeError("target must be a path or a writable text stream")
        self._lock = threading.Lock()
        self.records_written = 0

    def emit(self, record: dict) -> None:
        line = json.dumps(record, default=_jsonable)
        with self._lock:
            self._fh.write(line + "\n")
            self.records_written += 1

    def flush(self) -> None:
        with self._lock:
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            self._fh.flush()
            if self._owns:
                self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def read_jsonl(path) -> list[dict]:
    """Load every record of a JSONL trace file."""
    out = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
