"""Measured-vs-modeled cross-check against :mod:`repro.perfmodel`.

The perfmodel package predicts stage costs from first principles (flop
counts from the generated kernels, machine rates from the catalog); the
tracer measures what actually happened.  This module closes the loop:
given a solver's measured stats it computes the flop count the
interaction mix implies, the force-evaluation time the machine model
predicts, and the achieved flop rate — the validation the ROADMAP's
perf work needs before any speedup claim.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CrossCheck", "perfmodel_crosscheck", "flops_from_stats"]


def flops_from_stats(stats: dict, want_potential: bool = True) -> float:
    """Flops implied by a ``ForceResult.stats`` interaction mix.

    Uses the honest per-interaction costs measured from the generated
    kernels (:mod:`repro.perfmodel.flops`): cell interactions at the
    recorded expansion order, pp interactions at the paper's 28-flop
    monopole rate, prism (background cube) interactions approximated at
    the monopole rate — the analytic cube force is a comparable-length
    arithmetic chain — and, in fmm-hybrid mode, M2L translations and
    L2P evaluations at their table-measured rates.
    """
    from ..perfmodel.flops import (
        FLOPS_PER_MONOPOLE_PP,
        flops_per_cell_interaction,
        flops_per_l2p,
        flops_per_m2l,
    )

    p = int(stats.get("order", 4))
    cell = float(stats.get("cell_interactions", 0))
    pp = float(stats.get("pp_interactions", 0))
    prism = float(stats.get("prism_interactions", 0))
    total = (
        cell * flops_per_cell_interaction(p, want_potential)
        + (pp + prism) * FLOPS_PER_MONOPOLE_PP
    )
    m2l_pairs = float(stats.get("m2l_pairs", 0))
    if m2l_pairs:
        l2p = float(stats.get("m2l_interactions", 0)) - m2l_pairs
        total += m2l_pairs * flops_per_m2l(p) + l2p * flops_per_l2p(
            p, want_potential
        )
    return total


@dataclass
class CrossCheck:
    """One measured-vs-modeled comparison of a force evaluation."""

    flops: float
    measured_evaluate_s: float
    predicted_evaluate_s: float
    achieved_gflops: float
    model_gflops: float

    @property
    def ratio(self) -> float:
        """measured / predicted evaluation time (>1 = slower than model)."""
        return self.measured_evaluate_s / max(self.predicted_evaluate_s, 1e-300)

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("flops", self.flops),
            ("measured evaluate (s)", self.measured_evaluate_s),
            ("model evaluate (s)", self.predicted_evaluate_s),
            ("achieved Gflop/s", self.achieved_gflops),
            ("model Gflop/s", self.model_gflops),
            ("measured/model ratio", self.ratio),
        ]

    def render(self, title: str = "perfmodel cross-check") -> str:
        lines = [f"=== {title} ==="]
        for name, v in self.rows():
            lines.append(f"{name:>24}: {v:.6g}")
        return "\n".join(lines)


def perfmodel_crosscheck(
    stats: dict,
    machine=None,
    want_potential: bool = True,
) -> CrossCheck:
    """Compare a measured force evaluation against the machine model.

    ``stats`` is a ``ForceResult.stats`` produced under an enabled
    tracer (so it carries ``stage_seconds``); ``machine`` is a
    :class:`~repro.parallel.machine.MachineModel` (default: the generic
    one).  A NumPy interpreter won't hit modeled hardware rates — the
    point is that the *flop accounting* and the *measured time* are now
    both real numbers that future perf PRs can move toward each other.
    """
    from ..parallel.machine import MachineModel

    machine = machine or MachineModel()
    stage = stats.get("stage_seconds") or {}
    measured = float(stage.get("evaluate", 0.0))
    flops = float(stats.get("flops", 0.0)) or flops_from_stats(stats, want_potential)
    predicted = flops / machine.flops_per_core
    achieved = flops / max(measured, 1e-300) / 1e9 if measured > 0 else 0.0
    return CrossCheck(
        flops=flops,
        measured_evaluate_s=measured,
        predicted_evaluate_s=predicted,
        achieved_gflops=achieved,
        model_gflops=machine.flops_per_core / 1e9,
    )
