"""Render measured metrics as Table-2-style reports.

The paper's Table 2 presents one production timestep as a per-stage
wall-clock breakdown (domain decomposition / tree build / traversal /
communication / force evaluation / imbalance).  This module renders the
same shape from *measured* tracer output: :func:`stage_breakdown_table`
for any dict of stage seconds, :func:`force_stage_table` for the
solver's canonical stage names, and :func:`step_summary_table` for the
driver's per-step records.
"""

from __future__ import annotations

__all__ = [
    "FORCE_STAGE_LABELS",
    "force_stage_totals",
    "stage_breakdown_table",
    "force_stage_table",
    "step_summary_table",
]

#: solver span name -> Table-2-style row label
FORCE_STAGE_LABELS = {
    "domain": "Domain Decomposition",
    "build": "Tree Build",
    "moments": "Moments (upward pass)",
    "traverse": "Tree Traversal",
    "comm": "Data Communication",
    "pm": "Particle Mesh (FFT)",
    "prune": "Short-Range Prune",
    "evaluate": "Force Evaluation",
    "execute": "Sharded Traverse+Evaluate",
    "lattice": "Periodic Lattice Expansion",
}


def force_stage_totals(stage_times: dict[str, float]) -> dict[str, float]:
    """Sum the solver's per-stage times across all force calls of a run.

    ``stage_times`` is :meth:`Tracer.stage_times` output; every path of
    the form ``.../force/<stage>`` contributes to ``<stage>``, whatever
    outer spans (init_force, step, pipeline.evolve) it ran under.
    """
    totals: dict[str, float] = {}
    for path, sec in stage_times.items():
        parts = path.split("/")
        if len(parts) >= 2 and parts[-2] == "force":
            totals[parts[-1]] = totals.get(parts[-1], 0.0) + sec
    return totals


def _fmt(v) -> str:
    if isinstance(v, float):
        if v != 0 and (abs(v) < 1e-3 or abs(v) >= 1e5):
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def _table(title: str, headers: list[str], rows: list[tuple]) -> str:
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    lines = [f"=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def stage_breakdown_table(
    stage_seconds: dict[str, float],
    total: float | None = None,
    title: str = "Stage breakdown",
    labels: dict[str, str] | None = None,
    extra_rows: list[tuple] | None = None,
) -> str:
    """A Table-2-style breakdown: stage, seconds, fraction of total.

    ``total`` defaults to the sum of the stages; when a measured total
    is given and exceeds the stage sum, the residual appears as an
    "(unattributed)" row so the fractions always close to 1.
    ``extra_rows`` are informational ``(label, seconds)`` rows — e.g.
    the paper's "Load Imbalance" — appended before the total but *not*
    added to it (they overlap stages already counted).
    """
    labels = labels or {}
    stage_sum = sum(stage_seconds.values())
    t = total if total is not None else stage_sum
    t = max(t, 1e-300)
    rows = [
        (labels.get(name, name), round(sec, 6), round(sec / t, 3))
        for name, sec in stage_seconds.items()
    ]
    if total is not None and total > stage_sum:
        rows.append(("(unattributed)", round(total - stage_sum, 6),
                     round((total - stage_sum) / t, 3)))
    for label, sec in extra_rows or []:
        rows.append((label, round(sec, 6), round(sec / t, 3)))
    rows.append(("Total", round(t, 6), 1.0))
    return _table(title, ["stage", "seconds", "fraction"], rows)


def force_stage_table(stats: dict, title: str = "Force stage breakdown (Table 2 style)") -> str:
    """Render a solver's ``ForceResult.stats`` stage breakdown.

    Expects the ``stage_seconds`` / ``force_seconds`` entries written by
    :meth:`TreecodeGravity.compute` under an enabled tracer.  Sharded
    runs (``stats["executor"]`` present) gain the paper's "Load
    Imbalance" row: wall time the slowest worker spent beyond the mean,
    i.e. time the pool's tail added to the execute stage.
    """
    stage = stats.get("stage_seconds")
    if not stage:
        raise ValueError(
            "stats carries no stage_seconds — run compute() with tracing "
            "enabled (set_tracer(Tracer()) or pass tracer=)"
        )
    extra = None
    ex = stats.get("executor")
    if ex and ex.get("worker_busy_s"):
        busy = ex["worker_busy_s"]
        mean = sum(busy) / len(busy)
        extra = [(f"Load Imbalance ({ex['load_imbalance']:.1%})", max(busy) - mean)]
    return stage_breakdown_table(
        stage,
        total=stats.get("force_seconds"),
        title=title,
        labels=FORCE_STAGE_LABELS,
        extra_rows=extra,
    )


def step_summary_table(records, title: str = "Per-step summary") -> str:
    """Tabulate the driver's per-step records.

    Accepts :class:`~repro.simulation.driver.StepRecord` objects or the
    equivalent dicts read back from a JSONL stream (records whose
    ``type`` is not ``"step"`` are skipped).
    """
    rows = []
    for i, r in enumerate(records):
        if isinstance(r, dict):
            if r.get("type", "step") != "step":
                continue
            get = r.get
            step = get("step", i)
        else:
            get = lambda k, d=0.0: getattr(r, k, d)  # noqa: E731
            step = i + 1
        rows.append(
            (
                step,
                round(float(get("a", 0.0)), 5),
                round(float(get("dlna", 0.0)), 5),
                round(float(get("wall", get("wall_s", 0.0) or 0.0)), 4),
                round(float(get("interactions_per_particle", 0.0)), 1),
                round(float(get("layzer_irvine", 0.0)), 6),
            )
        )
    return _table(
        title,
        ["step", "a", "dlna", "wall_s", "inter/particle", "layzer_irvine"],
        rows,
    )
