"""Instrumentation: hierarchical timers, counters, structured events.

The measurement layer behind the paper's evaluation — Table 2's stage
breakdown, §7's interactions-per-particle efficiency metric and the
Gflops accounting — as a cross-cutting subsystem: a thread-safe
:class:`Tracer` with nestable spans and monotonic counters, a per-run
:class:`Metrics` registry, a JSONL structured-event sink, Table-2-style
report rendering, and a measured-vs-modeled cross-check against
:mod:`repro.perfmodel`.  The default tracer is a no-op
(:data:`NULL_TRACER`), so uninstrumented runs pay nothing.

Traversal counters: the force path counts ``traverse.mac_tests``
(geometric MAC evaluations — one per frontier pair in the mutual
hierarchical walk), ``traverse.frontier_peak`` (peak frontier width),
and the accept split ``traverse.accepts_inherited`` (recorded at
interior sink cells, pushed down by the inheritance pass) vs.
``traverse.accepts_leaf`` (decided at sink leaves).  Sharded runs sum
the counts (max for the peak) across workers.
"""

from .events import JsonlSink, read_jsonl
from .metrics import Metrics, TimerStat
from .report import (
    FORCE_STAGE_LABELS,
    force_stage_table,
    force_stage_totals,
    stage_breakdown_table,
    step_summary_table,
)
from .crosscheck import CrossCheck, flops_from_stats, perfmodel_crosscheck
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CrossCheck",
    "FORCE_STAGE_LABELS",
    "JsonlSink",
    "Metrics",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TimerStat",
    "Tracer",
    "flops_from_stats",
    "force_stage_table",
    "force_stage_totals",
    "get_tracer",
    "perfmodel_crosscheck",
    "read_jsonl",
    "set_tracer",
    "stage_breakdown_table",
    "step_summary_table",
    "use_tracer",
]
