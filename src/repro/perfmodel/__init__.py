"""Performance models: machine catalog, flop accounting, scaling, checkpoints."""

from .checkpoint import (
    CheckpointPlan,
    expected_overhead,
    optimal_interval,
    simulate_run,
)
from .io import (
    FileSystemModel,
    LUSTRE_ORNL,
    PANASAS_LANL,
    checkpoint_write_time,
)
from .flops import (
    FLOPS_PER_MONOPOLE_PP,
    flops_per_cell_interaction,
    flops_per_particle,
)
from .machines import TABLE1_MACHINES, TABLE3_PROCESSORS, Machine, Processor
from .scaling import (
    ScalingInputs,
    StageBreakdown,
    StrongScalingModel,
    table2_breakdown,
)

__all__ = [
    "CheckpointPlan",
    "FileSystemModel",
    "LUSTRE_ORNL",
    "PANASAS_LANL",
    "checkpoint_write_time",
    "FLOPS_PER_MONOPOLE_PP",
    "Machine",
    "Processor",
    "ScalingInputs",
    "StageBreakdown",
    "StrongScalingModel",
    "TABLE1_MACHINES",
    "TABLE3_PROCESSORS",
    "expected_overhead",
    "flops_per_cell_interaction",
    "flops_per_particle",
    "optimal_interval",
    "simulate_run",
    "table2_breakdown",
]
