"""Parallel file-system throughput model (paper §3.4.2).

The paper's I/O data points:

* LANL Panasas: 5-10 GB/s typical,
* ORNL Lustre, single file across 160 OSTs: >20 GB/s,
* ORNL Lustre, 4 files across 512 OSTs (bypassing the per-file OST
  limit): 45 GB/s,
* a 69e9-particle checkpoint (approx. 2.2 TB at 32 B/particle)
  writes in ~6 minutes on the LANL production filesystem.

The model: aggregate rate = min(n_files * min(osts_per_file, ost_limit)
* per-OST rate, client injection limit).  Simple, but it captures why
splitting a checkpoint into 4 files tripled the paper's throughput —
and it feeds the checkpoint-interval economics.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FileSystemModel", "LUSTRE_ORNL", "PANASAS_LANL", "checkpoint_write_time"]


@dataclass(frozen=True)
class FileSystemModel:
    """A striped parallel filesystem."""

    name: str
    per_ost_Bps: float
    #: maximum OSTs a single file may stripe across
    ost_limit_per_file: int
    total_osts: int
    client_limit_Bps: float = float("inf")

    def rate(self, n_files: int = 1, osts_requested: int | None = None) -> float:
        """Aggregate write rate in bytes/s for ``n_files`` striped files."""
        if n_files < 1:
            raise ValueError("need at least one file")
        per_file_osts = min(
            osts_requested or self.ost_limit_per_file, self.ost_limit_per_file
        )
        used = min(n_files * per_file_osts, self.total_osts)
        return min(used * self.per_ost_Bps, self.client_limit_Bps)


#: ORNL Lustre of the paper: 160-OST single-file limit, 128 MB/s/OST-ish
LUSTRE_ORNL = FileSystemModel(
    name="lustre-ornl",
    per_ost_Bps=0.128e9,
    ost_limit_per_file=160,
    total_osts=672,
    # aggregate client/ION ceiling: the paper measured 45 GB/s with 4
    # files over 512 OSTs, below the raw 512-OST stripe rate
    client_limit_Bps=45e9,
)

#: LANL Panasas: 5-10 GB/s aggregate regardless of layout
PANASAS_LANL = FileSystemModel(
    name="panasas-lanl",
    per_ost_Bps=0.08e9,
    ost_limit_per_file=100,
    total_osts=100,
    client_limit_Bps=8e9,
)


def checkpoint_write_time(
    n_particles: float,
    bytes_per_particle: float = 32.0,
    fs: FileSystemModel = PANASAS_LANL,
    n_files: int = 1,
) -> float:
    """Seconds to write one checkpoint of the given particle count."""
    return n_particles * bytes_per_particle / fs.rate(n_files=n_files)
