"""Flop accounting for the gravitational kernels.

The paper counts 28 flops per monopole interaction (Table 3) and
582,000 flops per particle for its production mix of 1.05e15
hexadecapole + 1.46e15 quadrupole + 4.68e14 monopole interactions on
68.7e9 particles (Table 2).  Here the per-order interaction costs are
*measured from the metaprogrammed kernels themselves* — the generated
source is parsed and its arithmetic operations counted, plus the
moment-contraction and radial-chain work — keeping the accounting
honest as the code generator changes.
"""

from __future__ import annotations

import functools
import re

from ..multipoles.codegen import generate_dtensor_source
from ..multipoles.multiindex import n_coeffs

__all__ = [
    "FLOPS_PER_MONOPOLE_PP",
    "flops_per_cell_interaction",
    "flops_per_m2l",
    "flops_per_l2p",
    "flops_per_particle",
]

#: the paper's number for the pairwise monopole inner loop (Table 3):
#: dx (3), r^2 (5), 1/r^3 via rsqrt+mults (~6), acc fma (6), pot (2),
#: softening (~6) — counted as 28 in HOT's convention.
FLOPS_PER_MONOPOLE_PP = 28


@functools.lru_cache(maxsize=16)
def flops_per_cell_interaction(p: int, want_potential: bool = True) -> int:
    """Arithmetic operations of one particle-cell interaction at order p.

    Counts the generated derivative-tensor source (each `*`, `+`
    between terms), the radial-derivative chain, and the contraction
    with the moments (a multiply-add per coefficient per output).
    """
    src = generate_dtensor_source(p + 1)
    body = src.split('"""')[-1]  # skip the docstring
    mults = body.count("*")
    adds = body.count("+")
    dtensor_ops = mults + adds
    # radial chain g_0..g_{p+1}: ~4 ops per level, plus r from dx: 8
    radial_ops = 4 * (p + 2) + 8
    ncoef = n_coeffs(p)
    # acceleration: 3 axes x (mul + add) per coefficient; potential: 2 per
    contraction = (6 + (2 if want_potential else 0)) * ncoef
    # applying the (-1)^n/n! weights is folded into the moments once per
    # cell, not per interaction — excluded
    return dtensor_ops + radial_ops + contraction


@functools.lru_cache(maxsize=16)
def flops_per_m2l(p: int) -> int:
    """Arithmetic operations of one cell-to-local (M2L) translation.

    Counts the plan-driven derivative-tensor recurrence at the M2L
    order p+2 (each step fills pmax - |target| + 1 levels with a
    multiply and a fused multiply-add), the radial chain, and the
    triangular moment-gather contraction (a multiply-add per flat table
    entry) — all measured from the same tables the kernels consume.
    """
    from ..gravity.localexp import m2l_tables
    from ..multipoles.dtensors import recurrence_plan

    pmax = p + 2
    mis_hi, plan = recurrence_plan(pmax)
    rec_ops = sum(3 * (pmax - int(mis_hi.order[s[0]]) + 1) for s in plan)
    radial_ops = 4 * (pmax + 1) + 8
    return rec_ops + radial_ops + 2 * len(m2l_tables(p).acol)


@functools.lru_cache(maxsize=16)
def flops_per_l2p(p: int, want_potential: bool = True) -> int:
    """Arithmetic operations of one local-to-particle evaluation.

    Monomial build at the local order p+2 plus the three gradient
    contractions over the order-p+1 coefficients (and the potential
    contraction when requested).
    """
    nloc = n_coeffs(p + 2)
    ncoef = n_coeffs(p + 1)
    ops = 3 * (p + 2) + 2 * nloc + 6 * ncoef
    if want_potential:
        ops += 2 * nloc
    return ops


def flops_per_particle(
    interaction_mix: dict, want_potential: bool = True
) -> float:
    """Total flops per particle for a mix {order_or_'pp': count_per_particle}.

    Example reproducing the paper's Table 2 arithmetic::

        flops_per_particle({4: n_hex, 2: n_quad, "pp": n_mono})
    """
    total = 0.0
    for key, count in interaction_mix.items():
        if key == "pp":
            total += FLOPS_PER_MONOPOLE_PP * count
        else:
            total += flops_per_cell_interaction(int(key), want_potential) * count
    return total
