"""Strong-scaling model (paper Fig. 5) and timestep breakdown (Table 2).

Fig. 5 measures one 2HOT timestep of a 128G-particle simulation on
16k-256k Jaguar cores: perfect scaling to 64k cores, 96% at 128k, 86%
at 256k.  The model here decomposes the step time into

    T(P) = W / (P * f)                      force work (perfectly parallel)
         + c_sort * (N/P) * log2(P) terms   decomposition (sample sort)
         + c_tree * log2(P) * alpha         tree build / branch exchange
         + V(P) / beta + m(P) * alpha       traversal request/reply
         + T_imb(P)                         load imbalance tail

with the communication volumes and imbalance *measured* from the
simulated parallel traversal on a small problem and scaled by the
surface/volume law (remote work ~ (N/P)^{2/3}), which is the standard
treecode communication scaling the paper's decomposition is designed
to achieve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..parallel.machine import MachineModel

__all__ = ["ScalingInputs", "StrongScalingModel", "StageBreakdown", "table2_breakdown"]


@dataclass
class ScalingInputs:
    """Calibration constants, typically measured from a small run."""

    n_particles: float
    flops_per_particle: float
    #: measured load imbalance (max/mean - 1) at a reference rank count
    imbalance_ref: float
    imbalance_ref_ranks: int
    #: remote hcells per rank at the reference rank count
    remote_cells_ref: float
    hcell_bytes: float = 128.0


@dataclass
class StrongScalingModel:
    """Evaluates T(P) and parallel efficiency for a machine."""

    inputs: ScalingInputs
    machine: MachineModel = field(default_factory=MachineModel)

    def time_components(self, p: int) -> dict:
        i = self.inputs
        m = self.machine
        force = i.n_particles * i.flops_per_particle / (p * m.flops_per_core)
        # sample sort: local sort ~ (N/P) log(N/P) key ops + alltoall of a
        # few percent of particles
        npp = i.n_particles / p
        sort = 8e-9 * npp * math.log2(max(npp, 2)) + m.ptp_time(0.05 * npp * 48) * 2
        # tree build: local (linear) + log P branch aggregation rounds
        tree = 2e-8 * npp + math.log2(max(p, 2)) * m.ptp_time(4096 * i.hcell_bytes)
        # traversal communication: remote cells scale with domain surface,
        # (N/P)^(2/3) per rank, normalized to the measured reference
        ref_surface = (i.n_particles / i.imbalance_ref_ranks) ** (2.0 / 3.0)
        remote = i.remote_cells_ref * (npp ** (2.0 / 3.0)) / ref_surface
        comm = remote * i.hcell_bytes / m.bandwidth_Bps + 32 * m.latency_s
        # load imbalance: grows slowly with P (domain granularity); the
        # standard (P/P_ref)^(1/3) granularity scaling
        imb = i.imbalance_ref * (p / i.imbalance_ref_ranks) ** (1.0 / 3.0)
        imbalance = force * imb
        return {
            "force": force,
            "sort": sort,
            "tree": tree,
            "traversal_comm": comm,
            "imbalance": imbalance,
        }

    def step_time(self, p: int) -> float:
        return float(sum(self.time_components(p).values()))

    def efficiency(self, p: int, p_ref: int) -> float:
        """Parallel efficiency relative to ideal scaling from p_ref."""
        return self.step_time(p_ref) * p_ref / (self.step_time(p) * p)

    def tflops(self, p: int) -> float:
        i = self.inputs
        return i.n_particles * i.flops_per_particle / self.step_time(p) / 1e12


@dataclass
class StageBreakdown:
    """Table 2 stage timings (seconds)."""

    domain_decomposition: float
    tree_build: float
    tree_traversal: float
    data_communication: float
    force_evaluation: float
    load_imbalance: float

    @property
    def total(self) -> float:
        return (
            self.domain_decomposition
            + self.tree_build
            + self.tree_traversal
            + self.data_communication
            + self.force_evaluation
            + self.load_imbalance
        )

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("Domain Decomposition", self.domain_decomposition),
            ("Tree Build", self.tree_build),
            ("Tree Traversal", self.tree_traversal),
            ("Data Communication During Traversal", self.data_communication),
            ("Force Evaluation", self.force_evaluation),
            ("Load Imbalance", self.load_imbalance),
        ]


def table2_breakdown(
    measured_fractions: dict,
    n_particles: float,
    flops_per_particle: float,
    n_ranks: int,
    machine: MachineModel,
) -> StageBreakdown:
    """Scale measured per-stage fractions to a target configuration.

    ``measured_fractions`` maps the stage names (as in
    :class:`StageBreakdown` fields) to fractions of a measured step; the
    force-evaluation time is computed from first principles (flops /
    machine rate) and the other stages set relative to it.
    """
    force = n_particles * flops_per_particle / (n_ranks * machine.flops_per_core)
    f_force = measured_fractions.get("force_evaluation", 0.5)
    scale = force / max(f_force, 1e-9)
    return StageBreakdown(
        domain_decomposition=scale * measured_fractions.get("domain_decomposition", 0.0),
        tree_build=scale * measured_fractions.get("tree_build", 0.0),
        tree_traversal=scale * measured_fractions.get("tree_traversal", 0.0),
        data_communication=scale * measured_fractions.get("data_communication", 0.0),
        force_evaluation=force,
        load_imbalance=scale * measured_fractions.get("load_imbalance", 0.0),
    )
