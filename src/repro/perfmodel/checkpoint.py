"""Checkpoint-interval optimization (paper §3.4.2).

"For the production simulations described here, we experience a
hardware failure which ends the job about every million CPU hours (80
wallclock hours on 12288 CPUs).  Writing a 69 billion particle file
takes about 6 minutes, so checkpointing every 4 hours with an expected
failure every 80 hours costs 2 hours in I/O and saves 4-8 hours of
re-computation."

This module implements the expected-waste model behind that paragraph
(the classic Young/Daly first-order analysis) and an exact-ish
discrete-event simulation of a failing run, used to verify the
analytic optimum and regenerate the paper's numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["CheckpointPlan", "optimal_interval", "expected_overhead", "simulate_run"]


@dataclass
class CheckpointPlan:
    interval_h: float
    write_h: float
    mtbf_h: float

    @property
    def overhead_fraction(self) -> float:
        return expected_overhead(self.interval_h, self.write_h, self.mtbf_h)


def expected_overhead(interval_h: float, write_h: float, mtbf_h: float) -> float:
    """Fractional time lost to checkpoint writes + re-computation.

    First-order model: writes cost write/interval of the time; a
    failure (rate 1/MTBF) loses on average half an interval plus the
    restart; total waste fraction ~ write/interval + (interval/2 +
    write)/MTBF.
    """
    if interval_h <= 0:
        raise ValueError("interval must be positive")
    return write_h / interval_h + (interval_h / 2.0 + write_h) / mtbf_h


def optimal_interval(write_h: float, mtbf_h: float) -> float:
    """Young's formula: tau* = sqrt(2 * write * MTBF)."""
    return math.sqrt(2.0 * write_h * mtbf_h)


def simulate_run(
    work_h: float,
    interval_h: float,
    write_h: float,
    mtbf_h: float,
    rng: np.random.Generator | None = None,
    max_wall_h: float = 1e5,
) -> float:
    """Simulate a run with exponential failures; returns total wall hours.

    Progress is only durable at checkpoints; a failure rolls back to
    the last one.  Used to validate :func:`expected_overhead` and the
    paper's 'checkpoint every 4 hours' choice.
    """
    rng = rng or np.random.default_rng(0)
    done = 0.0  # durable progress
    wall = 0.0
    since_ckpt = 0.0
    next_failure = rng.exponential(mtbf_h)
    while done < work_h and wall < max_wall_h:
        # next event: finish segment, checkpoint, or failure
        seg_end = min(interval_h - since_ckpt, work_h - done - since_ckpt + 1e-12)
        # time until either the segment ends (then we checkpoint) or failure
        if wall + seg_end <= next_failure:
            wall += seg_end
            since_ckpt += seg_end
            # checkpoint (also covers the final segment's save)
            if wall + write_h <= next_failure:
                wall += write_h
                done += since_ckpt
                since_ckpt = 0.0
            else:
                # failure during the write: lose the segment
                wall = next_failure
                since_ckpt = 0.0
                next_failure = wall + rng.exponential(mtbf_h)
        else:
            # failure mid-segment: lose progress since last checkpoint
            wall = next_failure
            since_ckpt = 0.0
            next_failure = wall + rng.exponential(mtbf_h)
    return wall
