"""Machine catalog: the hardware of Tables 1 and 3.

Each entry carries enough microarchitectural detail (clock, core
count, SIMD width, fused-multiply-add balance) to *model* the
sustained performance of the HOT gravity kernels, following the
paper's own accounting in §7: Delta -> Jaguar performance is explained
by a factor 55 in clock x 4096 in concurrency x ~0.8 efficiency.
Modeled numbers are compared against the published measurements in the
Table 1/Table 3 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Machine", "Processor", "TABLE1_MACHINES", "TABLE3_PROCESSORS"]


@dataclass(frozen=True)
class Processor:
    """A single core or accelerator running the gravity micro-kernel."""

    name: str
    clock_ghz: float
    simd_width: int  # single-precision lanes
    dual_issue: bool  # can it issue mul+add (or FMA) per cycle
    #: fraction of peak the gravity inner loop sustains (the paper: ~40%
    #: on CPUs with SSE/AVX, ~25% target on GPUs, much less unvectorized)
    kernel_efficiency: float
    measured_gflops: float  # Table 3 published value
    n_units: int = 1  # SMs for GPUs

    @property
    def peak_gflops(self) -> float:
        issue = 2.0 if self.dual_issue else 1.0
        return self.clock_ghz * self.simd_width * issue * self.n_units

    @property
    def modeled_gflops(self) -> float:
        return self.peak_gflops * self.kernel_efficiency


#: Table 3 entries (single-precision monopole micro-kernel).
TABLE3_PROCESSORS = [
    Processor("2530-MHz Intel P4 (icc)", 2.53, 1, False, 0.46, 1.17),
    Processor("2530-MHz Intel P4 (SSE)", 2.53, 4, False, 0.64, 6.51),
    Processor("2600-MHz AMD Opteron 8435", 2.6, 4, True, 0.67, 13.88),
    Processor("2660-MHz Intel Xeon E5430", 2.66, 4, True, 0.77, 16.34),
    Processor("2100-MHz AMD Opteron 6172 (Hopper)", 2.1, 4, True, 0.85, 14.25),
    Processor("PowerXCell 8i (single SPE)", 3.2, 4, True, 0.64, 16.36),
    Processor("2200-MHz AMD Opteron 6274 (Jaguar)", 2.2, 4, True, 0.96, 16.97),
    Processor("2600-MHz Intel Xeon E5-2670 (AVX)", 2.6, 8, True, 0.68, 28.41),
    Processor(
        "1300-MHz NVIDIA M2090 GPU (16 SMs)", 1.3, 32, True, 0.82, 1097.0, n_units=16
    ),
    Processor(
        "732-MHz NVIDIA K20X GPU (15 SMs)", 0.732, 192, True, 0.53, 2243.0, n_units=15
    ),
]


@dataclass(frozen=True)
class Machine:
    """A Table 1 system: HOT's sustained Tflop/s through two decades."""

    year: int
    site: str
    name: str
    procs: int
    measured_tflops: float
    clock_ghz: float
    simd_width: int  # single-precision lanes per processor
    dual_issue: bool
    kernel_efficiency: float

    @property
    def concurrency(self) -> float:
        """processors x SIMD lanes x issue width — §7's metric (Jaguar:
        16384 nodes x 16 cores x 4-wide multiply-add = 2.1 million)."""
        return self.procs * self.simd_width * (2 if self.dual_issue else 1)

    @property
    def modeled_tflops(self) -> float:
        issue = 2.0 if self.dual_issue else 1.0
        peak = self.procs * self.clock_ghz * self.simd_width * issue / 1e3
        return peak * self.kernel_efficiency


#: Table 1 (performance of HOT across two decades).  Efficiencies are the
#: single free parameter per row, constrained to the plausible 0.2-0.5
#: band the paper quotes (and lower for pre-SIMD machines with slow
#: memory systems).
TABLE1_MACHINES = [
    Machine(2012, "OLCF", "Cray XT5 (Jaguar)", 262144, 1790.0, 2.2, 4, True, 0.39),
    Machine(2012, "LANL", "Appro (Mustang)", 24576, 163.0, 2.3, 4, True, 0.36),
    Machine(2011, "LANL", "SGI XE1300", 4096, 41.7, 2.66, 4, True, 0.48),
    Machine(2006, "LANL", "Linux Networx", 448, 1.88, 2.2, 2, True, 0.48),
    Machine(2003, "LANL", "HP/Compaq (QB)", 3600, 2.79, 1.25, 1, True, 0.31),
    Machine(2002, "NERSC", "IBM SP-3(375/W)", 256, 0.058, 0.375, 1, True, 0.30),
    Machine(1996, "Sandia", "Intel (ASCI Red)", 6800, 0.465, 0.2, 1, True, 0.17),
    Machine(1995, "JPL", "Cray T3D", 256, 0.008, 0.15, 1, False, 0.21),
    Machine(1995, "LANL", "TMC CM-5", 512, 0.014, 0.032, 4, True, 0.11),
    Machine(1993, "Caltech", "Intel Delta", 512, 0.010, 0.04, 1, False, 0.49),
]
