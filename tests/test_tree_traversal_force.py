"""Integration tests: traversal + force evaluation vs direct summation."""

import dataclasses

import numpy as np
import pytest

from repro.gravity import (
    TreecodeConfig,
    TreecodeGravity,
    direct_accelerations,
    make_softening,
)
from repro.tree import build_tree, compute_moments, traverse


def cloud(n=2048, seed=0, clustered=False):
    rng = np.random.default_rng(seed)
    if clustered:
        c = rng.random((6, 3))
        pos = (c[rng.integers(0, 6, n)] + 0.03 * rng.standard_normal((n, 3))) % 1.0
    else:
        pos = rng.random((n, 3))
    return pos, np.full(n, 1.0 / n)


class TestTraversalInvariants:
    def test_partition_of_unity(self):
        """Every (sink leaf, image) pair's interactions partition the
        mass of the box exactly: cell + leaf source masses sum to the
        total mass for each sink leaf and image."""
        pos, mass = cloud(1500, clustered=True)
        tree = build_tree(pos, mass, nleaf=8)
        moms = compute_moments(tree, p=2, tol=1e-5)
        inter = traverse(tree, moms)
        total = np.zeros(len(tree.cell_key))  # per sink leaf accumulated mass
        per_sink = {}
        for s, c in zip(inter.cell_sink, inter.cell_src):
            per_sink[s] = per_sink.get(s, 0.0) + tree.mass[
                tree.cell_start[c] : tree.cell_start[c] + tree.cell_count[c]
            ].sum()
        for s, c in zip(inter.leaf_sink, inter.leaf_src):
            per_sink[s] = per_sink.get(s, 0.0) + tree.mass[
                tree.cell_start[c] : tree.cell_start[c] + tree.cell_count[c]
            ].sum()
        for s, m in per_sink.items():
            assert m == pytest.approx(mass.sum(), rel=1e-10)

    def test_self_leaf_in_direct_list(self):
        pos, mass = cloud(500)
        tree = build_tree(pos, mass, nleaf=8)
        moms = compute_moments(tree, p=2, tol=1e-5)
        inter = traverse(tree, moms)
        self_pairs = set(zip(inter.leaf_sink, inter.leaf_src))
        for leaf in tree.leaf_indices:
            assert (leaf, leaf) in self_pairs

    def test_periodic_offsets_count(self):
        pos, mass = cloud(300)
        tree = build_tree(pos, mass, nleaf=8)
        moms = compute_moments(tree, p=2, tol=1e-5)
        inter1 = traverse(tree, moms, periodic=True, ws=1)
        assert len(inter1.offsets) == 27
        inter2 = traverse(tree, moms, periodic=True, ws=2)
        assert len(inter2.offsets) == 125

    def test_restricted_sinks(self):
        pos, mass = cloud(1000)
        tree = build_tree(pos, mass, nleaf=8)
        moms = compute_moments(tree, p=2, tol=1e-5)
        some = tree.leaf_indices[:3]
        inter = traverse(tree, moms, sink_leaves=some)
        assert set(inter.cell_sink) | set(inter.leaf_sink) <= set(some)


class TestForceAccuracy:
    @pytest.mark.parametrize("clustered", [False, True])
    @pytest.mark.parametrize("p", [2, 4])
    def test_against_direct(self, clustered, p):
        pos, mass = cloud(2048, seed=1, clustered=clustered)
        eps = 1e-3
        cfg = TreecodeConfig(
            p=p, errtol=1e-6, background=False, softening="plummer", eps=eps
        )
        res = TreecodeGravity(cfg).compute(pos, mass)
        ref = direct_accelerations(pos, mass, softening=make_softening("plummer", eps))
        err = np.linalg.norm(res.acc - ref, axis=1)
        # errors from ~100 accepted cells accumulate incoherently and the
        # moment MAC is an estimate, not a bound: allow ~100x the
        # per-interaction tolerance at the tail, ~10x at the median
        assert err.max() < 100 * 1e-6
        assert np.median(err) < 10 * 1e-6

    def test_errtol_controls_error(self):
        pos, mass = cloud(2048, seed=2)
        errs = []
        ref = direct_accelerations(pos, mass, softening=make_softening("plummer", 1e-3))
        for tol in (1e-4, 1e-6):
            cfg = TreecodeConfig(
                p=4, errtol=tol, background=False, softening="plummer", eps=1e-3
            )
            res = TreecodeGravity(cfg).compute(pos, mass)
            errs.append(np.linalg.norm(res.acc - ref, axis=1).max())
        assert errs[1] < errs[0]

    def test_potential_against_direct(self):
        pos, mass = cloud(1024, seed=3)
        cfg = TreecodeConfig(
            p=4, errtol=1e-7, background=False, softening="plummer", eps=1e-3
        )
        res = TreecodeGravity(cfg).compute(pos, mass)
        _, pot = direct_accelerations(
            pos, mass, softening=make_softening("plummer", 1e-3), want_potential=True
        )
        assert np.abs(res.pot - pot).max() < 1e-4 * np.abs(pot).mean()

    def test_interaction_count_decreases_with_tolerance(self):
        pos, mass = cloud(2048)
        counts = []
        for tol in (1e-7, 1e-5):
            cfg = TreecodeConfig(p=4, errtol=tol, background=False)
            r = TreecodeGravity(cfg).compute(pos, mass)
            counts.append(r.stats["interactions_per_particle"])
        assert counts[1] < counts[0]

    def test_float32_mode(self):
        pos, mass = cloud(512)
        cfg = TreecodeConfig(
            p=2, errtol=1e-4, background=False, dtype=np.float32
        )
        res = TreecodeGravity(cfg).compute(pos, mass)
        assert res.acc.dtype == np.float32

    def test_momentum_conservation_approximate(self):
        """Total momentum change (sum of m*acc) vanishes to the force
        accuracy — Newton's third law holds pairwise in the direct part
        and statistically in the multipole part."""
        pos, mass = cloud(2048, seed=4, clustered=True)
        cfg = TreecodeConfig(p=4, errtol=1e-6, background=False, softening="spline", eps=0.005)
        res = TreecodeGravity(cfg).compute(pos, mass)
        net = (mass[:, None] * res.acc).sum(axis=0)
        typical = np.abs(mass[:, None] * res.acc).sum(axis=0)
        assert np.all(np.abs(net) < 1e-3 * typical)


class TestBackgroundSubtraction:
    def test_uniform_grid_zero_force_compact_kernel(self):
        """§2.2.1 + §2.5: uniform grid with background subtraction and a
        compact (spline) kernel has machine-level peculiar forces."""
        n = 8
        g = (np.arange(n) + 0.5) / n
        gx, gy, gz = np.meshgrid(g, g, g, indexing="ij")
        pos = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
        mass = np.full(len(pos), 1.0 / len(pos))
        cfg = TreecodeConfig(
            p=4, errtol=1e-5, background=True, periodic=True, ws=1,
            softening="spline", eps=0.02,
        )
        res = TreecodeGravity(cfg).compute(pos, mass)
        assert np.abs(res.acc).max() < 1e-6

    def test_plummer_bias_visible(self):
        """Plummer's long ~eps^2/r^5 force deficit does not cancel against
        the Newtonian background — the bias Dehnen's kernels remove."""
        n = 8
        g = (np.arange(n) + 0.5) / n
        gx, gy, gz = np.meshgrid(g, g, g, indexing="ij")
        pos = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
        mass = np.full(len(pos), 1.0 / len(pos))
        base = dict(p=4, errtol=1e-5, background=True, periodic=True, ws=1, eps=0.03)
        plum = TreecodeGravity(TreecodeConfig(softening="plummer", **base)).compute(pos, mass)
        k1 = TreecodeGravity(TreecodeConfig(softening="dehnen_k1", **base)).compute(pos, mass)
        assert np.abs(plum.acc).max() > 20 * np.abs(k1.acc).max()

    def test_overdensity_attracts(self):
        """A single point overdensity in an otherwise uniform background
        pulls neighbours toward it (sign sanity of delta-rho forces)."""
        n = 8
        g = (np.arange(n) + 0.5) / n
        gx, gy, gz = np.meshgrid(g, g, g, indexing="ij")
        pos = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
        mass = np.full(len(pos), 1.0 / len(pos))
        # double the mass of the particle nearest the center
        i0 = np.argmin(np.linalg.norm(pos - 0.5, axis=1))
        mass[i0] *= 2.0
        cfg = TreecodeConfig(
            p=4, errtol=1e-6, background=True, periodic=True, ws=1,
            softening="spline", eps=0.01,
        )
        res = TreecodeGravity(cfg).compute(pos, mass)
        # a particle displaced along +x from the overdensity feels -x force
        j = np.argmin(np.linalg.norm(pos - (pos[i0] + [0.125, 0, 0]), axis=1))
        assert res.acc[j, 0] < 0


class TestProductionOrderP8:
    def test_p8_end_to_end_respects_summed_bound(self):
        """The paper's production expansion order (p=8) works through the
        whole solver stack with the rigorous MAC: the total force error
        stays below the per-interaction tolerance times the number of
        accepted multipole interactions (worst-case coherent sum)."""
        rng = np.random.default_rng(21)
        pos = rng.random((512, 3))
        mass = np.full(512, 1.0 / 512)
        ref = direct_accelerations(pos, mass, softening=make_softening("plummer", 1e-3))
        tol = 1e-7
        cfg = TreecodeConfig(
            p=8, errtol=tol, background=False, softening="plummer",
            eps=1e-3, nleaf=8, mac="absolute",
        )
        solver = TreecodeGravity(cfg)
        res = solver.compute(pos, mass)
        err = np.linalg.norm(res.acc - ref, axis=1).max()
        n_cell = res.stats["cell_interactions"] / len(pos)
        assert n_cell > 10  # multipoles actually used (not all-direct)
        # the busiest particle has a few times the average cell count
        assert err < 5 * max(n_cell, 1.0) * tol
        # and typical errors sit far below the worst case
        med = np.median(np.linalg.norm(res.acc - ref, axis=1))
        assert med < 0.3 * max(n_cell, 1.0) * tol

    def test_higher_order_fewer_interactions(self):
        rng = np.random.default_rng(22)
        pos = rng.random((2048, 3))
        mass = np.full(2048, 1.0 / 2048)
        counts = {}
        for p in (2, 6):
            cfg = TreecodeConfig(
                p=p, errtol=1e-7, background=False, softening="plummer",
                eps=1e-3,
            )
            r = TreecodeGravity(cfg).compute(pos, mass)
            counts[p] = r.stats["interactions_per_particle"]
        assert counts[6] < counts[2]
