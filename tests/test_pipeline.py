"""Tests for pipeline config metaprogramming and the stask queue."""

import json

import pytest

from repro.pipeline import (
    Allocation,
    PipelineSpec,
    STaskQueue,
    Task,
    expand_grid,
    map_reduce,
)


class TestPipelineSpec:
    def test_writes_all_artifacts(self, tmp_path):
        spec = PipelineSpec(name="demo")
        paths = spec.write(tmp_path)
        names = {p.name for p in paths}
        assert names == {
            "demo_ic.json",
            "demo_evolve.json",
            "demo_analysis.json",
            "demo.sh",
        }

    def test_generated_configs_consistent(self, tmp_path):
        spec = PipelineSpec(name="c", git_tag="v9")
        paths = spec.write(tmp_path)
        assert PipelineSpec.consistent(paths)

    def test_git_tag_propagates_to_every_stage(self, tmp_path):
        """§3.4.3: the version tag must reach every artifact."""
        spec = PipelineSpec(name="g", git_tag="deadbeef")
        for p in spec.write(tmp_path):
            content = p.read_text()
            assert "deadbeef" in content

    def test_stage_files_reference_each_other(self, tmp_path):
        spec = PipelineSpec(name="x")
        paths = {p.name: p for p in spec.write(tmp_path)}
        ic = json.loads(paths["x_ic.json"].read_text())
        ev = json.loads(paths["x_evolve.json"].read_text())
        assert ev["input"] == ic["output"]

    def test_redshift_scale_factor_conversion(self):
        spec = PipelineSpec(z_init=49.0)
        assert spec.ic_config()["a_init"] == pytest.approx(0.02)

    def test_expand_grid(self):
        base = PipelineSpec(name="suite")
        specs = expand_grid(base, box_mpc_h=[1000.0, 2000.0], seed=[1, 2, 3])
        assert len(specs) == 6
        names = {s.name for s in specs}
        assert len(names) == 6  # unique
        assert all(s.name.startswith("suite_") for s in specs)

    def test_grid_mirrors_paper_suite(self):
        """The Fig. 8 suite: boxes of 1, 2, 4, 8 Gpc/h."""
        specs = expand_grid(
            PipelineSpec(name="ds2013"), box_mpc_h=[1000.0, 2000.0, 4000.0, 8000.0]
        )
        assert [s.box_mpc_h for s in specs] == [1000.0, 2000.0, 4000.0, 8000.0]

    def test_shell_script_ordering(self):
        s = PipelineSpec(name="o").shell_script()
        assert s.index("ic.json") < s.index("evolve.json") < s.index("analysis.json")


class TestSTask:
    def test_simple_packing(self):
        q = STaskQueue(Allocation(cores=8, walltime_s=100))
        for i in range(4):
            q.submit(Task(name=f"t{i}", cores=4, duration_s=10))
        stats = q.run()
        assert stats["completed"] == 4
        # 4 tasks x 4 cores on 8 cores: two waves of 10s
        assert stats["makespan_s"] == pytest.approx(20.0)

    def test_oversized_task_rejected(self):
        q = STaskQueue(Allocation(cores=4, walltime_s=10))
        with pytest.raises(ValueError):
            q.submit(Task(name="big", cores=8, duration_s=1))

    def test_dependencies_ordered(self):
        q = STaskQueue(Allocation(cores=4, walltime_s=100))
        q.submit(Task(name="b", cores=2, duration_s=5, depends_on=("a",)))
        q.submit(Task(name="a", cores=2, duration_s=5))
        q.run()
        tasks = {t.name: t for t in q.tasks}
        assert tasks["b"].start_s >= tasks["a"].end_s

    def test_walltime_preemption(self):
        q = STaskQueue(Allocation(cores=4, walltime_s=30))
        q.submit(Task(name="long", cores=4, duration_s=100, preempt_notice_s=5))
        stats = q.run()
        assert stats["preempted"] == 1
        assert q.tasks[0].end_s == 30

    def test_no_start_without_notice_window(self):
        """A task whose required preemption notice cannot fit before
        walltime is never started (§3.4.1 contract)."""
        q = STaskQueue(Allocation(cores=4, walltime_s=30))
        q.submit(Task(name="a", cores=4, duration_s=29.5))
        q.submit(Task(name="late", cores=4, duration_s=100, preempt_notice_s=10))
        stats = q.run()
        assert stats["unstarted"] == 1

    def test_utilization_high_for_many_small_tasks(self):
        """The MapReduce use case: tens of independent tasks pack well."""
        q = STaskQueue(Allocation(cores=16, walltime_s=1000))
        map_reduce(q, n_map=32, map_cores=2, map_duration_s=10,
                   reduce_cores=8, reduce_duration_s=5)
        stats = q.run()
        assert stats["completed"] == 33
        assert stats["utilization"] > 0.7

    def test_reduce_waits_for_all_maps(self):
        q = STaskQueue(Allocation(cores=8, walltime_s=1000))
        tasks = map_reduce(q, 8, 2, 10, 4, 5)
        q.run()
        red = next(t for t in tasks if t.name == "reduce")
        last_map = max(t.end_s for t in tasks if t.name != "reduce")
        assert red.start_s >= last_map

    def test_blocked_by_preempted_dependency_reported(self):
        """A task whose dependency got preempted is *blocked*, not
        merely unstarted — the distinction makes dependency deadlocks
        visible in the run stats and event log."""
        q = STaskQueue(Allocation(cores=4, walltime_s=30))
        q.submit(Task(name="long", cores=4, duration_s=100, preempt_notice_s=5))
        q.submit(Task(name="dep", cores=2, duration_s=5, depends_on=("long",)))
        stats = q.run()
        assert stats["preempted"] == 1
        assert stats["blocked"] == 1
        assert stats["unstarted"] == 0
        assert (30.0, "blocked", "dep") in q.events

    def test_blocked_chains_transitively(self):
        """Blocking propagates: C depends on B depends on preempted A,
        so both B and C count as blocked."""
        q = STaskQueue(Allocation(cores=4, walltime_s=20))
        q.submit(Task(name="a", cores=4, duration_s=100, preempt_notice_s=2))
        q.submit(Task(name="b", cores=2, duration_s=5, depends_on=("a",)))
        q.submit(Task(name="c", cores=2, duration_s=5, depends_on=("b",)))
        stats = q.run()
        assert stats["blocked"] == 2
        blocked_names = {n for _, kind, n in q.events if kind == "blocked"}
        assert blocked_names == {"b", "c"}

    def test_walltime_starvation_still_counts_unstarted(self):
        """A task whose dependency *completed* but which ran out of
        walltime stays in unstarted — it is rerunnable as-is."""
        q = STaskQueue(Allocation(cores=4, walltime_s=12))
        q.submit(Task(name="a", cores=4, duration_s=10))
        q.submit(Task(name="late", cores=4, duration_s=10, depends_on=("a",),
                      preempt_notice_s=5))
        stats = q.run()
        assert stats["completed"] == 1
        assert stats["blocked"] == 0
        assert stats["unstarted"] == 1
