"""Tests for the tabulated background (CLASS-table mode) and isodensity finder."""

import numpy as np
import pytest

from repro.cosmology import (
    EDS,
    PLANCK2013,
    Background,
    DriftKickIntegrals,
    TabulatedBackground,
    read_background_table,
    write_background_table,
)
from repro.analysis import isodensity_halos, knn_density


class TestTabulatedBackground:
    def test_matches_analytic(self):
        tab = TabulatedBackground.from_params(PLANCK2013, n=256)
        bg = Background(PLANCK2013)
        a = np.geomspace(2e-4, 0.99, 40)
        np.testing.assert_allclose(tab.efunc(a), bg.efunc(a), rtol=1e-6)

    def test_drift_kick_match_analytic(self):
        """§2.1/§2.3: the tabulated path must reproduce the analytic
        drift/kick integrals (the paper's cross-check of its CLASS
        coupling against the analytic scale factor)."""
        tab = TabulatedBackground.from_params(PLANCK2013, a_min=0.005, n=512)
        dk = DriftKickIntegrals(PLANCK2013)
        for a0, a1 in ((0.02, 0.05), (0.1, 0.5), (0.5, 1.0)):
            assert tab.drift_factor(a0, a1) == pytest.approx(
                dk.drift_factor(a0, a1), rel=1e-6
            )
            assert tab.kick_factor(a0, a1) == pytest.approx(
                dk.kick_factor(a0, a1), rel=1e-6
            )

    def test_out_of_range_rejected(self):
        tab = TabulatedBackground.from_params(EDS, a_min=0.01)
        with pytest.raises(ValueError):
            tab.efunc(0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            TabulatedBackground(np.array([0.1, 0.2]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            TabulatedBackground(
                np.array([0.1, 0.3, 0.2, 0.4]), np.ones(4)
            )
        with pytest.raises(ValueError):
            TabulatedBackground(
                np.array([0.1, 0.2, 0.3, 0.4]), np.array([1.0, 1.0, -1.0, 1.0])
            )

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "bg.txt"
        write_background_table(path, PLANCK2013, a_min=0.01)
        tab = read_background_table(path)
        bg = Background(PLANCK2013)
        assert float(tab.efunc(0.5)) == pytest.approx(float(bg.efunc(0.5)), rel=1e-8)

    def test_bad_file(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("1.0\n2.0\n3.0\n4.0\n")
        with pytest.raises(ValueError):
            read_background_table(p)


class TestKnnDensity:
    def test_uniform_field_near_mean(self):
        rng = np.random.default_rng(0)
        pos = rng.random((5000, 3))
        rho = knn_density(pos, k=16)
        assert np.median(rho) == pytest.approx(5000.0, rel=0.25)

    def test_blob_is_denser(self):
        rng = np.random.default_rng(1)
        blob = 0.5 + 0.005 * rng.standard_normal((300, 3))
        pos = np.concatenate([rng.random((3000, 3)), blob]) % 1.0
        rho = knn_density(pos, k=12)
        assert np.median(rho[3000:]) > 30 * np.median(rho[:3000])


class TestIsodensity:
    def make_field(self, seed=2):
        rng = np.random.default_rng(seed)
        halos = rng.random((4, 3))
        parts = [rng.random((4000, 3))]
        for c in halos:
            parts.append((c + 0.004 * rng.standard_normal((250, 3))) % 1.0)
        pos = np.concatenate(parts) % 1.0
        return pos, np.full(len(pos), 1.0 / len(pos)), halos

    def test_finds_planted_halos(self):
        pos, mass, halos = self.make_field()
        res = isodensity_halos(pos, mass, threshold=60.0, min_members=50)
        assert res.n_groups == len(halos)
        for c in halos:
            d = np.linalg.norm((res.centers - c + 0.5) % 1.0 - 0.5, axis=1)
            assert d.min() < 0.02

    def test_threshold_cuts_bridges(self):
        """Two halos connected by a low-density bridge: FOF merges them,
        isodensity separates them — the reason vfind has both modes."""
        rng = np.random.default_rng(5)
        c1 = np.array([0.4, 0.5, 0.5])
        c2 = np.array([0.6, 0.5, 0.5])
        h1 = c1 + 0.004 * rng.standard_normal((300, 3))
        h2 = c2 + 0.004 * rng.standard_normal((300, 3))
        # evenly spaced bridge: guaranteed to percolate under FOF while
        # staying well below the isodensity threshold
        t = np.linspace(0.0, 1.0, 80)[:, None]
        bridge = c1 + (c2 - c1) * t + 0.003 * rng.standard_normal((80, 3))
        field = rng.random((3000, 3))
        pos = np.concatenate([h1, h2, bridge, field]) % 1.0
        mass = np.full(len(pos), 1.0 / len(pos))

        from repro.analysis import fof_halos

        fof = fof_halos(pos, mass, linking_length=0.25, min_members=100)
        iso = isodensity_halos(
            pos, mass, threshold=1000.0, linking_length=0.25, min_members=100
        )
        # FOF's biggest group swallows both halos (plus bridge)
        assert fof.sizes[0] > 500
        # isodensity separates them
        assert iso.n_groups >= 2
        assert iso.sizes[0] < 500

    def test_no_dense_regions(self):
        rng = np.random.default_rng(7)
        pos = rng.random((2000, 3))
        res = isodensity_halos(pos, np.ones(2000), threshold=500.0)
        assert res.n_groups == 0
        assert np.all(res.labels == -1)

    def test_dense_fraction_reported(self):
        pos, mass, _ = self.make_field()
        res = isodensity_halos(pos, mass, threshold=60.0, min_members=50)
        assert 0.0 < res.dense_fraction < 0.5

    def test_mass_accounting(self):
        pos, mass, _ = self.make_field()
        res = isodensity_halos(pos, mass, threshold=60.0, min_members=50)
        grouped = res.labels >= 0
        assert res.masses.sum() == pytest.approx(mass[grouped].sum())
