"""Shared-memory force executor: consistency, edge cases, teardown.

The contract under test (ISSUE 2): ``workers=1`` reproduces the serial
force path bit for bit (single shard, identical interaction stream);
``workers>1`` agrees to floating-point re-association tolerance;
degenerate trees (one leaf, tiny N) fall back to single-shard
execution; and a closed pool leaves behind neither worker processes
nor shared-memory segments.
"""

import glob
import os

import numpy as np
import pytest

from repro.gravity import TreecodeConfig, TreecodeGravity
from repro.gravity.pm import TreePMConfig, TreePMGravity
from repro.instrument import Tracer
from repro.parallel.executor import ForceExecutor, ensure_executor
from repro.tree import build_tree, compute_moments


def _particles(n, seed=11):
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 3))
    mass = rng.uniform(0.5, 1.5, n) / n
    return pos, mass


def _tree_moms(pos, mass, p=2, tol=1e-3, background=True):
    tree = build_tree(pos, mass, box=1.0, nleaf=16, with_ghosts=background)
    moms = compute_moments(
        tree, p=p, tol=tol, background=background,
        mean_density=float(mass.sum()) if background else None,
    )
    return tree, moms


# ----- solver-level consistency -----------------------------------------------


def test_workers1_bit_identical_to_serial():
    pos, mass = _particles(1200)
    cfg = dict(p=2, errtol=1e-3, periodic=True)
    serial = TreecodeGravity(TreecodeConfig(**cfg)).compute(pos, mass, box=1.0)
    with TreecodeGravity(TreecodeConfig(**cfg, workers=1)) as solver:
        par = solver.compute(pos, mass, box=1.0)
    assert np.array_equal(serial.acc, par.acc)
    assert np.array_equal(serial.pot, par.pot)


def test_workers1_bit_identical_float32():
    # the driver's production configuration accumulates in float32
    pos, mass = _particles(800)
    cfg = dict(p=2, errtol=1e-3, periodic=True, dtype=np.float32)
    serial = TreecodeGravity(TreecodeConfig(**cfg)).compute(pos, mass, box=1.0)
    with TreecodeGravity(TreecodeConfig(**cfg, workers=1)) as solver:
        par = solver.compute(pos, mass, box=1.0)
    assert par.acc.dtype == np.float32
    assert np.array_equal(serial.acc, par.acc)


def test_workers2_allclose_and_stats():
    pos, mass = _particles(1500)
    cfg = dict(p=2, errtol=1e-3, periodic=True)
    serial = TreecodeGravity(TreecodeConfig(**cfg)).compute(pos, mass, box=1.0)
    with TreecodeGravity(TreecodeConfig(**cfg, workers=2)) as solver:
        par = solver.compute(pos, mass, box=1.0)
        again = solver.compute(pos, mass, box=1.0)  # persistent pool reuse
    scale = np.abs(serial.acc).max()
    assert np.allclose(par.acc, serial.acc, rtol=1e-12, atol=1e-12 * scale)
    assert np.allclose(par.pot, serial.pot, rtol=1e-12, atol=1e-10)
    # sharded merge is deterministic whatever the worker scheduling
    assert np.array_equal(par.acc, again.acc)
    # interaction totals match the serial accounting exactly
    for key in ("cell_interactions", "pp_interactions", "prism_interactions"):
        assert par.stats[key] == serial.stats[key]
    ex = par.stats["executor"]
    assert ex["workers"] == 2
    assert ex["n_shards"] > 1
    assert len(ex["shard_seconds"]) == ex["n_shards"]
    assert par.stats["interactions_per_particle"] == pytest.approx(
        serial.stats["interactions_per_particle"]
    )


def test_treepm_workers_allclose():
    pos, mass = _particles(1000)
    serial = TreePMGravity(TreePMConfig(ngrid=32, errtol=1e-3)).compute(
        pos, mass, box=1.0
    )
    with TreePMGravity(TreePMConfig(ngrid=32, errtol=1e-3, workers=2)) as solver:
        par = solver.compute(pos, mass, box=1.0)
    scale = np.abs(serial.acc).max()
    assert np.allclose(par.acc, serial.acc, rtol=1e-12, atol=1e-12 * scale)


# ----- executor-level edge cases ----------------------------------------------


def test_single_leaf_tree_single_shard():
    # fewer particles than nleaf: one leaf, so one shard whatever workers
    pos, mass = _particles(10)
    tree, moms = _tree_moms(pos, mass, background=False)
    with ForceExecutor(2) as ex:
        res = ex.compute(tree, moms, periodic=False)
        assert res.stats["executor"]["n_shards"] == 1
    from repro.gravity.treeforce import evaluate_forces
    from repro.tree.traversal import traverse

    inter = traverse(tree, moms, periodic=False)
    ref = evaluate_forces(tree, moms, inter)
    assert np.array_equal(res.acc, ref.acc)


def test_tiny_n_more_workers_than_leaves():
    pos, mass = _particles(40)
    tree, moms = _tree_moms(pos, mass, background=False)
    n_leaves = len(tree.leaf_indices)
    with ForceExecutor(2, shards_per_worker=64) as ex:
        res = ex.compute(tree, moms, periodic=False)
    # shard count is capped by the number of sink leaves
    assert res.stats["executor"]["n_shards"] <= max(n_leaves, 1)
    assert np.all(np.isfinite(res.acc))


def test_want_potential_false():
    pos, mass = _particles(300)
    tree, moms = _tree_moms(pos, mass, background=False)
    with ForceExecutor(2) as ex:
        res = ex.compute(tree, moms, periodic=False, want_potential=False)
    assert res.pot is None
    assert np.all(np.isfinite(res.acc))


def test_shards_tile_particles():
    pos, mass = _particles(2000)
    tree, moms = _tree_moms(pos, mass)
    ex = ForceExecutor(2)
    try:
        shards = ex._make_shards(tree)
        ranges = sorted((s0, s1) for _, _, s0, s1 in shards)
        assert ranges[0][0] == 0 and ranges[-1][1] == tree.n_particles
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0  # contiguous, disjoint: deterministic merge
        sinks = np.concatenate([s for _, s, _, _ in shards])
        assert np.array_equal(np.sort(sinks), np.sort(tree.leaf_indices))
    finally:
        ex.close()


# ----- instrumentation merge --------------------------------------------------


def test_worker_metrics_merge_into_parent_tracer():
    pos, mass = _particles(1200)
    tracer = Tracer()
    with TreecodeGravity(TreecodeConfig(p=2, errtol=1e-3, workers=2)) as solver:
        res = solver.compute(pos, mass, box=1.0, tracer=tracer)
    times = tracer.stage_times()
    assert "executor/traverse" in times
    assert "executor/evaluate" in times
    assert times["executor/shard"] > 0
    # per-worker busy vector: the measured load-imbalance input
    busy = tracer.metrics.vectors["executor.worker_busy_s"]
    assert len(busy) == 2
    assert tracer.counters["executor.shards"] == res.stats["executor"]["n_shards"]
    assert res.stats["stage_seconds"]["execute"] > 0
    assert res.stats["executor"]["load_imbalance"] >= 0.0


# ----- lifecycle / teardown ---------------------------------------------------


def test_teardown_leaves_no_segments_or_workers():
    pos, mass = _particles(600)
    tree, moms = _tree_moms(pos, mass)
    ex = ForceExecutor(2)
    ex.compute(tree, moms, periodic=False)
    procs = list(ex._procs)
    ex.close()
    assert ex.closed
    for p in procs:
        assert not p.is_alive()
    if os.path.isdir("/dev/shm"):
        assert glob.glob("/dev/shm/reprofx*") == []
    # idempotent close, and computing on a closed pool is an error
    ex.close()
    with pytest.raises(RuntimeError):
        ex.compute(tree, moms)


def test_ensure_executor_reuse_and_replace():
    ex1 = ensure_executor(None, 2)
    try:
        assert ensure_executor(ex1, 2) is ex1
        ex2 = ensure_executor(ex1, 1)
        try:
            assert ex2 is not ex1
            assert ex1.closed and not ex2.closed
            assert ex2.workers == 1
        finally:
            ex2.close()
    finally:
        ex1.close()


def test_worker_error_propagates():
    pos, mass = _particles(200)
    tree, moms = _tree_moms(pos, mass, background=False)
    with ForceExecutor(1) as ex:
        with pytest.raises(RuntimeError, match="shard"):
            # a bogus softening object fails inside the worker
            ex.compute(tree, moms, softening="not-a-kernel")
        # the pool survives a failed call and keeps serving
        res = ex.compute(tree, moms)
        assert np.all(np.isfinite(res.acc))
