"""Tests for Ewald summation, lattice local expansions, and TreePM."""

import numpy as np
import pytest

from repro.gravity import TreecodeConfig, TreecodeGravity
from repro.gravity.ewald import EwaldSummation
from repro.gravity.periodic import PeriodicLocalExpansion, lattice_sums
from repro.gravity.pm import (
    ParticleMesh,
    ShortRangeSoftening,
    TreePMConfig,
    TreePMGravity,
)
from repro.gravity.smoothing import NoSoftening
from repro.multipoles import multi_index_set, p2m, subtract_background


@pytest.fixture(scope="module")
def small_system():
    rng = np.random.default_rng(4)
    n = 64
    pos = rng.random((n, 3))
    mass = rng.random(n) / n
    ew = EwaldSummation()
    return pos, mass, ew, ew.accelerations(pos, mass)


class TestEwald:
    def test_alpha_independence(self):
        """The Ewald split is exact: different alphas agree."""
        dx = np.array([[0.3, 0.1, -0.2], [0.45, 0.0, 0.05]])
        a1 = EwaldSummation(alpha=1.5, rmax=6, kmax=8).acceleration_pair(dx)
        a2 = EwaldSummation(alpha=3.0, rmax=6, kmax=10).acceleration_pair(dx)
        np.testing.assert_allclose(a1, a2, rtol=1e-9, atol=1e-10)

    def test_potential_alpha_independence(self):
        dx = np.array([[0.25, 0.35, 0.1]])
        p1 = EwaldSummation(alpha=1.5, rmax=6, kmax=8).potential_pair(dx)
        p2 = EwaldSummation(alpha=2.5, rmax=6, kmax=10).potential_pair(dx)
        assert p1[0] == pytest.approx(p2[0], rel=1e-9)

    def test_short_distance_is_newtonian(self):
        """At r << L the periodic kernel approaches bare 1/r^2."""
        dx = np.array([[0.01, 0.0, 0.0]])
        ew = EwaldSummation()
        a = ew.acceleration_pair(dx)
        assert a[0, 0] == pytest.approx(-1.0 / 0.01**2, rel=1e-3)

    def test_symmetry(self):
        ew = EwaldSummation()
        dx = np.array([[0.2, 0.15, -0.1]])
        a1 = ew.acceleration_pair(dx)
        a2 = ew.acceleration_pair(-dx)
        np.testing.assert_allclose(a1, -a2, atol=1e-14)

    def test_half_box_force_vanishes_on_axis(self):
        """By symmetry the force at (L/2, 0, 0) has no x-component."""
        ew = EwaldSummation()
        a = ew.acceleration_pair(np.array([[0.5, 0.0, 0.0]]))
        assert abs(a[0, 0]) < 1e-12

    def test_momentum_conservation(self, small_system):
        pos, mass, ew, acc = small_system
        net = (mass[:, None] * acc).sum(axis=0)
        assert np.all(np.abs(net) < 1e-12 * np.abs(mass[:, None] * acc).sum())

    def test_neutral_pair_energy_scale(self):
        """Two particles: energy is finite and dominated by the direct term."""
        pos = np.array([[0.25, 0.5, 0.5], [0.75, 0.5, 0.5]])
        mass = np.array([1.0, 1.0])
        ew = EwaldSummation()
        w = ew.potential_energy(pos, mass)
        assert np.isfinite(w)


class TestLatticeSums:
    def test_odd_orders_vanish(self):
        t = lattice_sums(6, ws=2)
        mis = multi_index_set(6)
        odd = mis.order % 2 == 1
        assert np.all(np.abs(t[odd]) < 1e-10)

    def test_cubic_symmetry(self):
        t = lattice_sums(4, ws=1)
        mis = multi_index_set(4)
        assert t[mis.index[(2, 0, 0)]] == pytest.approx(t[mis.index[(0, 2, 0)]], rel=1e-10)
        assert t[mis.index[(4, 0, 0)]] == pytest.approx(t[mis.index[(0, 0, 4)]], rel=1e-10)

    def test_traceless_quadrupole_block(self):
        """sum_i T_(2 e_i) = laplacian of the far-field potential at the
        center = -4 pi rho_images = 0 for the *neutralized* sum."""
        t = lattice_sums(2, ws=1)
        mis = multi_index_set(2)
        tr = (
            t[mis.index[(2, 0, 0)]]
            + t[mis.index[(0, 2, 0)]]
            + t[mis.index[(0, 0, 2)]]
        )
        # the Ewald background leaves a +4pi/3 V contribution per image;
        # neutralized lattice: trace = 4*pi/(3) * ... cancel to near zero
        assert abs(tr) < 1e-6 or abs(tr - 4 * np.pi) < 1e-6

    def test_ws_consistency(self):
        """T(ws=1) - T(ws=2) equals the bare sums over the shell
        1 < |n|_inf <= 2."""
        from repro.multipoles.dtensors import derivative_tensors
        from repro.multipoles.radial import NewtonianKernel

        t1 = lattice_sums(4, ws=1)
        t2 = lattice_sums(4, ws=2)
        r = np.arange(-2, 3)
        gx, gy, gz = np.meshgrid(r, r, r, indexing="ij")
        n = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1).astype(float)
        shell = n[(np.abs(n).max(axis=1) > 1) & (np.abs(n).max(axis=1) <= 2)]
        direct = derivative_tensors(shell, NewtonianKernel(), 4).sum(axis=0)
        np.testing.assert_allclose(t1 - t2, direct, rtol=1e-8, atol=1e-9)


class TestPeriodicLocalExpansion:
    def test_brute_force_plus_far_matches_ewald(self, small_system):
        pos, mass, ew, ref = small_system
        rho = mass.sum()
        ws = 2
        acc = np.zeros_like(pos)
        from repro.multipoles.prism import prism_acceleration

        offs = [
            np.array([i, j, k], dtype=float)
            for i in range(-ws, ws + 1)
            for j in range(-ws, ws + 1)
            for k in range(-ws, ws + 1)
        ]
        for off in offs:
            d = pos[:, None, :] - (pos[None, :, :] + off)
            r2 = np.einsum("ijk,ijk->ij", d, d)
            if np.all(off == 0):
                np.fill_diagonal(r2, np.inf)
            acc -= np.einsum("j,ijk->ik", mass, d / r2[:, :, None] ** 1.5)
            acc += prism_acceleration(pos, off, off + 1.0, -rho)
        m = subtract_background(p2m(pos, mass, np.full(3, 0.5), 8), 1.0, rho, 8)
        ple = PeriodicLocalExpansion(p_source=8, p_local=8, ws=ws)
        _, far = ple.field(m, pos)
        err = np.linalg.norm(acc + far - ref, axis=1)
        scale = np.linalg.norm(ref, axis=1).mean()
        # the paper's §2.4 claim: ~1e-7 of the force for p=8, ws=2
        assert err.max() / scale < 5e-7

    def test_far_field_magnitude(self, small_system):
        """The |n| > 2 tail is a genuine ~10% of the force (it matters)."""
        pos, mass, ew, ref = small_system
        rho = mass.sum()
        m = subtract_background(p2m(pos, mass, np.full(3, 0.5), 6), 1.0, rho, 6)
        ple = PeriodicLocalExpansion(p_source=6, p_local=6, ws=2)
        _, far = ple.field(m, pos)
        scale = np.linalg.norm(ref, axis=1).mean()
        assert 1e-4 < np.abs(far).max() / scale

    def test_treecode_end_to_end_vs_ewald(self, small_system):
        pos, mass, ew, ref = small_system
        cfg = TreecodeConfig(
            p=6, errtol=1e-8, background=True, periodic=True, ws=2,
            softening="none", nleaf=8,
        )
        res = TreecodeGravity(cfg).compute(pos, mass)
        err = np.linalg.norm(res.acc - ref, axis=1)
        assert err.max() / np.linalg.norm(ref, axis=1).mean() < 1e-5

    def test_treecode_potential_matches_ewald_convention(self, small_system):
        """The full periodic treecode potential (near images + prisms +
        lattice local expansion) equals the Ewald-convention potential
        including each particle's own periodic images — the zero-point
        the Layzer-Irvine energy bookkeeping relies on."""
        pos, mass, ew, _ = small_system
        n = len(pos)
        pot_ref = np.zeros(n)
        for i in range(n):
            dx = pos[i][None, :] - pos
            keep = np.arange(n) != i
            pot_ref[i] = (mass[keep] * ew.potential_pair(dx[keep])).sum()
            pot_ref[i] += mass[i] * ew.self_potential()
        cfg = TreecodeConfig(
            p=6, errtol=1e-8, background=True, periodic=True, ws=2,
            softening="none", nleaf=8,
        )
        res = TreecodeGravity(cfg).compute(pos, mass)
        assert np.abs(res.pot - pot_ref).max() < 1e-6 * np.abs(pot_ref).mean()

    def test_zero_moments_zero_field(self):
        ple = PeriodicLocalExpansion(p_source=4, p_local=4, ws=1)
        pot, acc = ple.field(np.zeros(ple._mis_src.__len__()), np.random.rand(5, 3))
        assert np.all(acc == 0)


class TestParticleMesh:
    def test_deposit_conserves_mass(self):
        pm = ParticleMesh(16)
        rng = np.random.default_rng(0)
        pos = rng.random((500, 3))
        mass = rng.random(500)
        rho = pm.deposit(pos, mass)
        assert rho.sum() == pytest.approx(mass.sum())

    def test_interpolate_constant_field(self):
        pm = ParticleMesh(16)
        grid = np.full((16, 16, 16), 3.5)
        got = pm.interpolate(grid, np.random.default_rng(1).random((40, 3)))
        np.testing.assert_allclose(got, 3.5)

    def test_pair_force_matches_ewald_at_large_separation(self):
        """The Gaussian-split mesh force (how the PM is actually used:
        TreePM long range) is sub-percent accurate above the split
        scale; at this separation the split filter is ~1 so the full
        Ewald force is the reference.  (An *unsplit* point-source PM
        response carries the classic CIC-deconvolution anisotropy noise
        and is only good to tens of percent — that error is exactly
        what the short-range tree half of TreePM replaces.)"""
        pm = ParticleMesh(64, r_split=1.25 / 64)
        ew = EwaldSummation()
        pos = np.array([[0.25, 0.5, 0.5], [0.65, 0.5, 0.5]])
        mass = np.array([1.0, 0.0])  # massless test particle avoids self-force
        acc = pm.accelerations(pos, mass)
        ref = ew.acceleration_pair(np.array([pos[1] - pos[0]]))
        np.testing.assert_allclose(acc[1], ref[0], rtol=0.01, atol=1e-4)

    def test_momentum_conservation(self):
        pm = ParticleMesh(32)
        rng = np.random.default_rng(2)
        pos = rng.random((200, 3))
        mass = rng.random(200)
        acc = pm.accelerations(pos, mass)
        net = (mass[:, None] * acc).sum(axis=0)
        typ = np.abs(mass[:, None] * acc).sum(axis=0)
        assert np.all(np.abs(net) < 1e-8 * typ)


class TestTreePM:
    def test_split_filter_limits(self):
        s = ShortRangeSoftening(NoSoftening(), 0.1)
        # r << r_s: full Newtonian
        assert s.force_factor(np.array([1e-3]))[0] == pytest.approx(1e9, rel=1e-3)
        # r >> r_s: suppressed
        assert s.force_factor(np.array([1.0]))[0] < 1e-8

    def test_treepm_vs_ewald(self, small_system):
        pos, mass, ew, ref = small_system
        cfg = TreePMConfig(ngrid=32, errtol=1e-6, softening="plummer", eps=1e-4)
        res = TreePMGravity(cfg).compute(pos, mass)
        rel = np.linalg.norm(res.acc - ref, axis=1) / np.linalg.norm(ref, axis=1).mean()
        # the split is approximate at the transition scale — percent-level
        # errors are expected (that's the Fig. 7 artifact), not 1e-7
        assert np.median(rel) < 0.03
        assert rel.max() < 0.25

    def test_treepm_worse_than_pure_tree(self, small_system):
        """The pure treecode at production settings beats TreePM's
        transition-region accuracy — the paper's concluding argument."""
        pos, mass, ew, ref = small_system
        tree_res = TreecodeGravity(
            TreecodeConfig(p=6, errtol=1e-7, background=True, periodic=True, ws=2,
                           softening="none", nleaf=8)
        ).compute(pos, mass)
        tp_res = TreePMGravity(
            TreePMConfig(ngrid=32, errtol=1e-6, softening="plummer", eps=1e-4)
        ).compute(pos, mass)
        scale = np.linalg.norm(ref, axis=1).mean()
        e_tree = np.linalg.norm(tree_res.acc - ref, axis=1).max() / scale
        e_tp = np.linalg.norm(tp_res.acc - ref, axis=1).max() / scale
        assert e_tree < 0.01 * e_tp
